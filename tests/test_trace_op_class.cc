/**
 * @file
 * Unit tests for operation class predicates.
 */

#include <gtest/gtest.h>

#include "trace/op_class.hh"

namespace
{

using namespace aurora::trace;

TEST(OpClass, MemPredicates)
{
    EXPECT_TRUE(isMem(OpClass::Load));
    EXPECT_TRUE(isMem(OpClass::Store));
    EXPECT_TRUE(isMem(OpClass::FpLoad));
    EXPECT_TRUE(isMem(OpClass::FpStore));
    EXPECT_FALSE(isMem(OpClass::IntAlu));
    EXPECT_FALSE(isMem(OpClass::FpAdd));
    EXPECT_FALSE(isMem(OpClass::Branch));
}

TEST(OpClass, LoadStoreSplit)
{
    EXPECT_TRUE(isLoad(OpClass::Load));
    EXPECT_TRUE(isLoad(OpClass::FpLoad));
    EXPECT_FALSE(isLoad(OpClass::Store));
    EXPECT_TRUE(isStore(OpClass::Store));
    EXPECT_TRUE(isStore(OpClass::FpStore));
    EXPECT_FALSE(isStore(OpClass::FpLoad));
}

TEST(OpClass, ControlPredicates)
{
    EXPECT_TRUE(isControl(OpClass::Branch));
    EXPECT_TRUE(isControl(OpClass::Jump));
    EXPECT_FALSE(isControl(OpClass::IntAlu));
    EXPECT_FALSE(isControl(OpClass::Nop));
}

TEST(OpClass, FpPredicates)
{
    for (OpClass op : {OpClass::FpAdd, OpClass::FpMul, OpClass::FpDiv,
                       OpClass::FpCvt, OpClass::FpLoad,
                       OpClass::FpStore, OpClass::FpMove})
        EXPECT_TRUE(isFp(op));
    EXPECT_FALSE(isFp(OpClass::Load));
    EXPECT_FALSE(isFp(OpClass::IntAlu));
}

TEST(OpClass, FpArithSubset)
{
    EXPECT_TRUE(isFpArith(OpClass::FpAdd));
    EXPECT_TRUE(isFpArith(OpClass::FpMul));
    EXPECT_TRUE(isFpArith(OpClass::FpDiv));
    EXPECT_TRUE(isFpArith(OpClass::FpCvt));
    EXPECT_FALSE(isFpArith(OpClass::FpLoad));
    EXPECT_FALSE(isFpArith(OpClass::FpMove));
}

TEST(OpClass, EveryClassHasAName)
{
    for (std::size_t c = 0; c < NUM_OP_CLASSES; ++c) {
        const auto name = opClassName(static_cast<OpClass>(c));
        EXPECT_FALSE(name.empty());
    }
}

TEST(OpClass, NamesAreDistinct)
{
    std::set<std::string_view> names;
    for (std::size_t c = 0; c < NUM_OP_CLASSES; ++c)
        names.insert(opClassName(static_cast<OpClass>(c)));
    EXPECT_EQ(names.size(), NUM_OP_CLASSES);
}

} // namespace
