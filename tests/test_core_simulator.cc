/**
 * @file
 * Property tests for the simulation facade over the full
 * model x benchmark cross product.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/simulator.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

constexpr Count N = 60000;

TEST(Simulator, DeterministicRuns)
{
    const auto a = simulate(baselineModel(), trace::espresso(), N);
    const auto b = simulate(baselineModel(), trace::espresso(), N);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stalls, b.stalls);
    EXPECT_DOUBLE_EQ(a.write_cache_hit_pct, b.write_cache_hit_pct);
}

TEST(Simulator, RunSuiteCoversAllBenchmarks)
{
    const auto suite = trace::integerSuite();
    const auto res = runSuite(baselineModel(), suite, 20000);
    ASSERT_EQ(res.runs.size(), suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(res.runs[i].benchmark, suite[i].name);
    EXPECT_GT(res.avgCpi(), 0.5);
    const auto acc = res.cpiStats();
    EXPECT_LE(acc.min(), res.avgCpi());
    EXPECT_GE(acc.max(), res.avgCpi());
}

/** Invariants over every (model, benchmark) combination. */
class SimSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
  protected:
    MachineConfig
    machine() const
    {
        const auto name = std::get<0>(GetParam());
        for (auto &m : studyModels())
            if (m.name == name)
                return m;
        ADD_FAILURE() << "unknown model " << name;
        return baselineModel();
    }

    trace::WorkloadProfile
    benchmark() const
    {
        return trace::profileByName(std::get<1>(GetParam()));
    }
};

TEST_P(SimSweep, AccountingIdentity)
{
    const auto r = simulate(machine(), benchmark(), N);
    Cycle stall_sum = 0;
    for (const auto s : r.stalls)
        stall_sum += s;
    EXPECT_EQ(r.cycles, r.issuing_cycles + stall_sum + r.tail_cycles);
}

TEST_P(SimSweep, CpiWithinPhysicalBounds)
{
    const auto r = simulate(machine(), benchmark(), N);
    EXPECT_EQ(r.instructions, N);
    EXPECT_GE(r.cpi(), 0.5) << "cannot beat dual issue";
    EXPECT_LE(r.cpi(), 20.0) << "implausibly slow";
}

TEST_P(SimSweep, RatesAreValidPercentages)
{
    const auto r = simulate(machine(), benchmark(), N);
    for (double pct :
         {r.icache_hit_pct, r.dcache_hit_pct, r.iprefetch_hit_pct,
          r.dprefetch_hit_pct, r.write_cache_hit_pct}) {
        EXPECT_GE(pct, 0.0);
        EXPECT_LE(pct, 100.0);
    }
    EXPECT_LE(r.store_transactions, r.stores)
        << "coalescing cannot add transactions";
}

TEST_P(SimSweep, CachesActuallyWork)
{
    const auto r = simulate(machine(), benchmark(), N);
    EXPECT_GT(r.icache_hit_pct, 80.0);
    EXPECT_GT(r.dcache_hit_pct, 60.0);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsTimesBenchmarks, SimSweep,
    ::testing::Combine(
        ::testing::Values("small", "baseline", "large"),
        ::testing::Values("espresso", "li", "eqntott", "compress",
                          "sc", "gcc", "nasa7", "ora", "spice2g6")));

} // namespace
