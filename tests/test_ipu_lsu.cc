/**
 * @file
 * Unit tests for the load-store unit with its external data cache.
 */

#include <gtest/gtest.h>

#include "ipu/lsu.hh"

namespace
{

using namespace aurora;
using namespace aurora::ipu;
using namespace aurora::mem;

struct Fixture
{
    explicit Fixture(unsigned mshrs = 2, Cycle latency = 17)
        : biu(BiuConfig{latency, 4, 8})
    {
        PrefetchConfig pcfg;
        pcfg.num_buffers = 4;
        pcfg.depth = 2;
        pfu.emplace(pcfg, biu);
        LsuConfig cfg;
        cfg.dcache_bytes = 32 * 1024;
        cfg.mshr_entries = mshrs;
        lsu.emplace(cfg, WriteCacheConfig{}, biu, *pfu);
    }

    /** Advance the LSU to @p cycle, ticking every cycle. */
    void
    advanceTo(Cycle target)
    {
        for (; now <= target; ++now)
            lsu->tick(now);
        now = target;
    }

    Biu biu;
    std::optional<PrefetchUnit> pfu;
    std::optional<Lsu> lsu;
    Cycle now = 0;
};

TEST(Lsu, HitHasThreeCycleLatency)
{
    Fixture f;
    f.lsu->tick(0);
    // Warm the line via a miss, wait for the fill, then hit.
    f.lsu->load(0x1000, 4, 0);
    f.advanceTo(100);
    const Cycle ready = f.lsu->load(0x1000, 4, 100);
    EXPECT_EQ(ready, 103u);
}

TEST(Lsu, MissPaysSecondaryLatency)
{
    Fixture f(2, 17);
    f.lsu->tick(0);
    const Cycle ready = f.lsu->load(0x1000, 4, 0);
    EXPECT_GE(ready, 17u + 4) << "miss cannot beat the BIU";
}

TEST(Lsu, EveryMemOpHoldsAnMshr)
{
    Fixture f(2);
    f.lsu->tick(0);
    f.lsu->load(0x1000, 4, 0);
    f.lsu->load(0x2000, 4, 0);
    EXPECT_FALSE(f.lsu->canAccept(0)) << "both MSHRs in flight";
}

TEST(Lsu, SingleMshrSerializesEvenHits)
{
    Fixture f(1);
    // Warm two lines.
    f.lsu->tick(0);
    f.lsu->load(0x1000, 4, 0);
    f.advanceTo(200);
    f.lsu->load(0x1000, 4, 200); // hit, holds the MSHR 3 cycles
    EXPECT_FALSE(f.lsu->canAccept(201));
    EXPECT_FALSE(f.lsu->canAccept(202));
    f.advanceTo(203);
    EXPECT_TRUE(f.lsu->canAccept(203))
        << "hit frees its MSHR after the cache latency";
}

TEST(Lsu, SecondaryMissCoalesces)
{
    Fixture f(2);
    f.lsu->tick(0);
    const Cycle first = f.lsu->load(0x1000, 4, 0);
    const Cycle second = f.lsu->load(0x1004, 4, 0);
    EXPECT_EQ(f.lsu->mshrs().coalesced(), 1u);
    EXPECT_LE(second, first) << "same line: no second BIU trip";
    EXPECT_EQ(f.biu.demandReads(), 1u);
}

TEST(Lsu, FillBlocksThePort)
{
    Fixture f(4, 17);
    f.lsu->tick(0);
    const Cycle ready = f.lsu->load(0x1000, 4, 0);
    // When the line lands it occupies the data busses.
    Cycle t = 1;
    for (; t <= ready + 10; ++t) {
        f.lsu->tick(t);
        if (f.lsu->portBusy(t))
            break;
    }
    EXPECT_LE(t, ready + 1) << "fill must block the port on arrival";
}

TEST(Lsu, StoreOccupiesMshrBriefly)
{
    Fixture f(1);
    f.lsu->tick(0);
    f.lsu->store(0x4000, 4, 0);
    EXPECT_FALSE(f.lsu->canAccept(0));
    f.lsu->tick(1);
    EXPECT_TRUE(f.lsu->canAccept(1));
}

TEST(Lsu, StoreWriteAllocatesTags)
{
    Fixture f;
    f.lsu->tick(0);
    f.lsu->store(0x5000, 4, 0);
    f.lsu->tick(1);
    const Cycle ready = f.lsu->load(0x5000, 4, 1);
    EXPECT_EQ(ready, 4u) << "line resident after the store";
}

TEST(Lsu, WriteCacheForwardsToLoads)
{
    Fixture f;
    f.lsu->tick(0);
    f.lsu->store(0x777000, 4, 0);
    f.lsu->tick(1);
    // Even though the D-cache was cold for this line before the
    // store, the write cache holds the word.
    const Cycle ready = f.lsu->load(0x777000, 4, 1);
    EXPECT_EQ(ready, 4u);
}

TEST(Lsu, DcacheStatsAccumulate)
{
    Fixture f;
    f.lsu->tick(0);
    f.lsu->load(0x1000, 4, 0); // miss
    f.advanceTo(100);
    f.lsu->load(0x1000, 4, 100); // hit
    EXPECT_EQ(f.lsu->dcache().hitRate().total(), 2u);
    EXPECT_EQ(f.lsu->dcache().hitRate().hits(), 1u);
}

TEST(Lsu, DrainFlushesWriteCache)
{
    Fixture f;
    f.lsu->tick(0);
    f.lsu->store(0x1000, 4, 0);
    f.lsu->drain(10);
    EXPECT_EQ(f.lsu->writeCache().storeTransactions(), 1u);
}

TEST(Lsu, DoubleWordAccessesWork)
{
    Fixture f;
    f.lsu->tick(0);
    f.lsu->store(0x20000018, 8, 0);
    f.lsu->tick(1);
    // Both halves of the double forward from the write cache.
    const Cycle ready = f.lsu->load(0x20000018, 8, 1);
    EXPECT_EQ(ready, 4u);
}

TEST(Lsu, MshrCoalesceBeatsVictimAndPrefetch)
{
    // A second miss to an in-flight line must coalesce (no new BIU
    // traffic) even when other mechanisms could also serve it.
    Fixture f(4);
    f.lsu->tick(0);
    f.lsu->load(0x1000, 4, 0);
    const Count reads = f.biu.demandReads();
    f.lsu->load(0x1008, 4, 0);
    EXPECT_EQ(f.biu.demandReads(), reads);
    EXPECT_EQ(f.lsu->mshrs().coalesced(), 1u);
}

TEST(Lsu, PortFreesAfterFillWindow)
{
    Fixture f(4, 17);
    f.lsu->tick(0);
    const Cycle ready = f.lsu->load(0x1000, 4, 0);
    // Tick through the fill; afterwards the port must be free again.
    for (Cycle t = 1; t <= ready + 10; ++t)
        f.lsu->tick(t);
    EXPECT_FALSE(f.lsu->portBusy(ready + 10));
    EXPECT_TRUE(f.lsu->canAccept(ready + 10));
}

TEST(LsuDeath, LoadWhileBusyPanics)
{
    Fixture f(1);
    f.lsu->tick(0);
    f.lsu->load(0x1000, 4, 0);
    EXPECT_DEATH(f.lsu->load(0x2000, 4, 0), "busy");
}

} // namespace
