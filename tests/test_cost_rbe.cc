/**
 * @file
 * Unit tests for the RBE cost model against Table 2.
 */

#include <gtest/gtest.h>

#include "cost/rbe.hh"

namespace
{

using namespace aurora;
using namespace aurora::cost;

TEST(Rbe, PublishedICachePoints)
{
    EXPECT_DOUBLE_EQ(icacheRbe(1024), 8000.0);
    EXPECT_DOUBLE_EQ(icacheRbe(2048), 12000.0);
    EXPECT_DOUBLE_EQ(icacheRbe(4096), 20000.0);
}

TEST(Rbe, ICacheInterpolationIsMonotonic)
{
    double prev = 0.0;
    for (std::uint32_t s = 512; s <= 16 * 1024; s *= 2) {
        const double c = icacheRbe(s);
        EXPECT_GT(c, prev) << s;
        prev = c;
    }
}

TEST(Rbe, ICacheInterpolatedPointBetweenNeighbours)
{
    const double c3k = icacheRbe(3072);
    EXPECT_GT(c3k, 12000.0);
    EXPECT_LT(c3k, 20000.0);
}

TEST(Rbe, LinearElementCosts)
{
    EXPECT_DOUBLE_EQ(writeCacheRbe(4), 4 * 320.0);
    EXPECT_DOUBLE_EQ(prefetchRbe(4, 2), 8 * 320.0);
    EXPECT_DOUBLE_EQ(robRbe(6), 1200.0);
    EXPECT_DOUBLE_EQ(mshrRbe(2), 100.0);
    EXPECT_DOUBLE_EQ(pipelineRbe(2), 16384.0);
}

TEST(Rbe, IpuTotalIsSumOfParts)
{
    IpuResources res;
    res.icache_bytes = 2048;
    res.write_cache_lines = 4;
    res.prefetch_buffers = 4;
    res.prefetch_depth = 2;
    res.rob_entries = 6;
    res.mshr_entries = 2;
    res.pipelines = 2;
    const double expected =
        12000.0 + 1280.0 + 2560.0 + 1200.0 + 100.0 + 16384.0;
    EXPECT_DOUBLE_EQ(ipuRbe(res), expected);
}

TEST(Rbe, BaselinePrefetchIsAboutFifthOfICache)
{
    // §5.2: "for the baseline configuration, the prefetch buffers are
    // only 20% of the instruction cache size."
    const double pf = prefetchRbe(4, 2);
    const double ic = icacheRbe(2048);
    EXPECT_NEAR(pf / ic, 0.21, 0.03);
}

TEST(Rbe, FpUnitEndpointsMatchTable2)
{
    EXPECT_DOUBLE_EQ(fpAddRbe(1, true), 5000.0);
    EXPECT_DOUBLE_EQ(fpAddRbe(5, true), 1250.0);
    EXPECT_DOUBLE_EQ(fpMulRbe(1, true), 6875.0);
    EXPECT_DOUBLE_EQ(fpMulRbe(5, true), 2500.0);
    EXPECT_DOUBLE_EQ(fpDivRbe(10), 2500.0);
    EXPECT_DOUBLE_EQ(fpDivRbe(30), 625.0);
    EXPECT_DOUBLE_EQ(fpCvtRbe(1), 2500.0);
    EXPECT_DOUBLE_EQ(fpCvtRbe(5), 1250.0);
}

TEST(Rbe, FpUnitCostFallsWithLatency)
{
    for (Cycle lat = 1; lat < 5; ++lat) {
        EXPECT_GT(fpAddRbe(lat, true), fpAddRbe(lat + 1, true));
        EXPECT_GT(fpMulRbe(lat, true), fpMulRbe(lat + 1, true));
        EXPECT_GT(fpCvtRbe(lat), fpCvtRbe(lat + 1));
    }
    EXPECT_GT(fpDivRbe(10), fpDivRbe(20));
}

TEST(Rbe, RemovingPipelineLatchesSavesQuarter)
{
    // §5.10: latches are ~25% of the add/multiply unit area.
    EXPECT_DOUBLE_EQ(fpAddRbe(3, false), fpAddRbe(3, true) * 0.75);
    EXPECT_DOUBLE_EQ(fpMulRbe(5, false), fpMulRbe(5, true) * 0.75);
}

TEST(Rbe, FpuTotalForRecommendedConfig)
{
    fpu::FpuConfig cfg; // §5.11 defaults
    const double total = fpuRbe(cfg);
    EXPECT_GT(total, 4000.0);
    // Sanity: data block + queues + rob + 4 units.
    const double expected = 4000.0 + 50.0 * 5 + 80.0 * (2 + 3) +
                            200.0 * 6 + fpAddRbe(3, true) +
                            fpMulRbe(5, true) + fpDivRbe(19) +
                            fpCvtRbe(2);
    EXPECT_DOUBLE_EQ(total, expected);
}

TEST(RbeDeath, LatencyOutsideRangePanics)
{
    EXPECT_DEATH(fpAddRbe(0, true), "range");
    EXPECT_DEATH(fpAddRbe(6, true), "range");
    EXPECT_DEATH(fpDivRbe(9), "range");
    EXPECT_DEATH(fpDivRbe(31), "range");
}

} // namespace
