/**
 * @file
 * Golden-stats regression suite.
 *
 * Records the full per-run statistics (cycles, per-cause stall
 * breakdown, memory-system counters, CPI) of the three Table 1
 * models on a fixed 4-benchmark mini-suite and compares them against
 * the checked-in snapshot in tests/golden/golden_stats.txt. A future
 * performance PR that changes simulated behaviour — even by one cycle
 * — fails here instead of silently shifting every reported number.
 *
 * Regenerate intentionally with:
 *
 *     AURORA_UPDATE_GOLDEN=1 ./test_golden_stats
 *
 * and commit the diff together with an explanation of the behaviour
 * change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

/** Fixed budget: small enough for test-suite turnaround. */
constexpr Count N = 40000;

/** Mini-suite: two cache-friendly, one pointer-heavy, one FP. */
std::vector<trace::WorkloadProfile>
miniSuite()
{
    return {trace::espresso(), trace::compress(), trace::li(),
            trace::nasa7()};
}

std::string
goldenPath()
{
    return std::string(AURORA_GOLDEN_DIR) + "/golden_stats.txt";
}

/** One stable, diff-friendly line per run. Integers are exact. */
std::string
formatRun(const RunResult &r)
{
    std::ostringstream os;
    os << "model=" << r.model << " bench=" << r.benchmark
       << " insts=" << r.instructions << " cycles=" << r.cycles
       << " issuing=" << r.issuing_cycles << " tail=" << r.tail_cycles;
    static constexpr const char *stall_keys[] = {
        "stall_icache", "stall_load", "stall_lsu", "stall_rob",
        "stall_fpq"};
    static_assert(std::size(stall_keys) == NUM_STALL_CAUSES);
    for (std::size_t c = 0; c < NUM_STALL_CAUSES; ++c)
        os << " " << stall_keys[c] << "=" << r.stalls[c];
    os << " stores=" << r.stores
       << " store_txn=" << r.store_transactions
       << " fp_dispatched=" << r.fp_dispatched
       << " cpi=" << formatFixed(r.cpi(), 6);
    return os.str();
}

std::vector<std::string>
computeLines()
{
    std::vector<std::string> lines;
    for (const auto &machine : studyModels()) {
        const auto suite = runSuite(machine, miniSuite(), N);
        for (const auto &run : suite.runs)
            lines.push_back(formatRun(run));
    }
    return lines;
}

TEST(GoldenStats, MatchesCheckedInSnapshot)
{
    const auto lines = computeLines();

    if (const char *update = std::getenv("AURORA_UPDATE_GOLDEN");
        update && std::string(update) == "1") {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << "# golden per-run statistics: 3 Table 1 models x "
               "4-benchmark mini-suite, "
            << N << " insts/run\n"
            << "# regenerate: AURORA_UPDATE_GOLDEN=1 "
               "./test_golden_stats\n";
        for (const auto &line : lines)
            out << line << "\n";
        GTEST_SKIP() << "golden snapshot regenerated at "
                     << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing golden snapshot " << goldenPath()
                    << " — run with AURORA_UPDATE_GOLDEN=1 to create";
    std::vector<std::string> golden;
    for (std::string line; std::getline(in, line);)
        if (!line.empty() && line[0] != '#')
            golden.push_back(line);

    ASSERT_EQ(golden.size(), lines.size())
        << "run-count mismatch vs snapshot";
    for (std::size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(lines[i], golden[i])
            << "simulated behaviour changed at run " << i
            << " — if intentional, regenerate with "
               "AURORA_UPDATE_GOLDEN=1 and justify in the PR";
    }
}

/** The snapshot itself must be deterministic run-to-run. */
TEST(GoldenStats, ComputationIsReproducible)
{
    EXPECT_EQ(computeLines(), computeLines());
}

} // namespace
