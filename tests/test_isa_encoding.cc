/**
 * @file
 * Unit tests for the MIPS-subset encoder/decoder/disassembler.
 */

#include <gtest/gtest.h>

#include "isa/encoding.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"

namespace
{

using namespace aurora;
using namespace aurora::isa;
using trace::Inst;
using trace::OpClass;

Inst
make(OpClass op, RegIndex a = NO_REG, RegIndex b = NO_REG,
     RegIndex d = NO_REG)
{
    Inst i;
    i.op = op;
    if (trace::isFp(op)) {
        i.fsrc_a = a;
        i.fsrc_b = b;
        i.fdst = d;
        if (trace::isMem(op))
            i.src_a = 4; // base register
    } else {
        i.src_a = a;
        i.src_b = b;
        i.dst = d;
    }
    return i;
}

TEST(Encoding, AluRoundTrip)
{
    const Inst i = make(OpClass::IntAlu, 8, 9, 10);
    const Decoded d = decode(encode(i));
    EXPECT_EQ(d.op, OpClass::IntAlu);
    EXPECT_EQ(d.rs, 8);
    EXPECT_EQ(d.rt, 9);
    EXPECT_EQ(d.rd, 10);
}

TEST(Encoding, LoadStoreRoundTrip)
{
    Inst ld = make(OpClass::Load, 4, NO_REG, 8);
    const Decoded dl = decode(encode(ld));
    EXPECT_EQ(dl.op, OpClass::Load);
    EXPECT_EQ(dl.rs, 4);
    EXPECT_EQ(dl.rt, 8);

    Inst st = make(OpClass::Store, 4, 9, NO_REG);
    const Decoded ds = decode(encode(st));
    EXPECT_EQ(ds.op, OpClass::Store);
    EXPECT_EQ(ds.rs, 4);
    EXPECT_EQ(ds.rt, 9);
}

TEST(Encoding, FpArithRoundTrip)
{
    for (OpClass op : {OpClass::FpAdd, OpClass::FpMul,
                       OpClass::FpDiv}) {
        const Inst i = make(op, 2, 4, 6);
        const Decoded d = decode(encode(i));
        EXPECT_EQ(d.op, op);
        EXPECT_EQ(d.fs, 2);
        EXPECT_EQ(d.ft, 4);
        EXPECT_EQ(d.fd, 6);
    }
}

TEST(Encoding, FpMemRoundTrip)
{
    Inst ld = make(OpClass::FpLoad, NO_REG, NO_REG, 6);
    ld.src_a = 4;
    const Decoded dl = decode(encode(ld));
    EXPECT_EQ(dl.op, OpClass::FpLoad);
    EXPECT_EQ(dl.rs, 4);
    EXPECT_EQ(dl.ft, 6);

    Inst st = make(OpClass::FpStore, 8, NO_REG, NO_REG);
    st.src_a = 4;
    const Decoded ds = decode(encode(st));
    EXPECT_EQ(ds.op, OpClass::FpStore);
    EXPECT_EQ(ds.ft, 8);
}

TEST(Encoding, NopIsCanonical)
{
    const Inst i = make(OpClass::Nop);
    EXPECT_EQ(encode(i), 0u) << "MIPS nop is all zeros (sll 0,0,0)";
    EXPECT_EQ(decode(0).op, OpClass::Nop);
}

TEST(Encoding, BranchAndJump)
{
    EXPECT_EQ(decode(encode(make(OpClass::Branch, 3, 5))).op,
              OpClass::Branch);
    EXPECT_EQ(decode(encode(make(OpClass::Jump))).op, OpClass::Jump);
}

TEST(Encoding, EveryWorkloadInstructionRoundTrips)
{
    // Property: the op class of every generated instruction survives
    // an encode/decode round trip.
    trace::SyntheticWorkload w(trace::spice2g6());
    Inst inst;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(w.next(inst));
        ASSERT_EQ(decode(encode(inst)).op, inst.op)
            << trace::opClassName(inst.op);
    }
}

TEST(Disassemble, ProducesReadableMnemonics)
{
    EXPECT_EQ(disassemble(encode(make(OpClass::Nop))), "nop");
    const std::string alu =
        disassemble(encode(make(OpClass::IntAlu, 8, 9, 10)));
    EXPECT_NE(alu.find("addu"), std::string::npos);
    EXPECT_NE(alu.find("$t2"), std::string::npos);
    const std::string fp =
        disassemble(encode(make(OpClass::FpMul, 2, 4, 6)));
    EXPECT_NE(fp.find("mul.d"), std::string::npos);
    EXPECT_NE(fp.find("$f6"), std::string::npos);
}

TEST(EncodingDeath, UndecodableWordPanics)
{
    EXPECT_DEATH(decode(0x3fu << 26), "decode");
}

} // namespace
