/**
 * @file
 * Wire-protocol tests: message codec round trips, torn-frame
 * classification at every cut byte, CRC-flip fuzz, and the
 * corruptWireFrame() fault-injector contract — the socket-side twin
 * of test_util_record_io.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faultinject/faultinject.hh"
#include "serve/wire.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;
using namespace aurora::serve::wire;
using aurora::util::SimError;
using aurora::util::SimErrorCode;

/** splitmix64 — deterministic fuzz positions without libc rand(). */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

SubmitMsg
sampleSubmit()
{
    SubmitMsg m;
    m.label = "nightly sweep";
    m.cancel_on_disconnect = true;
    m.has_base_seed = true;
    m.base_seed = 0xfeedfacecafebeefull;
    m.deadline_ms = 30'000;
    m.retries = 2;
    m.backoff_ms = 125;
    m.jobs.push_back({"model=small fp_policy=single", "espresso", 4000});
    m.jobs.push_back({"model=large", "tomcatv", 0});
    return m;
}

TEST(WireCodec, HelloRoundTrips)
{
    HelloMsg m;
    m.tenant = "alice";
    const auto payload = encode(m);
    EXPECT_EQ(peekType(payload), MsgType::Hello);
    const auto back = decodeHello(payload);
    EXPECT_EQ(back.version, PROTOCOL_VERSION);
    EXPECT_EQ(back.tenant, "alice");
}

TEST(WireCodec, SubmitRoundTrips)
{
    const SubmitMsg m = sampleSubmit();
    const auto back = decodeSubmit(encode(m));
    EXPECT_EQ(back.label, m.label);
    EXPECT_EQ(back.cancel_on_disconnect, m.cancel_on_disconnect);
    EXPECT_EQ(back.has_base_seed, m.has_base_seed);
    EXPECT_EQ(back.base_seed, m.base_seed);
    EXPECT_EQ(back.deadline_ms, m.deadline_ms);
    EXPECT_EQ(back.retries, m.retries);
    EXPECT_EQ(back.backoff_ms, m.backoff_ms);
    ASSERT_EQ(back.jobs.size(), m.jobs.size());
    for (std::size_t i = 0; i < m.jobs.size(); ++i) {
        EXPECT_EQ(back.jobs[i].machine_spec, m.jobs[i].machine_spec);
        EXPECT_EQ(back.jobs[i].profile, m.jobs[i].profile);
        EXPECT_EQ(back.jobs[i].instructions, m.jobs[i].instructions);
    }
}

TEST(WireCodec, ServerMessagesRoundTrip)
{
    const auto accepted =
        decodeAccepted(encode(AcceptedMsg{0xabcdefull, 12, 3, true}));
    EXPECT_EQ(accepted.fingerprint, 0xabcdefull);
    EXPECT_EQ(accepted.jobs, 12u);
    EXPECT_EQ(accepted.done, 3u);
    EXPECT_TRUE(accepted.attached);

    const auto rejected = decodeRejected(encode(RejectedMsg{
        "AUR203", SimErrorCode::Overloaded, "queue full"}));
    EXPECT_EQ(rejected.id, "AUR203");
    EXPECT_EQ(rejected.code, SimErrorCode::Overloaded);
    EXPECT_EQ(rejected.message, "queue full");

    const auto progress = decodeProgress(
        encode(ProgressMsg{7, 5, 10, 4, 1, 0, 0, 1.25}));
    EXPECT_EQ(progress.fingerprint, 7u);
    EXPECT_EQ(progress.done, 5u);
    EXPECT_EQ(progress.total, 10u);
    EXPECT_EQ(progress.ok, 4u);
    EXPECT_EQ(progress.failed, 1u);
    EXPECT_EQ(progress.elapsed_seconds, 1.25);

    const auto result =
        decodeResult(encode(ResultMsg{9, std::string("\x01\x02\x00", 3)}));
    EXPECT_EQ(result.fingerprint, 9u);
    EXPECT_EQ(result.record, std::string("\x01\x02\x00", 3));

    const auto done = decodeGridDone(encode(GridDoneMsg{4, 6, 1, 2, 3, 5}));
    EXPECT_EQ(done.fingerprint, 4u);
    EXPECT_EQ(done.ok, 6u);
    EXPECT_EQ(done.failed, 1u);
    EXPECT_EQ(done.timed_out, 2u);
    EXPECT_EQ(done.cancelled, 3u);
    EXPECT_EQ(done.resumed, 5u);

    const auto status =
        decodeStatusReport(encode(StatusReportMsg{true, 2, 1, 8, 3, 40}));
    EXPECT_TRUE(status.draining);
    EXPECT_EQ(status.grids, 2u);
    EXPECT_EQ(status.done_grids, 1u);
    EXPECT_EQ(status.queued_jobs, 8u);
    EXPECT_EQ(status.running_jobs, 3u);
    EXPECT_EQ(status.done_jobs, 40u);

    const auto cancel_ok = decodeCancelOk(encode(CancelOkMsg{11, 4}));
    EXPECT_EQ(cancel_ok.fingerprint, 11u);
    EXPECT_EQ(cancel_ok.cancelled_jobs, 4u);

    const auto draining = decodeDraining(encode(DrainingMsg{"SIGTERM"}));
    EXPECT_EQ(draining.reason, "SIGTERM");
}

TEST(WireCodec, V2TraceIdRoundTripsOnSubmitAndAccepted)
{
    SubmitMsg submit = sampleSubmit();
    submit.trace_id = 0xdeadbeefcafe1234ull;
    EXPECT_EQ(decodeSubmit(encode(submit)).trace_id,
              0xdeadbeefcafe1234ull);

    AcceptedMsg accepted{0xabcdefull, 12, 3, true};
    accepted.trace_id = 0x1122334455667788ull;
    EXPECT_EQ(decodeAccepted(encode(accepted)).trace_id,
              0x1122334455667788ull);
}

TEST(WireCodec, V1FramesWithoutTraceIdStillDecode)
{
    // A v1 peer never writes the trailing trace id, and a v2 encoder
    // with trace_id == 0 emits the identical v1 bytes — both must
    // decode with the 0 "untraced" sentinel, not raise.
    const SubmitMsg submit = sampleSubmit(); // trace_id defaults to 0
    const auto v1_bytes = encode(submit);
    EXPECT_EQ(decodeSubmit(v1_bytes).trace_id, 0u);

    const auto accepted =
        decodeAccepted(encode(AcceptedMsg{0xabcdefull, 12, 3, false}));
    EXPECT_EQ(accepted.trace_id, 0u);
}

TEST(WireCodec, MetricsRoundTripsBothFormats)
{
    MetricsMsg prom;
    prom.format = MetricsFormat::Prometheus;
    EXPECT_EQ(peekType(encode(prom)), MsgType::Metrics);
    EXPECT_EQ(decodeMetrics(encode(prom)).format,
              MetricsFormat::Prometheus);
    MetricsMsg json;
    json.format = MetricsFormat::Json;
    EXPECT_EQ(decodeMetrics(encode(json)).format,
              MetricsFormat::Json);

    MetricsReportMsg report;
    report.format = MetricsFormat::Json;
    report.body = "{\"schema\": \"aurora.metrics.v1\"}";
    const auto back = decodeMetricsReport(encode(report));
    EXPECT_EQ(back.format, MetricsFormat::Json);
    EXPECT_EQ(back.body, report.body);
}

TEST(WireCodec, WrongTypeByteThrowsBadWire)
{
    const auto payload = encode(HelloMsg{PROTOCOL_VERSION, "bob"});
    try {
        decodeSubmit(payload);
        FAIL() << "type confusion not detected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadWire);
    }
}

TEST(WireCodec, TrailingBytesThrowBadWire)
{
    auto payload = encode(CancelMsg{42});
    payload += '\0';
    try {
        decodeCancel(payload);
        FAIL() << "trailing bytes not detected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadWire);
    }
}

TEST(WireCodec, EmptyPayloadThrowsBadWire)
{
    try {
        peekType("");
        FAIL() << "empty payload not detected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadWire);
    }
}

TEST(FrameDecoder, ExtractsFramesInOrder)
{
    const std::vector<std::string> payloads = {
        encode(HelloMsg{PROTOCOL_VERSION, "alice"}),
        encode(StatusMsg{}),
        encode(CancelMsg{99}),
    };
    FrameDecoder decoder;
    for (const auto &p : payloads)
        decoder.feed(frame(p));

    std::string out;
    for (const auto &expected : payloads) {
        ASSERT_EQ(decoder.next(out), FrameStatus::Ok);
        EXPECT_EQ(out, expected);
    }
    EXPECT_EQ(decoder.next(out), FrameStatus::NeedMore);
    EXPECT_TRUE(decoder.atFrameBoundary());
}

TEST(FrameDecoder, ByteAtATimeFeedingNeedsMoreUntilComplete)
{
    const std::string payload = encode(sampleSubmit());
    const std::string framed = frame(payload);
    FrameDecoder decoder;
    std::string out;
    for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
        decoder.feed(framed.data() + i, 1);
        ASSERT_EQ(decoder.next(out), FrameStatus::NeedMore)
            << "after byte " << i;
        EXPECT_FALSE(decoder.atFrameBoundary());
    }
    decoder.feed(framed.data() + framed.size() - 1, 1);
    ASSERT_EQ(decoder.next(out), FrameStatus::Ok);
    EXPECT_EQ(out, payload);
    EXPECT_TRUE(decoder.atFrameBoundary());
}

TEST(FrameDecoder, EveryCutByteReadsAsTornFrameNeverOk)
{
    // Cut one frame at every possible byte: each prefix is exactly
    // what a read() against a dying peer returns, and each must
    // classify NeedMore (waiting for bytes that never come) — never
    // Ok with a partial payload, never a crash.
    const std::string framed = frame(encode(sampleSubmit()));
    for (std::size_t cut = 0; cut < framed.size(); ++cut) {
        SCOPED_TRACE("cut at byte " + std::to_string(cut));
        FrameDecoder decoder;
        decoder.feed(framed.data(), cut);
        std::string out;
        EXPECT_EQ(decoder.next(out), FrameStatus::NeedMore);
        if (cut > 0) {
            EXPECT_FALSE(decoder.atFrameBoundary());
        }
    }
}

TEST(FrameDecoder, EveryPayloadBitFlipIsCorrupt)
{
    const std::string framed = frame(encode(sampleSubmit()));
    constexpr std::size_t HEADER = 12;
    for (std::size_t byte = HEADER; byte < framed.size(); ++byte) {
        SCOPED_TRACE("payload byte " + std::to_string(byte));
        std::string victim = framed;
        victim[byte] = static_cast<char>(
            static_cast<unsigned char>(victim[byte]) ^
            static_cast<unsigned char>(1u << (byte % 8)));
        FrameDecoder decoder;
        decoder.feed(victim);
        std::string out;
        EXPECT_EQ(decoder.next(out), FrameStatus::Corrupt);
    }
}

TEST(FrameDecoder, FuzzedHeaderFlipsNeverYieldAValidPayload)
{
    // A flip in the header can read as Corrupt (magic/CRC damage) or
    // NeedMore (an inflated length field waits for bytes that never
    // arrive) — but never as Ok: no single-bit flip may produce a
    // deliverable payload.
    const std::string framed = frame(encode(sampleSubmit()));
    for (std::size_t byte = 0; byte < 12; ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            SCOPED_TRACE("header byte " + std::to_string(byte) +
                         " bit " + std::to_string(bit));
            std::string victim = framed;
            victim[byte] = static_cast<char>(
                static_cast<unsigned char>(victim[byte]) ^
                static_cast<unsigned char>(1u << bit));
            FrameDecoder decoder;
            decoder.feed(victim);
            std::string out;
            EXPECT_NE(decoder.next(out), FrameStatus::Ok);
        }
    }
}

TEST(FrameDecoder, JournalMagicOnTheWireIsCorrupt)
{
    // A journal file pushed down the socket must be refused by magic:
    // same framing layout, different stream ('AJRN' vs 'AWP1').
    std::string bogus = frame(encode(StatusMsg{}));
    bogus[0] = 'A';
    bogus[1] = 'J';
    bogus[2] = 'R';
    bogus[3] = 'N';
    FrameDecoder decoder;
    decoder.feed(bogus);
    std::string out;
    EXPECT_EQ(decoder.next(out), FrameStatus::Corrupt);
}

TEST(FrameDecoder, RecoveryNotAttemptedAfterCorrupt)
{
    // Corrupt is terminal: even if good frames follow, the stream
    // offset is untrustworthy and the session must be dropped. The
    // decoder keeps reporting Corrupt rather than resynchronizing.
    const std::string good = frame(encode(StatusMsg{}));
    std::string bad = good;
    // Shrink the length field (1 -> 0): the stored CRC no longer
    // matches the (now empty) payload span.
    bad[4] = static_cast<char>(bad[4] ^ 0x01);
    FrameDecoder decoder;
    decoder.feed(bad);
    decoder.feed(good);
    std::string out;
    EXPECT_EQ(decoder.next(out), FrameStatus::Corrupt);
    EXPECT_EQ(decoder.next(out), FrameStatus::Corrupt);
}

TEST(WireFaults, TruncateFrameStarvesTheDecoder)
{
    const std::string framed = frame(encode(sampleSubmit()));
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const std::string cut = faultinject::corruptWireFrame(
            framed, faultinject::WireFault::TruncateFrame, seed);
        ASSERT_LT(cut.size(), 12u);
        FrameDecoder decoder;
        decoder.feed(cut);
        std::string out;
        EXPECT_EQ(decoder.next(out), FrameStatus::NeedMore);
    }
}

TEST(WireFaults, MidFrameCutStarvesTheDecoder)
{
    const std::string framed = frame(encode(sampleSubmit()));
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const std::string cut = faultinject::corruptWireFrame(
            framed, faultinject::WireFault::MidFrameCut, seed);
        ASSERT_LT(cut.size(), framed.size());
        FrameDecoder decoder;
        decoder.feed(cut);
        std::string out;
        EXPECT_EQ(decoder.next(out), FrameStatus::NeedMore);
        EXPECT_FALSE(decoder.atFrameBoundary());
    }
}

TEST(WireFaults, CrcFlipIsCorrupt)
{
    const std::string framed = frame(encode(sampleSubmit()));
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const std::string flipped = faultinject::corruptWireFrame(
            framed, faultinject::WireFault::CrcFlip, seed);
        ASSERT_EQ(flipped.size(), framed.size());
        FrameDecoder decoder;
        decoder.feed(flipped);
        std::string out;
        EXPECT_EQ(decoder.next(out), FrameStatus::Corrupt);
    }
}

TEST(WireFaults, EmptyPayloadFrameNeverSurvivesAnyFault)
{
    // StatusMsg is the smallest frame (1-byte payload); an *empty*
    // payload cannot occur via encode(), so build the nearest shape
    // and check every fault kind still denies the decoder a payload.
    const std::string framed = frame(encode(StatusMsg{}));
    for (std::size_t f = 0; f < faultinject::NUM_WIRE_FAULTS; ++f) {
        const auto fault = static_cast<faultinject::WireFault>(f);
        for (std::uint64_t seed = 0; seed < 8; ++seed) {
            SCOPED_TRACE(std::string(faultinject::wireFaultName(fault)) +
                         " seed " + std::to_string(seed));
            const std::string victim =
                faultinject::corruptWireFrame(framed, fault, seed);
            FrameDecoder decoder;
            decoder.feed(victim);
            std::string out;
            EXPECT_NE(decoder.next(out), FrameStatus::Ok);
        }
    }
}

TEST(WireFaults, SeedDrivenChoiceIsDeterministicAndMapped)
{
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        const auto a = faultinject::anyWireFault(seed);
        const auto b = faultinject::anyWireFault(seed);
        EXPECT_EQ(a, b);
        EXPECT_STREQ(faultinject::wireFaultDiagnosticId(a), "AUR207");
        EXPECT_NE(std::string(faultinject::wireFaultName(a)), "");
    }
}

TEST(WireFaults, FuzzedFrameCorruptionNeverCrashes)
{
    const std::string framed = frame(encode(sampleSubmit()));
    for (std::uint64_t seed = 0; seed < 128; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const auto fault = faultinject::anyWireFault(mix(seed));
        const std::string victim =
            faultinject::corruptWireFrame(framed, fault, seed);
        FrameDecoder decoder;
        decoder.feed(victim);
        std::string out;
        FrameStatus status;
        int frames = 0;
        while ((status = decoder.next(out)) == FrameStatus::Ok)
            ASSERT_LE(++frames, 1);
        EXPECT_EQ(frames, 0) << "corrupted frame decoded as valid";
    }
}

} // namespace
