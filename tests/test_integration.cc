/**
 * @file
 * Integration tests: the qualitative findings of the paper's
 * evaluation section must hold on the reproduced system. Each test
 * encodes one §5 claim.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

constexpr Count N = 80000;

double
suiteCpi(const MachineConfig &m, Count n = N)
{
    return runSuite(m, trace::integerSuite(), n).avgCpi();
}

TEST(Integration, BiggerModelsAreFaster)
{
    const double small = suiteCpi(smallModel());
    const double base = suiteCpi(baselineModel());
    const double large = suiteCpi(largeModel());
    EXPECT_GT(small, base);
    EXPECT_GT(base, large);
}

TEST(Integration, LongerLatencyHurts)
{
    const double fast = suiteCpi(baselineModel().withLatency(17));
    const double slow = suiteCpi(baselineModel().withLatency(35));
    EXPECT_GT(slow, fast * 1.1);
}

TEST(Integration, DualIssueHelpsBaseline)
{
    const double dual = suiteCpi(baselineModel().withIssueWidth(2));
    const double single = suiteCpi(baselineModel().withIssueWidth(1));
    EXPECT_GT(single, dual * 1.05);
}

TEST(Integration, DualIssueGainShrinksWithLatency)
{
    // §5.1 / conclusion: "large memory latencies reduce the benefit
    // of superscalar issue."
    auto gain = [&](Cycle lat) {
        const double d =
            suiteCpi(baselineModel().withIssueWidth(2).withLatency(lat));
        const double s =
            suiteCpi(baselineModel().withIssueWidth(1).withLatency(lat));
        return (s - d) / s;
    };
    EXPECT_GT(gain(17), gain(35));
}

TEST(Integration, SingleIssueBaselineBeatsDualIssueSmall)
{
    // §5.1: "The single issue base model has a similar cost and much
    // better performance than the dual issue small model."
    const auto base1 = baselineModel().withIssueWidth(1);
    const auto small2 = smallModel().withIssueWidth(2);
    EXPECT_NEAR(base1.rbeCost(), small2.rbeCost(),
                0.08 * small2.rbeCost());
    EXPECT_LT(suiteCpi(base1), suiteCpi(small2) * 0.95);
}

TEST(Integration, PrefetchHelpsBaselineAndLarge)
{
    // §5.2 / Figure 5.
    const double base_pf = suiteCpi(baselineModel());
    const double base_no = suiteCpi(baselineModel().withPrefetch(false));
    EXPECT_GT(base_no, base_pf * 1.03);

    const double large_pf = suiteCpi(largeModel());
    const double large_no = suiteCpi(largeModel().withPrefetch(false));
    EXPECT_GT(large_no, large_pf * 1.03);
}

TEST(Integration, PrefetchHelpsSmallLeast)
{
    // §5.2: the small model's two buffers thrash between the I and D
    // streams, so it benefits far less than the larger models.
    auto benefit = [&](const MachineConfig &m) {
        const double with = suiteCpi(m);
        const double without = suiteCpi(m.withPrefetch(false));
        return (without - with) / without;
    };
    const double small = benefit(smallModel());
    EXPECT_LT(small, benefit(baselineModel()));
    EXPECT_LT(small, benefit(largeModel()));
}

TEST(Integration, PrefetchHelpsMoreAtLongLatency)
{
    auto benefit = [&](const MachineConfig &m) {
        const double with = suiteCpi(m);
        const double without = suiteCpi(m.withPrefetch(false));
        return (without - with) / without;
    };
    EXPECT_GT(benefit(baselineModel().withLatency(35)),
              benefit(baselineModel().withLatency(17)));
}

TEST(Integration, MoreMshrsNeverHurtAndHelpSmall)
{
    // §5.4 / Figure 7.
    const double one = suiteCpi(smallModel().withMshrs(1));
    const double two = suiteCpi(smallModel().withMshrs(2));
    const double four = suiteCpi(smallModel().withMshrs(4));
    EXPECT_GT(one, two * 1.02) << "blocking cache penalty";
    EXPECT_GE(two * 1.005, four) << "diminishing returns by 4";
}

TEST(Integration, ReducingLargeModelMshrsHurtsSlightly)
{
    const double four = suiteCpi(largeModel());
    const double one = suiteCpi(largeModel().withMshrs(1));
    EXPECT_GT(one, four * 1.02);
}

TEST(Integration, WriteCacheHitRateGrowsWithModel)
{
    // Table 5 row ordering.
    auto wc = [&](const MachineConfig &m) {
        Accumulator acc;
        for (const auto &r :
             runSuite(m, trace::integerSuite(), N).runs)
            acc.add(r.write_cache_hit_pct);
        return acc.mean();
    };
    const double s = wc(smallModel());
    const double b = wc(baselineModel());
    const double l = wc(largeModel());
    EXPECT_LT(s, b);
    EXPECT_LT(b, l);
}

TEST(Integration, StoreTrafficReductionGrowsWithModel)
{
    // §5.5: traffic falls to ~44% / 30% / 22% of stores.
    auto traffic = [&](const MachineConfig &m) {
        Accumulator acc;
        for (const auto &r :
             runSuite(m, trace::integerSuite(), N).runs)
            acc.add(r.storeTrafficPct());
        return acc.mean();
    };
    const double s = traffic(smallModel());
    const double b = traffic(baselineModel());
    const double l = traffic(largeModel());
    EXPECT_GT(s, b);
    EXPECT_GT(b, l);
    EXPECT_LT(s, 70.0) << "small model already halves write traffic";
}

TEST(Integration, InstructionPrefetchBeatsDataPrefetch)
{
    // Tables 3 vs 4: I-stream ~58% average, D-stream ~12%.
    Accumulator ipf, dpf;
    for (const auto &r :
         runSuite(baselineModel(), trace::integerSuite(), N).runs) {
        ipf.add(r.iprefetch_hit_pct);
        dpf.add(r.dprefetch_hit_pct);
    }
    EXPECT_GT(ipf.mean(), 45.0);
    EXPECT_LT(ipf.mean(), 80.0);
    EXPECT_LT(dpf.mean(), ipf.mean());
}

TEST(Integration, EqntottExtremes)
{
    // eqntott: highest I-prefetch hit rate, lowest D-prefetch.
    const auto res = runSuite(baselineModel(), trace::integerSuite(), N);
    double eq_ipf = 0, eq_dpf = 0;
    double max_other_ipf = 0, min_other_dpf = 100;
    for (const auto &r : res.runs) {
        if (r.benchmark == "eqntott") {
            eq_ipf = r.iprefetch_hit_pct;
            eq_dpf = r.dprefetch_hit_pct;
        } else {
            max_other_ipf = std::max(max_other_ipf,
                                     r.iprefetch_hit_pct);
            min_other_dpf = std::min(min_other_dpf,
                                     r.dprefetch_hit_pct);
        }
    }
    EXPECT_GT(eq_ipf, max_other_ipf);
    EXPECT_LT(eq_dpf, min_other_dpf);
}

TEST(Integration, SmallModelIsLsuBound)
{
    // Figure 6: with one MSHR the LSU dominates the stall mix.
    const auto res = runSuite(smallModel(), trace::integerSuite(), N);
    const double lsu = res.avgStallCpi(StallCause::LsuBusy);
    const double rob = res.avgStallCpi(StallCause::RobFull);
    const double ic = res.avgStallCpi(StallCause::ICache);
    EXPECT_GT(lsu, rob);
    EXPECT_GT(lsu, ic);
}

TEST(Integration, LargeModelIsLoadLatencyBound)
{
    // §5.3: "the large percentage of Load stalls is caused by the
    // three-cycle latency of the pipelined data cache."
    const auto res = runSuite(largeModel(), trace::integerSuite(), N);
    const double load = res.avgStallCpi(StallCause::Load);
    for (auto cause : {StallCause::ICache, StallCause::LsuBusy,
                       StallCause::RobFull, StallCause::FpQueue})
        EXPECT_GT(load, res.avgStallCpi(cause));
}

TEST(Integration, FpuPolicyOrdering)
{
    // Table 6: in-order >= single >= dual CPI, for every benchmark.
    for (const auto &p : trace::floatSuite()) {
        auto cpi = [&](fpu::IssuePolicy pol) {
            auto m = baselineModel();
            m.fpu.policy = pol;
            return simulate(m, p, N).cpi();
        };
        const double in_order = cpi(fpu::IssuePolicy::InOrderComplete);
        const double single = cpi(fpu::IssuePolicy::OutOfOrderSingle);
        const double dual = cpi(fpu::IssuePolicy::OutOfOrderDual);
        EXPECT_GE(in_order * 1.001, single) << p.name;
        EXPECT_GE(single * 1.001, dual) << p.name;
    }
}

TEST(Integration, RecommendedModelNearLargeAtLowerCost)
{
    // §5.6 point E.
    const double rec = suiteCpi(recommendedModel());
    const double large = suiteCpi(largeModel());
    EXPECT_LT(recommendedModel().rbeCost(),
              0.92 * largeModel().rbeCost());
    EXPECT_LT(rec, large * 1.12) << "within ~12% of large";
}

TEST(Integration, BranchFoldingAblation)
{
    // The Figure 3 NEXT field: removing folding inserts a fetch
    // bubble per taken transfer. At baseline CPIs the fetch buffer
    // hides most of it (the per-bubble effect is proven in the IFU
    // unit tests), so the aggregate is small but must not be
    // negative.
    auto no_fold = baselineModel();
    no_fold.ifu.branch_folding = false;
    EXPECT_GT(suiteCpi(no_fold), suiteCpi(baselineModel()));
}

TEST(Integration, NonPipelinedFpUnitsAreModestlySlower)
{
    // §5.10: "the degradation in performance is less than 5%". Our
    // synthetic FP kernels are denser in FP arithmetic than the
    // truncated SPECfp runs (a deliberate Table 6 calibration), so
    // the iterative units hurt somewhat more here; the claim under
    // test is that the cost is modest, not catastrophic, against a
    // 25% area saving.
    auto piped = baselineModel();
    auto iter = baselineModel();
    iter.fpu.add.pipelined = false;
    iter.fpu.mul.pipelined = false;
    Accumulator degradation;
    for (const auto &p : trace::floatSuite()) {
        const double a = simulate(piped, p, N).cpi();
        const double b = simulate(iter, p, N).cpi();
        degradation.add((b - a) / a);
    }
    EXPECT_LT(degradation.mean(), 0.15);
    EXPECT_GE(degradation.mean(), 0.0);
}

} // namespace
