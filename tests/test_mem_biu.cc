/**
 * @file
 * Unit tests for the BIU latency/bandwidth/queue model.
 */

#include <gtest/gtest.h>

#include "mem/biu.hh"

namespace
{

using aurora::Cycle;
using aurora::mem::Biu;
using aurora::mem::BiuConfig;

BiuConfig
cfg(Cycle latency = 17, Cycle occ = 4, unsigned depth = 8)
{
    BiuConfig c;
    c.latency = latency;
    c.line_occupancy = occ;
    c.queue_depth = depth;
    return c;
}

TEST(Biu, SingleReadLatency)
{
    Biu biu(cfg(17, 4));
    // Completion = start + latency + transfer time.
    EXPECT_EQ(biu.requestLine(100, false), 100u + 17 + 4);
}

TEST(Biu, BackToBackReadsSerializeOnTheBus)
{
    Biu biu(cfg(17, 4));
    const Cycle first = biu.requestLine(0, false);
    const Cycle second = biu.requestLine(0, false);
    EXPECT_EQ(first, 21u);
    EXPECT_EQ(second, 25u) << "second transfer starts 4 cycles later";
}

TEST(Biu, IdleBusDoesNotDelay)
{
    Biu biu(cfg(10, 2));
    biu.requestLine(0, false);
    // Long after the transfer finished: no queueing delay.
    EXPECT_EQ(biu.requestLine(1000, false), 1000u + 12);
}

TEST(Biu, WritesConsumeBandwidth)
{
    Biu biu(cfg(17, 4));
    biu.postWrite(0);
    EXPECT_EQ(biu.requestLine(0, false), 4u + 17 + 4)
        << "read queues behind the write transfer";
    EXPECT_EQ(biu.writes(), 1u);
}

TEST(Biu, RoundTripLatency)
{
    // A validation query carries no line payload: the reply arrives
    // one secondary latency after the bus slot starts.
    Biu biu(cfg(20, 4));
    EXPECT_EQ(biu.roundTrip(5), 5u + 20);
    EXPECT_EQ(biu.roundTrips(), 1u);
}

TEST(Biu, CanAcceptUntilBacklogFills)
{
    Biu biu(cfg(17, 4, 2)); // 2-deep queue
    EXPECT_TRUE(biu.canAccept(0));
    biu.requestLine(0, false);
    EXPECT_TRUE(biu.canAccept(0));
    biu.requestLine(0, false);
    EXPECT_FALSE(biu.canAccept(0)) << "backlog covers the queue";
    // Time drains the backlog.
    EXPECT_TRUE(biu.canAccept(8));
}

TEST(Biu, StatsClassifyTraffic)
{
    Biu biu(cfg());
    biu.requestLine(0, false);
    biu.requestLine(0, true);
    biu.requestLine(0, true);
    biu.postWrite(0);
    EXPECT_EQ(biu.demandReads(), 1u);
    EXPECT_EQ(biu.prefetchReads(), 2u);
    EXPECT_EQ(biu.writes(), 1u);
    EXPECT_EQ(biu.busyCycles(), 4u * 4);
}

TEST(BiuDeath, ZeroOccupancyPanics)
{
    EXPECT_DEATH(Biu(cfg(17, 0)), "occupy");
}

} // namespace
