/**
 * @file
 * Causal-span tests: id-derivation invariants (nonzero, domain
 * separation, cross-process agreement), the span file's torn-tail /
 * corruption-offset contract, timeline→span conversion with both
 * parent schemes (worker-pool job parents, shard dispatch parents),
 * and Chrome-trace rendering with hex id args.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "harness/sweep_trace.hh"
#include "obs/ids.hh"
#include "obs/trace.hh"
#include "util/sim_error.hh"

namespace
{

namespace fs = std::filesystem;
using namespace aurora;
using aurora::util::SimError;

std::string
tempPath(const std::string &name)
{
    return (fs::path(::testing::TempDir()) / name).string();
}

TEST(ObsIds, AllDerivedIdsAreNonzeroAndDistinct)
{
    const std::uint64_t trace = obs::traceIdForGrid(0x1234);
    ASSERT_NE(trace, 0u);
    std::set<std::uint64_t> ids;
    ids.insert(obs::rootSpanId(trace));
    ids.insert(obs::stageSpanId(trace, "admission"));
    ids.insert(obs::stageSpanId(trace, "swarm"));
    ids.insert(obs::stageSpanId(trace, "merge"));
    for (std::uint64_t j = 0; j < 8; ++j) {
        ids.insert(obs::jobSpanId(trace, j));
        ids.insert(obs::attemptSpanId(trace, j, 1));
        ids.insert(obs::attemptSpanId(trace, j, 2));
        ids.insert(obs::attemptSpanId(trace, j, 1, /*epoch=*/3));
        ids.insert(obs::leaseSpanId(trace, j));
        ids.insert(obs::dispatchSpanId(trace, j, 1));
    }
    // Domain separation: job 5, lease epoch 5, dispatch ticket 5 all
    // hash apart; every id is distinct and none is the 0 sentinel.
    EXPECT_EQ(ids.size(), 4u + 8u * 6u);
    EXPECT_EQ(ids.count(0), 0u);
}

TEST(ObsIds, DerivationIsPureAcrossProcesses)
{
    // The whole protocol: a coordinator and a shard that share only
    // the trace id must compute identical span ids.
    const std::uint64_t fp = 0xfeedfacecafebeefull;
    EXPECT_EQ(obs::traceIdForGrid(fp), obs::traceIdForGrid(fp));
    const std::uint64_t trace = obs::traceIdForGrid(fp);
    EXPECT_EQ(obs::dispatchSpanId(trace, 7, 2),
              obs::dispatchSpanId(trace, 7, 2));
    EXPECT_NE(obs::dispatchSpanId(trace, 7, 2),
              obs::dispatchSpanId(trace, 7, 3));
    EXPECT_NE(obs::traceIdForGrid(fp), obs::traceIdForGrid(fp + 1));
}

TEST(ObsIds, HexIdRendersFixedWidth)
{
    EXPECT_EQ(obs::hexId(0), "0x0000000000000000");
    EXPECT_EQ(obs::hexId(0x1a2b), "0x0000000000001a2b");
    EXPECT_EQ(obs::hexId(0xffffffffffffffffull),
              "0xffffffffffffffff");
}

obs::Span
sampleSpan(std::uint64_t trace, std::uint64_t job)
{
    obs::Span s;
    s.trace_id = trace;
    s.span_id = obs::jobSpanId(trace, job);
    s.parent_id = obs::rootSpanId(trace);
    s.name = "espresso@baseline";
    s.cat = "attempt";
    s.pid = 101;
    s.tid = 2;
    s.ts_us = 1500.0;
    s.dur_us = 250.0;
    s.job = job;
    s.has_job = true;
    s.attempt = 1;
    return s;
}

TEST(SpanFile, RoundTripsThroughWriterAndLoader)
{
    const std::string path = tempPath("spans_roundtrip.ndjson");
    const std::uint64_t trace = obs::traceIdForGrid(42);
    {
        obs::SpanFileWriter writer(path);
        for (std::uint64_t j = 0; j < 3; ++j)
            writer.append(sampleSpan(trace, j));
    }
    const auto loaded = obs::loadSpanFile(path);
    EXPECT_FALSE(loaded.dropped_tail);
    ASSERT_EQ(loaded.spans.size(), 3u);
    EXPECT_EQ(loaded.spans[0].trace_id, trace);
    EXPECT_EQ(loaded.spans[1].span_id, obs::jobSpanId(trace, 1));
    EXPECT_EQ(loaded.spans[2].parent_id, obs::rootSpanId(trace));
    EXPECT_EQ(loaded.spans[0].name, "espresso@baseline");
    EXPECT_EQ(loaded.spans[0].pid, 101u);
    EXPECT_TRUE(loaded.spans[0].has_job);
    EXPECT_DOUBLE_EQ(loaded.spans[0].ts_us, 1500.0);
}

TEST(SpanFile, TornTailDroppedButMidFileCorruptionRaises)
{
    const std::string path = tempPath("spans_torn.ndjson");
    const std::uint64_t trace = obs::traceIdForGrid(7);
    {
        obs::SpanFileWriter writer(path);
        writer.append(sampleSpan(trace, 0));
        writer.append(sampleSpan(trace, 1));
    }
    // Crash mid-append: half a line at EOF is dropped, not fatal.
    const auto size = fs::file_size(path);
    fs::resize_file(path, size - 7);
    const auto loaded = obs::loadSpanFile(path);
    EXPECT_TRUE(loaded.dropped_tail);
    ASSERT_EQ(loaded.spans.size(), 1u);

    // The same bytes *followed by a valid line* are corruption, and
    // the error names the byte offset.
    {
        std::ofstream out(path, std::ios::app);
        out << "\n" << obs::spanJsonLine(sampleSpan(trace, 2)) << "\n";
    }
    try {
        obs::loadSpanFile(path);
        FAIL() << "mid-file corruption must raise";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("byte"),
                  std::string::npos);
    }
}

TEST(SpanFile, MissingFileRaises)
{
    EXPECT_THROW(obs::loadSpanFile(tempPath("no_such.spans")),
                 SimError);
}

void
fillTimeline(harness::SweepTimeline &timeline, std::uint64_t trace)
{
    timeline.setTrace(trace);
    harness::TimelineSpan a;
    a.job = 0;
    a.label = "espresso@small";
    a.attempt = 1;
    a.start_ms = 1.0;
    a.end_ms = 2.5;
    timeline.record(a);
    harness::TimelineSpan b;
    b.job = 1;
    b.label = "li@small";
    b.attempt = 2;
    b.start_ms = 2.0;
    b.end_ms = 4.0;
    b.kind = harness::SpanKind::Failed;
    b.error = "boom";
    timeline.record(b);
    harness::TimelineSpan c;
    c.job = 2;
    c.label = "replayed";
    c.attempt = 0;
    c.kind = harness::SpanKind::Resumed;
    timeline.record(c);
}

TEST(SpansFromTimeline, WorkerPoolAttemptsParentToJobSpans)
{
    const std::uint64_t trace = obs::traceIdForGrid(99);
    harness::SweepTimeline timeline;
    fillTimeline(timeline, trace);
    const auto spans =
        obs::spansFromTimeline(timeline, trace, /*pid=*/0,
                               /*epoch=*/0);
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].span_id, obs::attemptSpanId(trace, 0, 1));
    EXPECT_EQ(spans[0].parent_id, obs::jobSpanId(trace, 0));
    EXPECT_EQ(spans[1].parent_id, obs::jobSpanId(trace, 1));
    EXPECT_EQ(spans[1].error, "boom");
    EXPECT_TRUE(spans[2].instant); // resumed replay = instant
    // 1 wall ms = 1000 trace µs.
    EXPECT_DOUBLE_EQ(spans[0].ts_us, 1000.0);
    EXPECT_DOUBLE_EQ(spans[0].dur_us, 1500.0);
}

TEST(SpansFromTimeline, ShardAttemptsParentToDispatchSpans)
{
    const std::uint64_t trace = obs::traceIdForGrid(99);
    const std::uint64_t epoch = 2;
    harness::SweepTimeline timeline;
    fillTimeline(timeline, trace);
    // The shard path: the coordinator's dispatch spans are the
    // parents, keyed by job index.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> parents = {
        {0, obs::dispatchSpanId(trace, 10, epoch)},
        {1, obs::dispatchSpanId(trace, 11, epoch)},
        {2, obs::dispatchSpanId(trace, 12, epoch)},
    };
    const auto spans = obs::spansFromTimeline(timeline, trace,
                                              /*pid=*/102, epoch,
                                              &parents);
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].parent_id,
              obs::dispatchSpanId(trace, 10, epoch));
    // Epoch-qualified attempt ids: the same job+attempt on another
    // incarnation is a distinct span.
    EXPECT_EQ(spans[0].span_id,
              obs::attemptSpanId(trace, 0, 1, epoch));
    EXPECT_NE(spans[0].span_id, obs::attemptSpanId(trace, 0, 1));
    EXPECT_EQ(spans[0].pid, 102u);
}

TEST(ChromeTrace, RendersHexIdArgsAndProcessNames)
{
    const std::uint64_t trace = obs::traceIdForGrid(5);
    obs::Span root;
    root.trace_id = trace;
    root.span_id = obs::rootSpanId(trace);
    root.name = "grid";
    root.cat = "grid";
    root.pid = 1;
    root.dur_us = 5000.0;
    std::vector<obs::Span> spans{root, sampleSpan(trace, 0)};
    spans[1].pid = 101;

    std::ostringstream os;
    obs::writeChromeTrace(os, spans,
                          {{1, "aurora_swarm"},
                           {101, "aurora_shardd e1"}});
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find(obs::hexId(trace)), std::string::npos);
    EXPECT_NE(doc.find("\"parent_id\":\"" + obs::hexId(trace) + "\""),
              std::string::npos);
    EXPECT_NE(doc.find("aurora_shardd e1"), std::string::npos);
    // The root's parent renders as the zero sentinel, not omitted.
    EXPECT_NE(doc.find("0x0000000000000000"), std::string::npos);
}

TEST(SpanLog, CollectsConcurrentlyAndSnapshots)
{
    const std::uint64_t trace = obs::traceIdForGrid(3);
    obs::SpanLog log;
    log.add(sampleSpan(trace, 0));
    log.addAll({sampleSpan(trace, 1), sampleSpan(trace, 2)});
    EXPECT_EQ(log.size(), 3u);
    const auto spans = log.spans();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[2].span_id, obs::jobSpanId(trace, 2));
}

} // namespace
