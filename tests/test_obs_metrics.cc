/**
 * @file
 * Metrics-exposition tests: Prometheus name mangling, deterministic
 * byte-identical renders, histogram summaries, labeled gauges, and
 * the JSON exposition's schema tag.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hh"
#include "telemetry/registry.hh"

namespace
{

using namespace aurora;

TEST(PrometheusName, ManglesDotsAndKeepsWordChars)
{
    EXPECT_EQ(obs::prometheusName("serve.queued_jobs"),
              "aurora_serve_queued_jobs");
    EXPECT_EQ(obs::prometheusName("serve.admission.AUR201"),
              "aurora_serve_admission_AUR201");
    EXPECT_EQ(obs::prometheusName("weird-name with spaces"),
              "aurora_weird_name_with_spaces");
}

telemetry::Registry
sampleRegistry()
{
    telemetry::Registry registry;
    registry.counter("serve.submits", "grids submitted").add(3);
    registry.counter("fleet.respawns", "shard respawns").add();
    auto &h = registry.histogram("serve.submit_to_grid_done_ms",
                                 "submit to GridDone latency", 64);
    h.add(5);
    h.add(10);
    h.add(10);
    return registry;
}

TEST(RenderPrometheus, EmitsCountersHistogramsAndGauges)
{
    const auto registry = sampleRegistry();
    std::vector<obs::Gauge> gauges;
    gauges.push_back(
        obs::gauge("serve.queued_jobs", "jobs waiting", 7));
    obs::Gauge tenants;
    tenants.name = "serve.tenant_inflight";
    tenants.description = "inflight jobs per tenant";
    tenants.label_key = "tenant";
    tenants.values.push_back({"alice", 2});
    tenants.values.push_back({"bo\"b", 1});
    gauges.push_back(tenants);

    const std::string text = obs::renderPrometheus(registry, gauges);
    EXPECT_NE(text.find("# TYPE aurora_serve_submits counter"),
              std::string::npos);
    EXPECT_NE(text.find("aurora_serve_submits 3"), std::string::npos);
    EXPECT_NE(text.find("aurora_fleet_respawns 1"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE aurora_serve_submit_to_grid_done_ms "
                        "summary"),
              std::string::npos);
    EXPECT_NE(text.find("aurora_serve_submit_to_grid_done_ms_count 3"),
              std::string::npos);
    EXPECT_NE(text.find("aurora_serve_submit_to_grid_done_ms_sum 25"),
              std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
    EXPECT_NE(text.find("aurora_serve_queued_jobs 7"),
              std::string::npos);
    EXPECT_NE(
        text.find("aurora_serve_tenant_inflight{tenant=\"alice\"} 2"),
        std::string::npos);
    // Label escaping: the quote inside the tenant name is escaped.
    EXPECT_NE(
        text.find("aurora_serve_tenant_inflight{tenant=\"bo\\\"b\"} 1"),
        std::string::npos);
}

TEST(RenderPrometheus, TwoScrapesOfIdleStateAreByteIdentical)
{
    const auto registry = sampleRegistry();
    const std::vector<obs::Gauge> gauges{
        obs::gauge("serve.sessions", "connected sessions", 0)};
    EXPECT_EQ(obs::renderPrometheus(registry, gauges),
              obs::renderPrometheus(registry, gauges));
    EXPECT_EQ(obs::renderMetricsJson(registry, gauges),
              obs::renderMetricsJson(registry, gauges));
}

TEST(RenderMetricsJson, CarriesSchemaTagAndValues)
{
    const auto registry = sampleRegistry();
    const std::string json = obs::renderMetricsJson(
        registry, {obs::gauge("serve.queued_jobs", "queue", 4)});
    EXPECT_NE(json.find("\"aurora.metrics.v1\""), std::string::npos);
    EXPECT_NE(json.find("\"serve.submits\""), std::string::npos);
    EXPECT_NE(json.find("\"serve.queued_jobs\""), std::string::npos);
    // Dotted names survive in JSON (only Prometheus mangles).
    EXPECT_EQ(json.find("aurora_serve_submits"), std::string::npos);
}

} // namespace
