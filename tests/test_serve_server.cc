/**
 * @file
 * End-to-end service tests over real Unix-domain sockets: multi-tenant
 * submission and streaming, admission and preflight rejections with
 * stable catalog IDs, disconnect isolation, graceful drain, and the
 * tentpole guarantee — a daemon SIGKILLed mid-grid restarts, resumes
 * every grid from its spool, and the combined results are bit-identical
 * to the same grid run by a standalone serial SweepRunner.
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/config_io.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "serve/server.hh"
#include "serve/wire.hh"
#include "trace/spec_profiles.hh"
#include "util/sim_error.hh"
#include "util/socket.hh"

namespace
{

using namespace aurora;
namespace fs = std::filesystem;
namespace wire = serve::wire;

constexpr std::uint64_t RECV_TIMEOUT_MS = 120'000;

std::string
tempPath(const std::string &name)
{
    return (fs::path(::testing::TempDir()) / name).string();
}

/** In-process daemon: Server on its own thread, drained on stop(). */
class TestDaemon
{
  public:
    explicit TestDaemon(serve::ServerConfig config)
        : server_(std::make_unique<serve::Server>(std::move(config)))
    {
        thread_ = std::thread([this] { server_->run(); });
    }

    ~TestDaemon() { stop(); }

    serve::Server &server() { return *server_; }

    void
    stop()
    {
        if (thread_.joinable()) {
            server_->requestDrain();
            thread_.join();
        }
    }

  private:
    std::unique_ptr<serve::Server> server_;
    std::thread thread_;
};

/** One wire client: connects and completes the Hello handshake. */
class Client
{
  public:
    Client(const std::string &socket_path, const std::string &tenant)
        : fd_(util::connectUnix(socket_path))
    {
        wire::sendFrame(fd_.get(), wire::encode(wire::HelloMsg{
                                       wire::PROTOCOL_VERSION, tenant}));
        const auto reply = recv();
        if (!reply)
            util::raiseError(util::SimErrorCode::BadWire,
                             "no Welcome from test daemon");
        welcome_ = wire::decodeWelcome(*reply);
    }

    const wire::WelcomeMsg &welcome() const { return welcome_; }

    void
    send(const std::string &payload)
    {
        wire::sendFrame(fd_.get(), payload);
    }

    std::optional<std::string>
    recv(std::uint64_t timeout_ms = RECV_TIMEOUT_MS)
    {
        return wire::recvFrame(fd_.get(), decoder_, timeout_ms);
    }

    void close() { fd_.reset(); }

  private:
    util::Fd fd_;
    wire::FrameDecoder decoder_;
    wire::WelcomeMsg welcome_;
};

/** Receive one frame, failing the test cleanly on a peer close. */
std::string
mustRecv(Client &client)
{
    auto payload = client.recv();
    if (!payload)
        util::raiseError(util::SimErrorCode::BadWire,
                         "daemon closed unexpectedly");
    return *std::move(payload);
}

struct GridStream
{
    std::map<std::uint64_t, harness::JournalRecord> records;
    wire::GridDoneMsg done;
};

/** Drain one grid's stream to GridDone, collecting Result records. */
GridStream
streamToDone(Client &client, std::uint64_t fingerprint)
{
    GridStream out;
    for (;;) {
        const auto payload = client.recv();
        if (!payload)
            util::raiseError(util::SimErrorCode::BadWire,
                             "daemon closed before GridDone");
        switch (wire::peekType(*payload)) {
          case wire::MsgType::Result: {
            const auto msg = wire::decodeResult(*payload);
            if (msg.fingerprint != fingerprint)
                break;
            auto record = harness::decodeJournalRecord(msg.record);
            out.records.emplace(record.job_index, std::move(record));
            break;
          }
          case wire::MsgType::GridDone: {
            const auto msg = wire::decodeGridDone(*payload);
            if (msg.fingerprint != fingerprint)
                break;
            out.done = msg;
            return out;
          }
          default:
            break;
        }
    }
}

serve::ServerConfig
baseConfig(const std::string &stem)
{
    serve::ServerConfig config;
    config.socket_path = tempPath(stem + ".sock");
    config.spool_dir = tempPath(stem + ".spool");
    config.workers = 2;
    fs::remove(config.socket_path);
    fs::remove_all(config.spool_dir);
    return config;
}

const char *SPEC = "model=small";

wire::SubmitMsg
smallSubmit(const std::vector<std::string> &profiles,
            std::uint64_t insts, std::uint64_t base_seed)
{
    const auto machine =
        core::describe(core::parseMachineSpec(SPEC));
    wire::SubmitMsg submit;
    submit.has_base_seed = true;
    submit.base_seed = base_seed;
    for (const auto &p : profiles)
        submit.jobs.push_back({machine, p, insts});
    return submit;
}

/** The same grid, run by a standalone serial SweepRunner. */
std::vector<harness::SweepOutcome>
runSerial(const std::vector<std::string> &profiles, std::uint64_t insts,
          std::uint64_t base_seed)
{
    std::vector<harness::SweepJob> jobs;
    const auto machine = core::parseMachineSpec(SPEC);
    for (const auto &p : profiles)
        jobs.push_back({machine, trace::profileByName(p), insts});
    harness::SweepOptions options;
    options.workers = 1;
    options.base_seed = base_seed;
    options.preflight = false;
    harness::SweepRunner runner(options);
    return runner.runOutcomes(jobs);
}

void
expectBitIdentical(const GridStream &stream,
                   const std::vector<harness::SweepOutcome> &serial)
{
    ASSERT_EQ(stream.records.size(), serial.size());
    for (const auto &[index, record] : stream.records) {
        SCOPED_TRACE("job " + std::to_string(index));
        ASSERT_LT(index, serial.size());
        ASSERT_TRUE(record.outcome.ok);
        ASSERT_TRUE(serial[index].ok);
        EXPECT_EQ(harness::runResultBytes(record.outcome.result),
                  harness::runResultBytes(serial[index].result));
    }
}

TEST(ServeServer, SubmitStreamsBitIdenticalToStandaloneRunner)
{
    const std::vector<std::string> profiles = {"espresso", "li",
                                               "eqntott"};
    auto config = baseConfig("serve_submit");
    TestDaemon daemon(std::move(config));
    Client client(daemon.server().socketPath(), "alice");
    EXPECT_FALSE(client.welcome().draining);

    client.send(wire::encode(smallSubmit(profiles, 3000, 42)));
    const auto reply = client.recv();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(wire::peekType(*reply), wire::MsgType::Accepted);
    const auto accepted = wire::decodeAccepted(*reply);
    EXPECT_EQ(accepted.jobs, profiles.size());
    EXPECT_FALSE(accepted.attached);

    const GridStream stream =
        streamToDone(client, accepted.fingerprint);
    EXPECT_EQ(stream.done.ok, profiles.size());
    EXPECT_EQ(stream.done.failed, 0u);
    EXPECT_EQ(stream.done.resumed, 0u);
    expectBitIdentical(stream, runSerial(profiles, 3000, 42));

    // The daemon journaled exactly what it streamed.
    char name[32];
    std::snprintf(name, sizeof name, "%016llx",
                  static_cast<unsigned long long>(accepted.fingerprint));
    const auto journal = harness::loadJournal(
        tempPath("serve_submit.spool") + "/" + name + ".ajrn");
    EXPECT_EQ(journal.records.size(), profiles.size());
}

TEST(ServeServer, DuplicateFingerprintRejectedAndAttachReplays)
{
    const std::vector<std::string> profiles = {"espresso", "li"};
    TestDaemon daemon(baseConfig("serve_dup"));
    Client client(daemon.server().socketPath(), "alice");

    client.send(wire::encode(smallSubmit(profiles, 2000, 7)));
    const auto accepted = wire::decodeAccepted(mustRecv(client));
    const GridStream first = streamToDone(client, accepted.fingerprint);
    EXPECT_EQ(first.done.ok, profiles.size());

    // Same grid again: duplicate fingerprint, AUR206.
    Client dup(daemon.server().socketPath(), "alice");
    dup.send(wire::encode(smallSubmit(profiles, 2000, 7)));
    const auto rejection = dup.recv();
    ASSERT_TRUE(rejection.has_value());
    ASSERT_EQ(wire::peekType(*rejection), wire::MsgType::Rejected);
    EXPECT_EQ(wire::decodeRejected(*rejection).id, "AUR206");

    // Attach on the same session replays every journaled record.
    dup.send(wire::encode(wire::AttachMsg{accepted.fingerprint}));
    const auto attach_reply = dup.recv();
    ASSERT_TRUE(attach_reply.has_value());
    const auto attached = wire::decodeAccepted(*attach_reply);
    EXPECT_TRUE(attached.attached);
    EXPECT_EQ(attached.done, profiles.size());
    const GridStream replay = streamToDone(dup, accepted.fingerprint);
    ASSERT_EQ(replay.records.size(), first.records.size());
    for (const auto &[index, record] : replay.records) {
        const auto &live = first.records.at(index);
        EXPECT_EQ(harness::runResultBytes(record.outcome.result),
                  harness::runResultBytes(live.outcome.result));
    }
}

TEST(ServeServer, CrossTenantAttachAndCancelAreUnknown)
{
    TestDaemon daemon(baseConfig("serve_xtenant"));
    Client alice(daemon.server().socketPath(), "alice");
    alice.send(wire::encode(smallSubmit({"espresso"}, 2000, 1)));
    const auto accepted = wire::decodeAccepted(mustRecv(alice));

    // Another tenant cannot see (or even probe) alice's grid.
    Client mallory(daemon.server().socketPath(), "mallory");
    mallory.send(wire::encode(wire::AttachMsg{accepted.fingerprint}));
    const auto attach_reply = mallory.recv();
    ASSERT_EQ(wire::peekType(*attach_reply), wire::MsgType::Rejected);
    EXPECT_EQ(wire::decodeRejected(*attach_reply).id, "AUR208");

    mallory.send(wire::encode(wire::CancelMsg{accepted.fingerprint}));
    const auto cancel_reply = mallory.recv();
    ASSERT_EQ(wire::peekType(*cancel_reply), wire::MsgType::Rejected);
    EXPECT_EQ(wire::decodeRejected(*cancel_reply).id, "AUR208");

    // Alice's grid is undisturbed by the probes.
    const GridStream stream = streamToDone(alice, accepted.fingerprint);
    EXPECT_EQ(stream.done.ok, 1u);
}

TEST(ServeServer, PreflightRejectionCarriesLintIdSessionSurvives)
{
    TestDaemon daemon(baseConfig("serve_preflight"));
    Client client(daemon.server().socketPath(), "alice");

    // fp_buses=0 is the structural-deadlock configuration the static
    // linter refuses (AUR010) — admission must surface the lint ID.
    wire::SubmitMsg bad = smallSubmit({"espresso"}, 2000, 3);
    bad.jobs[0].machine_spec =
        core::describe(core::parseMachineSpec("fp_buses=0"));
    client.send(wire::encode(bad));
    const auto rejection = client.recv();
    ASSERT_TRUE(rejection.has_value());
    ASSERT_EQ(wire::peekType(*rejection), wire::MsgType::Rejected);
    const auto rejected = wire::decodeRejected(*rejection);
    EXPECT_EQ(rejected.id, "AUR010");
    EXPECT_EQ(rejected.code, util::SimErrorCode::BadConfig);

    // A rejection is not fatal to the session: a clean submission on
    // the same connection still completes.
    client.send(wire::encode(smallSubmit({"espresso"}, 2000, 3)));
    const auto reply = client.recv();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(wire::peekType(*reply), wire::MsgType::Accepted);
    const auto accepted = wire::decodeAccepted(*reply);
    const GridStream stream = streamToDone(client, accepted.fingerprint);
    EXPECT_EQ(stream.done.ok, 1u);
}

TEST(ServeServer, QuotaRejectionLeavesOtherTenantsUndisturbed)
{
    auto config = baseConfig("serve_quota");
    config.limits.grids_per_tenant = 1;
    config.workers = 1;
    TestDaemon daemon(std::move(config));

    // Alice occupies her single grid slot with slow work.
    Client alice(daemon.server().socketPath(), "alice");
    alice.send(wire::encode(smallSubmit(
        {"espresso", "li", "eqntott"}, 200'000, 11)));
    const auto first = wire::decodeAccepted(mustRecv(alice));

    // Her second submission is over quota...
    Client alice2(daemon.server().socketPath(), "alice");
    alice2.send(wire::encode(smallSubmit({"sc"}, 2000, 12)));
    const auto rejection = alice2.recv();
    ASSERT_EQ(wire::peekType(*rejection), wire::MsgType::Rejected);
    EXPECT_EQ(wire::decodeRejected(*rejection).id, "AUR201");

    // ...while bob is admitted and completes despite the overload.
    Client bob(daemon.server().socketPath(), "bob");
    bob.send(wire::encode(smallSubmit({"sc"}, 2000, 13)));
    const auto bob_reply = bob.recv();
    ASSERT_EQ(wire::peekType(*bob_reply), wire::MsgType::Accepted);
    const auto bob_accepted = wire::decodeAccepted(*bob_reply);
    const GridStream bob_stream =
        streamToDone(bob, bob_accepted.fingerprint);
    EXPECT_EQ(bob_stream.done.ok, 1u);

    // Alice's grid still runs to completion afterwards.
    const GridStream stream = streamToDone(alice, first.fingerprint);
    EXPECT_EQ(stream.done.ok, 3u);
}

TEST(ServeServer, DisconnectCancelsOwnGridOnly)
{
    auto config = baseConfig("serve_disc");
    config.workers = 1;
    TestDaemon daemon(std::move(config));

    // Alice's grid is slow and marked cancel-on-disconnect.
    auto alice_submit =
        smallSubmit({"espresso", "li", "eqntott"}, 400'000, 21);
    alice_submit.cancel_on_disconnect = true;
    auto alice = std::make_unique<Client>(
        daemon.server().socketPath(), "alice");
    alice->send(wire::encode(alice_submit));
    const auto alice_accepted = wire::decodeAccepted(mustRecv(*alice));

    Client bob(daemon.server().socketPath(), "bob");
    bob.send(wire::encode(smallSubmit({"sc"}, 2000, 22)));
    const auto bob_accepted = wire::decodeAccepted(mustRecv(bob));

    // Alice vanishes; her queued jobs cancel, bob's grid must not
    // notice.
    alice.reset();
    const GridStream bob_stream =
        streamToDone(bob, bob_accepted.fingerprint);
    EXPECT_EQ(bob_stream.done.ok, 1u);
    EXPECT_EQ(bob_stream.done.cancelled, 0u);

    // Re-attach as alice: the grid reached a terminal state with its
    // queued jobs cancelled (the running one may have finished ok).
    Client alice2(daemon.server().socketPath(), "alice");
    alice2.send(
        wire::encode(wire::AttachMsg{alice_accepted.fingerprint}));
    const auto attach_reply = alice2.recv();
    ASSERT_EQ(wire::peekType(*attach_reply), wire::MsgType::Accepted);
    const GridStream alice_stream =
        streamToDone(alice2, alice_accepted.fingerprint);
    EXPECT_GE(alice_stream.done.cancelled, 1u);
    EXPECT_EQ(alice_stream.done.ok + alice_stream.done.cancelled, 3u);
    for (const auto &[index, record] : alice_stream.records) {
        if (!record.outcome.ok) {
            EXPECT_EQ(record.outcome.code,
                      util::SimErrorCode::Cancelled)
                << "job " << index;
        }
    }
}

TEST(ServeServer, DrainPersistsQueuedWorkForTheNextIncarnation)
{
    auto config = baseConfig("serve_drain");
    config.workers = 1;
    const auto socket_path = config.socket_path;
    const auto spool_dir = config.spool_dir;
    const std::vector<std::string> profiles = {"espresso", "li",
                                               "eqntott", "sc"};

    std::uint64_t fingerprint = 0;
    {
        TestDaemon daemon(std::move(config));
        Client client(daemon.server().socketPath(), "alice");
        client.send(wire::encode(smallSubmit(profiles, 150'000, 31)));
        const auto accepted = wire::decodeAccepted(mustRecv(client));
        fingerprint = accepted.fingerprint;
        // Drain immediately: at most the running job completes; the
        // rest must persist in the spool.
        daemon.stop();
    }

    serve::ServerConfig next;
    next.socket_path = socket_path;
    next.spool_dir = spool_dir;
    next.workers = 2;
    TestDaemon daemon(std::move(next));
    EXPECT_EQ(daemon.server().resumedGrids(), 1u);

    Client client(daemon.server().socketPath(), "alice");
    client.send(wire::encode(wire::AttachMsg{fingerprint}));
    const auto reply = client.recv();
    ASSERT_EQ(wire::peekType(*reply), wire::MsgType::Accepted);
    const GridStream stream = streamToDone(client, fingerprint);
    EXPECT_EQ(stream.done.ok, profiles.size());
    expectBitIdentical(stream, runSerial(profiles, 150'000, 31));
}

TEST(ServeServer, SigkillMidGridResumesBitIdentical)
{
    const auto socket_path = tempPath("serve_kill.sock");
    const auto spool_dir = tempPath("serve_kill.spool");
    fs::remove(socket_path);
    fs::remove_all(spool_dir);
    const std::vector<std::string> profiles = {"espresso", "li",
                                               "eqntott", "sc"};

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Daemon incarnation #1 — runs until SIGKILL.
        try {
            serve::ServerConfig config;
            config.socket_path = socket_path;
            config.spool_dir = spool_dir;
            config.workers = 1;
            serve::Server server(std::move(config));
            server.run();
        } catch (...) {
        }
        _exit(0);
    }

    // Wait for the child's socket, submit, and collect at least one
    // live result so the journal is non-empty at the kill.
    std::uint64_t fingerprint = 0;
    {
        int tries = 0;
        while (!fs::exists(socket_path) && ++tries < 200)
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
        ASSERT_TRUE(fs::exists(socket_path));
        Client client(socket_path, "alice");
        client.send(wire::encode(smallSubmit(profiles, 150'000, 77)));
        const auto accepted = wire::decodeAccepted(mustRecv(client));
        fingerprint = accepted.fingerprint;
        bool got_result = false;
        while (!got_result) {
            const auto payload = client.recv();
            ASSERT_TRUE(payload.has_value());
            got_result =
                wire::peekType(*payload) == wire::MsgType::Result;
        }
    }
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));

    // Incarnation #2: the spool must resume the grid — journaled jobs
    // replay, missing jobs re-run — and the union must be
    // bit-identical to an uninterrupted serial run.
    serve::ServerConfig config;
    config.socket_path = socket_path;
    config.spool_dir = spool_dir;
    config.workers = 2;
    TestDaemon daemon(std::move(config));
    EXPECT_EQ(daemon.server().resumedGrids(), 1u);
    EXPECT_GE(daemon.server().resumedJobs(), 1u);

    Client client(socket_path, "alice");
    client.send(wire::encode(wire::AttachMsg{fingerprint}));
    const auto reply = client.recv();
    ASSERT_EQ(wire::peekType(*reply), wire::MsgType::Accepted);
    const GridStream stream = streamToDone(client, fingerprint);
    EXPECT_EQ(stream.done.ok, profiles.size());
    EXPECT_GE(stream.done.resumed, 1u);
    expectBitIdentical(stream, runSerial(profiles, 150'000, 77));
}

TEST(ServeServer, StatusReportCountsWork)
{
    TestDaemon daemon(baseConfig("serve_status"));
    Client client(daemon.server().socketPath(), "alice");
    client.send(wire::encode(smallSubmit({"espresso"}, 2000, 41)));
    const auto accepted = wire::decodeAccepted(mustRecv(client));
    streamToDone(client, accepted.fingerprint);

    client.send(wire::encode(wire::StatusMsg{}));
    for (;;) {
        const auto payload = client.recv();
        ASSERT_TRUE(payload.has_value());
        if (wire::peekType(*payload) != wire::MsgType::StatusReport)
            continue; // late Progress frames from the finished grid
        const auto status = wire::decodeStatusReport(*payload);
        EXPECT_FALSE(status.draining);
        EXPECT_EQ(status.grids, 1u);
        EXPECT_EQ(status.done_grids, 1u);
        EXPECT_EQ(status.done_jobs, 1u);
        EXPECT_EQ(status.running_jobs, 0u);
        break;
    }

    const auto stats = daemon.server().stats();
    EXPECT_EQ(stats.done_grids, 1u);
    EXPECT_EQ(stats.sessions, 1u);
}

TEST(ServeServer, ShardBackendWithoutBinaryIsBadConfig)
{
    auto config = baseConfig("serve_shard_nobin");
    config.shards = 2;
    try {
        serve::Server server(std::move(config));
        FAIL() << "--shards without --shardd accepted";
    } catch (const util::SimError &e) {
        EXPECT_EQ(e.code(), util::SimErrorCode::BadConfig);
    }
}

#ifdef AURORA_SHARDD_PATH
TEST(ServeServer, ShardBackendStreamsBitIdenticalToStandaloneRunner)
{
    // The horizontal-scale path: the daemon deals the grid to a
    // lease-fenced fleet of exec'd aurora_shardd processes, and the
    // streamed results must still be bit-identical to a serial run.
    const std::vector<std::string> profiles = {"espresso", "li",
                                               "eqntott"};
    auto config = baseConfig("serve_shard");
    config.shards = 2;
    config.shardd_path = AURORA_SHARDD_PATH;
    TestDaemon daemon(std::move(config));
    Client client(daemon.server().socketPath(), "alice");

    client.send(wire::encode(smallSubmit(profiles, 3000, 42)));
    const auto reply = client.recv();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(wire::peekType(*reply), wire::MsgType::Accepted);
    const auto accepted = wire::decodeAccepted(*reply);

    const GridStream stream =
        streamToDone(client, accepted.fingerprint);
    EXPECT_EQ(stream.done.ok, profiles.size());
    EXPECT_EQ(stream.done.failed, 0u);
    expectBitIdentical(stream, runSerial(profiles, 3000, 42));
}
#endif

TEST(ServeServer, ProtocolViolationIsFatalWithAur207)
{
    TestDaemon daemon(baseConfig("serve_proto"));
    // Submitting before Hello is a protocol violation.
    util::Fd fd = util::connectUnix(daemon.server().socketPath());
    wire::sendFrame(fd.get(),
                    wire::encode(smallSubmit({"espresso"}, 2000, 51)));
    wire::FrameDecoder decoder;
    const auto reply = wire::recvFrame(fd.get(), decoder,
                                       RECV_TIMEOUT_MS);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(wire::peekType(*reply), wire::MsgType::Rejected);
    EXPECT_EQ(wire::decodeRejected(*reply).id, "AUR207");
    // The daemon then drops the session.
    EXPECT_FALSE(
        wire::recvFrame(fd.get(), decoder, RECV_TIMEOUT_MS).has_value());
}

} // namespace
