/**
 * @file
 * Property tests for the analytic bound-and-bottleneck model.
 *
 * The model's whole value is its contract, so the tests state it
 * directly: on any *valid* configuration the predicted bound is
 * finite and positive, bit-identically deterministic, monotone
 * non-decreasing when any single resource is enlarged, and — the
 * load-bearing property — an upper bound on the IPC the simulator
 * actually achieves. The pinned model×profile grid is additionally
 * golden-checked (tests/golden/model_bounds.txt) so a formula change
 * shows up as a reviewable diff, not a silent re-ranking of every
 * grid the explorer prunes.
 *
 * Regenerate the snapshot intentionally with:
 *
 *     AURORA_UPDATE_GOLDEN=1 ./test_analyze_model
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/lint_config.hh"
#include "analyze/model.hh"
#include "core/simulator.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::analyze;

std::vector<trace::WorkloadProfile>
allProfiles()
{
    auto profiles = trace::integerSuite();
    for (const auto &p : trace::floatSuite())
        profiles.push_back(p);
    return profiles;
}

/**
 * A random configuration that passes validate()/lintConfig errors:
 * every knob inside its legal range, cross-field constraints (fetch
 * = issue, retire >= issue, shared line size) respected.
 */
core::MachineConfig
randomValidConfig(std::mt19937 &rng)
{
    auto pick = [&rng](unsigned lo, unsigned hi) {
        return lo + rng() % (hi - lo + 1);
    };
    core::MachineConfig m = core::baselineModel();
    m.name = "random";
    m.issue_width = pick(1, 2);
    m.ifu.fetch_width = m.issue_width;
    m.retire_width = pick(m.issue_width, 4);
    m.rob_entries = pick(1, 16);
    m.ifu.icache_bytes = 1024u << pick(0, 3);
    m.lsu.dcache_bytes = 16384u << pick(0, 2);
    m.lsu.mshr_entries = pick(1, 8);
    m.lsu.dcache_latency = pick(1, 4);
    m.write_cache.lines = pick(1, 8);
    m.prefetch.enabled = pick(0, 1) != 0;
    m.prefetch.num_buffers = pick(1, 8);
    m.prefetch.depth = pick(1, 2);
    m.biu.latency = pick(10, 40);
    m.biu.queue_depth = pick(4, 16);
    m.fpu.policy = static_cast<fpu::IssuePolicy>(pick(0, 2));
    m.fpu.inst_queue = pick(1, 8);
    m.fpu.load_queue = pick(1, 4);
    m.fpu.store_queue = pick(1, 4);
    m.fpu.rob_entries = pick(1, 12);
    m.fpu.result_buses = pick(1, 3);
    m.fpu.add = {pick(1, 5), pick(0, 1) != 0};
    m.fpu.mul = {pick(1, 8), pick(0, 1) != 0};
    m.fpu.div = {pick(10, 40), false};
    m.fpu.cvt = {pick(1, 5), pick(0, 1) != 0};
    return m;
}

TEST(AnalyzeModel, FinitePositiveAndDeterministic)
{
    std::mt19937 rng(20260807);
    const auto profiles = allProfiles();
    for (int trial = 0; trial < 40; ++trial) {
        const core::MachineConfig m = randomValidConfig(rng);
        ASSERT_FALSE(hasErrors(lintConfig(m)))
            << "test generator produced an invalid config";
        for (const auto &p : profiles) {
            const ModelResult a = predictBound(m, p);
            EXPECT_GT(a.ipc_bound, 0.0) << p.name;
            EXPECT_LE(a.ipc_bound, m.issue_width) << p.name;
            EXPECT_GT(a.cpi_bound, 0.0) << p.name;
            EXPECT_LT(a.rbe_total, 1e7) << p.name;

            // Bit-identical on repeat — the determinism contract.
            const ModelResult b = predictBound(m, p);
            EXPECT_EQ(a.ipc_bound, b.ipc_bound) << p.name;
            EXPECT_EQ(a.binding, b.binding) << p.name;
            for (std::size_t s = 0; s < NUM_RESOURCES; ++s) {
                EXPECT_EQ(a.resources[s].demand,
                          b.resources[s].demand);
                EXPECT_EQ(a.resources[s].ipc_bound,
                          b.resources[s].ipc_bound);
            }
        }
    }
}

/** Every single-knob enlargement the monotonicity contract covers. */
std::vector<core::MachineConfig>
enlargements(const core::MachineConfig &m)
{
    std::vector<core::MachineConfig> out;
    auto with = [&](auto mutate) {
        core::MachineConfig grown = m;
        mutate(grown);
        out.push_back(grown);
    };
    with([](auto &c) { c.rob_entries += 4; });
    with([](auto &c) { c.retire_width += 1; });
    with([](auto &c) { c.ifu.icache_bytes *= 2; });
    with([](auto &c) { c.lsu.dcache_bytes *= 2; });
    with([](auto &c) { c.lsu.mshr_entries += 2; });
    with([](auto &c) { c.write_cache.lines += 2; });
    with([](auto &c) { c.prefetch.num_buffers += 2; });
    with([](auto &c) { c.biu.queue_depth += 4; });
    with([](auto &c) { c.fpu.inst_queue += 3; });
    with([](auto &c) { c.fpu.load_queue += 2; });
    with([](auto &c) { c.fpu.store_queue += 2; });
    with([](auto &c) { c.fpu.rob_entries += 4; });
    with([](auto &c) { c.fpu.result_buses += 1; });
    with([](auto &c) {
        if (c.issue_width == 1) {
            c.issue_width = 2;
            c.ifu.fetch_width = 2;
            c.retire_width = std::max(c.retire_width, 2u);
        }
    });
    return out;
}

TEST(AnalyzeModel, MonotoneUnderSingleResourceEnlargement)
{
    std::mt19937 rng(7);
    const auto profiles = allProfiles();
    std::vector<core::MachineConfig> bases = {
        core::smallModel(), core::baselineModel(), core::largeModel()};
    for (int trial = 0; trial < 15; ++trial)
        bases.push_back(randomValidConfig(rng));

    for (const auto &base : bases) {
        for (const auto &p : profiles) {
            const double before = predictBound(base, p).ipc_bound;
            for (const auto &grown : enlargements(base)) {
                const double after = predictBound(grown, p).ipc_bound;
                EXPECT_GE(after, before)
                    << p.name << " @ " << base.name
                    << ": enlarging a resource lowered the bound";
            }
        }
    }
}

/** The pinned (model × profile) calibration grid. */
std::vector<std::pair<core::MachineConfig, trace::WorkloadProfile>>
pinnedGrid()
{
    std::vector<std::pair<core::MachineConfig, trace::WorkloadProfile>>
        grid;
    for (const auto &machine : core::studyModels())
        for (const auto &profile :
             {trace::espresso(), trace::li(), trace::nasa7(),
              trace::ora()})
            grid.emplace_back(machine, profile);
    return grid;
}

constexpr Count PINNED_INSTS = 30000;

std::string
goldenPath()
{
    return std::string(AURORA_GOLDEN_DIR) + "/model_bounds.txt";
}

std::vector<std::string>
computeLines()
{
    std::vector<std::string> lines;
    for (const auto &[machine, profile] : pinnedGrid()) {
        const ModelResult r = predictBound(machine, profile);
        std::ostringstream os;
        char bound[32];
        std::snprintf(bound, sizeof(bound), "%.6f", r.ipc_bound);
        os << "model=" << machine.name << " bench=" << profile.name
           << " ipc_bound=" << bound
           << " binding=" << resourceName(r.binding);
        lines.push_back(os.str());
    }
    return lines;
}

TEST(AnalyzeModel, BoundDominatesSimulatedIpcOnPinnedGrid)
{
    for (const auto &[machine, profile] : pinnedGrid()) {
        const ModelResult r = predictBound(machine, profile);
        const core::RunResult run =
            core::simulate(machine, profile, PINNED_INSTS);
        const double measured =
            double(run.instructions) / double(run.cycles);
        EXPECT_GE(r.ipc_bound, measured)
            << machine.name << " × " << profile.name
            << ": the 'bound' is below what the simulator achieved "
               "— an estimate stopped being optimistic";
    }
}

TEST(AnalyzeModel, PinnedGridMatchesGoldenSnapshot)
{
    const auto lines = computeLines();

    if (const char *update = std::getenv("AURORA_UPDATE_GOLDEN");
        update && std::string(update) == "1") {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << "# analytic IPC bounds: 3 Table 1 models x 4-profile "
               "mini-suite\n"
            << "# regenerate: AURORA_UPDATE_GOLDEN=1 "
               "./test_analyze_model\n";
        for (const auto &line : lines)
            out << line << "\n";
        GTEST_SKIP() << "golden snapshot regenerated at "
                     << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in) << "missing golden snapshot " << goldenPath()
                    << " — run with AURORA_UPDATE_GOLDEN=1 to create";
    std::vector<std::string> golden;
    for (std::string line; std::getline(in, line);)
        if (!line.empty() && line[0] != '#')
            golden.push_back(line);

    ASSERT_EQ(golden.size(), lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i)
        EXPECT_EQ(lines[i], golden[i])
            << "model prediction changed at grid point " << i
            << " — if intentional, regenerate with "
               "AURORA_UPDATE_GOLDEN=1 and justify in the PR";
}

TEST(AnalyzeModel, AdviceNamesBindingResourcePerProfile)
{
    const auto profiles = allProfiles();
    const auto diags =
        adviseModel(core::baselineModel(), profiles, {});
    std::size_t aur040 = 0;
    for (const auto &d : diags) {
        EXPECT_EQ(d.severity, Severity::Warning)
            << d.id << ": model advisories must never gate";
        if (d.id == "AUR040")
            ++aur040;
    }
    EXPECT_EQ(aur040, profiles.size());
    EXPECT_FALSE(hasErrors(diags));
}

TEST(AnalyzeModel, MinIpcFloorEmitsAur042)
{
    const std::vector<trace::WorkloadProfile> one = {
        trace::espresso()};
    AdviseOptions opts;
    opts.min_ipc = 10.0; // far above any achievable bound
    const auto diags =
        adviseModel(core::smallModel(), one, opts);
    bool found = false;
    for (const auto &d : diags)
        found = found || d.id == "AUR042";
    EXPECT_TRUE(found);

    opts.min_ipc = 0.0;
    for (const auto &d :
         adviseModel(core::smallModel(), one, opts))
        EXPECT_NE(d.id, "AUR042") << "floor disabled but AUR042 fired";
}

TEST(AnalyzeModel, OverProvisionedStructureEmitsAur041)
{
    // A grotesquely oversized IPU ROB on the small machine: its
    // station bound dwarfs the machine's overall bound on every
    // profile, and at 200 RBE/entry it is well past the price floor.
    core::MachineConfig m = core::smallModel();
    m.rob_entries = 64;
    bool found = false;
    for (const auto &d : adviseModel(m, allProfiles(), {}))
        found = found || (d.id == "AUR041" && d.field == "rob");
    EXPECT_TRUE(found);
}

TEST(AnalyzeModel, PricedRbeClampsExtremeLatencies)
{
    // Valid latencies outside Table 2's published price range must
    // price at the clamped endpoint, not assert (cost::fpuRbe would).
    core::MachineConfig m = core::baselineModel();
    m.fpu.mul = {200, true};
    m.fpu.div = {200, false};
    const double rbe = pricedRbe(m);
    EXPECT_GT(rbe, 0.0);

    // Clamped extreme latency prices exactly like the slow endpoint.
    core::MachineConfig slow = core::baselineModel();
    slow.fpu.mul = {5, true};
    slow.fpu.div = {30, false};
    EXPECT_EQ(rbe, pricedRbe(slow));
}

} // namespace
