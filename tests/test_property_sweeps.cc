/**
 * @file
 * Property sweeps: resource monotonicity and seed robustness.
 *
 * The study's entire argument rests on resources having predictable
 * marginal value. These tests sweep each resource axis and assert
 * monotonic (or near-monotonic) behaviour of the relevant metric,
 * and check that the headline orderings are not artifacts of one
 * random seed.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

constexpr Count N = 50000;

/** Suite-average CPI for quick sweeps (two benchmarks suffice). */
double
cpiOf(const MachineConfig &m)
{
    return runSuite(m, {trace::espresso(), trace::gcc()}, N).avgCpi();
}

TEST(Sweeps, DcacheHitRateRisesWithSize)
{
    double prev = 0.0;
    for (std::uint32_t size = 8 * 1024; size <= 128 * 1024;
         size *= 2) {
        auto m = baselineModel();
        m.lsu.dcache_bytes = size;
        const auto r = simulate(m, trace::espresso(), N);
        EXPECT_GE(r.dcache_hit_pct + 0.5, prev)
            << size << " bytes";
        prev = r.dcache_hit_pct;
    }
}

TEST(Sweeps, IcacheHitRateRisesWithSize)
{
    double prev = 0.0;
    for (std::uint32_t size = 512; size <= 8 * 1024; size *= 2) {
        auto m = baselineModel();
        m.ifu.icache_bytes = size;
        const auto r = simulate(m, trace::gcc(), N);
        EXPECT_GE(r.icache_hit_pct + 0.3, prev) << size << " bytes";
        prev = r.icache_hit_pct;
    }
}

TEST(Sweeps, CpiFallsWithDcacheSize)
{
    double prev = 1e9;
    for (std::uint32_t size = 8 * 1024; size <= 128 * 1024;
         size *= 2) {
        auto m = baselineModel();
        m.lsu.dcache_bytes = size;
        const double cpi = cpiOf(m);
        EXPECT_LE(cpi, prev * 1.01) << size << " bytes";
        prev = cpi;
    }
}

TEST(Sweeps, CpiNeverRisesWithMshrs)
{
    double prev = 1e9;
    for (unsigned k = 1; k <= 8; k *= 2) {
        const double cpi = cpiOf(baselineModel().withMshrs(k));
        EXPECT_LE(cpi, prev * 1.005) << k << " MSHRs";
        prev = cpi;
    }
}

TEST(Sweeps, CpiRisesMonotonicallyWithLatency)
{
    double prev = 0.0;
    for (Cycle lat : {Cycle{5}, Cycle{17}, Cycle{35}, Cycle{70}}) {
        const double cpi = cpiOf(baselineModel().withLatency(lat));
        EXPECT_GT(cpi, prev) << lat << " cycles";
        prev = cpi;
    }
}

TEST(Sweeps, WriteCacheHitRisesWithLines)
{
    double prev = 0.0;
    for (unsigned lines : {1u, 2u, 4u, 8u, 16u}) {
        auto m = baselineModel();
        m.write_cache.lines = lines;
        const auto r = simulate(m, trace::gcc(), N);
        EXPECT_GE(r.write_cache_hit_pct + 1.0, prev)
            << lines << " lines";
        prev = r.write_cache_hit_pct;
    }
}

TEST(Sweeps, StoreTrafficFallsWithWriteCacheLines)
{
    double prev = 1e9;
    for (unsigned lines : {1u, 2u, 4u, 8u, 16u}) {
        auto m = baselineModel();
        m.write_cache.lines = lines;
        const auto r = simulate(m, trace::gcc(), N);
        EXPECT_LE(r.storeTrafficPct(), prev + 1.0)
            << lines << " lines";
        prev = r.storeTrafficPct();
    }
}

TEST(Sweeps, FpInstQueueNeverHurts)
{
    double prev = 1e9;
    for (unsigned q = 1; q <= 8; ++q) {
        auto m = baselineModel();
        m.fpu.inst_queue = q;
        const double cpi = simulate(m, trace::nasa7(), N).cpi();
        EXPECT_LE(cpi, prev * 1.005) << q << " entries";
        prev = cpi;
    }
}

TEST(Sweeps, FpUnitLatencyMonotonicallyHurts)
{
    double prev = 0.0;
    for (Cycle lat = 1; lat <= 5; ++lat) {
        auto m = baselineModel();
        m.fpu.add.latency = lat;
        const double cpi = simulate(m, trace::hydro2d(), N).cpi();
        EXPECT_GE(cpi * 1.002, prev) << "add latency " << lat;
        prev = cpi;
    }
}

/** Headline orderings must hold for several generator seeds. */
class SeedRobustness : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    trace::WorkloadProfile
    reseeded(trace::WorkloadProfile p) const
    {
        p.seed ^= GetParam();
        return p;
    }
};

TEST_P(SeedRobustness, ModelOrderingHolds)
{
    const auto p = reseeded(trace::espresso());
    const double s = simulate(smallModel(), p, N).cpi();
    const double b = simulate(baselineModel(), p, N).cpi();
    const double l = simulate(largeModel(), p, N).cpi();
    EXPECT_GT(s, b);
    EXPECT_GT(b, l);
}

TEST_P(SeedRobustness, DualIssueStillHelps)
{
    const auto p = reseeded(trace::compress());
    const double dual = simulate(baselineModel(), p, N).cpi();
    const double single =
        simulate(baselineModel().withIssueWidth(1), p, N).cpi();
    EXPECT_GT(single, dual);
}

TEST_P(SeedRobustness, FpuPolicyOrderingHolds)
{
    const auto p = reseeded(trace::su2cor());
    auto in_order = baselineModel();
    in_order.fpu.policy = fpu::IssuePolicy::InOrderComplete;
    auto dual = baselineModel();
    const double io = simulate(in_order, p, N).cpi();
    const double du = simulate(dual, p, N).cpi();
    EXPECT_GT(io, du);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values(0x1111ull, 0x2222ull,
                                           0x3333ull));

} // namespace
