/**
 * @file
 * Admission-control and fair-dispatch tests for the serve Scheduler:
 * quota refusals carry stable AUR2xx IDs in a fixed evaluation order,
 * and the round-robin rotor gives every tenant one job per turn in a
 * dispatch order that is a pure function of the submission sequence.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/scheduler.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora::serve;
using aurora::util::SimErrorCode;

ServiceLimits
tinyLimits()
{
    ServiceLimits limits;
    limits.grids_per_tenant = 2;
    limits.jobs_per_tenant = 6;
    limits.total_jobs = 10;
    limits.jobs_per_grid = 4;
    return limits;
}

/** Admit + account a grid of @p jobs for @p tenant, queueing each. */
void
admitAndQueue(Scheduler &s, const std::string &tenant,
              std::size_t jobs, std::uint64_t fingerprint)
{
    ASSERT_FALSE(s.admit(tenant, jobs).has_value());
    s.admitGrid(tenant, jobs);
    for (std::size_t i = 0; i < jobs; ++i)
        s.enqueue(tenant, SchedUnit{fingerprint, i});
}

TEST(SchedulerAdmission, AdmitsWithinAllLimits)
{
    const Scheduler s(tinyLimits());
    EXPECT_FALSE(s.admit("alice", 4).has_value());
    EXPECT_FALSE(s.admit("alice", 1).has_value());
}

TEST(SchedulerAdmission, EmptyGridIsMalformed)
{
    const Scheduler s(tinyLimits());
    const auto refusal = s.admit("alice", 0);
    ASSERT_TRUE(refusal.has_value());
    EXPECT_EQ(refusal->id, "AUR205");
    EXPECT_EQ(refusal->code, SimErrorCode::BadConfig);
}

TEST(SchedulerAdmission, OversizeGridIsMalformed)
{
    const Scheduler s(tinyLimits());
    const auto refusal = s.admit("alice", 5);
    ASSERT_TRUE(refusal.has_value());
    EXPECT_EQ(refusal->id, "AUR205");
    EXPECT_EQ(refusal->code, SimErrorCode::BadConfig);
}

TEST(SchedulerAdmission, GridQuotaRefusesWithAur201)
{
    Scheduler s(tinyLimits());
    admitAndQueue(s, "alice", 1, 0x100);
    admitAndQueue(s, "alice", 1, 0x101);
    const auto refusal = s.admit("alice", 1);
    ASSERT_TRUE(refusal.has_value());
    EXPECT_EQ(refusal->id, "AUR201");
    EXPECT_EQ(refusal->code, SimErrorCode::Overloaded);
    // Another tenant is unaffected by alice's quota.
    EXPECT_FALSE(s.admit("bob", 1).has_value());
}

TEST(SchedulerAdmission, JobQuotaRefusesWithAur202)
{
    Scheduler s(tinyLimits());
    admitAndQueue(s, "alice", 4, 0x100);
    const auto refusal = s.admit("alice", 3); // 4 + 3 > 6
    ASSERT_TRUE(refusal.has_value());
    EXPECT_EQ(refusal->id, "AUR202");
    EXPECT_EQ(refusal->code, SimErrorCode::Overloaded);
    EXPECT_FALSE(s.admit("alice", 2).has_value()); // 4 + 2 == 6 fits
}

TEST(SchedulerAdmission, GlobalCapacityRefusesWithAur203)
{
    Scheduler s(tinyLimits());
    admitAndQueue(s, "alice", 4, 0x100);
    admitAndQueue(s, "bob", 4, 0x200);
    // 8 of 10 slots used; a 3-job grid exceeds global capacity while
    // satisfying carol's own quotas.
    const auto refusal = s.admit("carol", 3);
    ASSERT_TRUE(refusal.has_value());
    EXPECT_EQ(refusal->id, "AUR203");
    EXPECT_EQ(refusal->code, SimErrorCode::Overloaded);
    EXPECT_FALSE(s.admit("carol", 2).has_value());
}

TEST(SchedulerAdmission, DrainRefusesEverythingWithAur204)
{
    Scheduler s(tinyLimits());
    s.beginDrain();
    const auto refusal = s.admit("alice", 1);
    ASSERT_TRUE(refusal.has_value());
    EXPECT_EQ(refusal->id, "AUR204");
    EXPECT_EQ(refusal->code, SimErrorCode::Overloaded);
    EXPECT_TRUE(s.draining());
}

TEST(SchedulerAdmission, AdmitIsPure)
{
    Scheduler s(tinyLimits());
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(s.admit("alice", 4).has_value());
    EXPECT_EQ(s.tenantJobs("alice"), 0u);
    EXPECT_EQ(s.tenantGrids("alice"), 0u);
}

TEST(SchedulerAdmission, FinishingReleasesQuota)
{
    Scheduler s(tinyLimits());
    admitAndQueue(s, "alice", 1, 0x100);
    admitAndQueue(s, "alice", 1, 0x101);
    ASSERT_TRUE(s.admit("alice", 1).has_value());

    // Run grid 0x100's only job to completion.
    ASSERT_TRUE(s.take().has_value());
    s.jobFinished("alice");
    s.gridFinished("alice");

    EXPECT_FALSE(s.admit("alice", 1).has_value());
    EXPECT_EQ(s.tenantGrids("alice"), 1u);
    EXPECT_EQ(s.tenantJobs("alice"), 1u);
}

TEST(SchedulerDispatch, RoundRobinOffersOneJobPerTenantPerTurn)
{
    Scheduler s(tinyLimits());
    admitAndQueue(s, "alice", 4, 0xA);
    admitAndQueue(s, "bob", 2, 0xB);
    admitAndQueue(s, "carol", 1, 0xC);

    // Arrival order alice, bob, carol; one unit each per rotor turn.
    const std::vector<std::uint64_t> expected = {0xA, 0xB, 0xC,
                                                 0xA, 0xB,
                                                 0xA,
                                                 0xA};
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const auto unit = s.take();
        ASSERT_TRUE(unit.has_value()) << "take " << i;
        EXPECT_EQ(unit->fingerprint, expected[i]) << "take " << i;
    }
    EXPECT_FALSE(s.take().has_value());
    EXPECT_FALSE(s.hasWork());
}

TEST(SchedulerDispatch, PerTenantOrderIsFifo)
{
    Scheduler s(tinyLimits());
    admitAndQueue(s, "alice", 3, 0xA);
    for (std::size_t i = 0; i < 3; ++i) {
        const auto unit = s.take();
        ASSERT_TRUE(unit.has_value());
        EXPECT_EQ(unit->job_index, i);
    }
}

TEST(SchedulerDispatch, LateArrivalJoinsTheRotorTail)
{
    Scheduler s(tinyLimits());
    admitAndQueue(s, "alice", 2, 0xA);
    ASSERT_EQ(s.take()->fingerprint, 0xAu);
    // bob arrives after alice's first dispatch; alice keeps her rotor
    // position, bob is offered next in arrival order.
    admitAndQueue(s, "bob", 2, 0xB);
    EXPECT_EQ(s.take()->fingerprint, 0xAu);
    EXPECT_EQ(s.take()->fingerprint, 0xBu);
    EXPECT_EQ(s.take()->fingerprint, 0xBu);
    EXPECT_FALSE(s.take().has_value());
}

TEST(SchedulerDispatch, DropQueuedReturnsUnitsInQueueOrder)
{
    Scheduler s(tinyLimits());
    admitAndQueue(s, "alice", 3, 0xA);
    admitAndQueue(s, "bob", 1, 0xB);

    const auto dropped = s.dropQueued("alice", 0xA);
    ASSERT_EQ(dropped.size(), 3u);
    for (std::size_t i = 0; i < dropped.size(); ++i) {
        EXPECT_EQ(dropped[i].fingerprint, 0xAu);
        EXPECT_EQ(dropped[i].job_index, i);
    }
    // bob's work is untouched; alice's queue is empty.
    EXPECT_EQ(s.queuedJobs(), 1u);
    const auto unit = s.take();
    ASSERT_TRUE(unit.has_value());
    EXPECT_EQ(unit->fingerprint, 0xBu);
    EXPECT_FALSE(s.take().has_value());
}

TEST(SchedulerDispatch, DropQueuedOnlyTouchesTheNamedGrid)
{
    Scheduler s(tinyLimits());
    admitAndQueue(s, "alice", 2, 0x100);
    admitAndQueue(s, "alice", 2, 0x101);

    const auto dropped = s.dropQueued("alice", 0x100);
    ASSERT_EQ(dropped.size(), 2u);
    EXPECT_EQ(s.queuedJobs(), 2u);
    for (int i = 0; i < 2; ++i) {
        const auto unit = s.take();
        ASSERT_TRUE(unit.has_value());
        EXPECT_EQ(unit->fingerprint, 0x101u);
    }
}

TEST(SchedulerDispatch, RotorSurvivesDropAndRequeueWithoutDoubleTurns)
{
    // Regression shape: dropQueued() empties a tenant's queue while
    // the tenant's name is still physically in the rotor. A following
    // enqueue must NOT add a second rotor entry — that would grant the
    // tenant two turns per cycle and break fairness.
    Scheduler s(tinyLimits());
    admitAndQueue(s, "alice", 2, 0xA);
    ASSERT_EQ(s.dropQueued("alice", 0xA).size(), 2u);
    for (std::size_t i = 0; i < 2; ++i)
        s.jobFinished("alice");
    s.gridFinished("alice");

    admitAndQueue(s, "alice", 2, 0xA2);
    admitAndQueue(s, "bob", 2, 0xB);

    // Strict alternation proves alice holds exactly one rotor slot.
    EXPECT_EQ(s.take()->fingerprint, 0xA2u);
    EXPECT_EQ(s.take()->fingerprint, 0xBu);
    EXPECT_EQ(s.take()->fingerprint, 0xA2u);
    EXPECT_EQ(s.take()->fingerprint, 0xBu);
    EXPECT_FALSE(s.take().has_value());
}

TEST(SchedulerDispatch, DispatchOrderIsDeterministic)
{
    // Same submission sequence, same dispatch sequence — twice.
    std::vector<std::uint64_t> first;
    std::vector<std::uint64_t> second;
    for (int round = 0; round < 2; ++round) {
        Scheduler s(tinyLimits());
        admitAndQueue(s, "t1", 3, 1);
        admitAndQueue(s, "t2", 1, 2);
        admitAndQueue(s, "t3", 2, 3);
        auto &order = round == 0 ? first : second;
        while (const auto unit = s.take())
            order.push_back(unit->fingerprint);
    }
    EXPECT_EQ(first, second);
    ASSERT_EQ(first.size(), 6u);
}

} // namespace
