/**
 * @file
 * Unit tests for the register scoreboard.
 */

#include <gtest/gtest.h>

#include "ipu/scoreboard.hh"

namespace
{

using namespace aurora;
using aurora::ipu::Scoreboard;

TEST(Scoreboard, FreshBoardIsAllReady)
{
    Scoreboard sb;
    for (RegIndex r = 0; r < 32; ++r)
        EXPECT_TRUE(sb.ready(r, 0));
}

TEST(Scoreboard, ZeroAndNoRegAlwaysReady)
{
    Scoreboard sb;
    sb.setWriter(0, 100, true); // writes to $zero are dropped
    EXPECT_TRUE(sb.ready(0, 0));
    EXPECT_TRUE(sb.ready(NO_REG, 0));
    EXPECT_FALSE(sb.pendingLoad(0, 0));
    EXPECT_FALSE(sb.pendingLoad(NO_REG, 0));
}

TEST(Scoreboard, WriterBlocksUntilReadyCycle)
{
    Scoreboard sb;
    sb.setWriter(5, 10, false);
    EXPECT_FALSE(sb.ready(5, 9));
    EXPECT_TRUE(sb.ready(5, 10));
    EXPECT_EQ(sb.readyAt(5), 10u);
}

TEST(Scoreboard, LoadTagging)
{
    Scoreboard sb;
    sb.setWriter(3, 20, true);
    sb.setWriter(4, 20, false);
    EXPECT_TRUE(sb.pendingLoad(3, 10));
    EXPECT_FALSE(sb.pendingLoad(4, 10));
    // After the data returns the tag no longer reports pending.
    EXPECT_FALSE(sb.pendingLoad(3, 20));
}

TEST(Scoreboard, LaterWriterOverrides)
{
    Scoreboard sb;
    sb.setWriter(7, 10, true);
    sb.setWriter(7, 5, false);
    EXPECT_TRUE(sb.ready(7, 5));
    EXPECT_FALSE(sb.pendingLoad(7, 4));
}

TEST(Scoreboard, ResetClearsPendingWriters)
{
    Scoreboard sb;
    sb.setWriter(9, 1000, true);
    sb.reset();
    EXPECT_TRUE(sb.ready(9, 0));
}

} // namespace
