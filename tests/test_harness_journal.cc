/**
 * @file
 * Sweep-journal tests: write-through + load round trips, resume that
 * replays bit-identically at any worker count, grid-fingerprint
 * verification, torn-tail recovery, mid-file corruption rejection,
 * and a seeded corruption fuzz over whole journal files.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "faultinject/faultinject.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using namespace aurora::harness;
namespace fi = aurora::faultinject;
namespace fs = std::filesystem;
using util::SimErrorCode;

constexpr Count N = 5000;
constexpr std::uint64_t BASE_SEED = 0x10ad;

std::string
tempPath(const std::string &name)
{
    return (fs::path(::testing::TempDir()) / name).string();
}

/** A 6-job grid: 2 models x 3 benchmarks. */
std::vector<SweepJob>
smallGrid()
{
    std::vector<SweepJob> grid;
    for (const auto &machine :
         {baselineModel(), largeModel()})
        for (const char *bench : {"espresso", "li", "nasa7"})
            grid.push_back(
                {machine, trace::profileByName(bench), N});
    return grid;
}

SweepOptions
journalOptions(const std::string &path, bool resume = false,
               unsigned workers = 1)
{
    SweepOptions opts;
    opts.workers = workers;
    opts.base_seed = BASE_SEED;
    opts.journal = path;
    opts.resume = resume;
    return opts;
}

/** Field-exact RunResult comparison (bit-identical doubles). */
void
expectRunEq(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.issuing_cycles, b.issuing_cycles);
    EXPECT_EQ(a.tail_cycles, b.tail_cycles);
    EXPECT_EQ(a.stalls, b.stalls);
    EXPECT_EQ(a.icache_hit_pct, b.icache_hit_pct);
    EXPECT_EQ(a.dcache_hit_pct, b.dcache_hit_pct);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.store_transactions, b.store_transactions);
    EXPECT_EQ(a.fp_dispatched, b.fp_dispatched);
    EXPECT_EQ(a.fpu.issued, b.fpu.issued);
    EXPECT_EQ(a.rbe_cost, b.rbe_cost);
    EXPECT_EQ(a.ledger.retired, b.ledger.retired);
    EXPECT_EQ(a.ledger.mshr_allocations, b.ledger.mshr_allocations);
    EXPECT_EQ(a.issue_width_cycles, b.issue_width_cycles);
    EXPECT_EQ(a.avg_rob_occupancy, b.avg_rob_occupancy);
    EXPECT_EQ(a.avg_mshr_occupancy, b.avg_mshr_occupancy);
    const auto occ_eq = [](const OccupancyStats &x,
                           const OccupancyStats &y) {
        EXPECT_EQ(x.mean, y.mean);
        EXPECT_EQ(x.p50, y.p50);
        EXPECT_EQ(x.p95, y.p95);
        EXPECT_EQ(x.max, y.max);
    };
    occ_eq(a.rob_occupancy, b.rob_occupancy);
    occ_eq(a.mshr_occupancy, b.mshr_occupancy);
    occ_eq(a.fp_instq_occupancy, b.fp_instq_occupancy);
    occ_eq(a.fp_loadq_occupancy, b.fp_loadq_occupancy);
    occ_eq(a.fp_storeq_occupancy, b.fp_storeq_occupancy);
}

/** Run the grid journal-free as the bit-exactness reference. */
std::vector<SweepOutcome>
reference(const std::vector<SweepJob> &grid)
{
    SweepOptions opts;
    opts.workers = 1;
    opts.base_seed = BASE_SEED;
    SweepRunner runner(opts);
    return runner.runOutcomes(grid);
}

/**
 * Write a journal holding only the first @p keep job records by
 * re-running the grid journaled, then truncating the record list —
 * the deterministic stand-in for a sweep killed after @p keep jobs.
 */
std::string
partialJournal(const std::vector<SweepJob> &grid, std::size_t keep,
               const std::string &name)
{
    const std::string full = tempPath(name + ".full");
    SweepRunner runner(journalOptions(full));
    runner.runOutcomes(grid);

    const LoadedJournal loaded = loadJournal(full);
    const std::string partial = tempPath(name);
    JournalWriter writer(partial, loaded.fingerprint, loaded.jobs);
    for (std::size_t k = 0; k < keep; ++k)
        writer.append(loaded.records[k]);
    return partial;
}

TEST(Journal, WriteThroughThenLoadRoundTrips)
{
    const auto grid = smallGrid();
    const std::string path = tempPath("roundtrip.ajrn");
    SweepRunner runner(journalOptions(path));
    const auto outcomes = runner.runOutcomes(grid);

    const LoadedJournal loaded = loadJournal(path);
    EXPECT_EQ(loaded.fingerprint,
              gridFingerprint(grid, BASE_SEED));
    EXPECT_EQ(loaded.jobs, grid.size());
    EXPECT_FALSE(loaded.dropped_tail);
    ASSERT_EQ(loaded.records.size(), grid.size());

    std::vector<bool> seen(grid.size(), false);
    for (const JournalRecord &rec : loaded.records) {
        const auto i = static_cast<std::size_t>(rec.job_index);
        ASSERT_LT(i, grid.size());
        seen[i] = true;
        EXPECT_EQ(rec.machine_hash, machineHash(grid[i].machine));
        EXPECT_EQ(rec.seed,
                  deriveJobSeed(BASE_SEED,
                                machineHash(grid[i].machine),
                                grid[i].profile.name));
        ASSERT_TRUE(rec.outcome.ok);
        expectRunEq(rec.outcome.result, outcomes[i].result);
    }
    for (std::size_t i = 0; i < grid.size(); ++i)
        EXPECT_TRUE(seen[i]) << "job " << i << " never journaled";
}

TEST(Journal, ResumeReplaysBitIdenticallyAtAnyWorkerCount)
{
    const auto grid = smallGrid();
    const auto ref = reference(grid);

    for (unsigned workers : {1u, 2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        const std::string path = partialJournal(
            grid, 3, "resume-w" + std::to_string(workers) + ".ajrn");

        SweepRunner runner(
            journalOptions(path, /*resume=*/true, workers));
        const auto outcomes = runner.runOutcomes(grid);

        ASSERT_EQ(outcomes.size(), grid.size());
        std::size_t resumed = 0;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            SCOPED_TRACE("job " + std::to_string(i));
            ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
            expectRunEq(outcomes[i].result, ref[i].result);
            resumed += outcomes[i].resumed ? 1 : 0;
        }
        EXPECT_EQ(resumed, 3u);
        EXPECT_EQ(runner.report().resumed_jobs, 3u);
        EXPECT_EQ(runner.report().ok_jobs, grid.size());
        EXPECT_NE(runner.report().summary().find("resumed 3"),
                  std::string::npos)
            << runner.report().summary();

        // The journal is now complete: every job replays.
        SweepRunner again(
            journalOptions(path, /*resume=*/true, workers));
        const auto all = again.runOutcomes(grid);
        for (const auto &out : all)
            EXPECT_TRUE(out.ok && out.resumed);
    }
}

TEST(Journal, FingerprintMismatchRefusesToResume)
{
    const auto grid = smallGrid();
    const std::string path = tempPath("mismatch.ajrn");
    SweepRunner writer(journalOptions(path));
    writer.runOutcomes(grid);

    // Same journal, different instruction budget: a different
    // experiment, so its results must not replay.
    auto other = grid;
    for (auto &job : other)
        job.instructions = N * 2;
    SweepRunner resumer(journalOptions(path, /*resume=*/true));
    try {
        resumer.runOutcomes(other);
        FAIL() << "fingerprint mismatch not detected";
    } catch (const util::SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadJournal);
        EXPECT_NE(std::string(e.what()).find("different grid"),
                  std::string::npos);
    }
}

TEST(Journal, TornTailIsDroppedAndJobReruns)
{
    const auto grid = smallGrid();
    const auto ref = reference(grid);
    const std::string path = tempPath("torn.ajrn");
    SweepRunner writer(journalOptions(path));
    writer.runOutcomes(grid);

    // Tear the final record as a killed writer would.
    fs::resize_file(path, fs::file_size(path) - 7);
    const LoadedJournal loaded = loadJournal(path);
    EXPECT_TRUE(loaded.dropped_tail);
    EXPECT_EQ(loaded.records.size(), grid.size() - 1);

    SweepRunner resumer(journalOptions(path, /*resume=*/true));
    const auto outcomes = resumer.runOutcomes(grid);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
        expectRunEq(outcomes[i].result, ref[i].result);
    }
    EXPECT_EQ(resumer.report().resumed_jobs, grid.size() - 1);

    // The resume truncated the fragment and appended the re-run: the
    // file must load cleanly and completely now.
    const LoadedJournal healed = loadJournal(path);
    EXPECT_FALSE(healed.dropped_tail);
    EXPECT_EQ(healed.records.size(), grid.size());
}

TEST(Journal, MidFileCorruptionRaisesBadJournal)
{
    const auto grid = smallGrid();
    const std::string path = tempPath("midfile.ajrn");
    SweepRunner writer(journalOptions(path));
    writer.runOutcomes(grid);

    // Flip a byte in the first job record's payload — a complete
    // record nowhere near the appendable tail, so the CRC must
    // condemn the whole file rather than drop a torn fragment.
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        ASSERT_TRUE(f.good());
        f.seekg(48);
        char c = 0;
        f.read(&c, 1);
        c = static_cast<char>(c ^ 0x10);
        f.seekp(48);
        f.write(&c, 1);
    }
    bool caught = false;
    try {
        loadJournal(path);
    } catch (const util::SimError &e) {
        caught = e.code() == SimErrorCode::BadJournal;
    }
    EXPECT_TRUE(caught);
}

TEST(Journal, ResumeWithoutExistingFileRunsFresh)
{
    const auto grid = smallGrid();
    const auto ref = reference(grid);
    const std::string path = tempPath("fresh-resume.ajrn");
    fs::remove(path); // a leftover from a prior run is not "missing"
    SweepRunner runner(journalOptions(path, /*resume=*/true));
    const auto outcomes = runner.runOutcomes(grid);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok);
        EXPECT_FALSE(outcomes[i].resumed);
        expectRunEq(outcomes[i].result, ref[i].result);
    }
    EXPECT_EQ(runner.report().resumed_jobs, 0u);
    EXPECT_EQ(loadJournal(path).records.size(), grid.size());
}

TEST(Journal, CorruptionFuzzNeverCrashesLoad)
{
    const auto grid = smallGrid();
    const std::string pristine = tempPath("fuzz.ajrn");
    SweepRunner writer(journalOptions(pristine));
    writer.runOutcomes(grid);

    for (std::uint64_t seed = 0; seed < 48; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const std::string victim = tempPath("fuzz-one.ajrn");
        fs::copy_file(pristine, victim,
                      fs::copy_options::overwrite_existing);
        const auto fault = fi::anyJournalFault(seed);
        fi::corruptJournalFile(victim, fault, seed);

        // Either classified as BadJournal, or loaded with at most a
        // dropped tail and never more records than the grid — any
        // crash, hang, or phantom record is a failure. (A flip in
        // the last record's length field may legally read as a torn
        // tail; the CRC still guards every payload bit.)
        try {
            const LoadedJournal loaded = loadJournal(victim);
            EXPECT_LE(loaded.records.size(), grid.size());
            for (const auto &rec : loaded.records)
                EXPECT_LT(rec.job_index, grid.size());
        } catch (const util::SimError &e) {
            EXPECT_EQ(e.code(), SimErrorCode::BadJournal)
                << e.what();
        }
    }
}

TEST(Journal, MissingFileThrowsBadJournal)
{
    try {
        loadJournal(tempPath("never-written.ajrn"));
        FAIL() << "missing journal not detected";
    } catch (const util::SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadJournal);
    }
}

} // namespace
