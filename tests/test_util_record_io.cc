/**
 * @file
 * Record-file substrate tests: byte-exact payload codecs, CRC-framed
 * record round trips, and the torn-tail / corrupt classification the
 * sweep journal's crash-safety rests on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <fstream>
#include <string>
#include <vector>

#include "util/record_io.hh"

namespace
{

using namespace aurora::util;
namespace fs = std::filesystem;

std::string
tempPath(const std::string &name)
{
    return (fs::path(::testing::TempDir()) / name).string();
}

std::uintmax_t
fileSize(const std::string &path)
{
    return fs::file_size(path);
}

void
flipBit(const std::string &path, std::uintmax_t byte, unsigned bit)
{
    std::fstream f(path, std::ios::binary | std::ios::in |
                             std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(byte));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ (1 << bit));
    f.seekp(static_cast<std::streamoff>(byte));
    f.write(&c, 1);
}

/** splitmix64 — deterministic fuzz positions without libc rand(). */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

TEST(ByteCodec, RoundTripsEveryType)
{
    ByteWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.f64(3.141592653589793);
    w.str("hello journal");
    w.str(""); // empty strings are legal

    ByteReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.f64(), 3.141592653589793);
    EXPECT_EQ(r.str(), "hello journal");
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodec, DoublesAreBitExact)
{
    // The statistics being journaled include ratios that can be -0.0
    // or NaN in degenerate runs; bit-exact replay must preserve them.
    ByteWriter w;
    w.f64(-0.0);
    w.f64(std::numeric_limits<double>::quiet_NaN());
    w.f64(std::numeric_limits<double>::infinity());
    w.f64(5e-324); // smallest subnormal

    ByteReader r(w.bytes());
    const double neg_zero = r.f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_TRUE(std::isnan(r.f64()));
    EXPECT_TRUE(std::isinf(r.f64()));
    EXPECT_EQ(r.f64(), 5e-324);
}

TEST(ByteCodec, UnderrunThrowsBadJournal)
{
    ByteWriter w;
    w.u32(7);
    ByteReader r(w.bytes());
    r.u32();
    try {
        r.u64();
        FAIL() << "underrun not detected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadJournal);
    }
}

TEST(RecordFile, RoundTripsRecordsInOrder)
{
    const std::string path = tempPath("roundtrip.rec");
    const std::vector<std::string> payloads = {
        "first", std::string(1000, 'x'), "", "last"};
    {
        RecordFileWriter w(path, /*truncate=*/true);
        for (const auto &p : payloads)
            w.append(p);
    }
    RecordFileReader r(path);
    std::string payload;
    for (const auto &expected : payloads) {
        ASSERT_EQ(r.next(payload), RecordStatus::Ok);
        EXPECT_EQ(payload, expected);
    }
    EXPECT_EQ(r.next(payload), RecordStatus::EndOfFile);
    EXPECT_EQ(r.goodBytes(), fileSize(path));
}

TEST(RecordFile, AppendModePreservesExistingRecords)
{
    const std::string path = tempPath("append.rec");
    {
        RecordFileWriter w(path, /*truncate=*/true);
        w.append("one");
    }
    {
        RecordFileWriter w(path, /*truncate=*/false);
        w.append("two");
    }
    RecordFileReader r(path);
    std::string payload;
    ASSERT_EQ(r.next(payload), RecordStatus::Ok);
    EXPECT_EQ(payload, "one");
    ASSERT_EQ(r.next(payload), RecordStatus::Ok);
    EXPECT_EQ(payload, "two");
    EXPECT_EQ(r.next(payload), RecordStatus::EndOfFile);
}

TEST(RecordFile, EveryTruncationPointClassifiesAsTornTail)
{
    // Cut the file after record 1 at every possible byte: each cut is
    // exactly what a SIGKILL mid-append leaves behind, and each must
    // read as one good record plus a TruncatedTail — never Corrupt,
    // never a crash.
    const std::string path = tempPath("torn.rec");
    {
        RecordFileWriter w(path, /*truncate=*/true);
        w.append("keep me");
        w.append("tear me");
    }
    const auto full = fileSize(path);
    RecordFileReader probe(path);
    std::string payload;
    ASSERT_EQ(probe.next(payload), RecordStatus::Ok);
    const auto first_end = probe.goodBytes();

    for (auto cut = first_end + 1; cut < full; ++cut) {
        SCOPED_TRACE("cut at byte " + std::to_string(cut));
        const std::string victim = tempPath("torn-cut.rec");
        fs::copy_file(path, victim,
                      fs::copy_options::overwrite_existing);
        fs::resize_file(victim, cut);

        RecordFileReader r(victim);
        ASSERT_EQ(r.next(payload), RecordStatus::Ok);
        EXPECT_EQ(payload, "keep me");
        EXPECT_EQ(r.next(payload), RecordStatus::TruncatedTail);
        EXPECT_EQ(r.goodBytes(), first_end);
    }
}

TEST(RecordFile, BadMagicIsCorrupt)
{
    const std::string path = tempPath("magic.rec");
    {
        RecordFileWriter w(path, /*truncate=*/true);
        w.append("alpha");
        w.append("beta");
    }
    RecordFileReader probe(path);
    std::string payload;
    ASSERT_EQ(probe.next(payload), RecordStatus::Ok);
    flipBit(path, probe.goodBytes(), 3); // second record's magic

    RecordFileReader r(path);
    ASSERT_EQ(r.next(payload), RecordStatus::Ok);
    EXPECT_EQ(r.next(payload), RecordStatus::Corrupt);
}

TEST(RecordFile, PayloadFlipIsCaughtByCrc)
{
    const std::string path = tempPath("crcflip.rec");
    {
        RecordFileWriter w(path, /*truncate=*/true);
        w.append(std::string(64, 'p'));
    }
    // Every payload byte is covered by the CRC: flip each in turn.
    for (std::uintmax_t byte = 12; byte < fileSize(path); ++byte) {
        SCOPED_TRACE("payload byte " + std::to_string(byte));
        const std::string victim = tempPath("crcflip-one.rec");
        fs::copy_file(path, victim,
                      fs::copy_options::overwrite_existing);
        flipBit(victim, byte, static_cast<unsigned>(byte % 8));
        RecordFileReader r(victim);
        std::string payload;
        EXPECT_EQ(r.next(payload), RecordStatus::Corrupt);
    }
}

TEST(RecordFile, OversizedLengthFieldIsCorruptNotAllocated)
{
    const std::string path = tempPath("hugelen.rec");
    {
        RecordFileWriter w(path, /*truncate=*/true);
        w.append("tiny");
    }
    // Force the length field far past MAX_RECORD_BYTES.
    flipBit(path, 7, 7); // top byte of the little-endian length

    RecordFileReader r(path);
    std::string payload;
    EXPECT_EQ(r.next(payload), RecordStatus::Corrupt);
}

TEST(RecordFile, FuzzedBitFlipsNeverCrashTheReader)
{
    const std::string path = tempPath("fuzz.rec");
    {
        RecordFileWriter w(path, /*truncate=*/true);
        for (int i = 0; i < 8; ++i)
            w.append("record payload #" + std::to_string(i));
    }
    const auto size = fileSize(path);

    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const std::string victim = tempPath("fuzz-one.rec");
        fs::copy_file(path, victim,
                      fs::copy_options::overwrite_existing);
        flipBit(victim, mix(seed) % size,
                static_cast<unsigned>(mix(seed + 99) % 8));

        // Read to a terminal status: any mix of Ok records followed
        // by one terminal classification is acceptable; looping
        // forever or crashing is not.
        RecordFileReader r(victim);
        std::string payload;
        RecordStatus status = RecordStatus::Ok;
        int records = 0;
        while ((status = r.next(payload)) == RecordStatus::Ok) {
            ASSERT_LE(++records, 8);
        }
        EXPECT_TRUE(status == RecordStatus::EndOfFile ||
                    status == RecordStatus::TruncatedTail ||
                    status == RecordStatus::Corrupt);
    }
}

TEST(RecordFile, MissingFileThrowsBadJournal)
{
    try {
        RecordFileReader r(tempPath("does-not-exist.rec"));
        FAIL() << "missing file not detected";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadJournal);
    }
}

} // namespace
