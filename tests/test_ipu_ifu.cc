/**
 * @file
 * Unit tests for the instruction fetch unit: pair fetch, I-cache
 * stalls, and branch folding.
 */

#include <gtest/gtest.h>

#include "ipu/ifu.hh"
#include "mem/biu.hh"
#include "trace/trace_source.hh"

namespace
{

using namespace aurora;
using namespace aurora::ipu;
using namespace aurora::trace;

Inst
alu(Addr pc)
{
    Inst i;
    i.pc = pc;
    i.next_pc = pc + 4;
    i.op = OpClass::IntAlu;
    i.src_a = 1;
    i.dst = 2;
    return i;
}

Inst
branch(Addr pc, Addr delay_next, bool taken)
{
    Inst i;
    i.pc = pc;
    i.next_pc = pc + 4; // delay slot follows
    i.op = OpClass::Branch;
    i.taken = taken;
    (void)delay_next;
    return i;
}

/** Straight-line run of @p n ALU ops starting at @p pc. */
std::vector<Inst>
straightLine(Addr pc, int n)
{
    std::vector<Inst> v;
    for (int i = 0; i < n; ++i)
        v.push_back(alu(pc + static_cast<Addr>(4 * i)));
    return v;
}

struct Fixture
{
    explicit Fixture(std::vector<Inst> insts, IfuConfig cfg = {})
        : src(std::move(insts)), biu(mem::BiuConfig{17, 4, 8})
    {
        mem::PrefetchConfig pcfg;
        pcfg.num_buffers = 4;
        pcfg.depth = 2;
        pfu.emplace(pcfg, biu);
        ifu.emplace(cfg, src, *pfu);
    }

    VectorTraceSource src;
    mem::Biu biu;
    std::optional<mem::PrefetchUnit> pfu;
    std::optional<Ifu> ifu;
};

TEST(Ifu, FetchesAlignedPairPerCycle)
{
    Fixture f(straightLine(0x1000, 8));
    // Warm the line first (first tick takes the compulsory miss).
    Cycle t = 0;
    while (f.ifu->empty())
        f.ifu->tick(t++);
    const std::size_t have = f.ifu->available();
    EXPECT_EQ(have, 2u) << "one EVEN/ODD pair per cycle";
    EXPECT_EQ(f.ifu->peek(0).pc, 0x1000u);
    EXPECT_EQ(f.ifu->peek(1).pc, 0x1004u);
}

TEST(Ifu, OddStartFetchesSingleInstruction)
{
    Fixture f(straightLine(0x1004, 8));
    Cycle t = 0;
    while (f.ifu->empty())
        f.ifu->tick(t++);
    // 0x1004 is the ODD slot of its pair: it cannot be co-fetched
    // with 0x1008 (a different pair).
    EXPECT_EQ(f.ifu->available(), 1u);
}

TEST(Ifu, CompulsoryMissStallsFetch)
{
    Fixture f(straightLine(0x1000, 4));
    f.ifu->tick(0);
    EXPECT_TRUE(f.ifu->empty());
    EXPECT_TRUE(f.ifu->missStalled(1));
    // After the line arrives fetch resumes.
    Cycle t = 1;
    while (f.ifu->empty() && t < 100)
        f.ifu->tick(t++);
    EXPECT_FALSE(f.ifu->empty());
    EXPECT_GT(t, 17u) << "the miss had to pay the BIU latency";
}

TEST(Ifu, SameLineNeedsOneMiss)
{
    Fixture f(straightLine(0x1000, 8)); // all in one 32-byte line
    Cycle t = 0;
    for (; t < 100; ++t)
        f.ifu->tick(t);
    EXPECT_EQ(f.ifu->icache().hitRate().misses(), 1u);
}

TEST(Ifu, BranchFoldingAvoidsBubble)
{
    // branch @0x1000 (taken), delay slot @0x1004, target @0x2000.
    std::vector<Inst> insts;
    insts.push_back(branch(0x1000, 0, true));
    insts.push_back(alu(0x1004));
    insts.back().next_pc = 0x2000;
    auto tail = straightLine(0x2000, 4);
    insts.insert(insts.end(), tail.begin(), tail.end());

    IfuConfig folded;
    folded.branch_folding = true;
    Fixture f(insts, folded);

    // Warm both lines, then measure.
    for (Cycle t = 0; t < 200; ++t) {
        f.ifu->tick(t);
        while (!f.ifu->empty())
            f.ifu->pop();
    }

    IfuConfig unfolded;
    unfolded.branch_folding = false;
    Fixture g(insts, unfolded);
    Cycle g_cycles = 0;
    int g_got = 0;
    for (Cycle t = 0; t < 200 && g_got < 6; ++t) {
        g.ifu->tick(t);
        while (!g.ifu->empty()) {
            g.ifu->pop();
            ++g_got;
        }
        g_cycles = t;
    }

    Fixture h(insts, folded);
    Cycle h_cycles = 0;
    int h_got = 0;
    for (Cycle t = 0; t < 200 && h_got < 6; ++t) {
        h.ifu->tick(t);
        while (!h.ifu->empty()) {
            h.ifu->pop();
            ++h_got;
        }
        h_cycles = t;
    }
    EXPECT_LT(h_cycles, g_cycles)
        << "folding must save the taken-branch bubble";
}

TEST(Ifu, ExhaustedAfterTraceEnds)
{
    Fixture f(straightLine(0x1000, 4));
    for (Cycle t = 0; t < 100; ++t) {
        f.ifu->tick(t);
        while (!f.ifu->empty())
            f.ifu->pop();
    }
    EXPECT_TRUE(f.ifu->exhausted());
}

TEST(Ifu, BufferCapsFetchAhead)
{
    IfuConfig cfg;
    cfg.buffer_entries = 4;
    Fixture f(straightLine(0x1000, 64), cfg);
    for (Cycle t = 0; t < 100; ++t)
        f.ifu->tick(t);
    EXPECT_LE(f.ifu->available(), 4u);
}

TEST(Ifu, SingleFetchWidthFetchesOnePerCycle)
{
    IfuConfig cfg;
    cfg.fetch_width = 1;
    Fixture f(straightLine(0x1000, 8), cfg);
    Cycle t = 0;
    while (f.ifu->empty())
        f.ifu->tick(t++);
    EXPECT_EQ(f.ifu->available(), 1u);
}

} // namespace
