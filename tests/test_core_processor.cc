/**
 * @file
 * Unit tests for the processor pipeline on handcrafted traces.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "core/machine_config.hh"
#include "trace/trace_source.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using namespace aurora::trace;

Inst
op(OpClass cls, Addr pc, RegIndex a = NO_REG, RegIndex b = NO_REG,
   RegIndex d = NO_REG, Addr ea = 0)
{
    Inst i;
    i.op = cls;
    i.pc = pc;
    i.next_pc = pc + 4;
    i.src_a = a;
    i.src_b = b;
    i.dst = d;
    i.eff_addr = ea;
    if (isMem(cls))
        i.size = 4;
    return i;
}

/** Straight-line independent ALU ops. */
std::vector<Inst>
aluRun(Addr pc, int n)
{
    std::vector<Inst> v;
    for (int i = 0; i < n; ++i)
        v.push_back(op(OpClass::IntAlu, pc + static_cast<Addr>(4 * i),
                       1, 2, static_cast<RegIndex>(8 + (i % 8))));
    return v;
}

RunResult
runTrace(std::vector<Inst> insts, MachineConfig cfg)
{
    VectorTraceSource src(std::move(insts));
    Processor cpu(cfg, src);
    return cpu.run();
}

TEST(Processor, AccountingIdentityHolds)
{
    VectorTraceSource src(aluRun(0x1000, 64));
    Processor cpu(baselineModel(), src);
    const RunResult r = cpu.run();
    Cycle stall_sum = 0;
    for (const auto s : r.stalls)
        stall_sum += s;
    EXPECT_EQ(r.cycles, r.issuing_cycles + stall_sum + r.tail_cycles)
        << "every cycle must be issuing, stalled, or drain";
    EXPECT_EQ(r.instructions, 64u);
}

namespace
{

/** Baseline with fetch-ahead deep enough to hide compulsory
 *  I-misses on cold straight-line code (these tests exercise the
 *  issue stage, not the fetch path). */
aurora::core::MachineConfig
deepFetchBaseline()
{
    auto cfg = aurora::core::baselineModel();
    cfg.prefetch.depth = 8;
    return cfg;
}

} // namespace

TEST(Processor, DualIssueReachesHalfCpiOnIndependentAlus)
{
    const auto r = runTrace(aluRun(0x1000, 800), deepFetchBaseline());
    // Perfect pairs: 0.5 CPI plus cold-start overhead.
    EXPECT_LT(r.cpi(), 0.75);
    EXPECT_GT(r.cpi(), 0.45);
}

TEST(Processor, SingleIssueIsAboutTwiceDualOnAlus)
{
    const auto dual =
        runTrace(aluRun(0x1000, 800), deepFetchBaseline());
    const auto single = runTrace(
        aluRun(0x1000, 800), deepFetchBaseline().withIssueWidth(1));
    EXPECT_GT(single.cpi(), dual.cpi() * 1.5);
}

TEST(Processor, PairDependencySerializesDualIssue)
{
    // Every odd op depends on the even op right before it: the DI
    // bit forbids every pairing, so dual issue degenerates to 1/cyc.
    std::vector<Inst> v;
    for (int i = 0; i < 200; i += 2) {
        v.push_back(op(OpClass::IntAlu,
                       0x1000 + static_cast<Addr>(4 * i), 1, 2, 10));
        v.push_back(op(OpClass::IntAlu,
                       0x1004 + static_cast<Addr>(4 * i), 10, 2, 11));
    }
    const auto r = runTrace(v, baselineModel());
    EXPECT_GT(r.cpi(), 0.95);
}

TEST(Processor, LoadUseStallChargedToLoad)
{
    // load r8 <- [A]; consumer right behind it. The 3-cycle data
    // cache latency forces Load stalls even on hits.
    std::vector<Inst> v;
    Addr pc = 0x1000;
    for (int i = 0; i < 100; ++i) {
        v.push_back(op(OpClass::Load, pc, 1, NO_REG, 8,
                       0x20000000 + 64u * static_cast<Addr>(i % 4)));
        pc += 4;
        v.push_back(op(OpClass::IntAlu, pc, 8, 2, 9));
        pc += 4;
    }
    const auto r = runTrace(v, baselineModel());
    EXPECT_GT(r.stallCpi(StallCause::Load), 0.3);
}

TEST(Processor, BlockingCacheChargedToLsu)
{
    // Back-to-back independent loads with a single MSHR: the LSU
    // itself is the bottleneck.
    std::vector<Inst> v;
    Addr pc = 0x1000;
    for (int i = 0; i < 100; ++i) {
        v.push_back(op(OpClass::Load, pc, 1, NO_REG,
                       static_cast<RegIndex>(8 + i % 8),
                       0x20000000 + 32u * static_cast<Addr>(i % 8)));
        pc += 4;
        v.push_back(op(OpClass::IntAlu, pc, 1, 2, 20));
        pc += 4;
    }
    const auto r = runTrace(v, baselineModel().withMshrs(1));
    EXPECT_GT(r.stallCpi(StallCause::LsuBusy), 0.3);
}

TEST(Processor, TinyRobChargedToRobFull)
{
    // A long-latency load miss followed by many independent ALUs:
    // with a 2-entry ROB the machine cannot run ahead.
    std::vector<Inst> v;
    v.push_back(op(OpClass::Load, 0x1000, 1, NO_REG, 8, 0x20000000));
    auto tail = aluRun(0x1004, 40);
    v.insert(v.end(), tail.begin(), tail.end());
    auto cfg = baselineModel();
    cfg.rob_entries = 2;
    const auto r = runTrace(v, cfg);
    EXPECT_GT(r.stalls[static_cast<std::size_t>(StallCause::RobFull)],
              10u);
}

TEST(Processor, BigRobHidesTheSameMiss)
{
    std::vector<Inst> v;
    v.push_back(op(OpClass::Load, 0x1000, 1, NO_REG, 8, 0x20000000));
    auto tail = aluRun(0x1004, 40);
    v.insert(v.end(), tail.begin(), tail.end());
    auto cfg = baselineModel();
    cfg.rob_entries = 64;
    const auto r = runTrace(v, cfg);
    EXPECT_EQ(r.stalls[static_cast<std::size_t>(StallCause::RobFull)],
              0u);
}

TEST(Processor, MemoryPairConstraint)
{
    // Pairs of independent memory ops can never dual issue.
    std::vector<Inst> v;
    Addr pc = 0x1000;
    for (int i = 0; i < 100; ++i) {
        v.push_back(op(OpClass::Store, pc, 1, 2, NO_REG,
                       0x7ffe0000 + 4u * static_cast<Addr>(i % 8)));
        pc += 4;
        v.push_back(op(OpClass::Store, pc, 1, 2, NO_REG,
                       0x7ffe0100 + 4u * static_cast<Addr>(i % 8)));
        pc += 4;
    }
    const auto r = runTrace(v, baselineModel());
    EXPECT_GT(r.cpi(), 0.95)
        << "one memory access per cycle (§2, issue constraints)";
}

TEST(Processor, FpOpsFlowThroughFpu)
{
    std::vector<Inst> v;
    Addr pc = 0x1000;
    for (int i = 0; i < 50; ++i) {
        Inst f = op(OpClass::FpAdd, pc);
        f.fsrc_a = 2;
        f.fsrc_b = 4;
        f.fdst = static_cast<RegIndex>(6 + 2 * (i % 8));
        v.push_back(f);
        pc += 4;
    }
    VectorTraceSource src(v);
    Processor cpu(baselineModel(), src);
    const auto r = cpu.run();
    EXPECT_EQ(r.fp_dispatched, 50u);
    EXPECT_EQ(r.fpu.issued, 50u);
}

TEST(Processor, DoneDrainsEverything)
{
    VectorTraceSource src(aluRun(0x1000, 10));
    Processor cpu(baselineModel(), src);
    while (!cpu.done())
        cpu.step();
    EXPECT_TRUE(cpu.rob().empty());
    EXPECT_TRUE(cpu.fpu().idle());
    EXPECT_TRUE(cpu.ifu().exhausted());
}

TEST(Processor, ResultSnapshotsComponentStats)
{
    VectorTraceSource src(aluRun(0x1000, 100));
    Processor cpu(baselineModel(), src);
    const auto r = cpu.run();
    EXPECT_EQ(r.model, "baseline");
    EXPECT_GT(r.icache_hit_pct, 50.0);
    EXPECT_GT(r.rbe_cost, 10000.0);
}

} // namespace
