/**
 * @file
 * Unit tests for the table formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace
{

using aurora::Table;

TEST(Table, AsciiHasHeaderAndRows)
{
    Table t({"model", "cpi"});
    t.row().cell("small").cell(2.5, 2);
    t.row().cell("large").cell(1.25, 2);
    const std::string out = t.ascii();
    EXPECT_NE(out.find("model"), std::string::npos);
    EXPECT_NE(out.find("small"), std::string::npos);
    EXPECT_NE(out.find("2.50"), std::string::npos);
    EXPECT_NE(out.find("1.25"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, ColumnsAreAligned)
{
    Table t({"a", "b"});
    t.row().cell("x").cell("y");
    t.row().cell("longer").cell("z");
    std::istringstream in(t.ascii());
    std::string header, sep, r1, r2;
    std::getline(in, header);
    std::getline(in, sep);
    std::getline(in, r1);
    std::getline(in, r2);
    EXPECT_EQ(r1.size(), r2.size());
    EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"bench", "hit"});
    t.row().cell("espresso").cell(std::uint64_t{42});
    EXPECT_EQ(t.csv(), "bench,hit\nespresso,42\n");
}

TEST(Table, PrintIncludesTitle)
{
    Table t({"c"});
    t.row().cell("v");
    std::ostringstream os;
    t.print(os, "Table 1: stuff");
    EXPECT_NE(os.str().find("Table 1: stuff"), std::string::npos);
}

TEST(Table, IntegerCells)
{
    Table t({"n"});
    t.row().cell(std::uint64_t{123456});
    EXPECT_NE(t.ascii().find("123456"), std::string::npos);
}

} // namespace
