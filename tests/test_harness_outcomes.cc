/**
 * @file
 * Per-job fault isolation tests for SweepRunner::runOutcomes():
 * a poisoned grid always runs to completion, healthy jobs stay
 * bit-identical to an all-healthy sweep at any worker count, failures
 * carry structured error codes, and the retry policy is honored.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "faultinject/faultinject.hh"
#include "harness/sweep.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using namespace aurora::harness;
namespace fi = aurora::faultinject;
using util::SimErrorCode;

constexpr Count N = 20000;

/** Field-exact RunResult comparison (bit-identical doubles). */
void
expectRunEq(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.issuing_cycles, b.issuing_cycles);
    EXPECT_EQ(a.tail_cycles, b.tail_cycles);
    EXPECT_EQ(a.stalls, b.stalls);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.fp_dispatched, b.fp_dispatched);
    EXPECT_EQ(a.issue_width_cycles, b.issue_width_cycles);
    EXPECT_EQ(a.avg_rob_occupancy, b.avg_rob_occupancy);
    EXPECT_EQ(a.avg_mshr_occupancy, b.avg_mshr_occupancy);
    const auto occ_eq = [](const OccupancyStats &x,
                           const OccupancyStats &y) {
        EXPECT_EQ(x.mean, y.mean);
        EXPECT_EQ(x.p50, y.p50);
        EXPECT_EQ(x.p95, y.p95);
        EXPECT_EQ(x.max, y.max);
    };
    occ_eq(a.rob_occupancy, b.rob_occupancy);
    occ_eq(a.mshr_occupancy, b.mshr_occupancy);
    occ_eq(a.fp_instq_occupancy, b.fp_instq_occupancy);
    occ_eq(a.fp_loadq_occupancy, b.fp_loadq_occupancy);
    occ_eq(a.fp_storeq_occupancy, b.fp_storeq_occupancy);
    EXPECT_EQ(a.cpi(), b.cpi());
}

/**
 * A 9-job grid with every third job poisoned: index 2 is an invalid
 * config, index 5 a wedged (never-retiring) machine, index 8 an
 * invalid config again.
 */
struct PoisonedGrid
{
    std::vector<SweepJob> jobs;
    std::vector<bool> bad;
    std::vector<SweepJob> healthy;
};

PoisonedGrid
poisonedGrid()
{
    PoisonedGrid g;
    const std::string benches[] = {"espresso", "li",    "gcc",
                                   "compress", "nasa7", "doduc",
                                   "eqntott",  "sc",    "ora"};
    for (const auto &name : benches)
        g.healthy.push_back(
            {baselineModel(), trace::profileByName(name), N});
    g.jobs = g.healthy;
    g.bad.assign(g.jobs.size(), false);

    g.jobs[2].machine =
        fi::poisonConfig(g.jobs[2].machine, fi::ConfigFault::ZeroRob);
    g.jobs[5].machine = fi::wedgeConfig(g.jobs[5].machine);
    g.jobs[8].machine = fi::poisonConfig(
        g.jobs[8].machine, fi::ConfigFault::OverlongFpLatency);
    g.bad[2] = g.bad[5] = g.bad[8] = true;
    return g;
}

SweepOptions
isolationOptions(unsigned workers)
{
    SweepOptions opts;
    opts.workers = workers;
    opts.base_seed = 0xfeedface;
    // Tight stall window so the wedged job fails in milliseconds; far
    // above any healthy retirement gap at these run lengths.
    opts.watchdog = WatchdogConfig{2000, 0};
    // These tests exercise the *runtime* detectors (validate() in the
    // worker, the forward-progress watchdog); the static preflight
    // would reject the poisoned grids before any worker started.
    opts.preflight = false;
    return opts;
}

TEST(SweepOutcomes, PoisonedGridCompletesAndHealthyJobsAreIdentical)
{
    const auto g = poisonedGrid();

    // All-healthy reference through the same machinery.
    SweepRunner ref(isolationOptions(4));
    const auto reference = ref.runOutcomes(g.healthy);
    for (const auto &out : reference)
        ASSERT_TRUE(out.ok) << out.error;

    for (unsigned workers : {1u, 2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        SweepRunner runner(isolationOptions(workers));
        const auto outcomes = runner.runOutcomes(g.jobs);
        ASSERT_EQ(outcomes.size(), g.jobs.size());

        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            SCOPED_TRACE("job " + std::to_string(i));
            if (g.bad[i]) {
                EXPECT_FALSE(outcomes[i].ok);
                EXPECT_FALSE(outcomes[i].error.empty());
                EXPECT_EQ(outcomes[i].code,
                          i == 5 ? SimErrorCode::NoForwardProgress
                                 : SimErrorCode::BadConfig);
            } else {
                ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
                expectRunEq(outcomes[i].result, reference[i].result);
            }
        }

        const auto &rep = runner.report();
        EXPECT_EQ(rep.ok_jobs, 6u);
        EXPECT_EQ(rep.failed_jobs, 3u);
        EXPECT_EQ(rep.retried_jobs, 0u);
        const std::string summary = rep.summary();
        EXPECT_NE(summary.find("failed 3"), std::string::npos)
            << summary;
    }
}

TEST(SweepOutcomes, FailedJobsDoNotCountInstructions)
{
    const auto g = poisonedGrid();
    SweepRunner runner(isolationOptions(4));
    runner.runOutcomes(g.jobs);
    EXPECT_EQ(runner.report().total_instructions, Count{6} * N);
}

TEST(SweepOutcomes, MatchesFailFastResultsOnHealthyGrids)
{
    // runOutcomes() and run() must simulate identically when nothing
    // fails (same derived seeds, same watchdog resolution).
    const auto g = poisonedGrid();
    SweepRunner a(isolationOptions(4));
    SweepRunner b(isolationOptions(4));
    const auto outcomes = a.runOutcomes(g.healthy);
    const auto results = b.run(g.healthy);
    ASSERT_EQ(outcomes.size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        ASSERT_TRUE(outcomes[i].ok);
        expectRunEq(outcomes[i].result, results[i]);
    }
}

TEST(SweepOutcomes, RetriesRecoverTransientFailures)
{
    // A task that fails on its first invocation only — the shape of a
    // transient environment fault, reproduced deterministically.
    std::atomic<unsigned> calls{0};
    std::vector<std::function<RunResult()>> tasks;
    tasks.push_back([&calls]() {
        if (calls.fetch_add(1) == 0)
            util::raiseError(SimErrorCode::Internal, "transient");
        return simulate(baselineModel(), trace::espresso(), 2000);
    });

    SweepOptions with_retries;
    with_retries.retries = 2;
    SweepRunner runner(with_retries);
    const auto outcomes = runner.runTaskOutcomes(tasks);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_EQ(outcomes[0].attempts, 2u);
    EXPECT_EQ(runner.report().retried_jobs, 1u);
    EXPECT_EQ(runner.report().failed_jobs, 0u);
    EXPECT_NE(runner.report().summary().find("retried 1"),
              std::string::npos)
        << runner.report().summary();
}

TEST(SweepOutcomes, WithoutRetriesTransientFailureIsTerminal)
{
    std::atomic<unsigned> calls{0};
    std::vector<std::function<RunResult()>> tasks;
    tasks.push_back([&calls]() {
        if (calls.fetch_add(1) == 0)
            util::raiseError(SimErrorCode::Internal, "transient");
        return simulate(baselineModel(), trace::espresso(), 2000);
    });

    SweepOptions no_retries;
    no_retries.retries = 0;
    SweepRunner runner(no_retries);
    const auto outcomes = runner.runTaskOutcomes(tasks);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_EQ(outcomes[0].code, SimErrorCode::Internal);
    EXPECT_EQ(runner.report().failed_jobs, 1u);
}

TEST(SweepOutcomes, PermanentFaultExhaustsEveryAttempt)
{
    std::atomic<unsigned> calls{0};
    std::vector<std::function<RunResult()>> tasks;
    tasks.push_back([&calls]() -> RunResult {
        calls.fetch_add(1);
        util::raiseError(SimErrorCode::BadConfig, "always broken");
    });

    SweepOptions opts;
    opts.retries = 3;
    SweepRunner runner(opts);
    const auto outcomes = runner.runTaskOutcomes(tasks);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 4u);
    EXPECT_EQ(calls.load(), 4u);
    EXPECT_EQ(outcomes[0].code, SimErrorCode::BadConfig);
    EXPECT_NE(outcomes[0].error.find("always broken"),
              std::string::npos);
}

TEST(SweepOutcomes, NonSimErrorsAreClassifiedInternal)
{
    std::vector<std::function<RunResult()>> tasks;
    tasks.push_back([]() -> RunResult {
        throw std::out_of_range("vector index");
    });
    SweepRunner runner;
    const auto outcomes = runner.runTaskOutcomes(tasks);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].code, SimErrorCode::Internal);
    EXPECT_NE(outcomes[0].error.find("vector index"),
              std::string::npos);
}

TEST(SweepOutcomes, EmptyGridIsHarmless)
{
    SweepRunner runner;
    EXPECT_TRUE(runner.runOutcomes({}).empty());
    EXPECT_EQ(runner.report().ok_jobs, 0u);
    EXPECT_EQ(runner.report().failed_jobs, 0u);
}

TEST(SweepOutcomes, DeadlineConvertsHangIntoTimeout)
{
    // One wedged machine (validates, never retires) among healthy
    // jobs. The stall watchdog is disabled, so only the wall-clock
    // deadline can end the hung run. The deadline is generous and the
    // healthy jobs small: sanitizer builds slow every job down, and
    // only the wedge may ever expire.
    std::vector<SweepJob> grid;
    grid.push_back({baselineModel(), trace::espresso(), 5000});
    grid.push_back(
        {fi::wedgeConfig(baselineModel()), trace::nasa7(), 5000});
    grid.push_back({baselineModel(), trace::li(), 5000});

    SweepOptions opts;
    opts.workers = 4;
    opts.base_seed = 0xfeedface;
    opts.watchdog = WatchdogConfig{0, 0};
    opts.deadline_ms = 2000;
    opts.retries = 3; // must not apply to the deterministic hang
    opts.preflight = false; // the wedge must reach a worker
    SweepRunner runner(opts);
    const auto outcomes = runner.runOutcomes(grid);

    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_TRUE(outcomes[2].ok) << outcomes[2].error;
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_EQ(outcomes[1].code, SimErrorCode::Timeout);
    EXPECT_EQ(outcomes[1].attempts, 1u);
    EXPECT_NE(outcomes[1].error.find("deadline"), std::string::npos)
        << outcomes[1].error;

    const auto &rep = runner.report();
    EXPECT_EQ(rep.timed_out_jobs, 1u);
    EXPECT_EQ(rep.failed_jobs, 0u);
    EXPECT_EQ(rep.ok_jobs, 2u);
    EXPECT_EQ(rep.jobs, rep.ok_jobs + rep.failed_jobs +
                            rep.timed_out_jobs + rep.skipped_jobs);
    EXPECT_NE(rep.summary().find("timed out 1"), std::string::npos)
        << rep.summary();
}

TEST(SweepOutcomes, DeadlineZeroMeansUnlimited)
{
    std::vector<SweepJob> grid;
    grid.push_back({baselineModel(), trace::espresso(), N});
    SweepOptions opts;
    opts.deadline_ms = 0;
    SweepRunner runner(opts);
    const auto outcomes = runner.runOutcomes(grid);
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
}

TEST(SweepOutcomes, FailFastAbortBalancesTheBooks)
{
    // Serial fail-fast: task 1 throws, tasks 2 and 3 are drained
    // unrun. The report must still balance
    // jobs == ok + failed + timed_out + skipped.
    std::vector<std::function<RunResult()>> tasks;
    tasks.push_back([]() {
        return simulate(baselineModel(), trace::espresso(), 2000);
    });
    tasks.push_back([]() -> RunResult {
        util::raiseError(SimErrorCode::BadConfig, "abort the sweep");
    });
    tasks.push_back([]() {
        return simulate(baselineModel(), trace::li(), 2000);
    });
    tasks.push_back([]() {
        return simulate(baselineModel(), trace::gcc(), 2000);
    });

    SweepOptions opts;
    opts.workers = 1;
    SweepRunner runner(opts);
    EXPECT_THROW(runner.runTasks(tasks), util::SimError);

    const auto &rep = runner.report();
    EXPECT_EQ(rep.jobs, 4u);
    EXPECT_EQ(rep.ok_jobs, 1u);
    EXPECT_EQ(rep.failed_jobs, 1u);
    EXPECT_EQ(rep.timed_out_jobs, 0u);
    EXPECT_EQ(rep.skipped_jobs, 2u);
    EXPECT_EQ(rep.jobs, rep.ok_jobs + rep.failed_jobs +
                            rep.timed_out_jobs + rep.skipped_jobs);
    EXPECT_NE(rep.summary().find("skipped 2"), std::string::npos)
        << rep.summary();
}

TEST(SweepOutcomes, PooledFailFastAbortStillBalances)
{
    std::vector<std::function<RunResult()>> tasks;
    for (int i = 0; i < 12; ++i) {
        if (i == 2)
            tasks.push_back([]() -> RunResult {
                util::raiseError(SimErrorCode::BadTrace, "poisoned");
            });
        else
            tasks.push_back([]() {
                return simulate(baselineModel(), trace::espresso(),
                                2000);
            });
    }
    SweepOptions opts;
    opts.workers = 4;
    SweepRunner runner(opts);
    EXPECT_THROW(runner.runTasks(tasks), util::SimError);
    const auto &rep = runner.report();
    EXPECT_EQ(rep.jobs, 12u);
    EXPECT_GE(rep.skipped_jobs, 1u); // the abort drained a tail
    EXPECT_EQ(rep.jobs, rep.ok_jobs + rep.failed_jobs +
                            rep.timed_out_jobs + rep.skipped_jobs);
}

TEST(SweepPreflight, RejectsPoisonedGridBeforeAnyWorkerStarts)
{
    // Default-on preflight: the same poisoned grid the isolation
    // tests run to completion is rejected up front — including job 5,
    // the wedged machine that validate() accepts — and no job
    // executes (report().jobs stays zero).
    const auto g = poisonedGrid();
    SweepOptions opts;
    opts.workers = 4;
    try {
        SweepRunner runner(opts);
        runner.runOutcomes(g.jobs);
        FAIL() << "preflight accepted a poisoned grid";
    } catch (const util::SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadConfig);
        const std::string what = e.what();
        EXPECT_NE(what.find("preflight"), std::string::npos) << what;
        EXPECT_NE(what.find("job 2"), std::string::npos) << what;
        EXPECT_NE(what.find("job 5"), std::string::npos) << what;
        EXPECT_NE(what.find("job 8"), std::string::npos) << what;
        EXPECT_NE(what.find("AUR001"), std::string::npos) << what;
        EXPECT_NE(what.find("AUR010"), std::string::npos) << what;
        EXPECT_NE(what.find("AUR007"), std::string::npos) << what;
    }

    SweepRunner fresh(opts);
    EXPECT_THROW(fresh.run(g.jobs), util::SimError);
    EXPECT_EQ(fresh.report().jobs, 0u);
}

TEST(SweepPreflight, CleanGridPassesAndWarningsDoNotBlock)
{
    SweepOptions opts;
    opts.workers = 2;
    SweepRunner runner(opts);
    ASSERT_TRUE(runner.preflightEnabled());

    // A warning-only machine (write cache narrower than the issue
    // width) must still launch: only errors gate.
    MachineConfig warn_only = baselineModel();
    warn_only.write_cache.lines = 1;
    std::vector<SweepJob> grid;
    grid.push_back({warn_only, trace::espresso(), 2000});
    const auto outcomes = runner.runOutcomes(grid);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
}

TEST(SweepPreflight, EnvironmentVariableDisablesIt)
{
    ASSERT_EQ(setenv("AURORA_PREFLIGHT", "0", 1), 0);
    SweepOptions opts;
    SweepRunner env_off(opts);
    EXPECT_FALSE(env_off.preflightEnabled());
    // An explicit option always beats the environment.
    opts.preflight = true;
    SweepRunner opt_on(opts);
    EXPECT_TRUE(opt_on.preflightEnabled());
    ASSERT_EQ(unsetenv("AURORA_PREFLIGHT"), 0);
    SweepRunner fresh;
    EXPECT_TRUE(fresh.preflightEnabled());
}

TEST(SweepPreflight, ModelAdvisorIsProvablyInert)
{
    // The analytic preflight advisor is log-only. With it on, every
    // outcome must be bit-identical to the advisor-off run — same
    // cycles, same occupancy stats, same report — or "advisory"
    // would be a lie.
    std::vector<SweepJob> grid;
    for (const auto &name : {"espresso", "li", "nasa7", "ora"})
        grid.push_back(
            {baselineModel(), trace::profileByName(name), 5000});

    SweepOptions off;
    off.workers = 2;
    off.base_seed = 0xfeedface;
    off.model_advice = false;
    SweepRunner quiet(off);
    const auto baseline = quiet.runOutcomes(grid);

    SweepOptions on = off;
    on.model_advice = true;
    SweepRunner advised(on);
    ASSERT_TRUE(advised.modelAdviceEnabled());
    const auto outcomes = advised.runOutcomes(grid);

    ASSERT_EQ(outcomes.size(), baseline.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
        expectRunEq(outcomes[i].result, baseline[i].result);
    }
    EXPECT_EQ(advised.report().ok_jobs, quiet.report().ok_jobs);

    // Under a starved cycle budget the advisor predicts the doom up
    // front (its budget-warning branch) — but the *outcome* is the
    // watchdog's call either way, advisor on or off.
    SweepOptions tight_off = off;
    tight_off.watchdog = WatchdogConfig{0, 100};
    SweepOptions tight_on = tight_off;
    tight_on.model_advice = true;
    SweepRunner doomed_quiet(tight_off);
    SweepRunner doomed_advised(tight_on);
    const auto doomed_a = doomed_quiet.runOutcomes(grid);
    const auto doomed_b = doomed_advised.runOutcomes(grid);
    ASSERT_EQ(doomed_a.size(), doomed_b.size());
    for (std::size_t i = 0; i < doomed_a.size(); ++i) {
        SCOPED_TRACE("budget-limited job " + std::to_string(i));
        EXPECT_EQ(doomed_a[i].ok, doomed_b[i].ok);
        EXPECT_EQ(doomed_a[i].code, doomed_b[i].code);
    }
}

TEST(SweepPreflight, ModelAdvisorDefaultsOffAndEnvEnablesIt)
{
    SweepRunner fresh;
    EXPECT_FALSE(fresh.modelAdviceEnabled());

    ASSERT_EQ(setenv("AURORA_PREFLIGHT_MODEL", "1", 1), 0);
    SweepRunner env_on;
    EXPECT_TRUE(env_on.modelAdviceEnabled());
    // An explicit option always beats the environment.
    SweepOptions opts;
    opts.model_advice = false;
    SweepRunner opt_off(opts);
    EXPECT_FALSE(opt_off.modelAdviceEnabled());
    ASSERT_EQ(unsetenv("AURORA_PREFLIGHT_MODEL"), 0);
}

TEST(SweepOutcomes, RetryBackoffDelaysTheSecondAttempt)
{
    std::atomic<unsigned> calls{0};
    std::vector<std::function<RunResult()>> tasks;
    tasks.push_back([&calls]() {
        if (calls.fetch_add(1) == 0)
            util::raiseError(SimErrorCode::Internal, "transient");
        return simulate(baselineModel(), trace::espresso(), 2000);
    });

    SweepOptions opts;
    opts.retries = 1;
    opts.backoff_ms = 60;
    SweepRunner runner(opts);
    const WallTimer timer;
    const auto outcomes = runner.runTaskOutcomes(tasks);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_EQ(outcomes[0].attempts, 2u);
    // The second attempt waited the base backoff delay first.
    EXPECT_GE(timer.seconds(), 0.055);
}

} // namespace
