/**
 * @file
 * Tests for static grid ranking and dominance pruning.
 *
 * The explorer's safety property is that pruning is conservative:
 * the set of non-dominated points it reports is *exactly* the Pareto
 * frontier of the predicted (RBE, bound) values — nothing on the
 * true frontier is ever flagged AUR043. A pinned 3×3 grid checks
 * this against a brute-force frontier computed straight from the
 * definition, and a randomized sweep holds the property on arbitrary
 * grids (duplicate points included — strict dominance must never
 * prune an equivalence class).
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "analyze/explore.hh"
#include "analyze/model.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::analyze;

/** The definitionally-true frontier of the explorer's own values. */
std::vector<std::size_t>
bruteForceFrontier(const std::vector<GridPointModel> &points)
{
    std::vector<std::size_t> frontier;
    for (const auto &p : points) {
        bool dominated = false;
        for (const auto &q : points) {
            if (q.index == p.index)
                continue;
            if (q.rbe <= p.rbe && q.bound >= p.bound &&
                (q.rbe < p.rbe || q.bound > p.bound))
                dominated = true;
        }
        if (!dominated)
            frontier.push_back(p.index);
    }
    return frontier;
}

/** 3×3 pinned grid: mshr × rob on the baseline. */
std::vector<core::MachineConfig>
pinnedGrid()
{
    std::vector<core::MachineConfig> grid;
    for (unsigned mshr : {1u, 2u, 4u})
        for (unsigned rob : {2u, 6u, 12u}) {
            core::MachineConfig m = core::baselineModel();
            m.lsu.mshr_entries = mshr;
            m.rob_entries = rob;
            grid.push_back(m);
        }
    return grid;
}

std::vector<trace::WorkloadProfile>
pinnedProfiles()
{
    return {trace::espresso(), trace::nasa7()};
}

TEST(AnalyzeExplore, PinnedGridPreservesTrueParetoFrontier)
{
    const ExploreResult r =
        exploreGrid(pinnedGrid(), pinnedProfiles(), {});
    ASSERT_EQ(r.points.size(), 9u);

    std::vector<std::size_t> expected = bruteForceFrontier(r.points);
    std::vector<std::size_t> got = r.frontier;
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected)
        << "explorer frontier disagrees with the dominance "
           "definition";

    // The grid must actually exercise pruning: a bigger ROB at the
    // same 1-MSHR serialization bound costs RBE for nothing.
    EXPECT_LT(r.frontier.size(), r.points.size());
}

TEST(AnalyzeExplore, DominatedPointsCarryValidWitness)
{
    const ExploreResult r =
        exploreGrid(pinnedGrid(), pinnedProfiles(), {});
    std::size_t dominated = 0;
    for (const auto &p : r.points) {
        if (!p.dominated) {
            EXPECT_EQ(p.dominated_by, NOT_DOMINATED);
            continue;
        }
        ++dominated;
        ASSERT_LT(p.dominated_by, r.points.size());
        const GridPointModel &by = r.points[p.dominated_by];
        EXPECT_LE(by.rbe, p.rbe);
        EXPECT_GE(by.bound, p.bound);
        EXPECT_TRUE(by.rbe < p.rbe || by.bound > p.bound)
            << "witness does not strictly dominate";
        EXPECT_FALSE(by.dominated && by.dominated_by == p.index)
            << "mutual domination is impossible under strictness";
    }
    // One AUR043 per dominated point, tagged with its grid index.
    std::vector<int> jobs;
    for (const auto &d : r.diagnostics)
        if (d.id == "AUR043") {
            EXPECT_EQ(d.severity, Severity::Warning);
            jobs.push_back(d.job);
        }
    EXPECT_EQ(jobs.size(), dominated);
    for (const int job : jobs) {
        ASSERT_GE(job, 0);
        ASSERT_LT(std::size_t(job), r.points.size());
        EXPECT_TRUE(r.points[job].dominated);
    }
}

TEST(AnalyzeExplore, EqualPointsNeverPruneEachOther)
{
    // Three byte-identical machines: none strictly dominates, all
    // stay on the frontier.
    std::vector<core::MachineConfig> grid(3, core::baselineModel());
    const ExploreResult r =
        exploreGrid(grid, pinnedProfiles(), {});
    EXPECT_EQ(r.frontier.size(), 3u);
    for (const auto &p : r.points)
        EXPECT_FALSE(p.dominated);
    for (const auto &d : r.diagnostics)
        EXPECT_NE(d.id, "AUR043");
}

TEST(AnalyzeExplore, MinIpcFloorTagsPointsBelow)
{
    ExploreOptions opts;
    opts.min_ipc = 1.6; // between the 1-MSHR bound and the rest
    const ExploreResult r =
        exploreGrid(pinnedGrid(), {trace::espresso()}, opts);
    for (const auto &p : r.points) {
        bool flagged = false;
        for (const auto &d : r.diagnostics)
            if (d.id == "AUR042" && d.job == int(p.index))
                flagged = true;
        EXPECT_EQ(flagged, p.bound < opts.min_ipc)
            << "point " << p.index;
    }
}

TEST(AnalyzeExplore, DeterministicAndOrdered)
{
    const ExploreResult a =
        exploreGrid(pinnedGrid(), pinnedProfiles(), {});
    const ExploreResult b =
        exploreGrid(pinnedGrid(), pinnedProfiles(), {});
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].rbe, b.points[i].rbe);
        EXPECT_EQ(a.points[i].bound, b.points[i].bound);
        EXPECT_EQ(a.points[i].dominated, b.points[i].dominated);
        EXPECT_EQ(a.points[i].dominated_by, b.points[i].dominated_by);
    }
    EXPECT_EQ(a.frontier, b.frontier);
    // Frontier is sorted cheapest-first.
    for (std::size_t i = 1; i < a.frontier.size(); ++i)
        EXPECT_LE(a.points[a.frontier[i - 1]].rbe,
                  a.points[a.frontier[i]].rbe);
}

TEST(AnalyzeExplore, RandomGridsKeepFrontierExact)
{
    std::mt19937 rng(99);
    const auto profiles = pinnedProfiles();
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<core::MachineConfig> grid;
        const std::size_t n = 4 + rng() % 12;
        for (std::size_t i = 0; i < n; ++i) {
            core::MachineConfig m = core::baselineModel();
            m.lsu.mshr_entries = 1 + rng() % 6;
            m.rob_entries = 2 + rng() % 12;
            m.write_cache.lines = 1 + rng() % 8;
            m.fpu.inst_queue = 1 + rng() % 7;
            grid.push_back(m);
        }
        const ExploreResult r = exploreGrid(grid, profiles, {});
        std::vector<std::size_t> expected =
            bruteForceFrontier(r.points);
        std::vector<std::size_t> got = r.frontier;
        std::sort(got.begin(), got.end());
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(got, expected) << "trial " << trial;
    }
}

} // namespace
