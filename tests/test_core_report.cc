/**
 * @file
 * Unit tests for report formatting.
 */

#include <gtest/gtest.h>

#include "core/report.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

SuiteResult
tinySuite()
{
    return runSuite(baselineModel(),
                    {trace::espresso(), trace::compress()}, 20000);
}

TEST(Report, RunReportMentionsEverything)
{
    const auto r = simulate(baselineModel(), trace::li(), 20000);
    const std::string text = runReport(r);
    for (const char *needle :
         {"baseline", "li", "CPI", "I-cache", "D-cache",
          "write-cache", "ROB occupancy", "MSHR occupancy", "RBE",
          "ICache=", "Load=", "LSU-Busy="})
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(Report, SuiteTableHasOneRowPerBenchmark)
{
    const auto s = tinySuite();
    const Table t = suiteTable(s);
    EXPECT_EQ(t.numRows(), 2u);
    const std::string text = t.ascii();
    EXPECT_NE(text.find("espresso"), std::string::npos);
    EXPECT_NE(text.find("compress"), std::string::npos);
}

TEST(Report, StallTableCoversEveryCause)
{
    const auto s = tinySuite();
    const std::string text = stallTable(s).ascii();
    for (std::size_t c = 0; c < NUM_STALL_CAUSES; ++c)
        EXPECT_NE(text.find(std::string(
                      stallCauseName(static_cast<StallCause>(c)))),
                  std::string::npos);
}

TEST(Report, ComparisonTableOrdersMachines)
{
    std::vector<SuiteResult> suites;
    for (const auto &m : studyModels())
        suites.push_back(
            runSuite(m, {trace::espresso()}, 20000));
    const Table t = comparisonTable(suites);
    EXPECT_EQ(t.numRows(), 3u);
    const std::string text = t.ascii();
    EXPECT_LT(text.find("small"), text.find("baseline"));
    EXPECT_LT(text.find("baseline"), text.find("large"));
}

TEST(Report, ScatterCsvIsParseable)
{
    std::vector<SuiteResult> suites;
    suites.push_back(runSuite(baselineModel(),
                              {trace::espresso()}, 20000));
    const std::string csv = scatterCsv(suites);
    EXPECT_EQ(csv.find("machine,cost_rbe,cpi_avg\n"), 0u);
    EXPECT_NE(csv.find("baseline,"), std::string::npos);
}

} // namespace
