/**
 * @file
 * Static machine-model linter tests: every shipped model is clean,
 * every catalog AUR0xx check fires on the configuration it exists
 * for, the RBE budget check prices overshoot actionably, and the
 * linter never throws on garbage input.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/lint_config.hh"
#include "core/machine_config.hh"
#include "cost/rbe.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using analyze::Diagnostic;
using analyze::lintConfig;
using analyze::LintOptions;
using analyze::Severity;

bool
has(const std::vector<Diagnostic> &findings, const std::string &id)
{
    for (const Diagnostic &d : findings)
        if (d.id == id)
            return true;
    return false;
}

std::string
idList(const std::vector<Diagnostic> &findings)
{
    std::string out;
    for (const Diagnostic &d : findings)
        out += d.id + " ";
    return out;
}

TEST(LintConfig, ShippedModelsAreClean)
{
    for (const MachineConfig &m :
         {smallModel(), baselineModel(), largeModel(),
          recommendedModel()}) {
        SCOPED_TRACE(m.name);
        const auto findings = lintConfig(m);
        EXPECT_TRUE(findings.empty())
            << m.name << ": " << idList(findings);
    }
}

TEST(LintConfig, CleanImpliesValidateAccepts)
{
    // The contract in lint_config.hh: a clean lint means validate()
    // would also accept the machine.
    for (const MachineConfig &m : studyModels())
        if (lintConfig(m).empty()) {
            EXPECT_NO_THROW(m.validate()) << m.name;
        }
}

TEST(LintConfig, EveryValidateRejectionHasACatalogId)
{
    // One mutation per validate() check: each must surface as an
    // error-severity diagnostic, so a sweep preflight rejects exactly
    // what the Processor constructor would.
    struct Case
    {
        const char *id;
        void (*mutate)(MachineConfig &);
    };
    const Case cases[] = {
        {"AUR008", [](MachineConfig &m) { m.issue_width = 3; }},
        {"AUR004", [](MachineConfig &m) { m.ifu.fetch_width = 1; }},
        {"AUR009", [](MachineConfig &m) { m.retire_width = 1; }},
        {"AUR003", [](MachineConfig &m) { m.lsu.line_bytes = 64; }},
        {"AUR003", [](MachineConfig &m) { m.prefetch.line_bytes = 16; }},
        {"AUR001", [](MachineConfig &m) { m.rob_entries = 0; }},
        {"AUR020", [](MachineConfig &m) { m.alu_latency = 0; }},
        {"AUR002", [](MachineConfig &m) { m.lsu.mshr_entries = 0; }},
        {"AUR011", [](MachineConfig &m) { m.prefetch.num_buffers = 0; }},
        {"AUR005", [](MachineConfig &m) { m.fpu.inst_queue = 0; }},
        {"AUR005", [](MachineConfig &m) { m.fpu.load_queue = 0; }},
        {"AUR005", [](MachineConfig &m) { m.fpu.store_queue = 0; }},
        {"AUR001", [](MachineConfig &m) { m.fpu.rob_entries = 0; }},
        {"AUR007", [](MachineConfig &m) { m.fpu.div.latency = 300; }},
        {"AUR007", [](MachineConfig &m) { m.fpu.add.latency = 0; }},
        {"AUR006",
         [](MachineConfig &m) { m.fpu.provably_safe_frac = 1.5; }},
        {"AUR006",
         [](MachineConfig &m) { m.fpu.provably_safe_frac = -0.1; }},
    };
    for (const Case &c : cases) {
        MachineConfig m = baselineModel();
        c.mutate(m);
        const auto findings = lintConfig(m);
        SCOPED_TRACE(c.id);
        EXPECT_TRUE(has(findings, c.id)) << idList(findings);
        EXPECT_TRUE(analyze::hasErrors(findings));
    }
}

TEST(LintConfig, DiagnosticsCarryFieldValueAndHint)
{
    MachineConfig m = baselineModel();
    m.rob_entries = 0;
    const auto findings = lintConfig(m);
    ASSERT_TRUE(has(findings, "AUR001"));
    for (const Diagnostic &d : findings)
        if (d.id == "AUR001") {
            EXPECT_EQ(d.field, "rob");
            EXPECT_EQ(d.value, "0");
            EXPECT_FALSE(d.message.empty());
            EXPECT_FALSE(d.hint.empty());
            EXPECT_EQ(d.severity, Severity::Error);
            EXPECT_NE(d.toString().find("AUR001"), std::string::npos);
        }
}

TEST(LintConfig, SizingWarningsFireAndDoNotReject)
{
    struct Case
    {
        const char *id;
        void (*mutate)(MachineConfig &);
    };
    const Case cases[] = {
        // fp_rob below the deepest pipelined FP latency (mul: 5).
        {"AUR012", [](MachineConfig &m) { m.fpu.rob_entries = 3; }},
        {"AUR013", [](MachineConfig &m) { m.fpu.inst_queue = 2; }},
        {"AUR014", [](MachineConfig &m) { m.fpu.load_queue = 1; }},
        {"AUR015", [](MachineConfig &m) { m.write_cache.lines = 1; }},
        {"AUR016", [](MachineConfig &m) { m.biu.queue_depth = 1; }},
        {"AUR017", [](MachineConfig &m) { m.prefetch.depth = 8; }},
        {"AUR018",
         [](MachineConfig &m) {
             m.rob_entries = 1;
             m.retire_width = 2;
             m.lsu.dcache_latency = 3;
         }},
        {"AUR022", [](MachineConfig &m) { m.lsu.victim_lines = 4; }},
        {"AUR023",
         [](MachineConfig &m) {
             m.biu.model_collisions = true;
             m.biu.collision_penalty = 0;
         }},
        {"AUR024",
         [](MachineConfig &m) {
             m.fpu.precise_exceptions = true;
             m.fpu.provably_safe_frac = 0.0;
         }},
    };
    for (const Case &c : cases) {
        MachineConfig m = baselineModel();
        c.mutate(m);
        const auto findings = lintConfig(m);
        SCOPED_TRACE(c.id);
        EXPECT_TRUE(has(findings, c.id)) << idList(findings);
        for (const Diagnostic &d : findings)
            if (d.id == c.id) {
                EXPECT_EQ(d.severity, Severity::Warning);
            }
    }
}

TEST(LintConfig, IterativeDivideDoesNotTriggerDepthWarnings)
{
    // AUR012/AUR013 bound against the deepest *pipelined* unit: the
    // 19-cycle iterative divider holds one op, not nineteen, so the
    // shipped fp_rob=6 must stay clean (it already does via
    // ShippedModelsAreClean; this pins the reason).
    MachineConfig m = baselineModel();
    m.fpu.div.latency = 30; // still iterative
    const auto findings = lintConfig(m);
    EXPECT_FALSE(has(findings, "AUR012")) << idList(findings);
    EXPECT_FALSE(has(findings, "AUR013")) << idList(findings);
}

TEST(LintConfig, BudgetOvershootIsAnErrorWithBreakdown)
{
    const MachineConfig m = largeModel();
    LintOptions options;
    options.rbe_budget = 50000.0;
    const auto findings = lintConfig(m, options);
    ASSERT_TRUE(has(findings, "AUR030")) << idList(findings);
    for (const Diagnostic &d : findings)
        if (d.id == "AUR030") {
            EXPECT_EQ(d.severity, Severity::Error);
            // The per-structure breakdown makes the overshoot
            // actionable.
            EXPECT_NE(d.message.find("icache"), std::string::npos)
                << d.message;
            EXPECT_NE(d.message.find("fpu"), std::string::npos)
                << d.message;
        }
}

TEST(LintConfig, NearBudgetIsAWarningAndSlackIsClean)
{
    const MachineConfig m = baselineModel();
    const double total =
        cost::ipuRbe(m.ipuResources()) + cost::fpuRbe(m.fpu);

    LintOptions tight;
    tight.rbe_budget = total * 1.02; // within the 5% band
    const auto near = lintConfig(m, tight);
    EXPECT_TRUE(has(near, "AUR031")) << idList(near);
    EXPECT_FALSE(analyze::hasErrors(near));

    LintOptions roomy;
    roomy.rbe_budget = total * 2.0;
    EXPECT_TRUE(lintConfig(m, roomy).empty());

    // budget 0 disables the check entirely.
    EXPECT_TRUE(lintConfig(m, LintOptions{}).empty());
}

TEST(LintConfig, CollectsEveryFindingInsteadOfStoppingAtTheFirst)
{
    MachineConfig m = baselineModel();
    m.rob_entries = 0;
    m.lsu.mshr_entries = 0;
    m.fpu.inst_queue = 0;
    const auto findings = lintConfig(m);
    EXPECT_TRUE(has(findings, "AUR001")) << idList(findings);
    EXPECT_TRUE(has(findings, "AUR002")) << idList(findings);
    EXPECT_TRUE(has(findings, "AUR005")) << idList(findings);
    EXPECT_GE(analyze::errorCount(findings), 3u);
}

TEST(LintConfig, NeverThrowsOnDegenerateInput)
{
    // A linter that dies on its input is useless: an all-zero
    // machine must come back as a (large) list of findings.
    MachineConfig m;
    m.issue_width = 0;
    m.rob_entries = 0;
    m.retire_width = 0;
    m.alu_latency = 0;
    m.ifu.fetch_width = 0;
    m.ifu.buffer_entries = 0;
    m.lsu.mshr_entries = 0;
    m.write_cache.lines = 0;
    m.prefetch.num_buffers = 0;
    m.prefetch.depth = 0;
    m.biu.queue_depth = 0;
    m.fpu.inst_queue = 0;
    m.fpu.load_queue = 0;
    m.fpu.store_queue = 0;
    m.fpu.rob_entries = 0;
    m.fpu.result_buses = 0;
    m.fpu.add.latency = 0;
    m.fpu.provably_safe_frac = -1.0;
    std::vector<Diagnostic> findings;
    EXPECT_NO_THROW(findings = lintConfig(m));
    EXPECT_TRUE(analyze::hasErrors(findings));
    EXPECT_GE(findings.size(), 10u) << idList(findings);
}

TEST(LintCatalog, EveryEntryIsCompleteAndOrdered)
{
    const auto &entries = analyze::catalog();
    ASSERT_FALSE(entries.empty());
    std::string prev;
    for (const analyze::DiagnosticInfo &info : entries) {
        SCOPED_TRACE(info.id);
        EXPECT_GT(std::string(info.id), prev); // strictly ascending
        EXPECT_NE(info.title[0], '\0');
        EXPECT_NE(info.rationale[0], '\0');
        EXPECT_NE(info.hint[0], '\0');
        EXPECT_EQ(analyze::findDiagnostic(info.id), &info);
        prev = info.id;
    }
    EXPECT_EQ(analyze::findDiagnostic("AUR999"), nullptr);
}

TEST(LintCatalog, JsonOutputIsWellFormedEnoughForCi)
{
    MachineConfig m = baselineModel();
    m.rob_entries = 0;
    const std::string json = analyze::toJson(lintConfig(m));
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"id\": \"AUR001\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos)
        << json;
}

TEST(LintCatalog, JsonEndsWithExactlyOneNewline)
{
    // CI pipes concatenate these reports; a missing or doubled
    // trailing newline breaks line-oriented consumers byte-for-byte.
    MachineConfig m = baselineModel();
    m.rob_entries = 0;
    m.lsu.mshr_entries = 0;
    for (const auto &findings :
         {lintConfig(m), std::vector<Diagnostic>{}}) {
        const std::string json = analyze::toJson(findings);
        ASSERT_GE(json.size(), 2u);
        EXPECT_EQ(json.back(), '\n');
        EXPECT_NE(json[json.size() - 2], '\n')
            << "doubled trailing newline";
    }
}

TEST(LintCatalog, SortDiagnosticsOrdersByIdThenJobThenField)
{
    auto mk = [](const char *id, int job, const char *field) {
        Diagnostic d;
        d.id = id;
        d.job = job;
        d.field = field;
        return d;
    };
    std::vector<Diagnostic> diags = {
        mk("AUR043", 2, "grid"),  mk("AUR040", 1, "mshr"),
        mk("AUR040", -1, "rob"),  mk("AUR043", 0, "grid"),
        mk("AUR040", 1, "fetch"), mk("AUR001", 5, "rob"),
    };
    analyze::sortDiagnostics(diags);
    ASSERT_EQ(diags.size(), 6u);
    EXPECT_EQ(diags[0].id, "AUR001");
    EXPECT_EQ(diags[1].id, "AUR040");
    EXPECT_EQ(diags[1].job, -1); // whole-artifact before job-indexed
    EXPECT_EQ(diags[2].field, "fetch"); // same (id, job): field order
    EXPECT_EQ(diags[3].field, "mshr");
    EXPECT_EQ(diags[4].job, 0);
    EXPECT_EQ(diags[5].job, 2);

    // Sorting is the byte-stability guarantee: repeat is identical.
    std::vector<Diagnostic> again = diags;
    analyze::sortDiagnostics(again);
    EXPECT_EQ(analyze::toJson(again), analyze::toJson(diags));
}

TEST(LintCatalog, JobIndexRendersInTextAndJson)
{
    Diagnostic d =
        analyze::makeDiagnostic("AUR043", "grid", "7", "dominated");
    d.job = 7;
    EXPECT_NE(d.toString().find("[job 7]"), std::string::npos)
        << d.toString();
    const std::string json = analyze::toJson({d});
    EXPECT_NE(json.find("\"job\": 7"), std::string::npos) << json;

    // Unset job stays out of both renderings entirely.
    Diagnostic plain =
        analyze::makeDiagnostic("AUR001", "rob", "0", "empty");
    EXPECT_EQ(plain.toString().find("[job"), std::string::npos);
    EXPECT_EQ(analyze::toJson({plain}).find("\"job\""),
              std::string::npos);
}

TEST(LintCatalog, NearestIdsRankNumericNeighboursFirst)
{
    // AUR044 doesn't exist; its numeric neighbours are the model
    // advisories right below it.
    const auto near = analyze::nearestDiagnosticIds("AUR044", 3);
    ASSERT_EQ(near.size(), 3u);
    EXPECT_EQ(near[0], "AUR043");
    EXPECT_EQ(near[1], "AUR042");
    EXPECT_EQ(near[2], "AUR041");

    // Non-numeric garbage falls back to edit distance but still
    // returns a deterministic, catalog-sized-capped list.
    const auto typo = analyze::nearestDiagnosticIds("AUX001", 3);
    ASSERT_EQ(typo.size(), 3u);
    EXPECT_EQ(typo[0], "AUR001");
    EXPECT_EQ(typo, analyze::nearestDiagnosticIds("AUX001", 3));

    // Never suggests more than the catalog holds.
    EXPECT_LE(analyze::nearestDiagnosticIds("zzz", 500).size(),
              analyze::catalog().size());
}

} // namespace
