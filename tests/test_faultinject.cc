/**
 * @file
 * Tests for the deterministic fault injectors: every manufactured
 * fault must actually trip its detector (validate(), the watchdog,
 * the trace reader), and the injectors themselves must be pure
 * functions of their seeds.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "analyze/lint_config.hh"
#include "analyze/verify_trace.hh"
#include "core/simulator.hh"
#include "core/watchdog.hh"
#include "faultinject/faultinject.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_io.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
namespace fi = aurora::faultinject;
using util::SimError;
using util::SimErrorCode;

TEST(FaultInject, PoisonedIsDeterministicAndScales)
{
    std::size_t hits = 0;
    for (std::size_t i = 0; i < 3000; ++i) {
        const bool p = fi::poisoned(42, i, 0.33);
        EXPECT_EQ(p, fi::poisoned(42, i, 0.33)) << i;
        hits += p;
    }
    // ~990 expected; a loose window suffices to catch a broken mix.
    EXPECT_GT(hits, 700u);
    EXPECT_LT(hits, 1300u);

    // fraction 0 and 1 are exact.
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_FALSE(fi::poisoned(7, i, 0.0));
        EXPECT_TRUE(fi::poisoned(7, i, 1.0));
    }

    // Different seeds pick different victims.
    bool any_difference = false;
    for (std::size_t i = 0; i < 256; ++i)
        any_difference |=
            fi::poisoned(1, i, 0.5) != fi::poisoned(2, i, 0.5);
    EXPECT_TRUE(any_difference);
}

TEST(FaultInject, EveryConfigFaultFailsValidation)
{
    for (std::size_t k = 0; k < fi::NUM_CONFIG_FAULTS; ++k) {
        const auto fault = static_cast<fi::ConfigFault>(k);
        const auto bad = fi::poisonConfig(baselineModel(), fault);
        SCOPED_TRACE(fi::configFaultName(fault));
        EXPECT_NE(bad.name.find(fi::configFaultName(fault)),
                  std::string::npos)
            << "the poisoned name must identify the fault";
        try {
            bad.validate();
            FAIL() << "poisoned config passed validation";
        } catch (const SimError &e) {
            EXPECT_EQ(e.code(), SimErrorCode::BadConfig);
        }
    }
}

TEST(FaultInject, AnyConfigFaultCoversTheEnum)
{
    bool seen[fi::NUM_CONFIG_FAULTS] = {};
    for (std::uint64_t s = 0; s < 256; ++s)
        seen[static_cast<std::size_t>(fi::anyConfigFault(s))] = true;
    for (std::size_t k = 0; k < fi::NUM_CONFIG_FAULTS; ++k)
        EXPECT_TRUE(seen[k]) << fi::configFaultName(
            static_cast<fi::ConfigFault>(k));
    // And the choice is a pure function of the seed.
    EXPECT_EQ(fi::anyConfigFault(99), fi::anyConfigFault(99));
}

TEST(FaultInject, WedgeValidatesButTripsTheWatchdog)
{
    const auto wedged = fi::wedgeConfig(baselineModel());
    wedged.validate(); // structurally legal...
    try {
        // ...but an FP workload never retires past the queue fill.
        simulate(wedged, trace::nasa7(), 50'000,
                 WatchdogConfig{2000, 0});
        FAIL() << "wedge must trip the watchdog";
    } catch (const WatchdogError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::NoForwardProgress);
    }
}

TEST(FaultInject, EveryTraceFaultIsCaught)
{
    namespace fs = std::filesystem;
    trace::SyntheticWorkload w(trace::espresso());
    const auto insts = trace::collect(w, 64);
    const std::string pristine =
        std::string(::testing::TempDir()) + "fi_pristine.aur3";
    trace::writeTrace(pristine, insts);

    for (std::size_t k = 0; k < fi::NUM_TRACE_FAULTS; ++k) {
        const auto fault = static_cast<fi::TraceFault>(k);
        SCOPED_TRACE(fi::traceFaultName(fault));
        const std::string victim = std::string(::testing::TempDir()) +
                                   "fi_victim.aur3";
        fs::copy_file(pristine, victim,
                      fs::copy_options::overwrite_existing);
        fi::corruptTraceFile(victim, fault, /*seed=*/k);
        try {
            trace::readTrace(victim);
            FAIL() << "corruption went undetected";
        } catch (const SimError &e) {
            EXPECT_EQ(e.code(), SimErrorCode::BadTrace);
        }
        std::remove(victim.c_str());
    }
    std::remove(pristine.c_str());
}

TEST(FaultInject, EveryConfigFaultHasAStableStaticDiagnostic)
{
    // Cross-check against the static analyzer: each injected defect
    // must surface as its catalog ID, so the sweep preflight and the
    // fault-storm bench can assert on *which* fault was planted.
    const struct
    {
        fi::ConfigFault fault;
        const char *id;
    } expected[] = {
        {fi::ConfigFault::ZeroRob, "AUR001"},
        {fi::ConfigFault::ZeroMshr, "AUR002"},
        {fi::ConfigFault::MismatchedLineSize, "AUR003"},
        {fi::ConfigFault::FetchWidthMismatch, "AUR004"},
        {fi::ConfigFault::ZeroFpInstQueue, "AUR005"},
        {fi::ConfigFault::BadSafeFrac, "AUR006"},
        {fi::ConfigFault::OverlongFpLatency, "AUR007"},
    };
    static_assert(std::size(expected) == fi::NUM_CONFIG_FAULTS);
    for (const auto &c : expected) {
        SCOPED_TRACE(fi::configFaultName(c.fault));
        const auto bad = fi::poisonConfig(baselineModel(), c.fault);
        const auto findings = analyze::lintConfig(bad);
        bool found = false;
        for (const auto &d : findings)
            found |= d.id == c.id;
        EXPECT_TRUE(found) << "expected " << c.id;
        EXPECT_TRUE(analyze::hasErrors(findings));
    }
}

TEST(FaultInject, WedgeIsCaughtStaticallyAsAur010)
{
    // The wedge passes validate() and at runtime burns the watchdog
    // window; the deadlock detector rejects it in microseconds.
    const auto wedged = fi::wedgeConfig(baselineModel());
    const auto findings = analyze::lintConfig(wedged);
    bool found = false;
    for (const auto &d : findings)
        found |= d.id == "AUR010";
    EXPECT_TRUE(found);
}

TEST(FaultInject, EveryTraceFaultHasAStableVerifierDiagnostic)
{
    namespace fs = std::filesystem;
    const struct
    {
        fi::TraceFault fault;
        const char *id;
    } expected[] = {
        {fi::TraceFault::Magic, "AUR101"},
        {fi::TraceFault::Version, "AUR102"},
        {fi::TraceFault::OpClass, "AUR103"},
        {fi::TraceFault::Truncate, "AUR104"},
    };
    static_assert(std::size(expected) == fi::NUM_TRACE_FAULTS);

    trace::SyntheticWorkload w(trace::espresso());
    const auto insts = trace::collect(w, 64);
    const std::string pristine =
        std::string(::testing::TempDir()) + "fi_lint_pristine.aur3";
    trace::writeTrace(pristine, insts);

    for (const auto &c : expected) {
        SCOPED_TRACE(fi::traceFaultName(c.fault));
        const std::string victim = std::string(::testing::TempDir()) +
                                   "fi_lint_victim.aur3";
        fs::copy_file(pristine, victim,
                      fs::copy_options::overwrite_existing);
        fi::corruptTraceFile(victim, c.fault, /*seed=*/3);
        const auto report = analyze::verifyTrace(victim);
        EXPECT_FALSE(report.ok());
        bool found = false;
        for (const auto &d : report.diagnostics)
            found |= d.id == c.id;
        EXPECT_TRUE(found) << "expected " << c.id;
        std::remove(victim.c_str());
    }
    std::remove(pristine.c_str());
}

TEST(FaultInject, OpClassCorruptionPicksVictimBySeed)
{
    namespace fs = std::filesystem;
    trace::SyntheticWorkload w(trace::espresso());
    const auto insts = trace::collect(w, 64);
    const std::string a =
        std::string(::testing::TempDir()) + "fi_seed_a.aur3";
    const std::string b =
        std::string(::testing::TempDir()) + "fi_seed_b.aur3";
    trace::writeTrace(a, insts);
    fs::copy_file(a, b, fs::copy_options::overwrite_existing);

    fi::corruptTraceFile(a, fi::TraceFault::OpClass, 1);
    fi::corruptTraceFile(b, fi::TraceFault::OpClass, 1);
    // Same seed, same victim byte: the corrupted files are identical.
    std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
    const std::string bytes_a((std::istreambuf_iterator<char>(fa)),
                              std::istreambuf_iterator<char>());
    const std::string bytes_b((std::istreambuf_iterator<char>(fb)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes_a, bytes_b);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(ShardFaults, NamesAndDiagnosticIdsAreStable)
{
    // These strings are wire/env/catalog contracts: drills script
    // them ("--fault 0:kill-shard:1") and `aurora_lint explain`
    // documents them. Renaming is a protocol change, not a refactor.
    using SF = fi::ShardFault;
    EXPECT_STREQ(fi::shardFaultName(SF::KillShard), "kill-shard");
    EXPECT_STREQ(fi::shardFaultName(SF::HangShard), "hang-shard");
    EXPECT_STREQ(fi::shardFaultName(SF::DropHeartbeats),
                 "drop-heartbeats");
    EXPECT_STREQ(fi::shardFaultName(SF::ZombieAppend),
                 "zombie-append");
    EXPECT_STREQ(fi::shardFaultDiagnosticId(SF::HangShard), "AUR301");
    EXPECT_STREQ(fi::shardFaultDiagnosticId(SF::KillShard), "AUR302");
    EXPECT_STREQ(fi::shardFaultDiagnosticId(SF::DropHeartbeats),
                 "AUR303");
    EXPECT_STREQ(fi::shardFaultDiagnosticId(SF::ZombieAppend),
                 "AUR304");
}

TEST(ShardFaults, PlanFormatParsesBackExactly)
{
    for (std::size_t i = 0; i < fi::NUM_SHARD_FAULTS; ++i) {
        const auto fault = static_cast<fi::ShardFault>(i);
        const fi::ShardFaultPlan plan{fault,
                                      static_cast<std::uint32_t>(3 * i)};
        const auto back =
            fi::parseShardFaultPlan(fi::formatShardFaultPlan(plan));
        ASSERT_TRUE(back.has_value())
            << fi::formatShardFaultPlan(plan);
        EXPECT_EQ(back->fault, plan.fault);
        EXPECT_EQ(back->after_jobs, plan.after_jobs);
    }
}

TEST(ShardFaults, MalformedPlansAreRejectedNotMisread)
{
    // A drill must never silently run the wrong sabotage.
    for (const char *bad :
         {"", "kill-shard", "kill-shard:", "kill-shard:x",
          "kill-shard:1:2", "unknown-fault:1", "KILL-SHARD:1",
          ":1", "kill-shard:-1"})
        EXPECT_FALSE(fi::parseShardFaultPlan(bad).has_value()) << bad;
}

TEST(ShardFaults, AnyShardFaultIsSeedDeterministicAndCoversAll)
{
    bool seen[fi::NUM_SHARD_FAULTS] = {};
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const fi::ShardFault a = fi::anyShardFault(seed);
        EXPECT_EQ(a, fi::anyShardFault(seed));
        seen[static_cast<std::size_t>(a)] = true;
    }
    for (std::size_t i = 0; i < fi::NUM_SHARD_FAULTS; ++i)
        EXPECT_TRUE(seen[i])
            << fi::shardFaultName(static_cast<fi::ShardFault>(i));
}

} // namespace
