/**
 * @file
 * Unit tests for the SPEC92 benchmark profile catalogue.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/spec_profiles.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora::trace;
namespace util = aurora::util;

TEST(Profiles, IntegerSuiteMatchesPaperOrder)
{
    const auto suite = integerSuite();
    ASSERT_EQ(suite.size(), 6u);
    const char *expected[] = {"espresso", "li",       "eqntott",
                              "compress", "sc",       "gcc"};
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(suite[i].name, expected[i]);
        EXPECT_FALSE(suite[i].floating_point);
    }
}

TEST(Profiles, FloatSuiteMatchesTable6Order)
{
    const auto suite = floatSuite();
    ASSERT_EQ(suite.size(), 9u);
    const char *expected[] = {"alvinn", "doduc",   "ear",
                              "hydro2d", "mdljdp2", "nasa7",
                              "ora",     "spice2g6", "su2cor"};
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(suite[i].name, expected[i]);
        EXPECT_TRUE(suite[i].floating_point);
    }
}

TEST(Profiles, SeedsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (const auto &p : integerSuite())
        seeds.insert(p.seed);
    for (const auto &p : floatSuite())
        seeds.insert(p.seed);
    EXPECT_EQ(seeds.size(), 15u);
}

TEST(Profiles, ByNameFindsEverything)
{
    for (const auto &p : integerSuite())
        EXPECT_EQ(profileByName(p.name).name, p.name);
    for (const auto &p : floatSuite())
        EXPECT_EQ(profileByName(p.name).name, p.name);
}

TEST(Profiles, FractionsAreProbabilities)
{
    auto check = [](const WorkloadProfile &p) {
        const double mix = p.frac_load + p.frac_store +
                           p.frac_fp_arith + p.frac_fp_load +
                           p.frac_fp_store;
        EXPECT_GT(mix, 0.0) << p.name;
        EXPECT_LT(mix, 1.0) << p.name;
        EXPECT_LE(p.seq_fraction + p.chase_fraction, 1.0) << p.name;
        EXPECT_GE(p.hot_fraction, 0.0);
        EXPECT_LE(p.hot_fraction, 1.0);
        EXPECT_GE(p.chase_hot_frac, 0.0);
        EXPECT_LE(p.chase_hot_frac, 1.0);
    };
    for (const auto &p : integerSuite())
        check(p);
    for (const auto &p : floatSuite())
        check(p);
}

TEST(Profiles, FootprintsAreReasonable)
{
    auto check = [](const WorkloadProfile &p) {
        EXPECT_GE(p.hot_code_bytes, 512u) << p.name;
        EXPECT_LE(p.hot_code_bytes, 16u * 1024) << p.name;
        EXPECT_GE(p.total_data_bytes, 64u * 1024) << p.name;
        EXPECT_GE(p.hot_data_bytes, 1024u) << p.name;
        EXPECT_GE(p.num_hot_loops, 1);
    };
    for (const auto &p : integerSuite())
        check(p);
    for (const auto &p : floatSuite())
        check(p);
}

TEST(Profiles, GccHasLargestCodeFootprint)
{
    const auto suite = integerSuite();
    for (const auto &p : suite) {
        if (p.name == "gcc")
            continue;
        EXPECT_GE(gcc().hot_code_bytes + gcc().cold_code_bytes,
                  p.hot_code_bytes + p.cold_code_bytes)
            << p.name;
    }
}

TEST(Profiles, EqntottIsChaseHeavyAndSequentialCode)
{
    // The benchmark the paper singles out: highest I-prefetch hit
    // rate, lowest D-prefetch hit rate.
    EXPECT_GT(eqntott().chase_fraction, 0.5);
    EXPECT_LT(eqntott().seq_fraction, 0.15);
    EXPECT_GT(eqntott().cold_run_len, espresso().cold_run_len);
}

TEST(Profiles, ScStreamsTheMostIntegerData)
{
    for (const auto &p : integerSuite())
        if (p.name != "sc") {
            EXPECT_GE(sc().seq_fraction, p.seq_fraction) << p.name;
        }
}

TEST(Profiles, OraIsDivideHeavy)
{
    for (const auto &p : floatSuite())
        if (p.name != "ora") {
            EXPECT_GE(ora().fp_div_w, p.fp_div_w) << p.name;
        }
}

TEST(Profiles, AlvinnHasLongestChains)
{
    for (const auto &p : floatSuite())
        if (p.name != "alvinn") {
            EXPECT_GE(alvinn().fp_chain_frac, p.fp_chain_frac)
                << p.name;
        }
}

TEST(Profiles, Spice2g6IsMostlyInteger)
{
    for (const auto &p : floatSuite())
        if (p.name != "spice2g6") {
            EXPECT_LE(spice2g6().frac_fp_arith, p.frac_fp_arith)
                << p.name;
        }
}

TEST(Profiles, UnknownNameThrowsListingKnownProfiles)
{
    try {
        profileByName("quake3");
        FAIL() << "unknown profile should have thrown";
    } catch (const util::SimError &e) {
        EXPECT_EQ(e.code(), util::SimErrorCode::BadConfig);
        const std::string what = e.what();
        EXPECT_NE(what.find("quake3"), std::string::npos) << what;
        EXPECT_NE(what.find("espresso"), std::string::npos)
            << "message should list the known profiles: " << what;
    }
}

} // namespace
