/**
 * @file
 * Unit tests for the structured error model (SimError) and the
 * parallelFor failure-accounting contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/parallel.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;
using util::SimError;
using util::SimErrorCode;

TEST(SimError, CodeAndMessageSurviveTheThrow)
{
    try {
        util::raiseError(SimErrorCode::BadTrace, "record ", 42,
                         " is corrupt");
        FAIL() << "raiseError must throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadTrace);
        EXPECT_EQ(e.message(), "record 42 is corrupt");
        EXPECT_STREQ(e.what(), "[BadTrace] record 42 is corrupt");
    }
}

TEST(SimError, EveryCodeHasAName)
{
    EXPECT_STREQ(util::errorCodeName(SimErrorCode::BadConfig),
                 "BadConfig");
    EXPECT_STREQ(util::errorCodeName(SimErrorCode::BadTrace),
                 "BadTrace");
    EXPECT_STREQ(util::errorCodeName(SimErrorCode::NoForwardProgress),
                 "NoForwardProgress");
    EXPECT_STREQ(
        util::errorCodeName(SimErrorCode::CycleBudgetExceeded),
        "CycleBudgetExceeded");
    EXPECT_STREQ(util::errorCodeName(SimErrorCode::Internal),
                 "Internal");
}

TEST(SimError, IsARuntimeError)
{
    // Callers that only know std::exception / std::runtime_error must
    // still catch SimErrors (the sweep engine's generic handler, and
    // pre-existing EXPECT_THROW(..., std::runtime_error) tests).
    EXPECT_THROW(
        util::raiseError(SimErrorCode::Internal, "wrapped"),
        std::runtime_error);
}

// parallelFor is fail-fast and first-exception-wins. The documented
// contract: concurrent failures are counted, the first is rethrown,
// and no combination of throwing bodies may deadlock the pool.

TEST(ParallelFor, SingleThrowPropagates)
{
    EXPECT_THROW(parallelFor(8, 4,
                             [](std::size_t i) {
                                 if (i == 3)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(ParallelFor, TwoThrowingBodiesNeitherDeadlockNorCrash)
{
    for (unsigned workers : {1u, 2u, 8u}) {
        std::atomic<unsigned> ran{0};
        try {
            parallelFor(16, workers, [&ran](std::size_t i) {
                ran.fetch_add(1);
                if (i == 2 || i == 11)
                    throw SimError(SimErrorCode::Internal,
                                   "fault " + std::to_string(i));
            });
            FAIL() << "workers=" << workers
                   << ": an exception must propagate";
        } catch (const SimError &e) {
            // First-exception-wins: one of the two faulting indices.
            const std::string what = e.what();
            EXPECT_TRUE(what.find("fault 2") != std::string::npos ||
                        what.find("fault 11") != std::string::npos)
                << what;
        }
        EXPECT_GE(ran.load(), 1u);
    }
}

TEST(ParallelFor, AllBodiesThrowingStillJoins)
{
    EXPECT_THROW(parallelFor(32, 8,
                             [](std::size_t) {
                                 throw std::runtime_error("everyone");
                             }),
                 std::runtime_error);
}

TEST(ParallelFor, SerialPathPropagatesImmediately)
{
    std::atomic<unsigned> ran{0};
    EXPECT_THROW(parallelFor(10, 1,
                             [&ran](std::size_t i) {
                                 ran.fetch_add(1);
                                 if (i == 4)
                                     throw std::runtime_error("stop");
                             }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 5u)
        << "serial mode must stop at the throwing index";
}

} // namespace
