/**
 * @file
 * Tests for the pipeline observer/tracer facility.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/pipeline_trace.hh"
#include "core/processor.hh"
#include "trace/trace_source.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using trace::Inst;
using trace::OpClass;

Inst
alu(Addr pc, RegIndex a, RegIndex b, RegIndex d)
{
    Inst i;
    i.pc = pc;
    i.next_pc = pc + 4;
    i.op = OpClass::IntAlu;
    i.src_a = a;
    i.src_b = b;
    i.dst = d;
    return i;
}

/** Observer that records every event. */
struct Recorder : PipelineObserver
{
    struct Event
    {
        char kind; // 'i', 's', 'r'
        Cycle cycle;
        Addr pc = 0;
        unsigned slot = 0;
        StallCause cause = StallCause::ICache;
        unsigned count = 0;
    };
    std::vector<Event> events;

    void
    onIssue(Cycle now, const Inst &inst, unsigned slot) override
    {
        events.push_back({'i', now, inst.pc, slot,
                          StallCause::ICache, 0});
    }
    void
    onStall(Cycle now, StallCause cause) override
    {
        events.push_back({'s', now, 0, 0, cause, 0});
    }
    void
    onRetire(Cycle now, unsigned count) override
    {
        events.push_back({'r', now, 0, 0, StallCause::ICache,
                          count});
    }
};

TEST(PipelineTrace, ObserverSeesEveryInstruction)
{
    std::vector<Inst> insts;
    for (int i = 0; i < 20; ++i)
        insts.push_back(alu(0x1000 + 4u * static_cast<Addr>(i), 1, 2,
                            static_cast<RegIndex>(8 + i % 8)));
    trace::VectorTraceSource src(insts);
    Processor cpu(baselineModel(), src);
    Recorder rec;
    cpu.setObserver(&rec);
    const auto r = cpu.run();

    unsigned issues = 0, retires = 0;
    for (const auto &e : rec.events) {
        if (e.kind == 'i')
            ++issues;
        if (e.kind == 'r')
            retires += e.count;
    }
    EXPECT_EQ(issues, 20u);
    EXPECT_EQ(retires, 20u);
    EXPECT_EQ(r.instructions, 20u);
}

TEST(PipelineTrace, EventsAreInProgramOrderAndMonotonic)
{
    std::vector<Inst> insts;
    for (int i = 0; i < 30; ++i)
        insts.push_back(alu(0x2000 + 4u * static_cast<Addr>(i), 1, 2,
                            static_cast<RegIndex>(8 + i % 8)));
    trace::VectorTraceSource src(insts);
    Processor cpu(baselineModel(), src);
    Recorder rec;
    cpu.setObserver(&rec);
    cpu.run();

    Addr last_pc = 0;
    Cycle last_cycle = 0;
    for (const auto &e : rec.events) {
        EXPECT_GE(e.cycle, last_cycle);
        last_cycle = e.cycle;
        if (e.kind == 'i') {
            EXPECT_GT(e.pc, last_pc) << "issue must follow pc order";
            last_pc = e.pc;
        }
    }
}

TEST(PipelineTrace, StallEventsCarryTheCharge)
{
    // A load immediately consumed: Load stalls must be observed.
    std::vector<Inst> insts;
    Addr pc = 0x1000;
    for (int i = 0; i < 10; ++i) {
        Inst ld;
        ld.pc = pc;
        ld.next_pc = pc + 4;
        ld.op = OpClass::Load;
        ld.src_a = 1;
        ld.dst = 8;
        ld.eff_addr = 0x20000000 + 64u * static_cast<Addr>(i % 2);
        ld.size = 4;
        insts.push_back(ld);
        pc += 4;
        insts.push_back(alu(pc, 8, 2, 9));
        pc += 4;
    }
    trace::VectorTraceSource src(insts);
    Processor cpu(baselineModel(), src);
    Recorder rec;
    cpu.setObserver(&rec);
    cpu.run();

    bool saw_load_stall = false;
    for (const auto &e : rec.events)
        if (e.kind == 's' && e.cause == StallCause::Load)
            saw_load_stall = true;
    EXPECT_TRUE(saw_load_stall);
}

TEST(PipelineTrace, TracerFormatsEvents)
{
    std::vector<Inst> insts;
    for (int i = 0; i < 6; ++i)
        insts.push_back(alu(0x1000 + 4u * static_cast<Addr>(i), 1, 2,
                            static_cast<RegIndex>(8 + i)));
    trace::VectorTraceSource src(insts);
    Processor cpu(baselineModel(), src);
    std::ostringstream os;
    PipelineTracer tracer(os, 1000);
    cpu.setObserver(&tracer);
    cpu.run();
    const std::string text = os.str();
    EXPECT_NE(text.find("issue[0] pc=0x1000"), std::string::npos);
    EXPECT_NE(text.find("addu"), std::string::npos);
    EXPECT_NE(text.find("retire"), std::string::npos);
    EXPECT_NE(text.find("stall"), std::string::npos)
        << "the compulsory I-miss must appear";
}

TEST(PipelineTrace, TracerHonoursCycleLimit)
{
    std::vector<Inst> insts;
    for (int i = 0; i < 100; ++i)
        insts.push_back(alu(0x1000 + 4u * static_cast<Addr>(i), 1, 2,
                            static_cast<RegIndex>(8 + i % 8)));
    trace::VectorTraceSource src(insts);
    Processor cpu(baselineModel(), src);
    std::ostringstream os;
    PipelineTracer tracer(os, 0); // nothing may be printed
    cpu.setObserver(&tracer);
    const auto r = cpu.run();
    EXPECT_TRUE(os.str().empty());
    EXPECT_EQ(r.instructions, 100u) << "counting is unaffected";
}

} // namespace
