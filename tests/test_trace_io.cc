/**
 * @file
 * Unit tests for the binary trace format and streaming sources.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_io.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;
using namespace aurora::trace;
using util::SimError;
using util::SimErrorCode;

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

std::vector<Inst>
sampleInsts(std::size_t n)
{
    SyntheticWorkload w(espresso());
    return collect(w, n);
}

TEST(TraceIo, RoundTripPreservesEveryField)
{
    const auto insts = sampleInsts(500);
    const std::string path = tempPath("roundtrip.aur3");
    writeTrace(path, insts);
    const auto back = readTrace(path);
    ASSERT_EQ(back.size(), insts.size());
    for (std::size_t i = 0; i < insts.size(); ++i) {
        EXPECT_EQ(back[i].pc, insts[i].pc);
        EXPECT_EQ(back[i].next_pc, insts[i].next_pc);
        EXPECT_EQ(back[i].eff_addr, insts[i].eff_addr);
        EXPECT_EQ(back[i].op, insts[i].op);
        EXPECT_EQ(back[i].src_a, insts[i].src_a);
        EXPECT_EQ(back[i].src_b, insts[i].src_b);
        EXPECT_EQ(back[i].dst, insts[i].dst);
        EXPECT_EQ(back[i].fsrc_a, insts[i].fsrc_a);
        EXPECT_EQ(back[i].fsrc_b, insts[i].fsrc_b);
        EXPECT_EQ(back[i].fdst, insts[i].fdst);
        EXPECT_EQ(back[i].size, insts[i].size);
        EXPECT_EQ(back[i].taken, insts[i].taken);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("empty.aur3");
    writeTrace(path, {});
    EXPECT_TRUE(readTrace(path).empty());
    std::remove(path.c_str());
}

TEST(TraceIo, FileSourceReportsCount)
{
    const auto insts = sampleInsts(123);
    const std::string path = tempPath("count.aur3");
    writeTrace(path, insts);
    FileTraceSource src(path);
    EXPECT_EQ(src.recordCount(), 123u);
    Inst inst;
    Count n = 0;
    while (src.next(inst))
        ++n;
    EXPECT_EQ(n, 123u);
    std::remove(path.c_str());
}

TEST(TraceIo, VectorSourceRewinds)
{
    VectorTraceSource src(sampleInsts(10));
    Inst inst;
    int n = 0;
    while (src.next(inst))
        ++n;
    EXPECT_EQ(n, 10);
    src.rewind();
    EXPECT_TRUE(src.next(inst));
}

TEST(TraceIo, LimitedSourceTruncates)
{
    VectorTraceSource inner(sampleInsts(100));
    LimitedTraceSource limited(inner, 7);
    Inst inst;
    int n = 0;
    while (limited.next(inst))
        ++n;
    EXPECT_EQ(n, 7);
}

TEST(TraceIo, LimitedSourceHandlesShortInner)
{
    VectorTraceSource inner(sampleInsts(3));
    LimitedTraceSource limited(inner, 10);
    Inst inst;
    int n = 0;
    while (limited.next(inst))
        ++n;
    EXPECT_EQ(n, 3);
}

TEST(TraceIo, CollectRespectsLimit)
{
    SyntheticWorkload w(espresso());
    EXPECT_EQ(collect(w, 42).size(), 42u);
}

// Corruption is an environment problem, not a simulator bug: every
// detection path throws a structured BadTrace error naming the file
// and the violated field, so a sweep replaying many traces can skip
// the damaged one and keep going.

/** Expect a BadTrace SimError whose message contains @p substr. */
template <typename Fn>
void
expectBadTrace(Fn &&fn, const std::string &substr)
{
    try {
        fn();
        FAIL() << "expected BadTrace (" << substr << ")";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadTrace);
        EXPECT_NE(std::string(e.what()).find(substr),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceIoErrors, MissingFileThrows)
{
    expectBadTrace(
        []() { FileTraceSource src("/nonexistent/never.aur3"); },
        "cannot open");
    expectBadTrace(
        []() { readTrace("/nonexistent/never.aur3"); }, "cannot open");
}

TEST(TraceIoErrors, CorruptMagicThrows)
{
    const std::string path = tempPath("corrupt.aur3");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACEFILE...", f);
    std::fclose(f);
    expectBadTrace([&]() { FileTraceSource src(path); }, "magic");
    std::remove(path.c_str());
}

TEST(TraceIoErrors, UnsupportedVersionThrows)
{
    const auto insts = sampleInsts(8);
    const std::string path = tempPath("version.aur3");
    writeTrace(path, insts);
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 4, SEEK_SET), 0);
    const unsigned char bogus = 0x7f;
    ASSERT_EQ(std::fwrite(&bogus, 1, 1, f), 1u);
    std::fclose(f);
    expectBadTrace([&]() { FileTraceSource src(path); }, "version");
    std::remove(path.c_str());
}

TEST(TraceIoErrors, TruncatedHeaderThrows)
{
    const std::string path = tempPath("shortheader.aur3");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("AUR3", f); // magic only, header cut short
    std::fclose(f);
    expectBadTrace([&]() { FileTraceSource src(path); },
                   "truncated trace header");
    std::remove(path.c_str());
}

TEST(TraceIoErrors, TruncatedBodyThrows)
{
    // A body shorter than the header's count must be an error, not a
    // silently shorter trace (the old reader returned false and a
    // 400k-instruction replay would quietly become a 250k one).
    const auto insts = sampleInsts(32);
    const std::string path = tempPath("shortbody.aur3");
    writeTrace(path, insts);
    ASSERT_EQ(::truncate(path.c_str(), 16 + 24 * 16 + 7), 0);
    expectBadTrace([&]() { readTrace(path); }, "truncated trace body");
    std::remove(path.c_str());
}

TEST(TraceIoErrors, CorruptOpClassThrows)
{
    const auto insts = sampleInsts(16);
    const std::string path = tempPath("opclass.aur3");
    writeTrace(path, insts);
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    // Op-class byte of record 5: header (16) + 5*24 + offset 12.
    ASSERT_EQ(std::fseek(f, 16 + 5 * 24 + 12, SEEK_SET), 0);
    const unsigned char bogus = 0xff;
    ASSERT_EQ(std::fwrite(&bogus, 1, 1, f), 1u);
    std::fclose(f);
    expectBadTrace([&]() { readTrace(path); }, "op class");
    std::remove(path.c_str());
}

} // namespace
