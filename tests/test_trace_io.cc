/**
 * @file
 * Unit tests for the binary trace format and streaming sources.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace aurora;
using namespace aurora::trace;

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

std::vector<Inst>
sampleInsts(std::size_t n)
{
    SyntheticWorkload w(espresso());
    return collect(w, n);
}

TEST(TraceIo, RoundTripPreservesEveryField)
{
    const auto insts = sampleInsts(500);
    const std::string path = tempPath("roundtrip.aur3");
    writeTrace(path, insts);
    const auto back = readTrace(path);
    ASSERT_EQ(back.size(), insts.size());
    for (std::size_t i = 0; i < insts.size(); ++i) {
        EXPECT_EQ(back[i].pc, insts[i].pc);
        EXPECT_EQ(back[i].next_pc, insts[i].next_pc);
        EXPECT_EQ(back[i].eff_addr, insts[i].eff_addr);
        EXPECT_EQ(back[i].op, insts[i].op);
        EXPECT_EQ(back[i].src_a, insts[i].src_a);
        EXPECT_EQ(back[i].src_b, insts[i].src_b);
        EXPECT_EQ(back[i].dst, insts[i].dst);
        EXPECT_EQ(back[i].fsrc_a, insts[i].fsrc_a);
        EXPECT_EQ(back[i].fsrc_b, insts[i].fsrc_b);
        EXPECT_EQ(back[i].fdst, insts[i].fdst);
        EXPECT_EQ(back[i].size, insts[i].size);
        EXPECT_EQ(back[i].taken, insts[i].taken);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("empty.aur3");
    writeTrace(path, {});
    EXPECT_TRUE(readTrace(path).empty());
    std::remove(path.c_str());
}

TEST(TraceIo, FileSourceReportsCount)
{
    const auto insts = sampleInsts(123);
    const std::string path = tempPath("count.aur3");
    writeTrace(path, insts);
    FileTraceSource src(path);
    EXPECT_EQ(src.recordCount(), 123u);
    Inst inst;
    Count n = 0;
    while (src.next(inst))
        ++n;
    EXPECT_EQ(n, 123u);
    std::remove(path.c_str());
}

TEST(TraceIo, VectorSourceRewinds)
{
    VectorTraceSource src(sampleInsts(10));
    Inst inst;
    int n = 0;
    while (src.next(inst))
        ++n;
    EXPECT_EQ(n, 10);
    src.rewind();
    EXPECT_TRUE(src.next(inst));
}

TEST(TraceIo, LimitedSourceTruncates)
{
    VectorTraceSource inner(sampleInsts(100));
    LimitedTraceSource limited(inner, 7);
    Inst inst;
    int n = 0;
    while (limited.next(inst))
        ++n;
    EXPECT_EQ(n, 7);
}

TEST(TraceIo, LimitedSourceHandlesShortInner)
{
    VectorTraceSource inner(sampleInsts(3));
    LimitedTraceSource limited(inner, 10);
    Inst inst;
    int n = 0;
    while (limited.next(inst))
        ++n;
    EXPECT_EQ(n, 3);
}

TEST(TraceIo, CollectRespectsLimit)
{
    SyntheticWorkload w(espresso());
    EXPECT_EQ(collect(w, 42).size(), 42u);
}

TEST(TraceIoDeath, CorruptMagicPanics)
{
    const std::string path = tempPath("corrupt.aur3");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACEFILE...", f);
    std::fclose(f);
    EXPECT_DEATH({ FileTraceSource src(path); }, "magic");
    std::remove(path.c_str());
}

} // namespace
