/**
 * @file
 * Unit tests for the reorder buffer.
 */

#include <gtest/gtest.h>

#include "ipu/rob.hh"

namespace
{

using aurora::ipu::ReorderBuffer;

TEST(Rob, CapacityAndSpace)
{
    ReorderBuffer rob(6, 2);
    EXPECT_EQ(rob.capacity(), 6u);
    EXPECT_EQ(rob.space(), 6u);
    rob.allocate(10);
    EXPECT_EQ(rob.space(), 5u);
    EXPECT_FALSE(rob.full());
    EXPECT_FALSE(rob.empty());
}

TEST(Rob, RetiresInOrderOnlyWhenComplete)
{
    ReorderBuffer rob(4, 2);
    rob.allocate(10); // A
    rob.allocate(5);  // B completes earlier but is younger
    EXPECT_EQ(rob.retire(5), 0u) << "A at the head is not done";
    EXPECT_EQ(rob.retire(10), 2u) << "A done frees B too";
    EXPECT_TRUE(rob.empty());
}

TEST(Rob, RetireWidthLimitsPerCycle)
{
    ReorderBuffer rob(8, 2);
    for (int i = 0; i < 6; ++i)
        rob.allocate(1);
    EXPECT_EQ(rob.retire(1), 2u);
    EXPECT_EQ(rob.retire(1), 2u);
    EXPECT_EQ(rob.retire(1), 2u);
    EXPECT_TRUE(rob.empty());
    EXPECT_EQ(rob.retired(), 6u);
}

TEST(Rob, FullBlocksAllocation)
{
    ReorderBuffer rob(2, 2);
    rob.allocate(100);
    rob.allocate(100);
    EXPECT_TRUE(rob.full());
    rob.retire(100);
    EXPECT_FALSE(rob.full());
}

TEST(Rob, TinySmallModelRob)
{
    // Table 1 small model: 2 entries.
    ReorderBuffer rob(2, 2);
    rob.allocate(3);
    rob.allocate(20); // long-latency load behind an ALU op
    EXPECT_EQ(rob.retire(3), 1u);
    rob.allocate(4);
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.retire(19), 0u) << "head load not complete";
}

TEST(RobDeath, OverAllocatePanics)
{
    ReorderBuffer rob(1, 1);
    rob.allocate(1);
    EXPECT_DEATH(rob.allocate(1), "full");
}

} // namespace
