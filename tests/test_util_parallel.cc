/**
 * @file
 * parallelFor accounting tests: the `ran + skipped == n` identity
 * must hold on success and through the fail-fast abort path, in both
 * the serial and the pooled executor — it is what lets a sweep
 * report balance jobs == ok + failed + timed_out + skipped after an
 * aborted run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/parallel.hh"

namespace
{

using aurora::ParallelResult;
using aurora::parallelFor;

TEST(ParallelFor, SerialSuccessAccountsEveryBody)
{
    std::atomic<int> calls{0};
    ParallelResult acc;
    parallelFor(
        7, 1, [&](std::size_t) { calls.fetch_add(1); }, &acc);
    EXPECT_EQ(calls.load(), 7);
    EXPECT_EQ(acc.ran, 7u);
    EXPECT_EQ(acc.failed, 0u);
    EXPECT_EQ(acc.skipped, 0u);
}

TEST(ParallelFor, SerialFailureCountsTheUnrunTail)
{
    // Serial fail-fast stops at the throwing index: everything after
    // it was queued but never invoked, and must be reported skipped.
    std::atomic<int> calls{0};
    ParallelResult acc;
    EXPECT_THROW(parallelFor(
                     10, 1,
                     [&](std::size_t i) {
                         calls.fetch_add(1);
                         if (i == 3)
                             throw std::runtime_error("boom");
                     },
                     &acc),
                 std::runtime_error);
    EXPECT_EQ(calls.load(), 4);
    EXPECT_EQ(acc.ran, 4u);
    EXPECT_EQ(acc.failed, 1u);
    EXPECT_EQ(acc.skipped, 6u);
    EXPECT_EQ(acc.ran + acc.skipped, 10u);
}

TEST(ParallelFor, PooledSuccessAccountsEveryBody)
{
    std::atomic<int> calls{0};
    ParallelResult acc;
    parallelFor(
        100, 4, [&](std::size_t) { calls.fetch_add(1); }, &acc);
    EXPECT_EQ(calls.load(), 100);
    EXPECT_EQ(acc.ran, 100u);
    EXPECT_EQ(acc.failed, 0u);
    EXPECT_EQ(acc.skipped, 0u);
}

TEST(ParallelFor, PooledFailureBalancesAcrossWorkerCounts)
{
    for (unsigned workers : {2u, 4u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        std::atomic<int> calls{0};
        ParallelResult acc;
        EXPECT_THROW(parallelFor(
                         64, workers,
                         [&](std::size_t i) {
                             calls.fetch_add(1);
                             if (i == 5)
                                 throw std::runtime_error("boom");
                         },
                         &acc),
                     std::runtime_error);
        // Which indices ran before the abort is scheduling-dependent;
        // the books balancing is not.
        EXPECT_EQ(acc.ran,
                  static_cast<std::size_t>(calls.load()));
        EXPECT_GE(acc.failed, 1u);
        EXPECT_EQ(acc.ran + acc.skipped, 64u);
    }
}

TEST(ParallelFor, EveryFailureIsCounted)
{
    // All bodies throw: in-flight invocations may complete after the
    // first failure, and each one must land in `failed`.
    ParallelResult acc;
    EXPECT_THROW(parallelFor(
                     8, 4,
                     [&](std::size_t) {
                         throw std::runtime_error("all broken");
                     },
                     &acc),
                 std::runtime_error);
    EXPECT_EQ(acc.failed, acc.ran);
    EXPECT_GE(acc.failed, 1u);
    EXPECT_EQ(acc.ran + acc.skipped, 8u);
}

TEST(ParallelFor, EmptyRangeIsHarmless)
{
    ParallelResult acc{99, 99, 99};
    parallelFor(0, 4, [&](std::size_t) { FAIL(); }, &acc);
    EXPECT_EQ(acc.ran, 0u);
    EXPECT_EQ(acc.failed, 0u);
    EXPECT_EQ(acc.skipped, 0u);
}

TEST(ParallelFor, NullAccountingStaysSupported)
{
    std::atomic<int> calls{0};
    parallelFor(5, 2, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 5);
}

} // namespace
