/**
 * @file
 * Unit tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hh"

namespace
{

using aurora::Rng;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysBelowBound)
{
    Rng rng(7);
    for (std::uint64_t bound :
         {1ull, 2ull, 10ull, 1000ull, 1ull << 20}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.uniform(bound), bound);
    }
}

TEST(Rng, UniformCoversSmallRange)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rng.uniform(4));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniformReal();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-1.0));
        EXPECT_TRUE(rng.chance(2.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(19);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(23);
    const double p = 0.2;
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    EXPECT_NEAR(sum / n, 1.0 / p, 0.2);
}

TEST(Rng, GeometricAlwaysAtLeastOne)
{
    Rng rng(29);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.geometric(0.9), 1u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Rng, WeightedRespectsZeroWeights)
{
    Rng rng(31);
    for (int i = 0; i < 500; ++i) {
        const auto pick = rng.weighted({0.0, 1.0, 0.0});
        EXPECT_EQ(pick, 1u);
    }
}

TEST(Rng, WeightedApproximatesRatios)
{
    Rng rng(37);
    int counts[3] = {0, 0, 0};
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weighted({1.0, 2.0, 1.0})];
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.02);
}

TEST(Rng, ZipfStaysInRange)
{
    Rng rng(41);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.zipf(100, 1.1), 100u);
}

TEST(Rng, ZipfSkewsTowardZero)
{
    Rng rng(43);
    int low = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        low += rng.zipf(1000, 1.2) < 100 ? 1 : 0;
    // With s=1.2 the first decile should take well over half the mass.
    EXPECT_GT(low, n / 2);
}

TEST(Rng, ZipfZeroExponentIsUniform)
{
    Rng rng(47);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.zipf(1000, 0.0));
    EXPECT_NEAR(sum / n, 500.0, 25.0);
}

/** Determinism must hold for every seed, not just a lucky one. */
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RngSeedSweep, DeterministicAcrossInstances)
{
    Rng a(GetParam()), b(GetParam());
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.uniform(1000), b.uniform(1000));
        EXPECT_EQ(a.geometric(0.3), b.geometric(0.3));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull,
                                           0xdeadbeefull,
                                           ~0ull));

} // namespace
