/**
 * @file
 * Flight-recorder tests: ring wraparound eviction, write-through
 * spooling (every note() is on disk before any crash), the
 * async-signal-safe dump() path and its reentrancy guard, and the
 * tolerant reader's torn-tail / mid-file-corruption contract.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/flight.hh"
#include "util/sim_error.hh"

namespace
{

namespace fs = std::filesystem;
using namespace aurora;
using aurora::util::SimError;

std::string
tempPath(const std::string &name)
{
    return (fs::path(::testing::TempDir()) / name).string();
}

TEST(FlightRecorder, RingEvictsOldestOnWraparound)
{
    obs::FlightRecorder rec(4);
    for (int i = 0; i < 10; ++i)
        rec.note("event." + std::to_string(i));
    EXPECT_EQ(rec.seq(), 10u);
    const auto lines = rec.lines();
    ASSERT_EQ(lines.size(), 4u);
    // Oldest first: events 6..9 survive, 0..5 were evicted.
    EXPECT_NE(lines[0].find("event.6"), std::string::npos);
    EXPECT_NE(lines[3].find("event.9"), std::string::npos);
    for (const auto &line : lines)
        EXPECT_EQ(line.find("event.5"), std::string::npos);
}

TEST(FlightRecorder, SpoolKeepsEveryEventDespiteRingEviction)
{
    const std::string path = tempPath("flight_spool.ndjson");
    obs::FlightRecorder rec(2);
    rec.note("before.spool", "AUR100", "buffered only");
    rec.spoolTo(path);
    for (int i = 0; i < 8; ++i)
        rec.note("after." + std::to_string(i));

    // The ring holds 2 events but the spool holds all 9: spoolTo()
    // flushes the buffered history and note() writes through.
    const auto loaded = obs::loadFlightFile(path);
    EXPECT_FALSE(loaded.dropped_tail);
    ASSERT_EQ(loaded.events.size(), 9u);
    EXPECT_EQ(loaded.events.front().event, "before.spool");
    EXPECT_EQ(loaded.events.front().code, "AUR100");
    EXPECT_EQ(loaded.events.back().event, "after.7");
    for (std::size_t i = 0; i < loaded.events.size(); ++i)
        EXPECT_EQ(loaded.events[i].seq, i);
}

TEST(FlightRecorder, WriteThroughLandsOnDiskWithoutDump)
{
    // The SIGKILL contract: after note() returns the line is already
    // on disk — no dump(), flush, or destructor required.
    const std::string path = tempPath("flight_kill.ndjson");
    obs::FlightRecorder rec(8);
    rec.spoolTo(path);
    ASSERT_GE(rec.spoolFd(), 0);
    rec.note("last.words", "AUR301", "epoch=3");

    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("last.words"), std::string::npos);
    EXPECT_NE(text.find("AUR301"), std::string::npos);
    EXPECT_NE(text.find("aurora.flight.v1"), std::string::npos);
}

TEST(FlightRecorder, NoteIsThreadSafeAndSeqIsDense)
{
    const std::string path = tempPath("flight_mt.ndjson");
    obs::FlightRecorder rec(16);
    rec.spoolTo(path);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&rec, t] {
            for (int i = 0; i < 50; ++i)
                rec.note("t" + std::to_string(t));
        });
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(rec.seq(), 200u);

    // Reader sees all 200 events with strictly increasing seq.
    const auto loaded = obs::loadFlightFile(path);
    ASSERT_EQ(loaded.events.size(), 200u);
    for (std::size_t i = 1; i < loaded.events.size(); ++i)
        EXPECT_LT(loaded.events[i - 1].seq, loaded.events[i].seq);
}

TEST(FlightRecorder, DumpAppendsMarkerAndGuardsReentry)
{
    const std::string path = tempPath("flight_dump.ndjson");
    obs::FlightRecorder rec(8);
    rec.spoolTo(path);
    rec.note("steady");
    // Signal-handler shape: dump() twice in a row must both land
    // (the guard only drops *reentry*, i.e. a signal interrupting an
    // in-progress dump — sequential calls are distinct deaths).
    rec.dump("sigterm");
    rec.dump("watchdog");

    const auto loaded = obs::loadFlightFile(path);
    ASSERT_EQ(loaded.events.size(), 3u);
    EXPECT_EQ(loaded.events[0].event, "steady");
    EXPECT_EQ(loaded.events[1].event, "flight.dump");
    EXPECT_EQ(loaded.events[1].detail, "sigterm");
    EXPECT_EQ(loaded.events[2].detail, "watchdog");
}

TEST(FlightRecorder, DumpWithoutSpoolIsNoop)
{
    obs::FlightRecorder rec(4);
    rec.note("unspooled");
    rec.dump("nowhere"); // must not crash, allocate, or write
    EXPECT_EQ(rec.spoolFd(), -1);
    EXPECT_EQ(rec.seq(), 1u);
}

TEST(FlightRecorder, DumpFromRealSignalHandler)
{
    // End-to-end signal-path shape: raise() SIGUSR1 with a handler
    // that only calls dump(), as the daemons' SIGTERM paths do.
    static obs::FlightRecorder *handler_rec = nullptr;
    const std::string path = tempPath("flight_signal.ndjson");
    obs::FlightRecorder rec(8);
    rec.spoolTo(path);
    rec.note("pre.signal");
    handler_rec = &rec;
    std::signal(SIGUSR1, [](int) { handler_rec->dump("signal"); });
    ASSERT_EQ(raise(SIGUSR1), 0);
    std::signal(SIGUSR1, SIG_DFL);
    handler_rec = nullptr;

    const auto loaded = obs::loadFlightFile(path);
    ASSERT_EQ(loaded.events.size(), 2u);
    EXPECT_EQ(loaded.events[1].event, "flight.dump");
    EXPECT_EQ(loaded.events[1].detail, "signal");
}

TEST(FlightReader, TornTailIsDroppedNotFatal)
{
    const std::string path = tempPath("flight_torn.ndjson");
    obs::FlightRecorder rec(8);
    rec.spoolTo(path);
    rec.note("kept.one");
    rec.note("kept.two");
    rec.note("torn");

    // Truncate mid-way through the last line (crash mid-append).
    const auto size = fs::file_size(path);
    fs::resize_file(path, size - 5);

    const auto loaded = obs::loadFlightFile(path);
    EXPECT_TRUE(loaded.dropped_tail);
    ASSERT_EQ(loaded.events.size(), 2u);
    EXPECT_EQ(loaded.events.back().event, "kept.two");
}

TEST(FlightReader, MidFileCorruptionNamesTheOffset)
{
    const std::string path = tempPath("flight_corrupt.ndjson");
    obs::FlightRecorder rec(8);
    rec.spoolTo(path);
    rec.note("good");
    {
        std::ofstream out(path, std::ios::app);
        out << "this is not json\n";
    }
    rec.note("after.garbage"); // valid line after the corruption

    try {
        obs::loadFlightFile(path);
        FAIL() << "mid-file corruption must raise";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("at byte"),
                  std::string::npos);
    }
}

TEST(FlightReader, MissingFileRaises)
{
    EXPECT_THROW(obs::loadFlightFile(tempPath("no_such.flight")),
                 SimError);
}

} // namespace
