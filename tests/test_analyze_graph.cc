/**
 * @file
 * Structural deadlock detector tests: the resource graph mirrors the
 * machine's topology, every shipped model is live, and zeroing any
 * finite resource that severs all drain paths is flagged as one
 * AUR010 naming the choke — statically, before a cycle executes.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/pipeline_graph.hh"
#include "core/machine_config.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using analyze::buildPipelineGraph;
using analyze::checkPipelineGraph;
using analyze::Diagnostic;
using analyze::PipelineGraph;
using analyze::ResourceNode;

bool
hasNode(const PipelineGraph &g, const std::string &name)
{
    for (const ResourceNode &n : g.nodes)
        if (n.name == name)
            return true;
    return false;
}

std::string
describeFindings(const std::vector<Diagnostic> &findings)
{
    std::string out;
    for (const Diagnostic &d : findings)
        out += d.toString() + "\n";
    return out;
}

TEST(PipelineGraph, BaselineTopologyMatchesTheMachine)
{
    const MachineConfig m = baselineModel();
    const PipelineGraph g = buildPipelineGraph(m);

    // Node capacities come straight from the configuration.
    EXPECT_EQ(g.nodes[g.index("ipu-rob")].capacity,
              static_cast<long>(m.rob_entries));
    EXPECT_EQ(g.nodes[g.index("mshr")].capacity,
              static_cast<long>(m.lsu.mshr_entries));
    EXPECT_EQ(g.nodes[g.index("fp-result-bus")].capacity,
              static_cast<long>(m.fpu.result_buses));
    EXPECT_EQ(g.nodes[g.index("biu-queue")].capacity,
              static_cast<long>(m.biu.queue_depth));
    EXPECT_EQ(g.nodes[g.index("prefetch-buffers")].capacity,
              static_cast<long>(m.prefetch.num_buffers *
                                m.prefetch.depth));

    // A pipelined unit holds latency ops in flight; an iterative one
    // holds exactly one regardless of latency.
    EXPECT_EQ(g.nodes[g.index("fp-mul")].capacity,
              static_cast<long>(m.fpu.mul.latency));
    EXPECT_EQ(g.nodes[g.index("fp-div")].capacity, 1);

    // Source and sinks.
    EXPECT_EQ(g.nodes[g.index("trace")].capacity,
              ResourceNode::UNBOUNDED);
    EXPECT_TRUE(g.nodes[g.index("retired")].sink);
    EXPECT_TRUE(g.nodes[g.index("memory")].sink);
    EXPECT_FALSE(g.edges.empty());
}

TEST(PipelineGraph, DisabledPrefetchDropsItsNode)
{
    MachineConfig m = baselineModel();
    m.prefetch.enabled = false;
    const PipelineGraph g = buildPipelineGraph(m);
    EXPECT_FALSE(hasNode(g, "prefetch-buffers"));
    // And the machine stays live without the prefetch drain path.
    EXPECT_TRUE(checkPipelineGraph(m).empty());
}

TEST(PipelineGraph, EveryShippedModelIsStructurallyLive)
{
    for (const MachineConfig &m :
         {smallModel(), baselineModel(), largeModel(),
          recommendedModel()}) {
        SCOPED_TRACE(m.name);
        const auto findings = checkPipelineGraph(m);
        EXPECT_TRUE(findings.empty()) << describeFindings(findings);
    }
}

TEST(PipelineGraph, WedgedMachineIsOneFindingNamingTheBus)
{
    // faultinject::wedgeConfig's defect, stated directly: zero result
    // buses validate (no per-field check fails) but starve every FP
    // unit of a writeback slot. The detector must report the whole
    // trapped FP side as ONE finding whose choke is the bus.
    MachineConfig m = baselineModel();
    m.fpu.result_buses = 0;
    const auto findings = checkPipelineGraph(m);
    ASSERT_EQ(findings.size(), 1u) << describeFindings(findings);
    const Diagnostic &d = findings[0];
    EXPECT_EQ(d.id, "AUR010");
    EXPECT_EQ(d.field, "fp-result-bus");
    // The trapped set spans the decoupling queues and all four units.
    for (const char *trapped :
         {"fp-inst-queue", "fp-load-queue", "fp-add", "fp-mul",
          "fp-div", "fp-cvt"})
        EXPECT_NE(d.message.find(trapped), std::string::npos)
            << d.message;
}

TEST(PipelineGraph, ZeroBiuQueueTrapsTheStorePath)
{
    // validate() accepts biu_queue=0 (it is not a queue the
    // constructor sizes), yet stores can then never leave the write
    // cache — a genuinely new static catch, not a restated
    // validate() rule.
    MachineConfig m = baselineModel();
    m.biu.queue_depth = 0;
    const auto findings = checkPipelineGraph(m);
    ASSERT_FALSE(findings.empty());
    bool found = false;
    for (const Diagnostic &d : findings)
        if (d.field == "biu-queue" &&
            d.message.find("write-cache") != std::string::npos)
            found = true;
    EXPECT_TRUE(found) << describeFindings(findings);
}

TEST(PipelineGraph, ZeroFetchBufferStarvesTheWholeMachine)
{
    MachineConfig m = baselineModel();
    m.ifu.buffer_entries = 0;
    const auto findings = checkPipelineGraph(m);
    ASSERT_FALSE(findings.empty());
    EXPECT_EQ(findings[0].id, "AUR010");
    EXPECT_EQ(findings[0].field, "fetch-buffer");
    // The trapped resource is the unbounded trace source itself.
    EXPECT_NE(findings[0].message.find("trace"), std::string::npos)
        << findings[0].message;
}

TEST(PipelineGraph, ZeroFpStoreQueueOnlyTrapsTheFpSide)
{
    // FP results can still retire through the FPU reorder buffer, so
    // a zero store queue does NOT deadlock fp-rob — but anything that
    // could only drain through the store queue would be caught. With
    // the current topology fp-rob keeps its retire edge, so the
    // machine stays live: the detector reasons per-path, not per-zero.
    MachineConfig m = baselineModel();
    m.fpu.store_queue = 0;
    const auto findings = checkPipelineGraph(m);
    EXPECT_TRUE(findings.empty()) << describeFindings(findings);
}

TEST(PipelineGraph, IndexPanicsOnUnknownName)
{
    const PipelineGraph g = buildPipelineGraph(baselineModel());
    EXPECT_DEATH(g.index("no-such-resource"), "no node named");
}

} // namespace
