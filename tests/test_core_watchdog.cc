/**
 * @file
 * Forward-progress watchdog tests: a validating-but-wedged machine is
 * converted into a structured NoForwardProgress error with a usable
 * diagnostic snapshot, the hard cycle budget trips deterministically,
 * and healthy runs are bit-identical with or without the watchdog.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "core/watchdog.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using util::SimErrorCode;

/** A machine that validates but can never retire FP work. */
MachineConfig
wedgedMachine()
{
    auto m = baselineModel();
    m.fpu.result_buses = 0; // no writeback slot: FP ops never issue
    return m;
}

TEST(Watchdog, WedgedMachineRaisesNoForwardProgress)
{
    const auto m = wedgedMachine();
    m.validate(); // the wedge is structurally legal by design
    try {
        simulate(m, trace::nasa7(), 50'000, WatchdogConfig{2000, 0});
        FAIL() << "a bus-starved FPU must trip the watchdog";
    } catch (const WatchdogError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::NoForwardProgress);
        const WatchdogDiagnostic &d = e.diagnostic();
        EXPECT_EQ(d.model, "baseline");
        EXPECT_EQ(d.watchdog.stall_limit, 2000u);
        // The snapshot must describe the wedge: the clock advanced at
        // least a full stall window past the last retirement, and the
        // FP decoupling queue is full with the IPU stalled on it.
        EXPECT_GE(d.cycle, d.last_retire_cycle + 2000);
        EXPECT_GT(d.instructions, 0u);
        EXPECT_EQ(d.fp_instq_size, d.fp_instq_capacity);
        EXPECT_GT(
            d.stalls[static_cast<std::size_t>(StallCause::FpQueue)],
            0u);
        // And render into a one-line message for sweep summaries.
        const std::string text = d.toString();
        EXPECT_NE(text.find("baseline"), std::string::npos) << text;
        EXPECT_NE(text.find("FP-Queue"), std::string::npos) << text;
        EXPECT_NE(std::string(e.what()).find("no instruction retired"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Watchdog, WedgeTripsDeterministically)
{
    Cycle trips[2] = {0, 0};
    for (int round = 0; round < 2; ++round) {
        try {
            simulate(wedgedMachine(), trace::nasa7(), 50'000,
                     WatchdogConfig{1500, 0});
        } catch (const WatchdogError &e) {
            trips[round] = e.diagnostic().cycle;
        }
    }
    EXPECT_GT(trips[0], 0u);
    EXPECT_EQ(trips[0], trips[1]);
}

TEST(Watchdog, CycleBudgetTripsExactlyAtBudget)
{
    constexpr Cycle BUDGET = 5000;
    for (int round = 0; round < 2; ++round) {
        try {
            simulate(baselineModel(), trace::espresso(), 400'000,
                     WatchdogConfig{0, BUDGET});
            FAIL() << "espresso cannot finish 400k insts in 5k cycles";
        } catch (const WatchdogError &e) {
            EXPECT_EQ(e.code(), SimErrorCode::CycleBudgetExceeded);
            EXPECT_EQ(e.diagnostic().cycle, BUDGET);
            EXPECT_GT(e.diagnostic().retired, 0u)
                << "a healthy machine was making progress";
            EXPECT_NE(std::string(e.what()).find("cycle budget"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(Watchdog, DisabledWatchdogLetsHealthyRunsFinish)
{
    const auto r = simulate(baselineModel(), trace::espresso(), 20'000,
                            WatchdogConfig{0, 0});
    EXPECT_EQ(r.instructions, 20'000u);
}

TEST(Watchdog, HealthyRunsAreIdenticalUnderAnyPolicy)
{
    // The watchdog observes; it must never perturb cycle accounting.
    const auto a = simulate(baselineModel(), trace::gcc(), 20'000,
                            WatchdogConfig{0, 0});
    const auto b = simulate(baselineModel(), trace::gcc(), 20'000,
                            defaultWatchdog());
    const auto c = simulate(baselineModel(), trace::gcc(), 20'000,
                            WatchdogConfig{500, 10'000'000});
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.cycles, c.cycles);
    EXPECT_EQ(a.stalls, b.stalls);
    EXPECT_EQ(a.stalls, c.stalls);
    EXPECT_EQ(a.instructions, c.instructions);
}

TEST(Watchdog, DefaultPolicyComesFromTheEnvironment)
{
    // Without AURORA_WATCHDOG_CYCLES the default applies; the suite
    // runner does not set it, so this also documents the default.
    const auto wd = defaultWatchdog();
    EXPECT_EQ(wd.stall_limit, DEFAULT_WATCHDOG_CYCLES);
    EXPECT_EQ(wd.cycle_budget, 0u);
}

TEST(Watchdog, SnapshotIsReadableMidRun)
{
    // snapshot() is a const observer usable outside error paths too
    // (e.g. progress displays).
    trace::SyntheticWorkload workload(trace::espresso());
    trace::LimitedTraceSource limited(workload, 1000);
    Processor cpu(baselineModel(), limited, WatchdogConfig{0, 0});
    const auto before = cpu.snapshot();
    EXPECT_EQ(before.cycle, 0u);
    EXPECT_EQ(before.retired, 0u);
    cpu.run();
    const auto after = cpu.snapshot();
    EXPECT_GT(after.cycle, 0u);
    EXPECT_EQ(after.instructions, 1000u);
    EXPECT_EQ(after.rob_capacity, baselineModel().rob_entries);
}

} // namespace
