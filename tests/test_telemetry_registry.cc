/**
 * @file
 * Registry tests: find-or-create identity, registration order,
 * lookup without creation, and counter/histogram semantics — the
 * properties the exporters rely on for a stable metric schema.
 */

#include <gtest/gtest.h>

#include "telemetry/registry.hh"

namespace
{

using namespace aurora;
using namespace aurora::telemetry;

TEST(Counter, AddAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Registry, CounterFindOrCreateReturnsSameObject)
{
    Registry reg;
    Counter &a = reg.counter("sim.cycles", "total cycles");
    a.add(7);
    // Second registration under the same name: same counter, the
    // original description wins.
    Counter &b = reg.counter("sim.cycles", "ignored");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 7u);
    ASSERT_EQ(reg.counters().size(), 1u);
    EXPECT_EQ(reg.counters().front().description, "total cycles");
}

TEST(Registry, HistogramFindOrCreateReturnsSameObject)
{
    Registry reg;
    Histogram &a = reg.histogram("occupancy.rob", "per-cycle", 65);
    a.add(3);
    Histogram &b = reg.histogram("occupancy.rob", "ignored", 65);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.count(), 1u);
    ASSERT_EQ(reg.histograms().size(), 1u);
    EXPECT_EQ(reg.histograms().front().description, "per-cycle");
}

TEST(Registry, RegistrationOrderIsPreserved)
{
    Registry reg;
    const char *names[] = {"zeta", "alpha", "mid", "alpha2"};
    for (const char *n : names)
        reg.counter(n, "");
    ASSERT_EQ(reg.counters().size(), 4u);
    std::size_t i = 0;
    for (const auto &entry : reg.counters())
        EXPECT_EQ(entry.name, names[i++]);
}

TEST(Registry, AddressesStayStableAcrossLaterRegistrations)
{
    // A sampler holds pointers to its metrics while the catalog keeps
    // growing; the deque storage must never move them.
    Registry reg;
    Counter &first = reg.counter("first", "");
    Histogram &h = reg.histogram("h", "", 8);
    for (int i = 0; i < 100; ++i) {
        reg.counter("c" + std::to_string(i), "");
        reg.histogram("g" + std::to_string(i), "", 4);
    }
    first.add(5);
    h.add(2);
    EXPECT_EQ(reg.findCounter("first")->value(), 5u);
    EXPECT_EQ(reg.findHistogram("h")->count(), 1u);
}

TEST(Registry, FindDoesNotCreate)
{
    Registry reg;
    EXPECT_EQ(reg.findCounter("absent"), nullptr);
    EXPECT_EQ(reg.findHistogram("absent"), nullptr);
    EXPECT_TRUE(reg.counters().empty());
    EXPECT_TRUE(reg.histograms().empty());

    reg.counter("present", "");
    EXPECT_NE(reg.findCounter("present"), nullptr);
    EXPECT_EQ(reg.findHistogram("present"), nullptr);
}

TEST(Registry, HistogramBucketAccounting)
{
    Registry reg;
    Histogram &h = reg.histogram("lat", "", 4);
    // Samples 0..3 land in buckets; larger ones overflow.
    for (std::uint64_t v : {0, 1, 1, 3, 7, 9})
        h.add(v);
    EXPECT_EQ(h.count(), 6u);
    Count in_buckets = 0;
    for (std::size_t b = 0; b < h.numBuckets(); ++b)
        in_buckets += h.bucket(b);
    EXPECT_EQ(in_buckets + h.overflow(), h.count());
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.maxSample(), 9u);
}

} // namespace
