/**
 * @file
 * Determinism and robustness property tests for the parallel sweep
 * engine: identical results at any worker count, submission-order
 * results, seed derivation, empty/single grids, and exception
 * propagation without deadlock.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/sweep.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using namespace aurora::harness;

constexpr Count N = 20000;

/** The 12-job grid of the issue: 3 models x 4 benchmarks. */
std::vector<SweepJob>
twelveJobGrid()
{
    std::vector<SweepJob> grid;
    for (const auto &m : studyModels())
        for (const auto &name :
             {"espresso", "compress", "li", "nasa7"})
            grid.push_back({m, trace::profileByName(name), N});
    return grid;
}

/** Field-exact RunResult comparison (bit-identical doubles). */
void
expectRunEq(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.issuing_cycles, b.issuing_cycles);
    EXPECT_EQ(a.tail_cycles, b.tail_cycles);
    EXPECT_EQ(a.stalls, b.stalls);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.store_transactions, b.store_transactions);
    EXPECT_EQ(a.fp_dispatched, b.fp_dispatched);
    EXPECT_EQ(a.issue_width_cycles, b.issue_width_cycles);
    EXPECT_EQ(a.icache_hit_pct, b.icache_hit_pct);
    EXPECT_EQ(a.dcache_hit_pct, b.dcache_hit_pct);
    EXPECT_EQ(a.iprefetch_hit_pct, b.iprefetch_hit_pct);
    EXPECT_EQ(a.dprefetch_hit_pct, b.dprefetch_hit_pct);
    EXPECT_EQ(a.write_cache_hit_pct, b.write_cache_hit_pct);
    EXPECT_EQ(a.avg_rob_occupancy, b.avg_rob_occupancy);
    EXPECT_EQ(a.avg_mshr_occupancy, b.avg_mshr_occupancy);
    const auto occ_eq = [](const OccupancyStats &x,
                           const OccupancyStats &y) {
        EXPECT_EQ(x.mean, y.mean);
        EXPECT_EQ(x.p50, y.p50);
        EXPECT_EQ(x.p95, y.p95);
        EXPECT_EQ(x.max, y.max);
    };
    occ_eq(a.rob_occupancy, b.rob_occupancy);
    occ_eq(a.mshr_occupancy, b.mshr_occupancy);
    occ_eq(a.fp_instq_occupancy, b.fp_instq_occupancy);
    occ_eq(a.fp_loadq_occupancy, b.fp_loadq_occupancy);
    occ_eq(a.fp_storeq_occupancy, b.fp_storeq_occupancy);
    EXPECT_EQ(a.cpi(), b.cpi());
    for (std::size_t c = 0; c < NUM_STALL_CAUSES; ++c)
        EXPECT_EQ(a.stallCpi(static_cast<StallCause>(c)),
                  b.stallCpi(static_cast<StallCause>(c)));
}

TEST(SweepRunner, DeterministicAtAnyWorkerCount)
{
    const auto grid = twelveJobGrid();
    std::vector<std::vector<RunResult>> by_workers;
    for (unsigned workers : {1u, 2u, 8u}) {
        SweepOptions opts;
        opts.workers = workers;
        SweepRunner runner(opts);
        by_workers.push_back(runner.run(grid));
        ASSERT_EQ(by_workers.back().size(), grid.size());
    }
    for (std::size_t w = 1; w < by_workers.size(); ++w)
        for (std::size_t i = 0; i < grid.size(); ++i) {
            SCOPED_TRACE("workers variant " + std::to_string(w) +
                         " job " + std::to_string(i));
            expectRunEq(by_workers[0][i], by_workers[w][i]);
        }
}

TEST(SweepRunner, DeterministicWithDerivedSeeds)
{
    const auto grid = twelveJobGrid();
    std::vector<std::vector<RunResult>> by_workers;
    for (unsigned workers : {1u, 8u}) {
        SweepOptions opts;
        opts.workers = workers;
        opts.base_seed = 0xfeedface;
        SweepRunner runner(opts);
        by_workers.push_back(runner.run(grid));
    }
    for (std::size_t i = 0; i < grid.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        expectRunEq(by_workers[0][i], by_workers[1][i]);
    }

    // A base seed rewrites the workload seeds, so at least one run
    // must differ from the profile-seeded sweep.
    SweepRunner plain;
    const auto unseeded = plain.run(grid);
    bool any_difference = false;
    for (std::size_t i = 0; i < grid.size(); ++i)
        any_difference |=
            unseeded[i].cycles != by_workers[0][i].cycles;
    EXPECT_TRUE(any_difference);
}

TEST(SweepRunner, ResultsInSubmissionOrder)
{
    const auto grid = twelveJobGrid();
    SweepOptions opts;
    opts.workers = 8;
    SweepRunner runner(opts);
    const auto results = runner.run(grid);
    ASSERT_EQ(results.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(results[i].benchmark, grid[i].profile.name);
        EXPECT_EQ(results[i].model, grid[i].machine.name);
    }
}

TEST(SweepRunner, EmptyGrid)
{
    SweepRunner runner;
    const auto results = runner.run({});
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(runner.report().jobs, 0u);
    EXPECT_EQ(runner.report().total_instructions, 0u);
}

TEST(SweepRunner, SingleJob)
{
    SweepOptions opts;
    opts.workers = 8; // more workers than jobs must be harmless
    SweepRunner runner(opts);
    const auto results = runner.run(
        {{baselineModel(), trace::espresso(), N}});
    ASSERT_EQ(results.size(), 1u);
    expectRunEq(results[0],
                simulate(baselineModel(), trace::espresso(), N));
}

TEST(SweepRunner, ThrowingJobPropagatesWithoutDeadlock)
{
    for (unsigned workers : {1u, 2u, 8u}) {
        SweepOptions opts;
        opts.workers = workers;
        SweepRunner runner(opts);
        std::vector<std::function<RunResult()>> tasks;
        for (int i = 0; i < 4; ++i)
            tasks.push_back([]() {
                return simulate(baselineModel(), trace::espresso(),
                                2000);
            });
        tasks.push_back([]() -> RunResult {
            throw std::runtime_error("boom");
        });
        for (int i = 0; i < 3; ++i)
            tasks.push_back([]() {
                return simulate(baselineModel(), trace::li(), 2000);
            });
        EXPECT_THROW(runner.runTasks(tasks), std::runtime_error)
            << "workers=" << workers;
    }
}

TEST(SweepRunner, ReportAccounting)
{
    SweepOptions opts;
    opts.workers = 2;
    SweepRunner runner(opts);
    const auto grid = twelveJobGrid();
    runner.run(grid);
    const auto &rep = runner.report();
    EXPECT_EQ(rep.jobs, grid.size());
    EXPECT_EQ(rep.total_instructions, Count{12} * N);
    EXPECT_EQ(rep.job_seconds.size(), grid.size());
    EXPECT_GT(rep.wall_seconds, 0.0);
    EXPECT_GE(rep.busy_seconds, 0.0);
    EXPECT_GT(rep.instsPerSecond(), 0.0);
    EXPECT_FALSE(rep.summary().empty());

    // The report accumulates across run() calls.
    runner.run({{baselineModel(), trace::espresso(), N}});
    EXPECT_EQ(runner.report().jobs, grid.size() + 1);
    EXPECT_EQ(runner.report().total_instructions,
              Count{13} * N);
}

TEST(SweepRunner, HarnessSuiteMatchesCoreSuite)
{
    const auto suite = trace::integerSuite();
    SweepOptions opts;
    opts.workers = 4;
    SweepRunner runner(opts);
    const auto parallel =
        harness::runSuite(runner, baselineModel(), suite, N);
    const auto serial = core::runSuite(baselineModel(), suite, N);
    ASSERT_EQ(parallel.runs.size(), serial.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        SCOPED_TRACE("run " + std::to_string(i));
        expectRunEq(parallel.runs[i], serial.runs[i]);
    }
    EXPECT_EQ(parallel.avgCpi(), serial.avgCpi());
}

TEST(SeedDerivation, StableAndDiscriminating)
{
    const auto h_base = machineHash(baselineModel());
    const auto h_small = machineHash(smallModel());
    EXPECT_EQ(h_base, machineHash(baselineModel()));
    EXPECT_NE(h_base, h_small);
    // Any knob change must alter the digest.
    EXPECT_NE(h_base, machineHash(baselineModel().withMshrs(4)));
    EXPECT_NE(h_base,
              machineHash(baselineModel().withIssueWidth(1)));

    const auto s = deriveJobSeed(1, h_base, "espresso");
    EXPECT_EQ(s, deriveJobSeed(1, h_base, "espresso"));
    EXPECT_NE(s, deriveJobSeed(2, h_base, "espresso"));
    EXPECT_NE(s, deriveJobSeed(1, h_small, "espresso"));
    EXPECT_NE(s, deriveJobSeed(1, h_base, "li"));
    EXPECT_NE(deriveJobSeed(0, 0, ""), 0u);
}

} // namespace
