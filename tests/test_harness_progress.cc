/**
 * @file
 * Sweep progress telemetry tests: the on_progress heartbeat fires on
 * a deterministic job-count cadence with consistent counters at any
 * worker count, classifies ok/failed/timed-out/retried jobs, and the
 * sweep timeline records one span per attempt and renders as a valid
 * trace-event document.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/simulator.hh"
#include "harness/sweep.hh"
#include "harness/sweep_trace.hh"
#include "telemetry/json.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using namespace aurora::harness;

constexpr Count N = 5000;

std::vector<std::function<RunResult()>>
healthyTasks(std::size_t n)
{
    std::vector<std::function<RunResult()>> tasks;
    for (std::size_t i = 0; i < n; ++i)
        tasks.push_back([]() {
            return simulate(baselineModel(), trace::espresso(), N);
        });
    return tasks;
}

/** Thread-safe collector for heartbeat snapshots. */
struct ProgressLog
{
    std::mutex mutex;
    std::vector<SweepProgress> snapshots;

    std::function<void(const SweepProgress &)>
    callback()
    {
        return [this](const SweepProgress &p) {
            const std::lock_guard<std::mutex> lock(mutex);
            snapshots.push_back(p);
        };
    }
};

TEST(Progress, CadenceIsDeterministicAcrossWorkerCounts)
{
    constexpr std::size_t JOBS = 12;
    for (const unsigned workers : {1u, 2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        ProgressLog log;
        SweepOptions opts;
        opts.workers = workers;
        opts.progress_every = 3;
        opts.on_progress = log.callback();
        SweepRunner runner(opts);
        runner.runTaskOutcomes(healthyTasks(JOBS));

        // Heartbeats at done = 3, 6, 9, 12 — a function of job
        // counts only, never of wall-clock time or thread schedule.
        ASSERT_EQ(log.snapshots.size(), JOBS / 3);
        std::size_t expected = 3;
        for (const SweepProgress &p : log.snapshots) {
            EXPECT_EQ(p.done, expected);
            EXPECT_EQ(p.total, JOBS);
            EXPECT_EQ(p.ok, p.done);
            EXPECT_EQ(p.failed, 0u);
            EXPECT_EQ(p.timed_out, 0u);
            EXPECT_GE(p.elapsed_seconds, 0.0);
            EXPECT_GE(p.eta_seconds, 0.0);
            expected += 3;
        }
        const SweepProgress &last = log.snapshots.back();
        EXPECT_EQ(last.done, last.total);
        EXPECT_EQ(last.eta_seconds, 0.0);
    }
}

TEST(Progress, DefaultCadenceAlwaysReportsCompletion)
{
    // progress_every = 0 derives a ~5% cadence; whatever it picks,
    // the final heartbeat must be done == total.
    ProgressLog log;
    SweepOptions opts;
    opts.workers = 2;
    opts.on_progress = log.callback();
    SweepRunner runner(opts);
    runner.runTaskOutcomes(healthyTasks(7));
    ASSERT_FALSE(log.snapshots.empty());
    EXPECT_EQ(log.snapshots.back().done, 7u);
    EXPECT_EQ(log.snapshots.back().total, 7u);
}

TEST(Progress, ClassifiesFailuresRetriesAndTimeouts)
{
    auto tasks = healthyTasks(2);
    // A terminal failure...
    tasks.push_back([]() -> RunResult {
        util::raiseError(util::SimErrorCode::Internal, "boom");
    });
    // ...a transient one that retry recovers...
    auto flaky_calls = std::make_shared<std::atomic<unsigned>>(0);
    tasks.push_back([flaky_calls]() {
        if (flaky_calls->fetch_add(1) == 0)
            util::raiseError(util::SimErrorCode::Internal,
                             "transient");
        return simulate(baselineModel(), trace::li(), N);
    });
    // ...and a timeout (never retried).
    tasks.push_back([]() -> RunResult {
        util::raiseError(util::SimErrorCode::Timeout, "deadline");
    });

    ProgressLog log;
    SweepOptions opts;
    opts.workers = 2;
    opts.retries = 1;
    opts.progress_every = 1;
    opts.on_progress = log.callback();
    SweepRunner runner(opts);
    const auto outcomes = runner.runTaskOutcomes(tasks);

    ASSERT_EQ(log.snapshots.size(), tasks.size());
    const SweepProgress &last = log.snapshots.back();
    EXPECT_EQ(last.done, tasks.size());
    EXPECT_EQ(last.ok, 3u);
    EXPECT_EQ(last.failed, 1u);
    EXPECT_EQ(last.timed_out, 1u);
    // Retried == jobs that needed more than one attempt: the flaky
    // job that recovered AND the terminal failure that burned its
    // retry budget (same semantics as SweepReport::retried_jobs).
    EXPECT_EQ(last.retried, 2u);
    EXPECT_TRUE(outcomes[3].ok);
    EXPECT_EQ(outcomes[3].attempts, 2u);

    // The rendered heartbeat line carries the same numbers.
    const std::string line = last.toString();
    EXPECT_NE(line.find("sweep progress: 5/5 done"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("retried 2"), std::string::npos) << line;
}

TEST(Progress, HeartbeatsNeverPerturbResults)
{
    // The same grid with and without a callback, at several worker
    // counts: cycle counts must be bit-identical.
    std::vector<SweepJob> grid;
    for (const char *bench : {"espresso", "li", "nasa7"})
        grid.push_back(
            {baselineModel(), trace::profileByName(bench), N});
    SweepOptions plain_opts;
    plain_opts.workers = 1;
    SweepRunner plain(plain_opts);
    const auto reference = plain.run(grid);

    for (const unsigned workers : {2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        ProgressLog log;
        SweepOptions opts;
        opts.workers = workers;
        opts.progress_every = 1;
        opts.on_progress = log.callback();
        SweepRunner runner(opts);
        const auto outcomes = runner.runOutcomes(grid);
        ASSERT_EQ(outcomes.size(), reference.size());
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            EXPECT_TRUE(outcomes[i].ok);
            EXPECT_EQ(outcomes[i].result.cycles,
                      reference[i].cycles);
            EXPECT_EQ(outcomes[i].result.instructions,
                      reference[i].instructions);
        }
        EXPECT_EQ(log.snapshots.size(), grid.size());
    }
}

TEST(Timeline, RecordsOneSpanPerAttemptWithDenseWorkerIds)
{
    auto tasks = healthyTasks(3);
    auto flaky_calls = std::make_shared<std::atomic<unsigned>>(0);
    tasks.push_back([flaky_calls]() {
        if (flaky_calls->fetch_add(1) == 0)
            util::raiseError(util::SimErrorCode::Internal,
                             "transient");
        return simulate(baselineModel(), trace::li(), N);
    });

    SweepTimeline timeline;
    SweepOptions opts;
    opts.workers = 2;
    opts.retries = 1;
    opts.timeline = &timeline;
    SweepRunner runner(opts);
    runner.runTaskOutcomes(tasks);

    // 3 healthy attempts + failed attempt + retry attempt.
    const auto spans = timeline.spans();
    ASSERT_EQ(spans.size(), 5u);
    std::size_t failed = 0, second_attempts = 0;
    for (const TimelineSpan &span : spans) {
        EXPECT_LE(span.start_ms, span.end_ms);
        EXPECT_LT(span.worker, 2u);
        if (span.kind == SpanKind::Failed) {
            ++failed;
            EXPECT_FALSE(span.error.empty());
        }
        second_attempts += span.attempt == 2;
    }
    EXPECT_EQ(failed, 1u);
    EXPECT_EQ(second_attempts, 1u);
}

TEST(Timeline, RendersAsValidTraceEventDocument)
{
    SweepTimeline timeline;
    SweepOptions opts;
    opts.workers = 2;
    opts.timeline = &timeline;
    SweepRunner runner(opts);
    runner.runTaskOutcomes(healthyTasks(4));

    std::ostringstream os;
    writeTimelineTrace(os, timeline, "progress test sweep");
    std::string error;
    const auto doc = telemetry::parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    const auto *events = doc->find("traceEvents");
    ASSERT_TRUE(events && events->isArray());

    // Spans are sorted per worker track with non-decreasing starts.
    double last_ts = -1.0;
    double last_tid = -1.0;
    std::size_t spans = 0;
    for (const auto &e : events->array) {
        if (e.find("ph")->string == "M")
            continue;
        ASSERT_EQ(e.find("ph")->string, "X");
        ++spans;
        const double tid = e.find("tid")->number;
        const double ts = e.find("ts")->number;
        if (tid == last_tid) {
            EXPECT_GE(ts, last_ts);
        }
        last_tid = tid;
        last_ts = ts;
        EXPECT_GE(e.find("dur")->number, 0.0);
        EXPECT_EQ(e.find("cat")->string, "ok");
    }
    EXPECT_EQ(spans, 4u);
}

TEST(Progress, SpanKindNamesAreStable)
{
    EXPECT_EQ(spanKindName(SpanKind::Ok), "ok");
    EXPECT_EQ(spanKindName(SpanKind::Failed), "failed");
    EXPECT_EQ(spanKindName(SpanKind::TimedOut), "timeout");
    EXPECT_EQ(spanKindName(SpanKind::Resumed), "resumed");
}

} // namespace
