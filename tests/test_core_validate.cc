/**
 * @file
 * Tests for configuration validation and the §2.1 / §2 fidelity
 * knobs (ALU pipeline depth, BIU collision modelling).
 */

#include <gtest/gtest.h>

#include "core/config_io.hh"
#include "core/simulator.hh"
#include "mem/biu.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

TEST(Validate, NamedModelsAreValid)
{
    for (const auto &m : studyModels())
        m.validate(); // must not die
    recommendedModel().validate();
}

TEST(ValidateDeath, MismatchedLineSizesAreFatal)
{
    auto m = baselineModel();
    m.lsu.line_bytes = 64;
    EXPECT_DEATH(m.validate(), "line sizes disagree");
}

TEST(ValidateDeath, FetchIssueWidthMismatchIsFatal)
{
    auto m = baselineModel();
    m.ifu.fetch_width = 1; // issue width still 2
    EXPECT_DEATH(m.validate(), "fetch width");
}

TEST(ValidateDeath, RetireNarrowerThanIssueIsFatal)
{
    auto m = baselineModel();
    m.retire_width = 1;
    EXPECT_DEATH(m.validate(), "retire width");
}

TEST(ValidateDeath, ZeroMshrsIsFatal)
{
    auto m = baselineModel();
    m.lsu.mshr_entries = 0;
    EXPECT_DEATH(m.validate(), "MSHR");
}

TEST(ValidateDeath, BadSafeFracIsFatal)
{
    auto m = baselineModel();
    m.fpu.provably_safe_frac = 1.5;
    EXPECT_DEATH(m.validate(), "fp_safe_frac");
}

TEST(AluLatency, DeeperPipelineCostsCpi)
{
    const double fwd =
        simulate(baselineModel(), trace::espresso(), 60000).cpi();
    auto deep = baselineModel();
    deep.alu_latency = 2;
    const double no_fwd =
        simulate(deep, trace::espresso(), 60000).cpi();
    EXPECT_GT(no_fwd, fwd * 1.03)
        << "losing forwarding must insert dependency bubbles";
}

TEST(AluLatency, ParsesAndDescribes)
{
    const auto m = parseMachineSpec("alu_lat=3");
    EXPECT_EQ(m.alu_latency, 3u);
    EXPECT_NE(describe(m).find("alu_lat=3"), std::string::npos);
}

TEST(BiuCollisions, OverlappingReplyCollides)
{
    mem::BiuConfig cfg;
    cfg.latency = 10;
    cfg.line_occupancy = 4;
    cfg.model_collisions = true;
    cfg.collision_penalty = 2;
    mem::Biu biu(cfg);
    // Read issued at 0 replies at 14..; a transmit started at 12
    // overlaps the landing reply and must retry.
    const Cycle reply = biu.requestLine(0, false);
    EXPECT_EQ(reply, 14u);
    biu.postWrite(12);
    EXPECT_EQ(biu.collisions(), 1u);
}

TEST(BiuCollisions, DisjointTrafficDoesNotCollide)
{
    mem::BiuConfig cfg;
    cfg.model_collisions = true;
    mem::Biu biu(cfg);
    biu.requestLine(0, false); // reply at 21
    biu.postWrite(100);
    EXPECT_EQ(biu.collisions(), 0u);
}

TEST(BiuCollisions, OffByDefaultAndCalibrationUnchanged)
{
    mem::Biu biu(mem::BiuConfig{});
    biu.requestLine(0, false);
    biu.postWrite(18);
    EXPECT_EQ(biu.collisions(), 0u);
}

TEST(BiuCollisions, EndToEndPenaltyIsSmallButReal)
{
    const double base =
        simulate(baselineModel(), trace::gcc(), 60000).cpi();
    auto m = baselineModel();
    m.biu.model_collisions = true;
    const double with = simulate(m, trace::gcc(), 60000).cpi();
    EXPECT_GE(with, base) << "collisions can only slow things down";
    EXPECT_LT(with, base * 1.10) << "but only mildly";
}

} // namespace
