/**
 * @file
 * Tests for configuration validation and the §2.1 / §2 fidelity
 * knobs (ALU pipeline depth, BIU collision modelling).
 */

#include <gtest/gtest.h>

#include "core/config_io.hh"
#include "core/simulator.hh"
#include "mem/biu.hh"
#include "trace/spec_profiles.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using util::SimError;
using util::SimErrorCode;

TEST(Validate, NamedModelsAreValid)
{
    for (const auto &m : studyModels())
        m.validate(); // must not throw
    recommendedModel().validate();
}

/** Expect validate() to throw BadConfig mentioning @p substr. */
void
expectInvalid(const MachineConfig &m, const std::string &substr)
{
    try {
        m.validate();
        FAIL() << "validate() should have thrown (" << substr << ")";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadConfig);
        EXPECT_NE(std::string(e.what()).find(substr),
                  std::string::npos)
            << e.what();
    }
}

TEST(ValidateErrors, MismatchedLineSizesThrow)
{
    auto m = baselineModel();
    m.lsu.line_bytes = 64;
    expectInvalid(m, "line sizes disagree");
}

TEST(ValidateErrors, FetchIssueWidthMismatchThrows)
{
    auto m = baselineModel();
    m.ifu.fetch_width = 1; // issue width still 2
    expectInvalid(m, "fetch width");
}

TEST(ValidateErrors, RetireNarrowerThanIssueThrows)
{
    auto m = baselineModel();
    m.retire_width = 1;
    expectInvalid(m, "retire width");
}

TEST(ValidateErrors, ZeroMshrsThrow)
{
    auto m = baselineModel();
    m.lsu.mshr_entries = 0;
    expectInvalid(m, "MSHR");
}

TEST(ValidateErrors, BadSafeFracThrows)
{
    auto m = baselineModel();
    m.fpu.provably_safe_frac = 1.5;
    expectInvalid(m, "fp_safe_frac");
}

TEST(ValidateErrors, ZeroFpQueuesThrow)
{
    // A zero-capacity decoupling queue would abort BoundedQueue
    // construction deep inside the Processor; validation must reject
    // it first as a recoverable user error.
    auto m = baselineModel();
    m.fpu.inst_queue = 0;
    expectInvalid(m, "FPU decoupling queues");
    m = baselineModel();
    m.fpu.load_queue = 0;
    expectInvalid(m, "FPU decoupling queues");
    m = baselineModel();
    m.fpu.store_queue = 0;
    expectInvalid(m, "FPU decoupling queues");
    m = baselineModel();
    m.fpu.rob_entries = 0;
    expectInvalid(m, "FPU reorder buffer");
}

TEST(ValidateErrors, OverlongFpLatencyThrows)
{
    // Latencies past the result-bus scheduling window used to panic
    // at the first issue; now they are rejected up front.
    auto m = baselineModel();
    m.fpu.div.latency = 1000;
    expectInvalid(m, "div latency");
    m = baselineModel();
    m.fpu.add.latency = 0;
    expectInvalid(m, "add latency");
}

TEST(ValidateErrors, InvalidConfigNeverReachesSimulation)
{
    // The Processor constructor validates, so a bad machine fails as
    // a structured error before any component is built.
    auto m = baselineModel();
    m.rob_entries = 0;
    EXPECT_THROW(simulate(m, trace::espresso(), 1000), SimError);
}

TEST(ValidateErrors, BusStarvedFpuPassesValidation)
{
    // fp_buses=0 is structurally representable (the liveness wedge
    // the forward-progress watchdog exists for); validation must not
    // reject it.
    auto m = baselineModel();
    m.fpu.result_buses = 0;
    m.validate();
}

TEST(AluLatency, DeeperPipelineCostsCpi)
{
    const double fwd =
        simulate(baselineModel(), trace::espresso(), 60000).cpi();
    auto deep = baselineModel();
    deep.alu_latency = 2;
    const double no_fwd =
        simulate(deep, trace::espresso(), 60000).cpi();
    EXPECT_GT(no_fwd, fwd * 1.03)
        << "losing forwarding must insert dependency bubbles";
}

TEST(AluLatency, ParsesAndDescribes)
{
    const auto m = parseMachineSpec("alu_lat=3");
    EXPECT_EQ(m.alu_latency, 3u);
    EXPECT_NE(describe(m).find("alu_lat=3"), std::string::npos);
}

TEST(BiuCollisions, OverlappingReplyCollides)
{
    mem::BiuConfig cfg;
    cfg.latency = 10;
    cfg.line_occupancy = 4;
    cfg.model_collisions = true;
    cfg.collision_penalty = 2;
    mem::Biu biu(cfg);
    // Read issued at 0 replies at 14..; a transmit started at 12
    // overlaps the landing reply and must retry.
    const Cycle reply = biu.requestLine(0, false);
    EXPECT_EQ(reply, 14u);
    biu.postWrite(12);
    EXPECT_EQ(biu.collisions(), 1u);
}

TEST(BiuCollisions, DisjointTrafficDoesNotCollide)
{
    mem::BiuConfig cfg;
    cfg.model_collisions = true;
    mem::Biu biu(cfg);
    biu.requestLine(0, false); // reply at 21
    biu.postWrite(100);
    EXPECT_EQ(biu.collisions(), 0u);
}

TEST(BiuCollisions, OffByDefaultAndCalibrationUnchanged)
{
    mem::Biu biu(mem::BiuConfig{});
    biu.requestLine(0, false);
    biu.postWrite(18);
    EXPECT_EQ(biu.collisions(), 0u);
}

TEST(BiuCollisions, EndToEndPenaltyIsSmallButReal)
{
    const double base =
        simulate(baselineModel(), trace::gcc(), 60000).cpi();
    auto m = baselineModel();
    m.biu.model_collisions = true;
    const double with = simulate(m, trace::gcc(), 60000).cpi();
    EXPECT_GE(with, base) << "collisions can only slow things down";
    EXPECT_LT(with, base * 1.10) << "but only mildly";
}

} // namespace
