/**
 * @file
 * Property tests for the synthetic workload generator.
 *
 * These enforce the structural invariants the simulator depends on:
 * deterministic replay, a well-formed control-flow stream (every taken
 * transfer is followed by its architectural delay slot), addresses
 * confined to their regions, and a dynamic instruction mix close to
 * the profile.
 */

#include <gtest/gtest.h>

#include <string>

#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_stats.hh"

namespace
{

using namespace aurora;
using namespace aurora::trace;

constexpr Count SAMPLE = 120000;

TEST(Workload, DeterministicForSameProfile)
{
    SyntheticWorkload a(gcc()), b(gcc());
    Inst x, y;
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(a.next(x));
        ASSERT_TRUE(b.next(y));
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.eff_addr, y.eff_addr);
        ASSERT_EQ(x.op, y.op);
        ASSERT_EQ(x.taken, y.taken);
    }
}

TEST(Workload, DifferentSeedsProduceDifferentStreams)
{
    auto p1 = espresso();
    auto p2 = espresso();
    p2.seed ^= 0x1234567;
    SyntheticWorkload a(p1), b(p2);
    Inst x, y;
    int differences = 0;
    for (int i = 0; i < 10000; ++i) {
        a.next(x);
        b.next(y);
        differences += (x.pc != y.pc) ? 1 : 0;
    }
    EXPECT_GT(differences, 100);
}

TEST(Workload, NextPcChainIsConsistent)
{
    SyntheticWorkload w(li());
    Inst prev, cur;
    ASSERT_TRUE(w.next(prev));
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(w.next(cur));
        ASSERT_EQ(prev.next_pc, cur.pc)
            << "next_pc must point at the next dynamic instruction";
        prev = cur;
    }
}

TEST(Workload, OnlyControlTransfersRedirect)
{
    SyntheticWorkload w(sc());
    // Window of three: a -> b -> c. A discontinuity between b and c
    // is only legal when b is the delay slot of a taken transfer a.
    Inst a, b, c;
    ASSERT_TRUE(w.next(a));
    ASSERT_TRUE(w.next(b));
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(w.next(c));
        if (c.pc != b.pc + 4) {
            ASSERT_TRUE(a.redirectsFetch())
                << "discontinuity at " << std::hex << b.pc
                << " without a taken transfer before its delay slot";
        }
        a = b;
        b = c;
    }
}

TEST(Workload, TakenBranchFollowedBySequentialDelaySlot)
{
    SyntheticWorkload w(espresso());
    Inst prev, cur;
    ASSERT_TRUE(w.next(prev));
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(w.next(cur));
        if (prev.redirectsFetch()) {
            // MIPS semantics: the delay slot executes from pc+4
            // before control reaches the target.
            ASSERT_EQ(cur.pc, prev.pc + 4)
                << "taken transfer must be followed by its delay slot";
            ASSERT_FALSE(isControl(cur.op))
                << "MIPS prohibits control ops in delay slots";
        }
        prev = cur;
    }
}

TEST(Workload, MemOpsHaveAddressesAndSizes)
{
    SyntheticWorkload w(compress());
    Inst inst;
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(w.next(inst));
        if (isMem(inst.op)) {
            ASSERT_NE(inst.eff_addr, 0u);
            ASSERT_TRUE(inst.size == 4 || inst.size == 8);
            ASSERT_EQ(inst.eff_addr % inst.size, 0u)
                << "accesses must be naturally aligned";
        } else {
            ASSERT_EQ(inst.eff_addr, 0u);
        }
    }
}

TEST(Workload, DataAddressesInKnownRegions)
{
    SyntheticWorkload w(eqntott());
    Inst inst;
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(w.next(inst));
        if (!isMem(inst.op))
            continue;
        const bool heap =
            inst.eff_addr >= SyntheticWorkload::HEAP_BASE &&
            inst.eff_addr < SyntheticWorkload::HEAP_BASE +
                                eqntott().total_data_bytes + 64;
        const bool stack =
            inst.eff_addr >=
                SyntheticWorkload::STACK_TOP -
                    eqntott().hot_data_bytes &&
            inst.eff_addr <= SyntheticWorkload::STACK_TOP;
        ASSERT_TRUE(heap || stack)
            << std::hex << inst.eff_addr << " outside data regions";
    }
}

TEST(Workload, CodeAddressesInCodeRegion)
{
    const auto p = gcc();
    SyntheticWorkload w(p);
    Inst inst;
    const Addr lo = SyntheticWorkload::CODE_BASE;
    // hot code + exit stubs + alignment + cold region
    const Addr hi = lo + p.hot_code_bytes * 2 + p.cold_code_bytes +
                    4096;
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(w.next(inst));
        ASSERT_GE(inst.pc, lo);
        ASSERT_LT(inst.pc, hi);
        ASSERT_EQ(inst.pc % 4, 0u);
    }
}

TEST(Workload, FpPairsAccessAdjacentWords)
{
    auto p = nasa7();
    p.double_word_mem = false;
    SyntheticWorkload w(p);
    Inst prev, cur;
    ASSERT_TRUE(w.next(prev));
    int pairs = 0;
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(w.next(cur));
        if (prev.op == OpClass::FpLoad && cur.op == OpClass::FpLoad &&
            cur.pc == prev.pc + 4 &&
            cur.eff_addr == prev.eff_addr + 4)
            ++pairs;
        prev = cur;
    }
    EXPECT_GT(pairs, 1000) << "paired 32-bit FP halves should abound";
}

TEST(Workload, DoubleWordModeUses8ByteAccesses)
{
    auto p = nasa7();
    p.double_word_mem = true;
    SyntheticWorkload w(p);
    Inst inst;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(w.next(inst));
        if (inst.op == OpClass::FpLoad ||
            inst.op == OpClass::FpStore) {
            ASSERT_EQ(inst.size, 8u);
        }
    }
}

TEST(Workload, ProducedCounterAdvances)
{
    SyntheticWorkload w(ora());
    Inst inst;
    for (int i = 0; i < 100; ++i)
        w.next(inst);
    EXPECT_EQ(w.produced(), 100u);
}

/** Mix and footprint invariants must hold for every benchmark. */
class WorkloadSweep : public ::testing::TestWithParam<std::string>
{
  protected:
    WorkloadProfile profile() const { return profileByName(GetParam()); }
};

TEST_P(WorkloadSweep, MixTracksProfile)
{
    const auto p = profile();
    SyntheticWorkload w(p);
    const TraceStats s = analyze(w, SAMPLE);

    const double loads = s.frac(OpClass::Load);
    EXPECT_NEAR(loads, p.frac_load, 0.08) << "integer load fraction";
    const double stores = s.frac(OpClass::Store);
    EXPECT_NEAR(stores, p.frac_store, 0.06) << "integer store fraction";

    if (p.floating_point) {
        const double fp_arith =
            s.frac(OpClass::FpAdd) + s.frac(OpClass::FpMul) +
            s.frac(OpClass::FpDiv) + s.frac(OpClass::FpCvt);
        EXPECT_NEAR(fp_arith, p.frac_fp_arith, 0.10);
        EXPECT_GT(s.count(OpClass::FpLoad), 0u);
    } else {
        EXPECT_EQ(s.count(OpClass::FpAdd), 0u);
        EXPECT_EQ(s.count(OpClass::FpLoad), 0u);
    }
}

TEST_P(WorkloadSweep, BranchDensityIsSane)
{
    SyntheticWorkload w(profile());
    const TraceStats s = analyze(w, SAMPLE);
    const double transfers =
        s.frac(OpClass::Branch) + s.frac(OpClass::Jump);
    EXPECT_GT(transfers, 0.01);
    EXPECT_LT(transfers, 0.25);
}

TEST_P(WorkloadSweep, CodeFootprintTracksProfile)
{
    const auto p = profile();
    SyntheticWorkload w(p);
    const TraceStats s = analyze(w, SAMPLE);
    // Unique code touched must be at least the hot footprint and at
    // most hot + cold (+ exit stubs & alignment).
    EXPECT_GT(s.unique_pcs * 4, p.hot_code_bytes / 2);
    EXPECT_LT(s.unique_pcs * 4,
              p.hot_code_bytes * 2 + p.cold_code_bytes + 4096);
}

TEST_P(WorkloadSweep, HotCodeDominatesExecution)
{
    const auto p = profile();
    SyntheticWorkload w(p);
    // The dynamic stream revisits a small set of pcs: with hot loops
    // the unique-pc count grows far slower than the stream.
    const TraceStats s = analyze(w, SAMPLE);
    EXPECT_LT(s.unique_pcs, SAMPLE / 4);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadSweep,
    ::testing::Values("espresso", "li", "eqntott", "compress", "sc",
                      "gcc", "alvinn", "doduc", "ear", "hydro2d",
                      "mdljdp2", "nasa7", "ora", "spice2g6",
                      "su2cor"));

} // namespace
