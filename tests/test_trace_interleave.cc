/**
 * @file
 * Unit tests for the multiprogrammed (interleaved) trace source.
 */

#include <gtest/gtest.h>

#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_source.hh"

namespace
{

using namespace aurora;
using namespace aurora::trace;

std::vector<Inst>
marked(Addr base, int n)
{
    std::vector<Inst> v;
    for (int i = 0; i < n; ++i) {
        Inst inst;
        inst.pc = base + 4u * static_cast<Addr>(i);
        inst.next_pc = inst.pc + 4;
        inst.op = OpClass::IntAlu;
        v.push_back(inst);
    }
    return v;
}

TEST(Interleave, RoundRobinQuanta)
{
    VectorTraceSource a(marked(0x1000, 6));
    VectorTraceSource b(marked(0x2000, 6));
    InterleavedTraceSource mix({&a, &b}, 3);
    const auto out = collect(mix, 100);
    ASSERT_EQ(out.size(), 12u);
    // a a a b b b a a a b b b
    for (int i = 0; i < 12; ++i) {
        const Addr expected_base =
            ((i / 3) % 2 == 0) ? 0x1000u : 0x2000u;
        EXPECT_EQ(out[static_cast<std::size_t>(i)].pc & 0xf000u,
                  expected_base)
            << "position " << i;
    }
    EXPECT_EQ(mix.switches(), 3u);
}

TEST(Interleave, ExhaustedSourceIsSkipped)
{
    VectorTraceSource a(marked(0x1000, 2));
    VectorTraceSource b(marked(0x2000, 8));
    InterleavedTraceSource mix({&a, &b}, 4);
    const auto out = collect(mix, 100);
    ASSERT_EQ(out.size(), 10u);
    // After a's 2 instructions, everything comes from b.
    for (std::size_t i = 2; i < out.size(); ++i)
        EXPECT_EQ(out[i].pc & 0xf000u, 0x2000u);
}

TEST(Interleave, SingleSourcePassesThrough)
{
    VectorTraceSource a(marked(0x1000, 5));
    InterleavedTraceSource mix({&a}, 2);
    EXPECT_EQ(collect(mix, 100).size(), 5u);
    EXPECT_EQ(mix.switches(), 0u);
}

TEST(Interleave, ThreeWay)
{
    VectorTraceSource a(marked(0x1000, 4));
    VectorTraceSource b(marked(0x2000, 4));
    VectorTraceSource c(marked(0x3000, 4));
    InterleavedTraceSource mix({&a, &b, &c}, 2);
    const auto out = collect(mix, 100);
    ASSERT_EQ(out.size(), 12u);
    EXPECT_EQ(out[0].pc & 0xf000u, 0x1000u);
    EXPECT_EQ(out[2].pc & 0xf000u, 0x2000u);
    EXPECT_EQ(out[4].pc & 0xf000u, 0x3000u);
    EXPECT_EQ(out[6].pc & 0xf000u, 0x1000u);
}

TEST(Interleave, WorkloadsInterleaveEndlessly)
{
    SyntheticWorkload a(trace::espresso());
    SyntheticWorkload b(trace::gcc());
    InterleavedTraceSource mix({&a, &b}, 1000);
    Inst inst;
    for (int i = 0; i < 50000; ++i)
        ASSERT_TRUE(mix.next(inst));
    EXPECT_EQ(mix.switches(), 49u);
}

TEST(InterleaveDeath, ZeroQuantumIsFatal)
{
    VectorTraceSource a(marked(0x1000, 2));
    EXPECT_DEATH(InterleavedTraceSource({&a}, 0), "quantum");
}

TEST(InterleaveDeath, EmptySourceListIsFatal)
{
    EXPECT_DEATH(InterleavedTraceSource({}, 4), "at least one");
}

} // namespace
