/**
 * @file
 * The distributed sweep's headline property: for every shard count
 * and every randomized sabotage schedule, the swarm's merged results
 * are **bit-identical** to a serial SweepRunner over the same grid —
 * fencing, migration, and respawn may change *who* ran a job and
 * *when*, never *what* it produced.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/config_io.hh"
#include "faultinject/faultinject.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "shard/swarm.hh"
#include "trace/spec_profiles.hh"

namespace
{

namespace fs = std::filesystem;
using namespace aurora;

/** splitmix64 — deterministic schedule randomness without rand(). */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

std::string
tempPath(const std::string &name)
{
    return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<harness::SweepJob>
testGrid()
{
    const core::MachineConfig machine =
        core::parseMachineSpec("model=small");
    return harness::suiteJobs(machine, trace::integerSuite(), 2000);
}

/** Serial ground truth, computed once per binary run. */
const std::vector<harness::SweepOutcome> &
serialOutcomes()
{
    static const std::vector<harness::SweepOutcome> outcomes = [] {
        harness::SweepOptions options;
        options.workers = 1;
        harness::SweepRunner runner(std::move(options));
        return runner.runOutcomes(testGrid());
    }();
    return outcomes;
}

void
expectBitIdentical(const std::vector<harness::SweepOutcome> &got)
{
    const std::vector<harness::SweepOutcome> &want = serialOutcomes();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        ASSERT_TRUE(got[i].ok);
        ASSERT_TRUE(want[i].ok);
        // Byte-level equality of the full result statistics block —
        // the same check the journal's CRC framing protects on disk.
        EXPECT_EQ(harness::runResultBytes(got[i].result),
                  harness::runResultBytes(want[i].result));
    }
}

/** Run one swarm over the grid with a seed-derived sabotage
 *  schedule: each slot independently draws no-fault or one of the
 *  four ShardFaults, armed after 0 or 1 completions. */
void
runSchedule(std::uint32_t shards,
            std::optional<std::uint64_t> sabotage_seed,
            const std::string &tag)
{
    shard::SwarmConfig config;
    config.socket_path = tempPath("merge-" + tag + ".sock");
    config.journal_dir = tempPath("merge-" + tag + ".jd");
    fs::remove(config.socket_path);
    fs::remove_all(config.journal_dir);
    config.shards = shards;
    config.lease_ms = 400;
    config.fault_plans.resize(shards);
    std::string plan_desc;
    for (std::uint32_t s = 0; sabotage_seed && s < shards; ++s) {
        const std::uint64_t draw = mix(*sabotage_seed * 1337 + s);
        if (draw % 3 == 0)
            continue; // this slot stays healthy
        faultinject::ShardFaultPlan plan;
        plan.fault = faultinject::anyShardFault(draw >> 8);
        plan.after_jobs = static_cast<std::uint32_t>(draw >> 32) % 2;
        config.fault_plans[s] = plan;
        plan_desc += " slot" + std::to_string(s) + "=" +
                     faultinject::formatShardFaultPlan(plan);
    }
    SCOPED_TRACE("shards=" + std::to_string(shards) + " schedule:" +
                 (plan_desc.empty() ? " none" : plan_desc));

    shard::Swarm swarm(config);
    expectBitIdentical(swarm.runGrid(testGrid(), {}));
}

TEST(ShardMergeProperty, HealthyFleetsAreBitIdenticalToSerial)
{
    for (const std::uint32_t shards : {1u, 2u, 4u, 8u})
        runSchedule(shards, std::nullopt,
                    "healthy" + std::to_string(shards));
}

TEST(ShardMergeProperty, SabotagedFleetsAreBitIdenticalToSerial)
{
    for (const std::uint32_t shards : {1u, 2u, 4u, 8u})
        runSchedule(shards, 0xa5a5 + shards,
                    "chaos" + std::to_string(shards));
}

} // namespace
