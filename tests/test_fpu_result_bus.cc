/**
 * @file
 * Unit tests for the result-bus reservation table.
 */

#include <gtest/gtest.h>

#include "fpu/result_bus.hh"

namespace
{

using namespace aurora;
using aurora::fpu::ResultBusSchedule;

TEST(ResultBus, TwoBusesTwoSlotsPerCycle)
{
    ResultBusSchedule sched(2);
    EXPECT_TRUE(sched.canReserve(5));
    sched.reserve(5);
    EXPECT_TRUE(sched.canReserve(5));
    sched.reserve(5);
    EXPECT_FALSE(sched.canReserve(5));
    EXPECT_TRUE(sched.canReserve(6));
}

TEST(ResultBus, AdvanceFreesPastSlots)
{
    ResultBusSchedule sched(1);
    sched.reserve(3);
    EXPECT_FALSE(sched.canReserve(3));
    sched.advance(4);
    // Cycle 3 is in the past; its slot will be reused far in the
    // future (ring wraps at WINDOW).
    sched.reserve(4);
    sched.advance(10);
    EXPECT_TRUE(sched.canReserve(3 + ResultBusSchedule::WINDOW));
}

TEST(ResultBus, LongHorizonAdvance)
{
    ResultBusSchedule sched(2);
    sched.advance(100000);
    sched.reserve(100005);
    EXPECT_TRUE(sched.canReserve(100005));
}

TEST(ResultBus, SingleBusSerializesCompletions)
{
    ResultBusSchedule sched(1);
    for (Cycle t = 10; t < 20; ++t) {
        ASSERT_TRUE(sched.canReserve(t));
        sched.reserve(t);
        ASSERT_FALSE(sched.canReserve(t));
    }
}

TEST(ResultBusDeath, PastReservationPanics)
{
    ResultBusSchedule sched(2);
    sched.advance(10);
    EXPECT_DEATH(sched.canReserve(5), "past");
}

TEST(ResultBusDeath, BeyondWindowPanics)
{
    ResultBusSchedule sched(2);
    EXPECT_DEATH(sched.canReserve(ResultBusSchedule::WINDOW + 5),
                 "window");
}

TEST(ResultBusDeath, OvercommitPanics)
{
    ResultBusSchedule sched(1);
    sched.reserve(3);
    EXPECT_DEATH(sched.reserve(3), "overcommitted");
}

} // namespace
