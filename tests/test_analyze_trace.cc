/**
 * @file
 * Trace verifier tests: clean synthetic traces for every shipped
 * profile verify OK (including the declared-mix check), every
 * faultinject::corruptTraceFile mode is caught with its named
 * diagnostic, and the semantic checks (registers, alignment, operand
 * shape, PC continuity, def-before-use) fire on hand-built records.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analyze/verify_trace.hh"
#include "faultinject/faultinject.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"

namespace
{

using namespace aurora;
using namespace aurora::trace;
using analyze::TraceCheckOptions;
using analyze::TraceReport;
using analyze::verifyTrace;
namespace fi = aurora::faultinject;

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

std::size_t
countId(const TraceReport &report, const std::string &id)
{
    std::size_t n = 0;
    for (const analyze::Diagnostic &d : report.diagnostics)
        n += d.id == id ? 1 : 0;
    return n;
}

std::string
idList(const TraceReport &report)
{
    std::string out;
    for (const analyze::Diagnostic &d : report.diagnostics)
        out += d.id + " ";
    return out;
}

/** Write @p n synthetic instructions for @p profile to @p path. */
void
writeSynthetic(const std::string &path, const WorkloadProfile &profile,
               Count n)
{
    SyntheticWorkload w(profile);
    writeTrace(path, collect(w, n));
}

/** A minimal well-formed instruction: a NOP at @p pc. */
Inst
nop(Addr pc)
{
    Inst inst;
    inst.pc = pc;
    inst.next_pc = pc + 4;
    return inst;
}

TEST(VerifyTrace, EveryShippedProfileVerifiesCleanAgainstItself)
{
    // The mix check is tuned so every generator passes its own
    // declared profile: this is the ground truth that makes an AUR108
    // elsewhere meaningful.
    std::vector<WorkloadProfile> all = integerSuite();
    for (const WorkloadProfile &p : floatSuite())
        all.push_back(p);
    for (const WorkloadProfile &p : all) {
        SCOPED_TRACE(p.name);
        const std::string path = tempPath("clean.aur3");
        writeSynthetic(path, p, 4096);
        TraceCheckOptions options;
        options.profile = &p;
        const TraceReport report = verifyTrace(path, options);
        EXPECT_TRUE(report.ok()) << idList(report);
        EXPECT_EQ(countId(report, "AUR108"), 0u) << idList(report);
        EXPECT_EQ(report.records, 4096u);
        EXPECT_EQ(report.promised, 4096u);
        Count total = 0;
        for (const Count c : report.histogram)
            total += c;
        EXPECT_EQ(total, report.records);
        std::remove(path.c_str());
    }
}

TEST(VerifyTrace, EveryCorruptionModeIsCaughtWithItsNamedDiagnostic)
{
    const struct
    {
        fi::TraceFault fault;
        const char *id;
    } cases[] = {
        {fi::TraceFault::Magic, "AUR101"},
        {fi::TraceFault::Version, "AUR102"},
        {fi::TraceFault::OpClass, "AUR103"},
        {fi::TraceFault::Truncate, "AUR104"},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.id);
        const std::string path = tempPath("corrupt.aur3");
        writeSynthetic(path, espresso(), 512);
        fi::corruptTraceFile(path, c.fault, /*seed=*/7);
        const TraceReport report = verifyTrace(path);
        EXPECT_FALSE(report.ok());
        EXPECT_GE(countId(report, c.id), 1u) << idList(report);
        std::remove(path.c_str());
    }
}

TEST(VerifyTrace, MissingFileIsAur101NotAThrow)
{
    const TraceReport report =
        verifyTrace(tempPath("never-written.aur3"));
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(countId(report, "AUR101"), 1u);
    EXPECT_EQ(report.records, 0u);
}

TEST(VerifyTrace, BadRegisterIndexIsAur105)
{
    Inst inst = nop(0x1000);
    inst.op = OpClass::IntAlu;
    inst.src_a = 40; // register files have 32 entries
    inst.dst = 1;
    const std::string path = tempPath("badreg.aur3");
    writeTrace(path, {inst});
    const TraceReport report = verifyTrace(path);
    EXPECT_EQ(countId(report, "AUR105"), 1u) << idList(report);
    std::remove(path.c_str());
}

TEST(VerifyTrace, MisalignedAndOddSizedAccessesAreAur106)
{
    Inst aligned = nop(0x1000);
    aligned.op = OpClass::Load;
    aligned.dst = 2;
    aligned.eff_addr = 0x2000;
    aligned.size = 4;

    Inst misaligned = aligned;
    misaligned.pc = 0x1004;
    misaligned.eff_addr = 0x2002; // 4-byte load at a 2-byte offset

    Inst odd_size = aligned;
    odd_size.pc = 0x1008;
    odd_size.size = 5;

    aligned.next_pc = misaligned.pc;
    misaligned.next_pc = odd_size.pc;

    const std::string path = tempPath("align.aur3");
    writeTrace(path, {aligned, misaligned, odd_size});
    const TraceReport report = verifyTrace(path);
    EXPECT_EQ(countId(report, "AUR106"), 2u) << idList(report);
    std::remove(path.c_str());
}

TEST(VerifyTrace, LoadsWithoutDestinationsAreAur109)
{
    Inst int_load = nop(0x1000);
    int_load.op = OpClass::Load;
    int_load.eff_addr = 0x2000;
    int_load.size = 4; // dst left NO_REG

    Inst fp_mul = nop(0x1004);
    fp_mul.op = OpClass::FpMul;
    fp_mul.fsrc_a = 1;
    fp_mul.fsrc_b = 2; // fdst left NO_REG

    int_load.next_pc = fp_mul.pc;

    const std::string path = tempPath("operands.aur3");
    writeTrace(path, {int_load, fp_mul});
    const TraceReport report = verifyTrace(path);
    EXPECT_EQ(countId(report, "AUR109"), 2u) << idList(report);
    std::remove(path.c_str());
}

TEST(VerifyTrace, PcDiscontinuityIsAur107AndCounted)
{
    Inst a = nop(0x1000);
    Inst b = nop(0x5000); // a.next_pc says 0x1004
    const std::string path = tempPath("pc.aur3");
    writeTrace(path, {a, b});
    const TraceReport report = verifyTrace(path);
    EXPECT_EQ(countId(report, "AUR107"), 1u) << idList(report);
    EXPECT_EQ(report.discontinuities, 1u);
    EXPECT_TRUE(report.ok()); // a warning, not an error
    std::remove(path.c_str());
}

TEST(VerifyTrace, LiveInsAreCountedAndExcessIsAur110)
{
    // 64 instructions each reading a distinct never-written register
    // (33 int + 31 fp > 32): the shuffled/spliced-input detector.
    std::vector<Inst> insts;
    Addr pc = 0x1000;
    for (unsigned r = 0; r < 32; ++r) {
        Inst inst = nop(pc);
        inst.op = OpClass::IntAlu;
        inst.src_a = static_cast<RegIndex>(r);
        insts.push_back(inst);
        pc += 4;
    }
    for (unsigned r = 0; r < 32; ++r) {
        Inst inst = nop(pc);
        inst.op = OpClass::FpAdd;
        inst.fsrc_a = static_cast<RegIndex>(r);
        inst.fdst = 31; // keep the operand shape legal
        insts.push_back(inst);
        pc += 4;
    }
    for (std::size_t i = 0; i + 1 < insts.size(); ++i)
        insts[i].next_pc = insts[i + 1].pc;

    const std::string path = tempPath("livein.aur3");
    writeTrace(path, insts);
    const TraceReport report = verifyTrace(path);
    EXPECT_EQ(report.int_live_ins, 32u);
    // fp31 is written by the first FpAdd, so reads of it afterwards
    // are defined; the other 31 are live-ins.
    EXPECT_EQ(report.fp_live_ins, 31u);
    EXPECT_EQ(countId(report, "AUR110"), 1u) << idList(report);
    std::remove(path.c_str());
}

TEST(VerifyTrace, DefBeforeUseAcceptsWriteThenRead)
{
    Inst def = nop(0x1000);
    def.op = OpClass::IntAlu;
    def.dst = 7;

    Inst use = nop(0x1004);
    use.op = OpClass::IntAlu;
    use.src_a = 7;
    def.next_pc = use.pc;

    const std::string path = tempPath("defuse.aur3");
    writeTrace(path, {def, use});
    const TraceReport report = verifyTrace(path);
    EXPECT_EQ(report.int_live_ins, 0u);
    EXPECT_TRUE(report.ok()) << idList(report);
    std::remove(path.c_str());
}

TEST(VerifyTrace, PerIdEmissionCapCountsButStopsEmitting)
{
    std::vector<Inst> insts;
    Addr pc = 0x1000;
    for (int i = 0; i < 20; ++i) {
        Inst inst = nop(pc);
        inst.op = OpClass::Load;
        inst.dst = 1;
        inst.eff_addr = 0x2001; // misaligned every time
        inst.size = 4;
        insts.push_back(inst);
        pc += 4;
    }
    for (std::size_t i = 0; i + 1 < insts.size(); ++i)
        insts[i].next_pc = insts[i + 1].pc;

    const std::string path = tempPath("cap.aur3");
    writeTrace(path, insts);
    const TraceReport report = verifyTrace(path);
    EXPECT_EQ(countId(report, "AUR106"), 8u) << idList(report);
    EXPECT_FALSE(report.ok());
    std::remove(path.c_str());
}

TEST(VerifyTrace, MixDriftAgainstTheWrongProfileIsAur108)
{
    // An integer trace judged against an FP-heavy profile: the
    // declared fp_arith fraction is far above the measured zero.
    const std::string path = tempPath("mix.aur3");
    writeSynthetic(path, espresso(), 4096);
    const WorkloadProfile wrong = nasa7();
    TraceCheckOptions options;
    options.profile = &wrong;
    const TraceReport report = verifyTrace(path, options);
    EXPECT_GE(countId(report, "AUR108"), 1u) << idList(report);
    EXPECT_TRUE(report.ok()); // drift warns; it does not reject
    std::remove(path.c_str());
}

TEST(VerifyTrace, MixCheckNeedsEnoughRecordsToBeMeaningful)
{
    const std::string path = tempPath("short.aur3");
    writeSynthetic(path, espresso(), 512); // below the 2048 floor
    const WorkloadProfile wrong = nasa7();
    TraceCheckOptions options;
    options.profile = &wrong;
    const TraceReport report = verifyTrace(path, options);
    EXPECT_EQ(countId(report, "AUR108"), 0u) << idList(report);
    std::remove(path.c_str());
}

TEST(VerifyTrace, SummaryNamesTheVerdictAndCounts)
{
    const std::string path = tempPath("summary.aur3");
    writeSynthetic(path, espresso(), 256);
    const TraceReport good = verifyTrace(path);
    EXPECT_NE(good.summary().find("OK"), std::string::npos);
    fi::corruptTraceFile(path, fi::TraceFault::Truncate);
    const TraceReport bad = verifyTrace(path);
    EXPECT_NE(bad.summary().find("BAD"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
