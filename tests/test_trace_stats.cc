/**
 * @file
 * Unit tests for the trace analysis module.
 */

#include <gtest/gtest.h>

#include "trace/trace_stats.hh"
#include "trace/trace_source.hh"

namespace
{

using namespace aurora;
using namespace aurora::trace;

Inst
make(Addr pc, OpClass op, Addr ea = 0, bool taken = false)
{
    Inst i;
    i.pc = pc;
    i.next_pc = pc + 4;
    i.op = op;
    i.eff_addr = ea;
    i.taken = taken;
    if (isMem(op))
        i.size = 4;
    return i;
}

TEST(TraceStats, CountsPerClass)
{
    VectorTraceSource src({
        make(0x1000, OpClass::IntAlu),
        make(0x1004, OpClass::Load, 0x20000000),
        make(0x1008, OpClass::Load, 0x20000020),
        make(0x100c, OpClass::Store, 0x20000040),
        make(0x1010, OpClass::Branch, 0, true),
        make(0x1014, OpClass::Nop),
    });
    const TraceStats s = analyze(src, 100);
    EXPECT_EQ(s.insts, 6u);
    EXPECT_EQ(s.count(OpClass::Load), 2u);
    EXPECT_EQ(s.count(OpClass::Store), 1u);
    EXPECT_EQ(s.taken_branches, 1u);
    EXPECT_EQ(s.data_refs, 3u);
    EXPECT_NEAR(s.frac(OpClass::Load), 2.0 / 6.0, 1e-12);
}

TEST(TraceStats, UniqueFootprints)
{
    std::vector<Inst> v;
    // 16 instructions over two 32-byte code lines, repeated twice.
    for (int rep = 0; rep < 2; ++rep)
        for (int i = 0; i < 16; ++i)
            v.push_back(make(0x1000 + 4u * static_cast<Addr>(i),
                             OpClass::IntAlu));
    VectorTraceSource src(v);
    const TraceStats s = analyze(src, 100);
    EXPECT_EQ(s.unique_pcs, 16u);
    EXPECT_EQ(s.unique_code_lines, 2u);
}

TEST(TraceStats, SequentialDataDetection)
{
    VectorTraceSource src({
        make(0x1000, OpClass::Load, 0x20000000),
        make(0x1004, OpClass::Load, 0x20000004), // same line
        make(0x1008, OpClass::Load, 0x20000020), // next line
        make(0x100c, OpClass::Load, 0x30000000), // jump
    });
    const TraceStats s = analyze(src, 100);
    EXPECT_EQ(s.data_refs, 4u);
    EXPECT_EQ(s.seq_data_refs, 2u);
}

TEST(TraceStats, LimitTruncates)
{
    std::vector<Inst> v(50, make(0x1000, OpClass::IntAlu));
    VectorTraceSource src(v);
    EXPECT_EQ(analyze(src, 10).insts, 10u);
}

TEST(TraceStats, SummaryIsReadable)
{
    VectorTraceSource src({make(0x1000, OpClass::Load, 0x20000000)});
    const TraceStats s = analyze(src, 10);
    const std::string text = s.summary();
    EXPECT_NE(text.find("instructions: 1"), std::string::npos);
    EXPECT_NE(text.find("load"), std::string::npos);
}

TEST(TraceStats, EmptyStream)
{
    VectorTraceSource src(std::vector<Inst>{});
    const TraceStats s = analyze(src, 10);
    EXPECT_EQ(s.insts, 0u);
    EXPECT_EQ(s.data_refs, 0u);
    EXPECT_DOUBLE_EQ(s.frac(OpClass::Load), 0.0);
}

} // namespace
