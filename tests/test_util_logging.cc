/**
 * @file
 * Thread-safety test for util/logging. Functionally this only checks
 * that concurrent warn()/inform() calls neither crash nor tear; its
 * real teeth come from the TSan preset (scripts/check.sh tsan), where
 * any unlocked access to the shared stderr stream is reported as a
 * data race.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/logging.hh"
#include "util/parallel.hh"

namespace
{

using namespace aurora;

TEST(Logging, ConcurrentWarnAndInformDoNotRace)
{
    constexpr unsigned THREADS = 8;
    constexpr int LINES = 25;

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < THREADS; ++t) {
        pool.emplace_back([t]() {
            for (int i = 0; i < LINES; ++i) {
                const std::string msg =
                    detail::concat("tsan-probe thread ", t, " line ",
                                   i);
                if ((t + static_cast<unsigned>(i)) % 2 == 0)
                    warn(msg);
                else
                    inform(msg);
            }
        });
    }
    for (auto &t : pool)
        t.join();
    SUCCEED();
}

TEST(Logging, ParallelForBodiesMayLog)
{
    // The sweep engine logs per-job progress from worker threads;
    // exercise exactly that path.
    parallelFor(32, 8, [](std::size_t i) {
        inform(detail::concat("parallel log probe ", i));
    });
    SUCCEED();
}

TEST(Logging, ConcatFoldsMixedTypes)
{
    EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
    EXPECT_EQ(detail::concat(), "");
}

} // namespace
