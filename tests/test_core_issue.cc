/**
 * @file
 * Issue-stage specifics: pair co-issue rules, FP queue back-pressure
 * classification, and the internal consistency of the issue-width
 * histogram.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "core/machine_config.hh"
#include "core/simulator.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_source.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using trace::Inst;
using trace::OpClass;

Inst
op(OpClass cls, Addr pc, RegIndex a = NO_REG, RegIndex b = NO_REG,
   RegIndex d = NO_REG)
{
    Inst i;
    i.op = cls;
    i.pc = pc;
    i.next_pc = pc + 4;
    i.src_a = a;
    i.src_b = b;
    i.dst = d;
    return i;
}

RunResult
run(std::vector<Inst> insts, MachineConfig cfg)
{
    trace::VectorTraceSource src(std::move(insts));
    Processor cpu(cfg, src);
    return cpu.run();
}

TEST(IssueStage, BranchAndDelaySlotCoIssue)
{
    // not-taken branch at EVEN slot + independent ALU delay slot:
    // every pair dual-issues.
    std::vector<Inst> v;
    Addr pc = 0x1000;
    for (int i = 0; i < 200; ++i) {
        Inst br = op(OpClass::Branch, pc, 1, 2);
        br.taken = false;
        v.push_back(br);
        pc += 4;
        v.push_back(op(OpClass::IntAlu, pc, 3, 4,
                       static_cast<RegIndex>(8 + i % 8)));
        pc += 4;
    }
    auto cfg = baselineModel();
    cfg.prefetch.depth = 8;
    const auto r = run(v, cfg);
    EXPECT_LT(r.cpi(), 0.8) << "branch+slot pairs must co-issue";
}

TEST(IssueStage, FpArithBackPressureIsFpQueue)
{
    // A divide storm with a 1-entry instruction queue: the IPU must
    // stall on FP-Queue, not anything else.
    std::vector<Inst> v;
    Addr pc = 0x1000;
    for (int i = 0; i < 60; ++i) {
        Inst f = op(OpClass::FpDiv, pc);
        f.fsrc_a = 2;
        f.fsrc_b = 4;
        f.fdst = static_cast<RegIndex>(6 + 2 * (i % 8));
        v.push_back(f);
        pc += 4;
    }
    auto cfg = baselineModel();
    cfg.fpu.inst_queue = 1;
    const auto r = run(v, cfg);
    EXPECT_GT(r.stallCpi(StallCause::FpQueue), 5.0)
        << "19-cycle divides behind a 1-entry queue";
    EXPECT_DOUBLE_EQ(r.stallCpi(StallCause::RobFull), 0.0);
}

TEST(IssueStage, FpLoadBackPressureIsFpQueue)
{
    std::vector<Inst> v;
    Addr pc = 0x1000;
    for (int i = 0; i < 60; ++i) {
        Inst f = op(OpClass::FpLoad, pc, 1);
        f.fdst = static_cast<RegIndex>(2 * (i % 16));
        f.eff_addr = 0x20000000 + 2048u * static_cast<Addr>(i);
        f.size = 4;
        v.push_back(f);
        pc += 4;
    }
    auto cfg = baselineModel();
    cfg.fpu.load_queue = 1;
    cfg.lsu.mshr_entries = 8; // keep the LSU out of the way
    const auto r = run(v, cfg);
    EXPECT_GT(r.stallCpi(StallCause::FpQueue), 1.0)
        << "load-queue entries held for the full miss latency";
}

TEST(IssueStage, WidthHistogramIsConsistent)
{
    trace::SyntheticWorkload w(trace::espresso());
    trace::LimitedTraceSource limited(w, 50000);
    Processor cpu(baselineModel(), limited);
    const auto r = cpu.run();

    Cycle total_cycles = 0;
    Count total_insts = 0;
    for (unsigned width = 0; width < 3; ++width) {
        total_cycles += r.issue_width_cycles[width];
        total_insts += width * r.issue_width_cycles[width];
    }
    EXPECT_EQ(total_cycles, r.cycles);
    EXPECT_EQ(total_insts, r.instructions);
    // Fractions sum to one.
    EXPECT_NEAR(r.issueWidthFrac(0) + r.issueWidthFrac(1) +
                    r.issueWidthFrac(2),
                1.0, 1e-9);
}

TEST(IssueStage, SingleIssueNeverReportsWidthTwo)
{
    trace::SyntheticWorkload w(trace::li());
    trace::LimitedTraceSource limited(w, 30000);
    Processor cpu(baselineModel().withIssueWidth(1), limited);
    const auto r = cpu.run();
    EXPECT_EQ(r.issue_width_cycles[2], 0u);
}

TEST(IssueStage, OccupancyStatsAreBounded)
{
    const auto r =
        simulate(baselineModel(), trace::gcc(), 50000);
    EXPECT_GE(r.avg_rob_occupancy, 0.0);
    EXPECT_LE(r.avg_rob_occupancy, 6.0);
    EXPECT_GE(r.avg_mshr_occupancy, 0.0);
    EXPECT_LE(r.avg_mshr_occupancy, 2.0);
}

TEST(IssueStage, MshrOccupancyTracksPressure)
{
    // More MSHRs => higher average occupancy is *possible*; with one
    // MSHR occupancy is capped at 1.
    const auto one = simulate(baselineModel().withMshrs(1),
                              trace::espresso(), 50000);
    EXPECT_LE(one.avg_mshr_occupancy, 1.0);
}

} // namespace
