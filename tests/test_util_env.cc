/**
 * @file
 * Strict environment parsing tests — notably the AURORA_BENCH_INSTS
 * regression where strtoull silently yielded 0 on malformed input and
 * turned every bench into a no-op.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.hh"

namespace
{

using namespace aurora;

constexpr const char *VAR = "AURORA_TEST_ENV_COUNT";

class EnvCount : public ::testing::Test
{
  protected:
    void TearDown() override { ::unsetenv(VAR); }

    void
    set(const char *value)
    {
        ASSERT_EQ(::setenv(VAR, value, 1), 0);
    }
};

TEST(ParseCount, AcceptsPlainDecimals)
{
    EXPECT_EQ(parseCount("0"), Count{0});
    EXPECT_EQ(parseCount("200000"), Count{200000});
    EXPECT_EQ(parseCount("  42  "), Count{42});
    EXPECT_EQ(parseCount("18446744073709551615"), ~Count{0});
}

TEST(ParseCount, RejectsMalformedInput)
{
    EXPECT_FALSE(parseCount(""));
    EXPECT_FALSE(parseCount("   "));
    EXPECT_FALSE(parseCount("-5"));
    EXPECT_FALSE(parseCount("+5"));
    EXPECT_FALSE(parseCount("12abc"));
    EXPECT_FALSE(parseCount("abc"));
    EXPECT_FALSE(parseCount("2e6"));
    EXPECT_FALSE(parseCount("0x10"));
    EXPECT_FALSE(parseCount("1 2"));
    EXPECT_FALSE(parseCount("3.14"));
    // One past uint64 max: must report overflow, not wrap.
    EXPECT_FALSE(parseCount("18446744073709551616"));
    EXPECT_FALSE(parseCount("99999999999999999999999"));
}

TEST_F(EnvCount, UnsetReturnsFallback)
{
    ::unsetenv(VAR);
    EXPECT_EQ(envCount(VAR, 200000), Count{200000});
}

TEST_F(EnvCount, ValidValueWins)
{
    set("1234");
    EXPECT_EQ(envCount(VAR, 200000), Count{1234});
}

TEST_F(EnvCount, MalformedFallsBackInsteadOfZero)
{
    // The old strtoull path returned 0 here — a silent no-op bench.
    set("2OOOOO");
    EXPECT_EQ(envCount(VAR, 200000), Count{200000});
    set("");
    EXPECT_EQ(envCount(VAR, 200000), Count{200000});
    set("-1");
    EXPECT_EQ(envCount(VAR, 200000), Count{200000});
}

TEST_F(EnvCount, ZeroGuardedByMinimum)
{
    set("0");
    EXPECT_EQ(envCount(VAR, 200000), Count{200000});
    // An explicit min of 0 admits zero.
    EXPECT_EQ(envCount(VAR, 200000, 0), Count{0});
}

TEST_F(EnvCount, BelowMinimumFallsBack)
{
    set("2");
    EXPECT_EQ(envCount(VAR, 64, 8), Count{64});
    set("8");
    EXPECT_EQ(envCount(VAR, 64, 8), Count{8});
}

} // namespace
