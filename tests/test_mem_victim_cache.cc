/**
 * @file
 * Unit tests for the victim cache, including its integration with
 * the LSU's direct-mapped data cache.
 */

#include <gtest/gtest.h>

#include "ipu/lsu.hh"
#include "mem/victim_cache.hh"

namespace
{

using namespace aurora;
using namespace aurora::mem;

TEST(VictimCache, DisabledWhenZeroLines)
{
    VictimCache vc(0, 32);
    EXPECT_FALSE(vc.enabled());
    vc.insert(0x1000, 0);
    EXPECT_FALSE(vc.probe(0x1000, 1));
    EXPECT_EQ(vc.hitRate().total(), 0u)
        << "disabled cache records nothing";
}

TEST(VictimCache, CapturesAndReturnsVictims)
{
    VictimCache vc(4, 32);
    vc.insert(0x1000, 0);
    EXPECT_TRUE(vc.probe(0x1010, 1)) << "same line, different word";
    // The hit removed the line (swapped back to the primary cache).
    EXPECT_FALSE(vc.probe(0x1000, 2));
}

TEST(VictimCache, LruReplacement)
{
    VictimCache vc(2, 32);
    vc.insert(0x1000, 0);
    vc.insert(0x2000, 1);
    vc.insert(0x3000, 2); // evicts 0x1000
    EXPECT_FALSE(vc.probe(0x1000, 3));
    EXPECT_TRUE(vc.probe(0x2000, 4));
    EXPECT_TRUE(vc.probe(0x3000, 5));
}

TEST(VictimCache, ReinsertRefreshes)
{
    VictimCache vc(2, 32);
    vc.insert(0x1000, 0);
    vc.insert(0x2000, 1);
    vc.insert(0x1000, 2); // refresh, no new entry
    vc.insert(0x3000, 3); // evicts 0x2000 (LRU)
    EXPECT_TRUE(vc.probe(0x1000, 4));
    EXPECT_FALSE(vc.probe(0x2000, 5));
}

struct LsuFixture
{
    explicit LsuFixture(unsigned victim_lines)
        : biu(BiuConfig{17, 4, 8})
    {
        PrefetchConfig pcfg;
        pcfg.enabled = false; // isolate the victim path
        pfu.emplace(pcfg, biu);
        ipu::LsuConfig cfg;
        cfg.dcache_bytes = 1024; // tiny: conflicts are easy to make
        cfg.mshr_entries = 4;
        cfg.victim_lines = victim_lines;
        lsu.emplace(cfg, WriteCacheConfig{}, biu, *pfu);
    }

    void
    runTo(Cycle target)
    {
        for (; now <= target; ++now)
            lsu->tick(now);
        now = target;
    }

    Biu biu;
    std::optional<PrefetchUnit> pfu;
    std::optional<ipu::Lsu> lsu;
    Cycle now = 0;
};

TEST(VictimCache, CatchesConflictMissesInTheLsu)
{
    LsuFixture f(4);
    f.lsu->tick(0);
    // Two addresses that conflict in a 1 KB direct-mapped cache.
    f.lsu->load(0x20000000, 4, 0);
    f.runTo(100);
    f.lsu->load(0x20000400, 4, 100); // conflicts; evicts the first
    f.runTo(200);
    const Count reads_before = f.biu.demandReads();
    const Cycle ready = f.lsu->load(0x20000000, 4, 200);
    EXPECT_EQ(f.biu.demandReads(), reads_before)
        << "victim hit needs no BIU transaction";
    EXPECT_LE(ready, 200u + 3 + 1) << "swap latency only";
    EXPECT_EQ(f.lsu->victims().hitRate().hits(), 1u);
}

TEST(VictimCache, WithoutItConflictsGoOffChip)
{
    LsuFixture f(0);
    f.lsu->tick(0);
    f.lsu->load(0x20000000, 4, 0);
    f.runTo(100);
    f.lsu->load(0x20000400, 4, 100);
    f.runTo(200);
    const Count reads_before = f.biu.demandReads();
    const Cycle ready = f.lsu->load(0x20000000, 4, 200);
    EXPECT_EQ(f.biu.demandReads(), reads_before + 1);
    EXPECT_GE(ready, 200u + 17);
}

} // namespace
