/**
 * @file
 * Exporter tests: --stats-json documents round-trip through the
 * parser with the advertised schema, observer-derived metrics obey
 * the same conservation laws the post-run auditor enforces on the
 * simulator's own ledger, histogram bucket accounting balances, the
 * CSV stays rectangular, and trace-event documents are valid Chrome
 * trace JSON with non-decreasing timestamps per track.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <utility>

#include "core/audit.hh"
#include "core/simulator.hh"
#include "telemetry/export.hh"
#include "telemetry/json.hh"
#include "telemetry/sampler.hh"
#include "telemetry/trace_event.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using namespace aurora::telemetry;

constexpr Count N = 20000;

/** One run with a sampler attached, plus its registry. */
struct SampledRun
{
    Registry registry;
    RunResult result;
};

SampledRun
sampledRun(const char *bench = "espresso",
           const MachineConfig &machine = baselineModel())
{
    SampledRun out;
    RunSampler sampler(out.registry);
    out.result = simulate(machine, trace::profileByName(bench), N,
                          WatchdogConfig{}, &sampler);
    return out;
}

Count
counterValue(const Registry &reg, std::string_view name)
{
    const Counter *c = reg.findCounter(name);
    EXPECT_NE(c, nullptr) << name;
    return c ? c->value() : 0;
}

TEST(Export, RunDocumentRoundTripsWithSchema)
{
    SampledRun run = sampledRun();
    std::ostringstream os;
    writeRunDocument(os, run.result, &run.registry);

    std::string error;
    const auto doc = parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    EXPECT_EQ(doc->find("schema")->string, RUN_SCHEMA);
    const JsonValue *r = doc->find("run");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->find("model")->string, run.result.model);
    EXPECT_EQ(r->find("benchmark")->string, run.result.benchmark);
    EXPECT_EQ(r->find("instructions")->number,
              static_cast<double>(run.result.instructions));
    EXPECT_EQ(r->find("cycles")->number,
              static_cast<double>(run.result.cycles));
    // Doubles round-trip bit-exactly through the document.
    EXPECT_EQ(r->find("cpi")->number, run.result.cpi());

    // Occupancy summaries are ordered percentiles.
    const JsonValue *occ = r->find("occupancy");
    ASSERT_NE(occ, nullptr);
    for (const char *key :
         {"rob", "mshr", "fp_instq", "fp_loadq", "fp_storeq"}) {
        const JsonValue *o = occ->find(key);
        ASSERT_NE(o, nullptr) << key;
        EXPECT_LE(o->find("p50")->number, o->find("p95")->number)
            << key;
        EXPECT_LE(o->find("p95")->number, o->find("max")->number)
            << key;
    }

    // The metrics member carries the full registered catalog.
    const JsonValue *metrics = r->find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->find("counters")->array.size(),
              run.registry.counters().size());
    EXPECT_EQ(metrics->find("histograms")->array.size(),
              run.registry.histograms().size());
}

TEST(Export, ObserverMetricsObeyLedgerConservation)
{
    // The sampler's counters are built purely from observer events;
    // the ledger is the simulator's own accounting. Both views must
    // agree — the observer stream neither drops nor invents events.
    for (const char *bench : {"espresso", "nasa7"}) {
        SCOPED_TRACE(bench);
        SampledRun run = sampledRun(bench);
        const Registry &reg = run.registry;
        const RunResult &res = run.result;
        EXPECT_NO_THROW(auditRun(res));

        EXPECT_EQ(counterValue(reg, "sim.cycles"), res.cycles);
        EXPECT_EQ(counterValue(reg, "issue.instructions"),
                  res.instructions);
        EXPECT_EQ(counterValue(reg, "retire.instructions"),
                  res.ledger.retired);
        EXPECT_EQ(counterValue(reg, "icache.hits"),
                  res.ledger.icache_hits);
        EXPECT_EQ(counterValue(reg, "icache.misses"),
                  res.ledger.icache_misses);
        EXPECT_EQ(counterValue(reg, "dcache.hits"),
                  res.ledger.dcache_hits);
        EXPECT_EQ(counterValue(reg, "dcache.misses"),
                  res.ledger.dcache_misses);
        EXPECT_EQ(counterValue(reg, "mshr.allocations"),
                  res.ledger.mshr_allocations);
        // Drain releases happen after the last cycle's delta event;
        // the dedicated drain counter closes the balance.
        EXPECT_EQ(counterValue(reg, "mshr.releases") +
                      counterValue(reg, "mshr.drain_releases"),
                  res.ledger.mshr_releases);

        // Each stall cause observed exactly as charged.
        for (std::size_t c = 0; c < NUM_STALL_CAUSES; ++c) {
            const auto cause = static_cast<StallCause>(c);
            EXPECT_EQ(counterValue(
                          reg, std::string("stall.") +
                                   std::string(stallSlug(cause))),
                      res.stalls[c])
                << stallSlug(cause);
        }

        // Retirement burst histogram: count = retire events, sample
        // sum = retired instructions.
        const Histogram *burst = reg.findHistogram("retire.burst");
        ASSERT_NE(burst, nullptr);
        EXPECT_EQ(burst->count(),
                  counterValue(reg, "retire.events"));
        EXPECT_EQ(burst->sum(), res.ledger.retired);

        // The sampler's per-cycle ROB occupancy must reproduce the
        // processor's always-on summary exactly.
        const Histogram *rob = reg.findHistogram("occupancy.rob");
        ASSERT_NE(rob, nullptr);
        EXPECT_EQ(rob->count(), res.cycles);
        EXPECT_EQ(rob->mean(), res.avg_rob_occupancy);
        EXPECT_EQ(rob->percentile(0.50), res.rob_occupancy.p50);
        EXPECT_EQ(rob->percentile(0.95), res.rob_occupancy.p95);
        EXPECT_EQ(rob->maxSample(), res.rob_occupancy.max);

        // FP queue flow balances: everything enqueued is dequeued by
        // the end of a completed run.
        for (const char *q : {"fp_instq", "fp_loadq", "fp_storeq"}) {
            EXPECT_EQ(counterValue(reg, std::string(q) + ".enqueued"),
                      counterValue(reg, std::string(q) + ".dequeued"))
                << q;
        }

        // Load latency histograms partition the observed loads.
        const Histogram *lat = reg.findHistogram("latency.load");
        const Histogram *miss =
            reg.findHistogram("latency.load_miss");
        ASSERT_NE(lat, nullptr);
        ASSERT_NE(miss, nullptr);
        EXPECT_EQ(lat->count(), counterValue(reg, "lsu.loads"));
        EXPECT_EQ(miss->count(),
                  counterValue(reg, "lsu.load_misses"));
        EXPECT_LE(miss->count(), lat->count());
    }
}

TEST(Export, HistogramBucketAccountingBalancesInTheDocument)
{
    SampledRun run = sampledRun("nasa7");
    std::ostringstream os;
    writeRunDocument(os, run.result, &run.registry);
    std::string error;
    const auto doc = parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    const JsonValue *hists =
        doc->find("run")->find("metrics")->find("histograms");
    ASSERT_TRUE(hists && hists->isArray());
    EXPECT_FALSE(hists->array.empty());
    for (const JsonValue &h : hists->array) {
        const std::string &name = h.find("name")->string;
        double in_buckets = 0;
        for (const JsonValue &b : h.find("buckets")->array)
            in_buckets += b.number;
        EXPECT_EQ(in_buckets + h.find("overflow")->number,
                  h.find("count")->number)
            << name;
        EXPECT_LE(h.find("p50")->number, h.find("p95")->number)
            << name;
        EXPECT_LE(h.find("p95")->number, h.find("max")->number)
            << name;
    }
}

TEST(Export, SuiteDocumentCarriesOrderedRuns)
{
    SampledRun a = sampledRun("espresso");
    RunResult plain =
        simulate(baselineModel(), trace::li(), N);
    std::vector<SuiteEntry> entries;
    entries.push_back({&a.result, &a.registry});
    entries.push_back({&plain, nullptr});

    std::ostringstream os;
    writeSuiteDocument(os, entries);
    std::string error;
    const auto doc = parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    EXPECT_EQ(doc->find("schema")->string, SUITE_SCHEMA);
    const JsonValue *runs = doc->find("runs");
    ASSERT_TRUE(runs && runs->isArray());
    ASSERT_EQ(runs->array.size(), 2u);
    EXPECT_EQ(runs->array[0].find("benchmark")->string, "espresso");
    EXPECT_NE(runs->array[0].find("metrics"), nullptr);
    EXPECT_EQ(runs->array[1].find("benchmark")->string, "li");
    EXPECT_EQ(runs->array[1].find("metrics"), nullptr);
}

TEST(Export, CsvIsRectangularAndQuoted)
{
    const std::string header = statsCsvHeader();
    const auto count_fields = [](const std::string &line) {
        std::size_t fields = 1;
        bool quoted = false;
        for (const char c : line) {
            if (c == '"')
                quoted = !quoted;
            else if (c == ',' && !quoted)
                ++fields;
        }
        return fields;
    };

    SampledRun run = sampledRun();
    const std::string row = statsCsvRow(run.result);
    EXPECT_EQ(count_fields(header), count_fields(row));
    EXPECT_EQ(row.find(run.result.model), 0u);

    // RFC 4180 quoting: a name with a comma and a quote survives.
    RunResult odd = run.result;
    odd.model = "model,\"odd\"";
    const std::string odd_row = statsCsvRow(odd);
    EXPECT_EQ(count_fields(odd_row), count_fields(header));
    EXPECT_NE(odd_row.find("\"model,\"\"odd\"\"\""),
              std::string::npos);
}

TEST(TraceEvents, DocumentIsValidAndMonotonicPerTrack)
{
    constexpr Cycle MAX_CYCLES = 400;
    TraceEventLog log;
    TraceEventObserver observer(log, MAX_CYCLES);
    simulate(baselineModel(), trace::profileByName("nasa7"), 3000,
             WatchdogConfig{}, &observer);
    ASSERT_GT(log.size(), 0u);

    std::ostringstream os;
    log.write(os);
    std::string error;
    const auto doc = parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_TRUE(events && events->isArray());
    EXPECT_EQ(events->array.size(), log.size());

    std::map<std::pair<double, double>, double> last_ts;
    std::size_t spans = 0;
    for (const JsonValue &e : events->array) {
        ASSERT_TRUE(e.find("name") && e.find("name")->isString());
        ASSERT_TRUE(e.find("ph") && e.find("ph")->isString());
        const std::string &ph = e.find("ph")->string;
        ASSERT_EQ(ph.size(), 1u);
        if (ph == "M")
            continue; // metadata is timeless
        ASSERT_TRUE(e.find("ts") && e.find("ts")->isNumber());
        const double ts = e.find("ts")->number;
        // The observer stops recording at its cycle bound.
        EXPECT_LT(ts, static_cast<double>(MAX_CYCLES));
        const std::pair<double, double> track(
            e.find("pid")->number, e.find("tid")->number);
        const auto it = last_ts.find(track);
        if (it != last_ts.end()) {
            EXPECT_GE(ts, it->second);
        }
        last_ts[track] = ts;
        if (ph == "X") {
            ++spans;
            EXPECT_GE(e.find("dur")->number, 0.0);
        }
        if (ph == "i") {
            EXPECT_EQ(e.find("s")->string, "t");
        }
    }
    EXPECT_GT(spans, 0u);
    EXPECT_GT(last_ts.size(), 1u); // more than one lane in use
}

} // namespace
