/**
 * @file
 * Unit tests for the Figure 3 predecode logic.
 */

#include <gtest/gtest.h>

#include "isa/predecode.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"

namespace
{

using namespace aurora;
using namespace aurora::isa;
using trace::Inst;
using trace::OpClass;

Inst
at(Addr pc, OpClass op = OpClass::IntAlu, RegIndex a = 1,
   RegIndex b = 2, RegIndex d = 8)
{
    Inst i;
    i.pc = pc;
    i.next_pc = pc + 4;
    i.op = op;
    i.src_a = a;
    i.src_b = b;
    i.dst = d;
    return i;
}

TEST(Predecode, AlignedPairDetection)
{
    EXPECT_TRUE(isAlignedPair(at(0x1000), at(0x1004)));
    EXPECT_FALSE(isAlignedPair(at(0x1004), at(0x1008)))
        << "0x1004 is an ODD slot";
    EXPECT_FALSE(isAlignedPair(at(0x1000), at(0x1008)))
        << "not consecutive";
}

TEST(Predecode, TrueDependencyOnIntegerResult)
{
    const Inst producer = at(0x1000, OpClass::IntAlu, 1, 2, 8);
    EXPECT_TRUE(trueDependency(producer,
                               at(0x1004, OpClass::IntAlu, 8, 3, 9)));
    EXPECT_TRUE(trueDependency(producer,
                               at(0x1004, OpClass::IntAlu, 3, 8, 9)));
    EXPECT_FALSE(trueDependency(producer,
                                at(0x1004, OpClass::IntAlu, 3, 4, 9)));
}

TEST(Predecode, RegisterZeroIsNeverADependency)
{
    Inst producer = at(0x1000, OpClass::IntAlu, 1, 2, 0);
    EXPECT_FALSE(trueDependency(producer,
                                at(0x1004, OpClass::IntAlu, 0, 0, 9)))
        << "$zero is hardwired";
}

TEST(Predecode, FpDependency)
{
    Inst producer = at(0x1000, OpClass::FpAdd);
    producer.dst = NO_REG;
    producer.fdst = 6;
    Inst consumer = at(0x1004, OpClass::FpMul);
    consumer.src_a = consumer.src_b = NO_REG;
    consumer.fsrc_a = 6;
    EXPECT_TRUE(trueDependency(producer, consumer));
    consumer.fsrc_a = 8;
    consumer.fsrc_b = 6;
    EXPECT_TRUE(trueDependency(producer, consumer));
    consumer.fsrc_b = 10;
    EXPECT_FALSE(trueDependency(producer, consumer));
}

TEST(Predecode, DualIssueRules)
{
    // Independent pair: allowed.
    EXPECT_TRUE(dualIssueAllowed(at(0x1000),
                                 at(0x1004, OpClass::IntAlu, 3, 4, 9)));
    // Dependent pair: the DI bit.
    EXPECT_FALSE(dualIssueAllowed(
        at(0x1000, OpClass::IntAlu, 1, 2, 8),
        at(0x1004, OpClass::IntAlu, 8, 4, 9)));
    // Two memory operations: single memory access per cycle.
    Inst m1 = at(0x1000, OpClass::Load, 1, NO_REG, 8);
    Inst m2 = at(0x1004, OpClass::Store, 2, 3, NO_REG);
    EXPECT_FALSE(dualIssueAllowed(m1, m2));
    // Memory + ALU is fine.
    EXPECT_TRUE(dualIssueAllowed(m1,
                                 at(0x1004, OpClass::IntAlu, 3, 4,
                                    9)));
    // Misaligned: never.
    EXPECT_FALSE(dualIssueAllowed(at(0x1004), at(0x1008)));
}

TEST(Predecode, BranchPlusDelaySlotCanPair)
{
    Inst br = at(0x1000, OpClass::Branch, 1, 2, NO_REG);
    br.dst = NO_REG;
    const Inst slot = at(0x1004, OpClass::IntAlu, 3, 4, 9);
    EXPECT_TRUE(dualIssueAllowed(br, slot));
}

TEST(Predecode, PairFieldsDiAndCont)
{
    Inst br = at(0x1000, OpClass::Branch, 1, 2, NO_REG);
    br.dst = NO_REG;
    br.taken = true;
    Inst slot = at(0x1004, OpClass::IntAlu, 3, 4, 9);
    slot.next_pc = 0x2000; // branch target
    const PairFields f = predecodePair(br, slot, 0x7ff);
    EXPECT_TRUE(f.cont);
    EXPECT_FALSE(f.di);
    EXPECT_EQ(f.next_index, 0x2000u & 0x7ff);
}

TEST(Predecode, PairFieldsDualMem)
{
    Inst m1 = at(0x1000, OpClass::Load, 1, NO_REG, 8);
    Inst m2 = at(0x1004, OpClass::FpStore);
    m2.src_a = 2;
    m2.fsrc_a = 4;
    m2.dst = NO_REG;
    const PairFields f = predecodePair(m1, m2, 0x7ff);
    EXPECT_TRUE(f.dual_mem);
    EXPECT_FALSE(f.cont);
}

TEST(Predecode, WorkloadPairsNeverHoldTwoControlOps)
{
    // The MIPS delay-slot rule means predecodePair's assertion must
    // hold over every aligned pair the generator emits.
    trace::SyntheticWorkload w(trace::gcc());
    Inst prev, cur;
    ASSERT_TRUE(w.next(prev));
    for (int i = 0; i < 50000; ++i) {
        ASSERT_TRUE(w.next(cur));
        if (isAlignedPair(prev, cur))
            predecodePair(prev, cur, 0x7ff); // must not panic
        prev = cur;
    }
}

TEST(PredecodeDeath, UnalignedPairPanics)
{
    EXPECT_DEATH(predecodePair(at(0x1004), at(0x1008), 0x7ff),
                 "aligned");
}

} // namespace
