/**
 * @file
 * Unit tests for FPU functional unit timing.
 */

#include <gtest/gtest.h>

#include "fpu/functional_unit.hh"

namespace
{

using namespace aurora;
using namespace aurora::fpu;

TEST(FunctionalUnit, PipelinedAcceptsEveryCycle)
{
    FunctionalUnit add({3, true}, "add");
    EXPECT_TRUE(add.canIssue(0));
    EXPECT_EQ(add.issue(0), 3u);
    EXPECT_FALSE(add.canIssue(0)) << "one initiation per cycle";
    EXPECT_TRUE(add.canIssue(1));
    EXPECT_EQ(add.issue(1), 4u);
    EXPECT_EQ(add.ops(), 2u);
}

TEST(FunctionalUnit, IterativeBlocksForFullLatency)
{
    FunctionalUnit div({19, false}, "div");
    EXPECT_EQ(div.issue(0), 19u);
    for (Cycle t = 1; t < 19; ++t)
        EXPECT_FALSE(div.canIssue(t)) << "busy at " << t;
    EXPECT_TRUE(div.canIssue(19));
}

TEST(FunctionalUnit, LatencyOnePipelined)
{
    FunctionalUnit u({1, true}, "fast");
    EXPECT_EQ(u.issue(5), 6u);
    EXPECT_TRUE(u.canIssue(6));
}

TEST(FunctionalUnit, IterativeAfterIdleGap)
{
    FunctionalUnit mul({5, false}, "mul");
    mul.issue(0);
    EXPECT_TRUE(mul.canIssue(100));
    EXPECT_EQ(mul.issue(100), 105u);
}

TEST(FunctionalUnitDeath, IssueWhileBusyPanics)
{
    FunctionalUnit mul({5, false}, "mul");
    mul.issue(0);
    EXPECT_DEATH(mul.issue(2), "busy");
}

TEST(FunctionalUnitDeath, ZeroLatencyPanics)
{
    EXPECT_DEATH(FunctionalUnit({0, true}, "bad"), "latency");
}

} // namespace
