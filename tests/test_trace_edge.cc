/**
 * @file
 * Edge-case tests for the synthetic workload generator: degenerate
 * profiles must still produce well-formed streams.
 */

#include <gtest/gtest.h>

#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_stats.hh"

namespace
{

using namespace aurora;
using namespace aurora::trace;

WorkloadProfile
minimal()
{
    WorkloadProfile p;
    p.name = "minimal";
    p.seed = 99;
    p.hot_code_bytes = 1024;
    p.num_hot_loops = 1;
    p.hot_data_bytes = 64;
    p.total_data_bytes = 64 * 1024;
    return p;
}

/** The stream stays well-formed: consume N and check basics. */
void
checkWellFormed(WorkloadProfile p, Count n = 30000)
{
    SyntheticWorkload w(std::move(p));
    Inst prev, cur;
    ASSERT_TRUE(w.next(prev));
    for (Count i = 1; i < n; ++i) {
        ASSERT_TRUE(w.next(cur));
        ASSERT_EQ(prev.next_pc, cur.pc);
        ASSERT_EQ(prev.pc % 4, 0u);
        if (isMem(prev.op)) {
            ASSERT_NE(prev.eff_addr, 0u);
        }
        prev = cur;
    }
}

TEST(WorkloadEdge, SingleLoopWorkload)
{
    checkWellFormed(minimal());
}

TEST(WorkloadEdge, AlwaysHotNeverGoesCold)
{
    auto p = minimal();
    p.hot_fraction = 1.0;
    SyntheticWorkload w(p);
    // All pcs must stay within the hot region (+ exit stubs).
    Inst inst;
    const Addr limit = SyntheticWorkload::CODE_BASE +
                       p.hot_code_bytes + 1024;
    for (int i = 0; i < 30000; ++i) {
        ASSERT_TRUE(w.next(inst));
        ASSERT_LT(inst.pc, limit);
    }
}

TEST(WorkloadEdge, MostlyColdStillRuns)
{
    auto p = minimal();
    p.hot_fraction = 0.05;
    checkWellFormed(p);
}

TEST(WorkloadEdge, NoMemoryOperations)
{
    auto p = minimal();
    p.frac_load = 0.0;
    p.frac_store = 0.0;
    SyntheticWorkload w(p);
    TraceStats s = analyze(w, 20000);
    EXPECT_EQ(s.data_refs, 0u);
}

TEST(WorkloadEdge, AllLoadsNoStores)
{
    auto p = minimal();
    p.frac_load = 0.6;
    p.frac_store = 0.0;
    SyntheticWorkload w(p);
    TraceStats s = analyze(w, 20000);
    EXPECT_EQ(s.count(OpClass::Store), 0u);
    EXPECT_GT(s.frac(OpClass::Load), 0.4);
}

TEST(WorkloadEdge, PureSequentialData)
{
    auto p = minimal();
    p.seq_fraction = 1.0;
    p.chase_fraction = 0.0;
    p.stack_fraction = 0.0;
    checkWellFormed(p);
}

TEST(WorkloadEdge, PureChaseData)
{
    auto p = minimal();
    p.seq_fraction = 0.0;
    p.chase_fraction = 1.0;
    p.stack_fraction = 0.0;
    checkWellFormed(p);
}

TEST(WorkloadEdge, TinyTripCounts)
{
    auto p = minimal();
    p.mean_trips = 1.0;
    checkWellFormed(p);
}

TEST(WorkloadEdge, HugeTripCounts)
{
    auto p = minimal();
    p.mean_trips = 10000.0;
    checkWellFormed(p);
}

TEST(WorkloadEdge, FpWithOnlyDivides)
{
    auto p = minimal();
    p.floating_point = true;
    p.frac_fp_arith = 0.3;
    p.fp_add_w = 0.0;
    p.fp_mul_w = 0.0;
    p.fp_div_w = 1.0;
    p.fp_cvt_w = 0.0;
    SyntheticWorkload w(p);
    TraceStats s = analyze(w, 20000);
    EXPECT_EQ(s.count(OpClass::FpAdd) + s.count(OpClass::FpMul) +
                  s.count(OpClass::FpCvt),
              0u);
    EXPECT_GT(s.count(OpClass::FpDiv), 100u);
}

TEST(WorkloadEdge, FpRunLengthOne)
{
    auto p = minimal();
    p.floating_point = true;
    p.frac_fp_arith = 0.3;
    p.fp_run_len = 1.0; // clustering disabled
    checkWellFormed(p);
}

TEST(WorkloadEdge, NopHeavyDelaySlots)
{
    auto p = minimal();
    p.delay_nop_frac = 1.0;
    SyntheticWorkload w(p);
    // Every delay slot is a NOP: after any taken transfer the next
    // instruction is a NOP.
    Inst prev, cur;
    ASSERT_TRUE(w.next(prev));
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(w.next(cur));
        if (prev.redirectsFetch()) {
            ASSERT_EQ(cur.op, OpClass::Nop);
        }
        prev = cur;
    }
}

TEST(WorkloadEdge, DeterminismSurvivesExtremeProfiles)
{
    auto p = minimal();
    p.hot_fraction = 0.5;
    p.chase_fraction = 0.9;
    p.seq_fraction = 0.1;
    SyntheticWorkload a(p), b(p);
    Inst x, y;
    for (int i = 0; i < 20000; ++i) {
        a.next(x);
        b.next(y);
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.eff_addr, y.eff_addr);
    }
}

TEST(WorkloadEdgeDeath, TooSmallHotCodeIsFatal)
{
    auto p = minimal();
    p.hot_code_bytes = 16;
    EXPECT_DEATH(SyntheticWorkload w(p), "too small");
}

TEST(WorkloadEdgeDeath, TooSmallHotDataIsFatal)
{
    auto p = minimal();
    p.hot_data_bytes = 8;
    EXPECT_DEATH(SyntheticWorkload w(p), "hot data");
}

} // namespace
