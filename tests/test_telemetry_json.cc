/**
 * @file
 * JSON toolkit tests: the writer emits structurally valid documents
 * (commas, nesting, escapes, raw fragments), numbers round-trip
 * bit-exactly, and the parser accepts everything the writer produces
 * while rejecting malformed input with a byte offset.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "telemetry/json.hh"

namespace
{

using namespace aurora::telemetry;

TEST(JsonEscape, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(jsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonNumber, RoundTripsBitExactly)
{
    for (const double v :
         {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 1e300, 5e-324,
          123456789.123456789,
          std::numeric_limits<double>::max()}) {
        const std::string text = jsonNumber(v);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    }
    // Integral doubles stay short and exact.
    EXPECT_EQ(jsonNumber(42.0), "42");
    // JSON has no NaN/Inf: the defensive rendering is null.
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
}

TEST(JsonWriter, NestedDocumentParsesBack)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("name").value("aurora");
    w.key("count").value(std::uint64_t{3});
    w.key("ratio").value(0.5);
    w.key("flag").value(true);
    w.key("list").beginArray();
    w.value(std::uint64_t{1}).value(std::uint64_t{2});
    w.beginObject().key("nested").value("yes").endObject();
    w.endArray();
    w.key("empty").beginObject().endObject();
    w.endObject();

    std::string error;
    const auto doc = parseJson(os.str(), &error);
    ASSERT_TRUE(doc) << error << " in " << os.str();
    ASSERT_TRUE(doc->isObject());
    EXPECT_EQ(doc->find("name")->string, "aurora");
    EXPECT_EQ(doc->find("count")->number, 3.0);
    EXPECT_EQ(doc->find("ratio")->number, 0.5);
    EXPECT_TRUE(doc->find("flag")->boolean);
    ASSERT_TRUE(doc->find("list")->isArray());
    ASSERT_EQ(doc->find("list")->array.size(), 3u);
    EXPECT_EQ(doc->find("list")->array[2].find("nested")->string,
              "yes");
    EXPECT_TRUE(doc->find("empty")->isObject());
    EXPECT_TRUE(doc->find("empty")->object.empty());
}

TEST(JsonWriter, RawFragmentsKeepSeparatorsConsistent)
{
    // raw() is how pre-rendered trace-event args enter a document;
    // the separator state machine must treat it as a normal value.
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("args").beginObject();
    w.key("a").raw("1");
    w.key("b").raw("\"two\"");
    w.endObject();
    w.key("after").value(std::uint64_t{3});
    w.endObject();

    std::string error;
    std::ostringstream os2;
    JsonWriter w2(os2);
    w2.beginArray();
    w2.raw("1").raw("2").beginObject().endObject();
    w2.endArray();

    EXPECT_TRUE(parseJson(os.str(), &error)) << error;
    const auto arr = parseJson(os2.str(), &error);
    ASSERT_TRUE(arr) << error << " in " << os2.str();
    ASSERT_EQ(arr->array.size(), 3u);
    EXPECT_EQ(arr->array[1].number, 2.0);
}

TEST(JsonParse, AcceptsEscapesAndUnicode)
{
    std::string error;
    const auto doc =
        parseJson("{\"s\": \"a\\n\\t\\\"\\\\\\u0041\\u00e9\"}", &error);
    ASSERT_TRUE(doc) << error;
    EXPECT_EQ(doc->find("s")->string, "a\n\t\"\\A\xc3\xa9");
}

TEST(JsonParse, ParsesNumbersAndLiterals)
{
    std::string error;
    const auto doc = parseJson(
        "[0, -1, 3.25, 1e3, 2.5E-2, true, false, null]", &error);
    ASSERT_TRUE(doc) << error;
    ASSERT_EQ(doc->array.size(), 8u);
    EXPECT_EQ(doc->array[1].number, -1.0);
    EXPECT_EQ(doc->array[2].number, 3.25);
    EXPECT_EQ(doc->array[3].number, 1000.0);
    EXPECT_EQ(doc->array[4].number, 0.025);
    EXPECT_EQ(doc->array[7].kind, JsonValue::Kind::Null);
}

TEST(JsonParse, RejectsMalformedInputWithOffset)
{
    const char *bad[] = {
        "",                  // empty
        "{",                 // unterminated object
        "[1, 2",             // unterminated array
        "{\"a\" 1}",         // missing colon
        "{\"a\": 1,}",       // trailing comma (strict)
        "\"unterminated",    // unterminated string
        "12.",               // digits required after the point
        "1e",                // exponent digits required
        "tru",               // bad literal
        "{} extra",          // trailing content
        "\"bad \\q escape\"" // unknown escape
    };
    for (const char *text : bad) {
        std::string error;
        EXPECT_FALSE(parseJson(text, &error)) << text;
        EXPECT_NE(error.find("at byte"), std::string::npos)
            << text << " -> " << error;
    }
}

} // namespace
