/**
 * @file
 * Post-run invariant auditor tests: healthy runs satisfy every
 * conservation law, each tampered counter class is detected as
 * SimError{Internal} with the failing ledger attached, and the
 * AURORA_AUDIT gate wires the audit into Processor::run().
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/audit.hh"
#include "core/simulator.hh"
#include "faultinject/faultinject.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
namespace fi = aurora::faultinject;
using util::SimErrorCode;

constexpr Count N = 20000;

RunResult
healthyRun(const char *bench = "espresso")
{
    return simulate(baselineModel(), trace::profileByName(bench), N);
}

/** Expect auditRun to throw Internal mentioning @p needle. */
void
expectViolation(const RunResult &r, const std::string &needle)
{
    try {
        auditRun(r);
        FAIL() << "audit passed a tampered result (" << needle << ")";
    } catch (const util::SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::Internal);
        const std::string what = e.what();
        EXPECT_NE(what.find(needle), std::string::npos) << what;
        // The failing ledger rides along for diagnosis.
        EXPECT_NE(what.find("retired="), std::string::npos) << what;
    }
}

TEST(Audit, HealthyRunsPassEveryInvariant)
{
    // Integer-heavy, FP-heavy, and a second model: the conservation
    // laws hold by construction, not by coincidence of one workload.
    for (const char *bench : {"espresso", "compress", "nasa7"}) {
        SCOPED_TRACE(bench);
        EXPECT_NO_THROW(auditRun(healthyRun(bench)));
    }
    EXPECT_NO_THROW(auditRun(
        simulate(largeModel(), trace::profileByName("doduc"), N)));
}

TEST(Audit, MiscountedStallCycleIsDetected)
{
    // The injected fault: one stall cause charged one extra cycle —
    // exactly the accounting-bug class the cycle-conservation law
    // exists to catch.
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        RunResult r = healthyRun();
        fi::miscountStall(r, seed);
        expectViolation(r, "total cycles");
    }
}

TEST(Audit, RetiredInstructionMismatchIsDetected)
{
    RunResult r = healthyRun();
    r.ledger.retired -= 1;
    expectViolation(r, "retired");
}

TEST(Audit, TraceLengthMismatchIsDetected)
{
    RunResult r = healthyRun();
    r.ledger.trace_instructions += 1;
    expectViolation(r, "trace length");
}

TEST(Audit, CacheAccessImbalanceIsDetected)
{
    RunResult r = healthyRun();
    r.ledger.icache_hits += 1;
    expectViolation(r, "icache");

    RunResult r2 = healthyRun();
    r2.ledger.dcache_misses += 1;
    expectViolation(r2, "dcache");
}

TEST(Audit, MshrLeakIsDetected)
{
    RunResult r = healthyRun();
    r.ledger.mshr_releases -= 1;
    expectViolation(r, "MSHR");

    RunResult r2 = healthyRun();
    r2.ledger.mshr_outstanding = 1;
    r2.ledger.mshr_allocations += 1; // keep alloc==release passing
    r2.ledger.mshr_releases += 1;
    expectViolation(r2, "outstanding");
}

TEST(Audit, EnableFlagReadsEnvironmentDynamically)
{
    const char *old = std::getenv("AURORA_AUDIT");
    const std::string saved = old ? old : "";

    ::setenv("AURORA_AUDIT", "1", 1);
    EXPECT_TRUE(auditEnabled());
    ::setenv("AURORA_AUDIT", "0", 1);
    EXPECT_FALSE(auditEnabled());
    ::unsetenv("AURORA_AUDIT");
    EXPECT_FALSE(auditEnabled());

    if (old)
        ::setenv("AURORA_AUDIT", saved.c_str(), 1);
}

TEST(Audit, ProcessorRunAuditsWhenEnabled)
{
    // With the gate set, every simulate() is audited on the way out —
    // a healthy machine must still complete normally.
    const char *old = std::getenv("AURORA_AUDIT");
    const std::string saved = old ? old : "";
    ::setenv("AURORA_AUDIT", "1", 1);

    const RunResult r = healthyRun();
    EXPECT_EQ(r.ledger.retired, r.instructions);
    EXPECT_EQ(r.ledger.mshr_allocations, r.ledger.mshr_releases);

    if (old)
        ::setenv("AURORA_AUDIT", saved.c_str(), 1);
    else
        ::unsetenv("AURORA_AUDIT");
}

} // namespace
