/**
 * @file
 * machineHash() coverage: every field of MachineConfig — including
 * every nested component config — must perturb the hash. The hash
 * feeds deriveJobSeed() and the sweep journal's grid fingerprint, so
 * a field that describe() forgets would let two different machines
 * share seeds and replay each other's journaled results.
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "harness/sweep.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using harness::machineHash;

struct FieldCase
{
    const char *field;
    std::function<void(MachineConfig &)> mutate;
};

const std::vector<FieldCase> &
allFields()
{
    static const std::vector<FieldCase> cases = {
        {"name", [](MachineConfig &m) { m.name = "mutant"; }},
        {"issue_width", [](MachineConfig &m) { m.issue_width = 1; }},
        {"rob_entries", [](MachineConfig &m) { m.rob_entries = 7; }},
        {"retire_width", [](MachineConfig &m) { m.retire_width = 3; }},
        {"alu_latency", [](MachineConfig &m) { m.alu_latency = 2; }},

        {"ifu.icache_bytes",
         [](MachineConfig &m) { m.ifu.icache_bytes = 4096; }},
        {"ifu.line_bytes",
         [](MachineConfig &m) { m.ifu.line_bytes = 64; }},
        {"ifu.fetch_width",
         [](MachineConfig &m) { m.ifu.fetch_width = 1; }},
        {"ifu.branch_folding",
         [](MachineConfig &m) { m.ifu.branch_folding = false; }},
        {"ifu.buffer_entries",
         [](MachineConfig &m) { m.ifu.buffer_entries = 8; }},

        {"lsu.dcache_bytes",
         [](MachineConfig &m) { m.lsu.dcache_bytes = 64 * 1024; }},
        {"lsu.line_bytes",
         [](MachineConfig &m) { m.lsu.line_bytes = 64; }},
        {"lsu.dcache_latency",
         [](MachineConfig &m) { m.lsu.dcache_latency = 4; }},
        {"lsu.mshr_entries",
         [](MachineConfig &m) { m.lsu.mshr_entries = 4; }},
        {"lsu.fill_port_cycles",
         [](MachineConfig &m) { m.lsu.fill_port_cycles = 3; }},
        {"lsu.store_occupancy",
         [](MachineConfig &m) { m.lsu.store_occupancy = 2; }},
        {"lsu.victim_lines",
         [](MachineConfig &m) { m.lsu.victim_lines = 4; }},
        {"lsu.victim_swap_cycles",
         [](MachineConfig &m) { m.lsu.victim_swap_cycles = 2; }},

        {"write_cache.lines",
         [](MachineConfig &m) { m.write_cache.lines = 8; }},
        {"write_cache.line_bytes",
         [](MachineConfig &m) { m.write_cache.line_bytes = 64; }},
        {"write_cache.page_bytes",
         [](MachineConfig &m) { m.write_cache.page_bytes = 8192; }},
        {"write_cache.validate_writes",
         [](MachineConfig &m) {
             m.write_cache.validate_writes = false;
         }},

        {"prefetch.num_buffers",
         [](MachineConfig &m) { m.prefetch.num_buffers = 8; }},
        {"prefetch.depth",
         [](MachineConfig &m) { m.prefetch.depth = 4; }},
        {"prefetch.line_bytes",
         [](MachineConfig &m) { m.prefetch.line_bytes = 64; }},
        {"prefetch.enabled",
         [](MachineConfig &m) { m.prefetch.enabled = false; }},

        {"biu.latency", [](MachineConfig &m) { m.biu.latency = 35; }},
        {"biu.line_occupancy",
         [](MachineConfig &m) { m.biu.line_occupancy = 8; }},
        {"biu.queue_depth",
         [](MachineConfig &m) { m.biu.queue_depth = 4; }},
        {"biu.model_collisions",
         [](MachineConfig &m) { m.biu.model_collisions = true; }},
        {"biu.collision_penalty",
         [](MachineConfig &m) { m.biu.collision_penalty = 5; }},

        {"fpu.policy",
         [](MachineConfig &m) {
             m.fpu.policy = fpu::IssuePolicy::InOrderComplete;
         }},
        {"fpu.inst_queue",
         [](MachineConfig &m) { m.fpu.inst_queue = 8; }},
        {"fpu.load_queue",
         [](MachineConfig &m) { m.fpu.load_queue = 4; }},
        {"fpu.store_queue",
         [](MachineConfig &m) { m.fpu.store_queue = 5; }},
        {"fpu.rob_entries",
         [](MachineConfig &m) { m.fpu.rob_entries = 8; }},
        {"fpu.result_buses",
         [](MachineConfig &m) { m.fpu.result_buses = 1; }},
        {"fpu.add.latency",
         [](MachineConfig &m) { m.fpu.add.latency = 4; }},
        {"fpu.add.pipelined",
         [](MachineConfig &m) { m.fpu.add.pipelined = false; }},
        {"fpu.mul.latency",
         [](MachineConfig &m) { m.fpu.mul.latency = 4; }},
        {"fpu.mul.pipelined",
         [](MachineConfig &m) { m.fpu.mul.pipelined = false; }},
        {"fpu.div.latency",
         [](MachineConfig &m) { m.fpu.div.latency = 25; }},
        {"fpu.div.pipelined",
         [](MachineConfig &m) { m.fpu.div.pipelined = true; }},
        {"fpu.cvt.latency",
         [](MachineConfig &m) { m.fpu.cvt.latency = 3; }},
        {"fpu.cvt.pipelined",
         [](MachineConfig &m) { m.fpu.cvt.pipelined = false; }},
        {"fpu.precise_exceptions",
         [](MachineConfig &m) { m.fpu.precise_exceptions = true; }},
        {"fpu.provably_safe_frac",
         [](MachineConfig &m) { m.fpu.provably_safe_frac = 0.5; }},
    };
    return cases;
}

TEST(MachineHash, EveryFieldPerturbsTheHash)
{
    const std::uint64_t base = machineHash(baselineModel());
    for (const FieldCase &c : allFields()) {
        SCOPED_TRACE(c.field);
        MachineConfig m = baselineModel();
        c.mutate(m);
        EXPECT_NE(machineHash(m), base)
            << c.field << " does not reach describe()/machineHash()";
    }
}

TEST(MachineHash, MutantsArePairwiseDistinct)
{
    // Stronger than differing from the baseline: no two single-field
    // mutants may collide either, or their jobs would share derived
    // seeds.
    std::set<std::uint64_t> seen{machineHash(baselineModel())};
    for (const FieldCase &c : allFields()) {
        MachineConfig m = baselineModel();
        c.mutate(m);
        EXPECT_TRUE(seen.insert(machineHash(m)).second)
            << c.field << " collides with another mutant";
    }
}

TEST(MachineHash, IsDeterministicAcrossCalls)
{
    EXPECT_EQ(machineHash(baselineModel()),
              machineHash(baselineModel()));
    EXPECT_NE(machineHash(smallModel()), machineHash(largeModel()));
}

TEST(MachineHash, SameKnobsDifferentNameStillDiffer)
{
    // Two models with identical parameterization but different names
    // are different experiment points; the hash keeps them apart.
    MachineConfig renamed = baselineModel();
    renamed.name = "baseline-copy";
    EXPECT_NE(machineHash(renamed), machineHash(baselineModel()));
}

} // namespace
