/**
 * @file
 * Coordinator supervision tests: lease fencing and migration under
 * each scripted ShardFault, the zombie-append refusal (AUR304), the
 * commit journal's resume path, configuration rejection, and the
 * external-fleet loss timeout.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/config_io.hh"
#include "faultinject/faultinject.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "shard/swarm.hh"
#include "trace/spec_profiles.hh"
#include "util/sim_error.hh"

namespace
{

namespace fs = std::filesystem;
using namespace aurora;
using aurora::util::SimError;
using aurora::util::SimErrorCode;
using faultinject::ShardFault;
using faultinject::ShardFaultPlan;

std::string
tempPath(const std::string &name)
{
    return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<harness::SweepJob>
testGrid(Count insts = 2000)
{
    const core::MachineConfig machine =
        core::parseMachineSpec("model=small");
    return harness::suiteJobs(machine, trace::integerSuite(), insts);
}

shard::SwarmConfig
baseConfig(const std::string &tag)
{
    shard::SwarmConfig config;
    config.socket_path = tempPath("swarm-" + tag + ".sock");
    config.journal_dir = tempPath("swarm-" + tag + ".jd");
    fs::remove(config.socket_path);
    fs::remove_all(config.journal_dir);
    config.shards = 2;
    config.lease_ms = 400;
    return config;
}

void
expectAllOk(const std::vector<harness::SweepOutcome> &outcomes,
            std::size_t n)
{
    ASSERT_EQ(outcomes.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    }
}

TEST(SwarmSupervision, KillShardFencesMigratesAndRecovers)
{
    shard::SwarmConfig config = baseConfig("kill");
    config.fault_plans = {ShardFaultPlan{ShardFault::KillShard, 1},
                          std::nullopt};
    shard::Swarm swarm(config);
    // Jobs long enough that the backlog outlives the respawn
    // throttle — the replacement worker must actually be needed.
    const auto grid = testGrid(600'000);
    expectAllOk(swarm.runGrid(grid, {}), grid.size());

    const shard::SwarmStats &stats = swarm.stats();
    EXPECT_GE(stats.shard_exits, 1u);
    EXPECT_GE(stats.migrated_jobs, 1u);
    EXPECT_GE(stats.respawns, 1u);
    EXPECT_EQ(stats.committed, grid.size());
    EXPECT_FALSE(swarm.fencedEpochs().empty());
}

TEST(SwarmSupervision, ZombieAppendIsFencedAndRefused)
{
    shard::SwarmConfig config = baseConfig("zombie");
    config.fault_plans = {
        ShardFaultPlan{ShardFault::ZombieAppend, 1}, std::nullopt};
    shard::Swarm swarm(config);
    const auto grid = testGrid();
    expectAllOk(swarm.runGrid(grid, {}), grid.size());

    const shard::SwarmStats &stats = swarm.stats();
    // The zombie's lease expired (it went silent past the lease)...
    EXPECT_GE(stats.lease_expiries, 1u);
    // ...its unfinished work moved to live shards...
    EXPECT_GE(stats.migrated_jobs, 1u);
    // ...and its post-fence Result was refused over the wire, not
    // merely ignored: exactly-once held by *refusal*, not luck.
    EXPECT_GE(stats.fenced_results, 1u);
    EXPECT_EQ(stats.committed, grid.size());
    EXPECT_FALSE(swarm.fencedEpochs().empty());
}

TEST(SwarmSupervision, DropHeartbeatsIsFencedWhileResultsFlow)
{
    // A one-way partition: the shard keeps producing but stops
    // beating. Results do NOT renew the lease, so the fence must
    // fire even though traffic is flowing.
    shard::SwarmConfig config = baseConfig("partition");
    config.fault_plans = {
        ShardFaultPlan{ShardFault::DropHeartbeats, 0}, std::nullopt};
    shard::Swarm swarm(config);
    // Jobs long enough that the silent shard cannot drain the whole
    // grid inside one lease — the fence must catch it mid-flight.
    const auto grid = testGrid(600'000);
    expectAllOk(swarm.runGrid(grid, {}), grid.size());
    EXPECT_GE(swarm.stats().lease_expiries, 1u);
    EXPECT_EQ(swarm.stats().committed, grid.size());
}

TEST(SwarmSupervision, CommitJournalResumeReplaysWithoutShards)
{
    const auto grid = testGrid();
    const std::string journal = tempPath("swarm-resume.ajrn");
    fs::remove(journal);

    shard::GridOptions options;
    options.journal = journal;
    {
        shard::Swarm swarm(baseConfig("resume1"));
        expectAllOk(swarm.runGrid(grid, options), grid.size());
    }

    // Second run resumes: every job replays from the commit journal,
    // no shard ever executes anything.
    options.resume = true;
    shard::Swarm swarm(baseConfig("resume2"));
    const auto outcomes = swarm.runGrid(grid, options);
    expectAllOk(outcomes, grid.size());
    EXPECT_EQ(swarm.stats().resumed, grid.size());
    EXPECT_EQ(swarm.stats().committed, 0u);
    EXPECT_EQ(swarm.stats().granted_leases, 0u);
    for (const harness::SweepOutcome &out : outcomes)
        EXPECT_TRUE(out.resumed);
}

TEST(SwarmSupervision, ZeroShardsIsBadConfig)
{
    shard::SwarmConfig config = baseConfig("zero");
    config.shards = 0;
    try {
        shard::Swarm swarm(config);
        FAIL() << "shards=0 accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadConfig);
    }
}

TEST(SwarmSupervision, ExecModeWithoutBinaryIsBadConfig)
{
    shard::SwarmConfig config = baseConfig("nobin");
    config.spawn = shard::SpawnMode::Exec;
    try {
        shard::Swarm swarm(config);
        FAIL() << "exec mode without --shardd accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadConfig);
    }
}

TEST(SwarmSupervision, ExternalFleetThatNeverDialsIsLost)
{
    shard::SwarmConfig config = baseConfig("ghost");
    config.spawn = shard::SpawnMode::External;
    config.idle_timeout_ms = 300;
    shard::Swarm swarm(config);
    try {
        (void)swarm.runGrid(testGrid(), {});
        FAIL() << "grid completed with no workers";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("fleet lost"),
                  std::string::npos);
    }
}

} // namespace
