/**
 * @file
 * Unit tests for the MSHR file.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

namespace
{

using namespace aurora;
using aurora::mem::MshrFile;

TEST(Mshr, StartsEmpty)
{
    MshrFile m(2);
    EXPECT_EQ(m.numEntries(), 2u);
    EXPECT_EQ(m.inUse(), 0u);
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.find(0x100), nullptr);
    EXPECT_EQ(m.nextReady(), NEVER);
}

TEST(Mshr, AllocateAndFind)
{
    MshrFile m(2);
    m.allocate(0x100, 20);
    const auto *e = m.find(0x100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->ready, 20u);
    EXPECT_EQ(m.inUse(), 1u);
    EXPECT_EQ(m.allocations(), 1u);
}

TEST(Mshr, FullWhenAllAllocated)
{
    MshrFile m(2);
    m.allocate(0x100, 20);
    m.allocate(0x200, 30);
    EXPECT_TRUE(m.full());
}

TEST(Mshr, RetireFreesCompleted)
{
    MshrFile m(2);
    m.allocate(0x100, 20);
    m.allocate(0x200, 30);
    m.retire(19);
    EXPECT_TRUE(m.full()) << "nothing done before cycle 20";
    m.retire(20);
    EXPECT_EQ(m.inUse(), 1u);
    EXPECT_EQ(m.find(0x100), nullptr);
    ASSERT_NE(m.find(0x200), nullptr);
    m.retire(30);
    EXPECT_EQ(m.inUse(), 0u);
}

TEST(Mshr, NextReadyReportsEarliest)
{
    MshrFile m(3);
    m.allocate(0x100, 50);
    m.allocate(0x200, 30);
    m.allocate(0x300, 40);
    EXPECT_EQ(m.nextReady(), 30u);
    m.retire(30);
    EXPECT_EQ(m.nextReady(), 40u);
}

TEST(Mshr, SingleEntrySerializes)
{
    MshrFile m(1);
    m.allocate(0x100, 20);
    EXPECT_TRUE(m.full());
    m.retire(20);
    EXPECT_FALSE(m.full());
    m.allocate(0x200, 40);
    EXPECT_TRUE(m.full());
}

TEST(Mshr, CoalescedCounter)
{
    MshrFile m(2);
    m.noteCoalesced();
    m.noteCoalesced();
    EXPECT_EQ(m.coalesced(), 2u);
}

TEST(Mshr, ReuseAfterRetire)
{
    MshrFile m(1);
    for (Cycle t = 0; t < 100; t += 10) {
        m.retire(t);
        EXPECT_FALSE(m.full());
        m.allocate(0x1000 + static_cast<Addr>(t), t + 5);
    }
    EXPECT_EQ(m.allocations(), 10u);
}

TEST(MshrDeath, AllocateWhenFullPanics)
{
    MshrFile m(1);
    m.allocate(0x100, 10);
    EXPECT_DEATH(m.allocate(0x200, 20), "no free entry");
}

TEST(MshrDeath, ZeroEntriesPanics)
{
    EXPECT_DEATH(MshrFile(0), "at least one");
}

} // namespace
