/**
 * @file
 * Unit tests for the direct-mapped cache tag store.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace
{

using aurora::Addr;
using aurora::mem::DirectMappedCache;

TEST(Cache, ColdCacheMisses)
{
    DirectMappedCache c(1024, 32);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_EQ(c.hitRate().total(), 1u);
    EXPECT_EQ(c.hitRate().hits(), 0u);
}

TEST(Cache, FillThenHit)
{
    DirectMappedCache c(1024, 32);
    c.fill(0x1000);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x101f)) << "same 32-byte line";
    EXPECT_FALSE(c.access(0x1020)) << "next line differs";
}

TEST(Cache, GeometryAccessors)
{
    DirectMappedCache c(2048, 32);
    EXPECT_EQ(c.sizeBytes(), 2048u);
    EXPECT_EQ(c.lineBytes(), 32u);
    EXPECT_EQ(c.numLines(), 64u);
    EXPECT_EQ(c.lineAddr(0x12345), 0x12340u);
}

TEST(Cache, DirectMappedConflict)
{
    DirectMappedCache c(1024, 32); // 32 lines
    c.fill(0x0000);
    EXPECT_TRUE(c.probe(0x0000));
    // Same index (addr + cache size), different tag: evicts.
    c.fill(0x0000 + 1024);
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_TRUE(c.probe(0x0400));
}

TEST(Cache, DifferentIndicesCoexist)
{
    DirectMappedCache c(1024, 32);
    c.fill(0x0000);
    c.fill(0x0020);
    c.fill(0x0040);
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_TRUE(c.probe(0x0020));
    EXPECT_TRUE(c.probe(0x0040));
}

TEST(Cache, ProbeDoesNotTouchStats)
{
    DirectMappedCache c(1024, 32);
    c.fill(0x40);
    c.probe(0x40);
    c.probe(0x80);
    EXPECT_EQ(c.hitRate().total(), 0u);
}

TEST(Cache, InvalidateRemovesLine)
{
    DirectMappedCache c(1024, 32);
    c.fill(0x200);
    c.invalidate(0x200);
    EXPECT_FALSE(c.probe(0x200));
}

TEST(Cache, InvalidateWrongTagIsNoop)
{
    DirectMappedCache c(1024, 32);
    c.fill(0x200);
    c.invalidate(0x200 + 1024); // same index, other tag
    EXPECT_TRUE(c.probe(0x200));
}

TEST(Cache, ResetClearsTagsAndStats)
{
    DirectMappedCache c(1024, 32);
    c.fill(0x40);
    c.access(0x40);
    c.reset();
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.hitRate().total(), 0u);
}

TEST(Cache, HitRateAccumulates)
{
    DirectMappedCache c(1024, 32);
    c.fill(0x40);
    for (int i = 0; i < 3; ++i)
        c.access(0x40);
    c.access(0x4000);
    EXPECT_EQ(c.hitRate().hits(), 3u);
    EXPECT_EQ(c.hitRate().total(), 4u);
    EXPECT_DOUBLE_EQ(c.hitRate().percent(), 75.0);
}

/** Geometry invariants over the paper's cache sizes. */
class CacheGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(CacheGeometry, WorkingSetSmallerThanCacheAlwaysHits)
{
    const auto [size, line] = GetParam();
    DirectMappedCache c(size, line);
    // Touch every line once (fill), then every access must hit.
    for (Addr a = 0; a < size; a += line)
        c.fill(a);
    for (Addr a = 0; a < size; a += 4)
        EXPECT_TRUE(c.probe(a));
}

INSTANTIATE_TEST_SUITE_P(
    PaperSizes, CacheGeometry,
    ::testing::Values(std::pair{1024u, 32u}, std::pair{2048u, 32u},
                      std::pair{4096u, 32u}, std::pair{16384u, 32u},
                      std::pair{32768u, 32u}, std::pair{65536u, 32u}));

TEST(CacheDeath, NonPowerOfTwoSizePanics)
{
    EXPECT_DEATH(DirectMappedCache(1000, 32), "power of 2");
}

TEST(CacheDeath, LineLargerThanCachePanics)
{
    EXPECT_DEATH(DirectMappedCache(16, 32), "smaller");
}

} // namespace
