/**
 * @file
 * Unit tests for machine-spec parsing and serialization.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/config_io.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using util::SimError;
using util::SimErrorCode;

/** Expect a BadConfig SimError whose message contains @p substr. */
void
expectBadConfig(const std::string &spec, const std::string &substr)
{
    try {
        parseMachineSpec(spec);
        FAIL() << "spec '" << spec << "' should have thrown";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadConfig) << spec;
        EXPECT_NE(std::string(e.what()).find(substr),
                  std::string::npos)
            << "message for '" << spec << "' lacks '" << substr
            << "': " << e.what();
    }
}

TEST(ConfigIo, EmptySpecIsBaseline)
{
    const auto m = parseMachineSpec("");
    EXPECT_EQ(m.name, "baseline");
    EXPECT_EQ(m.ifu.icache_bytes, 2048u);
}

TEST(ConfigIo, ModelSelectsBase)
{
    EXPECT_EQ(parseMachineSpec("model=small").lsu.mshr_entries, 1u);
    EXPECT_EQ(parseMachineSpec("model=large").rob_entries, 8u);
    EXPECT_EQ(parseMachineSpec("model=recommended").ifu.icache_bytes,
              4096u);
}

TEST(ConfigIo, OverridesApplyInOrder)
{
    const auto m =
        parseMachineSpec("model=small icache=4096 mshr=4 latency=35");
    EXPECT_EQ(m.ifu.icache_bytes, 4096u);
    EXPECT_EQ(m.lsu.mshr_entries, 4u);
    EXPECT_EQ(m.biu.latency, 35u);
    // untouched small-model fields survive
    EXPECT_EQ(m.write_cache.lines, 2u);
}

TEST(ConfigIo, ModelTokenResetsEarlierOverrides)
{
    const auto m = parseMachineSpec("mshr=8 model=small");
    EXPECT_EQ(m.lsu.mshr_entries, 1u)
        << "model= later in the spec rebuilds from scratch";
}

TEST(ConfigIo, IssueWidthUpdatesFetchWidth)
{
    const auto m = parseMachineSpec("issue=1");
    EXPECT_EQ(m.issue_width, 1u);
    EXPECT_EQ(m.ifu.fetch_width, 1u);
}

TEST(ConfigIo, FpuKeys)
{
    const auto m = parseMachineSpec(
        "fp_policy=inorder fp_instq=3 fp_loadq=4 fp_rob=9 "
        "fp_add_lat=2 fp_mul_piped=off fp_precise=on "
        "fp_safe_frac=0.5");
    EXPECT_EQ(m.fpu.policy, fpu::IssuePolicy::InOrderComplete);
    EXPECT_EQ(m.fpu.inst_queue, 3u);
    EXPECT_EQ(m.fpu.load_queue, 4u);
    EXPECT_EQ(m.fpu.rob_entries, 9u);
    EXPECT_EQ(m.fpu.add.latency, 2u);
    EXPECT_FALSE(m.fpu.mul.pipelined);
    EXPECT_TRUE(m.fpu.precise_exceptions);
    EXPECT_DOUBLE_EQ(m.fpu.provably_safe_frac, 0.5);
}

TEST(ConfigIo, BooleanSpellings)
{
    EXPECT_FALSE(parseMachineSpec("prefetch=off").prefetch.enabled);
    EXPECT_FALSE(parseMachineSpec("prefetch=false").prefetch.enabled);
    EXPECT_FALSE(parseMachineSpec("prefetch=0").prefetch.enabled);
    EXPECT_TRUE(parseMachineSpec("prefetch=on").prefetch.enabled);
}

TEST(ConfigIo, DescribeParseRoundTrip)
{
    const auto original = parseMachineSpec(
        "model=large issue=1 latency=35 victim_lines=4 "
        "fp_policy=single fp_div_lat=25 folding=off");
    const auto reparsed = parseMachineSpec(describe(original));
    EXPECT_EQ(describe(reparsed), describe(original));
    EXPECT_EQ(reparsed.issue_width, original.issue_width);
    EXPECT_EQ(reparsed.biu.latency, original.biu.latency);
    EXPECT_EQ(reparsed.lsu.victim_lines, original.lsu.victim_lines);
    EXPECT_EQ(reparsed.fpu.policy, original.fpu.policy);
    EXPECT_EQ(reparsed.ifu.branch_folding,
              original.ifu.branch_folding);
}

TEST(ConfigIo, DescribeRoundTripsEveryNamedModel)
{
    for (const auto &m : studyModels()) {
        const auto back = parseMachineSpec(describe(m));
        EXPECT_EQ(describe(back), describe(m)) << m.name;
        EXPECT_DOUBLE_EQ(back.rbeCost(), m.rbeCost()) << m.name;
    }
}

// User input errors are recoverable: they throw a structured
// SimError (BadConfig) whose message names the key, the offending
// value, and the accepted values — they never kill the process.

TEST(ConfigIoErrors, UnknownKeyThrows)
{
    expectBadConfig("warp_drive=on", "unknown");
    expectBadConfig("warp_drive=on", "warp_drive");
    // The message enumerates the accepted keys.
    expectBadConfig("warp_drive=on", "mshr");
}

TEST(ConfigIoErrors, MalformedTokenThrows)
{
    expectBadConfig("justakey", "key=value");
    expectBadConfig("justakey", "justakey");
}

TEST(ConfigIoErrors, BadNumberThrows)
{
    expectBadConfig("mshr=lots", "bad numeric");
    expectBadConfig("mshr=lots", "mshr");
    expectBadConfig("mshr=lots", "lots");
    // strtoull would have accepted these prefixes silently.
    expectBadConfig("mshr=2x", "bad numeric");
    expectBadConfig("icache=", "bad numeric");
}

TEST(ConfigIoErrors, BadRealThrows)
{
    expectBadConfig("fp_safe_frac=often", "fp_safe_frac");
}

TEST(ConfigIoErrors, BadBoolThrows)
{
    expectBadConfig("prefetch=maybe", "prefetch");
    expectBadConfig("prefetch=maybe", "maybe");
}

TEST(ConfigIoErrors, BadIssueWidthThrows)
{
    expectBadConfig("issue=3", "1 or 2");
}

TEST(ConfigIoErrors, BadPolicyThrows)
{
    expectBadConfig("fp_policy=speculative", "fp_policy");
    expectBadConfig("fp_policy=speculative", "inorder");
}

TEST(ConfigIoErrors, BadModelThrows)
{
    expectBadConfig("model=gigantic", "model");
}

/**
 * Property test: no key=value input may crash the parser — every
 * outcome is either a parsed machine or a structured SimError.
 */
TEST(ConfigIoErrors, FuzzedSpecsNeverCrash)
{
    const std::string keys[] = {"mshr",    "icache",  "issue",
                                "model",   "latency", "fp_policy",
                                "bogus",   "",        "fp_safe_frac",
                                "prefetch"};
    const std::string values[] = {"2",     "0",    "999999999",
                                  "-3",    "2x",   "on",
                                  "lots",  "",     "0.5",
                                  "1e9",   "small"};
    std::uint64_t rng = 0x5eedu;
    auto next = [&rng]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (int i = 0; i < 500; ++i) {
        std::string spec;
        const unsigned tokens = next() % 4;
        for (unsigned t = 0; t < tokens; ++t) {
            spec += keys[next() % std::size(keys)];
            if (next() % 8)
                spec += "=";
            spec += values[next() % std::size(values)] + " ";
        }
        try {
            const auto m = parseMachineSpec(spec);
            (void)m;
        } catch (const SimError &e) {
            EXPECT_EQ(e.code(), SimErrorCode::BadConfig)
                << "spec '" << spec << "' -> " << e.what();
        }
        // Anything else (segfault, bare std::exception, abort) fails
        // the test by crashing or escaping the harness.
    }
}

} // namespace
