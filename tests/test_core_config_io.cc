/**
 * @file
 * Unit tests for machine-spec parsing and serialization.
 */

#include <gtest/gtest.h>

#include "core/config_io.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

TEST(ConfigIo, EmptySpecIsBaseline)
{
    const auto m = parseMachineSpec("");
    EXPECT_EQ(m.name, "baseline");
    EXPECT_EQ(m.ifu.icache_bytes, 2048u);
}

TEST(ConfigIo, ModelSelectsBase)
{
    EXPECT_EQ(parseMachineSpec("model=small").lsu.mshr_entries, 1u);
    EXPECT_EQ(parseMachineSpec("model=large").rob_entries, 8u);
    EXPECT_EQ(parseMachineSpec("model=recommended").ifu.icache_bytes,
              4096u);
}

TEST(ConfigIo, OverridesApplyInOrder)
{
    const auto m =
        parseMachineSpec("model=small icache=4096 mshr=4 latency=35");
    EXPECT_EQ(m.ifu.icache_bytes, 4096u);
    EXPECT_EQ(m.lsu.mshr_entries, 4u);
    EXPECT_EQ(m.biu.latency, 35u);
    // untouched small-model fields survive
    EXPECT_EQ(m.write_cache.lines, 2u);
}

TEST(ConfigIo, ModelTokenResetsEarlierOverrides)
{
    const auto m = parseMachineSpec("mshr=8 model=small");
    EXPECT_EQ(m.lsu.mshr_entries, 1u)
        << "model= later in the spec rebuilds from scratch";
}

TEST(ConfigIo, IssueWidthUpdatesFetchWidth)
{
    const auto m = parseMachineSpec("issue=1");
    EXPECT_EQ(m.issue_width, 1u);
    EXPECT_EQ(m.ifu.fetch_width, 1u);
}

TEST(ConfigIo, FpuKeys)
{
    const auto m = parseMachineSpec(
        "fp_policy=inorder fp_instq=3 fp_loadq=4 fp_rob=9 "
        "fp_add_lat=2 fp_mul_piped=off fp_precise=on "
        "fp_safe_frac=0.5");
    EXPECT_EQ(m.fpu.policy, fpu::IssuePolicy::InOrderComplete);
    EXPECT_EQ(m.fpu.inst_queue, 3u);
    EXPECT_EQ(m.fpu.load_queue, 4u);
    EXPECT_EQ(m.fpu.rob_entries, 9u);
    EXPECT_EQ(m.fpu.add.latency, 2u);
    EXPECT_FALSE(m.fpu.mul.pipelined);
    EXPECT_TRUE(m.fpu.precise_exceptions);
    EXPECT_DOUBLE_EQ(m.fpu.provably_safe_frac, 0.5);
}

TEST(ConfigIo, BooleanSpellings)
{
    EXPECT_FALSE(parseMachineSpec("prefetch=off").prefetch.enabled);
    EXPECT_FALSE(parseMachineSpec("prefetch=false").prefetch.enabled);
    EXPECT_FALSE(parseMachineSpec("prefetch=0").prefetch.enabled);
    EXPECT_TRUE(parseMachineSpec("prefetch=on").prefetch.enabled);
}

TEST(ConfigIo, DescribeParseRoundTrip)
{
    const auto original = parseMachineSpec(
        "model=large issue=1 latency=35 victim_lines=4 "
        "fp_policy=single fp_div_lat=25 folding=off");
    const auto reparsed = parseMachineSpec(describe(original));
    EXPECT_EQ(describe(reparsed), describe(original));
    EXPECT_EQ(reparsed.issue_width, original.issue_width);
    EXPECT_EQ(reparsed.biu.latency, original.biu.latency);
    EXPECT_EQ(reparsed.lsu.victim_lines, original.lsu.victim_lines);
    EXPECT_EQ(reparsed.fpu.policy, original.fpu.policy);
    EXPECT_EQ(reparsed.ifu.branch_folding,
              original.ifu.branch_folding);
}

TEST(ConfigIo, DescribeRoundTripsEveryNamedModel)
{
    for (const auto &m : studyModels()) {
        const auto back = parseMachineSpec(describe(m));
        EXPECT_EQ(describe(back), describe(m)) << m.name;
        EXPECT_DOUBLE_EQ(back.rbeCost(), m.rbeCost()) << m.name;
    }
}

TEST(ConfigIoDeath, UnknownKeyIsFatal)
{
    EXPECT_DEATH(parseMachineSpec("warp_drive=on"), "unknown");
}

TEST(ConfigIoDeath, MalformedTokenIsFatal)
{
    EXPECT_DEATH(parseMachineSpec("justakey"), "key=value");
}

TEST(ConfigIoDeath, BadNumberIsFatal)
{
    EXPECT_DEATH(parseMachineSpec("mshr=lots"), "bad numeric");
}

TEST(ConfigIoDeath, BadIssueWidthIsFatal)
{
    EXPECT_DEATH(parseMachineSpec("issue=3"), "1 or 2");
}

TEST(ConfigIoDeath, BadPolicyIsFatal)
{
    EXPECT_DEATH(parseMachineSpec("fp_policy=speculative"),
                 "fp_policy");
}

} // namespace
