/**
 * @file
 * Tests for the §3.1 precise-exception mode: instructions that might
 * fault are not transferred to the FPU until it is quiescent, at a
 * measurable performance cost.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

constexpr Count N = 60000;

TEST(PreciseFp, PreciseModeIsSlower)
{
    for (const char *bench : {"nasa7", "hydro2d", "ear"}) {
        auto fast = baselineModel();
        auto precise = baselineModel();
        precise.fpu.precise_exceptions = true;
        const double f =
            simulate(fast, trace::profileByName(bench), N).cpi();
        const double p =
            simulate(precise, trace::profileByName(bench), N).cpi();
        EXPECT_GT(p, f * 1.02) << bench;
    }
}

TEST(PreciseFp, IntegerWorkloadsAreUnaffected)
{
    auto fast = baselineModel();
    auto precise = baselineModel();
    precise.fpu.precise_exceptions = true;
    const double f = simulate(fast, trace::espresso(), N).cpi();
    const double p = simulate(precise, trace::espresso(), N).cpi();
    EXPECT_DOUBLE_EQ(f, p) << "no FP instructions, no difference";
}

TEST(PreciseFp, SafeFractionControlsTheCost)
{
    // The more ops the exponent checker can prove safe, the smaller
    // the penalty; at 1.0 the machine behaves like imprecise mode.
    auto all_safe = baselineModel();
    all_safe.fpu.precise_exceptions = true;
    all_safe.fpu.provably_safe_frac = 1.0;

    auto none_safe = baselineModel();
    none_safe.fpu.precise_exceptions = true;
    none_safe.fpu.provably_safe_frac = 0.0;

    const auto profile = trace::su2cor();
    const double fast =
        simulate(baselineModel(), profile, N).cpi();
    const double safe = simulate(all_safe, profile, N).cpi();
    const double unsafe = simulate(none_safe, profile, N).cpi();

    EXPECT_DOUBLE_EQ(safe, fast);
    EXPECT_GT(unsafe, safe * 1.1)
        << "draining the FPU per op must hurt substantially";
}

TEST(PreciseFp, PenaltyShowsUpAsFpQueueStalls)
{
    auto precise = baselineModel();
    precise.fpu.precise_exceptions = true;
    precise.fpu.provably_safe_frac = 0.0;
    const auto fast_r =
        simulate(baselineModel(), trace::nasa7(), N);
    const auto prec_r = simulate(precise, trace::nasa7(), N);
    EXPECT_GT(prec_r.stallCpi(StallCause::FpQueue),
              fast_r.stallCpi(StallCause::FpQueue));
}

} // namespace
