/**
 * @file
 * Unit tests for the coalescing write cache with write validation.
 */

#include <gtest/gtest.h>

#include "mem/biu.hh"
#include "mem/write_cache.hh"

namespace
{

using namespace aurora;
using namespace aurora::mem;

struct Fixture
{
    explicit Fixture(unsigned lines = 4, bool validate = true)
        : biu(BiuConfig{17, 4, 8})
    {
        WriteCacheConfig cfg;
        cfg.lines = lines;
        cfg.validate_writes = validate;
        wc.emplace(cfg, biu);
    }

    Biu biu;
    std::optional<WriteCache> wc;
};

TEST(WriteCache, FirstStoreMisses)
{
    Fixture f;
    f.wc->store(0x1000, 4, 0);
    EXPECT_EQ(f.wc->hitRate().hits(), 0u);
    EXPECT_EQ(f.wc->hitRate().total(), 1u);
    EXPECT_EQ(f.wc->stores(), 1u);
    EXPECT_EQ(f.wc->storeTransactions(), 0u) << "nothing evicted yet";
}

TEST(WriteCache, RewriteCoalesces)
{
    Fixture f;
    f.wc->store(0x1000, 4, 0);
    f.wc->store(0x1000, 4, 1);
    f.wc->store(0x1000, 4, 2);
    EXPECT_EQ(f.wc->hitRate().hits(), 2u);
    EXPECT_EQ(f.wc->storeTransactions(), 0u);
}

TEST(WriteCache, SequentialBurstFillsOneLine)
{
    Fixture f;
    for (Addr a = 0x2000; a < 0x2020; a += 4)
        f.wc->store(a, 4, 0);
    // 8 stores, 1 miss + 7 line hits, zero transactions so far.
    EXPECT_EQ(f.wc->hitRate().hits(), 7u);
    EXPECT_EQ(f.wc->storeTransactions(), 0u);
    f.wc->drain(10);
    EXPECT_EQ(f.wc->storeTransactions(), 1u)
        << "the whole line retires as one BIU transaction";
}

TEST(WriteCache, EvictionOnCapacity)
{
    Fixture f(2);
    f.wc->store(0x1000, 4, 0);
    f.wc->store(0x2000, 4, 1);
    f.wc->store(0x3000, 4, 2); // evicts LRU (0x1000)
    EXPECT_EQ(f.wc->storeTransactions(), 1u);
    // 0x1000 is gone: storing there again misses.
    f.wc->store(0x1000, 4, 3);
    EXPECT_EQ(f.wc->hitRate().hits(), 0u);
}

TEST(WriteCache, LruEvictsLeastRecentlyWritten)
{
    Fixture f(2);
    f.wc->store(0x1000, 4, 0);
    f.wc->store(0x2000, 4, 1);
    f.wc->store(0x1000, 4, 2); // refresh 0x1000
    f.wc->store(0x3000, 4, 3); // must evict 0x2000
    f.wc->store(0x1000, 4, 4);
    EXPECT_EQ(f.wc->hitRate().hits(), 2u) << "0x1000 stayed resident";
}

TEST(WriteCache, LoadProbeNeedsWordValid)
{
    Fixture f;
    f.wc->store(0x1000, 4, 0);
    EXPECT_TRUE(f.wc->loadProbe(0x1000, 4));
    EXPECT_FALSE(f.wc->loadProbe(0x1004, 4))
        << "line present but word not written";
    EXPECT_FALSE(f.wc->loadProbe(0x5000, 4));
}

TEST(WriteCache, DoubleWordAccessesUseTwoWordMasks)
{
    Fixture f;
    f.wc->store(0x1000, 8, 0);
    EXPECT_TRUE(f.wc->loadProbe(0x1000, 4));
    EXPECT_TRUE(f.wc->loadProbe(0x1004, 4));
    EXPECT_TRUE(f.wc->loadProbe(0x1000, 8));
}

TEST(WriteCache, LoadProbesCountInHitRate)
{
    Fixture f;
    f.wc->store(0x1000, 4, 0); // miss
    f.wc->loadProbe(0x1000, 4); // hit
    f.wc->loadProbe(0x2000, 4); // miss
    EXPECT_EQ(f.wc->hitRate().total(), 3u);
    EXPECT_EQ(f.wc->hitRate().hits(), 1u);
}

TEST(WriteCache, ValidationTracksPageMatches)
{
    Fixture f;
    f.wc->store(0x1000, 4, 0); // first store: page miss
    f.wc->store(0x1400, 4, 1); // same 4K page, new line: validated
    f.wc->store(0x9000, 4, 2); // new page: not validated
    EXPECT_EQ(f.wc->validationRate().total(), 3u);
    EXPECT_EQ(f.wc->validationRate().hits(), 1u);
    // Unvalidated stores cost an MMU round trip on the BIU.
    EXPECT_EQ(f.biu.roundTrips(), 2u);
}

TEST(WriteCache, ValidationDisabledSkipsRoundTrips)
{
    Fixture f(4, /*validate=*/false);
    f.wc->store(0x1000, 4, 0);
    f.wc->store(0x9000, 4, 1);
    EXPECT_EQ(f.biu.roundTrips(), 0u);
    EXPECT_EQ(f.wc->validationRate().total(), 0u);
}

TEST(WriteCache, DrainFlushesEverything)
{
    Fixture f(4);
    f.wc->store(0x1000, 4, 0);
    f.wc->store(0x2000, 4, 1);
    f.wc->store(0x3000, 4, 2);
    f.wc->drain(10);
    EXPECT_EQ(f.wc->storeTransactions(), 3u);
    // Cache is empty afterwards.
    EXPECT_FALSE(f.wc->loadProbe(0x1000, 4));
}

TEST(WriteCache, TrafficReductionScenario)
{
    // Paper §5.5: coalescing turns many stores into few transactions.
    Fixture f(4);
    Count stores = 0;
    for (int rep = 0; rep < 50; ++rep) {
        for (Addr a = 0x1000; a < 0x1020; a += 4) {
            f.wc->store(a, 4, rep);
            ++stores;
        }
    }
    f.wc->drain(1000);
    EXPECT_EQ(f.wc->stores(), stores);
    EXPECT_LE(f.wc->storeTransactions(), 1u)
        << "one hot line => at most one transaction";
}

TEST(WriteCache, UnvalidatedLinesEvictLate)
{
    // §2.3: a store whose page missed the micro-TLB may not leave
    // the chip before its MMU round trip returns. Observable as the
    // eviction's bus slot landing after the validation reply.
    Fixture f(1); // single line: the second store forces eviction
    f.wc->store(0x1000, 4, 0); // page miss -> round trip, reply ~17
    const Cycle bus_after_validation = 0 + 4 + 17;
    f.wc->store(0x9000, 4, 1); // evicts the unvalidated line
    // The eviction write must queue at/after the validation reply;
    // a read issued now sees that backlog.
    const Cycle read_done = f.biu.requestLine(2, false);
    EXPECT_GT(read_done, bus_after_validation)
        << "eviction (and thus the read behind it) waited for the "
           "MMU reply";
}

TEST(WriteCache, ValidatedLinesEvictImmediately)
{
    Fixture f(1, /*validate=*/false);
    f.wc->store(0x1000, 4, 0);
    f.wc->store(0x9000, 4, 1); // evicts immediately (bus at ~1)
    const Cycle read_done = f.biu.requestLine(2, false);
    // Backlog: eviction write occupies 4 cycles from ~1; the read
    // then takes 17+4.
    EXPECT_LE(read_done, 1u + 4 + 17 + 4 + 2);
}

TEST(WriteCache, DoubleWordStoreStraddlingWordsStaysInOneLine)
{
    Fixture f;
    f.wc->store(0x1018, 8, 0); // words 6 and 7 of the line
    EXPECT_TRUE(f.wc->loadProbe(0x1018, 4));
    EXPECT_TRUE(f.wc->loadProbe(0x101c, 4));
    EXPECT_FALSE(f.wc->loadProbe(0x1020, 4))
        << "next line untouched";
}

TEST(WriteCacheDeath, BadLineSizePanics)
{
    Biu biu(BiuConfig{});
    WriteCacheConfig cfg;
    cfg.line_bytes = 64;
    EXPECT_DEATH(WriteCache(cfg, biu), "eight");
}

} // namespace
