/**
 * @file
 * Unit tests for the fixed-capacity FIFO.
 */

#include <gtest/gtest.h>

#include "util/bounded_queue.hh"

namespace
{

using aurora::BoundedQueue;

TEST(BoundedQueue, StartsEmpty)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.capacity(), 4u);
    EXPECT_EQ(q.space(), 4u);
}

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(3);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, WrapAroundKeepsOrder)
{
    BoundedQueue<int> q(3);
    for (int round = 0; round < 10; ++round) {
        q.push(round * 2);
        q.push(round * 2 + 1);
        EXPECT_EQ(q.pop(), round * 2);
        EXPECT_EQ(q.pop(), round * 2 + 1);
    }
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, AtIndexesFromFront)
{
    BoundedQueue<int> q(4);
    q.push(10);
    q.push(20);
    q.push(30);
    EXPECT_EQ(q.at(0), 10);
    EXPECT_EQ(q.at(1), 20);
    EXPECT_EQ(q.at(2), 30);
    q.pop();
    EXPECT_EQ(q.at(0), 20);
    EXPECT_EQ(q.at(1), 30);
}

TEST(BoundedQueue, FrontPeeksWithoutConsuming)
{
    BoundedQueue<int> q(2);
    q.push(7);
    EXPECT_EQ(q.front(), 7);
    EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueue, ClearEmpties)
{
    BoundedQueue<int> q(2);
    q.push(1);
    q.push(2);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push(9);
    EXPECT_EQ(q.front(), 9);
}

TEST(BoundedQueueDeath, PushWhenFullPanics)
{
    BoundedQueue<int> q(1);
    q.push(1);
    EXPECT_DEATH(q.push(2), "full");
}

TEST(BoundedQueueDeath, PopWhenEmptyPanics)
{
    BoundedQueue<int> q(1);
    EXPECT_DEATH(q.pop(), "empty");
}

TEST(BoundedQueueDeath, AtOutOfRangePanics)
{
    BoundedQueue<int> q(2);
    q.push(1);
    EXPECT_DEATH(q.at(1), "range");
}

} // namespace
