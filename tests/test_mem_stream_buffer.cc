/**
 * @file
 * Unit tests for the Jouppi stream buffer prefetch unit.
 */

#include <gtest/gtest.h>

#include "mem/biu.hh"
#include "mem/stream_buffer.hh"

namespace
{

using namespace aurora;
using namespace aurora::mem;

struct Fixture
{
    explicit Fixture(unsigned buffers = 4, unsigned depth = 4,
                     bool enabled = true)
        : biu(BiuConfig{17, 4, 8})
    {
        PrefetchConfig cfg;
        cfg.num_buffers = buffers;
        cfg.depth = depth;
        cfg.line_bytes = 32;
        cfg.enabled = enabled;
        pfu.emplace(cfg, biu);
    }

    Biu biu;
    std::optional<PrefetchUnit> pfu;
};

TEST(StreamBuffer, FirstMissAllocatesAndDemandFetches)
{
    Fixture f;
    const auto res = f.pfu->missLookup(0x1000, 0, true);
    EXPECT_FALSE(res.hit);
    EXPECT_GT(res.ready, 0u);
    // One prefetch (next line) plus one demand read.
    EXPECT_EQ(f.biu.prefetchReads(), 1u);
    EXPECT_EQ(f.biu.demandReads(), 1u);
}

TEST(StreamBuffer, SequentialMissHitsTheBuffer)
{
    Fixture f;
    f.pfu->missLookup(0x1000, 0, true);
    const auto res = f.pfu->missLookup(0x1020, 100, true);
    EXPECT_TRUE(res.hit) << "next sequential line was prefetched";
    EXPECT_EQ(f.pfu->instHitRate().hits(), 1u);
    EXPECT_EQ(f.pfu->instHitRate().total(), 2u);
}

TEST(StreamBuffer, HitTopsUpTheStream)
{
    Fixture f(4, 4);
    f.pfu->missLookup(0x1000, 0, true);
    EXPECT_EQ(f.biu.prefetchReads(), 1u);
    f.pfu->missLookup(0x1020, 100, true); // hit -> fills to depth
    EXPECT_GE(f.biu.prefetchReads(), 4u)
        << "after a hit the buffer fetches ahead until full";
    // The whole following stream now hits.
    for (Addr a = 0x1040; a < 0x10c0; a += 32)
        EXPECT_TRUE(f.pfu->missLookup(a, 200, true).hit);
}

TEST(StreamBuffer, RandomMissesNeverHit)
{
    Fixture f;
    Addr a = 0x10000;
    int hits = 0;
    for (int i = 0; i < 20; ++i) {
        a += 4096 + 64 * static_cast<Addr>(i);
        hits += f.pfu->missLookup(a, i * 10, false).hit ? 1 : 0;
    }
    EXPECT_EQ(hits, 0);
}

TEST(StreamBuffer, SkippedLinesAreShiftedOut)
{
    Fixture f(1, 4);
    f.pfu->missLookup(0x1000, 0, true);
    f.pfu->missLookup(0x1020, 50, true); // hit, tops up to 4 lines
    // Skip 0x1040 and 0x1060, ask for 0x1080 (still in the buffer).
    const auto res = f.pfu->missLookup(0x1080, 100, true);
    EXPECT_TRUE(res.hit);
    // The skipped lines are gone: going back misses.
    EXPECT_FALSE(f.pfu->missLookup(0x1040, 150, true).hit);
}

TEST(StreamBuffer, LruBufferIsReallocated)
{
    Fixture f(2, 4);
    f.pfu->missLookup(0x1000, 0, true);  // buffer A: stream 0x1020..
    f.pfu->missLookup(0x9000, 10, true); // buffer B: stream 0x9020..
    f.pfu->missLookup(0x5000, 20, true); // reallocates A (LRU)
    // The fresh 0x5000 stream is alive (and the hit refreshes it).
    EXPECT_TRUE(f.pfu->missLookup(0x5020, 30, true).hit);
    // A's old stream is gone. Note that probing for it *is* a miss,
    // which per §2.2 reallocates the now-LRU buffer B.
    EXPECT_FALSE(f.pfu->missLookup(0x1020, 40, true).hit);
    // B was clobbered by that miss: its stream no longer hits.
    EXPECT_FALSE(f.pfu->missLookup(0x9020, 50, true).hit);
}

TEST(StreamBuffer, TwoBuffersThrashUnderThreeStreams)
{
    // The small model's two buffers thrash when I and D streams
    // interleave (§5.2).
    Fixture f(2, 4);
    int hits = 0;
    Addr s1 = 0x1000, s2 = 0x8000, s3 = 0x20000;
    for (int i = 0; i < 12; ++i) {
        hits += f.pfu->missLookup(s1, i * 30 + 0, true).hit;
        hits += f.pfu->missLookup(s2, i * 30 + 10, false).hit;
        hits += f.pfu->missLookup(s3, i * 30 + 20, false).hit;
        s1 += 32;
        s2 += 32;
        s3 += 32;
    }
    EXPECT_LT(hits, 12) << "three streams cannot live in two buffers";
}

TEST(StreamBuffer, FourBuffersTrackThreeStreams)
{
    Fixture f(4, 4);
    int hits = 0;
    Addr s1 = 0x1000, s2 = 0x8000, s3 = 0x20000;
    for (int i = 0; i < 12; ++i) {
        hits += f.pfu->missLookup(s1, i * 30 + 0, true).hit;
        hits += f.pfu->missLookup(s2, i * 30 + 10, false).hit;
        hits += f.pfu->missLookup(s3, i * 30 + 20, false).hit;
        s1 += 32;
        s2 += 32;
        s3 += 32;
    }
    EXPECT_GT(hits, 25) << "four buffers hold three streams easily";
}

TEST(StreamBuffer, DisabledUnitAlwaysDemandFetches)
{
    Fixture f(4, 4, /*enabled=*/false);
    const auto r1 = f.pfu->missLookup(0x1000, 0, true);
    const auto r2 = f.pfu->missLookup(0x1020, 100, true);
    EXPECT_FALSE(r1.hit);
    EXPECT_FALSE(r2.hit);
    EXPECT_EQ(f.biu.prefetchReads(), 0u);
    EXPECT_EQ(f.biu.demandReads(), 2u);
    // Disabled prefetch records no hit-rate samples.
    EXPECT_EQ(f.pfu->instHitRate().total(), 0u);
}

TEST(StreamBuffer, InstAndDataStatsAreSeparate)
{
    Fixture f;
    f.pfu->missLookup(0x1000, 0, true);
    f.pfu->missLookup(0x1020, 10, true); // I hit
    f.pfu->missLookup(0x9000, 20, false);
    EXPECT_EQ(f.pfu->instHitRate().total(), 2u);
    EXPECT_EQ(f.pfu->instHitRate().hits(), 1u);
    EXPECT_EQ(f.pfu->dataHitRate().total(), 1u);
    EXPECT_EQ(f.pfu->dataHitRate().hits(), 0u);
}

TEST(StreamBuffer, InFlightHitWaitsForArrival)
{
    Fixture f;
    f.pfu->missLookup(0x1000, 0, true);
    // Immediately ask for the prefetched line: it is still in
    // flight, so ready lies in the future.
    const auto res = f.pfu->missLookup(0x1020, 1, true);
    EXPECT_TRUE(res.hit);
    EXPECT_GT(res.ready, 1u);
}

} // namespace
