/**
 * @file
 * Unit tests for the decoupled FPU: queues, scoreboarding, the three
 * issue policies, and dual-issue constraints.
 */

#include <gtest/gtest.h>

#include "fpu/fpu.hh"

namespace
{

using namespace aurora;
using namespace aurora::fpu;
using aurora::trace::Inst;
using aurora::trace::OpClass;

Inst
fpOp(OpClass op, RegIndex a, RegIndex b, RegIndex d)
{
    Inst i;
    i.op = op;
    i.fsrc_a = a;
    i.fsrc_b = b;
    i.fdst = d;
    return i;
}

FpuConfig
basicConfig()
{
    FpuConfig cfg; // recommended §5.11 configuration
    return cfg;
}

/** Run tick() from @p from to @p to inclusive. */
void
run(Fpu &fpu, Cycle from, Cycle to)
{
    for (Cycle t = from; t <= to; ++t)
        fpu.tick(t);
}

TEST(Fpu, StartsIdle)
{
    Fpu fpu(basicConfig());
    EXPECT_TRUE(fpu.idle());
    EXPECT_TRUE(fpu.canAcceptArith());
    EXPECT_TRUE(fpu.canAcceptLoad());
    EXPECT_TRUE(fpu.canAcceptStore());
}

TEST(Fpu, SingleOpIssuesAndCompletes)
{
    Fpu fpu(basicConfig());
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 2, 4, 6), 0);
    EXPECT_FALSE(fpu.idle());
    run(fpu, 0, 10);
    EXPECT_TRUE(fpu.idle());
    EXPECT_EQ(fpu.stats().issued, 1u);
    // 3-cycle add issued at t=0 completes at t=3.
    EXPECT_EQ(fpu.regReadyAt(6), 3u);
}

TEST(Fpu, InstructionQueueFillsAndBlocks)
{
    auto cfg = basicConfig();
    cfg.inst_queue = 2;
    Fpu fpu(cfg);
    fpu.dispatchArith(fpOp(OpClass::FpDiv, 2, 4, 6), 0);
    fpu.dispatchArith(fpOp(OpClass::FpDiv, 8, 10, 12), 0);
    EXPECT_FALSE(fpu.canAcceptArith());
}

TEST(Fpu, RawDependencyWaitsForProducer)
{
    Fpu fpu(basicConfig());
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 2, 4, 6), 0);
    fpu.dispatchArith(fpOp(OpClass::FpMul, 6, 8, 10), 0);
    run(fpu, 0, 1);
    EXPECT_EQ(fpu.stats().issued, 1u) << "mul waits for f6";
    run(fpu, 2, 20);
    EXPECT_EQ(fpu.stats().issued, 2u);
    // add completes at 3; mul (5 cycles) issues at 3, completes at 8.
    EXPECT_EQ(fpu.regReadyAt(10), 8u);
}

TEST(Fpu, LoadDataFeedsDependentOp)
{
    Fpu fpu(basicConfig());
    fpu.dispatchLoad(4, /*data_ready=*/10, 0);
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 4, 6, 8), 0);
    run(fpu, 0, 9);
    EXPECT_EQ(fpu.stats().issued, 0u) << "waiting for load data";
    run(fpu, 10, 20);
    EXPECT_EQ(fpu.stats().issued, 1u);
}

TEST(Fpu, LoadQueueFreesOnArrival)
{
    auto cfg = basicConfig();
    cfg.load_queue = 2;
    Fpu fpu(cfg);
    fpu.dispatchLoad(2, 5, 0);
    fpu.dispatchLoad(4, 7, 0);
    EXPECT_FALSE(fpu.canAcceptLoad());
    run(fpu, 0, 5);
    EXPECT_TRUE(fpu.canAcceptLoad()) << "first entry freed at t=5";
}

TEST(Fpu, StoreQueueWaitsForPendingWriter)
{
    Fpu fpu(basicConfig());
    // Store of f6, whose producer is still queued behind a divide.
    fpu.dispatchArith(fpOp(OpClass::FpDiv, 2, 4, 8), 0);
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 2, 4, 6), 0);
    fpu.dispatchStore(6, 0);
    run(fpu, 0, 5);
    // The add is stuck behind the divide (in-order issue happens,
    // div issues first at t=0, add at t=1, completes t=4); the store
    // may only leave after the add's data exists.
    EXPECT_FALSE(fpu.idle());
    run(fpu, 6, 30);
    EXPECT_TRUE(fpu.idle());
}

TEST(Fpu, StoreOfReadyRegisterDrainsImmediately)
{
    auto cfg = basicConfig();
    cfg.store_queue = 1;
    Fpu fpu(cfg);
    fpu.dispatchStore(2, 0);
    EXPECT_FALSE(fpu.canAcceptStore());
    run(fpu, 0, 1);
    EXPECT_TRUE(fpu.canAcceptStore());
}

TEST(Fpu, InOrderPolicySerializesAcrossUnits)
{
    auto cfg = basicConfig();
    cfg.policy = IssuePolicy::InOrderComplete;
    Fpu fpu(cfg);
    // Independent add then mul: must not overlap in different units.
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 2, 4, 6), 0);
    fpu.dispatchArith(fpOp(OpClass::FpMul, 8, 10, 12), 0);
    run(fpu, 0, 2);
    EXPECT_EQ(fpu.stats().issued, 1u)
        << "mul may not start while the add is active";
    run(fpu, 3, 30);
    EXPECT_EQ(fpu.stats().issued, 2u);
    EXPECT_EQ(fpu.regReadyAt(12), 8u) << "mul started at add's end";
}

TEST(Fpu, InOrderPolicyStreamsWithinPipelinedUnit)
{
    auto cfg = basicConfig();
    cfg.policy = IssuePolicy::InOrderComplete;
    Fpu fpu(cfg);
    // Back-to-back independent adds share the pipelined add unit and
    // complete in order, so they may overlap (§5.8).
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 2, 4, 6), 0);
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 8, 10, 12), 0);
    run(fpu, 0, 1);
    EXPECT_EQ(fpu.stats().issued, 2u);
}

TEST(Fpu, OutOfOrderSingleIssuesOnePerCycle)
{
    auto cfg = basicConfig();
    cfg.policy = IssuePolicy::OutOfOrderSingle;
    Fpu fpu(cfg);
    for (int i = 0; i < 4; ++i)
        fpu.dispatchArith(
            fpOp(OpClass::FpAdd, 2, 4,
                 static_cast<RegIndex>(6 + 2 * i)),
            0);
    run(fpu, 0, 1);
    EXPECT_EQ(fpu.stats().issued, 2u);
    EXPECT_EQ(fpu.stats().dual_cycles, 0u);
}

TEST(Fpu, DualIssuesTwoDifferentUnits)
{
    Fpu fpu(basicConfig()); // dual policy by default
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 2, 4, 6), 0);
    fpu.dispatchArith(fpOp(OpClass::FpMul, 8, 10, 12), 0);
    fpu.tick(0);
    EXPECT_EQ(fpu.stats().issued, 2u);
    EXPECT_EQ(fpu.stats().dual_cycles, 1u);
}

TEST(Fpu, DualBlockedBySameUnit)
{
    Fpu fpu(basicConfig());
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 2, 4, 6), 0);
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 8, 10, 12), 0);
    fpu.tick(0);
    EXPECT_EQ(fpu.stats().issued, 1u)
        << "two adds cannot start in one cycle";
}

TEST(Fpu, DualBlockedByRawDependency)
{
    Fpu fpu(basicConfig());
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 2, 4, 6), 0);
    fpu.dispatchArith(fpOp(OpClass::FpMul, 6, 8, 10), 0);
    fpu.tick(0);
    EXPECT_EQ(fpu.stats().issued, 1u)
        << "second op reads the first op's destination";
}

TEST(Fpu, RobFullBlocksIssue)
{
    auto cfg = basicConfig();
    cfg.rob_entries = 1;
    cfg.policy = IssuePolicy::OutOfOrderSingle;
    Fpu fpu(cfg);
    fpu.dispatchArith(fpOp(OpClass::FpDiv, 2, 4, 6), 0);
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 8, 10, 12), 0);
    run(fpu, 0, 5);
    EXPECT_EQ(fpu.stats().issued, 1u);
    EXPECT_GT(fpu.stats().blocked_rob, 0u);
    run(fpu, 6, 40);
    EXPECT_EQ(fpu.stats().issued, 2u);
}

TEST(Fpu, ResultBusConflictDelaysIssue)
{
    auto cfg = basicConfig();
    cfg.result_buses = 1;
    cfg.policy = IssuePolicy::OutOfOrderSingle;
    cfg.add = {3, true};
    Fpu fpu(cfg);
    // Two adds complete at t+3 and t+1+3: no conflict with 1 bus.
    // An add at t=0 (done t=3) and a cvt at t=1 (2 cycles, done t=3)
    // collide on the single bus.
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 2, 4, 6), 0);
    fpu.dispatchArith(fpOp(OpClass::FpCvt, 8, 10, 12), 0);
    run(fpu, 0, 1);
    EXPECT_EQ(fpu.stats().issued, 1u);
    EXPECT_GT(fpu.stats().blocked_bus, 0u);
    run(fpu, 2, 20);
    EXPECT_EQ(fpu.stats().issued, 2u);
}

TEST(Fpu, DivOccupiesIterativeUnit)
{
    auto cfg = basicConfig();
    cfg.policy = IssuePolicy::OutOfOrderSingle;
    Fpu fpu(cfg);
    fpu.dispatchArith(fpOp(OpClass::FpDiv, 2, 4, 6), 0);
    fpu.dispatchArith(fpOp(OpClass::FpDiv, 8, 10, 12), 0);
    run(fpu, 0, 17);
    EXPECT_EQ(fpu.stats().issued, 1u);
    EXPECT_GT(fpu.stats().blocked_unit, 0u);
    run(fpu, 18, 60);
    EXPECT_EQ(fpu.stats().issued, 2u);
}

TEST(FpuDeath, ArithOverrunPanics)
{
    auto cfg = basicConfig();
    cfg.inst_queue = 1;
    Fpu fpu(cfg);
    fpu.dispatchArith(fpOp(OpClass::FpAdd, 2, 4, 6), 0);
    EXPECT_DEATH(fpu.dispatchArith(fpOp(OpClass::FpAdd, 2, 4, 8), 0),
                 "overrun");
}

TEST(FpuDeath, NonArithDispatchPanics)
{
    Fpu fpu(basicConfig());
    Inst load;
    load.op = OpClass::FpLoad;
    EXPECT_DEATH(fpu.dispatchArith(load, 0), "non-arith");
}

} // namespace
