/**
 * @file
 * Unit tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include "util/stats.hh"

namespace
{

using aurora::Accumulator;
using aurora::Histogram;
using aurora::Ratio;

TEST(Accumulator, EmptyIsSafe)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 0.0);
}

TEST(Accumulator, MeanMinMax)
{
    Accumulator acc;
    for (double x : {2.0, 4.0, 6.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 12.0);
}

TEST(Accumulator, VarianceMatchesDefinition)
{
    Accumulator acc;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        acc.add(x);
    // Population variance of {1,2,3,4} is 1.25.
    EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
    EXPECT_NEAR(acc.stddev(), 1.1180339887, 1e-9);
}

TEST(Accumulator, SingleSampleVarianceZero)
{
    Accumulator acc;
    acc.add(5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
}

TEST(Accumulator, ResetClearsEverything)
{
    Accumulator acc;
    acc.add(10.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(Ratio, BasicRates)
{
    Ratio r;
    r.record(true);
    r.record(true);
    r.record(false);
    EXPECT_EQ(r.hits(), 2u);
    EXPECT_EQ(r.misses(), 1u);
    EXPECT_EQ(r.total(), 3u);
    EXPECT_NEAR(r.rate(), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(r.percent(), 66.666, 0.01);
}

TEST(Ratio, EmptyRateIsZero)
{
    Ratio r;
    EXPECT_DOUBLE_EQ(r.rate(), 0.0);
    EXPECT_DOUBLE_EQ(r.percent(), 0.0);
}

TEST(Ratio, RecordMany)
{
    Ratio r;
    r.recordMany(30, 100);
    EXPECT_EQ(r.hits(), 30u);
    EXPECT_EQ(r.total(), 100u);
    EXPECT_DOUBLE_EQ(r.percent(), 30.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    for (std::uint64_t x : {0u, 1u, 1u, 3u, 9u, 100u})
        h.add(x);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_NEAR(h.mean(), 114.0 / 6.0, 1e-12);
}

TEST(FormatFixed, Decimals)
{
    EXPECT_EQ(aurora::formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(aurora::formatFixed(2.0, 0), "2");
    EXPECT_EQ(aurora::formatFixed(-1.5, 1), "-1.5");
}

} // namespace
