/**
 * @file
 * Telemetry inertness: attaching observers — the metrics sampler,
 * the trace-event exporter, or both through a fanout — must never
 * change a simulation result. Every field of RunResult, including
 * the occupancy distributions and the auditor's ledger, must be
 * bit-identical with telemetry on and off, for single runs and for
 * sweeps at 1, 2, and 8 workers.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/report.hh"
#include "core/simulator.hh"
#include "harness/sweep.hh"
#include "telemetry/registry.hh"
#include "telemetry/sampler.hh"
#include "telemetry/trace_event.hh"
#include "trace/spec_profiles.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using namespace aurora::telemetry;

constexpr Count N = 20000;

/** Every-field RunResult equality (bit-identical doubles). */
void
expectRunEq(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.issuing_cycles, b.issuing_cycles);
    EXPECT_EQ(a.tail_cycles, b.tail_cycles);
    EXPECT_EQ(a.stalls, b.stalls);
    EXPECT_EQ(a.icache_hit_pct, b.icache_hit_pct);
    EXPECT_EQ(a.dcache_hit_pct, b.dcache_hit_pct);
    EXPECT_EQ(a.iprefetch_hit_pct, b.iprefetch_hit_pct);
    EXPECT_EQ(a.dprefetch_hit_pct, b.dprefetch_hit_pct);
    EXPECT_EQ(a.write_cache_hit_pct, b.write_cache_hit_pct);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.store_transactions, b.store_transactions);
    EXPECT_EQ(a.fp_dispatched, b.fp_dispatched);
    EXPECT_EQ(a.fpu.issued, b.fpu.issued);
    EXPECT_EQ(a.fpu.dual_cycles, b.fpu.dual_cycles);
    EXPECT_EQ(a.rbe_cost, b.rbe_cost);
    EXPECT_EQ(a.issue_width_cycles, b.issue_width_cycles);
    EXPECT_EQ(a.ledger.retired, b.ledger.retired);
    EXPECT_EQ(a.ledger.icache_accesses, b.ledger.icache_accesses);
    EXPECT_EQ(a.ledger.dcache_accesses, b.ledger.dcache_accesses);
    EXPECT_EQ(a.ledger.mshr_allocations, b.ledger.mshr_allocations);
    EXPECT_EQ(a.ledger.mshr_releases, b.ledger.mshr_releases);
    EXPECT_EQ(a.avg_rob_occupancy, b.avg_rob_occupancy);
    EXPECT_EQ(a.avg_mshr_occupancy, b.avg_mshr_occupancy);
    const auto occ_eq = [](const OccupancyStats &x,
                           const OccupancyStats &y) {
        EXPECT_EQ(x.mean, y.mean);
        EXPECT_EQ(x.p50, y.p50);
        EXPECT_EQ(x.p95, y.p95);
        EXPECT_EQ(x.max, y.max);
    };
    occ_eq(a.rob_occupancy, b.rob_occupancy);
    occ_eq(a.mshr_occupancy, b.mshr_occupancy);
    occ_eq(a.fp_instq_occupancy, b.fp_instq_occupancy);
    occ_eq(a.fp_loadq_occupancy, b.fp_loadq_occupancy);
    occ_eq(a.fp_storeq_occupancy, b.fp_storeq_occupancy);
}

TEST(TelemetryDeterminism, ObserversDoNotPerturbSingleRuns)
{
    for (const char *bench : {"espresso", "nasa7"}) {
        SCOPED_TRACE(bench);
        const auto profile = trace::profileByName(bench);
        const RunResult off =
            simulate(baselineModel(), profile, N);

        Registry registry;
        RunSampler sampler(registry);
        const RunResult with_sampler = simulate(
            baselineModel(), profile, N, WatchdogConfig{}, &sampler);
        expectRunEq(off, with_sampler);

        // Both observers at once through the fanout.
        Registry registry2;
        RunSampler sampler2(registry2);
        TraceEventLog log;
        TraceEventObserver events(log, 500);
        ObserverFanout fanout;
        fanout.attach(&sampler2);
        fanout.attach(&events);
        const RunResult with_both = simulate(
            baselineModel(), profile, N, WatchdogConfig{}, &fanout);
        expectRunEq(off, with_both);
        EXPECT_GT(log.size(), 0u);

        // Two sampled runs also agree with each other metric by
        // metric — the sampler reads state, it never consumes it.
        ASSERT_EQ(registry.counters().size(),
                  registry2.counters().size());
        auto it = registry2.counters().begin();
        for (const auto &entry : registry.counters()) {
            EXPECT_EQ(entry.counter.value(), it->counter.value())
                << entry.name;
            ++it;
        }
    }
}

TEST(TelemetryDeterminism, ReportIsUnchangedByTelemetry)
{
    // The golden-stats suite diffs rendered reports verbatim; a
    // telemetry run must render the identical report.
    const RunResult off =
        simulate(baselineModel(), trace::espresso(), N);
    Registry registry;
    RunSampler sampler(registry);
    const RunResult on = simulate(baselineModel(), trace::espresso(),
                                  N, WatchdogConfig{}, &sampler);
    EXPECT_EQ(runReport(off), runReport(on));
}

TEST(TelemetryDeterminism, SweepsAreBitIdenticalAcrossWorkerCounts)
{
    // A mixed integer/FP grid, run plain and with one sampler per
    // job, at three worker counts: every result must match the
    // telemetry-free single-worker reference exactly.
    std::vector<harness::SweepJob> grid;
    for (const char *bench : {"espresso", "li", "nasa7", "doduc"})
        grid.push_back(
            {baselineModel(), trace::profileByName(bench), N});
    for (const char *bench : {"espresso", "nasa7"})
        grid.push_back(
            {largeModel(), trace::profileByName(bench), N});

    harness::SweepOptions ref_opts;
    ref_opts.workers = 1;
    harness::SweepRunner ref_runner(ref_opts);
    const auto reference = ref_runner.run(grid);

    for (const unsigned workers : {1u, 2u, 8u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        std::vector<Registry> registries(grid.size());
        std::vector<std::unique_ptr<RunSampler>> samplers;
        std::vector<std::function<RunResult()>> tasks;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            samplers.push_back(
                std::make_unique<RunSampler>(registries[i]));
            RunSampler *sampler = samplers.back().get();
            const harness::SweepJob &job = grid[i];
            tasks.push_back([job, sampler]() {
                return simulate(job.machine, job.profile,
                                job.instructions, WatchdogConfig{},
                                sampler);
            });
        }
        harness::SweepOptions opts;
        opts.workers = workers;
        harness::SweepRunner runner(opts);
        const auto sampled = runner.runTasks(tasks);
        ASSERT_EQ(sampled.size(), reference.size());
        for (std::size_t i = 0; i < sampled.size(); ++i) {
            SCOPED_TRACE("job " + std::to_string(i));
            expectRunEq(reference[i], sampled[i]);
        }
        // And the metric streams themselves are deterministic: the
        // same job samples the same counters at every worker count.
        EXPECT_EQ(registries[0]
                      .findCounter("sim.cycles")
                      ->value(),
                  reference[0].cycles);
    }
}

} // namespace
