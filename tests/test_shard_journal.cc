/**
 * @file
 * Shard journal tests: writer/loader round trip, the SIGKILL
 * torn-tail contract at every cut byte (the record_io fuzz pattern
 * applied to the shard format), and the merge's two invariants —
 * every commit byte-identical in its epoch's journal, every leftover
 * entry behind a fence (AUR306 otherwise).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "harness/journal.hh"
#include "shard/shard_journal.hh"
#include "util/sim_error.hh"

namespace
{

namespace fs = std::filesystem;
using namespace aurora;
using namespace aurora::shard;
using aurora::util::SimError;
using aurora::util::SimErrorCode;

std::string
tempPath(const std::string &name)
{
    return (fs::path(::testing::TempDir()) / name).string();
}

/** A plausible encoded journal record for ticket @p ticket. */
std::string
recordBytes(std::uint64_t job_index)
{
    harness::JournalRecord rec;
    rec.job_index = job_index;
    rec.machine_hash = 0x1234'5678'9abc'def0ull + job_index;
    rec.seed = 42 + job_index;
    rec.outcome.ok = true;
    rec.outcome.attempts = 1;
    rec.outcome.result.instructions = 1000 + job_index;
    rec.outcome.result.cycles = 1700 + job_index;
    return harness::encodeJournalRecord(rec);
}

TEST(ShardJournal, RoundTripsHeaderAndEntries)
{
    const std::string path = tempPath("shard-rt.ajrn");
    {
        ShardJournalWriter w(path, /*slot=*/3, /*epoch=*/7);
        w.append({7, 10, recordBytes(0)});
        w.append({7, 11, recordBytes(1)});
    }
    const LoadedShardJournal loaded = loadShardJournal(path);
    EXPECT_EQ(loaded.slot, 3u);
    EXPECT_EQ(loaded.epoch, 7u);
    EXPECT_FALSE(loaded.dropped_tail);
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.entries[0].epoch, 7u);
    EXPECT_EQ(loaded.entries[0].ticket, 10u);
    EXPECT_EQ(loaded.entries[0].record, recordBytes(0));
    EXPECT_EQ(loaded.entries[1].ticket, 11u);
    EXPECT_EQ(loaded.valid_bytes, fs::file_size(path));
}

TEST(ShardJournal, MissingFileIsBadJournal)
{
    try {
        (void)loadShardJournal(tempPath("shard-nope.ajrn"));
        FAIL() << "missing file accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadJournal);
    }
}

TEST(ShardJournal, EveryKillDuringAppendCutIsATornTail)
{
    // SIGKILL mid-append leaves a prefix of the last record. Cut the
    // file at every byte past the first entry: each cut must load,
    // drop exactly the torn entry, and report the good-bytes length —
    // never misparse, never lose entry 0.
    const std::string path = tempPath("shard-torn.ajrn");
    std::uintmax_t first_end = 0;
    {
        ShardJournalWriter w(path, /*slot=*/0, /*epoch=*/2);
        w.append({2, 1, recordBytes(0)});
        first_end = fs::file_size(path);
        w.append({2, 2, recordBytes(1)});
    }
    const std::uintmax_t full = fs::file_size(path);
    ASSERT_GT(full, first_end);
    for (std::uintmax_t cut = first_end + 1; cut < full; ++cut) {
        SCOPED_TRACE("cut at byte " + std::to_string(cut));
        const std::string victim = tempPath("shard-torn-cut.ajrn");
        fs::copy_file(path, victim,
                      fs::copy_options::overwrite_existing);
        fs::resize_file(victim, cut);
        const LoadedShardJournal loaded = loadShardJournal(victim);
        EXPECT_TRUE(loaded.dropped_tail);
        EXPECT_EQ(loaded.valid_bytes, first_end);
        ASSERT_EQ(loaded.entries.size(), 1u);
        EXPECT_EQ(loaded.entries[0].ticket, 1u);
    }
}

TEST(ShardJournal, TruncatedHeaderIsBadJournal)
{
    const std::string path = tempPath("shard-hdr.ajrn");
    {
        ShardJournalWriter w(path, /*slot=*/0, /*epoch=*/1);
    }
    fs::resize_file(path, fs::file_size(path) / 2);
    try {
        (void)loadShardJournal(path);
        FAIL() << "torn header accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadJournal);
    }
}

/** Build journals+commits for a clean two-shard, two-epoch run. */
struct MergeFixture
{
    std::vector<ShardJournalRef> journals;
    std::vector<CommitRef> commits;
    std::set<std::uint64_t> fenced;

    MergeFixture(const std::string &tag)
    {
        const std::string p1 =
            tempPath("merge-" + tag + "-e1.ajrn");
        const std::string p2 =
            tempPath("merge-" + tag + "-e2.ajrn");
        {
            ShardJournalWriter w(p1, /*slot=*/0, /*epoch=*/1);
            w.append({1, 1, recordBytes(0)});
            w.append({1, 3, recordBytes(2)});
        }
        {
            ShardJournalWriter w(p2, /*slot=*/1, /*epoch=*/2);
            w.append({2, 2, recordBytes(1)});
        }
        journals = {{1, 0, p1}, {2, 1, p2}};
        commits = {{0, 0, 1, 1, recordBytes(0)},
                   {1, 1, 2, 2, recordBytes(1)},
                   {2, 0, 1, 3, recordBytes(2)}};
    }
};

TEST(ShardMergeInvariants, CleanRunMergesInSubmissionOrder)
{
    const MergeFixture fx("clean");
    const std::vector<harness::JournalRecord> records =
        mergeShardJournals(fx.journals, fx.commits, fx.fenced);
    ASSERT_EQ(records.size(), 3u);
    for (std::uint64_t i = 0; i < 3; ++i) {
        EXPECT_EQ(records[i].job_index, i);
        EXPECT_EQ(harness::encodeJournalRecord(records[i]),
                  recordBytes(i));
    }
}

TEST(ShardMergeInvariants, CommitMissingFromJournalIsAUR306)
{
    MergeFixture fx("missing");
    // Claim a commit (ticket 9) that no journal persisted: the
    // durable-before-visible rule was violated somewhere.
    fx.commits.push_back({3, 1, 2, 9, recordBytes(3)});
    try {
        (void)mergeShardJournals(fx.journals, fx.commits, fx.fenced);
        FAIL() << "unjournaled commit accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadJournal);
        EXPECT_NE(std::string(e.what()).find("AUR306"),
                  std::string::npos);
    }
}

TEST(ShardMergeInvariants, CommitBytesMustMatchJournalBytes)
{
    MergeFixture fx("bytes");
    // Same ticket, different bytes: what the coordinator accepted is
    // not what the shard persisted.
    fx.commits[1].record = recordBytes(7);
    try {
        (void)mergeShardJournals(fx.journals, fx.commits, fx.fenced);
        FAIL() << "byte mismatch accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadJournal);
        EXPECT_NE(std::string(e.what()).find("AUR306"),
                  std::string::npos);
    }
}

TEST(ShardMergeInvariants, UncommittedEntryUnderLiveEpochIsAUR306)
{
    MergeFixture fx("smuggle");
    // Epoch 2's journal gains an entry the coordinator never
    // committed, and epoch 2 was never fenced: a live shard smuggled
    // a result past the commit protocol.
    {
        ShardJournalWriter w(fx.journals[1].path, /*slot=*/1,
                             /*epoch=*/2);
        w.append({2, 2, recordBytes(1)});
        w.append({2, 8, recordBytes(5)});
    }
    try {
        (void)mergeShardJournals(fx.journals, fx.commits, fx.fenced);
        FAIL() << "smuggled entry accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadJournal);
        EXPECT_NE(std::string(e.what()).find("AUR306"),
                  std::string::npos);
    }
}

TEST(ShardMergeInvariants, ZombieAppendBehindFenceMergesClean)
{
    MergeFixture fx("zombie");
    // The same extra entry is fine when its epoch is fenced: that is
    // exactly the refused zombie append, physically contained in a
    // dead incarnation's file.
    {
        ShardJournalWriter w(fx.journals[0].path, /*slot=*/0,
                             /*epoch=*/1);
        w.append({1, 1, recordBytes(0)});
        w.append({1, 3, recordBytes(2)});
        w.append({1, 8, recordBytes(5)});
    }
    fx.fenced.insert(1);
    const std::vector<harness::JournalRecord> records =
        mergeShardJournals(fx.journals, fx.commits, fx.fenced);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(harness::encodeJournalRecord(records[2]),
              recordBytes(2));
}

TEST(ShardMergeInvariants, ResumedRunMergesSparseCommits)
{
    // A resumed grid deals only the missing jobs: commits cover
    // indices {1, 3} while {0, 2} were replayed from the coordinator
    // journal. The merge must accept the gap.
    const std::string p =
        tempPath("merge-sparse-e1.ajrn");
    {
        ShardJournalWriter w(p, /*slot=*/0, /*epoch=*/1);
        w.append({1, 1, recordBytes(1)});
        w.append({1, 2, recordBytes(3)});
    }
    const std::vector<ShardJournalRef> journals = {{1, 0, p}};
    const std::vector<CommitRef> commits = {
        {1, 0, 1, 1, recordBytes(1)}, {3, 0, 1, 2, recordBytes(3)}};
    const std::vector<harness::JournalRecord> records =
        mergeShardJournals(journals, commits, {});
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].job_index, 1u);
    EXPECT_EQ(records[1].job_index, 3u);
}

} // namespace
