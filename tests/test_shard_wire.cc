/**
 * @file
 * Shard fabric wire-protocol tests: codec round trips for every
 * message, type discrimination, trailing-byte rejection, and frame
 * corruption classification — the fabric-side twin of
 * test_serve_wire.
 */

#include <gtest/gtest.h>

#include <string>

#include "shard/shard_wire.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;
using namespace aurora::shard::wire;
using aurora::util::SimError;
using aurora::util::SimErrorCode;

JobSpec
sampleJob(std::uint64_t ticket)
{
    JobSpec job;
    job.ticket = ticket;
    job.job_index = ticket - 1;
    job.machine_spec = "model=small fp_policy=single";
    job.profile_name = "espresso";
    job.profile_seed = 0x9e3779b97f4a7c15ull;
    job.instructions = 400'000;
    job.has_base_seed = true;
    job.base_seed = 0xfeedfacecafebeefull;
    job.deadline_ms = 30'000;
    job.retries = 2;
    job.backoff_ms = 125;
    return job;
}

TEST(ShardWire, HelloRoundTrips)
{
    HelloMsg m;
    m.pid = 4242;
    const std::string payload = encode(m);
    EXPECT_EQ(peekType(payload), MsgType::Hello);
    const HelloMsg back = decodeHello(payload);
    EXPECT_EQ(back.version, SHARD_PROTOCOL_VERSION);
    EXPECT_EQ(back.pid, 4242u);
}

TEST(ShardWire, BeatRoundTrips)
{
    BeatMsg m;
    m.slot = 3;
    m.epoch = 17;
    m.done = 9;
    const BeatMsg back = decodeBeat(encode(m));
    EXPECT_EQ(back.slot, 3u);
    EXPECT_EQ(back.epoch, 17u);
    EXPECT_EQ(back.done, 9u);
}

TEST(ShardWire, ResultRoundTripsOpaqueRecordBytes)
{
    ResultMsg m;
    m.slot = 1;
    m.epoch = 5;
    m.ticket = 11;
    // The record field is opaque bytes; embedded NULs and high bytes
    // must survive — it is a CRC-framed journal record, not text.
    m.record = std::string("\x00\xff\x7f journal", 11);
    const ResultMsg back = decodeResult(encode(m));
    EXPECT_EQ(back.slot, 1u);
    EXPECT_EQ(back.epoch, 5u);
    EXPECT_EQ(back.ticket, 11u);
    EXPECT_EQ(back.record, m.record);
}

TEST(ShardWire, WelcomeRoundTrips)
{
    WelcomeMsg m;
    m.slot = 2;
    m.epoch = 7;
    m.lease_ms = 10'000;
    m.beat_ms = 2'500;
    const WelcomeMsg back = decodeWelcome(encode(m));
    EXPECT_EQ(back.version, SHARD_PROTOCOL_VERSION);
    EXPECT_EQ(back.slot, 2u);
    EXPECT_EQ(back.epoch, 7u);
    EXPECT_EQ(back.lease_ms, 10'000u);
    EXPECT_EQ(back.beat_ms, 2'500u);
}

TEST(ShardWire, AssignRoundTripsEveryJobField)
{
    AssignMsg m;
    m.epoch = 9;
    m.jobs.push_back(sampleJob(1));
    m.jobs.push_back(sampleJob(2));
    m.jobs[1].has_base_seed = false;
    m.jobs[1].profile_name = "tomcatv";
    const AssignMsg back = decodeAssign(encode(m));
    EXPECT_EQ(back.epoch, 9u);
    ASSERT_EQ(back.jobs.size(), 2u);
    for (std::size_t i = 0; i < m.jobs.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        EXPECT_EQ(back.jobs[i].ticket, m.jobs[i].ticket);
        EXPECT_EQ(back.jobs[i].job_index, m.jobs[i].job_index);
        EXPECT_EQ(back.jobs[i].machine_spec, m.jobs[i].machine_spec);
        EXPECT_EQ(back.jobs[i].profile_name, m.jobs[i].profile_name);
        EXPECT_EQ(back.jobs[i].profile_seed, m.jobs[i].profile_seed);
        EXPECT_EQ(back.jobs[i].instructions, m.jobs[i].instructions);
        EXPECT_EQ(back.jobs[i].has_base_seed, m.jobs[i].has_base_seed);
        EXPECT_EQ(back.jobs[i].base_seed, m.jobs[i].base_seed);
        EXPECT_EQ(back.jobs[i].deadline_ms, m.jobs[i].deadline_ms);
        EXPECT_EQ(back.jobs[i].retries, m.jobs[i].retries);
        EXPECT_EQ(back.jobs[i].backoff_ms, m.jobs[i].backoff_ms);
    }
}

TEST(ShardWire, V2AssignTraceIdRoundTripsAndV1BytesDecodeAsZero)
{
    AssignMsg m;
    m.epoch = 4;
    m.jobs.push_back(sampleJob(1));
    m.trace_id = 0xfeedface12345678ull;
    EXPECT_EQ(decodeAssign(encode(m)).trace_id,
              0xfeedface12345678ull);

    // trace_id == 0 encodes as the v1 layout (no trailing field), so
    // an old coordinator's bytes decode with the untraced sentinel.
    AssignMsg v1;
    v1.epoch = 4;
    v1.jobs.push_back(sampleJob(1));
    const AssignMsg back = decodeAssign(encode(v1));
    EXPECT_EQ(back.trace_id, 0u);
    EXPECT_EQ(back.epoch, 4u);
}

TEST(ShardWire, FencedAndShutdownRoundTrip)
{
    EXPECT_EQ(decodeFenced(encode(FencedMsg{23})).epoch, 23u);
    EXPECT_EQ(peekType(encode(ShutdownMsg{})), MsgType::Shutdown);
    (void)decodeShutdown(encode(ShutdownMsg{}));
}

TEST(ShardWire, PeekTypeRejectsEmptyAndUnknown)
{
    EXPECT_THROW((void)peekType(""), SimError);
    EXPECT_THROW((void)peekType(std::string(1, '\x2a')), SimError);
}

TEST(ShardWire, WrongTypeByteIsBadWire)
{
    const std::string hello = encode(HelloMsg{});
    try {
        (void)decodeBeat(hello);
        FAIL() << "wrong-type decode accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadWire);
    }
}

TEST(ShardWire, TrailingBytesAreBadWire)
{
    std::string payload = encode(BeatMsg{1, 2, 3});
    payload.push_back('\0');
    try {
        (void)decodeBeat(payload);
        FAIL() << "trailing byte accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), SimErrorCode::BadWire);
    }
}

TEST(ShardWire, DecoderRoundTripsFrames)
{
    FrameDecoder decoder;
    decoder.feed(frame(encode(BeatMsg{1, 2, 3})) +
                 frame(encode(ShutdownMsg{})));
    std::string payload;
    ASSERT_EQ(decoder.next(payload), util::FrameStatus::Ok);
    EXPECT_EQ(peekType(payload), MsgType::Beat);
    ASSERT_EQ(decoder.next(payload), util::FrameStatus::Ok);
    EXPECT_EQ(peekType(payload), MsgType::Shutdown);
    EXPECT_EQ(decoder.next(payload), util::FrameStatus::NeedMore);
}

TEST(ShardWire, DecoderRejectsForeignMagic)
{
    // A frame from another fabric (flip one magic byte) must be
    // Corrupt at the decoder, not a surprise at the codec.
    std::string framed = frame(encode(BeatMsg{1, 2, 3}));
    framed[0] ^= 0x01;
    FrameDecoder decoder;
    decoder.feed(framed);
    std::string payload;
    EXPECT_EQ(decoder.next(payload), util::FrameStatus::Corrupt);
}

TEST(ShardWire, DecoderFlagsPayloadCorruption)
{
    std::string framed = frame(encode(ResultMsg{0, 1, 2, "bytes"}));
    framed[framed.size() - 3] ^= 0x40; // damage inside the payload
    FrameDecoder decoder;
    decoder.feed(framed);
    std::string payload;
    EXPECT_EQ(decoder.next(payload), util::FrameStatus::Corrupt);
}

} // namespace
