/**
 * @file
 * Unit tests for the machine configurations (Table 1).
 */

#include <gtest/gtest.h>

#include "core/machine_config.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

TEST(Config, SmallModelMatchesTable1)
{
    const auto m = smallModel();
    EXPECT_EQ(m.ifu.icache_bytes, 1024u);
    EXPECT_EQ(m.lsu.dcache_bytes, 16u * 1024);
    EXPECT_EQ(m.write_cache.lines, 2u);
    EXPECT_EQ(m.rob_entries, 2u);
    EXPECT_EQ(m.prefetch.num_buffers, 2u);
    EXPECT_EQ(m.lsu.mshr_entries, 1u);
}

TEST(Config, BaselineModelMatchesTable1)
{
    const auto m = baselineModel();
    EXPECT_EQ(m.ifu.icache_bytes, 2048u);
    EXPECT_EQ(m.lsu.dcache_bytes, 32u * 1024);
    EXPECT_EQ(m.write_cache.lines, 4u);
    EXPECT_EQ(m.rob_entries, 6u);
    EXPECT_EQ(m.prefetch.num_buffers, 4u);
    EXPECT_EQ(m.lsu.mshr_entries, 2u);
}

TEST(Config, LargeModelMatchesTable1)
{
    const auto m = largeModel();
    EXPECT_EQ(m.ifu.icache_bytes, 4096u);
    EXPECT_EQ(m.lsu.dcache_bytes, 64u * 1024);
    EXPECT_EQ(m.write_cache.lines, 8u);
    EXPECT_EQ(m.rob_entries, 8u);
    EXPECT_EQ(m.prefetch.num_buffers, 8u);
    EXPECT_EQ(m.lsu.mshr_entries, 4u);
}

TEST(Config, RecommendedModelIsPointE)
{
    // §5.6: baseline except a 4 KB I-cache and 4 MSHRs.
    const auto m = recommendedModel();
    const auto b = baselineModel();
    EXPECT_EQ(m.ifu.icache_bytes, 4096u);
    EXPECT_EQ(m.lsu.mshr_entries, 4u);
    EXPECT_EQ(m.write_cache.lines, b.write_cache.lines);
    EXPECT_EQ(m.rob_entries, b.rob_entries);
    EXPECT_EQ(m.lsu.dcache_bytes, b.lsu.dcache_bytes);
}

TEST(Config, CostOrderingSmallBaselineLarge)
{
    EXPECT_LT(smallModel().rbeCost(), baselineModel().rbeCost());
    EXPECT_LT(baselineModel().rbeCost(), largeModel().rbeCost());
}

TEST(Config, SecondPipeCosts8192)
{
    const auto dual = baselineModel().withIssueWidth(2);
    const auto single = baselineModel().withIssueWidth(1);
    EXPECT_DOUBLE_EQ(dual.rbeCost() - single.rbeCost(), 8192.0);
}

TEST(Config, RecommendedIsCheaperThanLarge)
{
    // The §5.6 point E argument: near-large performance at much
    // lower cost.
    EXPECT_LT(recommendedModel().rbeCost(), largeModel().rbeCost());
}

TEST(Config, FluentHelpersDeriveVariants)
{
    const auto base = baselineModel();
    EXPECT_EQ(base.withLatency(35).biu.latency, 35u);
    EXPECT_EQ(base.withIssueWidth(1).issue_width, 1u);
    EXPECT_EQ(base.withIssueWidth(1).ifu.fetch_width, 1u);
    EXPECT_FALSE(base.withPrefetch(false).prefetch.enabled);
    EXPECT_EQ(base.withMshrs(4).lsu.mshr_entries, 4u);
    EXPECT_EQ(base.withName("x").name, "x");
    // Originals are untouched.
    EXPECT_EQ(base.biu.latency, 17u);
    EXPECT_EQ(base.issue_width, 2u);
}

TEST(Config, DisabledPrefetchCostsNothing)
{
    const auto with = baselineModel();
    const auto without = baselineModel().withPrefetch(false);
    EXPECT_DOUBLE_EQ(with.rbeCost() - without.rbeCost(),
                     cost::prefetchRbe(4, with.prefetch.depth));
}

TEST(Config, StudyModelsAreTheThree)
{
    const auto models = studyModels();
    ASSERT_EQ(models.size(), 3u);
    EXPECT_EQ(models[0].name, "small");
    EXPECT_EQ(models[1].name, "baseline");
    EXPECT_EQ(models[2].name, "large");
}

TEST(Config, DefaultFpuIsRecommendedConfiguration)
{
    // §5.11 recommendation.
    const auto m = baselineModel();
    EXPECT_EQ(m.fpu.inst_queue, 5u);
    EXPECT_EQ(m.fpu.load_queue, 2u);
    EXPECT_EQ(m.fpu.rob_entries, 6u);
    EXPECT_EQ(m.fpu.add.latency, 3u);
    EXPECT_EQ(m.fpu.mul.latency, 5u);
    EXPECT_EQ(m.fpu.div.latency, 19u);
    EXPECT_EQ(m.fpu.result_buses, 2u);
    EXPECT_EQ(m.fpu.policy, fpu::IssuePolicy::OutOfOrderDual);
}

} // namespace
