#include "simulator.hh"

#include "trace/synthetic_workload.hh"
#include "util/parallel.hh"

namespace aurora::core
{

RunResult
simulate(const MachineConfig &machine,
         const trace::WorkloadProfile &profile, Count instructions,
         const WatchdogConfig &watchdog, PipelineObserver *observer)
{
    trace::SyntheticWorkload workload(profile);
    trace::LimitedTraceSource limited(workload, instructions);
    Processor cpu(machine, limited, watchdog);
    cpu.setObserver(observer);
    RunResult res = cpu.run();
    res.benchmark = profile.name;
    return res;
}

Accumulator
SuiteResult::cpiStats() const
{
    Accumulator acc;
    for (const RunResult &run : runs)
        acc.add(run.cpi());
    return acc;
}

double
SuiteResult::avgCpi() const
{
    return cpiStats().mean();
}

double
SuiteResult::avgStallCpi(StallCause cause) const
{
    Accumulator acc;
    for (const RunResult &run : runs)
        acc.add(run.stallCpi(cause));
    return acc.mean();
}

SuiteResult
runSuite(const MachineConfig &machine,
         const std::vector<trace::WorkloadProfile> &suite,
         Count instructions, const WatchdogConfig &watchdog)
{
    SuiteResult result;
    result.machine = machine;
    result.runs.resize(suite.size());
    // Runs are independent (each Processor and workload generator is
    // self-contained), so fan out across AURORA_JOBS workers. Each
    // result lands in its submission slot, so the output is identical
    // to the serial loop at any worker count.
    parallelFor(suite.size(), /*workers=*/0, [&](std::size_t i) {
        result.runs[i] =
            simulate(machine, suite[i], instructions, watchdog);
    });
    return result;
}

} // namespace aurora::core
