/**
 * @file
 * Issue-stall classification (Figure 6).
 *
 * Each cycle in which the IPU issues no instruction is charged to
 * exactly one cause, so the stall stacks sum to the difference between
 * measured cycles and issuing cycles by construction (a property the
 * test suite enforces). The first four categories are the paper's;
 * FpQueue covers decoupling-queue back-pressure, which only occurs in
 * floating point workloads.
 */

#ifndef AURORA_CORE_STALL_HH
#define AURORA_CORE_STALL_HH

#include <array>
#include <cstddef>
#include <string_view>

namespace aurora::core
{

/** Why the issue stage made no progress this cycle. */
enum class StallCause : std::size_t
{
    ICache,   ///< fetch buffer empty: I-miss or fetch bubble
    Load,     ///< source register awaits an outstanding load
    LsuBusy,  ///< LSU full (no MSHR) or cache busses filling
    RobFull,  ///< no reorder buffer entry
    FpQueue,  ///< FPU decoupling queue full
    NumCauses
};

/** Number of stall categories. */
inline constexpr std::size_t NUM_STALL_CAUSES =
    static_cast<std::size_t>(StallCause::NumCauses);

/** Display name for reports. */
std::string_view stallCauseName(StallCause cause);

/** Per-cause cycle counters. */
using StallCycles = std::array<std::uint64_t, NUM_STALL_CAUSES>;

} // namespace aurora::core

#endif // AURORA_CORE_STALL_HH
