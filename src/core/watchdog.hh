/**
 * @file
 * Forward-progress watchdog for the Processor main loop.
 *
 * Configuration validation is structural, not a liveness proof: a
 * machine can pass every check and still never retire an instruction
 * (the canonical example is fp_buses=0, a bus-starved FPU whose
 * decoupling queue fills and blocks issue forever). In a design-space
 * sweep such a point used to wedge the whole run. The watchdog
 * converts the wedge into a structured, recoverable error: if no
 * instruction retires for `stall_limit` cycles, or the hard
 * `cycle_budget` is exhausted, Processor::run() throws a
 * WatchdogError carrying a WatchdogDiagnostic snapshot of the stuck
 * machine (cycle, retirement history, per-cause stall cycles, ROB and
 * FPU queue occupancy) so the sweep summary can say *why* the point
 * failed.
 */

#ifndef AURORA_CORE_WATCHDOG_HH
#define AURORA_CORE_WATCHDOG_HH

#include <cstddef>
#include <string>

#include "stall.hh"
#include "util/sim_error.hh"
#include "util/types.hh"

namespace aurora::core
{

/** Default no-retirement window before the watchdog trips. */
inline constexpr Cycle DEFAULT_WATCHDOG_CYCLES = 100'000;

/** Watchdog policy for one Processor run. */
struct WatchdogConfig
{
    /**
     * Trip with NoForwardProgress after this many consecutive cycles
     * without a retirement. 0 disables the progress check. The
     * default is far above any legitimate retirement gap (the worst
     * healthy gap is a few memory latencies, i.e. tens of cycles),
     * so healthy runs never pay more than two compares per cycle.
     */
    Cycle stall_limit = DEFAULT_WATCHDOG_CYCLES;

    /**
     * Trip with CycleBudgetExceeded once the simulated clock reaches
     * this cycle. 0 means unlimited. Useful as a hard upper bound on
     * grid points whose run time is unknown by construction.
     */
    Cycle cycle_budget = 0;

    /**
     * Trip with Timeout once the run has consumed this much
     * *wall-clock* time, in milliseconds. 0 means unlimited. Unlike
     * the two simulated-time knobs this bounds host time: a job that
     * is merely pathologically slow (live but crawling) cannot hold a
     * sweep worker hostage for unbounded real time. Checked every
     * 1024 simulated cycles, so a healthy run pays nothing
     * measurable. Which *outcome* a job produces near the boundary
     * is timing-dependent by nature; the simulated statistics of a
     * run that completes are never affected.
     */
    std::uint64_t deadline_ms = 0;
};

/**
 * The process-wide default policy: stall_limit from the
 * AURORA_WATCHDOG_CYCLES environment variable (0 disables) falling
 * back to DEFAULT_WATCHDOG_CYCLES, unlimited cycle budget.
 */
WatchdogConfig defaultWatchdog();

/** State of the machine at the moment a watchdog fired. */
struct WatchdogDiagnostic
{
    /** Machine name (MachineConfig::name). */
    std::string model;
    /** Policy that was in force. */
    WatchdogConfig watchdog;
    /** Simulated cycle at the trip. */
    Cycle cycle = 0;
    /** Instructions issued so far. */
    Count instructions = 0;
    /** Instructions retired so far. */
    Count retired = 0;
    /** Cycle of the most recent retirement (0 = never). */
    Cycle last_retire_cycle = 0;
    /** Per-cause issue-stall cycles at the trip. */
    StallCycles stalls{};
    /** IPU reorder buffer occupancy / capacity. */
    std::size_t rob_size = 0;
    std::size_t rob_capacity = 0;
    /** FPU decoupling queue occupancies / capacities. */
    std::size_t fp_instq_size = 0;
    std::size_t fp_instq_capacity = 0;
    std::size_t fp_loadq_size = 0;
    std::size_t fp_loadq_capacity = 0;
    std::size_t fp_storeq_size = 0;
    std::size_t fp_storeq_capacity = 0;

    /** One-line rendering for error messages and sweep summaries. */
    std::string toString() const;
};

/**
 * SimError raised by a watchdog trip; code() is NoForwardProgress or
 * CycleBudgetExceeded and diagnostic() holds the machine snapshot.
 */
class WatchdogError : public util::SimError
{
  public:
    WatchdogError(util::SimErrorCode code, WatchdogDiagnostic diag);

    const WatchdogDiagnostic &diagnostic() const { return diag_; }

  private:
    WatchdogDiagnostic diag_;
};

} // namespace aurora::core

#endif // AURORA_CORE_WATCHDOG_HH
