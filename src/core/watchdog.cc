#include "watchdog.hh"

#include <sstream>

#include "util/env.hh"

namespace aurora::core
{

WatchdogConfig
defaultWatchdog()
{
    WatchdogConfig wd;
    wd.stall_limit = envCount("AURORA_WATCHDOG_CYCLES",
                              DEFAULT_WATCHDOG_CYCLES, /*min=*/0);
    return wd;
}

std::string
WatchdogDiagnostic::toString() const
{
    std::ostringstream os;
    os << "machine '" << model << "' at cycle " << cycle << ": issued "
       << instructions << ", retired " << retired << " (last at cycle "
       << last_retire_cycle << "); rob " << rob_size << "/"
       << rob_capacity << ", fp_instq " << fp_instq_size << "/"
       << fp_instq_capacity << ", fp_loadq " << fp_loadq_size << "/"
       << fp_loadq_capacity << ", fp_storeq " << fp_storeq_size << "/"
       << fp_storeq_capacity << "; stalls";
    for (std::size_t c = 0; c < NUM_STALL_CAUSES; ++c)
        os << " " << stallCauseName(static_cast<StallCause>(c)) << "="
           << stalls[c];
    return os.str();
}

namespace
{

std::string
tripMessage(util::SimErrorCode code, const WatchdogDiagnostic &diag)
{
    std::ostringstream os;
    if (code == util::SimErrorCode::NoForwardProgress)
        os << "no instruction retired for " << diag.watchdog.stall_limit
           << " cycles; ";
    else if (code == util::SimErrorCode::Timeout)
        os << "wall-clock deadline of " << diag.watchdog.deadline_ms
           << " ms expired; ";
    else
        os << "cycle budget of " << diag.watchdog.cycle_budget
           << " exhausted; ";
    os << diag.toString();
    return os.str();
}

} // namespace

WatchdogError::WatchdogError(util::SimErrorCode code,
                             WatchdogDiagnostic diag)
    : util::SimError(code, tripMessage(code, diag)),
      diag_(std::move(diag))
{
}

} // namespace aurora::core
