/**
 * @file
 * The Aurora III processor model: IFU, IEU issue logic, LSU, reorder
 * buffer, scoreboard and the decoupled FPU, advanced one clock per
 * tick.
 *
 * Issue is in order, up to issue_width per cycle, from the IFU's
 * fetch buffer. Dual issue obeys the §2 constraints: the two
 * instructions must form an aligned EVEN/ODD pair, must not carry a
 * true dependency (the predecoded DI bit), and may contain at most
 * one memory access. Every non-issuing cycle is charged to a single
 * StallCause with the priority order ICache > Load > LSU-Busy >
 * FP-Queue > ROB-Full (matching the paper's observation that load-use
 * waits are charged before reorder-buffer pressure).
 */

#ifndef AURORA_CORE_PROCESSOR_HH
#define AURORA_CORE_PROCESSOR_HH

#include <optional>
#include <string>

#include "fpu/fpu.hh"
#include "util/stats.hh"
#include "ipu/ifu.hh"
#include "ipu/lsu.hh"
#include "ipu/rob.hh"
#include "ipu/scoreboard.hh"
#include "machine_config.hh"
#include "mem/biu.hh"
#include "mem/stream_buffer.hh"
#include "pipeline_trace.hh"
#include "stall.hh"
#include "trace/trace_source.hh"
#include "watchdog.hh"

namespace aurora::core
{

/**
 * Raw end-of-run conservation counters. Every count is captured
 * independently at its source component, so the ledger can be
 * *audited*: retired instructions must equal the trace length, stall
 * plus issue plus tail cycles must sum to total cycles, cache hits
 * plus misses must equal accesses, and every MSHR allocated must
 * have been released (see core/audit.hh). A violation means either
 * a simulator accounting bug or a corrupted (journal-replayed)
 * result — both worth refusing to report.
 */
struct RunLedger
{
    /** Instructions the trace source delivered (the trace length). */
    Count trace_instructions = 0;
    /** Instructions retired through the reorder buffer. */
    Count retired = 0;
    Count icache_hits = 0;
    Count icache_misses = 0;
    Count icache_accesses = 0;
    Count dcache_hits = 0;
    Count dcache_misses = 0;
    Count dcache_accesses = 0;
    Count mshr_allocations = 0;
    Count mshr_releases = 0;
    /** MSHRs still occupied after the end-of-run drain (must be 0). */
    Count mshr_outstanding = 0;

    /** Multi-line "key=value" rendering for audit failure reports. */
    std::string toString() const;
};

/**
 * Distribution summary of a per-cycle occupancy series, derived from
 * the always-on unit-width histogram the Processor keeps for each
 * bounded structure. The percentiles are integer sample values (a
 * structure holds a whole number of entries), so the summary is
 * bit-stable across platforms and worker counts.
 */
struct OccupancyStats
{
    double mean = 0.0;
    Count p50 = 0;
    Count p95 = 0;
    Count max = 0;

    /** Summarize @p h (mean / p50 / p95 / max). */
    static OccupancyStats fromHistogram(const Histogram &h);
};

/** Everything a benchmark harness needs from one simulation. */
struct RunResult
{
    std::string model;
    std::string benchmark;

    Count instructions = 0;
    Cycle cycles = 0;
    /** Cycles where at least one instruction issued. */
    Cycle issuing_cycles = 0;
    /** Post-trace drain cycles (excluded from stall accounting). */
    Cycle tail_cycles = 0;
    StallCycles stalls{};

    double icache_hit_pct = 0.0;
    double dcache_hit_pct = 0.0;
    double iprefetch_hit_pct = 0.0;
    double dprefetch_hit_pct = 0.0;
    double write_cache_hit_pct = 0.0;
    Count stores = 0;
    Count store_transactions = 0;

    Count fp_dispatched = 0;
    fpu::FpuStats fpu;

    double rbe_cost = 0.0;

    /** Raw conservation counters for the post-run auditor. */
    RunLedger ledger;

    /** Cycles that issued 0 / 1 / 2 instructions. */
    std::array<Cycle, 3> issue_width_cycles{};
    /** Mean reorder-buffer occupancy (== rob_occupancy.mean). */
    double avg_rob_occupancy = 0.0;
    /** Mean MSHR occupancy (== mshr_occupancy.mean). */
    double avg_mshr_occupancy = 0.0;

    /// @name Per-cycle occupancy distributions (Figures 7 and 9)
    /// @{
    OccupancyStats rob_occupancy;
    OccupancyStats mshr_occupancy;
    OccupancyStats fp_instq_occupancy;
    OccupancyStats fp_loadq_occupancy;
    OccupancyStats fp_storeq_occupancy;
    /// @}

    /** Fraction of cycles that issued exactly @p width. */
    double
    issueWidthFrac(unsigned width) const
    {
        return cycles ? static_cast<double>(
                            issue_width_cycles[width]) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Cycles per instruction. */
    double
    cpi() const
    {
        return instructions
                   ? static_cast<double>(cycles) /
                         static_cast<double>(instructions)
                   : 0.0;
    }

    /** CPI penalty attributable to @p cause (Figure 6 bars). */
    double
    stallCpi(StallCause cause) const
    {
        return instructions
                   ? static_cast<double>(
                         stalls[static_cast<std::size_t>(cause)]) /
                         static_cast<double>(instructions)
                   : 0.0;
    }

    /** Store traffic leaving the chip, % of store instructions. */
    double
    storeTrafficPct() const
    {
        return stores ? 100.0 * static_cast<double>(store_transactions) /
                            static_cast<double>(stores)
                      : 0.0;
    }
};

/** One instantiated machine bound to one instruction stream. */
class Processor
{
  public:
    /**
     * @param watchdog forward-progress policy enforced by run();
     *        defaults to the AURORA_WATCHDOG_CYCLES-derived policy.
     */
    Processor(const MachineConfig &config, trace::TraceSource &source,
              WatchdogConfig watchdog = defaultWatchdog());

    /**
     * Run until the trace is exhausted and the machine drains.
     *
     * Throws WatchdogError (NoForwardProgress) if no instruction
     * retires for watchdog.stall_limit consecutive cycles, or
     * (CycleBudgetExceeded) once the clock reaches
     * watchdog.cycle_budget — instead of hanging on a machine that
     * validates but cannot make progress.
     *
     * @return aggregated statistics.
     */
    RunResult run();

    /**
     * Advance a single cycle (exposed for unit tests; the watchdog
     * is enforced only by run()).
     */
    void step();

    /** Machine fully drained? */
    bool done() const;

    /// @name Component access (tests and reports)
    /// @{
    const ipu::Ifu &ifu() const { return ifu_; }
    const ipu::Lsu &lsu() const { return lsu_; }
    const fpu::Fpu &fpu() const { return fpu_; }
    const mem::Biu &biu() const { return biu_; }
    const mem::PrefetchUnit &prefetch() const { return prefetch_; }
    const ipu::ReorderBuffer &rob() const { return rob_; }
    /// @}

    /**
     * Attach an event observer (nullptr detaches). The observer must
     * outlive the processor's run.
     */
    void setObserver(PipelineObserver *observer)
    {
        observer_ = observer;
    }

    Cycle now() const { return now_; }
    Count instructions() const { return instructions_; }
    const StallCycles &stalls() const { return stalls_; }
    Cycle issuingCycles() const { return issuingCycles_; }
    Cycle tailCycles() const { return tailCycles_; }

    /** Watchdog policy in force for run(). */
    const WatchdogConfig &watchdog() const { return watchdog_; }

    /**
     * Diagnostic snapshot of the current machine state (what a
     * WatchdogError carries; also useful for ad-hoc inspection).
     */
    WatchdogDiagnostic snapshot() const;

  private:
    /**
     * Pre-step counter snapshot for observer delta events. Captured
     * only while an observer is attached, so detached runs pay one
     * pointer test per cycle and nothing else.
     */
    struct ObsSnapshot
    {
        Count icache_hits = 0;
        Count icache_misses = 0;
        Count dcache_hits = 0;
        Count dcache_misses = 0;
        Count wcache_hits = 0;
        Count wcache_misses = 0;
        Count mshr_allocs = 0;
        Count mshr_releases = 0;
        Count fp_loads = 0;
        Count fp_stores = 0;
        Count fp_dispatched = 0;
        std::size_t fp_instq = 0;
        std::size_t fp_loadq = 0;
        std::size_t fp_storeq = 0;
    };

    /** Capture the counters obsEmit() diffs against. */
    ObsSnapshot obsCapture() const;

    /** Diff against @p pre and fire the cycle's aggregate events. */
    void obsEmit(const ObsSnapshot &pre);

    /** lsu_.load() wrapper that reports latency/miss to the observer. */
    Cycle observedLoad(const trace::Inst &inst);

    /** Resource/operand check; nullopt means issuable. */
    std::optional<StallCause> issueCheck(const trace::Inst &inst) const;

    /** Commit one instruction to the pipeline model. */
    void doIssue(const trace::Inst &inst);

    /** May @p second co-issue after @p first this cycle? */
    bool pairOk(const trace::Inst &first,
                const trace::Inst &second) const;

    /** §3.1: is @p inst provably unable to raise an FP exception? */
    bool provablySafe(const trace::Inst &inst) const;

    /** The issue stage for the current cycle. */
    void issueStage();

    MachineConfig config_;
    mem::Biu biu_;
    mem::PrefetchUnit prefetch_;
    ipu::Ifu ifu_;
    ipu::Lsu lsu_;
    fpu::Fpu fpu_;
    ipu::ReorderBuffer rob_;
    ipu::Scoreboard scoreboard_;

    WatchdogConfig watchdog_;
    Cycle now_ = 0;
    /** Cycle of the most recent retirement (watchdog progress mark). */
    Cycle lastRetire_ = 0;
    Count instructions_ = 0;
    Count fpDispatched_ = 0;
    Cycle issuingCycles_ = 0;
    Cycle tailCycles_ = 0;
    StallCycles stalls_{};
    std::array<Cycle, 3> issueWidthCycles_{};
    // Always-on per-cycle occupancy histograms (one unit-width bucket
    // per possible occupancy, so overflow is impossible). These feed
    // the RunResult OccupancyStats and cost a handful of array
    // increments per cycle whether or not telemetry is attached —
    // keeping the *results* identical with and without observers.
    Histogram robOccupancy_;
    Histogram mshrOccupancy_;
    Histogram fpInstqOccupancy_;
    Histogram fpLoadqOccupancy_;
    Histogram fpStoreqOccupancy_;
    PipelineObserver *observer_ = nullptr;
    bool drained_ = false;
    /** onDrainStart() already delivered. */
    bool drainObserved_ = false;
};

} // namespace aurora::core

#endif // AURORA_CORE_PROCESSOR_HH
