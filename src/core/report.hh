/**
 * @file
 * Report formatting for simulation results.
 *
 * Turns RunResult / SuiteResult into the tables the study reports:
 * per-run detail, per-suite summaries, Figure 6 stall breakdowns, and
 * side-by-side machine comparisons. Used by the benchmark harness,
 * the examples, and the CLI driver.
 */

#ifndef AURORA_CORE_REPORT_HH
#define AURORA_CORE_REPORT_HH

#include <string>
#include <vector>

#include "simulator.hh"
#include "util/table.hh"

namespace aurora::core
{

/** Multi-line human-readable report for a single run. */
std::string runReport(const RunResult &result);

/** Per-benchmark summary rows for one machine. */
Table suiteTable(const SuiteResult &suite);

/** Figure 6-style stall breakdown, one row per benchmark. */
Table stallTable(const SuiteResult &suite);

/**
 * Side-by-side comparison of several machines over the same suite:
 * one row per machine with cost, CPI statistics, and headline rates.
 */
Table comparisonTable(const std::vector<SuiteResult> &suites);

/** CSV of (name, cost, cpi) scatter points for external plotting. */
std::string scatterCsv(const std::vector<SuiteResult> &suites);

} // namespace aurora::core

#endif // AURORA_CORE_REPORT_HH
