/**
 * @file
 * Complete machine configuration — every knob §5 varies.
 *
 * The three Table 1 models are provided as factories; the benchmark
 * harness derives the remaining configurations (issue width, secondary
 * latency, prefetch removal, MSHR variations, FPU sweeps) by mutating
 * fields, which is exactly the design space Figure 8 enumerates.
 */

#ifndef AURORA_CORE_MACHINE_CONFIG_HH
#define AURORA_CORE_MACHINE_CONFIG_HH

#include <string>

#include "cost/rbe.hh"
#include "fpu/fpu_config.hh"
#include "ipu/ifu.hh"
#include "ipu/lsu.hh"
#include "mem/biu.hh"
#include "mem/stream_buffer.hh"
#include "mem/write_cache.hh"

namespace aurora::core
{

/** Everything needed to instantiate a Processor. */
struct MachineConfig
{
    /** Model name for reports ("small", "baseline", "large", ...). */
    std::string name = "baseline";
    /** Instructions issued per cycle (1 or 2). */
    unsigned issue_width = 2;
    /** IPU reorder buffer entries (Table 1: 2/6/8). */
    unsigned rob_entries = 6;
    /** Retirements per cycle. */
    unsigned retire_width = 2;
    /**
     * Cycles before an ALU result can feed a dependent instruction.
     * 1 = the Aurora III design: short four-stage pipelines with
     * full forwarding (§2.1). Larger values model the deep-pipeline
     * alternative whose latch/forwarding area consumed half the
     * execution pipeline of the earlier prototypes.
     */
    unsigned alu_latency = 1;

    ipu::IfuConfig ifu;
    ipu::LsuConfig lsu;
    mem::WriteCacheConfig write_cache;
    mem::PrefetchConfig prefetch;
    mem::BiuConfig biu;
    fpu::FpuConfig fpu;

    /** IPU resource bundle for the cost model. */
    cost::IpuResources ipuResources() const;

    /** IPU implementation cost in RBE (Fig. 4/8 x-axis). */
    double rbeCost() const;

    /**
     * Check cross-component consistency (line sizes shared by the
     * caches / prefetch unit / write cache, issue vs fetch vs retire
     * widths, non-degenerate queue capacities). Throws
     * util::SimError (BadConfig) on an inconsistent configuration —
     * these are user errors, and the Processor constructor calls
     * this. Passing validation is not a liveness guarantee; the
     * forward-progress watchdog covers configurations that validate
     * but never retire.
     */
    void validate() const;

    /// @name Fluent helpers for deriving experiment variants
    /// @{
    MachineConfig withIssueWidth(unsigned width) const;
    MachineConfig withLatency(Cycle latency) const;
    MachineConfig withPrefetch(bool enabled) const;
    MachineConfig withMshrs(unsigned entries) const;
    MachineConfig withName(std::string new_name) const;
    /// @}
};

/** Table 1 "small" model: 1K I$, 16K D$, 2-line WC, 2 ROB, 2 PF, 1 MSHR. */
MachineConfig smallModel();

/** Table 1 "baseline": 2K I$, 32K D$, 4-line WC, 6 ROB, 4 PF, 2 MSHR. */
MachineConfig baselineModel();

/** Table 1 "large": 4K I$, 64K D$, 8-line WC, 8 ROB, 8 PF, 4 MSHR. */
MachineConfig largeModel();

/**
 * §5.6 point "E": the recommended machine — the baseline upgraded to
 * a 4 KB I-cache and 4 MSHRs only.
 */
MachineConfig recommendedModel();

/** The three study models in Table 1 order. */
std::vector<MachineConfig> studyModels();

} // namespace aurora::core

#endif // AURORA_CORE_MACHINE_CONFIG_HH
