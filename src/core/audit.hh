/**
 * @file
 * Post-run invariant auditor.
 *
 * A simulation result is only worth journaling, resuming from, and
 * publishing if it is internally consistent. The auditor checks
 * end-of-run conservation laws that hold for *every* healthy run by
 * construction:
 *
 *   1. retired instructions == issued instructions == trace length;
 *   2. per-cause stall cycles + issuing cycles + drain-tail cycles
 *      == total cycles (each cycle is charged exactly once);
 *   3. cache hits + misses == accesses, for both primary caches;
 *   4. MSHR allocations == releases, with none outstanding after the
 *      end-of-run drain.
 *
 * A violation raises SimError{Internal} carrying the full failing
 * ledger: it means either a simulator accounting bug (the counters
 * were written by different components and disagree) or a corrupted
 * replayed result (a journal record altered in a CRC-surviving way).
 * Either way the number must not be reported.
 *
 * The audit is pure arithmetic over RunResult, so it can re-check
 * journaled results on resume just as it checks fresh ones.
 */

#ifndef AURORA_CORE_AUDIT_HH
#define AURORA_CORE_AUDIT_HH

#include "processor.hh"

namespace aurora::core
{

/**
 * Is auditing globally enabled? True when the AURORA_AUDIT
 * environment variable is "1". Processor::run() audits every
 * completed run when enabled; the ctest suites and sanitizer presets
 * set it, production sweeps opt in.
 */
bool auditEnabled();

/**
 * Check every conservation invariant of @p result; throws
 * util::SimError (Internal) naming the violated invariant and the
 * full ledger on the first failure. Pure — safe to call on fresh
 * and journal-replayed results alike.
 */
void auditRun(const RunResult &result);

} // namespace aurora::core

#endif // AURORA_CORE_AUDIT_HH
