/**
 * @file
 * High-level simulation facade — the library's main entry point.
 *
 * Wraps workload construction, trace limiting, processor
 * instantiation, and suite-level aggregation so an experiment is one
 * call: simulate(machine, benchmark, instructions).
 */

#ifndef AURORA_CORE_SIMULATOR_HH
#define AURORA_CORE_SIMULATOR_HH

#include <vector>

#include "machine_config.hh"
#include "processor.hh"
#include "trace/workload_profile.hh"
#include "util/stats.hh"

namespace aurora::core
{

/** Default instruction budget per benchmark run. */
inline constexpr Count DEFAULT_RUN_INSTS = 400'000;

/**
 * Run @p profile on @p machine for @p instructions dynamic
 * instructions (the paper truncates benchmarks the same way, §4.1).
 *
 * @param watchdog forward-progress policy (see watchdog.hh); the
 *        default derives from AURORA_WATCHDOG_CYCLES. A run that
 *        trips it throws WatchdogError; an invalid @p machine throws
 *        util::SimError (BadConfig).
 * @param observer optional pipeline observer attached for the run
 *        (telemetry samplers, tracers). Observers only read machine
 *        state: results are bit-identical with or without one.
 */
RunResult simulate(const MachineConfig &machine,
                   const trace::WorkloadProfile &profile,
                   Count instructions = DEFAULT_RUN_INSTS,
                   const WatchdogConfig &watchdog = defaultWatchdog(),
                   PipelineObserver *observer = nullptr);

/** A full benchmark-suite sweep on one machine. */
struct SuiteResult
{
    MachineConfig machine;
    std::vector<RunResult> runs;

    /** CPI summary across the suite (Figure 4 error bars). */
    Accumulator cpiStats() const;
    /** Arithmetic-mean CPI across benchmarks. */
    double avgCpi() const;
    /** Mean CPI penalty for @p cause across benchmarks. */
    double avgStallCpi(StallCause cause) const;
};

/** Run every profile in @p suite on @p machine. */
SuiteResult runSuite(const MachineConfig &machine,
                     const std::vector<trace::WorkloadProfile> &suite,
                     Count instructions = DEFAULT_RUN_INSTS,
                     const WatchdogConfig &watchdog = defaultWatchdog());

} // namespace aurora::core

#endif // AURORA_CORE_SIMULATOR_HH
