#include "config_io.hh"

#include <sstream>

#include "util/env.hh"
#include "util/sim_error.hh"

namespace aurora::core
{

namespace
{

using util::SimErrorCode;
using util::raiseError;

/** Every key applyOverride understands, for the unknown-key message. */
constexpr const char *KNOWN_KEYS =
    "model, name, issue, fetch, icache, iline, ifu_buffer, dcache, "
    "dline, dcache_lat, fill_cycles, store_occ, wc_lines, wc_line, "
    "wc_page, rob, mshr, latency, biu_occ, biu_queue, collisions, "
    "collision_penalty, prefetch, pf_buffers, pf_depth, pf_line, "
    "folding, victim_lines, victim_swap, validate_writes, retire, "
    "alu_lat, fp_policy, fp_instq, fp_loadq, fp_storeq, fp_rob, "
    "fp_buses, fp_add_lat, fp_mul_lat, fp_div_lat, fp_cvt_lat, "
    "fp_add_piped, fp_mul_piped, fp_div_piped, fp_cvt_piped, "
    "fp_precise, fp_safe_frac";

std::uint64_t
parseUnsigned(const std::string &key, const std::string &value)
{
    const auto parsed = parseCount(value);
    if (!parsed)
        raiseError(SimErrorCode::BadConfig, "config key '", key,
                   "': bad numeric value '", value,
                   "' (accepted: a non-negative decimal integer)");
    return *parsed;
}

double
parseReal(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        raiseError(SimErrorCode::BadConfig, "config key '", key,
                   "': bad real value '", value,
                   "' (accepted: a decimal number)");
    }
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "on" || value == "true" || value == "1")
        return true;
    if (value == "off" || value == "false" || value == "0")
        return false;
    raiseError(SimErrorCode::BadConfig, "config key '", key,
               "': bad boolean '", value,
               "' (accepted: on/true/1, off/false/0)");
}

fpu::IssuePolicy
parsePolicy(const std::string &value)
{
    if (value == "inorder")
        return fpu::IssuePolicy::InOrderComplete;
    if (value == "single")
        return fpu::IssuePolicy::OutOfOrderSingle;
    if (value == "dual")
        return fpu::IssuePolicy::OutOfOrderDual;
    raiseError(SimErrorCode::BadConfig,
               "config key 'fp_policy': unknown policy '", value,
               "' (accepted: inorder, single, dual)");
}

const char *
policyToken(fpu::IssuePolicy policy)
{
    switch (policy) {
      case fpu::IssuePolicy::InOrderComplete: return "inorder";
      case fpu::IssuePolicy::OutOfOrderSingle: return "single";
      case fpu::IssuePolicy::OutOfOrderDual: return "dual";
      default:
        AURORA_PANIC("invalid policy");
    }
}

} // namespace

void
applyOverride(MachineConfig &config, const std::string &key,
              const std::string &value)
{
    if (key == "model") {
        if (value == "small")
            config = smallModel();
        else if (value == "baseline")
            config = baselineModel();
        else if (value == "large")
            config = largeModel();
        else if (value == "recommended")
            config = recommendedModel();
        else
            raiseError(SimErrorCode::BadConfig,
                       "config key 'model': unknown model '", value,
                       "' (accepted: small, baseline, large, "
                       "recommended)");
    } else if (key == "name") {
        config.name = value;
    } else if (key == "issue") {
        const auto width =
            static_cast<unsigned>(parseUnsigned(key, value));
        if (width < 1 || width > 2)
            raiseError(SimErrorCode::BadConfig,
                       "config key 'issue': width must be 1 or 2, "
                       "got '", value, "'");
        config.issue_width = width;
        config.ifu.fetch_width = width;
    } else if (key == "fetch") {
        // Normally tied to issue= (which sets both); exposed so the
        // serialization covers deliberately inconsistent configs —
        // the linter, not the parser, rejects the mismatch.
        config.ifu.fetch_width =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "icache") {
        config.ifu.icache_bytes =
            static_cast<std::uint32_t>(parseUnsigned(key, value));
    } else if (key == "iline") {
        config.ifu.line_bytes =
            static_cast<std::uint32_t>(parseUnsigned(key, value));
    } else if (key == "ifu_buffer") {
        config.ifu.buffer_entries =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "dcache") {
        config.lsu.dcache_bytes =
            static_cast<std::uint32_t>(parseUnsigned(key, value));
    } else if (key == "dline") {
        config.lsu.line_bytes =
            static_cast<std::uint32_t>(parseUnsigned(key, value));
    } else if (key == "dcache_lat") {
        config.lsu.dcache_latency = parseUnsigned(key, value);
    } else if (key == "fill_cycles") {
        config.lsu.fill_port_cycles = parseUnsigned(key, value);
    } else if (key == "store_occ") {
        config.lsu.store_occupancy = parseUnsigned(key, value);
    } else if (key == "wc_lines") {
        config.write_cache.lines =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "wc_line") {
        config.write_cache.line_bytes =
            static_cast<std::uint32_t>(parseUnsigned(key, value));
    } else if (key == "wc_page") {
        config.write_cache.page_bytes =
            static_cast<std::uint32_t>(parseUnsigned(key, value));
    } else if (key == "rob") {
        config.rob_entries =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "mshr") {
        config.lsu.mshr_entries =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "latency") {
        config.biu.latency = parseUnsigned(key, value);
    } else if (key == "biu_occ") {
        config.biu.line_occupancy = parseUnsigned(key, value);
    } else if (key == "biu_queue") {
        config.biu.queue_depth =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "collisions") {
        config.biu.model_collisions = parseBool(key, value);
    } else if (key == "collision_penalty") {
        config.biu.collision_penalty = parseUnsigned(key, value);
    } else if (key == "prefetch") {
        config.prefetch.enabled = parseBool(key, value);
    } else if (key == "pf_buffers") {
        config.prefetch.num_buffers =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "pf_depth") {
        config.prefetch.depth =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "pf_line") {
        config.prefetch.line_bytes =
            static_cast<std::uint32_t>(parseUnsigned(key, value));
    } else if (key == "folding") {
        config.ifu.branch_folding = parseBool(key, value);
    } else if (key == "victim_lines") {
        config.lsu.victim_lines =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "victim_swap") {
        config.lsu.victim_swap_cycles = parseUnsigned(key, value);
    } else if (key == "validate_writes") {
        config.write_cache.validate_writes = parseBool(key, value);
    } else if (key == "retire") {
        config.retire_width =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "alu_lat") {
        config.alu_latency =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "fp_policy") {
        config.fpu.policy = parsePolicy(value);
    } else if (key == "fp_instq") {
        config.fpu.inst_queue =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "fp_loadq") {
        config.fpu.load_queue =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "fp_storeq") {
        config.fpu.store_queue =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "fp_rob") {
        config.fpu.rob_entries =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "fp_buses") {
        config.fpu.result_buses =
            static_cast<unsigned>(parseUnsigned(key, value));
    } else if (key == "fp_add_lat") {
        config.fpu.add.latency = parseUnsigned(key, value);
    } else if (key == "fp_mul_lat") {
        config.fpu.mul.latency = parseUnsigned(key, value);
    } else if (key == "fp_div_lat") {
        config.fpu.div.latency = parseUnsigned(key, value);
    } else if (key == "fp_cvt_lat") {
        config.fpu.cvt.latency = parseUnsigned(key, value);
    } else if (key == "fp_add_piped") {
        config.fpu.add.pipelined = parseBool(key, value);
    } else if (key == "fp_mul_piped") {
        config.fpu.mul.pipelined = parseBool(key, value);
    } else if (key == "fp_div_piped") {
        config.fpu.div.pipelined = parseBool(key, value);
    } else if (key == "fp_cvt_piped") {
        config.fpu.cvt.pipelined = parseBool(key, value);
    } else if (key == "fp_precise") {
        config.fpu.precise_exceptions = parseBool(key, value);
    } else if (key == "fp_safe_frac") {
        config.fpu.provably_safe_frac = parseReal(key, value);
    } else {
        raiseError(SimErrorCode::BadConfig,
                   "unknown configuration key '", key,
                   "' (accepted keys: ", KNOWN_KEYS, ")");
    }
}

MachineConfig
parseMachineSpec(const std::string &spec)
{
    MachineConfig config = baselineModel();
    std::istringstream in(spec);
    std::string token;
    while (in >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0)
            raiseError(SimErrorCode::BadConfig,
                       "expected key=value, got '", token, "'");
        applyOverride(config, token.substr(0, eq),
                      token.substr(eq + 1));
    }
    return config;
}

std::string
describe(const MachineConfig &config)
{
    // Serialize EVERY knob: machineHash() digests this string, so a
    // field omitted here silently escapes seed derivation and journal
    // fingerprints (tests/test_machine_hash.cc walks all fields).
    // fetch= must follow issue= because issue= overwrites fetch_width.
    std::ostringstream os;
    os << "name=" << config.name
       << " issue=" << config.issue_width
       << " fetch=" << config.ifu.fetch_width
       << " retire=" << config.retire_width
       << " alu_lat=" << config.alu_latency
       << " icache=" << config.ifu.icache_bytes
       << " iline=" << config.ifu.line_bytes
       << " ifu_buffer=" << config.ifu.buffer_entries
       << " dcache=" << config.lsu.dcache_bytes
       << " dline=" << config.lsu.line_bytes
       << " dcache_lat=" << config.lsu.dcache_latency
       << " fill_cycles=" << config.lsu.fill_port_cycles
       << " store_occ=" << config.lsu.store_occupancy
       << " wc_lines=" << config.write_cache.lines
       << " wc_line=" << config.write_cache.line_bytes
       << " wc_page=" << config.write_cache.page_bytes
       << " rob=" << config.rob_entries
       << " mshr=" << config.lsu.mshr_entries
       << " latency=" << config.biu.latency
       << " biu_occ=" << config.biu.line_occupancy
       << " biu_queue=" << config.biu.queue_depth
       << " collisions="
       << (config.biu.model_collisions ? "on" : "off")
       << " collision_penalty=" << config.biu.collision_penalty
       << " prefetch=" << (config.prefetch.enabled ? "on" : "off")
       << " pf_buffers=" << config.prefetch.num_buffers
       << " pf_depth=" << config.prefetch.depth
       << " pf_line=" << config.prefetch.line_bytes
       << " folding=" << (config.ifu.branch_folding ? "on" : "off")
       << " victim_lines=" << config.lsu.victim_lines
       << " victim_swap=" << config.lsu.victim_swap_cycles
       << " validate_writes="
       << (config.write_cache.validate_writes ? "on" : "off")
       << " fp_policy=" << policyToken(config.fpu.policy)
       << " fp_instq=" << config.fpu.inst_queue
       << " fp_loadq=" << config.fpu.load_queue
       << " fp_storeq=" << config.fpu.store_queue
       << " fp_rob=" << config.fpu.rob_entries
       << " fp_buses=" << config.fpu.result_buses
       << " fp_add_lat=" << config.fpu.add.latency
       << " fp_mul_lat=" << config.fpu.mul.latency
       << " fp_div_lat=" << config.fpu.div.latency
       << " fp_cvt_lat=" << config.fpu.cvt.latency
       << " fp_add_piped="
       << (config.fpu.add.pipelined ? "on" : "off")
       << " fp_mul_piped="
       << (config.fpu.mul.pipelined ? "on" : "off")
       << " fp_div_piped="
       << (config.fpu.div.pipelined ? "on" : "off")
       << " fp_cvt_piped="
       << (config.fpu.cvt.pipelined ? "on" : "off")
       << " fp_precise="
       << (config.fpu.precise_exceptions ? "on" : "off")
       << " fp_safe_frac=" << config.fpu.provably_safe_frac;
    return os.str();
}

} // namespace aurora::core
