#include "report.hh"

#include <sstream>

namespace aurora::core
{

std::string
runReport(const RunResult &result)
{
    std::ostringstream os;
    os << result.model << " running " << result.benchmark << "\n"
       << "  instructions     " << result.instructions << "\n"
       << "  cycles           " << result.cycles << "\n"
       << "  CPI              " << formatFixed(result.cpi(), 3)
       << "\n"
       << "  issue widths     0/1/2 = "
       << formatFixed(100 * result.issueWidthFrac(0), 1) << "% / "
       << formatFixed(100 * result.issueWidthFrac(1), 1) << "% / "
       << formatFixed(100 * result.issueWidthFrac(2), 1) << "%\n"
       << "  I-cache hit      "
       << formatFixed(result.icache_hit_pct, 1) << "%\n"
       << "  D-cache hit      "
       << formatFixed(result.dcache_hit_pct, 1) << "%\n"
       << "  I-prefetch hit   "
       << formatFixed(result.iprefetch_hit_pct, 1) << "%\n"
       << "  D-prefetch hit   "
       << formatFixed(result.dprefetch_hit_pct, 1) << "%\n"
       << "  write-cache hit  "
       << formatFixed(result.write_cache_hit_pct, 1) << "%\n"
       << "  store traffic    "
       << formatFixed(result.storeTrafficPct(), 1)
       << "% of stores\n"
       << "  ROB occupancy    "
       << formatFixed(result.rob_occupancy.mean, 2) << " avg / p50 "
       << result.rob_occupancy.p50 << " / p95 "
       << result.rob_occupancy.p95 << " / max "
       << result.rob_occupancy.max << "\n"
       << "  MSHR occupancy   "
       << formatFixed(result.mshr_occupancy.mean, 2) << " avg / p50 "
       << result.mshr_occupancy.p50 << " / p95 "
       << result.mshr_occupancy.p95 << " / max "
       << result.mshr_occupancy.max << "\n"
       << "  FP queue depth   iq p95 " << result.fp_instq_occupancy.p95
       << " (max " << result.fp_instq_occupancy.max << ") / lq p95 "
       << result.fp_loadq_occupancy.p95 << " (max "
       << result.fp_loadq_occupancy.max << ") / sq p95 "
       << result.fp_storeq_occupancy.p95 << " (max "
       << result.fp_storeq_occupancy.max << ")\n"
       << "  IPU cost         " << formatFixed(result.rbe_cost, 0)
       << " RBE\n"
       << "  stall CPI        ";
    for (std::size_t c = 0; c < NUM_STALL_CAUSES; ++c) {
        const auto cause = static_cast<StallCause>(c);
        os << stallCauseName(cause) << "="
           << formatFixed(result.stallCpi(cause), 3)
           << (c + 1 < NUM_STALL_CAUSES ? " " : "\n");
    }
    return os.str();
}

Table
suiteTable(const SuiteResult &suite)
{
    Table t({"benchmark", "CPI", "i$%", "d$%", "ipf%", "dpf%",
             "wc%", "traffic%"});
    for (const RunResult &r : suite.runs) {
        t.row()
            .cell(r.benchmark)
            .cell(r.cpi(), 3)
            .cell(r.icache_hit_pct, 1)
            .cell(r.dcache_hit_pct, 1)
            .cell(r.iprefetch_hit_pct, 1)
            .cell(r.dprefetch_hit_pct, 1)
            .cell(r.write_cache_hit_pct, 1)
            .cell(r.storeTrafficPct(), 1);
    }
    return t;
}

Table
stallTable(const SuiteResult &suite)
{
    std::vector<std::string> headers = {"benchmark"};
    for (std::size_t c = 0; c < NUM_STALL_CAUSES; ++c)
        headers.emplace_back(
            stallCauseName(static_cast<StallCause>(c)));
    headers.emplace_back("CPI");
    Table t(headers);
    for (const RunResult &r : suite.runs) {
        auto &row = t.row().cell(r.benchmark);
        for (std::size_t c = 0; c < NUM_STALL_CAUSES; ++c)
            row.cell(r.stallCpi(static_cast<StallCause>(c)), 3);
        row.cell(r.cpi(), 3);
    }
    return t;
}

Table
comparisonTable(const std::vector<SuiteResult> &suites)
{
    Table t({"machine", "cost RBE", "CPI min", "CPI avg", "CPI max",
             "i$%", "d$%", "wc%"});
    for (const SuiteResult &s : suites) {
        const auto acc = s.cpiStats();
        Accumulator ic, dc, wc;
        for (const RunResult &r : s.runs) {
            ic.add(r.icache_hit_pct);
            dc.add(r.dcache_hit_pct);
            wc.add(r.write_cache_hit_pct);
        }
        t.row()
            .cell(s.machine.name)
            .cell(s.machine.rbeCost(), 0)
            .cell(acc.min(), 3)
            .cell(acc.mean(), 3)
            .cell(acc.max(), 3)
            .cell(ic.mean(), 1)
            .cell(dc.mean(), 1)
            .cell(wc.mean(), 1);
    }
    return t;
}

std::string
scatterCsv(const std::vector<SuiteResult> &suites)
{
    std::ostringstream os;
    os << "machine,cost_rbe,cpi_avg\n";
    for (const SuiteResult &s : suites)
        os << s.machine.name << ',' << formatFixed(s.machine.rbeCost(), 0)
           << ',' << formatFixed(s.avgCpi(), 4) << '\n';
    return os.str();
}

} // namespace aurora::core
