#include "stall.hh"

#include "util/logging.hh"

namespace aurora::core
{

std::string_view
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::ICache:  return "ICache";
      case StallCause::Load:    return "Load";
      case StallCause::LsuBusy: return "LSU-Busy";
      case StallCause::RobFull: return "ROB-Full";
      case StallCause::FpQueue: return "FP-Queue";
      default:
        AURORA_PANIC("invalid stall cause");
    }
}

} // namespace aurora::core
