#include "pipeline_trace.hh"

#include <iomanip>
#include <ostream>

#include "isa/encoding.hh"

namespace aurora::core
{

PipelineTracer::PipelineTracer(std::ostream &os, Cycle max_cycles)
    : os_(os), maxCycles_(max_cycles)
{
}

void
PipelineTracer::onIssue(Cycle now, const trace::Inst &inst,
                        unsigned slot)
{
    if (!active(now))
        return;
    os_ << std::setw(8) << now << "  issue[" << slot << "] pc=0x"
        << std::hex << inst.pc << std::dec << "  "
        << isa::disassemble(isa::encode(inst));
    if (trace::isMem(inst.op))
        os_ << "  @0x" << std::hex << inst.eff_addr << std::dec;
    if (inst.redirectsFetch())
        os_ << "  (taken)";
    os_ << '\n';
}

void
PipelineTracer::onStall(Cycle now, StallCause cause)
{
    if (!active(now))
        return;
    os_ << std::setw(8) << now << "  stall    "
        << stallCauseName(cause) << '\n';
}

void
PipelineTracer::onRetire(Cycle now, unsigned count)
{
    if (!active(now) || count == 0)
        return;
    os_ << std::setw(8) << now << "  retire   x" << count << '\n';
}

} // namespace aurora::core
