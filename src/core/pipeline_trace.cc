#include "pipeline_trace.hh"

#include <iomanip>
#include <ostream>

#include "isa/encoding.hh"
#include "util/logging.hh"

namespace aurora::core
{

std::string_view
cacheUnitName(CacheUnit unit)
{
    switch (unit) {
      case CacheUnit::ICache:
        return "icache";
      case CacheUnit::DCache:
        return "dcache";
      case CacheUnit::WriteCache:
        return "write_cache";
    }
    AURORA_PANIC("bad CacheUnit ", static_cast<int>(unit));
}

std::string_view
fpQueueName(FpQueueKind queue)
{
    switch (queue) {
      case FpQueueKind::Inst:
        return "fp_instq";
      case FpQueueKind::Load:
        return "fp_loadq";
      case FpQueueKind::Store:
        return "fp_storeq";
    }
    AURORA_PANIC("bad FpQueueKind ", static_cast<int>(queue));
}

void
ObserverFanout::onIssue(Cycle now, const trace::Inst &inst,
                        unsigned slot)
{
    for (PipelineObserver *o : observers_)
        o->onIssue(now, inst, slot);
}

void
ObserverFanout::onStall(Cycle now, StallCause cause)
{
    for (PipelineObserver *o : observers_)
        o->onStall(now, cause);
}

void
ObserverFanout::onRetire(Cycle now, unsigned count)
{
    for (PipelineObserver *o : observers_)
        o->onRetire(now, count);
}

void
ObserverFanout::onCacheAccess(Cycle now, CacheUnit unit, unsigned hits,
                              unsigned misses)
{
    for (PipelineObserver *o : observers_)
        o->onCacheAccess(now, unit, hits, misses);
}

void
ObserverFanout::onLoadIssue(Cycle now, Cycle latency, bool miss)
{
    for (PipelineObserver *o : observers_)
        o->onLoadIssue(now, latency, miss);
}

void
ObserverFanout::onMshr(Cycle now, unsigned allocated, unsigned released,
                       unsigned in_use)
{
    for (PipelineObserver *o : observers_)
        o->onMshr(now, allocated, released, in_use);
}

void
ObserverFanout::onFpQueue(Cycle now, FpQueueKind queue,
                          unsigned enqueued, unsigned dequeued,
                          unsigned depth)
{
    for (PipelineObserver *o : observers_)
        o->onFpQueue(now, queue, enqueued, dequeued, depth);
}

void
ObserverFanout::onDrainStart(Cycle now)
{
    for (PipelineObserver *o : observers_)
        o->onDrainStart(now);
}

void
ObserverFanout::onDrainEnd(Cycle now, unsigned mshr_releases)
{
    for (PipelineObserver *o : observers_)
        o->onDrainEnd(now, mshr_releases);
}

void
ObserverFanout::onCycleEnd(Cycle now, const OccupancySample &occ)
{
    for (PipelineObserver *o : observers_)
        o->onCycleEnd(now, occ);
}

PipelineTracer::PipelineTracer(std::ostream &os, Cycle max_cycles)
    : os_(os), maxCycles_(max_cycles)
{
}

void
PipelineTracer::onIssue(Cycle now, const trace::Inst &inst,
                        unsigned slot)
{
    if (!active(now))
        return;
    os_ << std::setw(8) << now << "  issue[" << slot << "] pc=0x"
        << std::hex << inst.pc << std::dec << "  "
        << isa::disassemble(isa::encode(inst));
    if (trace::isMem(inst.op))
        os_ << "  @0x" << std::hex << inst.eff_addr << std::dec;
    if (inst.redirectsFetch())
        os_ << "  (taken)";
    os_ << '\n';
}

void
PipelineTracer::onStall(Cycle now, StallCause cause)
{
    if (!active(now))
        return;
    os_ << std::setw(8) << now << "  stall    "
        << stallCauseName(cause) << '\n';
}

void
PipelineTracer::onRetire(Cycle now, unsigned count)
{
    if (!active(now) || count == 0)
        return;
    os_ << std::setw(8) << now << "  retire   x" << count << '\n';
}

void
PipelineTracer::onCacheAccess(Cycle now, CacheUnit unit, unsigned hits,
                              unsigned misses)
{
    if (!active(now))
        return;
    os_ << std::setw(8) << now << "  cache    " << cacheUnitName(unit)
        << " " << hits << " hit / " << misses << " miss\n";
}

void
PipelineTracer::onLoadIssue(Cycle now, Cycle latency, bool miss)
{
    if (!active(now))
        return;
    os_ << std::setw(8) << now << "  load     latency=" << latency
        << (miss ? "  (miss)" : "  (hit)") << '\n';
}

void
PipelineTracer::onMshr(Cycle now, unsigned allocated, unsigned released,
                       unsigned in_use)
{
    if (!active(now))
        return;
    os_ << std::setw(8) << now << "  mshr     +" << allocated << "/-"
        << released << "  (" << in_use << " in use)\n";
}

void
PipelineTracer::onFpQueue(Cycle now, FpQueueKind queue,
                          unsigned enqueued, unsigned dequeued,
                          unsigned depth)
{
    if (!active(now))
        return;
    os_ << std::setw(8) << now << "  fpq      " << fpQueueName(queue)
        << " +" << enqueued << "/-" << dequeued << "  (depth " << depth
        << ")\n";
}

void
PipelineTracer::onDrainStart(Cycle now)
{
    if (!active(now))
        return;
    os_ << std::setw(8) << now << "  drain    begin (trace exhausted)\n";
}

void
PipelineTracer::onDrainEnd(Cycle now, unsigned mshr_releases)
{
    if (!active(now))
        return;
    os_ << std::setw(8) << now << "  drain    end (+" << mshr_releases
        << " mshr released)\n";
}

} // namespace aurora::core
