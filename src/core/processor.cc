#include "processor.hh"

#include <sstream>

#include "audit.hh"
#include "isa/predecode.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace aurora::core
{

using trace::Inst;
using trace::OpClass;

Processor::Processor(const MachineConfig &config,
                     trace::TraceSource &source,
                     WatchdogConfig watchdog)
    // Validate before any component is built from the fields.
    : config_((config.validate(), config)), biu_(config.biu),
      prefetch_(config.prefetch, biu_),
      ifu_(config.ifu, source, prefetch_),
      lsu_(config.lsu, config.write_cache, biu_, prefetch_),
      fpu_(config.fpu), rob_(config.rob_entries, config.retire_width),
      watchdog_(watchdog),
      // One unit-width bucket per possible occupancy value [0, cap].
      robOccupancy_(config.rob_entries + 1),
      mshrOccupancy_(config.lsu.mshr_entries + 1),
      fpInstqOccupancy_(config.fpu.inst_queue + 1),
      fpLoadqOccupancy_(config.fpu.load_queue + 1),
      fpStoreqOccupancy_(config.fpu.store_queue + 1)
{
    config_.validate();
}

OccupancyStats
OccupancyStats::fromHistogram(const Histogram &h)
{
    OccupancyStats s;
    s.mean = h.mean();
    s.p50 = h.percentile(0.50);
    s.p95 = h.percentile(0.95);
    s.max = h.maxSample();
    return s;
}

bool
Processor::done() const
{
    return ifu_.exhausted() && rob_.empty() && fpu_.idle();
}

std::optional<StallCause>
Processor::issueCheck(const Inst &inst) const
{
    // Structural hazard at the LSU interface is detected before
    // operand readiness: a memory instruction with no MSHR or with
    // the cache busses filling cannot even enter the LSU pipeline.
    // With a single MSHR this makes LSU-Busy the dominant stall of
    // the small model, as in Figure 6.
    if (trace::isMem(inst.op) && !lsu_.canAccept(now_))
        return StallCause::LsuBusy;

    // Integer operand readiness: forwarding hides ALU latencies, so
    // in practice only outstanding loads block here (Figure 6
    // "Load" stalls).
    if (!scoreboard_.ready(inst.src_a, now_) ||
        !scoreboard_.ready(inst.src_b, now_))
        return StallCause::Load;

    if (inst.op == OpClass::FpLoad && !fpu_.canAcceptLoad())
        return StallCause::FpQueue;
    if (inst.op == OpClass::FpStore && !fpu_.canAcceptStore())
        return StallCause::FpQueue;
    if (trace::isFpArith(inst.op)) {
        if (!fpu_.canAcceptArith())
            return StallCause::FpQueue;
        // §3.1 precise mode: an op that might fault may not be
        // transferred while older FP work is in flight.
        if (config_.fpu.precise_exceptions &&
            !provablySafe(inst) && !fpu_.quiescent())
            return StallCause::FpQueue;
    }

    if (rob_.full())
        return StallCause::RobFull;

    return std::nullopt;
}

void
Processor::doIssue(const Inst &inst)
{
    switch (inst.op) {
      case OpClass::IntAlu: {
        scoreboard_.setWriter(inst.dst, now_ + config_.alu_latency,
                              /*is_load=*/false);
        rob_.allocate(now_ + config_.alu_latency);
        break;
      }
      case OpClass::Branch:
      case OpClass::Jump:
      case OpClass::Nop:
      case OpClass::FpMove: {
        rob_.allocate(now_ + 1);
        break;
      }
      case OpClass::Load: {
        const Cycle ready = observedLoad(inst);
        scoreboard_.setWriter(inst.dst, ready, /*is_load=*/true);
        rob_.allocate(ready);
        break;
      }
      case OpClass::Store: {
        lsu_.store(inst.eff_addr, inst.size, now_);
        rob_.allocate(now_ + 1);
        break;
      }
      case OpClass::FpLoad: {
        const Cycle ready = observedLoad(inst);
        fpu_.dispatchLoad(inst.fdst, ready, now_);
        rob_.allocate(now_ + 1);
        ++fpDispatched_;
        break;
      }
      case OpClass::FpStore: {
        lsu_.store(inst.eff_addr, inst.size, now_);
        fpu_.dispatchStore(inst.fsrc_a, now_);
        rob_.allocate(now_ + 1);
        ++fpDispatched_;
        break;
      }
      case OpClass::FpAdd:
      case OpClass::FpMul:
      case OpClass::FpDiv:
      case OpClass::FpCvt: {
        fpu_.dispatchArith(inst, now_);
        rob_.allocate(now_ + 1);
        ++fpDispatched_;
        break;
      }
      default:
        AURORA_PANIC("unhandled op class ",
                     static_cast<int>(inst.op));
    }
    ++instructions_;
}

Cycle
Processor::observedLoad(const Inst &inst)
{
    if (!observer_)
        return lsu_.load(inst.eff_addr, inst.size, now_);
    const Count misses_before = lsu_.dcache().hitRate().misses();
    const Cycle ready = lsu_.load(inst.eff_addr, inst.size, now_);
    observer_->onLoadIssue(
        now_, ready - now_,
        lsu_.dcache().hitRate().misses() != misses_before);
    return ready;
}

bool
Processor::provablySafe(const Inst &inst) const
{
    // Deterministic stand-in for the exponent/flag examination of
    // §3.1: a fixed fraction of static FP operations is provably
    // unable to raise an exception.
    const std::uint32_t hash = inst.pc * 2654435761u;
    const double u =
        static_cast<double>(hash >> 8) / static_cast<double>(1u << 24);
    return u < config_.fpu.provably_safe_frac;
}

bool
Processor::pairOk(const Inst &first, const Inst &second) const
{
    // The Figure 3 predecode rules (alignment, DI bit, single memory
    // access per cycle) live in the ISA layer.
    return isa::dualIssueAllowed(first, second);
}

void
Processor::issueStage()
{
    unsigned issued = 0;
    Inst first{};
    StallCause cause = StallCause::ICache;

    while (issued < config_.issue_width) {
        if (ifu_.empty()) {
            // Buffer empty: an I-cache miss, a fetch bubble, or the
            // end of the trace.
            break;
        }
        const Inst &inst = ifu_.peek(0);
        if (issued == 1 && !pairOk(first, inst))
            break;
        if (const auto blocked = issueCheck(inst)) {
            if (issued == 0)
                cause = *blocked;
            break;
        }
        doIssue(inst);
        if (observer_)
            observer_->onIssue(now_, inst, issued);
        if (issued == 0)
            first = inst;
        ifu_.pop();
        ++issued;
    }

    if (issued > 0) {
        ++issuingCycles_;
    } else if (ifu_.exhausted()) {
        ++tailCycles_;
    } else {
        ++stalls_[static_cast<std::size_t>(cause)];
        if (observer_)
            observer_->onStall(now_, cause);
    }
    ++issueWidthCycles_[issued];
}

Processor::ObsSnapshot
Processor::obsCapture() const
{
    ObsSnapshot s;
    s.icache_hits = ifu_.icache().hitRate().hits();
    s.icache_misses = ifu_.icache().hitRate().misses();
    s.dcache_hits = lsu_.dcache().hitRate().hits();
    s.dcache_misses = lsu_.dcache().hitRate().misses();
    s.wcache_hits = lsu_.writeCache().hitRate().hits();
    s.wcache_misses = lsu_.writeCache().hitRate().misses();
    s.mshr_allocs = lsu_.mshrs().allocations();
    s.mshr_releases = lsu_.mshrs().releases();
    s.fp_loads = fpu_.stats().loads;
    s.fp_stores = fpu_.stats().stores;
    s.fp_dispatched = fpDispatched_;
    s.fp_instq = fpu_.instQueueSize();
    s.fp_loadq = fpu_.loadQueueSize();
    s.fp_storeq = fpu_.storeQueueSize();
    return s;
}

void
Processor::obsEmit(const ObsSnapshot &pre)
{
    const ObsSnapshot cur = obsCapture();
    const auto delta = [](Count now_v, Count before) {
        return static_cast<unsigned>(now_v - before);
    };

    const unsigned ich = delta(cur.icache_hits, pre.icache_hits);
    const unsigned icm = delta(cur.icache_misses, pre.icache_misses);
    if (ich || icm)
        observer_->onCacheAccess(now_, CacheUnit::ICache, ich, icm);
    const unsigned dch = delta(cur.dcache_hits, pre.dcache_hits);
    const unsigned dcm = delta(cur.dcache_misses, pre.dcache_misses);
    if (dch || dcm)
        observer_->onCacheAccess(now_, CacheUnit::DCache, dch, dcm);
    const unsigned wch = delta(cur.wcache_hits, pre.wcache_hits);
    const unsigned wcm = delta(cur.wcache_misses, pre.wcache_misses);
    if (wch || wcm)
        observer_->onCacheAccess(now_, CacheUnit::WriteCache, wch, wcm);

    const unsigned ma = delta(cur.mshr_allocs, pre.mshr_allocs);
    const unsigned mr = delta(cur.mshr_releases, pre.mshr_releases);
    if (ma || mr)
        observer_->onMshr(now_, ma, mr,
                          static_cast<unsigned>(lsu_.mshrs().inUse()));

    // Queue enqueue counts come from producer-side counters; dequeue
    // counts fall out of the depth balance (pre + enq - deq == cur).
    const unsigned loads = delta(cur.fp_loads, pre.fp_loads);
    const unsigned stores = delta(cur.fp_stores, pre.fp_stores);
    const unsigned arith =
        delta(cur.fp_dispatched, pre.fp_dispatched) - loads - stores;
    const auto queue_event = [&](FpQueueKind kind, unsigned enq,
                                 std::size_t before, std::size_t now_d) {
        const auto deq = static_cast<unsigned>(before + enq - now_d);
        if (enq || deq)
            observer_->onFpQueue(now_, kind, enq, deq,
                                 static_cast<unsigned>(now_d));
    };
    queue_event(FpQueueKind::Inst, arith, pre.fp_instq, cur.fp_instq);
    queue_event(FpQueueKind::Load, loads, pre.fp_loadq, cur.fp_loadq);
    queue_event(FpQueueKind::Store, stores, pre.fp_storeq,
                cur.fp_storeq);

    if (!drainObserved_ && ifu_.exhausted()) {
        drainObserved_ = true;
        observer_->onDrainStart(now_);
    }

    OccupancySample occ;
    occ.rob = static_cast<unsigned>(rob_.size());
    occ.mshr = static_cast<unsigned>(lsu_.mshrs().inUse());
    occ.write_cache = lsu_.writeCache().linesInUse();
    occ.prefetch = prefetch_.entriesInFlight();
    occ.fp_instq = static_cast<unsigned>(cur.fp_instq);
    occ.fp_loadq = static_cast<unsigned>(cur.fp_loadq);
    occ.fp_storeq = static_cast<unsigned>(cur.fp_storeq);
    occ.fp_rob = static_cast<unsigned>(fpu_.robSize());
    observer_->onCycleEnd(now_, occ);
}

void
Processor::step()
{
    // Snapshot source counters up front so the whole step — LSU/FPU
    // ticks, retirement, issue, fetch — lands in one set of per-cycle
    // delta events. Pure reads: results are identical either way.
    ObsSnapshot pre;
    if (observer_)
        pre = obsCapture();
    lsu_.tick(now_);
    fpu_.tick(now_);
    const unsigned retired = rob_.retire(now_);
    if (retired)
        lastRetire_ = now_;
    if (observer_ && retired)
        observer_->onRetire(now_, retired);
    issueStage();
    ifu_.tick(now_);
    robOccupancy_.add(rob_.size());
    mshrOccupancy_.add(lsu_.mshrs().inUse());
    fpInstqOccupancy_.add(fpu_.instQueueSize());
    fpLoadqOccupancy_.add(fpu_.loadQueueSize());
    fpStoreqOccupancy_.add(fpu_.storeQueueSize());
    if (observer_)
        obsEmit(pre);
    ++now_;
}

WatchdogDiagnostic
Processor::snapshot() const
{
    WatchdogDiagnostic diag;
    diag.model = config_.name;
    diag.watchdog = watchdog_;
    diag.cycle = now_;
    diag.instructions = instructions_;
    diag.retired = rob_.retired();
    diag.last_retire_cycle = lastRetire_;
    diag.stalls = stalls_;
    diag.rob_size = rob_.size();
    diag.rob_capacity = rob_.capacity();
    diag.fp_instq_size = fpu_.instQueueSize();
    diag.fp_instq_capacity = config_.fpu.inst_queue;
    diag.fp_loadq_size = fpu_.loadQueueSize();
    diag.fp_loadq_capacity = config_.fpu.load_queue;
    diag.fp_storeq_size = fpu_.storeQueueSize();
    diag.fp_storeq_capacity = config_.fpu.store_queue;
    return diag;
}

std::string
RunLedger::toString() const
{
    std::ostringstream os;
    os << "trace_instructions=" << trace_instructions
       << " retired=" << retired << " icache=" << icache_hits << "+"
       << icache_misses << "/" << icache_accesses << " dcache="
       << dcache_hits << "+" << dcache_misses << "/"
       << dcache_accesses << " mshr_alloc=" << mshr_allocations
       << " mshr_release=" << mshr_releases << " mshr_outstanding="
       << mshr_outstanding;
    return os.str();
}

RunResult
Processor::run()
{
    const bool deadline_armed = watchdog_.deadline_ms > 0;
    const WallTimer run_timer;
    while (!done()) {
        // Liveness checks live here rather than in step() so the
        // cycle accounting of a healthy run is untouched and unit
        // tests may still single-step a deliberately stuck machine.
        if (watchdog_.cycle_budget && now_ >= watchdog_.cycle_budget)
            throw WatchdogError(
                util::SimErrorCode::CycleBudgetExceeded, snapshot());
        if (watchdog_.stall_limit &&
            now_ - lastRetire_ >= watchdog_.stall_limit)
            throw WatchdogError(
                util::SimErrorCode::NoForwardProgress, snapshot());
        // The wall-clock deadline is sampled every 1024 cycles: a
        // steady_clock read per cycle would dominate the simulation,
        // and millisecond deadlines do not need cycle resolution.
        if (deadline_armed && (now_ & 1023u) == 0 &&
            run_timer.seconds() * 1000.0 >=
                static_cast<double>(watchdog_.deadline_ms))
            throw WatchdogError(util::SimErrorCode::Timeout,
                                snapshot());
        step();
    }
    if (!drained_) {
        const Count releases_before = lsu_.mshrs().releases();
        lsu_.drain(now_);
        drained_ = true;
        if (observer_)
            observer_->onDrainEnd(
                now_, static_cast<unsigned>(lsu_.mshrs().releases() -
                                            releases_before));
    }

    RunResult res;
    res.model = config_.name;
    res.instructions = instructions_;
    res.cycles = now_;
    res.issuing_cycles = issuingCycles_;
    res.tail_cycles = tailCycles_;
    res.stalls = stalls_;
    res.icache_hit_pct = ifu_.icache().hitRate().percent();
    res.dcache_hit_pct = lsu_.dcache().hitRate().percent();
    res.iprefetch_hit_pct = prefetch_.instHitRate().percent();
    res.dprefetch_hit_pct = prefetch_.dataHitRate().percent();
    res.write_cache_hit_pct = lsu_.writeCache().hitRate().percent();
    res.stores = lsu_.writeCache().stores();
    res.store_transactions = lsu_.writeCache().storeTransactions();
    res.fp_dispatched = fpDispatched_;
    res.fpu = fpu_.stats();
    res.rbe_cost = config_.rbeCost();
    res.issue_width_cycles = issueWidthCycles_;
    res.rob_occupancy = OccupancyStats::fromHistogram(robOccupancy_);
    res.mshr_occupancy = OccupancyStats::fromHistogram(mshrOccupancy_);
    res.fp_instq_occupancy =
        OccupancyStats::fromHistogram(fpInstqOccupancy_);
    res.fp_loadq_occupancy =
        OccupancyStats::fromHistogram(fpLoadqOccupancy_);
    res.fp_storeq_occupancy =
        OccupancyStats::fromHistogram(fpStoreqOccupancy_);
    res.avg_rob_occupancy = res.rob_occupancy.mean;
    res.avg_mshr_occupancy = res.mshr_occupancy.mean;

    // Conservation ledger: each count captured at its source, so
    // auditRun() cross-checks genuinely independent counters.
    res.ledger.trace_instructions = ifu_.fetchedFromSource();
    res.ledger.retired = rob_.retired();
    res.ledger.icache_hits = ifu_.icache().hitRate().hits();
    res.ledger.icache_misses = ifu_.icache().hitRate().misses();
    res.ledger.icache_accesses = ifu_.icache().hitRate().total();
    res.ledger.dcache_hits = lsu_.dcache().hitRate().hits();
    res.ledger.dcache_misses = lsu_.dcache().hitRate().misses();
    res.ledger.dcache_accesses = lsu_.dcache().hitRate().total();
    res.ledger.mshr_allocations = lsu_.mshrs().allocations();
    res.ledger.mshr_releases = lsu_.mshrs().releases();
    res.ledger.mshr_outstanding = lsu_.mshrs().inUse();

    // Self-check before the result is trusted (AURORA_AUDIT=1; the
    // test suites enable it globally). A violation is a simulator
    // bug, not a property of the machine under study.
    if (auditEnabled())
        auditRun(res);
    return res;
}

} // namespace aurora::core
