/**
 * @file
 * Textual machine-configuration parsing and serialization.
 *
 * Experiments are scripted with `key=value` override strings applied
 * on top of a named base model, e.g.
 *
 *   "model=baseline icache=4096 mshr=4 latency=35 fp_policy=single"
 *
 * which is exactly the §5.6 point-E machine at the long latency with
 * a single-issue FPU. describe() serializes a configuration back to
 * the same syntax, and parse(describe(m)) reproduces m.
 */

#ifndef AURORA_CORE_CONFIG_IO_HH
#define AURORA_CORE_CONFIG_IO_HH

#include <string>

#include "machine_config.hh"

namespace aurora::core
{

/**
 * Apply a single `key=value` override to @p config.
 *
 * Unknown keys and malformed values throw util::SimError
 * (BadConfig) naming the key, the offending value, and the accepted
 * values, so sweep drivers can report the bad point and continue.
 */
void applyOverride(MachineConfig &config, const std::string &key,
                   const std::string &value);

/**
 * Build a configuration from a whitespace-separated override
 * string. A `model=` token (small/baseline/large/recommended)
 * selects the base; later overrides mutate it. The base defaults to
 * the Table 1 baseline. Malformed tokens throw util::SimError
 * (BadConfig).
 */
MachineConfig parseMachineSpec(const std::string &spec);

/** Serialize every knob as a parseable override string. */
std::string describe(const MachineConfig &config);

} // namespace aurora::core

#endif // AURORA_CORE_CONFIG_IO_HH
