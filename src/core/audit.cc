#include "audit.hh"

#include <numeric>

#include "util/env.hh"
#include "util/sim_error.hh"

namespace aurora::core
{

bool
auditEnabled()
{
    // envFlag reads dynamically (not cached): tests toggle it with
    // setenv. Routing through util/env also keeps src/core free of
    // raw environment reads, which scripts/lint_determinism.sh
    // enforces.
    return envFlag("AURORA_AUDIT", false);
}

namespace
{

/** Fail the audit: name the invariant and dump the whole ledger. */
[[noreturn]] void
violation(const RunResult &r, const std::string &what)
{
    util::raiseError(util::SimErrorCode::Internal,
                     "run audit failed for '", r.model, "'/'",
                     r.benchmark, "': ", what,
                     "; ledger: ", r.ledger.toString(),
                     " | cycles=", r.cycles,
                     " issuing=", r.issuing_cycles,
                     " tail=", r.tail_cycles,
                     " instructions=", r.instructions);
}

} // namespace

void
auditRun(const RunResult &r)
{
    const RunLedger &l = r.ledger;

    // 1. Instruction conservation: everything the trace delivered
    //    was issued, and everything issued was retired.
    if (l.retired != r.instructions)
        violation(r, detail::concat(
                         "retired (", l.retired,
                         ") != issued instructions (", r.instructions,
                         ")"));
    if (l.trace_instructions != r.instructions)
        violation(r, detail::concat(
                         "trace length (", l.trace_instructions,
                         ") != issued instructions (", r.instructions,
                         ")"));

    // 2. Cycle conservation: every cycle is charged exactly once —
    //    to an issue, to one stall cause, or to the post-trace tail.
    const Cycle stall_sum =
        std::accumulate(r.stalls.begin(), r.stalls.end(), Cycle{0});
    if (stall_sum + r.issuing_cycles + r.tail_cycles != r.cycles)
        violation(r, detail::concat(
                         "stall cycles (", stall_sum,
                         ") + issuing (", r.issuing_cycles,
                         ") + tail (", r.tail_cycles,
                         ") != total cycles (", r.cycles, ")"));

    // 3. Cache access conservation.
    if (l.icache_hits + l.icache_misses != l.icache_accesses)
        violation(r, detail::concat(
                         "icache hits (", l.icache_hits,
                         ") + misses (", l.icache_misses,
                         ") != accesses (", l.icache_accesses, ")"));
    if (l.dcache_hits + l.dcache_misses != l.dcache_accesses)
        violation(r, detail::concat(
                         "dcache hits (", l.dcache_hits,
                         ") + misses (", l.dcache_misses,
                         ") != accesses (", l.dcache_accesses, ")"));

    // 4. MSHR conservation: balanced ledger, nothing leaked past the
    //    end-of-run drain.
    if (l.mshr_allocations != l.mshr_releases)
        violation(r, detail::concat(
                         "MSHR allocations (", l.mshr_allocations,
                         ") != releases (", l.mshr_releases, ")"));
    if (l.mshr_outstanding != 0)
        violation(r, detail::concat(
                         l.mshr_outstanding,
                         " MSHR(s) still outstanding after drain"));
}

} // namespace aurora::core
