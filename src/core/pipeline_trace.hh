/**
 * @file
 * Pipeline observability: per-cycle event hooks and a text tracer.
 *
 * A PipelineObserver attached to a Processor receives issue, stall
 * and retire events as they happen — the facility used to debug the
 * pipeline model and to teach what the machine is doing cycle by
 * cycle (aurora_sim --pipeline-trace N). Observation is optional and
 * free when absent.
 */

#ifndef AURORA_CORE_PIPELINE_TRACE_HH
#define AURORA_CORE_PIPELINE_TRACE_HH

#include <iosfwd>

#include "stall.hh"
#include "trace/inst.hh"
#include "util/types.hh"

namespace aurora::core
{

/** Receives pipeline events; default implementations ignore them. */
class PipelineObserver
{
  public:
    virtual ~PipelineObserver() = default;

    /** @p inst issued in slot @p slot (0 = first of the pair). */
    virtual void
    onIssue(Cycle now, const trace::Inst &inst, unsigned slot)
    {
        (void)now;
        (void)inst;
        (void)slot;
    }

    /** The issue stage made no progress, charged to @p cause. */
    virtual void
    onStall(Cycle now, StallCause cause)
    {
        (void)now;
        (void)cause;
    }

    /** @p count instructions retired from the reorder buffer. */
    virtual void
    onRetire(Cycle now, unsigned count)
    {
        (void)now;
        (void)count;
    }
};

/**
 * Textual tracer: one line per event, MIPS disassembly included.
 * Stops emitting after @p max_cycles (the stream would otherwise be
 * enormous); counting continues so statistics stay exact.
 */
class PipelineTracer : public PipelineObserver
{
  public:
    PipelineTracer(std::ostream &os, Cycle max_cycles);

    void onIssue(Cycle now, const trace::Inst &inst,
                 unsigned slot) override;
    void onStall(Cycle now, StallCause cause) override;
    void onRetire(Cycle now, unsigned count) override;

  private:
    bool active(Cycle now) const { return now < maxCycles_; }

    std::ostream &os_;
    Cycle maxCycles_;
};

} // namespace aurora::core

#endif // AURORA_CORE_PIPELINE_TRACE_HH
