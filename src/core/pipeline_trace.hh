/**
 * @file
 * Pipeline observability: per-cycle event hooks and a text tracer.
 *
 * A PipelineObserver attached to a Processor receives issue, stall,
 * retire, cache-access, MSHR, FP-queue, drain and end-of-cycle
 * occupancy events as they happen — the facility used to debug the
 * pipeline model, to teach what the machine is doing cycle by cycle
 * (aurora_sim --pipeline-trace N), and to feed the telemetry layer
 * (metric registries and Chrome trace-event export, see
 * docs/observability.md). Observation is optional and free when
 * absent: every hook site is guarded by a single pointer test, and
 * an attached observer only *reads* machine state, so enabling one
 * can never perturb simulation results, seeds, or machineHash.
 */

#ifndef AURORA_CORE_PIPELINE_TRACE_HH
#define AURORA_CORE_PIPELINE_TRACE_HH

#include <iosfwd>
#include <string_view>
#include <vector>

#include "stall.hh"
#include "trace/inst.hh"
#include "util/types.hh"

namespace aurora::core
{

/** Cache named by an onCacheAccess() event. */
enum class CacheUnit
{
    ICache,
    DCache,
    WriteCache,
};

inline constexpr std::size_t NUM_CACHE_UNITS = 3;

/** Short stable name of @p unit ("icache", "dcache", "write_cache"). */
std::string_view cacheUnitName(CacheUnit unit);

/** FPU decoupling queue named by an onFpQueue() event. */
enum class FpQueueKind
{
    Inst,
    Load,
    Store,
};

inline constexpr std::size_t NUM_FP_QUEUES = 3;

/** Short stable name of @p queue ("fp_instq", "fp_loadq", "fp_storeq"). */
std::string_view fpQueueName(FpQueueKind queue);

/**
 * End-of-cycle occupancy snapshot of every bounded structure the
 * paper sizes (delivered by onCycleEnd()).
 */
struct OccupancySample
{
    unsigned rob = 0;         ///< IPU reorder buffer entries
    unsigned mshr = 0;        ///< MSHRs in flight
    unsigned write_cache = 0; ///< valid write-cache lines
    unsigned prefetch = 0;    ///< prefetch-buffer entries in flight
    unsigned fp_instq = 0;    ///< FP instruction queue depth
    unsigned fp_loadq = 0;    ///< FP load data queue depth
    unsigned fp_storeq = 0;   ///< FP store data queue depth
    unsigned fp_rob = 0;      ///< FPU reorder buffer entries
};

/** Receives pipeline events; default implementations ignore them. */
class PipelineObserver
{
  public:
    virtual ~PipelineObserver() = default;

    /** @p inst issued in slot @p slot (0 = first of the pair). */
    virtual void
    onIssue(Cycle now, const trace::Inst &inst, unsigned slot)
    {
        (void)now;
        (void)inst;
        (void)slot;
    }

    /** The issue stage made no progress, charged to @p cause. */
    virtual void
    onStall(Cycle now, StallCause cause)
    {
        (void)now;
        (void)cause;
    }

    /** @p count instructions retired from the reorder buffer. */
    virtual void
    onRetire(Cycle now, unsigned count)
    {
        (void)now;
        (void)count;
    }

    /**
     * @p unit serviced @p hits + @p misses accesses this cycle.
     * Emitted at most once per unit per cycle (counts are the cycle's
     * deltas, so their run totals match the RunLedger exactly).
     */
    virtual void
    onCacheAccess(Cycle now, CacheUnit unit, unsigned hits,
                  unsigned misses)
    {
        (void)now;
        (void)unit;
        (void)hits;
        (void)misses;
    }

    /**
     * A data-side load entered the LSU: its result is due @p latency
     * cycles from now; @p miss when the D-cache missed.
     */
    virtual void
    onLoadIssue(Cycle now, Cycle latency, bool miss)
    {
        (void)now;
        (void)latency;
        (void)miss;
    }

    /**
     * MSHR file activity this cycle: @p allocated entries claimed,
     * @p released entries freed, @p in_use currently outstanding.
     */
    virtual void
    onMshr(Cycle now, unsigned allocated, unsigned released,
           unsigned in_use)
    {
        (void)now;
        (void)allocated;
        (void)released;
        (void)in_use;
    }

    /**
     * FPU decoupling-queue activity this cycle: @p enqueued entries
     * accepted, @p dequeued entries drained, @p depth at cycle end.
     */
    virtual void
    onFpQueue(Cycle now, FpQueueKind queue, unsigned enqueued,
              unsigned dequeued, unsigned depth)
    {
        (void)now;
        (void)queue;
        (void)enqueued;
        (void)dequeued;
        (void)depth;
    }

    /** The trace is exhausted; the machine began its drain tail. */
    virtual void
    onDrainStart(Cycle now)
    {
        (void)now;
    }

    /**
     * The end-of-run LSU drain completed, force-releasing
     * @p mshr_releases MSHRs that were still in flight.
     */
    virtual void
    onDrainEnd(Cycle now, unsigned mshr_releases)
    {
        (void)now;
        (void)mshr_releases;
    }

    /** End of cycle @p now with occupancies @p occ (every cycle). */
    virtual void
    onCycleEnd(Cycle now, const OccupancySample &occ)
    {
        (void)now;
        (void)occ;
    }
};

/**
 * Fans one Processor observer slot out to several observers (e.g. a
 * PipelineTracer plus a telemetry sampler plus a trace-event
 * exporter). Events forward in attach() order.
 */
class ObserverFanout : public PipelineObserver
{
  public:
    /** Add @p observer (ignored when nullptr); must outlive the run. */
    void
    attach(PipelineObserver *observer)
    {
        if (observer)
            observers_.push_back(observer);
    }

    bool empty() const { return observers_.empty(); }

    void onIssue(Cycle now, const trace::Inst &inst,
                 unsigned slot) override;
    void onStall(Cycle now, StallCause cause) override;
    void onRetire(Cycle now, unsigned count) override;
    void onCacheAccess(Cycle now, CacheUnit unit, unsigned hits,
                       unsigned misses) override;
    void onLoadIssue(Cycle now, Cycle latency, bool miss) override;
    void onMshr(Cycle now, unsigned allocated, unsigned released,
                unsigned in_use) override;
    void onFpQueue(Cycle now, FpQueueKind queue, unsigned enqueued,
                   unsigned dequeued, unsigned depth) override;
    void onDrainStart(Cycle now) override;
    void onDrainEnd(Cycle now, unsigned mshr_releases) override;
    void onCycleEnd(Cycle now, const OccupancySample &occ) override;

  private:
    std::vector<PipelineObserver *> observers_;
};

/**
 * Textual tracer: one line per event, MIPS disassembly included.
 * Stops emitting after @p max_cycles (the stream would otherwise be
 * enormous); counting continues so statistics stay exact. End-of-
 * cycle occupancy samples are deliberately not printed (they fire
 * every cycle; the trace-event exporter carries them instead).
 */
class PipelineTracer : public PipelineObserver
{
  public:
    PipelineTracer(std::ostream &os, Cycle max_cycles);

    void onIssue(Cycle now, const trace::Inst &inst,
                 unsigned slot) override;
    void onStall(Cycle now, StallCause cause) override;
    void onRetire(Cycle now, unsigned count) override;
    void onCacheAccess(Cycle now, CacheUnit unit, unsigned hits,
                       unsigned misses) override;
    void onLoadIssue(Cycle now, Cycle latency, bool miss) override;
    void onMshr(Cycle now, unsigned allocated, unsigned released,
                unsigned in_use) override;
    void onFpQueue(Cycle now, FpQueueKind queue, unsigned enqueued,
                   unsigned dequeued, unsigned depth) override;
    void onDrainStart(Cycle now) override;
    void onDrainEnd(Cycle now, unsigned mshr_releases) override;

  private:
    bool active(Cycle now) const { return now < maxCycles_; }

    std::ostream &os_;
    Cycle maxCycles_;
};

} // namespace aurora::core

#endif // AURORA_CORE_PIPELINE_TRACE_HH
