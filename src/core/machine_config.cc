#include "machine_config.hh"

#include "util/logging.hh"

namespace aurora::core
{

void
MachineConfig::validate() const
{
    if (issue_width < 1 || issue_width > 2)
        AURORA_FATAL("issue width must be 1 or 2, got ",
                     issue_width);
    if (ifu.fetch_width != issue_width)
        AURORA_FATAL("fetch width (", ifu.fetch_width,
                     ") must equal issue width (", issue_width, ")");
    if (retire_width < issue_width)
        AURORA_FATAL("retire width (", retire_width,
                     ") below issue width would leak ROB entries");
    if (ifu.line_bytes != lsu.line_bytes ||
        ifu.line_bytes != prefetch.line_bytes ||
        ifu.line_bytes != write_cache.line_bytes)
        AURORA_FATAL("cache line sizes disagree: icache ",
                     ifu.line_bytes, ", dcache ", lsu.line_bytes,
                     ", prefetch ", prefetch.line_bytes,
                     ", write cache ", write_cache.line_bytes);
    if (rob_entries == 0)
        AURORA_FATAL("reorder buffer needs at least one entry");
    if (alu_latency < 1)
        AURORA_FATAL("ALU latency must be at least one cycle");
    if (lsu.mshr_entries == 0)
        AURORA_FATAL("the LSU needs at least one MSHR");
    if (prefetch.enabled && prefetch.num_buffers == 0)
        AURORA_FATAL("enabled prefetch unit needs buffers");
    if (fpu.provably_safe_frac < 0.0 ||
        fpu.provably_safe_frac > 1.0)
        AURORA_FATAL("fp_safe_frac must lie in [0,1]");
}

cost::IpuResources
MachineConfig::ipuResources() const
{
    cost::IpuResources res;
    res.icache_bytes = ifu.icache_bytes;
    res.write_cache_lines = write_cache.lines;
    res.prefetch_buffers = prefetch.enabled ? prefetch.num_buffers : 0;
    res.prefetch_depth = prefetch.depth;
    res.rob_entries = rob_entries;
    res.mshr_entries = lsu.mshr_entries;
    res.pipelines = issue_width;
    return res;
}

double
MachineConfig::rbeCost() const
{
    return cost::ipuRbe(ipuResources());
}

MachineConfig
MachineConfig::withIssueWidth(unsigned width) const
{
    MachineConfig c = *this;
    c.issue_width = width;
    c.ifu.fetch_width = width;
    return c;
}

MachineConfig
MachineConfig::withLatency(Cycle latency) const
{
    MachineConfig c = *this;
    c.biu.latency = latency;
    return c;
}

MachineConfig
MachineConfig::withPrefetch(bool enabled) const
{
    MachineConfig c = *this;
    c.prefetch.enabled = enabled;
    return c;
}

MachineConfig
MachineConfig::withMshrs(unsigned entries) const
{
    MachineConfig c = *this;
    c.lsu.mshr_entries = entries;
    return c;
}

MachineConfig
MachineConfig::withName(std::string new_name) const
{
    MachineConfig c = *this;
    c.name = std::move(new_name);
    return c;
}

MachineConfig
smallModel()
{
    MachineConfig c;
    c.name = "small";
    c.rob_entries = 2;
    c.ifu.icache_bytes = 1024;
    c.lsu.dcache_bytes = 16 * 1024;
    c.lsu.mshr_entries = 1;
    c.write_cache.lines = 2;
    c.prefetch.num_buffers = 2;
    return c;
}

MachineConfig
baselineModel()
{
    MachineConfig c;
    c.name = "baseline";
    c.rob_entries = 6;
    c.ifu.icache_bytes = 2048;
    c.lsu.dcache_bytes = 32 * 1024;
    c.lsu.mshr_entries = 2;
    c.write_cache.lines = 4;
    c.prefetch.num_buffers = 4;
    return c;
}

MachineConfig
largeModel()
{
    MachineConfig c;
    c.name = "large";
    c.rob_entries = 8;
    c.ifu.icache_bytes = 4096;
    c.lsu.dcache_bytes = 64 * 1024;
    c.lsu.mshr_entries = 4;
    c.write_cache.lines = 8;
    c.prefetch.num_buffers = 8;
    return c;
}

MachineConfig
recommendedModel()
{
    MachineConfig c = baselineModel();
    c.name = "recommended";
    c.ifu.icache_bytes = 4096;
    c.lsu.mshr_entries = 4;
    return c;
}

std::vector<MachineConfig>
studyModels()
{
    return {smallModel(), baselineModel(), largeModel()};
}

} // namespace aurora::core
