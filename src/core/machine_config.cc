#include "machine_config.hh"

#include "fpu/result_bus.hh"
#include "util/sim_error.hh"

namespace aurora::core
{

namespace
{

using util::SimErrorCode;
using util::raiseError;

/** Shared bound on FP unit latencies (result bus scheduling window). */
constexpr Cycle MAX_FP_LATENCY = fpu::ResultBusSchedule::WINDOW - 1;

void
checkFpLatency(const char *unit, const fpu::FpUnitConfig &cfg)
{
    if (cfg.latency < 1 || cfg.latency > MAX_FP_LATENCY)
        raiseError(SimErrorCode::BadConfig, "FP ", unit, " latency ",
                   cfg.latency, " outside [1, ", MAX_FP_LATENCY,
                   "] (result bus scheduling window)");
}

} // namespace

void
MachineConfig::validate() const
{
    // Every failure here is a user configuration error — recoverable
    // by whoever drives the sweep — so it throws SimError(BadConfig)
    // rather than terminating the process. Note that validation is
    // deliberately not a liveness proof: a machine can pass every
    // structural check and still never retire (e.g. fp_buses=0, a
    // bus-starved FPU); the Processor's forward-progress watchdog
    // exists for exactly those configurations.
    if (issue_width < 1 || issue_width > 2)
        raiseError(SimErrorCode::BadConfig,
                   "issue width must be 1 or 2, got ", issue_width);
    if (ifu.fetch_width != issue_width)
        raiseError(SimErrorCode::BadConfig, "fetch width (",
                   ifu.fetch_width, ") must equal issue width (",
                   issue_width, ")");
    if (retire_width < issue_width)
        raiseError(SimErrorCode::BadConfig, "retire width (",
                   retire_width,
                   ") below issue width would leak ROB entries");
    if (ifu.line_bytes != lsu.line_bytes ||
        ifu.line_bytes != prefetch.line_bytes ||
        ifu.line_bytes != write_cache.line_bytes)
        raiseError(SimErrorCode::BadConfig,
                   "cache line sizes disagree: icache ",
                   ifu.line_bytes, ", dcache ", lsu.line_bytes,
                   ", prefetch ", prefetch.line_bytes,
                   ", write cache ", write_cache.line_bytes);
    if (rob_entries == 0)
        raiseError(SimErrorCode::BadConfig,
                   "reorder buffer needs at least one entry");
    if (alu_latency < 1)
        raiseError(SimErrorCode::BadConfig,
                   "ALU latency must be at least one cycle");
    if (lsu.mshr_entries == 0)
        raiseError(SimErrorCode::BadConfig,
                   "the LSU needs at least one MSHR");
    if (prefetch.enabled && prefetch.num_buffers == 0)
        raiseError(SimErrorCode::BadConfig,
                   "enabled prefetch unit needs buffers");
    if (fpu.inst_queue == 0 || fpu.load_queue == 0 ||
        fpu.store_queue == 0)
        raiseError(SimErrorCode::BadConfig,
                   "FPU decoupling queues need at least one entry "
                   "(fp_instq=", fpu.inst_queue,
                   ", fp_loadq=", fpu.load_queue,
                   ", fp_storeq=", fpu.store_queue, ")");
    if (fpu.rob_entries == 0)
        raiseError(SimErrorCode::BadConfig,
                   "FPU reorder buffer needs at least one entry");
    checkFpLatency("add", fpu.add);
    checkFpLatency("mul", fpu.mul);
    checkFpLatency("div", fpu.div);
    checkFpLatency("cvt", fpu.cvt);
    if (fpu.provably_safe_frac < 0.0 ||
        fpu.provably_safe_frac > 1.0)
        raiseError(SimErrorCode::BadConfig,
                   "fp_safe_frac must lie in [0,1]");
}

cost::IpuResources
MachineConfig::ipuResources() const
{
    cost::IpuResources res;
    res.icache_bytes = ifu.icache_bytes;
    res.write_cache_lines = write_cache.lines;
    res.prefetch_buffers = prefetch.enabled ? prefetch.num_buffers : 0;
    res.prefetch_depth = prefetch.depth;
    res.rob_entries = rob_entries;
    res.mshr_entries = lsu.mshr_entries;
    res.pipelines = issue_width;
    return res;
}

double
MachineConfig::rbeCost() const
{
    return cost::ipuRbe(ipuResources());
}

MachineConfig
MachineConfig::withIssueWidth(unsigned width) const
{
    MachineConfig c = *this;
    c.issue_width = width;
    c.ifu.fetch_width = width;
    return c;
}

MachineConfig
MachineConfig::withLatency(Cycle latency) const
{
    MachineConfig c = *this;
    c.biu.latency = latency;
    return c;
}

MachineConfig
MachineConfig::withPrefetch(bool enabled) const
{
    MachineConfig c = *this;
    c.prefetch.enabled = enabled;
    return c;
}

MachineConfig
MachineConfig::withMshrs(unsigned entries) const
{
    MachineConfig c = *this;
    c.lsu.mshr_entries = entries;
    return c;
}

MachineConfig
MachineConfig::withName(std::string new_name) const
{
    MachineConfig c = *this;
    c.name = std::move(new_name);
    return c;
}

MachineConfig
smallModel()
{
    MachineConfig c;
    c.name = "small";
    c.rob_entries = 2;
    c.ifu.icache_bytes = 1024;
    c.lsu.dcache_bytes = 16 * 1024;
    c.lsu.mshr_entries = 1;
    c.write_cache.lines = 2;
    c.prefetch.num_buffers = 2;
    return c;
}

MachineConfig
baselineModel()
{
    MachineConfig c;
    c.name = "baseline";
    c.rob_entries = 6;
    c.ifu.icache_bytes = 2048;
    c.lsu.dcache_bytes = 32 * 1024;
    c.lsu.mshr_entries = 2;
    c.write_cache.lines = 4;
    c.prefetch.num_buffers = 4;
    return c;
}

MachineConfig
largeModel()
{
    MachineConfig c;
    c.name = "large";
    c.rob_entries = 8;
    c.ifu.icache_bytes = 4096;
    c.lsu.dcache_bytes = 64 * 1024;
    c.lsu.mshr_entries = 4;
    c.write_cache.lines = 8;
    c.prefetch.num_buffers = 8;
    return c;
}

MachineConfig
recommendedModel()
{
    MachineConfig c = baselineModel();
    c.name = "recommended";
    c.ifu.icache_bytes = 4096;
    c.lsu.mshr_entries = 4;
    return c;
}

std::vector<MachineConfig>
studyModels()
{
    return {smallModel(), baselineModel(), largeModel()};
}

} // namespace aurora::core
