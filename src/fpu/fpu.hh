/**
 * @file
 * The decoupled floating point unit (§3).
 *
 * The IPU transfers floating point instructions into a small
 * instruction queue and keeps running ("slip"); the FPU issues from
 * the head of that queue under one of three policies (§5.8), executes
 * in four functional units, arbitrates two result busses, and retires
 * through its own reorder buffer. FP load data arrives through a load
 * queue filled by the LSU; FP store data leaves through a store queue
 * once the producing operation completes. The IPU stalls only when a
 * queue it must write is full — that is the decoupling the paper's
 * §5.9 sizes.
 */

#ifndef AURORA_FPU_FPU_HH
#define AURORA_FPU_FPU_HH

#include <vector>

#include "fpu_config.hh"
#include "functional_unit.hh"
#include "ipu/rob.hh"
#include "result_bus.hh"
#include "trace/inst.hh"
#include "util/bounded_queue.hh"
#include "util/stats.hh"

namespace aurora::fpu
{

/** Issue-blocking causes, tallied per cycle for analysis. */
struct FpuStats
{
    Count issued = 0;            ///< FP operations issued to units
    Count dual_cycles = 0;       ///< cycles that issued two ops
    Count blocked_operand = 0;   ///< head waits for a source register
    Count blocked_unit = 0;      ///< head waits for its unit
    Count blocked_rob = 0;       ///< reorder buffer full
    Count blocked_bus = 0;       ///< no result bus at completion
    Count loads = 0;             ///< load-queue entries accepted
    Count stores = 0;            ///< store-queue entries accepted
};

/** Cycle-level model of the Aurora III FPU chip. */
class Fpu
{
  public:
    explicit Fpu(const FpuConfig &config);

    /// @name IPU dispatch interface
    /// @{
    /** Space in the instruction queue for an arithmetic op? */
    bool canAcceptArith() const { return !instQueue_.full(); }
    /** Space in the load data queue? */
    bool canAcceptLoad() const { return !loadQueue_.full(); }
    /** Space in the store data queue? */
    bool canAcceptStore() const { return !storeQueue_.full(); }

    /** Transfer an FP arithmetic instruction into the queue. */
    void dispatchArith(const trace::Inst &inst, Cycle now);

    /**
     * Register an FP load whose data the LSU will deliver at
     * @p data_ready; the destination register becomes available then.
     */
    void dispatchLoad(RegIndex fdst, Cycle data_ready, Cycle now);

    /**
     * Register an FP store; its data leaves the store queue once the
     * producing instruction has written @p fsrc.
     */
    void dispatchStore(RegIndex fsrc, Cycle now);
    /// @}

    /** Advance one cycle: retire, drain queues, issue instructions. */
    void tick(Cycle now);

    /** Everything drained (end of simulation). */
    bool idle() const;

    /**
     * No FP arithmetic active or queued — the condition the §3.1
     * precise-exception mode waits for before transferring an
     * instruction that might fault.
     */
    bool
    quiescent() const
    {
        return instQueue_.empty() && rob_.empty();
    }

    /** When register @p reg is available (0 = ready). */
    Cycle regReadyAt(RegIndex reg) const;

    const FpuStats &stats() const { return stats_; }
    const FpuConfig &config() const { return config_; }

    /// @name Decoupling queue occupancy (watchdog diagnostics)
    /// @{
    std::size_t instQueueSize() const { return instQueue_.size(); }
    std::size_t loadQueueSize() const { return loadQueue_.size(); }
    std::size_t storeQueueSize() const { return storeQueue_.size(); }
    /** FPU reorder-buffer occupancy (telemetry sampling). */
    std::size_t robSize() const { return rob_.size(); }
    /// @}

    /// @name Functional unit access (statistics)
    /// @{
    const FunctionalUnit &addUnit() const { return add_; }
    const FunctionalUnit &mulUnit() const { return mul_; }
    const FunctionalUnit &divUnit() const { return div_; }
    const FunctionalUnit &cvtUnit() const { return cvt_; }
    /// @}

  private:
    /** A queued FP arithmetic instruction. */
    struct QueuedOp
    {
        trace::OpClass op = trace::OpClass::FpAdd;
        RegIndex fsrc_a = NO_REG;
        RegIndex fsrc_b = NO_REG;
        RegIndex fdst = NO_REG;
    };

    /** The unit executing @p op. */
    FunctionalUnit &unitFor(trace::OpClass op);

    /** Are both sources of @p qop readable at @p now? */
    bool operandsReady(const QueuedOp &qop, Cycle now) const;

    /**
     * Try to issue @p qop at @p now.
     * @param exclude_unit unit already taken this cycle (dual issue),
     *        or nullptr.
     * @retval true issued; queue entry must be popped by the caller.
     */
    bool tryIssue(const QueuedOp &qop, Cycle now,
                  const FunctionalUnit *exclude_unit);

    FpuConfig config_;
    FunctionalUnit add_;
    FunctionalUnit mul_;
    FunctionalUnit div_;
    FunctionalUnit cvt_;
    ResultBusSchedule buses_;
    ipu::ReorderBuffer rob_;

    BoundedQueue<QueuedOp> instQueue_;
    BoundedQueue<Cycle> loadQueue_;    ///< entry = data arrival cycle
    BoundedQueue<RegIndex> storeQueue_; ///< entry = data source reg

    std::vector<Cycle> fregReady_;    ///< per-register ready cycle
    const FunctionalUnit *lastUnit_ = nullptr; ///< InOrderComplete
    /**
     * Writers per register that are dispatched but not yet issued.
     * The store queue must wait for these: their completion cycle is
     * unknown until they issue, and a stale fregReady_ value would
     * let store data leave before it exists.
     */
    std::vector<std::uint16_t> pendingWriters_;
    Cycle lastCompletion_ = 0;        ///< for InOrderComplete
    FpuStats stats_;
};

} // namespace aurora::fpu

#endif // AURORA_FPU_FPU_HH
