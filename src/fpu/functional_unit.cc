#include "functional_unit.hh"

#include "util/logging.hh"

namespace aurora::fpu
{

FunctionalUnit::FunctionalUnit(const FpUnitConfig &config,
                               std::string name)
    : config_(config), name_(std::move(name))
{
    AURORA_ASSERT(config_.latency >= 1,
                  "functional unit latency must be >= 1");
}

bool
FunctionalUnit::canIssue(Cycle now) const
{
    if (config_.pipelined)
        return lastIssue_ == NEVER || lastIssue_ < now;
    return busyUntil_ <= now;
}

Cycle
FunctionalUnit::issue(Cycle now)
{
    AURORA_ASSERT(canIssue(now), "issue to busy unit ", name_);
    ++ops_;
    lastIssue_ = now;
    busyUntil_ = now + config_.latency;
    return now + config_.latency;
}

} // namespace aurora::fpu
