#include "fpu.hh"

#include "util/logging.hh"

namespace aurora::fpu
{

const char *
issuePolicyName(IssuePolicy policy)
{
    switch (policy) {
      case IssuePolicy::InOrderComplete:
        return "in-order issue & completion";
      case IssuePolicy::OutOfOrderSingle:
        return "single issue, ooo completion";
      case IssuePolicy::OutOfOrderDual:
        return "dual issue, ooo completion";
      default:
        AURORA_PANIC("invalid issue policy");
    }
}

Fpu::Fpu(const FpuConfig &config)
    : config_(config), add_(config.add, "add"), mul_(config.mul, "mul"),
      div_(config.div, "div"), cvt_(config.cvt, "cvt"),
      buses_(config.result_buses),
      rob_(config.rob_entries, /*retire_width=*/2),
      instQueue_(config.inst_queue), loadQueue_(config.load_queue),
      storeQueue_(config.store_queue), fregReady_(32, 0),
      pendingWriters_(32, 0)
{
}

FunctionalUnit &
Fpu::unitFor(trace::OpClass op)
{
    switch (op) {
      case trace::OpClass::FpAdd: return add_;
      case trace::OpClass::FpMul: return mul_;
      case trace::OpClass::FpDiv: return div_;
      case trace::OpClass::FpCvt: return cvt_;
      default:
        AURORA_PANIC("not an FP arithmetic op: ",
                     static_cast<int>(op));
    }
}

Cycle
Fpu::regReadyAt(RegIndex reg) const
{
    if (reg == NO_REG)
        return 0;
    AURORA_ASSERT(reg < 32, "FP register index out of range");
    return fregReady_[reg];
}

bool
Fpu::operandsReady(const QueuedOp &qop, Cycle now) const
{
    return regReadyAt(qop.fsrc_a) <= now &&
           regReadyAt(qop.fsrc_b) <= now;
}

void
Fpu::dispatchArith(const trace::Inst &inst, Cycle now)
{
    AURORA_ASSERT(trace::isFpArith(inst.op),
                  "dispatchArith on a non-arith op");
    AURORA_ASSERT(!instQueue_.full(), "FP instruction queue overrun");
    instQueue_.push(
        {inst.op, inst.fsrc_a, inst.fsrc_b, inst.fdst});
    // The ready *cycle* is recorded at issue, not here: issue is in
    // order, so a consumer reaching the queue head is guaranteed to
    // observe its producer's completion cycle, while marking a cycle
    // at dispatch would let a later writer of the same register
    // block an earlier reader forever (a WAR deadlock). The counter
    // below only tracks existence, for the store queue.
    if (inst.fdst != NO_REG)
        ++pendingWriters_[inst.fdst];
    (void)now;
}

void
Fpu::dispatchLoad(RegIndex fdst, Cycle data_ready, Cycle now)
{
    AURORA_ASSERT(!loadQueue_.full(), "FP load queue overrun");
    ++stats_.loads;
    loadQueue_.push(data_ready);
    if (fdst != NO_REG)
        fregReady_[fdst] = data_ready;
    (void)now;
}

void
Fpu::dispatchStore(RegIndex fsrc, Cycle now)
{
    AURORA_ASSERT(!storeQueue_.full(), "FP store queue overrun");
    ++stats_.stores;
    storeQueue_.push(fsrc);
    (void)now;
}

bool
Fpu::tryIssue(const QueuedOp &qop, Cycle now,
              const FunctionalUnit *exclude_unit)
{
    if (!operandsReady(qop, now)) {
        ++stats_.blocked_operand;
        return false;
    }
    FunctionalUnit &unit = unitFor(qop.op);
    if (&unit == exclude_unit || !unit.canIssue(now)) {
        ++stats_.blocked_unit;
        return false;
    }
    if (rob_.full()) {
        ++stats_.blocked_rob;
        return false;
    }
    const Cycle completion = now + unit.config().latency;
    if (!buses_.canReserve(completion)) {
        ++stats_.blocked_bus;
        return false;
    }
    unit.issue(now);
    buses_.reserve(completion);
    rob_.allocate(completion);
    if (qop.fdst != NO_REG) {
        fregReady_[qop.fdst] = completion;
        AURORA_ASSERT(pendingWriters_[qop.fdst] > 0,
                      "pending-writer underflow");
        --pendingWriters_[qop.fdst];
    }
    lastCompletion_ = completion > lastCompletion_ ? completion
                                                   : lastCompletion_;
    ++stats_.issued;
    return true;
}

void
Fpu::tick(Cycle now)
{
    buses_.advance(now);
    rob_.retire(now);

    // Load queue entries free once their data has been written to
    // the register file.
    while (!loadQueue_.empty() && loadQueue_.front() <= now)
        loadQueue_.pop();

    // The store queue drains one entry per cycle once the producing
    // operation has delivered the data (§2.3: "write cache eviction
    // and data cache writeback must wait for the data").
    if (!storeQueue_.empty()) {
        const RegIndex src = storeQueue_.front();
        if (src == NO_REG ||
            (pendingWriters_[src] == 0 && fregReady_[src] <= now))
            storeQueue_.pop();
    }

    if (instQueue_.empty())
        return;

    switch (config_.policy) {
      case IssuePolicy::InOrderComplete: {
        // §5.8: no instructions active in *multiple* functional
        // units — successive operations may overlap only inside one
        // pipelined unit (where completion order is preserved).
        FunctionalUnit &unit = unitFor(instQueue_.front().op);
        const bool same_unit_stream =
            &unit == lastUnit_ && unit.config().pipelined;
        if (now < lastCompletion_ && !same_unit_stream)
            break;
        if (tryIssue(instQueue_.front(), now, nullptr)) {
            lastUnit_ = &unit;
            instQueue_.pop();
        }
        break;
      }
      case IssuePolicy::OutOfOrderSingle: {
        if (tryIssue(instQueue_.front(), now, nullptr))
            instQueue_.pop();
        break;
      }
      case IssuePolicy::OutOfOrderDual: {
        if (!tryIssue(instQueue_.front(), now, nullptr))
            break;
        const QueuedOp head = instQueue_.pop();
        if (instQueue_.empty())
            break;
        // §5.8: dual issue is limited by data dependencies, reorder
        // buffer stalls, busy units, result bus conflicts, and fewer
        // than two queued entries.
        const QueuedOp &second = instQueue_.front();
        const bool raw = head.fdst != NO_REG &&
                         (second.fsrc_a == head.fdst ||
                          second.fsrc_b == head.fdst);
        if (raw)
            break;
        if (tryIssue(second, now, &unitFor(head.op))) {
            instQueue_.pop();
            ++stats_.dual_cycles;
        }
        break;
      }
    }
}

bool
Fpu::idle() const
{
    return instQueue_.empty() && loadQueue_.empty() &&
           storeQueue_.empty() && rob_.empty();
}

} // namespace aurora::fpu
