#include "result_bus.hh"

#include "util/logging.hh"

namespace aurora::fpu
{

ResultBusSchedule::ResultBusSchedule(unsigned buses)
    : buses_(buses)
{
    // buses == 0 is a representable (if useless) machine: canReserve
    // never holds, so no FP operation ever completes. The config
    // layer permits it as the canonical liveness wedge the forward-
    // progress watchdog detects at run time.
}

void
ResultBusSchedule::advance(Cycle now)
{
    // Clear every slot that fell out of the past.
    while (horizon_ < now) {
        counts_[horizon_ % WINDOW] = 0;
        ++horizon_;
    }
}

bool
ResultBusSchedule::canReserve(Cycle when) const
{
    AURORA_ASSERT(when >= horizon_, "reservation in the past");
    AURORA_ASSERT(when < horizon_ + WINDOW,
                  "reservation beyond the scheduling window");
    return counts_[when % WINDOW] < buses_;
}

void
ResultBusSchedule::reserve(Cycle when)
{
    AURORA_ASSERT(canReserve(when), "result bus overcommitted");
    ++counts_[when % WINDOW];
}

} // namespace aurora::fpu
