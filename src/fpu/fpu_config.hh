/**
 * @file
 * Floating point unit configuration (§3, §5.7-§5.11).
 *
 * Every FPU knob the paper sweeps is here: the decoupling queue
 * depths, reorder buffer size, issue policy, result bus count, and
 * per-functional-unit latency/pipelining (Figure 9 varies add/mul/cvt
 * over 1-5 cycles, divide over 10-30, and ablates pipelining).
 */

#ifndef AURORA_FPU_FPU_CONFIG_HH
#define AURORA_FPU_FPU_CONFIG_HH

#include "util/types.hh"

namespace aurora::fpu
{

/** FP instruction issue policies of §5.8. */
enum class IssuePolicy
{
    /** In-order issue, in-order completion: one instruction active. */
    InOrderComplete,
    /** In-order issue, out-of-order completion, one per cycle. */
    OutOfOrderSingle,
    /** In-order issue, out-of-order completion, up to two per cycle. */
    OutOfOrderDual,
};

/** Short display name of a policy. */
const char *issuePolicyName(IssuePolicy policy);

/** One functional unit's implementation choice. */
struct FpUnitConfig
{
    /** Result latency in cycles. */
    Cycle latency = 3;
    /** Pipelined (new op every cycle) vs. iterative (busy). */
    bool pipelined = true;
};

/** Complete FPU configuration; defaults are §5.11's recommendation. */
struct FpuConfig
{
    IssuePolicy policy = IssuePolicy::OutOfOrderDual;
    /** Decoupling instruction queue entries (Fig 9a; rec: 5). */
    unsigned inst_queue = 5;
    /** Load data queue entries (Fig 9b; rec: 2). */
    unsigned load_queue = 2;
    /** Store/move-to-IPU result queue entries. */
    unsigned store_queue = 3;
    /** FPU reorder buffer entries (Fig 9c; rec: 6). */
    unsigned rob_entries = 6;
    /** Result busses shared by the functional units (rec: 2). */
    unsigned result_buses = 2;
    /** Add unit: pipelined, 3 cycles (rec). */
    FpUnitConfig add{3, true};
    /**
     * Multiply unit: 5 cycles, pipelined in the base simulations;
     * §5.10 ablates pipelining (the iterative small-array multiplier)
     * at a < 5% performance cost.
     */
    FpUnitConfig mul{5, true};
    /** Divide unit: SRT, iterative, 19 cycles (rec). */
    FpUnitConfig div{19, false};
    /** Conversion unit: pipelined, 2 cycles. */
    FpUnitConfig cvt{2, true};

    /**
     * §3.1 precise exception mode: an FP instruction that cannot be
     * proven exception-free (by examining operand exponents and the
     * exception flags) is not transferred to the FPU until every
     * older FP instruction has completed. Off = the higher
     * performance imprecise mode the study uses.
     */
    bool precise_exceptions = false;
    /**
     * Fraction of FP operations the exponent-examination hardware
     * can prove safe (they transfer without draining the FPU).
     */
    double provably_safe_frac = 0.70;
};

} // namespace aurora::fpu

#endif // AURORA_FPU_FPU_CONFIG_HH
