/**
 * @file
 * FPU functional unit timing model.
 *
 * A pipelined unit accepts one operation per cycle; an iterative unit
 * (the area-reduced multiply and the SRT divider of §5.10) is busy for
 * its full latency. Both produce a result after `latency` cycles that
 * must win a result bus slot.
 */

#ifndef AURORA_FPU_FUNCTIONAL_UNIT_HH
#define AURORA_FPU_FUNCTIONAL_UNIT_HH

#include <string>

#include "fpu_config.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace aurora::fpu
{

/** Timing model of one FP execution unit. */
class FunctionalUnit
{
  public:
    FunctionalUnit(const FpUnitConfig &config, std::string name);

    /** Can an operation start at @p now? */
    bool canIssue(Cycle now) const;

    /**
     * Start an operation at @p now (canIssue must hold).
     * @return completion cycle.
     */
    Cycle issue(Cycle now);

    /** Operations executed. */
    Count ops() const { return ops_; }

    const std::string &name() const { return name_; }
    const FpUnitConfig &config() const { return config_; }

  private:
    FpUnitConfig config_;
    std::string name_;
    Cycle busyUntil_ = 0;  ///< iterative units: next free cycle
    Cycle lastIssue_ = NEVER; ///< pipelined units: initiation interval
    Count ops_ = 0;
};

} // namespace aurora::fpu

#endif // AURORA_FPU_FUNCTIONAL_UNIT_HH
