/**
 * @file
 * Result bus scheduler.
 *
 * The FPU writes functional-unit results to the reorder buffer over a
 * small number of shared result busses (two in the recommended
 * configuration). An instruction may only issue if a bus slot is free
 * at its completion cycle; conflicts are one of the dual-issue
 * constraints listed in §5.8.
 */

#ifndef AURORA_FPU_RESULT_BUS_HH
#define AURORA_FPU_RESULT_BUS_HH

#include <array>
#include <cstdint>

#include "util/types.hh"

namespace aurora::fpu
{

/** Sliding-window reservation table for the result busses. */
class ResultBusSchedule
{
  public:
    /** Longest schedulable distance into the future, cycles. */
    static constexpr std::size_t WINDOW = 256;

    explicit ResultBusSchedule(unsigned buses);

    /** Release reservations for cycles before @p now. */
    void advance(Cycle now);

    /** Is a bus free at cycle @p when? */
    bool canReserve(Cycle when) const;

    /** Claim a bus at cycle @p when (canReserve must hold). */
    void reserve(Cycle when);

    unsigned buses() const { return buses_; }

  private:
    unsigned buses_;
    std::array<std::uint8_t, WINDOW> counts_{};
    Cycle horizon_ = 0; ///< slots below horizon_ are cleared
};

} // namespace aurora::fpu

#endif // AURORA_FPU_RESULT_BUS_HH
