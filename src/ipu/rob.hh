/**
 * @file
 * Reorder buffer (§2.1, Smith & Pleszkun [13]).
 *
 * Instructions allocate an entry in program order at issue and retire
 * in order once complete. The buffer decouples completion from
 * retirement so cache misses behind a completed instruction do not
 * block it, and it bounds the number of instructions in flight —
 * "Reorder Buffer full" is one of the four Figure 6 stall categories.
 */

#ifndef AURORA_IPU_ROB_HH
#define AURORA_IPU_ROB_HH

#include "util/bounded_queue.hh"
#include "util/types.hh"

namespace aurora::ipu
{

/** In-order allocate / in-order retire completion tracker. */
class ReorderBuffer
{
  public:
    /**
     * @param entries     capacity (Table 1: 2 / 6 / 8).
     * @param retire_width maximum retirements per cycle.
     */
    ReorderBuffer(unsigned entries, unsigned retire_width);

    /** Free slots available this cycle. */
    std::size_t space() const { return slots_.space(); }

    bool full() const { return slots_.full(); }
    bool empty() const { return slots_.empty(); }
    std::size_t size() const { return slots_.size(); }
    unsigned capacity() const
    {
        return static_cast<unsigned>(slots_.capacity());
    }

    /**
     * Allocate the next entry for an instruction completing at
     * @p completes_at. Caller must check !full() first.
     */
    void allocate(Cycle completes_at);

    /**
     * Retire completed instructions in order, at most retire_width
     * per call. @return number retired.
     */
    unsigned retire(Cycle now);

    /** Instructions retired in total. */
    Count retired() const { return retired_; }

  private:
    BoundedQueue<Cycle> slots_;
    unsigned retireWidth_;
    Count retired_ = 0;
};

} // namespace aurora::ipu

#endif // AURORA_IPU_ROB_HH
