#include "rob.hh"

#include "util/logging.hh"

namespace aurora::ipu
{

ReorderBuffer::ReorderBuffer(unsigned entries, unsigned retire_width)
    : slots_(entries), retireWidth_(retire_width)
{
    AURORA_ASSERT(retire_width > 0, "retire width must be positive");
}

void
ReorderBuffer::allocate(Cycle completes_at)
{
    AURORA_ASSERT(!slots_.full(), "ROB allocate when full");
    slots_.push(completes_at);
}

unsigned
ReorderBuffer::retire(Cycle now)
{
    unsigned n = 0;
    while (n < retireWidth_ && !slots_.empty() &&
           slots_.front() <= now) {
        slots_.pop();
        ++n;
        ++retired_;
    }
    return n;
}

} // namespace aurora::ipu
