/**
 * @file
 * Register-file scoreboard (§2.1, after Thornton's CDC 6600 [15]).
 *
 * Tracks, per architectural register, the cycle at which its value
 * becomes available to a dependent instruction and whether the pending
 * writer is a load. Forwarding paths from the ALU outputs and the
 * reorder buffer are folded into the ready cycles: an ALU result
 * produced at cycle t can feed an instruction issuing at t+1, so ALU
 * writers never stall the scoreboard in practice — loads (and only
 * loads) do, which is exactly the "Load stall" category of Figure 6.
 */

#ifndef AURORA_IPU_SCOREBOARD_HH
#define AURORA_IPU_SCOREBOARD_HH

#include <array>

#include "util/types.hh"

namespace aurora::ipu
{

/** Per-register ready-cycle tracker with load tagging. */
class Scoreboard
{
  public:
    Scoreboard();

    /**
     * Is @p reg available to an instruction issuing at @p now?
     * Register 0 (MIPS $zero) and NO_REG are always ready.
     */
    bool ready(RegIndex reg, Cycle now) const;

    /** Is the pending writer of @p reg a load instruction? */
    bool pendingLoad(RegIndex reg, Cycle now) const;

    /**
     * Record a new writer of @p reg whose value is usable from cycle
     * @p ready_at; @p is_load tags load writers for stall accounting.
     */
    void setWriter(RegIndex reg, Cycle ready_at, bool is_load);

    /** Ready cycle of @p reg (0 when no pending writer). */
    Cycle readyAt(RegIndex reg) const;

    /** Clear all pending writers. */
    void reset();

  private:
    struct EntryState
    {
        Cycle ready = 0;
        bool is_load = false;
    };

    std::array<EntryState, 32> regs_;
};

} // namespace aurora::ipu

#endif // AURORA_IPU_SCOREBOARD_HH
