/**
 * @file
 * Load-Store Unit (§2.3).
 *
 * All memory operations flow through the LSU: the IEU generates the
 * address and hands it over together with a reorder-buffer tag. The
 * external direct-mapped data cache is pipelined with a three-cycle
 * hit latency and single-cycle initiation. Misses allocate Miss
 * Status Holding Registers; an MSHR is reserved for *every* memory
 * instruction active in the LSU pipeline (hits included), so a single
 * MSHR serializes all memory operations — the blocking-cache effect
 * of Figure 7. Stores are write-through into the coalescing write
 * cache; load misses probe the stream buffers before going to the
 * BIU, and returned lines occupy the cache data busses while filling
 * ("LSU busy" stalls in Figure 6).
 */

#ifndef AURORA_IPU_LSU_HH
#define AURORA_IPU_LSU_HH

#include <deque>

#include "mem/biu.hh"
#include "mem/cache.hh"
#include "mem/mshr.hh"
#include "mem/stream_buffer.hh"
#include "mem/victim_cache.hh"
#include "mem/write_cache.hh"
#include "util/types.hh"

namespace aurora::ipu
{

/** LSU and external data cache parameters. */
struct LsuConfig
{
    /** External data cache capacity (Table 1: 16/32/64 KB). */
    std::uint32_t dcache_bytes = 32 * 1024;
    /** Cache line size. */
    std::uint32_t line_bytes = 32;
    /** Pipelined data cache hit latency. */
    Cycle dcache_latency = 3;
    /** Miss status holding registers (Table 1: 1/2/4). */
    unsigned mshr_entries = 2;
    /** Cycles a returning line holds the cache data busses. */
    Cycle fill_port_cycles = 2;
    /** MSHR hold time for a store (write-cache insertion). */
    Cycle store_occupancy = 1;
    /**
     * Victim cache entries behind the data cache (0 disables; the
     * Aurora III shipped stream buffers instead — DESIGN.md §6
     * ablation).
     */
    unsigned victim_lines = 0;
    /** Extra cycles for the victim-cache swap on a hit. */
    Cycle victim_swap_cycles = 1;
};

/** The load/store unit with its external data cache. */
class Lsu
{
  public:
    Lsu(const LsuConfig &config,
        const mem::WriteCacheConfig &wc_config, mem::Biu &biu,
        mem::PrefetchUnit &prefetch);

    /**
     * Per-cycle housekeeping: retire completed MSHRs and apply cache
     * fills (which block the data busses for fill_port_cycles).
     */
    void tick(Cycle now);

    /**
     * Can a new memory operation start this cycle? Requires a free
     * MSHR and an idle cache port.
     */
    bool canAccept(Cycle now) const;

    /** Is the port blocked by a line fill right now? */
    bool portBusy(Cycle now) const { return now < portBusyUntil_; }

    /**
     * Start a load. Caller must have checked canAccept().
     * @return cycle the data is available to dependent instructions.
     */
    Cycle load(Addr addr, unsigned size, Cycle now);

    /** Start a store. Caller must have checked canAccept(). */
    void store(Addr addr, unsigned size, Cycle now);

    /** Flush the write cache (end of simulation). */
    void drain(Cycle now);

    /// @name Component access (statistics)
    /// @{
    const mem::DirectMappedCache &dcache() const { return dcache_; }
    const mem::WriteCache &writeCache() const { return writeCache_; }
    const mem::MshrFile &mshrs() const { return mshrs_; }
    const mem::VictimCache &victims() const { return victims_; }
    /// @}

    const LsuConfig &config() const { return config_; }

  private:
    struct PendingFill
    {
        Cycle ready = 0;
        Addr line = 0;
    };

    LsuConfig config_;
    mem::Biu &biu_;
    mem::PrefetchUnit &prefetch_;
    mem::DirectMappedCache dcache_;
    mem::WriteCache writeCache_;
    mem::MshrFile mshrs_;
    mem::VictimCache victims_;
    std::deque<PendingFill> fills_;
    Cycle portBusyUntil_ = 0;
};

} // namespace aurora::ipu

#endif // AURORA_IPU_LSU_HH
