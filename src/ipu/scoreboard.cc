#include "scoreboard.hh"

#include "util/logging.hh"

namespace aurora::ipu
{

Scoreboard::Scoreboard()
{
    reset();
}

bool
Scoreboard::ready(RegIndex reg, Cycle now) const
{
    if (reg == NO_REG || reg == 0)
        return true;
    AURORA_ASSERT(reg < 32, "register index out of range");
    return regs_[reg].ready <= now;
}

bool
Scoreboard::pendingLoad(RegIndex reg, Cycle now) const
{
    if (reg == NO_REG || reg == 0)
        return false;
    AURORA_ASSERT(reg < 32, "register index out of range");
    return regs_[reg].ready > now && regs_[reg].is_load;
}

void
Scoreboard::setWriter(RegIndex reg, Cycle ready_at, bool is_load)
{
    if (reg == NO_REG || reg == 0)
        return;
    AURORA_ASSERT(reg < 32, "register index out of range");
    regs_[reg] = {ready_at, is_load};
}

Cycle
Scoreboard::readyAt(RegIndex reg) const
{
    if (reg == NO_REG || reg == 0)
        return 0;
    AURORA_ASSERT(reg < 32, "register index out of range");
    return regs_[reg].ready;
}

void
Scoreboard::reset()
{
    regs_.fill(EntryState{});
}

} // namespace aurora::ipu
