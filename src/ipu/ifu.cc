#include "ifu.hh"

#include "util/logging.hh"

namespace aurora::ipu
{

Ifu::Ifu(const IfuConfig &config, trace::TraceSource &source,
         mem::PrefetchUnit &prefetch)
    : config_(config), source_(source), prefetch_(prefetch),
      icache_(config.icache_bytes, config.line_bytes),
      buffer_(config.buffer_entries)
{
    AURORA_ASSERT(config_.fetch_width >= 1 && config_.fetch_width <= 2,
                  "fetch width must be 1 or 2");
    pump();
}

void
Ifu::pump()
{
    if (done_ || haveNext_)
        return;
    if (source_.next(nextInst_)) {
        haveNext_ = true;
        ++fetchedFromSource_;
    } else {
        done_ = true;
    }
}

void
Ifu::tick(Cycle now)
{
    if (now < resumeAt_)
        return;
    missStall_ = false;

    unsigned fetched = 0;
    Addr first_pair = 0;
    Addr looked_up_line = 1; // sentinel: no line looked up yet

    while (fetched < config_.fetch_width) {
        pump();
        if (!haveNext_ || buffer_.full())
            return;

        const trace::Inst &inst = nextInst_;

        // Pair constraint: the second instruction of a fetch group
        // must be the ODD mate of the first (aligned 8-byte pair).
        if (fetched == 1) {
            const bool odd_mate = (inst.pc >> 3) == first_pair &&
                                  (inst.pc & 0x4u) != 0;
            if (!odd_mate)
                return;
        }

        // Instruction cache lookup, once per line per group.
        const Addr line = inst.pc & ~static_cast<Addr>(
                                        config_.line_bytes - 1);
        if (line != looked_up_line) {
            if (!icache_.access(inst.pc)) {
                const auto res = prefetch_.missLookup(
                    inst.pc, now, /*is_instruction=*/true);
                icache_.fill(inst.pc);
                resumeAt_ = res.ready;
                missStall_ = true;
                return;
            }
            looked_up_line = line;
        }

        if (fetched == 0)
            first_pair = inst.pc >> 3;

        const bool redirect = inst.redirectsFetch();
        buffer_.push(inst);
        haveNext_ = false;
        ++fetched;

        if (redirect) {
            // Fetch the architectural delay slot with the branch,
            // then redirect. Folding (the NEXT field) makes the
            // redirect free; otherwise it costs one fetch cycle.
            pump();
            if (haveNext_ && !buffer_.full()) {
                const bool mate =
                    (nextInst_.pc >> 3) == first_pair &&
                    (nextInst_.pc & 0x4u) != 0;
                // The delay slot may be the branch's pair mate and
                // co-fetched; if it lies in the next pair it costs
                // the next fetch slot, modelled by ending the group.
                if (fetched < config_.fetch_width && mate) {
                    buffer_.push(nextInst_);
                    haveNext_ = false;
                    ++fetched;
                }
            }
            if (!config_.branch_folding)
                resumeAt_ = now + 2;
            return;
        }
    }
}

} // namespace aurora::ipu
