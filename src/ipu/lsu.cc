#include "lsu.hh"

#include "util/logging.hh"

namespace aurora::ipu
{

Lsu::Lsu(const LsuConfig &config,
         const mem::WriteCacheConfig &wc_config, mem::Biu &biu,
         mem::PrefetchUnit &prefetch)
    : config_(config), biu_(biu), prefetch_(prefetch),
      dcache_(config.dcache_bytes, config.line_bytes),
      writeCache_(wc_config, biu), mshrs_(config.mshr_entries),
      victims_(config.victim_lines, config.line_bytes)
{
    AURORA_ASSERT(config_.dcache_latency >= 1,
                  "data cache latency must be at least one cycle");
}

void
Lsu::tick(Cycle now)
{
    mshrs_.retire(now);
    while (!fills_.empty() && fills_.front().ready <= now) {
        if (const auto evicted = dcache_.fill(fills_.front().line))
            victims_.insert(*evicted, now);
        const Cycle busy_from =
            fills_.front().ready > now ? fills_.front().ready : now;
        const Cycle busy_until = busy_from + config_.fill_port_cycles;
        if (busy_until > portBusyUntil_)
            portBusyUntil_ = busy_until;
        fills_.pop_front();
    }
}

bool
Lsu::canAccept(Cycle now) const
{
    return !mshrs_.full() && now >= portBusyUntil_;
}

Cycle
Lsu::load(Addr addr, unsigned size, Cycle now)
{
    AURORA_ASSERT(canAccept(now), "load issued while LSU busy");
    const Addr line = dcache_.lineAddr(addr);

    const bool wc_hit = writeCache_.loadProbe(addr, size);
    const bool dc_hit = dcache_.access(addr);

    Cycle ready;
    if (dc_hit || wc_hit) {
        ready = now + config_.dcache_latency;
    } else if (const auto *inflight = mshrs_.find(line)) {
        // Secondary miss: the line is already on its way; piggyback.
        mshrs_.noteCoalesced();
        ready = inflight->ready > now + config_.dcache_latency
                    ? inflight->ready
                    : now + config_.dcache_latency;
    } else if (victims_.probe(line, now)) {
        // Conflict miss caught by the victim cache: swap the line
        // back on chip without a BIU transaction.
        if (const auto evicted = dcache_.fill(line))
            victims_.insert(*evicted, now);
        ready = now + config_.dcache_latency +
                config_.victim_swap_cycles;
    } else {
        const auto res =
            prefetch_.missLookup(addr, now, /*is_instruction=*/false);
        ready = res.ready > now + config_.dcache_latency
                    ? res.ready
                    : now + config_.dcache_latency;
        fills_.push_back({res.ready, line});
    }
    mshrs_.allocate(line, ready);
    return ready;
}

void
Lsu::store(Addr addr, unsigned size, Cycle now)
{
    AURORA_ASSERT(canAccept(now), "store issued while LSU busy");
    // Write-through with write-allocate: the write cache owns the
    // off-chip traffic, so the allocation itself is charged there;
    // the data cache just starts tracking the line.
    if (!dcache_.access(addr)) {
        if (const auto evicted = dcache_.fill(addr))
            victims_.insert(*evicted, now);
    }
    writeCache_.store(addr, size, now);
    mshrs_.allocate(dcache_.lineAddr(addr),
                    now + config_.store_occupancy);
}

void
Lsu::drain(Cycle now)
{
    writeCache_.drain(now);
    // In-flight fills past the last cycle (store occupancy tails,
    // end-of-trace loads) are released here so the allocation ledger
    // balances: every MSHR allocated is eventually released.
    mshrs_.drainAll();
}

} // namespace aurora::ipu
