/**
 * @file
 * Instruction Fetch Unit with the pre-decoded instruction cache (§2).
 *
 * The IFU walks the dynamic instruction stream, modelling the on-chip
 * instruction cache and the Figure 3 predecode machinery:
 *
 *  - instructions are grouped into aligned EVEN/ODD pairs; at most one
 *    pair is fetched per cycle, and a lone ODD instruction (e.g. a
 *    branch target at an odd slot) fills only one issue slot;
 *  - with branch folding enabled the NEXT field supplies the target's
 *    cache index, so taken control transfers cost no fetch bubble;
 *    with folding disabled each taken transfer costs one cycle;
 *  - I-cache misses stall fetching (the "front of the IEU pipeline"
 *    stalls) while the LSU and reorder buffer continue; missing lines
 *    are looked up in the shared prefetch stream buffers before a
 *    demand fetch is issued.
 */

#ifndef AURORA_IPU_IFU_HH
#define AURORA_IPU_IFU_HH

#include "mem/biu.hh"
#include "mem/cache.hh"
#include "mem/stream_buffer.hh"
#include "trace/trace_source.hh"
#include "util/bounded_queue.hh"
#include "util/types.hh"

namespace aurora::ipu
{

/** Front-end configuration. */
struct IfuConfig
{
    /** On-chip I-cache capacity (Table 1: 1/2/4 KB). */
    std::uint32_t icache_bytes = 2048;
    /** Cache line size. */
    std::uint32_t line_bytes = 32;
    /** Instructions fetched per cycle (the pair width). */
    unsigned fetch_width = 2;
    /** Branch folding via the predecoded NEXT field (Figure 3). */
    bool branch_folding = true;
    /**
     * Fetch buffer entries between fetch and issue. Two pairs: the
     * machine issues almost directly from the decoded cache, so a
     * taken-branch fetch bubble (folding disabled) is visible to the
     * issue stage rather than absorbed by a deep buffer.
     */
    unsigned buffer_entries = 4;
};

/** Front end: fetch from the trace through the I-cache model. */
class Ifu
{
  public:
    Ifu(const IfuConfig &config, trace::TraceSource &source,
        mem::PrefetchUnit &prefetch);

    /** Fetch up to fetch_width instructions into the buffer. */
    void tick(Cycle now);

    /// @name Issue-stage interface
    /// @{
    bool empty() const { return buffer_.empty(); }
    std::size_t available() const { return buffer_.size(); }
    /** Instruction at buffer position @p idx (0 = next to issue). */
    const trace::Inst &peek(std::size_t idx) const
    {
        return buffer_.at(idx);
    }
    /** Consume the next instruction. */
    trace::Inst pop() { return buffer_.pop(); }
    /// @}

    /** Is fetch currently stalled on an I-cache miss? */
    bool missStalled(Cycle now) const
    {
        return missStall_ && now < resumeAt_;
    }

    /** True when the trace ended and the buffer has drained. */
    bool exhausted() const { return done_ && buffer_.empty(); }

    /**
     * Instructions delivered by the trace source so far — the trace
     * length once exhausted() holds (the auditor's reference count).
     */
    Count fetchedFromSource() const { return fetchedFromSource_; }

    /** I-cache statistics. */
    const mem::DirectMappedCache &icache() const { return icache_; }

    const IfuConfig &config() const { return config_; }

  private:
    /** Refill nextInst_ from the source. */
    void pump();

    IfuConfig config_;
    trace::TraceSource &source_;
    mem::PrefetchUnit &prefetch_;
    mem::DirectMappedCache icache_;
    BoundedQueue<trace::Inst> buffer_;

    trace::Inst nextInst_{};
    bool haveNext_ = false;
    bool done_ = false;
    Count fetchedFromSource_ = 0;

    Cycle resumeAt_ = 0;    ///< fetch blocked before this cycle
    bool missStall_ = false; ///< current block is an I-miss
};

} // namespace aurora::ipu

#endif // AURORA_IPU_IFU_HH
