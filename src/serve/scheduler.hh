/**
 * @file
 * Admission control and fair job scheduling for aurora_serve.
 *
 * The daemon multiplexes one worker pool across many tenants, so two
 * policies live here, both deterministic and both test-visible
 * without any sockets:
 *
 *  - **Admission**: a submission is admitted only if the tenant is
 *    under its grid and job quotas, the global queue has room, and
 *    the daemon is not draining. Refusals carry stable AUR2xx
 *    catalog IDs (analyze/diagnostic) so clients and CI assert on
 *    IDs, never message text.
 *
 *  - **Dispatch**: queued jobs are released one per tenant per turn
 *    of a round-robin rotor. A tenant that dumps 500 jobs cannot
 *    starve a tenant that submitted 5: after k rotor turns every
 *    active tenant has been offered k slots. The rotor advances in
 *    tenant arrival order, so dispatch order is a pure function of
 *    the submission sequence — no clocks, no randomness.
 *
 * The scheduler is a passive data structure: no threads, no locks.
 * The server serializes access under its state mutex and owns the
 * worker pool; tests drive the scheduler directly.
 */

#ifndef AURORA_SERVE_SCHEDULER_HH
#define AURORA_SERVE_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/sim_error.hh"

namespace aurora::serve
{

/** Quotas and capacity bounds enforced at admission. */
struct ServiceLimits
{
    /** Unfinished grids one tenant may have resident (AUR201). */
    std::size_t grids_per_tenant = 8;
    /** Queued-or-running jobs one tenant may hold (AUR202). */
    std::size_t jobs_per_tenant = 4096;
    /** Global bound on queued-or-running jobs (AUR203) — the
     *  backpressure valve that keeps the daemon's memory and the
     *  spool bounded under overload. */
    std::size_t total_jobs = 16384;
    /** Jobs in a single submission (AUR205 when exceeded). */
    std::size_t jobs_per_grid = 2048;
};

/** One dispatchable unit: a job index within a registered grid. */
struct SchedUnit
{
    std::uint64_t fingerprint = 0;
    std::size_t job_index = 0;
};

/** A structured admission refusal (maps to a Rejected message). */
struct AdmitRejection
{
    /** Stable AUR2xx catalog ID. */
    std::string id;
    util::SimErrorCode code = util::SimErrorCode::Overloaded;
    std::string message;
};

/**
 * Tenant bookkeeping + round-robin dispatch rotor. All counters are
 * maintained by the caller through admit()/enqueue()/take()/
 * jobFinished()/gridFinished(); the scheduler never learns what a job
 * *is* — only who owns it.
 */
class Scheduler
{
  public:
    explicit Scheduler(ServiceLimits limits = {});

    const ServiceLimits &limits() const { return limits_; }

    /**
     * Would a @p grid_jobs -job submission from @p tenant be admitted
     * right now? Returns the refusal (first matching rule in fixed
     * order: draining, grid size, tenant grid quota, tenant job
     * quota, global capacity) or std::nullopt when admissible. Pure —
     * call admitGrid() to actually account the admission.
     */
    std::optional<AdmitRejection>
    admit(const std::string &tenant, std::size_t grid_jobs) const;

    /**
     * Account an admitted (or resumed) grid against @p tenant:
     * one resident grid plus @p pending_jobs queued jobs. Used for
     * both fresh submissions and spool-resumed grids.
     */
    void admitGrid(const std::string &tenant, std::size_t pending_jobs);

    /** Queue one job of @p tenant's grid for dispatch. */
    void enqueue(const std::string &tenant, const SchedUnit &unit);

    /** Any queued unit ready for dispatch? */
    bool hasWork() const { return queued_ > 0; }

    /**
     * Pop the next unit, advancing the tenant rotor one turn. The
     * rotor offers each tenant with queued work one unit per cycle,
     * in tenant arrival order. std::nullopt when nothing is queued.
     */
    std::optional<SchedUnit> take();

    /**
     * Remove every queued unit of @p fingerprint (cancellation),
     * returning the removed units in queue order. Running jobs are
     * the caller's problem — the scheduler no longer holds them.
     */
    std::vector<SchedUnit> dropQueued(const std::string &tenant,
                                      std::uint64_t fingerprint);

    /** A dispatched or dropped job reached a terminal state: release
     *  its slot in the tenant and global job counts. */
    void jobFinished(const std::string &tenant);

    /** A grid reached a terminal state: release its residency slot. */
    void gridFinished(const std::string &tenant);

    /** Refuse all new submissions from now on (AUR204). */
    void beginDrain() { draining_ = true; }
    bool draining() const { return draining_; }

    /** Jobs queued but not yet dispatched. */
    std::size_t queuedJobs() const { return queued_; }

    /** Queued-or-running jobs charged to @p tenant (0 if unknown). */
    std::size_t tenantJobs(const std::string &tenant) const;

    /** Resident unfinished grids of @p tenant (0 if unknown). */
    std::size_t tenantGrids(const std::string &tenant) const;

  private:
    struct Tenant
    {
        std::deque<SchedUnit> queue;
        /** Queued + running jobs (admission accounting). */
        std::size_t jobs = 0;
        /** Resident unfinished grids. */
        std::size_t grids = 0;
        /** Present in the rotor? (set iff queue non-empty). */
        bool in_rotor = false;
    };

    ServiceLimits limits_;
    std::map<std::string, Tenant> tenants_;
    /** Round-robin rotor over tenants with queued work. */
    std::deque<std::string> rotor_;
    /** Total queued (not yet dispatched) units. */
    std::size_t queued_ = 0;
    /** Total queued + running jobs (global capacity accounting). */
    std::size_t total_jobs_ = 0;
    bool draining_ = false;
};

} // namespace aurora::serve

#endif // AURORA_SERVE_SCHEDULER_HH
