#include "scheduler.hh"

#include "analyze/diagnostic.hh"
#include "util/logging.hh"

namespace aurora::serve
{

namespace
{

/** Build a refusal from its catalog entry + concrete numbers. */
AdmitRejection
refusal(const char *id, util::SimErrorCode code, std::string detail)
{
    const analyze::DiagnosticInfo *info = analyze::findDiagnostic(id);
    AURORA_ASSERT(info != nullptr, "admission refusal ", id,
                  " is not in the diagnostic catalog");
    AdmitRejection r;
    r.id = id;
    r.code = code;
    r.message =
        detail::concat(info->title, ": ", std::move(detail),
                       " (hint: ", info->hint, ")");
    return r;
}

} // namespace

Scheduler::Scheduler(ServiceLimits limits) : limits_(limits)
{
    AURORA_ASSERT(limits_.grids_per_tenant > 0 &&
                      limits_.jobs_per_tenant > 0 &&
                      limits_.total_jobs > 0 &&
                      limits_.jobs_per_grid > 0,
                  "service limits must all be positive");
}

std::optional<AdmitRejection>
Scheduler::admit(const std::string &tenant, std::size_t grid_jobs) const
{
    if (draining_)
        return refusal("AUR204", util::SimErrorCode::Overloaded,
                       detail::concat("daemon is draining; tenant '",
                                      tenant,
                                      "' must resubmit after restart"));
    if (grid_jobs == 0)
        return refusal("AUR205", util::SimErrorCode::BadConfig,
                       "submission contains no jobs");
    if (grid_jobs > limits_.jobs_per_grid)
        return refusal(
            "AUR205", util::SimErrorCode::BadConfig,
            detail::concat("submission has ", grid_jobs,
                           " jobs; the per-grid cap is ",
                           limits_.jobs_per_grid));
    const auto it = tenants_.find(tenant);
    const std::size_t grids = it == tenants_.end() ? 0 : it->second.grids;
    const std::size_t jobs = it == tenants_.end() ? 0 : it->second.jobs;
    if (grids >= limits_.grids_per_tenant)
        return refusal(
            "AUR201", util::SimErrorCode::Overloaded,
            detail::concat("tenant '", tenant, "' already has ", grids,
                           " of ", limits_.grids_per_tenant,
                           " resident grids"));
    if (jobs + grid_jobs > limits_.jobs_per_tenant)
        return refusal(
            "AUR202", util::SimErrorCode::Overloaded,
            detail::concat("tenant '", tenant, "' holds ", jobs,
                           " jobs and asked for ", grid_jobs,
                           " more; the quota is ",
                           limits_.jobs_per_tenant));
    if (total_jobs_ + grid_jobs > limits_.total_jobs)
        return refusal(
            "AUR203", util::SimErrorCode::Overloaded,
            detail::concat("service holds ", total_jobs_,
                           " jobs and the submission adds ", grid_jobs,
                           "; the global cap is ", limits_.total_jobs));
    return std::nullopt;
}

void
Scheduler::admitGrid(const std::string &tenant, std::size_t pending_jobs)
{
    Tenant &t = tenants_[tenant];
    t.grids += 1;
    t.jobs += pending_jobs;
    total_jobs_ += pending_jobs;
}

void
Scheduler::enqueue(const std::string &tenant, const SchedUnit &unit)
{
    Tenant &t = tenants_[tenant];
    t.queue.push_back(unit);
    ++queued_;
    if (!t.in_rotor) {
        t.in_rotor = true;
        rotor_.push_back(tenant);
    }
}

std::optional<SchedUnit>
Scheduler::take()
{
    while (!rotor_.empty()) {
        const std::string tenant = rotor_.front();
        rotor_.pop_front();
        Tenant &t = tenants_[tenant];
        if (t.queue.empty()) {
            t.in_rotor = false;
            continue;
        }
        const SchedUnit unit = t.queue.front();
        t.queue.pop_front();
        --queued_;
        if (t.queue.empty())
            t.in_rotor = false;
        else
            rotor_.push_back(tenant);
        return unit;
    }
    return std::nullopt;
}

std::vector<SchedUnit>
Scheduler::dropQueued(const std::string &tenant,
                      std::uint64_t fingerprint)
{
    std::vector<SchedUnit> dropped;
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        return dropped;
    std::deque<SchedUnit> kept;
    for (const SchedUnit &unit : it->second.queue) {
        if (unit.fingerprint == fingerprint)
            dropped.push_back(unit);
        else
            kept.push_back(unit);
    }
    it->second.queue.swap(kept);
    queued_ -= dropped.size();
    // in_rotor stays set: the rotor entry is still physically present
    // and take() retires it (clearing the flag) when it comes around
    // to the now-empty queue. Clearing it here would let a later
    // enqueue() add a duplicate rotor entry — two turns per cycle.
    return dropped;
}

void
Scheduler::jobFinished(const std::string &tenant)
{
    const auto it = tenants_.find(tenant);
    AURORA_ASSERT(it != tenants_.end() && it->second.jobs > 0,
                  "job released for tenant '", tenant,
                  "' with no jobs charged");
    it->second.jobs -= 1;
    AURORA_ASSERT(total_jobs_ > 0, "global job count underflow");
    total_jobs_ -= 1;
}

void
Scheduler::gridFinished(const std::string &tenant)
{
    const auto it = tenants_.find(tenant);
    AURORA_ASSERT(it != tenants_.end() && it->second.grids > 0,
                  "grid released for tenant '", tenant,
                  "' with no grids charged");
    it->second.grids -= 1;
}

std::size_t
Scheduler::tenantJobs(const std::string &tenant) const
{
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.jobs;
}

std::size_t
Scheduler::tenantGrids(const std::string &tenant) const
{
    const auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.grids;
}

} // namespace aurora::serve
