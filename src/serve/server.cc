#include "server.hh"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>
#include <utility>

#include "analyze/lint_config.hh"
#include "core/config_io.hh"
#include "core/simulator.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "harness/sweep_trace.hh"
#include "obs/ids.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "shard/swarm.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/record_io.hh"

namespace aurora::serve
{

namespace fs = std::filesystem;

namespace
{

/** Spool manifest format (one <fp>.grid record file per grid). */
constexpr std::uint32_t MANIFEST_VERSION = 1;
constexpr std::uint8_t MAN_SUBMIT = 1;
constexpr std::uint8_t MAN_CANCEL = 2;

/** The parsed content of a spool manifest. */
struct ManifestData
{
    std::uint64_t fingerprint = 0;
    std::string tenant;
    std::string label;
    bool cancel_on_disconnect = false;
    bool has_base_seed = false;
    std::uint64_t base_seed = 0;
    std::uint64_t deadline_ms = 0;
    std::uint32_t retries = 0;
    std::uint64_t backoff_ms = 0;
    std::vector<wire::SubmitJob> jobs;
    bool cancelled = false;
    /** File length past the last good record (torn-tail repair). */
    std::uint64_t valid_bytes = 0;
    bool dropped_tail = false;
};

std::string
submitRecordPayload(const ManifestData &man)
{
    util::ByteWriter w;
    w.u8(MAN_SUBMIT);
    w.u32(MANIFEST_VERSION);
    w.u64(man.fingerprint);
    w.str(man.tenant);
    w.str(man.label);
    w.u8(man.cancel_on_disconnect ? 1 : 0);
    w.u8(man.has_base_seed ? 1 : 0);
    w.u64(man.base_seed);
    w.u64(man.deadline_ms);
    w.u32(man.retries);
    w.u64(man.backoff_ms);
    w.u64(man.jobs.size());
    for (const wire::SubmitJob &job : man.jobs) {
        w.str(job.machine_spec);
        w.str(job.profile);
        w.u64(job.instructions);
    }
    return w.bytes();
}

/**
 * Parse a spool manifest. Throws SimError(BadJournal) when the
 * submission record is missing, torn, corrupt, or version-skewed —
 * such a grid was never acknowledged to a client (the manifest is
 * written before Accepted), so skipping it loses nothing durable.
 */
ManifestData
readManifest(const std::string &path)
{
    util::RecordFileReader reader(path);
    std::string payload;
    if (reader.next(payload) != util::RecordStatus::Ok)
        util::raiseError(util::SimErrorCode::BadJournal, "manifest '",
                         path, "' has no complete submission record");
    util::ByteReader rd(payload);
    if (rd.u8() != MAN_SUBMIT)
        util::raiseError(util::SimErrorCode::BadJournal, "manifest '",
                         path,
                         "' does not start with a submission record");
    const std::uint32_t version = rd.u32();
    if (version != MANIFEST_VERSION)
        util::raiseError(util::SimErrorCode::BadJournal, "manifest '",
                         path, "' is format version ", version,
                         "; this build reads version ",
                         MANIFEST_VERSION);
    ManifestData man;
    man.fingerprint = rd.u64();
    man.tenant = rd.str();
    man.label = rd.str();
    man.cancel_on_disconnect = rd.u8() != 0;
    man.has_base_seed = rd.u8() != 0;
    man.base_seed = rd.u64();
    man.deadline_ms = rd.u64();
    man.retries = rd.u32();
    man.backoff_ms = rd.u64();
    const std::uint64_t jobs = rd.u64();
    for (std::uint64_t i = 0; i < jobs; ++i) {
        wire::SubmitJob job;
        job.machine_spec = rd.str();
        job.profile = rd.str();
        job.instructions = rd.u64();
        man.jobs.push_back(std::move(job));
    }

    for (;;) {
        const util::RecordStatus status = reader.next(payload);
        if (status == util::RecordStatus::EndOfFile)
            break;
        if (status == util::RecordStatus::TruncatedTail) {
            // A kill during the cancel-marker append: the grid simply
            // stays uncancelled; repair the tail so the file appends.
            man.dropped_tail = true;
            break;
        }
        if (status == util::RecordStatus::Corrupt)
            util::raiseError(util::SimErrorCode::BadJournal,
                             "manifest '", path,
                             "' is corrupt mid-file");
        util::ByteReader mrd(payload);
        if (mrd.u8() == MAN_CANCEL)
            man.cancelled = true;
    }
    man.valid_bytes = reader.goodBytes();
    return man;
}

/**
 * Rebuild executable sweep jobs from their portable textual form.
 * parseMachineSpec() round-trips describe() exactly and
 * profileByName() returns the profile with its canonical seed, so
 * the rebuilt grid fingerprints identically to the submitted one.
 * Throws SimError(BadConfig) on an unknown model key or profile.
 */
std::vector<harness::SweepJob>
buildJobs(const std::vector<wire::SubmitJob> &specs)
{
    std::vector<harness::SweepJob> jobs;
    jobs.reserve(specs.size());
    for (const wire::SubmitJob &spec : specs) {
        harness::SweepJob job;
        job.machine = core::parseMachineSpec(spec.machine_spec);
        job.profile = trace::profileByName(spec.profile);
        job.instructions = spec.instructions != 0
                               ? spec.instructions
                               : core::DEFAULT_RUN_INSTS;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

/** Signal-handler plumbing: one server per process (asserted in
 *  installSignalHandlers); the handler only touches these. */
volatile std::sig_atomic_t *g_drain_flag = nullptr;
const util::WakePipe *g_drain_wake = nullptr;
obs::FlightRecorder *g_flight = nullptr;

extern "C" void
auroraServeDrainSignal(int)
{
    if (g_flight != nullptr)
        g_flight->dump("signal"); // async-signal-safe (write() only)
    if (g_drain_flag != nullptr)
        *g_drain_flag = 1;
    if (g_drain_wake != nullptr)
        g_drain_wake->notify();
}

/** Latency histograms: unit-width millisecond buckets; samples past
 *  the last bucket land in the overflow (percentile() then reports
 *  the max sample, which is the honest answer for a tail). */
constexpr std::size_t LATENCY_BUCKETS_MS = 512;

} // namespace

/** One resident sweep grid (all fields guarded by Server::mutex_
 *  except `cancelled`, read lock-free by workers, and `journal`,
 *  internally locked). */
struct Server::Grid
{
    enum class JobState : std::uint8_t
    {
        Pending,
        Running,
        Done,
    };

    std::uint64_t fingerprint = 0;
    std::string tenant;
    std::string label;
    std::vector<harness::SweepJob> jobs;
    std::optional<std::uint64_t> base_seed;
    std::uint64_t deadline_ms = 0;
    std::uint32_t retries = 0;
    std::uint64_t backoff_ms = 0;
    bool cancel_on_disconnect = false;

    std::vector<JobState> state;
    /** Terminal outcome per job, valid where state == Done — the
     *  attach-replay source and the bytes streamed to watchers. */
    std::vector<harness::JournalRecord> records;
    std::size_t done = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timed_out = 0;
    std::size_t cancelled_jobs = 0;
    std::size_t resumed = 0;
    /** Outcomes whose Result frame has been broadcast (or that were
     *  already terminal at load). Completions drain in batches, so
     *  `done` can reach the total while earlier Results still wait in
     *  the queue — GridDone must key off this counter, not `done`, or
     *  it would overtake the tail of the result stream. */
    std::size_t streamed = 0;
    bool done_notified = false;
    /** submit→first-Result latency recorded (once per residency). */
    bool first_result_recorded = false;
    /** MAN_CANCEL already appended to the manifest. */
    bool cancel_marked = false;
    std::atomic<bool> cancelled{false};
    std::unique_ptr<harness::JournalWriter> journal;
    WallTimer timer;
    std::size_t cadence = 1;

    /** Causal trace id: client-supplied or minted from the
     *  fingerprint, so a restarted daemon re-mints identically. */
    std::uint64_t trace_id = 0;
    /** Worker-path attempt spans (internally locked; observation
     *  only — never feeds back into outcomes). */
    harness::SweepTimeline timeline;
    /** Service + fabric spans (admission, swarm supervision, folded
     *  shard attempts); drained into the Chrome trace at completion. */
    obs::SpanLog span_log;

    bool complete() const { return done == jobs.size(); }

    std::size_t
    pendingJobs() const
    {
        return static_cast<std::size_t>(
            std::count(state.begin(), state.end(), JobState::Pending));
    }
};

Server::Server(ServerConfig config) : config_(std::move(config))
{
    AURORA_ASSERT(!config_.socket_path.empty() &&
                      !config_.spool_dir.empty(),
                  "aurora_serve needs a socket path and a spool dir");
    if (config_.shards > 0 && config_.shardd_path.empty())
        util::raiseError(util::SimErrorCode::BadConfig,
                         "the shard backend needs the aurora_shardd "
                         "binary path (--shardd) when --shards > 0");
    scheduler_ = Scheduler(config_.limits);
    fs::create_directories(config_.spool_dir);
    flight_.spoolTo(config_.spool_dir + "/serve.flight");
    flight_.note("startup", {},
                 detail::concat("shards=", config_.shards,
                                " workers=", config_.workers));
    loadSpool();
    listener_ = util::listenUnix(config_.socket_path);
}

Server::~Server()
{
    if (g_drain_flag == &signal_drain_) {
        g_drain_flag = nullptr;
        g_drain_wake = nullptr;
        g_flight = nullptr;
    }
    if (listener_.valid()) {
        listener_.reset();
        std::error_code ec;
        fs::remove(config_.socket_path, ec);
    }
}

void
Server::installSignalHandlers()
{
    AURORA_ASSERT(g_drain_flag == nullptr ||
                      g_drain_flag == &signal_drain_,
                  "only one Server per process may install signal "
                  "handlers");
    g_drain_flag = &signal_drain_;
    g_drain_wake = &wake_;
    g_flight = &flight_;
    struct sigaction sa = {};
    sa.sa_handler = auroraServeDrainSignal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
}

void
Server::requestDrain()
{
    drain_requested_.store(true);
    wake_.notify();
}

std::string
Server::spoolFile(std::uint64_t fingerprint, const char *suffix) const
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0')
       << fingerprint;
    return config_.spool_dir + "/" + os.str() + suffix;
}

std::uint64_t
Server::gridSeed(const Grid &grid, std::size_t index) const
{
    const harness::SweepJob &job = grid.jobs[index];
    const std::uint64_t mh = harness::machineHash(job.machine);
    return grid.base_seed
               ? harness::deriveJobSeed(*grid.base_seed, mh,
                                        job.profile.name)
               : job.profile.seed;
}

harness::JournalRecord
Server::cancelRecord(const Grid &grid, std::size_t index) const
{
    harness::JournalRecord rec;
    rec.job_index = index;
    rec.machine_hash =
        harness::machineHash(grid.jobs[index].machine);
    rec.seed = gridSeed(grid, index);
    rec.outcome.ok = false;
    rec.outcome.code = util::SimErrorCode::Cancelled;
    rec.outcome.error = "cancelled while queued";
    rec.outcome.attempts = 0;
    return rec;
}

void
Server::applyRecord(Grid &grid, harness::JournalRecord record,
                    bool from_journal)
{
    const std::size_t index = record.job_index;
    AURORA_ASSERT(index < grid.jobs.size() &&
                      grid.state[index] != Grid::JobState::Done,
                  "duplicate or out-of-range outcome for job ", index);
    if (from_journal) {
        record.outcome.resumed = true;
        ++grid.resumed;
    }
    if (record.outcome.ok)
        ++grid.ok;
    else if (record.outcome.code == util::SimErrorCode::Timeout)
        ++grid.timed_out;
    else if (record.outcome.code == util::SimErrorCode::Cancelled)
        ++grid.cancelled_jobs;
    else
        ++grid.failed;
    grid.state[index] = Grid::JobState::Done;
    grid.records[index] = std::move(record);
    ++grid.done;
    ++done_jobs_;
}

void
Server::loadSpool()
{
    std::vector<fs::path> manifests;
    for (const auto &entry : fs::directory_iterator(config_.spool_dir))
        if (entry.path().extension() == ".grid")
            manifests.push_back(entry.path());
    std::sort(manifests.begin(), manifests.end());

    for (const fs::path &path : manifests) {
        ManifestData man;
        try {
            man = readManifest(path.string());
        } catch (const util::SimError &e) {
            // The manifest is written (and flushed) before a client
            // ever sees Accepted, so an unreadable one was never
            // acknowledged: drop the pair, nothing durable is lost.
            warn(detail::concat("spool: dropping unusable manifest ",
                                path.string(), ": ", e.what()));
            std::error_code ec;
            fs::remove(path, ec);
            continue;
        }
        if (man.dropped_tail)
            fs::resize_file(path, man.valid_bytes);

        const auto makeGrid = [&]() -> std::unique_ptr<Grid> {
            auto g = std::make_unique<Grid>();
            g->jobs = buildJobs(man.jobs);
            g->fingerprint = man.fingerprint;
            g->tenant = man.tenant;
            g->label = man.label;
            g->base_seed = man.has_base_seed
                               ? std::optional<std::uint64_t>(
                                     man.base_seed)
                               : std::nullopt;
            g->deadline_ms = man.deadline_ms;
            g->retries = man.retries;
            g->backoff_ms = man.backoff_ms;
            g->cancel_on_disconnect = man.cancel_on_disconnect;
            g->state.resize(g->jobs.size(), Grid::JobState::Pending);
            g->records.resize(g->jobs.size());
            g->cadence =
                config_.progress_every != 0
                    ? config_.progress_every
                    : std::max<std::size_t>(1, g->jobs.size() / 4);
            // The trace id is a pure function of the fingerprint, so
            // a restarted daemon re-mints the same id and the spans
            // it emits land in the same trace as the first life's.
            g->trace_id = obs::traceIdForGrid(g->fingerprint);
            g->timeline.setTrace(g->trace_id);
            return g;
        };

        std::unique_ptr<Grid> grid;
        try {
            grid = makeGrid();
        } catch (const util::SimError &e) {
            warn(detail::concat("spool: manifest ", path.string(),
                                " references an unknown model or "
                                "profile: ",
                                e.what()));
            continue;
        }

        const std::uint64_t fp =
            harness::gridFingerprint(grid->jobs, grid->base_seed);
        if (fp != man.fingerprint) {
            warn(detail::concat(
                "spool: manifest ", path.string(),
                " fingerprint does not match its jobs; skipping"));
            continue;
        }

        const std::string journal_path = spoolFile(fp, ".ajrn");
        bool reopened = false;
        if (fs::exists(journal_path)) {
            try {
                const harness::LoadedJournal loaded =
                    harness::loadJournal(journal_path);
                if (loaded.fingerprint != fp ||
                    loaded.jobs != grid->jobs.size())
                    util::raiseError(
                        util::SimErrorCode::BadJournal, "journal '",
                        journal_path,
                        "' does not match its manifest");
                if (loaded.dropped_tail)
                    fs::resize_file(journal_path,
                                    loaded.valid_bytes);
                for (const harness::JournalRecord &rec :
                     loaded.records)
                    if (grid->state[rec.job_index] !=
                        Grid::JobState::Done) {
                        applyRecord(*grid, rec,
                                    /*from_journal=*/true);
                        ++resumed_jobs_;
                    }
                grid->journal =
                    std::make_unique<harness::JournalWriter>(
                        journal_path);
                reopened = true;
            } catch (const util::SimError &e) {
                // A rotted journal must not poison the grid: the
                // manifest alone fully determines the work, so warn
                // and rerun from scratch (standalone resume refuses
                // instead — it has no manifest to fall back on).
                warn(detail::concat("spool: journal ", journal_path,
                                    " unusable (", e.what(),
                                    "); rerunning grid from scratch"));
                std::error_code ec;
                fs::remove(journal_path, ec);
                // Back out any partially-applied replay accounting.
                done_jobs_ -= grid->done;
                resumed_jobs_ -= grid->resumed;
                grid = makeGrid();
            }
        }
        if (!reopened)
            grid->journal = std::make_unique<harness::JournalWriter>(
                journal_path, fp, grid->jobs.size());

        if (man.cancelled) {
            grid->cancelled.store(true);
            grid->cancel_marked = true;
            for (std::size_t i = 0; i < grid->jobs.size(); ++i)
                if (grid->state[i] == Grid::JobState::Pending) {
                    harness::JournalRecord rec = cancelRecord(*grid, i);
                    grid->journal->append(rec);
                    applyRecord(*grid, std::move(rec),
                                /*from_journal=*/false);
                }
        }

        ++resumed_grids_;
        flight_.note("grid.resume", {},
                     detail::concat("fp=", fp, " done=", grid->done,
                                    "/", grid->jobs.size()));
        // Everything terminal at load time is delivered by attach
        // replay, never by streamOutcome().
        grid->streamed = grid->done;
        if (grid->complete()) {
            grid->done_notified = true;
            ++done_grids_;
        } else {
            scheduler_.admitGrid(grid->tenant, grid->pendingJobs());
            for (std::size_t i = 0; i < grid->jobs.size(); ++i)
                if (grid->state[i] == Grid::JobState::Pending)
                    scheduler_.enqueue(grid->tenant,
                                       SchedUnit{fp, i});
        }
        if (config_.verbose)
            inform(detail::concat(
                "spool: resumed grid ", spoolFile(fp, ""), " (",
                grid->done, "/", grid->jobs.size(),
                " jobs journaled)"));
        grids_[fp] = std::move(grid);
    }
}

harness::SweepOutcome
Server::executeJob(Grid &grid, std::size_t index)
{
    harness::SweepOptions options;
    options.workers = 1;
    options.base_seed = grid.base_seed;
    options.retries = grid.retries;
    options.deadline_ms = grid.deadline_ms;
    options.backoff_ms = grid.backoff_ms;
    options.preflight = false; // linted once at admission
    options.cancel = &grid.cancelled;
    options.timeline = &grid.timeline;
    options.timeline_job_base = index;
    harness::SweepRunner runner(std::move(options));
    std::vector<harness::SweepOutcome> outcomes =
        runner.runOutcomes({grid.jobs[index]});
    return std::move(outcomes.front());
}

void
Server::workerMain()
{
    for (;;) {
        SchedUnit unit;
        Grid *grid = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return workers_stop_ || scheduler_.hasWork();
            });
            if (workers_stop_)
                return;
            const std::optional<SchedUnit> next = scheduler_.take();
            if (!next)
                continue;
            unit = *next;
            grid = grids_.at(unit.fingerprint).get();
            grid->state[unit.job_index] = Grid::JobState::Running;
            ++running_jobs_;
        }

        harness::JournalRecord rec;
        rec.job_index = unit.job_index;
        rec.machine_hash = harness::machineHash(
            grid->jobs[unit.job_index].machine);
        rec.seed = gridSeed(*grid, unit.job_index);
        rec.outcome = executeJob(*grid, unit.job_index);
        // Durable before visible: the journal append is flushed
        // before the completion is posted, so a SIGKILL landing here
        // loses nothing a client was ever told about.
        grid->journal->append(rec);

        {
            const std::lock_guard<std::mutex> lock(mutex_);
            applyRecord(*grid, std::move(rec), /*from_journal=*/false);
            scheduler_.jobFinished(grid->tenant);
            completions_.emplace_back(unit.fingerprint,
                                      unit.job_index);
            --running_jobs_;
        }
        wake_.notify();
    }
}

void
Server::shardMain()
{
    // One dispatcher thread owns one Swarm and deals whole grids to
    // the shard fleet. The Swarm is built lazily and rebuilt after an
    // unrecoverable fleet failure, so one lost fleet cannot wedge the
    // daemon.
    std::unique_ptr<shard::Swarm> swarm;
    const std::string socket = config_.spool_dir + "/swarm.sock";
    const std::string journal_dir = config_.spool_dir + "/swarm.jd";
    // Fleet counters accumulate across grids inside the Swarm; the
    // registry wants per-batch deltas, so remember the last snapshot
    // (zeroed whenever the swarm is rebuilt).
    shard::SwarmStats prev_stats;
    const auto fleet = [&]() -> shard::Swarm & {
        if (!swarm) {
            std::error_code ec;
            fs::remove(socket, ec);
            shard::SwarmConfig sc;
            sc.socket_path = socket;
            sc.journal_dir = journal_dir;
            sc.flight_dir = config_.spool_dir + "/swarm.obs";
            sc.shards = config_.shards;
            sc.spawn = shard::SpawnMode::Exec;
            sc.shardd_path = config_.shardd_path;
            if (config_.shard_lease_ms != 0)
                sc.lease_ms = config_.shard_lease_ms;
            sc.verbose = config_.verbose;
            swarm = std::make_unique<shard::Swarm>(std::move(sc));
        }
        return *swarm;
    };

    for (;;) {
        Grid *grid = nullptr;
        std::vector<std::size_t> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return workers_stop_ || scheduler_.hasWork();
            });
            if (workers_stop_)
                return;
            const std::optional<SchedUnit> next = scheduler_.take();
            if (!next)
                continue;
            grid = grids_.at(next->fingerprint).get();
            batch.push_back(next->job_index);
            // The fleet wants whole grids, so the rotor's pick also
            // claims the rest of that grid's queued jobs: fairness
            // rotates per grid instead of per job.
            for (const SchedUnit &unit : scheduler_.dropQueued(
                     grid->tenant, next->fingerprint))
                batch.push_back(unit.job_index);
            for (const std::size_t index : batch)
                grid->state[index] = Grid::JobState::Running;
            running_jobs_ += batch.size();
        }

        std::vector<harness::SweepJob> jobs;
        jobs.reserve(batch.size());
        for (const std::size_t index : batch)
            jobs.push_back(grid->jobs[index]);

        // Job seeds derive from (base_seed, machine hash, profile
        // name) — position-independent — so a sub-grid of pending
        // jobs reproduces the full grid's per-job seeds exactly.
        shard::GridOptions options;
        options.base_seed = grid->base_seed;
        options.retries = grid->retries;
        options.deadline_ms = grid->deadline_ms;
        options.backoff_ms = grid->backoff_ms;
        options.preflight = false; // linted once at admission
        options.trace_id = grid->trace_id;
        options.span_log = &grid->span_log;

        std::vector<harness::SweepOutcome> outcomes;
        try {
            outcomes = fleet().runGrid(jobs, options);
            const shard::SwarmStats now = fleet().stats();
            {
                const std::lock_guard<std::mutex> mlock(
                    metrics_mutex_);
                const auto bump = [&](const char *name,
                                      const char *desc,
                                      std::uint64_t cur,
                                      std::uint64_t before) {
                    metrics_.counter(name, desc).add(cur - before);
                };
                bump("fleet.leases_granted", "shard leases granted",
                     now.granted_leases, prev_stats.granted_leases);
                bump("fleet.lease_expiries",
                     "leases fenced for missed beats",
                     now.lease_expiries, prev_stats.lease_expiries);
                bump("fleet.shard_exits",
                     "leases fenced for dropped connections",
                     now.shard_exits, prev_stats.shard_exits);
                bump("fleet.fenced_results",
                     "stale-epoch results refused behind the fence",
                     now.fenced_results, prev_stats.fenced_results);
                bump("fleet.protocol_errors",
                     "shard protocol violations", now.protocol_errors,
                     prev_stats.protocol_errors);
                bump("fleet.migrated_jobs",
                     "tickets migrated off fenced incarnations",
                     now.migrated_jobs, prev_stats.migrated_jobs);
                bump("fleet.respawns",
                     "replacement shard workers spawned",
                     now.respawns, prev_stats.respawns);
                bump("fleet.committed",
                     "results committed exactly-once", now.committed,
                     prev_stats.committed);
                bump("fleet.resumed",
                     "outcomes replayed from the commit journal",
                     now.resumed, prev_stats.resumed);
                bump("fleet.lease_ms_total",
                     "summed lifetime of closed leases (ms)",
                     now.lease_ms_total, prev_stats.lease_ms_total);
            }
            prev_stats = now;
        } catch (const util::SimError &e) {
            // Unrecoverable fleet failure (fleet lost, merge
            // violation): the batch fails terminally — the service
            // journals outcomes after the retry budget, so every
            // journaled record is final. The next batch gets a
            // fresh fleet.
            warn(detail::concat("shard fleet failed: ", e.what()));
            flight_.note("fleet.failed", {}, e.what());
            swarm.reset();
            prev_stats = shard::SwarmStats{};
            outcomes.clear();
            outcomes.resize(batch.size());
            for (harness::SweepOutcome &out : outcomes) {
                out.ok = false;
                out.code = e.code();
                out.error = e.what();
                out.attempts = 1;
            }
        }

        // Durable before visible, batch-wise: every record is
        // journaled before any completion is posted.
        std::vector<harness::JournalRecord> records;
        records.reserve(batch.size());
        for (std::size_t k = 0; k < batch.size(); ++k) {
            harness::JournalRecord rec;
            rec.job_index = batch[k];
            rec.machine_hash =
                harness::machineHash(grid->jobs[batch[k]].machine);
            rec.seed = gridSeed(*grid, batch[k]);
            rec.outcome = std::move(outcomes[k]);
            grid->journal->append(rec);
            records.push_back(std::move(rec));
        }

        {
            const std::lock_guard<std::mutex> lock(mutex_);
            const std::size_t n = records.size();
            for (harness::JournalRecord &rec : records) {
                const std::size_t index = rec.job_index;
                applyRecord(*grid, std::move(rec),
                            /*from_journal=*/false);
                scheduler_.jobFinished(grid->tenant);
                completions_.emplace_back(grid->fingerprint, index);
            }
            running_jobs_ -= n;
        }
        wake_.notify();
    }
}

void
Server::startWorkers()
{
    if (config_.shards > 0) {
        // The shard backend replaces the in-process pool with a
        // single fleet dispatcher.
        workers_.emplace_back([this] { shardMain(); });
        return;
    }
    unsigned count = config_.workers != 0 ? config_.workers
                                          : defaultWorkers();
    count = std::max(1u, count);
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

void
Server::stopWorkers()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        workers_stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

void
Server::beginDrain()
{
    if (draining_)
        return;
    draining_ = true;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        scheduler_.beginDrain();
        workers_stop_ = true;
    }
    cv_.notify_all();
    flight_.note("drain", "AUR204", "drain requested");
    const std::string notice = wire::encode(wire::DrainingMsg{
        "daemon draining: running jobs are finishing; queued jobs "
        "are persisted in the spool and resume on restart"});
    for (const auto &session : sessions_)
        if (!session->dead())
            session->queueFrame(notice);
    if (config_.verbose)
        inform("aurora_serve: drain requested; refusing new work");
}

void
Server::run()
{
    startWorkers();
    for (;;) {
        pollCycle();
        if (draining_) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (running_jobs_ == 0 && completions_.empty())
                break;
        }
    }
    stopWorkers();
    // Push queued tail frames (final Results, GridDone, the Draining
    // notice) through full socket buffers: a bounded POLLOUT wait per
    // session, so a stalled client delays exit but cannot hang it.
    for (const auto &session : sessions_) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(500);
        while (!session->dead()) {
            if (!session->flush()) {
                session->markDead();
                break;
            }
            if (!session->wantsWrite())
                break;
            const auto left = std::chrono::duration_cast<
                                  std::chrono::milliseconds>(
                                  deadline -
                                  std::chrono::steady_clock::now())
                                  .count();
            if (left <= 0)
                break;
            pollfd pfd{session->fd(), POLLOUT, 0};
            if (::poll(&pfd, 1, static_cast<int>(left)) <= 0)
                break;
        }
    }
    sessions_.clear();
    session_count_.store(0);
    listener_.reset();
    std::error_code ec;
    fs::remove(config_.socket_path, ec);
    if (config_.verbose)
        inform("aurora_serve: drained; exiting");
}

void
Server::pollCycle()
{
    std::vector<pollfd> fds;
    fds.push_back(pollfd{wake_.readFd(), POLLIN, 0});
    const bool listening = !draining_;
    if (listening)
        fds.push_back(pollfd{listener_.get(), POLLIN, 0});
    const std::size_t base = fds.size();
    // Sessions accepted *after* this poll() have no pollfd slot; the
    // read loop below must not index past this count.
    const std::size_t polled = sessions_.size();
    for (const auto &session : sessions_) {
        short events = POLLIN;
        if (session->wantsWrite())
            events |= POLLOUT;
        fds.push_back(pollfd{session->fd(), events, 0});
    }

    const int rc = ::poll(fds.data(),
                          static_cast<nfds_t>(fds.size()), -1);
    if (rc < 0) {
        if (errno == EINTR)
            return;
        util::raiseError(util::SimErrorCode::BadWire,
                         "poll() failed in the serve loop");
    }

    if (fds[0].revents != 0)
        wake_.drain();
    if (signal_drain_ != 0 || drain_requested_.load())
        beginDrain();
    drainCompletions();
    if (listening && (fds[1].revents & POLLIN) != 0)
        acceptPending();
    for (std::size_t i = 0; i < polled; ++i) {
        Session &session = *sessions_[i];
        if (session.dead())
            continue;
        const short revents = fds[base + i].revents;
        if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0)
            readSession(session);
    }
    for (const auto &session : sessions_)
        if (!session->dead() && !session->flush())
            session->markDead();
    reapDeadSessions();
}

void
Server::acceptPending()
{
    for (;;) {
        util::Fd conn = util::acceptConn(listener_.get());
        if (!conn.valid())
            return;
        sessions_.push_back(
            std::make_unique<Session>(std::move(conn)));
        session_count_.store(sessions_.size());
    }
}

void
Server::readSession(Session &session)
{
    std::string bytes;
    const long n = util::readAvailable(session.fd(), bytes);
    if (n == 0) {
        session.markDead();
        return;
    }
    if (n < 0)
        return;
    session.decoder().feed(bytes);
    std::string payload;
    for (;;) {
        switch (session.decoder().next(payload)) {
          case wire::FrameStatus::Ok:
            handlePayload(session, payload);
            if (session.dead())
                return;
            continue;
          case wire::FrameStatus::NeedMore:
            return;
          case wire::FrameStatus::Corrupt:
            reject(session, "AUR207", util::SimErrorCode::BadWire,
                   "corrupt wire frame (bad magic, length, or CRC)",
                   /*fatal=*/true);
            return;
        }
    }
}

void
Server::handlePayload(Session &session, const std::string &payload)
{
    try {
        switch (wire::peekType(payload)) {
          case wire::MsgType::Hello:
            handleHello(session, payload);
            return;
          case wire::MsgType::Submit:
            handleSubmit(session, payload);
            return;
          case wire::MsgType::Attach:
            handleAttach(session, payload);
            return;
          case wire::MsgType::Cancel:
            handleCancel(session, payload);
            return;
          case wire::MsgType::Status:
            handleStatus(session);
            return;
          case wire::MsgType::Metrics:
            handleMetrics(session, payload);
            return;
          default:
            reject(session, "AUR207", util::SimErrorCode::BadWire,
                   detail::concat(
                       "client sent a server-side message type (",
                       wire::msgTypeName(wire::peekType(payload)),
                       ")"),
                   /*fatal=*/true);
            return;
        }
    } catch (const util::SimError &e) {
        reject(session, "AUR207", util::SimErrorCode::BadWire,
               e.what(), /*fatal=*/true);
    }
}

void
Server::handleHello(Session &session, const std::string &payload)
{
    const wire::HelloMsg hello = wire::decodeHello(payload);
    if (hello.version < wire::MIN_PROTOCOL_VERSION ||
        hello.version > wire::PROTOCOL_VERSION) {
        reject(session, "AUR207", util::SimErrorCode::BadWire,
               detail::concat("client speaks protocol version ",
                              hello.version, "; this daemon speaks ",
                              wire::MIN_PROTOCOL_VERSION, "..",
                              wire::PROTOCOL_VERSION),
               /*fatal=*/true);
        return;
    }
    if (hello.tenant.empty() || session.greeted()) {
        reject(session, "AUR207", util::SimErrorCode::BadWire,
               session.greeted() ? "duplicate Hello"
                                 : "Hello carries no tenant name",
               /*fatal=*/true);
        return;
    }
    session.setTenant(hello.tenant);
    // The negotiated version (== the client's, since ours is the
    // ceiling) gates every v2-only field sent on this session.
    session.setVersion(hello.version);
    session.queueFrame(wire::encode(
        wire::WelcomeMsg{session.version(), draining_}));
}

void
Server::handleSubmit(Session &session, const std::string &payload)
{
    if (!session.greeted()) {
        reject(session, "AUR207", util::SimErrorCode::BadWire,
               "Submit before Hello", /*fatal=*/true);
        return;
    }
    const wire::SubmitMsg msg = wire::decodeSubmit(payload);
    {
        const std::lock_guard<std::mutex> mlock(metrics_mutex_);
        metrics_.counter("serve.submits", "Submit frames received")
            .add();
    }

    std::vector<harness::SweepJob> jobs;
    try {
        jobs = buildJobs(msg.jobs);
    } catch (const util::SimError &e) {
        reject(session, "AUR205", util::SimErrorCode::BadConfig,
               e.what());
        return;
    }
    const std::optional<std::uint64_t> base_seed =
        msg.has_base_seed
            ? std::optional<std::uint64_t>(msg.base_seed)
            : std::nullopt;
    const std::uint64_t fp =
        harness::gridFingerprint(jobs, base_seed);

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (grids_.count(fp) != 0) {
            reject(session, "AUR206", util::SimErrorCode::BadConfig,
                   detail::concat(
                       "grid ", spoolFile(fp, ""),
                       " is already resident; Attach to it instead"));
            return;
        }
        const std::optional<AdmitRejection> refusal =
            scheduler_.admit(session.tenant(), jobs.size());
        if (refusal) {
            reject(session, refusal->id, refusal->code,
                   refusal->message);
            return;
        }
    }

    // PR-4 static preflight: a structurally wedged or invalid machine
    // is refused before it can burn a worker's watchdog budget.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::vector<analyze::Diagnostic> diags =
            analyze::lintConfig(jobs[i].machine);
        if (!analyze::hasErrors(diags))
            continue;
        std::string first_id;
        for (const analyze::Diagnostic &d : diags)
            if (d.severity == analyze::Severity::Error) {
                first_id = d.id;
                break;
            }
        reject(session, first_id, util::SimErrorCode::BadConfig,
               detail::concat("job ", i, " (",
                              jobs[i].machine.name,
                              ") failed preflight:\n",
                              analyze::formatDiagnostics(diags)));
        return;
    }

    auto grid = std::make_unique<Grid>();
    grid->fingerprint = fp;
    grid->tenant = session.tenant();
    grid->label = msg.label;
    grid->jobs = std::move(jobs);
    grid->base_seed = base_seed;
    grid->deadline_ms = msg.deadline_ms;
    grid->retries = msg.retries;
    grid->backoff_ms = msg.backoff_ms;
    grid->cancel_on_disconnect = msg.cancel_on_disconnect;
    grid->state.resize(grid->jobs.size(), Grid::JobState::Pending);
    grid->records.resize(grid->jobs.size());
    grid->cadence =
        config_.progress_every != 0
            ? config_.progress_every
            : std::max<std::size_t>(1, grid->jobs.size() / 4);
    // Causal trace id: the client's if it sent one, else minted from
    // the fingerprint. (A restart re-mints from the fingerprint, so a
    // client-supplied id does not survive resume — the manifest
    // format predates tracing and stays byte-stable.)
    grid->trace_id = msg.trace_id != 0 ? msg.trace_id
                                       : obs::traceIdForGrid(fp);
    grid->timeline.setTrace(grid->trace_id);

    // Durability point: manifest first (flushed), then the journal
    // header. Only after both exist is the client told Accepted —
    // so every acknowledged grid survives SIGKILL.
    try {
        ManifestData man;
        man.fingerprint = fp;
        man.tenant = grid->tenant;
        man.label = grid->label;
        man.cancel_on_disconnect = grid->cancel_on_disconnect;
        man.has_base_seed = base_seed.has_value();
        man.base_seed = base_seed.value_or(0);
        man.deadline_ms = grid->deadline_ms;
        man.retries = grid->retries;
        man.backoff_ms = grid->backoff_ms;
        man.jobs = msg.jobs;
        util::RecordFileWriter manifest(spoolFile(fp, ".grid"),
                                        /*truncate=*/true);
        manifest.append(submitRecordPayload(man));
        grid->journal = std::make_unique<harness::JournalWriter>(
            spoolFile(fp, ".ajrn"), fp, grid->jobs.size());
    } catch (const util::SimError &e) {
        reject(session, "AUR203", util::SimErrorCode::Internal,
               detail::concat("spool write failed: ", e.what()));
        return;
    }

    const std::size_t total = grid->jobs.size();
    const std::uint64_t trace = grid->trace_id;
    // The admission stage span: decode through durability point, on
    // the serve track, parented to the grid root.
    {
        obs::Span adm;
        adm.trace_id = trace;
        adm.span_id = obs::stageSpanId(trace, "admission");
        adm.parent_id = obs::rootSpanId(trace);
        adm.name = "admission";
        adm.cat = "admission";
        adm.pid = 0;
        adm.ts_us = 0.0;
        adm.dur_us = grid->timer.seconds() * 1e6;
        grid->span_log.add(std::move(adm));
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        scheduler_.admitGrid(grid->tenant, total);
        for (std::size_t i = 0; i < total; ++i)
            scheduler_.enqueue(grid->tenant, SchedUnit{fp, i});
        grids_[fp] = std::move(grid);
    }
    cv_.notify_all();
    flight_.note("grid.accept", {},
                 detail::concat("fp=", fp, " jobs=", total,
                                " tenant=", session.tenant()));

    session.watch(fp);
    session.submitted().push_back(fp);
    wire::AcceptedMsg accepted{fp, total, 0, /*attached=*/false};
    if (session.version() >= 2)
        accepted.trace_id = trace;
    session.queueFrame(wire::encode(accepted));
    if (config_.verbose)
        inform(detail::concat("aurora_serve: accepted grid ",
                              spoolFile(fp, ""), " (", total,
                              " jobs) from tenant '",
                              session.tenant(), "'"));
}

void
Server::handleAttach(Session &session, const std::string &payload)
{
    if (!session.greeted()) {
        reject(session, "AUR207", util::SimErrorCode::BadWire,
               "Attach before Hello", /*fatal=*/true);
        return;
    }
    const wire::AttachMsg msg = wire::decodeAttach(payload);
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = grids_.find(msg.fingerprint);
    if (it == grids_.end() ||
        it->second->tenant != session.tenant()) {
        reject(session, "AUR208", util::SimErrorCode::BadConfig,
               detail::concat("no grid of tenant '", session.tenant(),
                              "' has fingerprint ",
                              msg.fingerprint));
        return;
    }
    Grid &grid = *it->second;
    session.watch(grid.fingerprint);
    wire::AcceptedMsg accepted{grid.fingerprint, grid.jobs.size(),
                               grid.done, /*attached=*/true};
    if (session.version() >= 2)
        accepted.trace_id = grid.trace_id;
    session.queueFrame(wire::encode(accepted));
    // Replay every terminal outcome in job order — byte-identical to
    // what a continuously-connected client received.
    for (std::size_t i = 0; i < grid.jobs.size(); ++i)
        if (grid.state[i] == Grid::JobState::Done)
            session.queueFrame(wire::encode(wire::ResultMsg{
                grid.fingerprint,
                harness::encodeJournalRecord(grid.records[i])}));
    if (grid.complete())
        session.queueFrame(wire::encode(wire::GridDoneMsg{
            grid.fingerprint, grid.ok, grid.failed, grid.timed_out,
            grid.cancelled_jobs, grid.resumed}));
}

void
Server::handleCancel(Session &session, const std::string &payload)
{
    if (!session.greeted()) {
        reject(session, "AUR207", util::SimErrorCode::BadWire,
               "Cancel before Hello", /*fatal=*/true);
        return;
    }
    const wire::CancelMsg msg = wire::decodeCancel(payload);
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = grids_.find(msg.fingerprint);
    if (it == grids_.end() ||
        it->second->tenant != session.tenant()) {
        reject(session, "AUR208", util::SimErrorCode::BadConfig,
               detail::concat("no grid of tenant '", session.tenant(),
                              "' has fingerprint ",
                              msg.fingerprint));
        return;
    }
    Grid &grid = *it->second;
    const std::size_t before = grid.cancelled_jobs;
    if (!grid.complete())
        cancelGrid(grid);
    session.queueFrame(wire::encode(wire::CancelOkMsg{
        grid.fingerprint, grid.cancelled_jobs - before}));
}

void
Server::handleStatus(Session &session)
{
    wire::StatusReportMsg report;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        report.draining = draining_;
        report.grids = grids_.size();
        report.done_grids = done_grids_;
        report.queued_jobs = scheduler_.queuedJobs();
        report.running_jobs = running_jobs_;
        report.done_jobs = done_jobs_;
    }
    session.queueFrame(wire::encode(report));
}

void
Server::handleMetrics(Session &session, const std::string &payload)
{
    if (!session.greeted()) {
        reject(session, "AUR207", util::SimErrorCode::BadWire,
               "Metrics before Hello", /*fatal=*/true);
        return;
    }
    const wire::MetricsMsg msg = wire::decodeMetrics(payload);
    wire::MetricsReportMsg report;
    report.format = msg.format;
    report.body = renderMetrics(msg.format);
    session.queueFrame(wire::encode(report));
}

std::string
Server::renderMetrics(wire::MetricsFormat format)
{
    std::vector<obs::Gauge> gauges;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        gauges.push_back(obs::gauge(
            "serve.queued_jobs", "jobs waiting in the scheduler",
            static_cast<double>(scheduler_.queuedJobs())));
        gauges.push_back(obs::gauge(
            "serve.running_jobs", "jobs executing right now",
            static_cast<double>(running_jobs_)));
        gauges.push_back(obs::gauge(
            "serve.grids_resident", "grids resident in memory",
            static_cast<double>(grids_.size())));
        gauges.push_back(obs::gauge(
            "serve.sessions", "connected client sessions",
            static_cast<double>(session_count_.load())));
        gauges.push_back(obs::gauge("serve.draining",
                                    "1 while the daemon is draining",
                                    draining_ ? 1.0 : 0.0));
        obs::Gauge tenants_gauge;
        tenants_gauge.name = "serve.tenant_inflight";
        tenants_gauge.description =
            "admitted-but-unfinished jobs per tenant";
        tenants_gauge.label_key = "tenant";
        std::set<std::string> tenants;
        for (const auto &[fp, grid] : grids_)
            tenants.insert(grid->tenant);
        for (const std::string &tenant : tenants)
            tenants_gauge.values.push_back(obs::GaugeValue{
                tenant,
                static_cast<double>(scheduler_.tenantJobs(tenant))});
        gauges.push_back(std::move(tenants_gauge));
    }
    const std::lock_guard<std::mutex> mlock(metrics_mutex_);
    return format == wire::MetricsFormat::Json
               ? obs::renderMetricsJson(metrics_, gauges)
               : obs::renderPrometheus(metrics_, gauges);
}

void
Server::reject(Session &session, const std::string &id,
               util::SimErrorCode code, const std::string &message,
               bool fatal)
{
    {
        // metrics_mutex_ is a leaf lock, so this is safe from both
        // the locked (AUR206, admission) and unlocked (preflight,
        // protocol) reject sites.
        const std::lock_guard<std::mutex> mlock(metrics_mutex_);
        metrics_.counter(detail::concat("serve.admission.", id),
                         "rejections by AURxxx verdict")
            .add();
    }
    flight_.note("reject", id, message);
    session.queueFrame(
        wire::encode(wire::RejectedMsg{id, code, message}));
    if (fatal)
        session.markDead();
}

void
Server::drainCompletions()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    while (!completions_.empty()) {
        const auto [fp, index] = completions_.front();
        completions_.pop_front();
        const auto it = grids_.find(fp);
        AURORA_ASSERT(it != grids_.end(),
                      "completion for an unknown grid");
        streamOutcome(*it->second, index);
    }
}

/** Stream one terminal outcome to watchers; mutex_ held. */
void
Server::streamOutcome(Grid &grid, std::size_t index)
{
    ++grid.streamed;
    {
        const std::lock_guard<std::mutex> mlock(metrics_mutex_);
        metrics_
            .counter("serve.results_streamed",
                     "Result frames broadcast to watchers")
            .add();
        if (!grid.first_result_recorded) {
            // Latency is measured from this residency's Grid
            // construction: submit time for live grids, resume time
            // for spool-reloaded ones.
            grid.first_result_recorded = true;
            metrics_
                .histogram("serve.submit_to_first_result_ms",
                           "submit (or resume) to first streamed "
                           "Result, ms",
                           LATENCY_BUCKETS_MS)
                .add(static_cast<std::uint64_t>(
                    grid.timer.seconds() * 1e3));
        }
    }
    broadcast(grid.fingerprint,
              wire::encode(wire::ResultMsg{
                  grid.fingerprint,
                  harness::encodeJournalRecord(grid.records[index])}));
    if (grid.streamed % grid.cadence == 0 ||
        grid.streamed == grid.jobs.size())
        broadcast(grid.fingerprint,
                  wire::encode(wire::ProgressMsg{
                      grid.fingerprint, grid.done, grid.jobs.size(),
                      grid.ok, grid.failed, grid.timed_out,
                      grid.cancelled_jobs, grid.timer.seconds()}));
    if (grid.streamed == grid.jobs.size() && !grid.done_notified)
        gridCompleted(grid);
}

/**
 * Fold the grid's spans — the serve-side root + admission, the
 * worker-pool timeline, and everything the swarm and its shards
 * contributed via the span log — into one Chrome trace next to the
 * grid's spool pair. Diagnostics must never fail the grid, so every
 * failure path warns and returns. mutex_ held.
 */
void
Server::writeGridTrace(Grid &grid)
{
    if (grid.trace_id == 0)
        return;
    const std::uint64_t trace = grid.trace_id;
    std::vector<obs::Span> spans;

    obs::Span root;
    root.trace_id = trace;
    root.span_id = obs::rootSpanId(trace);
    root.name = grid.label.empty()
                    ? detail::concat("grid ", obs::hexId(trace))
                    : grid.label;
    root.cat = "grid";
    root.pid = 0;
    root.ts_us = 0.0;
    root.dur_us = grid.timer.seconds() * 1e6;
    spans.push_back(std::move(root));

    // Worker-pool path: one "job" span per job spanning its attempts
    // (the attempts' derived parent), then the attempts themselves.
    struct JobExtent
    {
        double start_us = 0.0;
        double end_us = 0.0;
        std::uint32_t tid = 0;
        std::string label;
    };
    std::map<std::uint64_t, JobExtent> extents;
    for (const harness::TimelineSpan &t : grid.timeline.spans()) {
        const auto [it, fresh] = extents.try_emplace(t.job);
        JobExtent &ext = it->second;
        if (fresh) {
            ext.start_us = t.start_ms * 1000.0;
            ext.end_us = t.end_ms * 1000.0;
            ext.tid = t.worker;
            ext.label = t.label;
        } else {
            ext.start_us = std::min(ext.start_us, t.start_ms * 1000.0);
            ext.end_us = std::max(ext.end_us, t.end_ms * 1000.0);
        }
    }
    for (const auto &[job, ext] : extents) {
        obs::Span js;
        js.trace_id = trace;
        js.span_id = obs::jobSpanId(trace, job);
        js.parent_id = obs::rootSpanId(trace);
        js.name = ext.label;
        js.cat = "job";
        js.pid = 0;
        js.tid = ext.tid;
        js.ts_us = ext.start_us;
        js.dur_us = ext.end_us - ext.start_us;
        js.job = job;
        js.has_job = true;
        spans.push_back(std::move(js));
    }
    const std::vector<obs::Span> attempts = obs::spansFromTimeline(
        grid.timeline, trace, /*pid=*/0, /*epoch=*/0);
    spans.insert(spans.end(), attempts.begin(), attempts.end());

    // Service + fabric spans (admission; on the shard backend the
    // swarm/lease/dispatch/merge spans and folded shard attempts).
    const std::vector<obs::Span> logged = grid.span_log.spans();
    spans.insert(spans.end(), logged.begin(), logged.end());

    std::vector<obs::ProcessName> processes;
    std::set<std::uint32_t> pids;
    for (const obs::Span &s : spans)
        pids.insert(s.pid);
    for (const std::uint32_t pid : pids) {
        if (pid == 0)
            processes.push_back({pid, "aurora_serve"});
        else if (pid == 1)
            processes.push_back({pid, "swarm coordinator"});
        else
            processes.push_back(
                {pid, detail::concat("aurora_shardd e", pid - 100)});
    }

    const std::string path =
        spoolFile(grid.fingerprint, ".trace.json");
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        warn(detail::concat("cannot write grid trace ", path));
        return;
    }
    obs::writeChromeTrace(os, spans, processes);
    os.flush();
    if (!os.good()) {
        warn(detail::concat("short write on grid trace ", path));
        return;
    }
    flight_.note("trace.write", {}, path);
    if (config_.verbose)
        inform(detail::concat("aurora_serve: wrote trace ", path,
                              " (", spans.size(), " spans)"));
}

/** Grid reached its terminal state; mutex_ held. */
void
Server::gridCompleted(Grid &grid)
{
    grid.done_notified = true;
    scheduler_.gridFinished(grid.tenant);
    ++done_grids_;
    {
        const std::lock_guard<std::mutex> mlock(metrics_mutex_);
        metrics_
            .counter("serve.grids_done",
                     "grids run to their terminal state")
            .add();
        metrics_
            .histogram("serve.submit_to_grid_done_ms",
                       "submit (or resume) to GridDone, ms",
                       LATENCY_BUCKETS_MS)
            .add(static_cast<std::uint64_t>(grid.timer.seconds() *
                                            1e3));
    }
    flight_.note("grid.done", {},
                 detail::concat("fp=", grid.fingerprint, " ok=",
                                grid.ok, " failed=", grid.failed,
                                " timeout=", grid.timed_out,
                                " cancelled=", grid.cancelled_jobs));
    writeGridTrace(grid);
    broadcast(grid.fingerprint,
              wire::encode(wire::GridDoneMsg{
                  grid.fingerprint, grid.ok, grid.failed,
                  grid.timed_out, grid.cancelled_jobs,
                  grid.resumed}));
    if (config_.verbose)
        inform(detail::concat(
            "aurora_serve: grid ", spoolFile(grid.fingerprint, ""),
            " done (", grid.ok, " ok / ", grid.failed, " failed / ",
            grid.timed_out, " timed out / ", grid.cancelled_jobs,
            " cancelled)"));
}

/** Cancel a grid's queued work; mutex_ held, grid incomplete. */
void
Server::cancelGrid(Grid &grid)
{
    grid.cancelled.store(true);
    markCancelManifest(grid);
    const std::vector<SchedUnit> dropped =
        scheduler_.dropQueued(grid.tenant, grid.fingerprint);
    for (const SchedUnit &unit : dropped)
        finalizeCancelledUnit(grid, unit.job_index);
    // Running jobs finish on their workers (the cancel flag stops
    // further retries); the grid completes when they land.
}

/** Finalize one never-dispatched job as Cancelled; mutex_ held. */
void
Server::finalizeCancelledUnit(Grid &grid, std::size_t job_index)
{
    harness::JournalRecord rec = cancelRecord(grid, job_index);
    grid.journal->append(rec);
    applyRecord(grid, std::move(rec), /*from_journal=*/false);
    scheduler_.jobFinished(grid.tenant);
    streamOutcome(grid, job_index);
}

void
Server::markCancelManifest(Grid &grid)
{
    if (grid.cancel_marked)
        return;
    util::RecordFileWriter manifest(
        spoolFile(grid.fingerprint, ".grid"), /*truncate=*/false);
    util::ByteWriter w;
    w.u8(MAN_CANCEL);
    manifest.append(w.bytes());
    grid.cancel_marked = true;
}

void
Server::broadcast(std::uint64_t fingerprint,
                  const std::string &payload)
{
    for (const auto &session : sessions_)
        if (!session->dead() && session->isWatching(fingerprint))
            session->queueFrame(payload);
}

void
Server::reapDeadSessions()
{
    for (const auto &session : sessions_)
        if (session->dead()) {
            session->flush(); // best-effort final Rejected/Draining
            sessionClosed(*session);
        }
    sessions_.erase(
        std::remove_if(sessions_.begin(), sessions_.end(),
                       [](const std::unique_ptr<Session> &s) {
                           return s->dead();
                       }),
        sessions_.end());
    session_count_.store(sessions_.size());
}

/**
 * Disconnect policy: grids this session *submitted* with
 * cancel_on_disconnect are cancelled; everything else — other
 * tenants' grids, this tenant's orphan-detached grids — is
 * untouched.
 */
void
Server::sessionClosed(Session &session)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::uint64_t fp : session.submitted()) {
        const auto it = grids_.find(fp);
        if (it == grids_.end())
            continue;
        Grid &grid = *it->second;
        if (grid.cancel_on_disconnect && !grid.complete() &&
            !grid.cancelled.load())
            cancelGrid(grid);
    }
}

ServerStats
Server::stats()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ServerStats s;
    s.grids = grids_.size();
    s.done_grids = done_grids_;
    s.queued_jobs = scheduler_.queuedJobs();
    s.running_jobs = running_jobs_;
    s.done_jobs = done_jobs_;
    s.sessions = session_count_.load();
    s.draining = draining_;
    return s;
}

} // namespace aurora::serve
