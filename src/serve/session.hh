/**
 * @file
 * One client connection of aurora_serve: socket + frame decoder +
 * buffered outbound frames.
 *
 * Sessions are owned by the server's poll loop and touched by no
 * other thread. A session is transport state only — tenant identity,
 * which grids it watches, and disconnect policy; all sweep state
 * lives in the server's grid table, so a session dying never
 * perturbs a grid beyond its own disconnect policy.
 */

#ifndef AURORA_SERVE_SESSION_HH
#define AURORA_SERVE_SESSION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/socket.hh"
#include "wire.hh"

namespace aurora::serve
{

class Session
{
  public:
    explicit Session(util::Fd fd);

    int fd() const { return fd_.get(); }

    /** Inbound: raw socket bytes → framed payloads. */
    wire::FrameDecoder &decoder() { return decoder_; }

    /** Queue one payload for asynchronous delivery. */
    void queueFrame(const std::string &payload);

    /**
     * Push buffered bytes to the socket (non-blocking). Returns false
     * when the peer is gone; true otherwise. wantsWrite() tells the
     * poll loop whether POLLOUT should stay armed.
     */
    bool flush();

    bool wantsWrite() const { return out_pos_ < out_.size(); }

    /** Tenant from the Hello handshake; empty until greeted. */
    const std::string &tenant() const { return tenant_; }
    void setTenant(std::string tenant) { tenant_ = std::move(tenant); }
    bool greeted() const { return !tenant_.empty(); }

    /** Negotiated protocol version (min of ours and the Hello's);
     *  v2-only fields are sent to this session iff >= 2. */
    std::uint32_t version() const { return version_; }
    void setVersion(std::uint32_t v) { version_ = v; }

    /** Grids whose Results/Progress stream to this session. */
    std::vector<std::uint64_t> &watching() { return watching_; }
    /** Grids submitted on this connection (disconnect-policy scope:
     *  cancel_on_disconnect applies only to a grid's submitter). */
    std::vector<std::uint64_t> &submitted() { return submitted_; }

    void watch(std::uint64_t fingerprint);
    bool isWatching(std::uint64_t fingerprint) const;

    /** Marked for teardown at the end of the current poll cycle. */
    bool dead() const { return dead_; }
    void markDead() { dead_ = true; }

  private:
    util::Fd fd_;
    wire::FrameDecoder decoder_;
    std::string out_;
    std::size_t out_pos_ = 0;
    std::string tenant_;
    std::uint32_t version_ = wire::MIN_PROTOCOL_VERSION;
    std::vector<std::uint64_t> watching_;
    std::vector<std::uint64_t> submitted_;
    bool dead_ = false;
};

} // namespace aurora::serve

#endif // AURORA_SERVE_SESSION_HH
