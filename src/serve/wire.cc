#include "wire.hh"

#include "util/logging.hh"

namespace aurora::serve::wire
{

namespace
{

using util::ByteReader;
using util::ByteWriter;

constexpr std::uint8_t MAX_ERROR_CODE =
    static_cast<std::uint8_t>(util::SimErrorCode::BadWire);

/** Begin a payload and emit the type byte. */
ByteWriter
begin(MsgType type)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(type));
    return w;
}

/** Open a payload for decoding: check the type byte. */
ByteReader
open(const std::string &payload, MsgType want)
{
    ByteReader rd(payload);
    const std::uint8_t got = rd.u8();
    if (got != static_cast<std::uint8_t>(want))
        util::raiseError(util::SimErrorCode::BadWire, "expected a ",
                         msgTypeName(want),
                         " message, got type byte ",
                         static_cast<unsigned>(got));
    return rd;
}

/** Close a decode: the payload must be fully consumed. */
void
close(const ByteReader &rd, MsgType type)
{
    if (!rd.exhausted())
        util::raiseError(util::SimErrorCode::BadWire,
                         "trailing bytes after a ", msgTypeName(type),
                         " message (format mismatch)");
}

} // namespace

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::Hello: return "Hello";
      case MsgType::Submit: return "Submit";
      case MsgType::Attach: return "Attach";
      case MsgType::Cancel: return "Cancel";
      case MsgType::Status: return "Status";
      case MsgType::Metrics: return "Metrics";
      case MsgType::Welcome: return "Welcome";
      case MsgType::Accepted: return "Accepted";
      case MsgType::Rejected: return "Rejected";
      case MsgType::Progress: return "Progress";
      case MsgType::Result: return "Result";
      case MsgType::GridDone: return "GridDone";
      case MsgType::StatusReport: return "StatusReport";
      case MsgType::CancelOk: return "CancelOk";
      case MsgType::Draining: return "Draining";
      case MsgType::MetricsReport: return "MetricsReport";
    }
    return "?";
}

MsgType
peekType(const std::string &payload)
{
    if (payload.empty())
        util::raiseError(util::SimErrorCode::BadWire,
                         "empty wire payload");
    const auto raw = static_cast<std::uint8_t>(payload[0]);
    const auto type = static_cast<MsgType>(raw);
    switch (type) {
      case MsgType::Hello:
      case MsgType::Submit:
      case MsgType::Attach:
      case MsgType::Cancel:
      case MsgType::Status:
      case MsgType::Metrics:
      case MsgType::Welcome:
      case MsgType::Accepted:
      case MsgType::Rejected:
      case MsgType::Progress:
      case MsgType::Result:
      case MsgType::GridDone:
      case MsgType::StatusReport:
      case MsgType::CancelOk:
      case MsgType::Draining:
      case MsgType::MetricsReport:
        return type;
    }
    util::raiseError(util::SimErrorCode::BadWire,
                     "unknown wire message type ",
                     static_cast<unsigned>(raw));
}

std::string
frame(const std::string &payload)
{
    return util::frame(WIRE_MAGIC, payload);
}

void
sendFrame(int fd, const std::string &payload)
{
    util::sendFrame(fd, WIRE_MAGIC, payload);
}

std::optional<std::string>
recvFrame(int fd, FrameDecoder &decoder, std::uint64_t timeout_ms)
{
    return util::recvFrame(fd, decoder, timeout_ms);
}

std::string
encode(const HelloMsg &m)
{
    ByteWriter w = begin(MsgType::Hello);
    w.u32(m.version);
    w.str(m.tenant);
    return w.bytes();
}

HelloMsg
decodeHello(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Hello);
    HelloMsg m;
    m.version = rd.u32();
    m.tenant = rd.str();
    close(rd, MsgType::Hello);
    return m;
}

std::string
encode(const SubmitMsg &m)
{
    ByteWriter w = begin(MsgType::Submit);
    w.str(m.label);
    w.u8(m.cancel_on_disconnect ? 1 : 0);
    w.u8(m.has_base_seed ? 1 : 0);
    w.u64(m.base_seed);
    w.u64(m.deadline_ms);
    w.u32(m.retries);
    w.u64(m.backoff_ms);
    w.u64(m.jobs.size());
    for (const SubmitJob &job : m.jobs) {
        w.str(job.machine_spec);
        w.str(job.profile);
        w.u64(job.instructions);
    }
    // v2 optional trailing field: absent bytes decode as 0, and a
    // frame without it is exactly a v1 frame.
    if (m.trace_id != 0)
        w.u64(m.trace_id);
    return w.bytes();
}

SubmitMsg
decodeSubmit(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Submit);
    SubmitMsg m;
    m.label = rd.str();
    m.cancel_on_disconnect = rd.u8() != 0;
    m.has_base_seed = rd.u8() != 0;
    m.base_seed = rd.u64();
    m.deadline_ms = rd.u64();
    m.retries = rd.u32();
    m.backoff_ms = rd.u64();
    const std::uint64_t jobs = rd.u64();
    // Cap before allocating: a hostile count must not reserve
    // gigabytes (the CRC is not a secret, so a crafted frame passes
    // it). Each encoded job takes at least two 4-byte string lengths
    // plus a u64, so a count the payload cannot hold is a lie.
    constexpr std::uint64_t MIN_JOB_BYTES = 4 + 4 + 8;
    if (jobs > payload.size() / MIN_JOB_BYTES)
        util::raiseError(util::SimErrorCode::BadWire,
                         "implausible submission job count ", jobs);
    m.jobs.reserve(jobs);
    for (std::uint64_t i = 0; i < jobs; ++i) {
        SubmitJob job;
        job.machine_spec = rd.str();
        job.profile = rd.str();
        job.instructions = rd.u64();
        m.jobs.push_back(std::move(job));
    }
    if (!rd.exhausted())
        m.trace_id = rd.u64();
    close(rd, MsgType::Submit);
    return m;
}

std::string
encode(const AttachMsg &m)
{
    ByteWriter w = begin(MsgType::Attach);
    w.u64(m.fingerprint);
    return w.bytes();
}

AttachMsg
decodeAttach(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Attach);
    AttachMsg m;
    m.fingerprint = rd.u64();
    close(rd, MsgType::Attach);
    return m;
}

std::string
encode(const CancelMsg &m)
{
    ByteWriter w = begin(MsgType::Cancel);
    w.u64(m.fingerprint);
    return w.bytes();
}

CancelMsg
decodeCancel(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Cancel);
    CancelMsg m;
    m.fingerprint = rd.u64();
    close(rd, MsgType::Cancel);
    return m;
}

std::string
encode(const StatusMsg &)
{
    return begin(MsgType::Status).bytes();
}

StatusMsg
decodeStatus(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Status);
    close(rd, MsgType::Status);
    return StatusMsg{};
}

std::string
encode(const WelcomeMsg &m)
{
    ByteWriter w = begin(MsgType::Welcome);
    w.u32(m.version);
    w.u8(m.draining ? 1 : 0);
    return w.bytes();
}

WelcomeMsg
decodeWelcome(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Welcome);
    WelcomeMsg m;
    m.version = rd.u32();
    m.draining = rd.u8() != 0;
    close(rd, MsgType::Welcome);
    return m;
}

std::string
encode(const AcceptedMsg &m)
{
    ByteWriter w = begin(MsgType::Accepted);
    w.u64(m.fingerprint);
    w.u64(m.jobs);
    w.u64(m.done);
    w.u8(m.attached ? 1 : 0);
    if (m.trace_id != 0)
        w.u64(m.trace_id);
    return w.bytes();
}

AcceptedMsg
decodeAccepted(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Accepted);
    AcceptedMsg m;
    m.fingerprint = rd.u64();
    m.jobs = rd.u64();
    m.done = rd.u64();
    m.attached = rd.u8() != 0;
    if (!rd.exhausted())
        m.trace_id = rd.u64();
    close(rd, MsgType::Accepted);
    return m;
}

std::string
encode(const RejectedMsg &m)
{
    ByteWriter w = begin(MsgType::Rejected);
    w.str(m.id);
    w.u8(static_cast<std::uint8_t>(m.code));
    w.str(m.message);
    return w.bytes();
}

RejectedMsg
decodeRejected(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Rejected);
    RejectedMsg m;
    m.id = rd.str();
    const std::uint8_t code = rd.u8();
    if (code > MAX_ERROR_CODE)
        util::raiseError(util::SimErrorCode::BadWire,
                         "rejection error code ",
                         static_cast<unsigned>(code),
                         " is out of range");
    m.code = static_cast<util::SimErrorCode>(code);
    m.message = rd.str();
    close(rd, MsgType::Rejected);
    return m;
}

std::string
encode(const ProgressMsg &m)
{
    ByteWriter w = begin(MsgType::Progress);
    w.u64(m.fingerprint);
    w.u64(m.done);
    w.u64(m.total);
    w.u64(m.ok);
    w.u64(m.failed);
    w.u64(m.timed_out);
    w.u64(m.cancelled);
    w.f64(m.elapsed_seconds);
    return w.bytes();
}

ProgressMsg
decodeProgress(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Progress);
    ProgressMsg m;
    m.fingerprint = rd.u64();
    m.done = rd.u64();
    m.total = rd.u64();
    m.ok = rd.u64();
    m.failed = rd.u64();
    m.timed_out = rd.u64();
    m.cancelled = rd.u64();
    m.elapsed_seconds = rd.f64();
    close(rd, MsgType::Progress);
    return m;
}

std::string
encode(const ResultMsg &m)
{
    ByteWriter w = begin(MsgType::Result);
    w.u64(m.fingerprint);
    w.str(m.record);
    return w.bytes();
}

ResultMsg
decodeResult(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Result);
    ResultMsg m;
    m.fingerprint = rd.u64();
    m.record = rd.str();
    close(rd, MsgType::Result);
    return m;
}

std::string
encode(const GridDoneMsg &m)
{
    ByteWriter w = begin(MsgType::GridDone);
    w.u64(m.fingerprint);
    w.u64(m.ok);
    w.u64(m.failed);
    w.u64(m.timed_out);
    w.u64(m.cancelled);
    w.u64(m.resumed);
    return w.bytes();
}

GridDoneMsg
decodeGridDone(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::GridDone);
    GridDoneMsg m;
    m.fingerprint = rd.u64();
    m.ok = rd.u64();
    m.failed = rd.u64();
    m.timed_out = rd.u64();
    m.cancelled = rd.u64();
    m.resumed = rd.u64();
    close(rd, MsgType::GridDone);
    return m;
}

std::string
encode(const StatusReportMsg &m)
{
    ByteWriter w = begin(MsgType::StatusReport);
    w.u8(m.draining ? 1 : 0);
    w.u64(m.grids);
    w.u64(m.done_grids);
    w.u64(m.queued_jobs);
    w.u64(m.running_jobs);
    w.u64(m.done_jobs);
    return w.bytes();
}

StatusReportMsg
decodeStatusReport(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::StatusReport);
    StatusReportMsg m;
    m.draining = rd.u8() != 0;
    m.grids = rd.u64();
    m.done_grids = rd.u64();
    m.queued_jobs = rd.u64();
    m.running_jobs = rd.u64();
    m.done_jobs = rd.u64();
    close(rd, MsgType::StatusReport);
    return m;
}

std::string
encode(const CancelOkMsg &m)
{
    ByteWriter w = begin(MsgType::CancelOk);
    w.u64(m.fingerprint);
    w.u64(m.cancelled_jobs);
    return w.bytes();
}

CancelOkMsg
decodeCancelOk(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::CancelOk);
    CancelOkMsg m;
    m.fingerprint = rd.u64();
    m.cancelled_jobs = rd.u64();
    close(rd, MsgType::CancelOk);
    return m;
}

std::string
encode(const DrainingMsg &m)
{
    ByteWriter w = begin(MsgType::Draining);
    w.str(m.reason);
    return w.bytes();
}

DrainingMsg
decodeDraining(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Draining);
    DrainingMsg m;
    m.reason = rd.str();
    close(rd, MsgType::Draining);
    return m;
}

namespace
{

MetricsFormat
checkedFormat(std::uint8_t raw, MsgType type)
{
    if (raw > static_cast<std::uint8_t>(MetricsFormat::Json))
        util::raiseError(util::SimErrorCode::BadWire,
                         "unknown metrics format ",
                         static_cast<unsigned>(raw), " in a ",
                         msgTypeName(type), " message");
    return static_cast<MetricsFormat>(raw);
}

} // namespace

std::string
encode(const MetricsMsg &m)
{
    ByteWriter w = begin(MsgType::Metrics);
    w.u8(static_cast<std::uint8_t>(m.format));
    return w.bytes();
}

MetricsMsg
decodeMetrics(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Metrics);
    MetricsMsg m;
    m.format = checkedFormat(rd.u8(), MsgType::Metrics);
    close(rd, MsgType::Metrics);
    return m;
}

std::string
encode(const MetricsReportMsg &m)
{
    ByteWriter w = begin(MsgType::MetricsReport);
    w.u8(static_cast<std::uint8_t>(m.format));
    w.str(m.body);
    return w.bytes();
}

MetricsReportMsg
decodeMetricsReport(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::MetricsReport);
    MetricsReportMsg m;
    m.format = checkedFormat(rd.u8(), MsgType::MetricsReport);
    m.body = rd.str();
    close(rd, MsgType::MetricsReport);
    return m;
}

} // namespace aurora::serve::wire
