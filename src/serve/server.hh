/**
 * @file
 * The aurora_serve daemon: a crash-recoverable, multi-tenant sweep
 * service over a local socket.
 *
 * One resident process owns one worker pool and multiplexes it across
 * every tenant's sweep grids. Architecture: a single poll() thread
 * owns the listener, all client sessions, and all protocol state;
 * N worker threads pull (grid, job) units from the fair Scheduler and
 * execute each through a per-job SweepRunner — so seed derivation,
 * retry/backoff, and deadline semantics are *literally* the library's,
 * and a grid run through the service is bit-identical to the same
 * grid run by a standalone SweepRunner.
 *
 * Durability contract (the tentpole): every accepted grid is
 * persisted in the spool directory as a manifest (the submission,
 * re-parseable via config_io round-tripping) plus a PR-3 sweep
 * journal (one flushed record per completed job, appended by the
 * worker *before* the completion becomes visible). A SIGKILLed
 * daemon therefore restarts, rescans the spool, replays journaled
 * outcomes bit-exactly, and re-queues only the missing jobs; clients
 * re-attach by grid fingerprint and replay the stream. Unlike
 * standalone resume (which re-runs failed jobs), the service journals
 * outcomes *after* its retry budget, so every journaled record —
 * success or failure — is terminal and replays on restart.
 *
 * Graceful degradation: SIGTERM (or requestDrain()) flips the daemon
 * into drain mode — new submissions are refused with AUR204, queued
 * jobs stay persisted in the spool for the next incarnation, running
 * jobs finish and are journaled, every client gets a Draining notice,
 * and run() returns so the process can exit 0.
 */

#ifndef AURORA_SERVE_SERVER_HH
#define AURORA_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/journal.hh"
#include "obs/flight.hh"
#include "scheduler.hh"
#include "session.hh"
#include "telemetry/registry.hh"
#include "util/socket.hh"

namespace aurora::serve
{

struct ServerConfig
{
    /** Unix-domain socket path clients connect to. */
    std::string socket_path;
    /** Spool directory for grid manifests + journals (created if
     *  absent). The durable half of the daemon: everything needed to
     *  resume after SIGKILL lives here, nothing else does. */
    std::string spool_dir;
    /** Worker threads. 0 = defaultWorkers() (AURORA_JOBS / cores). */
    unsigned workers = 0;
    /** Admission quotas and capacity bounds. */
    ServiceLimits limits;
    /** Progress-heartbeat cadence in completed jobs per grid.
     *  0 = automatic: max(1, jobs/4). */
    std::size_t progress_every = 0;
    /** Log lifecycle lines (accepts, drains, resumes) via inform(). */
    bool verbose = false;
    /** Horizontal-scale backend: 0 (default) executes jobs on the
     *  in-process worker pool; N > 0 replaces the pool with one
     *  dispatcher thread that deals each grid to a fleet of N
     *  `aurora_shardd` processes under lease-fenced supervision
     *  (shard::Swarm, Exec spawn mode — fork-without-exec is unsafe
     *  in this multithreaded host). Fairness then rotates per grid
     *  rather than per job, and cancellation of dealt jobs takes
     *  effect at grid boundaries. */
    unsigned shards = 0;
    /** Path to the aurora_shardd binary (required when shards > 0). */
    std::string shardd_path;
    /** Shard lease in milliseconds (0 = shard::SwarmConfig default).
     *  Must exceed the worst-case single-job wall time. */
    std::uint64_t shard_lease_ms = 0;
};

/** Locked snapshot of daemon state (Status requests, tests). */
struct ServerStats
{
    std::size_t grids = 0;
    std::size_t done_grids = 0;
    std::size_t queued_jobs = 0;
    std::size_t running_jobs = 0;
    std::size_t done_jobs = 0;
    std::size_t sessions = 0;
    bool draining = false;
};

class Server
{
  public:
    /**
     * Bind the socket, create the spool directory, and resume every
     * grid found in the spool (journaled outcomes replay bit-exactly;
     * missing jobs re-queue). After construction the socket exists
     * and clients may connect; call run() to start serving. Throws
     * SimError (BadWire/BadJournal) when the socket or spool is
     * unusable.
     */
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Serve until drained: blocks running the poll loop and worker
     * pool, returns after requestDrain() (or SIGTERM/SIGINT via
     * installSignalHandlers()) once running jobs have finished and
     * been journaled. Queued jobs persist in the spool for the next
     * incarnation.
     */
    void run();

    /** Begin graceful drain (thread-safe; idempotent). */
    void requestDrain();

    /**
     * Route SIGTERM and SIGINT to requestDrain() on this server (one
     * server per process). The handler is async-signal-safe: it sets
     * a flag and writes one byte to the poll loop's wake pipe.
     */
    void installSignalHandlers();

    /** Snapshot of current state (thread-safe). */
    ServerStats stats();

    /** Grids reloaded from the spool by the constructor. */
    std::size_t resumedGrids() const { return resumed_grids_; }

    /** Jobs whose journaled outcomes replayed at startup. */
    std::size_t resumedJobs() const { return resumed_jobs_; }

    const std::string &socketPath() const { return config_.socket_path; }

  private:
    struct Grid;

    void loadSpool();
    void startWorkers();
    void stopWorkers();
    void workerMain();
    void shardMain();
    void beginDrain();
    void pollCycle();
    void acceptPending();
    void readSession(Session &session);
    void handlePayload(Session &session, const std::string &payload);
    void handleHello(Session &session, const std::string &payload);
    void handleSubmit(Session &session, const std::string &payload);
    void handleAttach(Session &session, const std::string &payload);
    void handleCancel(Session &session, const std::string &payload);
    void handleStatus(Session &session);
    void handleMetrics(Session &session, const std::string &payload);
    /** Render one metrics exposition (Prometheus or JSON). Takes its
     *  own locks (mutex_ for the gauge snapshot, then
     *  metrics_mutex_); call with neither held. */
    std::string renderMetrics(wire::MetricsFormat format);
    /** Write the grid's merged Chrome trace next to its spool pair;
     *  mutex_ held (once per grid, at completion). */
    void writeGridTrace(Grid &grid);
    void reject(Session &session, const std::string &id,
                util::SimErrorCode code, const std::string &message,
                bool fatal = false);
    void drainCompletions();
    void streamOutcome(Grid &grid, std::size_t index);
    void finalizeCancelledUnit(Grid &grid, std::size_t job_index);
    void cancelGrid(Grid &grid);
    void markCancelManifest(Grid &grid);
    void gridCompleted(Grid &grid);
    harness::SweepOutcome executeJob(Grid &grid, std::size_t index);
    void applyRecord(Grid &grid, harness::JournalRecord record,
                     bool from_journal);
    std::uint64_t gridSeed(const Grid &grid, std::size_t index) const;
    harness::JournalRecord cancelRecord(const Grid &grid,
                                        std::size_t index) const;
    void broadcast(std::uint64_t fingerprint,
                   const std::string &payload);
    void reapDeadSessions();
    void sessionClosed(Session &session);
    std::string spoolFile(std::uint64_t fingerprint,
                          const char *suffix) const;

    ServerConfig config_;
    util::Fd listener_;
    util::WakePipe wake_;

    /** Guards scheduler_, grids_, completions_, counters. */
    std::mutex mutex_;
    std::condition_variable cv_;
    Scheduler scheduler_;
    /** Service metrics (counters + latency histograms), exposed via
     *  the wire Metrics request. Guarded by metrics_mutex_ — a leaf
     *  lock (mutex_ may be held when taking it, never the reverse),
     *  because reject() runs both with and without mutex_ held. */
    std::mutex metrics_mutex_;
    telemetry::Registry metrics_;
    /** Crash-durable event ring, spooled to spool_dir/serve.flight;
     *  internally synchronized (note() is lock-cheap, dump() is
     *  async-signal-safe). */
    obs::FlightRecorder flight_;
    std::map<std::uint64_t, std::unique_ptr<Grid>> grids_;
    /** (fingerprint, job index) pairs finished by workers, awaiting
     *  streaming by the poll loop. */
    std::deque<std::pair<std::uint64_t, std::size_t>> completions_;
    std::size_t running_jobs_ = 0;
    std::size_t done_jobs_ = 0;
    std::size_t done_grids_ = 0;

    std::vector<std::thread> workers_;
    bool workers_stop_ = false;

    /** Poll-loop-owned. */
    std::vector<std::unique_ptr<Session>> sessions_;
    /** Mirror of sessions_.size() readable from stats(). */
    std::atomic<std::size_t> session_count_{0};
    bool draining_ = false;

    std::atomic<bool> drain_requested_{false};
    /** Set by the signal trampoline (async-signal-safe). */
    volatile std::sig_atomic_t signal_drain_ = 0;

    std::size_t resumed_grids_ = 0;
    std::size_t resumed_jobs_ = 0;
};

} // namespace aurora::serve

#endif // AURORA_SERVE_SERVER_HH
