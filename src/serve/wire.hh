/**
 * @file
 * aurora_serve wire protocol: CRC-framed messages over a local socket.
 *
 * Transport frames are util/frame's CRC framing under the 'AWP1'
 * magic:
 *
 *     [u32 magic 'AWP1'] [u32 payload_len] [u32 crc32(payload)] [payload]
 *
 * all little-endian. The CRC means a torn or bit-flipped frame is
 * *detected*, never misparsed — the same guarantee the sweep journal
 * gives on disk, extended to the socket. Payload byte 0 is the
 * MsgType; the rest is a ByteWriter/ByteReader encoding, so doubles
 * cross the wire bit-exactly.
 *
 * Conversation shape (client drives, server streams):
 *
 *   client                          server
 *   Hello{version, tenant}    -->
 *                             <--   Welcome{version, draining}
 *   Submit{label, opts, jobs} -->
 *                             <--   Accepted{fp, jobs, done} |
 *                                   Rejected{AURxxx, code, msg}
 *                             <--   Result{fp, record}*   (streamed)
 *                             <--   Progress{fp, counts}* (cadenced)
 *                             <--   GridDone{fp, tallies}
 *   Attach{fp}                -->   (replays done Results, then live)
 *   Cancel{fp}                -->
 *                             <--   CancelOk{fp, cancelled}
 *   Status{}                  -->
 *                             <--   StatusReport{...}
 *
 * A Result's `record` field is exactly harness::encodeJournalRecord()
 * of the job's journal record: what the client receives over the wire
 * is bit-identical to what the daemon persisted, so re-attached and
 * live clients cannot disagree.
 */

#ifndef AURORA_SERVE_WIRE_HH
#define AURORA_SERVE_WIRE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/frame.hh"
#include "util/record_io.hh"
#include "util/sim_error.hh"
#include "util/socket.hh"

namespace aurora::serve::wire
{

/** Frame magic ('AWP1', little-endian) — distinct from the journal's
 *  'AJRN' so a journal file pushed down a socket is rejected. */
inline constexpr std::uint32_t WIRE_MAGIC = 0x31505741u;

/**
 * Protocol version carried in Hello/Welcome. The server accepts any
 * version in [MIN_PROTOCOL_VERSION, PROTOCOL_VERSION] and echoes the
 * negotiated minimum in Welcome; anything else is AUR207.
 *
 * v2 adds the observability plane: an optional trailing trace id on
 * Submit/Accepted (written only when nonzero, read only when bytes
 * remain — a v1 peer's frames decode unchanged, and a v1 session is
 * never sent the new field) and the Metrics/MetricsReport pair.
 */
inline constexpr std::uint32_t PROTOCOL_VERSION = 2;
inline constexpr std::uint32_t MIN_PROTOCOL_VERSION = 1;

/** Payload byte 0. Client→server types are low, server→client high. */
enum class MsgType : std::uint8_t
{
    Hello = 1,
    Submit = 2,
    Attach = 3,
    Cancel = 4,
    Status = 5,
    Metrics = 6,

    Welcome = 64,
    Accepted = 65,
    Rejected = 66,
    Progress = 67,
    Result = 68,
    GridDone = 69,
    StatusReport = 70,
    CancelOk = 71,
    Draining = 72,
    MetricsReport = 73,
};

/** Display name ("Hello", "GridDone", ...) for logs and tests. */
const char *msgTypeName(MsgType type);

/** First byte of @p payload as a MsgType; BadWire when empty or not
 *  a known type. */
MsgType peekType(const std::string &payload);

/** Wrap @p payload in a wire frame (magic + length + CRC). */
std::string frame(const std::string &payload);

/** Shared frame-extraction status (see util/frame.hh). Corrupt is
 *  terminal for the connection — the peer is dropped (AUR207). */
using util::FrameStatus;

/** util::FrameDecoder fixed to the serve protocol's magic. */
class FrameDecoder : public util::FrameDecoder
{
  public:
    FrameDecoder() : util::FrameDecoder(WIRE_MAGIC) {}
};

/** Blocking send of one framed payload (client side). */
void sendFrame(int fd, const std::string &payload);

/**
 * Blocking receive of the next framed payload (client side), reading
 * through @p decoder. Returns std::nullopt on a clean peer close at a
 * frame boundary; throws SimError(BadWire) on corruption, on a close
 * mid-frame, or after @p timeout_ms with no complete frame.
 */
std::optional<std::string> recvFrame(int fd, FrameDecoder &decoder,
                                     std::uint64_t timeout_ms = 0);

/// @name Messages (client → server)
/// @{

struct HelloMsg
{
    std::uint32_t version = PROTOCOL_VERSION;
    /** Tenant identity for quotas and fair scheduling; non-empty. */
    std::string tenant;
};

/** One grid point of a submission, in portable textual form. */
struct SubmitJob
{
    /** core::parseMachineSpec() input (round-trips describe()). */
    std::string machine_spec;
    /** trace::profileByName() benchmark name. */
    std::string profile;
    /** Instruction budget. */
    std::uint64_t instructions = 0;
};

struct SubmitMsg
{
    /** Human label for status listings (not part of the identity). */
    std::string label;
    /** Cancel the grid if this connection drops before it finishes
     *  (false = orphan-detach: the grid keeps running). */
    bool cancel_on_disconnect = false;
    /** SweepOptions::base_seed (has_base_seed gates base_seed). */
    bool has_base_seed = false;
    std::uint64_t base_seed = 0;
    /** SweepOptions::deadline_ms (0 = unlimited). */
    std::uint64_t deadline_ms = 0;
    /** SweepOptions::retries. */
    std::uint32_t retries = 0;
    /** SweepOptions::backoff_ms. */
    std::uint64_t backoff_ms = 0;
    std::vector<SubmitJob> jobs;
    /**
     * v2: caller-supplied causal trace id (0 = let the server mint
     * one from the grid fingerprint). Optional trailing field —
     * encoded only when nonzero, absent on v1 frames.
     */
    std::uint64_t trace_id = 0;
};

struct AttachMsg
{
    std::uint64_t fingerprint = 0;
};

struct CancelMsg
{
    std::uint64_t fingerprint = 0;
};

struct StatusMsg
{
};

/** Exposition format of a Metrics request / report. */
enum class MetricsFormat : std::uint8_t
{
    Prometheus = 0,
    Json = 1,
};

/** v2: ask for a metrics exposition (aurora_top's poll). */
struct MetricsMsg
{
    MetricsFormat format = MetricsFormat::Prometheus;
};

/// @}
/// @name Messages (server → client)
/// @{

struct WelcomeMsg
{
    std::uint32_t version = PROTOCOL_VERSION;
    bool draining = false;
};

struct AcceptedMsg
{
    /** gridFingerprint() of the accepted grid — the durable handle a
     *  client re-attaches by after either side restarts. */
    std::uint64_t fingerprint = 0;
    std::uint64_t jobs = 0;
    /** Jobs already complete (0 on a fresh submission; > 0 when an
     *  Attach lands on a grid in flight). */
    std::uint64_t done = 0;
    /** True when this Accepted answers an Attach, not a Submit. */
    bool attached = false;
    /**
     * v2: the grid's causal trace id. Optional trailing field — the
     * server includes it only on v2 sessions (0 = not conveyed).
     */
    std::uint64_t trace_id = 0;
};

struct RejectedMsg
{
    /** Stable catalog ID (AUR2xx admission/protocol, or the AUR0xx
     *  preflight lint that failed). */
    std::string id;
    util::SimErrorCode code = util::SimErrorCode::Internal;
    std::string message;
};

/** Cadenced heartbeat for one grid (mirrors harness::SweepProgress,
 *  plus the service's cancelled count). */
struct ProgressMsg
{
    std::uint64_t fingerprint = 0;
    std::uint64_t done = 0;
    std::uint64_t total = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t cancelled = 0;
    double elapsed_seconds = 0.0;
};

struct ResultMsg
{
    std::uint64_t fingerprint = 0;
    /** harness::encodeJournalRecord() bytes of the completed job —
     *  decode with harness::decodeJournalRecord(). */
    std::string record;
};

struct GridDoneMsg
{
    std::uint64_t fingerprint = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t cancelled = 0;
    /** Jobs replayed from the journal after a daemon restart. */
    std::uint64_t resumed = 0;
};

struct StatusReportMsg
{
    bool draining = false;
    std::uint64_t grids = 0;
    std::uint64_t done_grids = 0;
    std::uint64_t queued_jobs = 0;
    std::uint64_t running_jobs = 0;
    std::uint64_t done_jobs = 0;
};

struct CancelOkMsg
{
    std::uint64_t fingerprint = 0;
    /** Queued jobs finalized as Cancelled by this request. */
    std::uint64_t cancelled_jobs = 0;
};

/** Sent to every connected client when drain begins. */
struct DrainingMsg
{
    std::string reason;
};

/** v2: one metrics exposition (obs::renderPrometheus / renderMetricsJson). */
struct MetricsReportMsg
{
    MetricsFormat format = MetricsFormat::Prometheus;
    std::string body;
};

/// @}

/// Encode one message to its payload bytes (type byte included).
/// @{
std::string encode(const HelloMsg &m);
std::string encode(const SubmitMsg &m);
std::string encode(const AttachMsg &m);
std::string encode(const CancelMsg &m);
std::string encode(const StatusMsg &m);
std::string encode(const MetricsMsg &m);
std::string encode(const WelcomeMsg &m);
std::string encode(const AcceptedMsg &m);
std::string encode(const RejectedMsg &m);
std::string encode(const ProgressMsg &m);
std::string encode(const ResultMsg &m);
std::string encode(const GridDoneMsg &m);
std::string encode(const StatusReportMsg &m);
std::string encode(const CancelOkMsg &m);
std::string encode(const DrainingMsg &m);
std::string encode(const MetricsReportMsg &m);
/// @}

/// Decode one payload; throws SimError(BadWire) on a wrong type byte,
/// an out-of-range field, or trailing bytes (format mismatch).
/// @{
HelloMsg decodeHello(const std::string &payload);
SubmitMsg decodeSubmit(const std::string &payload);
AttachMsg decodeAttach(const std::string &payload);
CancelMsg decodeCancel(const std::string &payload);
StatusMsg decodeStatus(const std::string &payload);
MetricsMsg decodeMetrics(const std::string &payload);
WelcomeMsg decodeWelcome(const std::string &payload);
AcceptedMsg decodeAccepted(const std::string &payload);
RejectedMsg decodeRejected(const std::string &payload);
ProgressMsg decodeProgress(const std::string &payload);
ResultMsg decodeResult(const std::string &payload);
GridDoneMsg decodeGridDone(const std::string &payload);
StatusReportMsg decodeStatusReport(const std::string &payload);
CancelOkMsg decodeCancelOk(const std::string &payload);
DrainingMsg decodeDraining(const std::string &payload);
MetricsReportMsg decodeMetricsReport(const std::string &payload);
/// @}

} // namespace aurora::serve::wire

#endif // AURORA_SERVE_WIRE_HH
