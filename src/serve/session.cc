#include "session.hh"

#include <algorithm>

namespace aurora::serve
{

Session::Session(util::Fd fd) : fd_(std::move(fd))
{
    util::setNonBlocking(fd_.get());
}

void
Session::queueFrame(const std::string &payload)
{
    // Reclaim the flushed prefix once it dominates the buffer, so a
    // slow reader watching a long grid doesn't pin every frame ever
    // sent to it.
    if (out_pos_ > 4096 && out_pos_ * 2 > out_.size()) {
        out_.erase(0, out_pos_);
        out_pos_ = 0;
    }
    out_ += wire::frame(payload);
}

bool
Session::flush()
{
    if (!wantsWrite())
        return true;
    return util::writeSome(fd_.get(), out_, out_pos_);
}

void
Session::watch(std::uint64_t fingerprint)
{
    if (!isWatching(fingerprint))
        watching_.push_back(fingerprint);
}

bool
Session::isWatching(std::uint64_t fingerprint) const
{
    return std::find(watching_.begin(), watching_.end(), fingerprint) !=
           watching_.end();
}

} // namespace aurora::serve
