#include "rbe.hh"

#include <cmath>

#include "util/logging.hh"

namespace aurora::cost
{

double
icacheRbe(std::uint32_t bytes)
{
    AURORA_ASSERT(bytes >= 512, "I-cache below the model's range");
    // Exact published points.
    if (bytes == 1024)
        return RBE_ICACHE_1K;
    if (bytes == 2048)
        return RBE_ICACHE_2K;
    if (bytes == 4096)
        return RBE_ICACHE_4K;
    // Log-linear through the published points: doubling capacity
    // multiplies area by ~1.55 (12000/8000, 20000/12000 average).
    const double lg = std::log2(static_cast<double>(bytes) / 1024.0);
    if (lg <= 1.0) {
        // interpolate 1K..2K
        return RBE_ICACHE_1K *
               std::pow(RBE_ICACHE_2K / RBE_ICACHE_1K, lg);
    }
    // interpolate/extrapolate from 2K upward
    return RBE_ICACHE_2K *
           std::pow(RBE_ICACHE_4K / RBE_ICACHE_2K, lg - 1.0);
}

double
writeCacheRbe(unsigned lines)
{
    return RBE_WRITE_CACHE_LINE * lines;
}

double
prefetchRbe(unsigned buffers, unsigned depth)
{
    return RBE_PREFETCH_LINE * buffers * depth;
}

double
robRbe(unsigned entries)
{
    return RBE_ROB_ENTRY * entries;
}

double
mshrRbe(unsigned entries)
{
    return RBE_MSHR_ENTRY * entries;
}

double
pipelineRbe(unsigned pipelines)
{
    return RBE_INT_PIPELINE * pipelines;
}

double
ipuRbe(const IpuResources &res)
{
    // Interconnect overhead is assumed to scale with the sum of the
    // component areas (§4.2), so a plain sum prices the system.
    return icacheRbe(res.icache_bytes) +
           writeCacheRbe(res.write_cache_lines) +
           prefetchRbe(res.prefetch_buffers, res.prefetch_depth) +
           robRbe(res.rob_entries) + mshrRbe(res.mshr_entries) +
           pipelineRbe(res.pipelines);
}

namespace
{

/** Linear interpolation of unit cost over its latency range. */
double
unitCost(Cycle latency, Cycle lat_fast, Cycle lat_slow,
         double rbe_fast, double rbe_slow)
{
    AURORA_ASSERT(latency >= lat_fast && latency <= lat_slow,
                  "latency outside the published cost range");
    const double t = static_cast<double>(latency - lat_fast) /
                     static_cast<double>(lat_slow - lat_fast);
    return rbe_fast + t * (rbe_slow - rbe_fast);
}

} // namespace

double
fpAddRbe(Cycle latency, bool pipelined)
{
    const double base =
        unitCost(latency, 1, 5, RBE_FP_ADD_FAST, RBE_FP_ADD_SLOW);
    return pipelined ? base : base * (1.0 - FP_PIPELINE_LATCH_FRACTION);
}

double
fpMulRbe(Cycle latency, bool pipelined)
{
    const double base =
        unitCost(latency, 1, 5, RBE_FP_MUL_FAST, RBE_FP_MUL_SLOW);
    return pipelined ? base : base * (1.0 - FP_PIPELINE_LATCH_FRACTION);
}

double
fpDivRbe(Cycle latency)
{
    return unitCost(latency, 10, 30, RBE_FP_DIV_FAST, RBE_FP_DIV_SLOW);
}

double
fpCvtRbe(Cycle latency)
{
    return unitCost(latency, 1, 5, RBE_FP_CVT_FAST, RBE_FP_CVT_SLOW);
}

double
fpuRbe(const fpu::FpuConfig &config)
{
    // The reorder buffer entry cost is taken from the IPU column of
    // Table 2 (the paper prices only one kind of reorder entry).
    return RBE_FPU_DATA_BLOCK +
           RBE_FP_INST_QUEUE_ENTRY * config.inst_queue +
           RBE_FP_DATA_QUEUE_ENTRY *
               (config.load_queue + config.store_queue) +
           RBE_ROB_ENTRY * config.rob_entries +
           fpAddRbe(config.add.latency, config.add.pipelined) +
           fpMulRbe(config.mul.latency, config.mul.pipelined) +
           fpDivRbe(config.div.latency) +
           fpCvtRbe(config.cvt.latency);
}

} // namespace aurora::cost
