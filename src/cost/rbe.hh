/**
 * @file
 * Register-Bit-Equivalent (RBE) area model (§4.2, Table 2).
 *
 * Mulder's RBE model [11] normalizes the area of microarchitectural
 * structures to the area of a 1-bit static latch (for the Aurora III
 * GaAs DCFL process: ~16 transistors, ~3600 um^2). The paper's Table 2
 * prices each element from actual layout; those constants are encoded
 * here verbatim. Latency-dependent functional unit costs are linearly
 * interpolated between the published endpoints, and removing pipeline
 * latches from the add/multiply units saves ~25% of the unit area
 * (§5.10).
 *
 * The external data cache is deliberately *excluded* from system cost,
 * exactly as in the paper (it lives on separate SRAM chips).
 */

#ifndef AURORA_COST_RBE_HH
#define AURORA_COST_RBE_HH

#include <cstdint>

#include "fpu/fpu_config.hh"
#include "util/types.hh"

namespace aurora::cost
{

/// @name Table 2 constants (RBE units)
/// @{
inline constexpr double RBE_ICACHE_1K = 8000.0;
inline constexpr double RBE_ICACHE_2K = 12000.0;
inline constexpr double RBE_ICACHE_4K = 20000.0;
inline constexpr double RBE_WRITE_CACHE_LINE = 320.0;
inline constexpr double RBE_PREFETCH_LINE = 320.0;
inline constexpr double RBE_ROB_ENTRY = 200.0;
inline constexpr double RBE_MSHR_ENTRY = 50.0;
inline constexpr double RBE_INT_PIPELINE = 8192.0;

inline constexpr double RBE_FPU_DATA_BLOCK = 4000.0; ///< RF + scoreboard
inline constexpr double RBE_FP_INST_QUEUE_ENTRY = 50.0;
inline constexpr double RBE_FP_DATA_QUEUE_ENTRY = 80.0;
/// Add unit: 1 cycle -> 5000 RBE, 5 cycles -> 1250 RBE.
inline constexpr double RBE_FP_ADD_FAST = 5000.0;
inline constexpr double RBE_FP_ADD_SLOW = 1250.0;
/// Multiply unit: 1 cycle -> 6875 RBE, 5 cycles -> 2500 RBE.
inline constexpr double RBE_FP_MUL_FAST = 6875.0;
inline constexpr double RBE_FP_MUL_SLOW = 2500.0;
/// Divide unit: 10 cycles -> 2500 RBE, 30 cycles -> 625 RBE.
inline constexpr double RBE_FP_DIV_FAST = 2500.0;
inline constexpr double RBE_FP_DIV_SLOW = 625.0;
/// Conversion unit: 1 cycle -> 2500 RBE, 5 cycles -> 1250 RBE.
inline constexpr double RBE_FP_CVT_FAST = 2500.0;
inline constexpr double RBE_FP_CVT_SLOW = 1250.0;
/// Fraction of add/multiply unit area spent on pipeline latches.
inline constexpr double FP_PIPELINE_LATCH_FRACTION = 0.25;
/// @}

/** IPU resource bundle priced by ipuRbe(). */
struct IpuResources
{
    std::uint32_t icache_bytes = 2048;
    unsigned write_cache_lines = 4;
    unsigned prefetch_buffers = 4;
    unsigned prefetch_depth = 2;
    unsigned rob_entries = 6;
    unsigned mshr_entries = 2;
    unsigned pipelines = 2;
};

/**
 * Instruction cache cost. Exact at the published 1/2/4 KB points,
 * log-linear interpolation elsewhere (RAM area grows sublinearly
 * because decode/sense overhead amortizes, §4.2).
 */
double icacheRbe(std::uint32_t bytes);

/** Write cache cost: lines of eight words. */
double writeCacheRbe(unsigned lines);

/** Prefetch unit cost: buffers x lines-per-buffer. */
double prefetchRbe(unsigned buffers, unsigned depth);

/** Reorder buffer cost. */
double robRbe(unsigned entries);

/** MSHR file cost. */
double mshrRbe(unsigned entries);

/** Integer execution pipeline cost. */
double pipelineRbe(unsigned pipelines);

/** Total IPU cost (the Figure 4 / Figure 8 x-axis). */
double ipuRbe(const IpuResources &res);

/// @name FPU element costs (Figure 9d-g trade-offs)
/// @{
double fpAddRbe(Cycle latency, bool pipelined);
double fpMulRbe(Cycle latency, bool pipelined);
double fpDivRbe(Cycle latency);
double fpCvtRbe(Cycle latency);
/// @}

/** Total FPU cost for a configuration. */
double fpuRbe(const fpu::FpuConfig &config);

} // namespace aurora::cost

#endif // AURORA_COST_RBE_HH
