/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * The fault-tolerance machinery (structured SimErrors, the
 * forward-progress watchdog, per-job sweep isolation) is only
 * trustworthy if every detector is routinely exercised. This module
 * manufactures the faults: configurations that validation must
 * reject, configurations that validate but never retire (the
 * watchdog's prey), and byte-level trace-file corruption that the
 * trace reader must refuse to replay.
 *
 * Everything is seed-driven and pure: the same (seed, index) always
 * selects the same fault, so a failing fault-storm run reproduces
 * exactly. No global state, no clock, no libc rand().
 */

#ifndef AURORA_FAULTINJECT_FAULTINJECT_HH
#define AURORA_FAULTINJECT_FAULTINJECT_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "core/machine_config.hh"
#include "core/processor.hh"

namespace aurora::faultinject
{

/** splitmix64 finalizer — the module's only source of "randomness". */
std::uint64_t mix64(std::uint64_t x);

/**
 * Deterministic Bernoulli draw: should grid slot @p index be poisoned
 * under @p seed? True with probability @p fraction, independently per
 * index, identically across worker counts and reruns.
 */
bool poisoned(std::uint64_t seed, std::size_t index, double fraction);

/** Configuration defects MachineConfig::validate() must reject. */
enum class ConfigFault
{
    /** rob_entries = 0 — a degenerate reorder buffer. */
    ZeroRob,
    /** mshr_entries = 0 — an LSU that can never miss. */
    ZeroMshr,
    /** D-cache line size diverges from the other caches. */
    MismatchedLineSize,
    /** fetch_width no longer equals issue_width. */
    FetchWidthMismatch,
    /** fp_instq = 0 — would abort BoundedQueue construction. */
    ZeroFpInstQueue,
    /** provably_safe_frac outside [0,1]. */
    BadSafeFrac,
    /** FP divide latency beyond the result-bus scheduling window. */
    OverlongFpLatency,
};

inline constexpr std::size_t NUM_CONFIG_FAULTS = 7;

/** Short display name ("zero-rob", "bad-safe-frac", ...). */
const char *configFaultName(ConfigFault fault);

/** Seed-driven fault choice, uniform over all ConfigFaults. */
ConfigFault anyConfigFault(std::uint64_t seed);

/**
 * Return @p base with @p fault applied (name gains a
 * "-poisoned:<fault>" suffix). The result is guaranteed to make
 * validate() throw util::SimError (BadConfig); test_faultinject
 * asserts this for every fault kind.
 */
core::MachineConfig poisonConfig(const core::MachineConfig &base,
                                 ConfigFault fault);

/**
 * Return @p base altered to pass validation but never retire FP work:
 * result_buses = 0 starves every functional unit of a writeback slot,
 * the decoupling queue fills, and issue blocks forever. Run it on any
 * FP-heavy workload and only the forward-progress watchdog ends the
 * run (NoForwardProgress).
 */
core::MachineConfig wedgeConfig(const core::MachineConfig &base);

/** Byte-level trace-file defects the reader must detect. */
enum class TraceFault
{
    /** Clobber the "AUR3" magic. */
    Magic,
    /** Bump the format version to an unsupported value. */
    Version,
    /** Overwrite one record's op-class byte with 0xff. */
    OpClass,
    /** Cut the file mid-record so the body underruns the header. */
    Truncate,
};

inline constexpr std::size_t NUM_TRACE_FAULTS = 4;

/** Short display name ("magic", "truncate", ...). */
const char *traceFaultName(TraceFault fault);

/** Seed-driven fault choice, uniform over all TraceFaults. */
TraceFault anyTraceFault(std::uint64_t seed);

/**
 * Corrupt the trace file at @p path in place with @p fault; @p seed
 * picks the victim record for OpClass. The file must be a valid
 * non-empty trace written by trace::writeTrace(). Reading the
 * corrupted file must yield util::SimError (BadTrace).
 */
void corruptTraceFile(const std::string &path, TraceFault fault,
                      std::uint64_t seed = 0);

/** Byte-level sweep-journal defects loadJournal() must classify. */
enum class JournalFault
{
    /** Flip one seed-chosen bit anywhere in the file. */
    BitFlip,
    /** Cut 1–15 seed-chosen bytes off the end (a torn append). */
    TruncateTail,
};

inline constexpr std::size_t NUM_JOURNAL_FAULTS = 2;

/** Short display name ("bit-flip", "truncate-tail"). */
const char *journalFaultName(JournalFault fault);

/** Seed-driven fault choice, uniform over all JournalFaults. */
JournalFault anyJournalFault(std::uint64_t seed);

/**
 * Corrupt the sweep journal at @p path in place. Loading afterwards
 * must never crash: a TruncateTail lands in the final record and is
 * dropped as a torn tail (or, if it reaches the header, raises
 * BadJournal); a BitFlip raises BadJournal wherever the CRC or frame
 * catches it — except a flip in the *length* field of the last
 * record, which can masquerade as a torn tail and merely costs that
 * one record a re-run.
 */
void corruptJournalFile(const std::string &path, JournalFault fault,
                        std::uint64_t seed = 0);

/** Byte-level wire-frame defects the serve FrameDecoder must
 *  detect (all map to catalog ID AUR207 at the daemon). */
enum class WireFault
{
    /** Cut the frame inside its 12-byte header — the torn-frame
     *  shape of a read that raced a dying peer. */
    TruncateFrame,
    /** Keep the header but cut the payload short — a peer that
     *  disconnected mid-frame. */
    MidFrameCut,
    /** Flip one seed-chosen payload bit, leaving the CRC stale. */
    CrcFlip,
};

inline constexpr std::size_t NUM_WIRE_FAULTS = 3;

/** Short display name ("truncate-frame", "crc-flip", ...). */
const char *wireFaultName(WireFault fault);

/** Seed-driven fault choice, uniform over all WireFaults. */
WireFault anyWireFault(std::uint64_t seed);

/** Catalog diagnostic the daemon raises for @p fault ("AUR207"). */
const char *wireFaultDiagnosticId(WireFault fault);

/**
 * Return @p frame (one complete serve wire frame: 12-byte header +
 * payload) corrupted with @p fault. Pure — the wire has no file to
 * damage in place, so this is the socket-side mirror of
 * corruptJournalFile(). Feeding the result to a FrameDecoder must
 * yield NeedMore-then-starve for the two cut faults (the peer-
 * vanished signature) and Corrupt for CrcFlip; it must never yield
 * a valid payload.
 */
std::string corruptWireFrame(const std::string &frame, WireFault fault,
                             std::uint64_t seed = 0);

/** Process-level shard failure modes the swarm coordinator's
 *  lease-fenced supervision must absorb (see docs/distributed.md). */
enum class ShardFault
{
    /** _exit() mid-grid without warning — the SIGKILL shape. The
     *  coordinator sees EOF, fences the epoch, migrates. AUR302. */
    KillShard,
    /** Stop executing, heartbeating, and reading: a wedged process
     *  that holds its socket open. Only lease expiry catches it.
     *  AUR301. */
    HangShard,
    /** Keep working but silently stop heartbeating — the one-way
     *  partition shape. The shard is fenced while healthy and its
     *  late results are refused. AUR303. */
    DropHeartbeats,
    /** Go silent past the lease, then append to the local journal
     *  and offer the result under the now-stale epoch — the zombie
     *  the fence exists for. AUR304. */
    ZombieAppend,
};

inline constexpr std::size_t NUM_SHARD_FAULTS = 4;

/** Short display name ("kill-shard", "zombie-append", ...). */
const char *shardFaultName(ShardFault fault);

/** Seed-driven fault choice, uniform over all ShardFaults. */
ShardFault anyShardFault(std::uint64_t seed);

/** Catalog diagnostic the coordinator raises for @p fault
 *  ("AUR301".."AUR304"). */
const char *shardFaultDiagnosticId(ShardFault fault);

/**
 * One shard's scripted failure: arm @p fault after the shard has
 * completed @p after_jobs jobs. Carried to in-process shard workers
 * directly and to exec'd `aurora_shardd` processes through the
 * AURORA_SHARD_FAULT environment variable.
 */
struct ShardFaultPlan
{
    ShardFault fault = ShardFault::KillShard;
    std::uint32_t after_jobs = 0;
};

/** Render @p plan as "<name>:<after_jobs>" (env-var form). */
std::string formatShardFaultPlan(const ShardFaultPlan &plan);

/** Parse the env-var form; nullopt on anything malformed — a shard
 *  must never misread its sabotage orders into different sabotage. */
std::optional<ShardFaultPlan>
parseShardFaultPlan(const std::string &text);

/**
 * Break one conservation invariant of @p result: bump a seed-chosen
 * stall-cause counter by one cycle, so stall + issuing + tail cycles
 * no longer equals total cycles. Models the class of accounting bug
 * the post-run auditor (core::auditRun) exists to catch; the audit
 * must reject the altered result with SimError{Internal}.
 */
void miscountStall(core::RunResult &result, std::uint64_t seed);

} // namespace aurora::faultinject

#endif // AURORA_FAULTINJECT_FAULTINJECT_HH
