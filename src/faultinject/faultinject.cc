#include "faultinject.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "util/logging.hh"

namespace aurora::faultinject
{

namespace
{

constexpr std::size_t TRACE_HEADER_BYTES = 16;
constexpr std::size_t TRACE_RECORD_BYTES = 24;
constexpr std::size_t OP_CLASS_OFFSET = 12;

/** Read one little-endian u32 at @p off, seek position preserved. */
std::uint32_t
readU32(std::FILE *f, long off)
{
    unsigned char b[4] = {};
    AURORA_ASSERT(std::fseek(f, off, SEEK_SET) == 0 &&
                      std::fread(b, 1, 4, f) == 4,
                  "fault injection: cannot read trace header");
    return std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
           (std::uint32_t{b[2]} << 16) | (std::uint32_t{b[3]} << 24);
}

void
writeByte(std::FILE *f, long off, unsigned char value)
{
    AURORA_ASSERT(std::fseek(f, off, SEEK_SET) == 0 &&
                      std::fwrite(&value, 1, 1, f) == 1,
                  "fault injection: cannot write trace byte");
}

} // namespace

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

bool
poisoned(std::uint64_t seed, std::size_t index, double fraction)
{
    const std::uint64_t h =
        mix64(seed ^ (index * 0x9e3779b97f4a7c15ull +
                      0x2545f4914f6cdd1dull));
    const double u = static_cast<double>(h >> 11) /
                     static_cast<double>(1ull << 53);
    return u < fraction;
}

const char *
configFaultName(ConfigFault fault)
{
    switch (fault) {
      case ConfigFault::ZeroRob:
        return "zero-rob";
      case ConfigFault::ZeroMshr:
        return "zero-mshr";
      case ConfigFault::MismatchedLineSize:
        return "mismatched-line-size";
      case ConfigFault::FetchWidthMismatch:
        return "fetch-width-mismatch";
      case ConfigFault::ZeroFpInstQueue:
        return "zero-fp-instq";
      case ConfigFault::BadSafeFrac:
        return "bad-safe-frac";
      case ConfigFault::OverlongFpLatency:
        return "overlong-fp-latency";
    }
    AURORA_PANIC("unknown ConfigFault ", static_cast<int>(fault));
}

ConfigFault
anyConfigFault(std::uint64_t seed)
{
    return static_cast<ConfigFault>(mix64(seed) % NUM_CONFIG_FAULTS);
}

core::MachineConfig
poisonConfig(const core::MachineConfig &base, ConfigFault fault)
{
    core::MachineConfig c = base;
    c.name += std::string("-poisoned:") + configFaultName(fault);
    switch (fault) {
      case ConfigFault::ZeroRob:
        c.rob_entries = 0;
        break;
      case ConfigFault::ZeroMshr:
        c.lsu.mshr_entries = 0;
        break;
      case ConfigFault::MismatchedLineSize:
        c.lsu.line_bytes *= 2;
        break;
      case ConfigFault::FetchWidthMismatch:
        c.ifu.fetch_width = c.issue_width + 1;
        break;
      case ConfigFault::ZeroFpInstQueue:
        c.fpu.inst_queue = 0;
        break;
      case ConfigFault::BadSafeFrac:
        c.fpu.provably_safe_frac = 1.5;
        break;
      case ConfigFault::OverlongFpLatency:
        c.fpu.div.latency = 1000;
        break;
    }
    return c;
}

core::MachineConfig
wedgeConfig(const core::MachineConfig &base)
{
    core::MachineConfig c = base;
    c.name += "-wedged";
    c.fpu.result_buses = 0;
    return c;
}

const char *
traceFaultName(TraceFault fault)
{
    switch (fault) {
      case TraceFault::Magic:
        return "magic";
      case TraceFault::Version:
        return "version";
      case TraceFault::OpClass:
        return "op-class";
      case TraceFault::Truncate:
        return "truncate";
    }
    AURORA_PANIC("unknown TraceFault ", static_cast<int>(fault));
}

TraceFault
anyTraceFault(std::uint64_t seed)
{
    return static_cast<TraceFault>(mix64(seed) % NUM_TRACE_FAULTS);
}

void
corruptTraceFile(const std::string &path, TraceFault fault,
                 std::uint64_t seed)
{
    if (fault == TraceFault::Truncate) {
        // Cut mid-record: the header's count now over-promises.
        const auto size = std::filesystem::file_size(path);
        AURORA_ASSERT(size >= TRACE_HEADER_BYTES + TRACE_RECORD_BYTES,
                      "fault injection: trace too small to truncate: ",
                      path);
        std::filesystem::resize_file(path, size - TRACE_RECORD_BYTES / 2);
        return;
    }

    std::FILE *f = std::fopen(path.c_str(), "rb+");
    AURORA_ASSERT(f != nullptr,
                  "fault injection: cannot open trace ", path);
    switch (fault) {
      case TraceFault::Magic:
        writeByte(f, 0, 'X');
        break;
      case TraceFault::Version:
        writeByte(f, 4, 0xab);
        break;
      case TraceFault::OpClass: {
        const std::uint32_t count = readU32(f, 8);
        AURORA_ASSERT(count > 0,
                      "fault injection: empty trace in ", path);
        const std::uint32_t victim =
            static_cast<std::uint32_t>(mix64(seed) % count);
        writeByte(f,
                  static_cast<long>(TRACE_HEADER_BYTES +
                                    victim * TRACE_RECORD_BYTES +
                                    OP_CLASS_OFFSET),
                  0xff);
        break;
      }
      case TraceFault::Truncate:
        break; // handled above
    }
    std::fclose(f);
}

const char *
journalFaultName(JournalFault fault)
{
    switch (fault) {
      case JournalFault::BitFlip:
        return "bit-flip";
      case JournalFault::TruncateTail:
        return "truncate-tail";
    }
    AURORA_PANIC("unknown JournalFault ", static_cast<int>(fault));
}

JournalFault
anyJournalFault(std::uint64_t seed)
{
    return static_cast<JournalFault>(mix64(seed) % NUM_JOURNAL_FAULTS);
}

void
corruptJournalFile(const std::string &path, JournalFault fault,
                   std::uint64_t seed)
{
    const auto size = std::filesystem::file_size(path);
    AURORA_ASSERT(size > 0,
                  "fault injection: empty journal in ", path);

    if (fault == JournalFault::TruncateTail) {
        const std::uintmax_t cut =
            1 + mix64(seed) % std::min<std::uintmax_t>(15, size);
        std::filesystem::resize_file(path, size - cut);
        return;
    }

    std::FILE *f = std::fopen(path.c_str(), "rb+");
    AURORA_ASSERT(f != nullptr,
                  "fault injection: cannot open journal ", path);
    const long off = static_cast<long>(mix64(seed) % size);
    unsigned char byte = 0;
    AURORA_ASSERT(std::fseek(f, off, SEEK_SET) == 0 &&
                      std::fread(&byte, 1, 1, f) == 1,
                  "fault injection: cannot read journal byte");
    byte ^= static_cast<unsigned char>(1u << (mix64(seed + 1) % 8));
    writeByte(f, off, byte);
    std::fclose(f);
}

const char *
wireFaultName(WireFault fault)
{
    switch (fault) {
      case WireFault::TruncateFrame:
        return "truncate-frame";
      case WireFault::MidFrameCut:
        return "mid-frame-cut";
      case WireFault::CrcFlip:
        return "crc-flip";
    }
    AURORA_PANIC("unknown WireFault ", static_cast<int>(fault));
}

WireFault
anyWireFault(std::uint64_t seed)
{
    return static_cast<WireFault>(mix64(seed) % NUM_WIRE_FAULTS);
}

const char *
wireFaultDiagnosticId(WireFault)
{
    // Every wire-level defect surfaces at the daemon as a protocol
    // violation: the session is refused with AUR207 and dropped.
    return "AUR207";
}

std::string
corruptWireFrame(const std::string &frame, WireFault fault,
                 std::uint64_t seed)
{
    constexpr std::size_t HEADER = 12;
    AURORA_ASSERT(frame.size() >= HEADER,
                  "fault injection: ", frame.size(),
                  " bytes is not a complete wire frame");
    std::string out = frame;
    switch (fault) {
      case WireFault::TruncateFrame:
        out.resize(1 + mix64(seed) % (HEADER - 1));
        return out;
      case WireFault::MidFrameCut:
        // Keep the header and a strict prefix of the payload, so the
        // decoder waits for bytes that never come (an empty-payload
        // frame falls back to cutting the header's last byte).
        out.resize(std::min(
            frame.size() - 1,
            HEADER + mix64(seed) % std::max<std::size_t>(
                         1, frame.size() - HEADER)));
        return out;
      case WireFault::CrcFlip: {
        // Flip a payload bit when there is a payload; an empty
        // payload gets its CRC field flipped instead. Either way the
        // stored CRC no longer matches the bytes.
        const std::size_t lo = frame.size() > HEADER ? HEADER : 8;
        const std::size_t span =
            (frame.size() > HEADER ? frame.size() : HEADER) - lo;
        const std::size_t off = lo + mix64(seed) % span;
        out[off] = static_cast<char>(
            static_cast<unsigned char>(out[off]) ^
            static_cast<unsigned char>(1u << (mix64(seed + 1) % 8)));
        return out;
      }
    }
    AURORA_PANIC("unknown WireFault ", static_cast<int>(fault));
}

const char *
shardFaultName(ShardFault fault)
{
    switch (fault) {
      case ShardFault::KillShard:
        return "kill-shard";
      case ShardFault::HangShard:
        return "hang-shard";
      case ShardFault::DropHeartbeats:
        return "drop-heartbeats";
      case ShardFault::ZombieAppend:
        return "zombie-append";
    }
    AURORA_PANIC("unknown ShardFault ", static_cast<int>(fault));
}

ShardFault
anyShardFault(std::uint64_t seed)
{
    return static_cast<ShardFault>(mix64(seed) % NUM_SHARD_FAULTS);
}

const char *
shardFaultDiagnosticId(ShardFault fault)
{
    switch (fault) {
      case ShardFault::KillShard:
        return "AUR302";
      case ShardFault::HangShard:
        return "AUR301";
      case ShardFault::DropHeartbeats:
        return "AUR303";
      case ShardFault::ZombieAppend:
        return "AUR304";
    }
    AURORA_PANIC("unknown ShardFault ", static_cast<int>(fault));
}

std::string
formatShardFaultPlan(const ShardFaultPlan &plan)
{
    return std::string(shardFaultName(plan.fault)) + ":" +
           std::to_string(plan.after_jobs);
}

std::optional<ShardFaultPlan>
parseShardFaultPlan(const std::string &text)
{
    const std::size_t colon = text.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= text.size())
        return std::nullopt;
    const std::string name = text.substr(0, colon);
    const std::string count = text.substr(colon + 1);

    ShardFaultPlan plan;
    bool known = false;
    for (std::size_t i = 0; i < NUM_SHARD_FAULTS; ++i) {
        const auto fault = static_cast<ShardFault>(i);
        if (name == shardFaultName(fault)) {
            plan.fault = fault;
            known = true;
            break;
        }
    }
    if (!known)
        return std::nullopt;

    std::uint64_t after = 0;
    for (const char c : count) {
        if (c < '0' || c > '9')
            return std::nullopt;
        after = after * 10 + static_cast<std::uint64_t>(c - '0');
        if (after > 0xffffffffull)
            return std::nullopt;
    }
    plan.after_jobs = static_cast<std::uint32_t>(after);
    return plan;
}

void
miscountStall(core::RunResult &result, std::uint64_t seed)
{
    const auto cause = mix64(seed) % result.stalls.size();
    result.stalls[cause] += 1;
}

} // namespace aurora::faultinject
