/**
 * @file
 * MIPS-I subset instruction encodings.
 *
 * The Aurora III executes the MIPS R3000 ISA (§1). The simulator
 * proper is trace-driven and does not interpret machine words, but
 * the pre-decoded instruction cache of Figure 3 is defined in terms
 * of real instruction bits, so the library carries a faithful
 * encoder/decoder for the subset of the ISA the operation classes
 * cover. It is used by the predecode unit, the disassembler, and the
 * tests that pin down the Figure 3 field semantics.
 */

#ifndef AURORA_ISA_ENCODING_HH
#define AURORA_ISA_ENCODING_HH

#include <cstdint>
#include <string>

#include "trace/inst.hh"

namespace aurora::isa
{

/** A 32-bit MIPS machine word. */
using Word = std::uint32_t;

/// @name Primary opcodes (bits 31..26)
/// @{
inline constexpr Word OP_SPECIAL = 0x00; ///< R-type ALU
inline constexpr Word OP_J = 0x02;
inline constexpr Word OP_JAL = 0x03;
inline constexpr Word OP_BEQ = 0x04;
inline constexpr Word OP_BNE = 0x05;
inline constexpr Word OP_ADDIU = 0x09;
inline constexpr Word OP_COP1 = 0x11;    ///< FP operate / moves
inline constexpr Word OP_LW = 0x23;
inline constexpr Word OP_SW = 0x2b;
inline constexpr Word OP_LWC1 = 0x31;    ///< load word to FP reg
inline constexpr Word OP_SWC1 = 0x39;    ///< store word from FP reg
/// @}

/// @name SPECIAL function codes (bits 5..0)
/// @{
inline constexpr Word FUNCT_SLL = 0x00;  ///< sll r0,r0,0 == nop
inline constexpr Word FUNCT_ADDU = 0x21;
/// @}

/// @name COP1 double-format function codes
/// @{
inline constexpr Word COP1_FMT_D = 0x11; ///< double precision
inline constexpr Word FUNCT_FADD = 0x00;
inline constexpr Word FUNCT_FMUL = 0x02;
inline constexpr Word FUNCT_FDIV = 0x03;
inline constexpr Word FUNCT_CVT_D_W = 0x21;
/// @}

/** Fields recovered from a machine word. */
struct Decoded
{
    trace::OpClass op = trace::OpClass::Nop;
    RegIndex rs = NO_REG;   ///< integer source A / base register
    RegIndex rt = NO_REG;   ///< integer source B / target
    RegIndex rd = NO_REG;   ///< integer destination
    RegIndex fs = NO_REG;   ///< FP source A
    RegIndex ft = NO_REG;   ///< FP source B / FP store data
    RegIndex fd = NO_REG;   ///< FP destination
    std::int16_t imm = 0;   ///< sign-extended immediate
};

/**
 * Encode a dynamic instruction into a representative machine word.
 *
 * The encoding preserves the operation class and every register
 * operand the pipeline model uses; memory displacements are encoded
 * as zero (the trace carries effective addresses directly).
 */
Word encode(const trace::Inst &inst);

/** Decode a machine word back into its fields. */
Decoded decode(Word word);

/** Human-readable disassembly of a machine word. */
std::string disassemble(Word word);

} // namespace aurora::isa

#endif // AURORA_ISA_ENCODING_HH
