/**
 * @file
 * The Figure 3 predecode unit.
 *
 * Instructions are pre-decoded before insertion into the instruction
 * cache: they are grouped into aligned EVEN/ODD pairs, the DI bit
 * records whether an intra-pair true dependency prohibits dual issue,
 * the CONT field records whether the pair contains a control flow
 * instruction, and the NEXT field holds the cache index of the branch
 * target so that a taken branch can be folded (fetched with no
 * bubble). This module is the single source of truth for those
 * semantics: the issue stage consults it for pairing decisions.
 */

#ifndef AURORA_ISA_PREDECODE_HH
#define AURORA_ISA_PREDECODE_HH

#include "trace/inst.hh"

namespace aurora::isa
{

/** Figure 3 fields attached to one decoded EVEN/ODD pair. */
struct PairFields
{
    /** A true dependency prohibits dual issue of the pair. */
    bool di = false;
    /** The pair contains a control flow instruction. */
    bool cont = false;
    /** Both slots access memory (a second structural DI source). */
    bool dual_mem = false;
    /** Cache index of the control target (valid when cont). */
    Addr next_index = 0;
};

/** Does @p second read a register written by @p first? */
bool trueDependency(const trace::Inst &first,
                    const trace::Inst &second);

/** Is @p even the EVEN slot of an aligned pair completed by @p odd? */
bool isAlignedPair(const trace::Inst &even, const trace::Inst &odd);

/**
 * May @p second issue in the same cycle as @p first?
 *
 * Encodes the §2 issue constraints: the two instructions must form an
 * aligned EVEN/ODD pair, must not carry a true dependency (the DI
 * bit), and only a single memory access instruction can execute per
 * cycle.
 */
bool dualIssueAllowed(const trace::Inst &first,
                      const trace::Inst &second);

/**
 * Compute the predecoded fields for a pair.
 *
 * @param even        the EVEN-slot instruction.
 * @param odd         the ODD-slot instruction.
 * @param index_mask  mask selecting the I-cache index bits for NEXT.
 */
PairFields predecodePair(const trace::Inst &even,
                         const trace::Inst &odd, Addr index_mask);

} // namespace aurora::isa

#endif // AURORA_ISA_PREDECODE_HH
