#include "encoding.hh"

#include <sstream>

#include "util/logging.hh"

namespace aurora::isa
{

using trace::Inst;
using trace::OpClass;

namespace
{

/** 5-bit register field, mapping NO_REG to $0. */
Word
regField(RegIndex reg)
{
    return reg == NO_REG ? 0u : (reg & 0x1fu);
}

Word
rtype(Word funct, RegIndex rs, RegIndex rt, RegIndex rd)
{
    return (OP_SPECIAL << 26) | (regField(rs) << 21) |
           (regField(rt) << 16) | (regField(rd) << 11) | funct;
}

Word
itype(Word opcode, RegIndex rs, RegIndex rt, std::uint16_t imm)
{
    return (opcode << 26) | (regField(rs) << 21) |
           (regField(rt) << 16) | imm;
}

Word
cop1(Word funct, RegIndex fs, RegIndex ft, RegIndex fd)
{
    return (OP_COP1 << 26) | (COP1_FMT_D << 21) |
           (regField(ft) << 16) | (regField(fs) << 11) |
           (regField(fd) << 6) | funct;
}

const char *
regName(RegIndex reg)
{
    static const char *names[32] = {
        "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
        "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
        "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
        "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};
    return names[reg & 0x1f];
}

} // namespace

Word
encode(const Inst &inst)
{
    switch (inst.op) {
      case OpClass::IntAlu:
        return rtype(FUNCT_ADDU, inst.src_a, inst.src_b, inst.dst);
      case OpClass::Load:
        return itype(OP_LW, inst.src_a, inst.dst, 0);
      case OpClass::Store:
        return itype(OP_SW, inst.src_a, inst.src_b, 0);
      case OpClass::Branch:
        return itype(OP_BNE, inst.src_a, inst.src_b, 0);
      case OpClass::Jump:
        return OP_J << 26;
      case OpClass::FpAdd:
        return cop1(FUNCT_FADD, inst.fsrc_a, inst.fsrc_b, inst.fdst);
      case OpClass::FpMul:
        return cop1(FUNCT_FMUL, inst.fsrc_a, inst.fsrc_b, inst.fdst);
      case OpClass::FpDiv:
        return cop1(FUNCT_FDIV, inst.fsrc_a, inst.fsrc_b, inst.fdst);
      case OpClass::FpCvt:
        return cop1(FUNCT_CVT_D_W, inst.fsrc_a, NO_REG, inst.fdst);
      case OpClass::FpLoad:
        return itype(OP_LWC1, inst.src_a, inst.fdst, 0);
      case OpClass::FpStore:
        return itype(OP_SWC1, inst.src_a, inst.fsrc_a, 0);
      case OpClass::FpMove:
        // mfc1 rt, fs: COP1 with rs field 0.
        return (OP_COP1 << 26) | (regField(inst.dst) << 16) |
               (regField(inst.fsrc_a) << 11);
      case OpClass::Nop:
        return rtype(FUNCT_SLL, 0, 0, 0);
      default:
        AURORA_PANIC("cannot encode op class ",
                     static_cast<int>(inst.op));
    }
}

Decoded
decode(Word word)
{
    Decoded out;
    const Word opcode = word >> 26;
    const auto rs = static_cast<RegIndex>((word >> 21) & 0x1f);
    const auto rt = static_cast<RegIndex>((word >> 16) & 0x1f);
    const auto rd = static_cast<RegIndex>((word >> 11) & 0x1f);
    out.imm = static_cast<std::int16_t>(word & 0xffff);

    switch (opcode) {
      case OP_SPECIAL:
        if ((word & 0x3f) == FUNCT_SLL && rd == 0) {
            out.op = OpClass::Nop;
        } else {
            out.op = OpClass::IntAlu;
            out.rs = rs;
            out.rt = rt;
            out.rd = rd;
        }
        return out;
      case OP_J:
      case OP_JAL:
        out.op = OpClass::Jump;
        return out;
      case OP_BEQ:
      case OP_BNE:
        out.op = OpClass::Branch;
        out.rs = rs;
        out.rt = rt;
        return out;
      case OP_ADDIU:
        out.op = OpClass::IntAlu;
        out.rs = rs;
        out.rt = rt;
        return out;
      case OP_LW:
        out.op = OpClass::Load;
        out.rs = rs;
        out.rt = rt;
        return out;
      case OP_SW:
        out.op = OpClass::Store;
        out.rs = rs;
        out.rt = rt;
        return out;
      case OP_LWC1:
        out.op = OpClass::FpLoad;
        out.rs = rs;
        out.ft = rt;
        return out;
      case OP_SWC1:
        out.op = OpClass::FpStore;
        out.rs = rs;
        out.ft = rt;
        return out;
      case OP_COP1: {
        if (rs == 0) {
            out.op = OpClass::FpMove;
            out.rt = rt;
            out.fs = rd;
            return out;
        }
        const Word funct = word & 0x3f;
        out.ft = rt;
        out.fs = rd;
        out.fd = static_cast<RegIndex>((word >> 6) & 0x1f);
        switch (funct) {
          case FUNCT_FADD: out.op = OpClass::FpAdd; break;
          case FUNCT_FMUL: out.op = OpClass::FpMul; break;
          case FUNCT_FDIV: out.op = OpClass::FpDiv; break;
          case FUNCT_CVT_D_W: out.op = OpClass::FpCvt; break;
          default:
            AURORA_PANIC("unknown COP1 funct ", funct);
        }
        return out;
      }
      default:
        AURORA_PANIC("cannot decode opcode ", opcode);
    }
}

std::string
disassemble(Word word)
{
    const Decoded d = decode(word);
    std::ostringstream os;
    switch (d.op) {
      case OpClass::Nop:
        os << "nop";
        break;
      case OpClass::IntAlu:
        if ((word >> 26) == OP_ADDIU)
            os << "addiu " << regName(d.rt) << ", " << regName(d.rs)
               << ", " << d.imm;
        else
            os << "addu " << regName(d.rd) << ", " << regName(d.rs)
               << ", " << regName(d.rt);
        break;
      case OpClass::Load:
        os << "lw " << regName(d.rt) << ", " << d.imm << "("
           << regName(d.rs) << ")";
        break;
      case OpClass::Store:
        os << "sw " << regName(d.rt) << ", " << d.imm << "("
           << regName(d.rs) << ")";
        break;
      case OpClass::Branch:
        os << "bne " << regName(d.rs) << ", " << regName(d.rt)
           << ", " << d.imm;
        break;
      case OpClass::Jump:
        os << "j";
        break;
      case OpClass::FpAdd:
        os << "add.d $f" << int(d.fd) << ", $f" << int(d.fs)
           << ", $f" << int(d.ft);
        break;
      case OpClass::FpMul:
        os << "mul.d $f" << int(d.fd) << ", $f" << int(d.fs)
           << ", $f" << int(d.ft);
        break;
      case OpClass::FpDiv:
        os << "div.d $f" << int(d.fd) << ", $f" << int(d.fs)
           << ", $f" << int(d.ft);
        break;
      case OpClass::FpCvt:
        os << "cvt.d.w $f" << int(d.fd) << ", $f" << int(d.fs);
        break;
      case OpClass::FpLoad:
        os << "lwc1 $f" << int(d.ft) << ", " << d.imm << "("
           << regName(d.rs) << ")";
        break;
      case OpClass::FpStore:
        os << "swc1 $f" << int(d.ft) << ", " << d.imm << "("
           << regName(d.rs) << ")";
        break;
      case OpClass::FpMove:
        os << "mfc1 " << regName(d.rt) << ", $f" << int(d.fs);
        break;
      default:
        os << "<unknown>";
    }
    return os.str();
}

} // namespace aurora::isa
