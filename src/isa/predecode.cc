#include "predecode.hh"

#include "util/logging.hh"

namespace aurora::isa
{

using trace::Inst;

bool
trueDependency(const Inst &first, const Inst &second)
{
    // Integer result feeding an integer source. Register 0 is
    // hardwired zero on MIPS and never a real dependency.
    if (first.dst != NO_REG && first.dst != 0 &&
        (second.src_a == first.dst || second.src_b == first.dst))
        return true;
    // FP result feeding an FP source.
    if (first.fdst != NO_REG &&
        (second.fsrc_a == first.fdst || second.fsrc_b == first.fdst))
        return true;
    return false;
}

bool
isAlignedPair(const Inst &even, const Inst &odd)
{
    return (even.pc & 0x4u) == 0 && odd.pc == even.pc + 4;
}

bool
dualIssueAllowed(const Inst &first, const Inst &second)
{
    if (!isAlignedPair(first, second))
        return false;
    if (trueDependency(first, second))
        return false;
    if (trace::isMem(first.op) && trace::isMem(second.op))
        return false;
    return true;
}

PairFields
predecodePair(const Inst &even, const Inst &odd, Addr index_mask)
{
    AURORA_ASSERT(isAlignedPair(even, odd),
                  "predecode requires an aligned EVEN/ODD pair");
    PairFields fields;
    fields.di = trueDependency(even, odd);
    fields.dual_mem =
        trace::isMem(even.op) && trace::isMem(odd.op);
    // The MIPS ISA prohibits a branch in a branch delay slot, so at
    // most one slot is control flow (§2).
    const bool even_ctl = trace::isControl(even.op);
    const bool odd_ctl = trace::isControl(odd.op);
    AURORA_ASSERT(!(even_ctl && odd_ctl),
                  "two control instructions in one pair");
    fields.cont = even_ctl || odd_ctl;
    if (fields.cont) {
        // The branch target's cache index: the delay slot follows
        // the branch, so the dynamic successor of the *delay slot*
        // is the folded target.
        const Inst &ctl = even_ctl ? even : odd;
        if (ctl.taken) {
            // For an even-slot branch the delay slot is the odd
            // slot, whose dynamic successor is the target. For an
            // odd-slot branch the delay slot lives in the following
            // pair; the predecoder can only record the delay slot's
            // address and the fetch unit resolves the target from
            // its successor chain.
            const Addr target =
                even_ctl ? odd.next_pc : ctl.next_pc;
            fields.next_index = target & index_mask;
        }
    }
    return fields;
}

} // namespace aurora::isa
