#include "trace_stats.hh"

#include <sstream>
#include <unordered_set>

namespace aurora::trace
{

namespace
{
constexpr Addr LINE_SHIFT = 5; // 32-byte lines
} // namespace

TraceStats
analyze(TraceSource &src, Count limit)
{
    TraceStats stats;
    std::unordered_set<Addr> pcs;
    std::unordered_set<Addr> code_lines;
    std::unordered_set<Addr> data_lines;

    Inst inst;
    Addr prev_data_line = 0;
    bool have_prev_data = false;
    while (stats.insts < limit && src.next(inst)) {
        ++stats.insts;
        ++stats.per_class[static_cast<std::size_t>(inst.op)];
        pcs.insert(inst.pc);
        code_lines.insert(inst.pc >> LINE_SHIFT);
        if (inst.redirectsFetch())
            ++stats.taken_branches;
        if (isMem(inst.op)) {
            ++stats.data_refs;
            const Addr line = inst.eff_addr >> LINE_SHIFT;
            data_lines.insert(line);
            if (have_prev_data &&
                (line == prev_data_line || line == prev_data_line + 1))
                ++stats.seq_data_refs;
            prev_data_line = line;
            have_prev_data = true;
        }
    }
    stats.unique_pcs = pcs.size();
    stats.unique_code_lines = code_lines.size();
    stats.unique_data_lines = data_lines.size();
    return stats;
}

std::string
TraceStats::summary() const
{
    std::ostringstream os;
    os << "instructions: " << insts << '\n';
    for (std::size_t c = 0; c < NUM_OP_CLASSES; ++c) {
        const auto op = static_cast<OpClass>(c);
        if (per_class[c] == 0)
            continue;
        os << "  " << opClassName(op) << ": " << per_class[c] << " ("
           << static_cast<int>(frac(op) * 1000) / 10.0 << "%)\n";
    }
    os << "  unique pcs: " << unique_pcs
       << " code lines: " << unique_code_lines
       << " data lines: " << unique_data_lines << '\n';
    os << "  taken transfers: " << taken_branches
       << " data refs: " << data_refs << '\n';
    return os.str();
}

} // namespace aurora::trace
