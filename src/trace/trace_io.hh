/**
 * @file
 * Binary trace file format.
 *
 * A compact fixed-record format so captured synthetic traces can be
 * stored, replayed and shared between tools (the original study
 * replayed captured MIPS traces the same way). Layout:
 *
 *   header: magic "AUR3" | u32 version | u64 record count
 *   records: packed Inst fields, little-endian, 24 bytes each
 */

#ifndef AURORA_TRACE_TRACE_IO_HH
#define AURORA_TRACE_TRACE_IO_HH

#include <string>
#include <vector>

#include "inst.hh"
#include "trace_source.hh"

namespace aurora::trace
{

/** Current trace file format version. */
inline constexpr std::uint32_t TRACE_FORMAT_VERSION = 1;

/**
 * Write a trace to @p path.
 *
 * Throws util::SimError (BadTrace) if the file cannot be created or a
 * write comes up short — environment problems, not simulator bugs.
 */
void writeTrace(const std::string &path, const std::vector<Inst> &insts);

/**
 * Read a complete trace from @p path.
 *
 * Throws util::SimError (BadTrace) on a missing file, corrupt header,
 * unsupported version, out-of-range op class, or truncated body, with
 * a message naming the offending file and field.
 */
std::vector<Inst> readTrace(const std::string &path);

/**
 * TraceSource that streams records from a trace file.
 *
 * The constructor validates the header and next() validates each
 * record; both throw util::SimError (BadTrace) on corruption so a
 * damaged file is never silently replayed as a shorter trace.
 */
class FileTraceSource : public TraceSource
{
  public:
    explicit FileTraceSource(const std::string &path);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    bool next(Inst &out) override;

    /** Total records the header promises. */
    Count recordCount() const { return count_; }

  private:
    struct Impl;
    Impl *impl_;
    Count count_ = 0;
};

} // namespace aurora::trace

#endif // AURORA_TRACE_TRACE_IO_HH
