#include "synthetic_workload.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace aurora::trace
{

namespace
{

/** Integer destination registers cycle through r8..r23. */
constexpr RegIndex INT_DST_BASE = 8;
constexpr int INT_DST_COUNT = 16;
/** FP destinations cycle through even registers f0..f30. */
constexpr int FP_DST_COUNT = 16;

} // namespace

SyntheticWorkload::SyntheticWorkload(WorkloadProfile profile)
    : profile_(std::move(profile)), rng_(profile_.seed)
{
    AURORA_ASSERT(profile_.num_hot_loops >= 1,
                  "workload needs at least one hot loop");
    AURORA_ASSERT(profile_.hot_code_bytes >=
                      static_cast<std::uint32_t>(
                          profile_.num_hot_loops * 8 * 4),
                  "hot code region too small for ",
                  profile_.num_hot_loops, " loops");
    AURORA_ASSERT(profile_.seq_fraction + profile_.chase_fraction <=
                      1.0 + 1e-9,
                  "heap pattern fractions exceed 1");
    AURORA_ASSERT(profile_.hot_data_bytes >= 64,
                  "hot data region must hold at least 8 doubles");

    // ---- build the shared memory slot pools ----
    // Loop bodies reference a bounded set of arrays/structures, not a
    // fresh one per instruction: pooling keeps the active data
    // working set realistic and bounded.
    const unsigned pool_size = std::max<unsigned>(
        8, 3 * static_cast<unsigned>(profile_.num_hot_loops));
    for (unsigned i = 0; i < pool_size; ++i) {
        loadSlotPool_.push_back(static_cast<int>(memSlots_.size()));
        memSlots_.push_back(makeMemSlot(/*for_store=*/false));
    }
    for (unsigned i = 0; i < pool_size / 2 + 1; ++i) {
        storeSlotPool_.push_back(static_cast<int>(memSlots_.size()));
        memSlots_.push_back(makeMemSlot(/*for_store=*/true));
    }

    // ---- carve the code region: hot loop bodies then cold code ----
    const std::uint32_t hot_insts = profile_.hot_code_bytes / 4;
    const auto num_loops =
        static_cast<std::uint32_t>(profile_.num_hot_loops);
    const std::uint32_t per_loop = hot_insts / num_loops;
    Addr next_base = CODE_BASE;
    double mean_body = 0.0;
    for (std::uint32_t i = 0; i < num_loops; ++i) {
        Loop loop;
        loop.base = next_base;
        // Vary body sizes around the mean so loops are distinct.
        const std::uint64_t lo = std::max<std::uint64_t>(6, per_loop / 2);
        const std::uint64_t hi = std::max<std::uint64_t>(lo, per_loop * 3 / 2);
        const auto payload =
            static_cast<std::size_t>(rng_.range(lo, hi)) - 2;

        // Each loop works on a small set of arrays/structures; this
        // bounds the number of concurrent reference streams per
        // episode, which is what lets a handful of stream buffers
        // track them.
        std::vector<int> loop_loads, loop_stores;
        for (int k = 0; k < 3; ++k)
            loop_loads.push_back(
                loadSlotPool_[rng_.uniform(loadSlotPool_.size())]);
        for (int k = 0; k < 2; ++k)
            loop_stores.push_back(
                storeSlotPool_[rng_.uniform(storeSlotPool_.size())]);

        // Count-based body composition: every loop body carries the
        // profile's instruction mix (per-op sampling would leave the
        // dominant loops with wildly skewed mixes).
        auto count_for = [&](double frac) {
            const double x = frac * static_cast<double>(payload);
            auto n = static_cast<std::uint64_t>(x);
            if (rng_.chance(x - static_cast<double>(n)))
                ++n;
            return n;
        };
        std::vector<OpClass> classes;
        for (std::uint64_t k = count_for(profile_.frac_load); k; --k)
            classes.push_back(OpClass::Load);
        for (std::uint64_t k = count_for(profile_.frac_store); k; --k)
            classes.push_back(OpClass::Store);
        std::uint64_t fp_arith = 0;
        if (profile_.floating_point) {
            for (std::uint64_t k = count_for(profile_.frac_fp_load);
                 k; --k)
                classes.push_back(OpClass::FpLoad);
            for (std::uint64_t k = count_for(profile_.frac_fp_store);
                 k; --k)
                classes.push_back(OpClass::FpStore);
            fp_arith = count_for(profile_.frac_fp_arith);
        }
        while (classes.size() + fp_arith < payload)
            classes.push_back(rng_.chance(profile_.inline_branch_frac)
                                  ? OpClass::Branch
                                  : OpClass::IntAlu);
        // Fisher-Yates shuffle of the non-FP-arith ops.
        for (std::size_t k = classes.size(); k > 1; --k) {
            const std::size_t j = rng_.uniform(k);
            std::swap(classes[k - 1], classes[j]);
        }
        // FP arithmetic goes in as dense runs (unrolled kernels).
        while (fp_arith > 0) {
            const double run_mean = std::max(1.0, profile_.fp_run_len);
            std::uint64_t run = std::min<std::uint64_t>(
                fp_arith, rng_.geometric(1.0 / run_mean));
            const std::size_t pos = rng_.uniform(classes.size() + 1);
            classes.insert(classes.begin() +
                               static_cast<std::ptrdiff_t>(pos),
                           run, OpClass::FpAdd);
            for (std::uint64_t k = 0; k < run; ++k)
                classes[pos + k] = sampleFpArith();
            fp_arith -= run;
        }

        for (OpClass cls : classes) {
            StaticOp sop;
            sop.op = cls;
            if (cls == OpClass::Branch)
                sop.inline_branch = true;
            if (isMem(cls)) {
                const auto &subset =
                    isStore(cls) ? loop_stores : loop_loads;
                sop.mem_slot = subset[rng_.uniform(subset.size())];
            }
            loop.body.push_back(sop);
            // FP accesses are split into two 32-bit halves unless the
            // double-word extension is enabled (§5.9).
            if (!profile_.double_word_mem &&
                (cls == OpClass::FpLoad || cls == OpClass::FpStore)) {
                StaticOp half = sop;
                half.second_half = true;
                loop.body.push_back(half);
            }
        }
        // Loop-back branch and its architectural delay slot.
        loop.body.push_back({OpClass::Branch, -1, false, false});
        loop.body.push_back(
            {rng_.chance(profile_.delay_nop_frac) ? OpClass::Nop
                                                  : OpClass::IntAlu,
             -1, false, false});

        // Zipf-like weights: earlier loops dominate execution time.
        loop.weight = 1.0 / std::pow(static_cast<double>(i + 1), 0.8);
        loop.mean_trips =
            profile_.mean_trips * (0.5 + rng_.uniformReal());
        mean_body += static_cast<double>(loop.body.size());

        // Footprint includes the exit stub (jump + delay slot).
        next_base +=
            static_cast<Addr>((loop.body.size() + 2) * 4);
        loops_.push_back(std::move(loop));
    }
    mean_body /= static_cast<double>(num_loops);
    for (const Loop &loop : loops_)
        loopWeights_.push_back(loop.weight);

    coldBase_ = (next_base + 63u) & ~Addr{63};
    coldBytes_ = std::max<std::uint32_t>(profile_.cold_code_bytes, 256);

    meanHotEpisodeLen_ =
        std::max(1.0, mean_body * profile_.mean_trips);

    enterHotEpisode();
}

OpClass
SyntheticWorkload::sampleOpClass()
{
    if (fpRunLeft_ > 0) {
        --fpRunLeft_;
        return sampleFpArith();
    }
    const double p = rng_.uniformReal();
    double acc = profile_.frac_load;
    if (p < acc)
        return OpClass::Load;
    acc += profile_.frac_store;
    if (p < acc)
        return OpClass::Store;
    if (profile_.floating_point) {
        acc += profile_.frac_fp_load;
        if (p < acc)
            return OpClass::FpLoad;
        acc += profile_.frac_fp_store;
        if (p < acc)
            return OpClass::FpStore;
        // FP arithmetic arrives in runs of mean fp_run_len; the
        // trigger probability is scaled down so the overall mix
        // fraction is preserved.
        const double run = std::max(1.0, profile_.fp_run_len);
        acc += profile_.frac_fp_arith / run;
        if (p < acc) {
            fpRunLeft_ = rng_.geometric(1.0 / run) - 1;
            return sampleFpArith();
        }
    }
    return OpClass::IntAlu;
}

OpClass
SyntheticWorkload::sampleFpArith()
{
    const std::size_t pick = rng_.weighted(
        {profile_.fp_add_w, profile_.fp_mul_w, profile_.fp_div_w,
         profile_.fp_cvt_w});
    OpClass op;
    switch (pick) {
      case 0: op = OpClass::FpAdd; break;
      case 1: op = OpClass::FpMul; break;
      case 2: op = OpClass::FpDiv; break;
      default: op = OpClass::FpCvt; break;
    }
    // Vector kernels interleave multiplies and adds (a*x + y): avoid
    // long same-unit runs, which neither real code nor the iterative
    // multiplier of §5.10 would tolerate.
    if (op == lastFpArith_ &&
        (op == OpClass::FpAdd || op == OpClass::FpMul) &&
        rng_.chance(0.7)) {
        op = op == OpClass::FpAdd ? OpClass::FpMul : OpClass::FpAdd;
    }
    lastFpArith_ = op;
    return op;
}

int
SyntheticWorkload::pickSlot(OpClass op)
{
    const auto &pool = isStore(op) ? storeSlotPool_ : loadSlotPool_;
    return pool[rng_.uniform(pool.size())];
}

SyntheticWorkload::MemSlot
SyntheticWorkload::makeMemSlot(bool for_store)
{
    MemSlot slot;
    const double stack_p = for_store ? profile_.store_stack_frac
                                     : profile_.stack_fraction;
    if (rng_.chance(stack_p)) {
        slot.pattern = MemPattern::Hot;
        return slot;
    }
    const double seq = profile_.seq_fraction;
    const double chase = profile_.chase_fraction;
    const double stride = std::max(0.0, 1.0 - seq - chase);
    switch (rng_.weighted({seq, chase, stride})) {
      case 0: {
        slot.pattern = MemPattern::Stream;
        const std::uint32_t window = std::min(
            profile_.stream_window_bytes, profile_.total_data_bytes);
        const std::uint64_t span =
            profile_.total_data_bytes - window + 1;
        slot.base = HEAP_BASE +
                    (static_cast<Addr>(rng_.uniform(span)) & ~Addr{7});
        slot.cursor = slot.base;
        slot.region = window;
        break;
      }
      case 1:
        slot.pattern = MemPattern::Chase;
        break;
      default: {
        slot.pattern = MemPattern::Stride;
        const std::uint32_t region =
            std::min<std::uint32_t>(profile_.stride_region_bytes,
                                    profile_.total_data_bytes);
        // Strided walks share a small pool of arrays (programs sweep
        // the same few structures), keeping the strided working set
        // bounded instead of growing with the static slot count.
        if (stridePool_.size() < 4) {
            const std::uint64_t span =
                profile_.total_data_bytes - region + 1;
            stridePool_.push_back(
                HEAP_BASE +
                (static_cast<Addr>(rng_.uniform(span)) & ~Addr{7}));
        }
        slot.base = stridePool_[rng_.uniform(stridePool_.size())];
        slot.cursor = slot.base;
        slot.region = region;
        slot.stride = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(
                8, rng_.range(
                       static_cast<std::uint64_t>(
                           profile_.stride_bytes / 2),
                       static_cast<std::uint64_t>(
                           profile_.stride_bytes * 3 / 2)))) &
            ~0x7u;
        if (slot.stride == 0)
            slot.stride = 8;
        break;
      }
    }
    return slot;
}

Addr
SyntheticWorkload::nextAddr(MemSlot &slot, unsigned size, bool is_store)
{
    // Stores draw from a narrower range than loads: program outputs
    // (indices, accumulators, result buffers) are more concentrated
    // than inputs, which is what makes the write cache effective.
    const std::uint64_t conc =
        is_store ? std::max(1u, profile_.store_concentration) : 1;
    switch (slot.pattern) {
      case MemPattern::Hot: {
        const std::uint64_t words =
            std::max<std::uint64_t>(8, profile_.hot_data_bytes /
                                           size / conc);
        const std::uint64_t idx = rng_.zipf(words, profile_.zipf_s);
        return STACK_TOP - profile_.hot_data_bytes +
               static_cast<Addr>(idx * size);
      }
      case MemPattern::Stream: {
        const Addr a = slot.cursor;
        slot.cursor += size;
        if (slot.cursor >= slot.base + slot.region) {
            const std::uint64_t span =
                profile_.total_data_bytes - slot.region + 1;
            slot.base =
                HEAP_BASE +
                (static_cast<Addr>(rng_.uniform(span)) & ~Addr{7});
            slot.cursor = slot.base;
        }
        return a;
      }
      case MemPattern::Stride: {
        const Addr a = slot.cursor;
        slot.cursor += slot.stride;
        if (slot.cursor >= slot.base + slot.region)
            slot.cursor = slot.base;
        return a;
      }
      case MemPattern::Chase:
      default: {
        // Two-level chase: mostly the hot node set at the front of
        // the heap, occasionally a uniform strike across the region.
        if (rng_.chance(profile_.chase_hot_frac)) {
            const std::uint64_t units = std::max<std::uint64_t>(
                8, std::min<std::uint32_t>(profile_.chase_hot_bytes,
                                           profile_.total_data_bytes) /
                       size / conc);
            const std::uint64_t idx =
                rng_.zipf(units, profile_.zipf_s);
            return HEAP_BASE + static_cast<Addr>(idx * size);
        }
        const std::uint64_t units =
            std::max<std::uint64_t>(8,
                                    profile_.total_data_bytes / size);
        return HEAP_BASE +
               static_cast<Addr>(rng_.uniform(units) * size);
      }
    }
}

void
SyntheticWorkload::assignOperands(Inst &inst, int mem_slot)
{
    auto random_int_src = [&]() -> RegIndex {
        return static_cast<RegIndex>(1 + rng_.uniform(25));
    };
    auto random_fp_src = [&]() -> RegIndex {
        return static_cast<RegIndex>(2 * rng_.uniform(FP_DST_COUNT));
    };
    auto next_int_dst = [&]() -> RegIndex {
        const auto r = static_cast<RegIndex>(
            INT_DST_BASE + dstCursor_);
        dstCursor_ = (dstCursor_ + 1) % INT_DST_COUNT;
        return r;
    };
    auto next_fp_dst = [&]() -> RegIndex {
        const auto r = static_cast<RegIndex>(2 * fdstCursor_);
        fdstCursor_ = (fdstCursor_ + 1) % FP_DST_COUNT;
        return r;
    };
    auto maybe_load_use = [&]() -> RegIndex {
        if (sinceLoad_ <= 2 && lastLoadDst_ != NO_REG &&
            rng_.chance(profile_.load_use_frac)) {
            const RegIndex r = lastLoadDst_;
            // Real code usually consumes a load value once soon
            // after the load; avoid repeated phantom uses.
            lastLoadDst_ = NO_REG;
            return r;
        }
        return NO_REG;
    };
    auto dep_src = [&]() -> RegIndex {
        if (prevDst_ != NO_REG && rng_.chance(profile_.imm_dep_frac))
            return prevDst_;
        return random_int_src();
    };

    switch (inst.op) {
      case OpClass::IntAlu:
        inst.src_a = dep_src();
        inst.src_b = maybe_load_use();
        if (inst.src_b == NO_REG && rng_.chance(0.6))
            inst.src_b = random_int_src();
        inst.dst = next_int_dst();
        prevDst_ = inst.dst;
        break;
      case OpClass::Load:
        inst.src_a = random_int_src();
        inst.dst = next_int_dst();
        prevDst_ = inst.dst;
        lastLoadDst_ = inst.dst;
        sinceLoad_ = 0;
        inst.size = 4;
        break;
      case OpClass::Store:
        inst.src_a = random_int_src();
        inst.src_b = maybe_load_use();
        if (inst.src_b == NO_REG)
            inst.src_b =
                prevDst_ != NO_REG && rng_.chance(profile_.imm_dep_frac)
                    ? prevDst_
                    : random_int_src();
        inst.size = 4;
        break;
      case OpClass::Branch:
        inst.src_a = dep_src();
        inst.src_b = maybe_load_use();
        break;
      case OpClass::Jump:
        break;
      case OpClass::FpAdd:
      case OpClass::FpMul:
      case OpClass::FpDiv:
      case OpClass::FpCvt:
        inst.fsrc_a =
            prevFdst_ != NO_REG && rng_.chance(profile_.fp_chain_frac)
                ? prevFdst_
                : random_fp_src();
        if (sinceFpLoad_ <= 4 && lastFpLoadDst_ != NO_REG &&
            rng_.chance(profile_.fp_load_use_frac)) {
            inst.fsrc_b = lastFpLoadDst_;
            lastFpLoadDst_ = NO_REG;
        } else {
            inst.fsrc_b = random_fp_src();
        }
        inst.fdst = next_fp_dst();
        prevFdst_ = inst.fdst;
        break;
      case OpClass::FpLoad:
        inst.src_a = random_int_src();
        inst.fdst = next_fp_dst();
        lastFpLoadDst_ = inst.fdst;
        sinceFpLoad_ = 0;
        inst.size = profile_.double_word_mem ? 8 : 4;
        break;
      case OpClass::FpStore:
        inst.src_a = random_int_src();
        inst.fsrc_a =
            prevFdst_ != NO_REG && rng_.chance(profile_.fp_chain_frac)
                ? prevFdst_
                : random_fp_src();
        inst.size = profile_.double_word_mem ? 8 : 4;
        break;
      case OpClass::FpMove:
      case OpClass::Nop:
      default:
        break;
    }

    if (isMem(inst.op)) {
        AURORA_ASSERT(mem_slot >= 0, "memory op without a slot");
        Addr addr = nextAddr(memSlots_[static_cast<std::size_t>(
                                 mem_slot)],
                             inst.size, isStore(inst.op));
        if (isStore(inst.op) && storesSeen_ > 0) {
            if (rng_.chance(profile_.store_burst_frac)) {
                // Continue filling the current structure/buffer.
                addr = lastStoreAddr_ + inst.size;
            } else if (rng_.chance(profile_.store_rewrite_frac)) {
                const std::size_t n = std::min<std::size_t>(
                    storesSeen_, recentStores_.size());
                addr = recentStores_[rng_.uniform(n)];
            }
        } else if (isLoad(inst.op) && storesSeen_ > 0 &&
                   rng_.chance(profile_.load_raw_frac)) {
            // Spill/reload: re-read a recently written word.
            const std::size_t n = std::min<std::size_t>(
                storesSeen_, recentStores_.size());
            addr = recentStores_[rng_.uniform(n)];
        }
        inst.eff_addr = addr & ~Addr{inst.size - 1u};
        if (isStore(inst.op)) {
            recentStores_[storeRing_] = inst.eff_addr;
            storeRing_ = (storeRing_ + 1) % recentStores_.size();
            lastStoreAddr_ = inst.eff_addr;
            ++storesSeen_;
        }
    }
}

void
SyntheticWorkload::enterHotEpisode()
{
    inHot_ = true;
    curLoop_ = rng_.weighted(loopWeights_);
    const Loop &loop = loops_[curLoop_];
    tripsLeft_ =
        std::max<std::uint64_t>(1, rng_.geometric(1.0 / loop.mean_trips));
    bodyPos_ = 0;
}

void
SyntheticWorkload::enterColdEpisode()
{
    if (profile_.hot_fraction >= 0.999) {
        enterHotEpisode();
        return;
    }
    inHot_ = false;
    // With probability 1/4 after each hot episode we take a cold
    // excursion, so size it to hold the hot/cold instruction ratio.
    const double mean_cold = meanHotEpisodeLen_ *
                             (1.0 - profile_.hot_fraction) /
                             profile_.hot_fraction / 0.25;
    coldLeft_ = std::max<std::uint64_t>(
        8, rng_.geometric(1.0 / std::max(8.0, mean_cold)));
    coldPc_ = pickColdTarget();
    runLeft_ = std::max<std::uint64_t>(
        3, rng_.geometric(1.0 / profile_.cold_run_len) + 2);
}

Addr
SyntheticWorkload::pickColdTarget()
{
    if (targetsSeeded_ && rng_.chance(profile_.cold_target_reuse))
        return recentTargets_[rng_.uniform(recentTargets_.size())];
    const Addr target =
        coldBase_ +
        static_cast<Addr>(rng_.uniform(coldBytes_ / 4) * 4);
    recentTargets_[targetRing_] = target;
    targetRing_ = (targetRing_ + 1) % recentTargets_.size();
    if (targetRing_ == 0)
        targetsSeeded_ = true;
    if (!targetsSeeded_) {
        // Until the ring fills, reuse may pick a zero slot; seed all.
        for (Addr &slot : recentTargets_)
            if (slot == 0)
                slot = target;
        targetsSeeded_ = true;
    }
    return target;
}

Inst
SyntheticWorkload::stepHot()
{
    Loop &loop = loops_[curLoop_];
    const std::size_t n = loop.body.size();
    Inst inst;

    // Exit stub: jump + delay slot placed right after the body.
    if (bodyPos_ == n) {
        inst.pc = loop.base + static_cast<Addr>(4 * n);
        inst.op = OpClass::Jump;
        inst.taken = true;
        ++bodyPos_;
        return inst;
    }
    if (bodyPos_ == n + 1) {
        inst.pc = loop.base + static_cast<Addr>(4 * (n + 1));
        inst.op = rng_.chance(profile_.delay_nop_frac)
                      ? OpClass::Nop
                      : OpClass::IntAlu;
        if (inst.op == OpClass::IntAlu)
            assignOperands(inst, -1);
        // Episode boundary: choose the next episode.
        if (rng_.chance(0.25))
            enterColdEpisode();
        else
            enterHotEpisode();
        return inst;
    }

    const StaticOp &sop = loop.body[bodyPos_];
    inst.pc = loop.base + static_cast<Addr>(4 * bodyPos_);
    inst.op = sop.op;

    if (bodyPos_ == n - 2) {
        // Loop-back conditional branch.
        AURORA_ASSERT(inst.op == OpClass::Branch,
                      "loop body must end with branch + delay slot");
        inst.taken = tripsLeft_ > 1;
        assignOperands(inst, -1);
        ++bodyPos_;
        return inst;
    }
    if (bodyPos_ == n - 1) {
        // Loop-back delay slot.
        if (inst.op == OpClass::IntAlu)
            assignOperands(inst, -1);
        if (tripsLeft_ > 1) {
            --tripsLeft_;
            bodyPos_ = 0;
        } else {
            tripsLeft_ = 0;
            ++bodyPos_; // fall into the exit stub
        }
        return inst;
    }

    if (sop.inline_branch) {
        inst.taken = false;
        assignOperands(inst, -1);
    } else if (sop.second_half) {
        // Second 32-bit half of an FP load/store pair: the address is
        // the odd word of the same double.
        assignOperands(inst, sop.mem_slot);
        inst.eff_addr = lastFpPairAddr_ + 4;
    } else {
        assignOperands(inst, sop.mem_slot);
        if (!profile_.double_word_mem &&
            (inst.op == OpClass::FpLoad || inst.op == OpClass::FpStore))
            lastFpPairAddr_ = inst.eff_addr;
    }
    ++bodyPos_;
    return inst;
}

Inst
SyntheticWorkload::stepCold()
{
    Inst inst;
    inst.pc = coldPc_;

    if (runLeft_ == 2) {
        inst.op = OpClass::Branch;
        inst.taken = true;
        assignOperands(inst, -1);
        coldBranchTarget_ = pickColdTarget();
    } else if (runLeft_ == 1) {
        inst.op = rng_.chance(profile_.delay_nop_frac)
                      ? OpClass::Nop
                      : OpClass::IntAlu;
        if (inst.op == OpClass::IntAlu)
            assignOperands(inst, -1);
    } else {
        inst.op = sampleOpClass();
        // Cold FP pairs are not expanded; keep cold code simple.
        int slot = -1;
        if (isMem(inst.op))
            slot = pickSlot(inst.op);
        assignOperands(inst, slot);
    }

    // Advance the walk. Episode transitions happen only at run
    // boundaries so a branch/delay-slot pair is never split.
    bool run_ended = false;
    if (runLeft_ == 1) {
        coldPc_ = coldBranchTarget_;
        runLeft_ = std::max<std::uint64_t>(
            3, rng_.geometric(1.0 / profile_.cold_run_len) + 2);
        run_ended = true;
    } else {
        --runLeft_;
        coldPc_ = coldBase_ +
                  ((coldPc_ + 4 - coldBase_) % coldBytes_);
    }

    if (coldLeft_ > 0)
        --coldLeft_;
    if (coldLeft_ == 0 && run_ended)
        enterHotEpisode();
    return inst;
}

Inst
SyntheticWorkload::produceRaw()
{
    ++sinceLoad_;
    ++sinceFpLoad_;
    return inHot_ ? stepHot() : stepCold();
}

bool
SyntheticWorkload::next(Inst &out)
{
    if (!havePending_) {
        pending_ = produceRaw();
        havePending_ = true;
    }
    Inst cur = pending_;
    pending_ = produceRaw();
    cur.next_pc = pending_.pc;
    out = cur;
    ++produced_;
    return true;
}

} // namespace aurora::trace
