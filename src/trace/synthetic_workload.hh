/**
 * @file
 * Execution-based synthetic workload generator.
 *
 * Rather than sampling instructions independently (which would destroy
 * the locality every Aurora III mechanism depends on), the generator
 * builds a static program image — a set of hot loop bodies plus a cold
 * code region — and then *executes* it: loops run for sampled trip
 * counts, cold code is walked in sequential runs broken by control
 * transfers, memory slots carry persistent cursors (sequential streams,
 * strided walks, pointer chases, hot stack words). The resulting
 * dynamic stream has genuine loop reuse, sequential I-miss patterns,
 * coalescible store bursts and realistic dependency chains.
 *
 * MIPS branch-delay-slot semantics are modelled: every control transfer
 * is followed by its architectural delay slot instruction before the
 * target executes, as on the real R3000.
 */

#ifndef AURORA_TRACE_SYNTHETIC_WORKLOAD_HH
#define AURORA_TRACE_SYNTHETIC_WORKLOAD_HH

#include <array>
#include <vector>

#include "trace_source.hh"
#include "util/rng.hh"
#include "workload_profile.hh"

namespace aurora::trace
{

/** Infinite TraceSource driven by a WorkloadProfile. */
class SyntheticWorkload : public TraceSource
{
  public:
    /** Simulated virtual address map (MIPS-like layout). */
    static constexpr Addr CODE_BASE = 0x00400000;
    static constexpr Addr HEAP_BASE = 0x20000000;
    static constexpr Addr STACK_TOP = 0x7fff0000;

    /** Build the static program image for @p profile. */
    explicit SyntheticWorkload(WorkloadProfile profile);

    /** Always produces an instruction (the stream is unbounded). */
    bool next(Inst &out) override;

    const WorkloadProfile &profile() const { return profile_; }

    /** Instructions produced so far. */
    Count produced() const { return produced_; }

  private:
    /** Persistent address-generation behaviour of one memory slot. */
    enum class MemPattern : std::uint8_t { Stream, Stride, Chase, Hot };

    struct MemSlot
    {
        MemPattern pattern = MemPattern::Hot;
        Addr base = 0;      ///< current window/region base
        Addr cursor = 0;    ///< next address for stream/stride
        Addr region = 0;    ///< region size for stride wrap
        std::uint32_t stride = 0;
    };

    /** One static instruction of a hot loop body. */
    struct StaticOp
    {
        OpClass op = OpClass::IntAlu;
        int mem_slot = -1;        ///< index into memSlots_, -1 if none
        bool second_half = false; ///< second 32-bit half of an FP pair
        bool inline_branch = false; ///< not-taken test branch
    };

    struct Loop
    {
        Addr base = 0;
        std::vector<StaticOp> body; ///< ends with branch + delay slot
        double weight = 1.0;
        double mean_trips = 16.0;
    };

    /** Produce the next instruction without next_pc patched. */
    Inst produceRaw();
    /** Emit one hot-loop instruction and advance loop state. */
    Inst stepHot();
    /** Emit one cold-code instruction and advance walk state. */
    Inst stepCold();

    /** Sample an operation class from the dynamic mix. */
    OpClass sampleOpClass();
    /** Sample one FP arithmetic class from the unit weights. */
    OpClass sampleFpArith();
    /** Create a memory slot with a sampled pattern. */
    MemSlot makeMemSlot(bool for_store);
    /** Pick a pooled slot index for a static op of class @p op. */
    int pickSlot(OpClass op);
    /** Next effective address for @p slot with access @p size. */
    Addr nextAddr(MemSlot &slot, unsigned size, bool is_store);
    /** Fill register operands and memory address for @p inst. */
    void assignOperands(Inst &inst, int mem_slot);

    void enterHotEpisode();
    void enterColdEpisode();
    Addr pickColdTarget();

    WorkloadProfile profile_;
    Rng rng_;

    std::vector<Loop> loops_;
    std::vector<double> loopWeights_;
    std::vector<MemSlot> memSlots_;
    std::vector<int> loadSlotPool_;  ///< slots shared by loads
    std::vector<int> storeSlotPool_; ///< stack-biased store slots
    std::vector<Addr> stridePool_;   ///< shared strided-array bases
    Addr coldBase_ = 0;
    std::uint32_t coldBytes_ = 0;
    double meanHotEpisodeLen_ = 1.0;

    // --- dynamic state ---
    bool inHot_ = true;
    std::size_t curLoop_ = 0;
    std::size_t bodyPos_ = 0;
    std::uint64_t tripsLeft_ = 0;
    Addr coldPc_ = 0;
    std::uint64_t runLeft_ = 0;
    std::uint64_t coldLeft_ = 0;
    Addr coldBranchTarget_ = 0;
    std::array<Addr, 16> recentTargets_{};
    std::size_t targetRing_ = 0;
    bool targetsSeeded_ = false;

    // register-dependency state
    RegIndex prevDst_ = NO_REG;
    RegIndex lastLoadDst_ = NO_REG;
    int sinceLoad_ = 1000;
    RegIndex prevFdst_ = NO_REG;
    RegIndex lastFpLoadDst_ = NO_REG;
    int sinceFpLoad_ = 1000;
    std::uint64_t fpRunLeft_ = 0;
    OpClass lastFpArith_ = OpClass::Nop;
    int dstCursor_ = 0;
    int fdstCursor_ = 0;

    // FP pair state: address of the first 32-bit half
    Addr lastFpPairAddr_ = 0;

    // store-locality state
    std::array<Addr, 8> recentStores_{};
    std::size_t storeRing_ = 0;
    std::size_t storesSeen_ = 0;
    Addr lastStoreAddr_ = 0;

    // streaming state
    bool havePending_ = false;
    Inst pending_{};
    Count produced_ = 0;
};

} // namespace aurora::trace

#endif // AURORA_TRACE_SYNTHETIC_WORKLOAD_HH
