/**
 * @file
 * Offline analysis of instruction streams.
 *
 * Computes the structural properties the workload profiles are tuned
 * against: instruction mix, control-transfer density, unique code/data
 * footprints, and sequentiality of the reference streams. Used by the
 * test suite to validate generators and by the workload_atlas example.
 */

#ifndef AURORA_TRACE_TRACE_STATS_HH
#define AURORA_TRACE_TRACE_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>

#include "inst.hh"
#include "trace_source.hh"

namespace aurora::trace
{

/** Aggregated properties of an instruction stream. */
struct TraceStats
{
    Count insts = 0;
    /** Dynamic count per operation class. */
    std::array<Count, NUM_OP_CLASSES> per_class{};
    /** Distinct instruction addresses touched. */
    Count unique_pcs = 0;
    /** Distinct 32-byte code lines touched. */
    Count unique_code_lines = 0;
    /** Distinct 32-byte data lines touched. */
    Count unique_data_lines = 0;
    /** Taken control transfers. */
    Count taken_branches = 0;
    /** Data references whose line follows the previous ref's line. */
    Count seq_data_refs = 0;
    /** Total data references. */
    Count data_refs = 0;

    /** Fraction of instructions in class @p op. */
    double
    frac(OpClass op) const
    {
        return insts ? static_cast<double>(
                           per_class[static_cast<std::size_t>(op)]) /
                           static_cast<double>(insts)
                     : 0.0;
    }

    /** Dynamic count in class @p op. */
    Count
    count(OpClass op) const
    {
        return per_class[static_cast<std::size_t>(op)];
    }

    /** Human-readable multi-line summary. */
    std::string summary() const;
};

/** Analyze up to @p limit instructions from @p src. */
TraceStats analyze(TraceSource &src, Count limit);

} // namespace aurora::trace

#endif // AURORA_TRACE_TRACE_STATS_HH
