/**
 * @file
 * Parameter set describing a synthetic workload.
 *
 * Each SPEC92 benchmark in the study is modelled by one profile. The
 * parameters control the structural properties the Aurora III
 * mechanisms are sensitive to: code footprint and loop behaviour
 * (I-cache, I-stream buffers, branch folding), data access patterns
 * (D-cache, D-stream buffers, MSHR overlap), store locality (write
 * cache), and dependency density (dual issue, load-use stalls, FP
 * decoupling). See DESIGN.md §2.1 for why this substitution preserves
 * the study's behaviour.
 */

#ifndef AURORA_TRACE_WORKLOAD_PROFILE_HH
#define AURORA_TRACE_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>

namespace aurora::trace
{

/** Tunable description of one synthetic benchmark. */
struct WorkloadProfile
{
    /** Benchmark name, e.g. "espresso". */
    std::string name;
    /** True for SPECfp-style workloads (FP ops in hot loops). */
    bool floating_point = false;
    /** Seed for the workload's private random stream. */
    std::uint64_t seed = 1;

    /// @name Instruction mix (fractions of dynamic instructions)
    /// Remaining probability mass is integer ALU work.
    /// @{
    double frac_load = 0.20;     ///< integer loads
    double frac_store = 0.10;    ///< integer stores
    double frac_fp_arith = 0.0;  ///< FP add/mul/div/cvt combined
    double frac_fp_load = 0.0;   ///< FP loads
    double frac_fp_store = 0.0;  ///< FP stores
    /// @}

    /// @name FP arithmetic split (relative weights)
    /// @{
    double fp_add_w = 1.0;
    double fp_mul_w = 1.0;
    double fp_div_w = 0.05;
    double fp_cvt_w = 0.05;
    /// @}

    /// @name Code structure
    /// @{
    /** Combined static footprint of all hot loop bodies, bytes. */
    std::uint32_t hot_code_bytes = 1536;
    /** Cold (non-loop) code region size, bytes. */
    std::uint32_t cold_code_bytes = 64 * 1024;
    /** Number of distinct hot loops. */
    int num_hot_loops = 6;
    /** Mean loop trip count per hot episode. */
    double mean_trips = 24.0;
    /** Fraction of dynamic instructions spent in hot loops. */
    double hot_fraction = 0.92;
    /** Mean sequential run length (instructions) in cold code. */
    double cold_run_len = 10.0;
    /** Probability a cold control transfer reuses a recent target. */
    double cold_target_reuse = 0.55;
    /** Probability the branch delay slot is a NOP. */
    double delay_nop_frac = 0.35;
    /** Probability an in-body branch is a not-taken test. */
    double inline_branch_frac = 0.06;
    /// @}

    /// @name Data structure
    /// @{
    /** Hot stack/global region size, bytes (high reuse). */
    std::uint32_t hot_data_bytes = 4 * 1024;
    /** Heap region size, bytes (streams / strides / chases). */
    std::uint32_t total_data_bytes = 1024 * 1024;
    /** Fraction of heap references that stream sequentially. */
    double seq_fraction = 0.30;
    /** Fraction of heap references that pointer-chase randomly. */
    double chase_fraction = 0.25;
    /** Fraction of all data references that hit the hot region. */
    double stack_fraction = 0.40;
    /**
     * Fraction of *store* slots bound to the hot stack region
     * (results land in locals/globals far more often than reads do).
     */
    double store_stack_frac = 0.60;
    /** Mean stride for strided array slots, bytes. */
    double stride_bytes = 64.0;
    /** Zipf exponent for hot-region reuse skew. */
    double zipf_s = 1.05;
    /**
     * Pointer-chase references are two-level: with probability
     * chase_hot_frac they revisit a small hot node set at the front
     * of the heap (recently allocated/touched structures), otherwise
     * they strike uniformly across the whole region. The cold strikes
     * are the benchmark's irreducible random-miss source.
     */
    double chase_hot_frac = 0.93;
    /** Size of the hot chase node set, bytes. */
    std::uint32_t chase_hot_bytes = 6 * 1024;
    /**
     * Stores draw from a region this many times smaller than loads
     * (loop indices, accumulators and output buffers are fewer than
     * the structures read) — the write-cache locality knob.
     */
    unsigned store_concentration = 16;
    /** Sequential stream window before re-basing, bytes. */
    std::uint32_t stream_window_bytes = 32 * 1024;
    /** Strided slots wrap within a region of this size, bytes. */
    std::uint32_t stride_region_bytes = 4 * 1024;
    /// @}

    /// @name Dependency density
    /// @{
    /** P(instruction sources the immediately preceding result). */
    double imm_dep_frac = 0.22;
    /** P(an instruction soon after a load consumes its result). */
    double load_use_frac = 0.45;
    /**
     * P(a load re-reads a recently stored address) — spill/reload
     * and flag-check idioms; these are the loads the write cache
     * forwards to.
     */
    double load_raw_frac = 0.20;
    /** P(FP op sources the previous FP op's result). */
    double fp_chain_frac = 0.35;
    /**
     * P(FP op consumes a recently loaded FP value) — vector kernels
     * load operands and use them immediately, which is what makes
     * the FPU burst-drain after load data arrives (and what dual
     * issue exploits).
     */
    double fp_load_use_frac = 0.50;
    /**
     * Mean length of consecutive FP arithmetic runs. Unrolled vector
     * kernels emit dense stretches of FP operations; these bursts
     * arrive at the FPU two per cycle and are what a second FPU
     * issue slot exists to absorb. 1.0 disables clustering.
     */
    double fp_run_len = 6.0;
    /// @}

    /// @name Store locality
    /// @{
    /** P(store rewrites one of the recently stored addresses). */
    double store_rewrite_frac = 0.45;
    /**
     * P(store continues a burst at the next word after the previous
     * store) — multi-field structure writes and buffer fills, the
     * pattern the coalescing write cache exists for.
     */
    double store_burst_frac = 0.30;
    /// @}

    /** Emit 8-byte FP accesses instead of paired 4-byte halves. */
    bool double_word_mem = false;
};

} // namespace aurora::trace

#endif // AURORA_TRACE_WORKLOAD_PROFILE_HH
