/**
 * @file
 * Dynamic instruction operation classes.
 *
 * The study models the MIPS R3000 ISA at the granularity the Aurora III
 * pipeline cares about: integer ALU work, memory references, control
 * flow, and the floating point classes the decoupled FPU distinguishes
 * (add-family, multiply, divide, convert, FP loads/stores/moves).
 */

#ifndef AURORA_TRACE_OP_CLASS_HH
#define AURORA_TRACE_OP_CLASS_HH

#include <cstdint>
#include <string_view>

namespace aurora::trace
{

/** Operation class of a dynamic instruction. */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< integer arithmetic/logic, 1-cycle ALU result
    Load,       ///< integer load (goes to the LSU)
    Store,      ///< integer store (write cache candidate)
    Branch,     ///< conditional branch (compare + PC update)
    Jump,       ///< unconditional jump / call / return
    FpAdd,      ///< FP add/sub/compare family (add unit)
    FpMul,      ///< FP multiply (multiply unit)
    FpDiv,      ///< FP divide / square root (divide unit)
    FpCvt,      ///< FP format conversion (conversion unit)
    FpLoad,     ///< load into the FP register file (via LSU + load queue)
    FpStore,    ///< store from the FP register file (via store queue)
    FpMove,     ///< FPU<->IPU register move (store-queue path)
    Nop,        ///< no-op (delay slot filler)
    NumOpClasses
};

/** Number of distinct operation classes. */
inline constexpr std::size_t NUM_OP_CLASSES =
    static_cast<std::size_t>(OpClass::NumOpClasses);

/** True for any instruction that references data memory. */
constexpr bool
isMem(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store ||
           op == OpClass::FpLoad || op == OpClass::FpStore;
}

/** True for loads of either register file. */
constexpr bool
isLoad(OpClass op)
{
    return op == OpClass::Load || op == OpClass::FpLoad;
}

/** True for stores of either register file. */
constexpr bool
isStore(OpClass op)
{
    return op == OpClass::Store || op == OpClass::FpStore;
}

/** True for control-flow instructions (branch folding candidates). */
constexpr bool
isControl(OpClass op)
{
    return op == OpClass::Branch || op == OpClass::Jump;
}

/** True for anything the IPU forwards to the FPU. */
constexpr bool
isFp(OpClass op)
{
    return op == OpClass::FpAdd || op == OpClass::FpMul ||
           op == OpClass::FpDiv || op == OpClass::FpCvt ||
           op == OpClass::FpLoad || op == OpClass::FpStore ||
           op == OpClass::FpMove;
}

/** True for FP instructions executed by an FPU functional unit. */
constexpr bool
isFpArith(OpClass op)
{
    return op == OpClass::FpAdd || op == OpClass::FpMul ||
           op == OpClass::FpDiv || op == OpClass::FpCvt;
}

/** Short mnemonic for reports and debugging. */
std::string_view opClassName(OpClass op);

} // namespace aurora::trace

#endif // AURORA_TRACE_OP_CLASS_HH
