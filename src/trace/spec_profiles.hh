/**
 * @file
 * SPEC92 benchmark profiles.
 *
 * One WorkloadProfile per benchmark used in the study: the six SPECint92
 * programs of Tables 3-5 and the nine SPECfp92 programs of Table 6.
 * Parameters are set from the programs' well-documented structural
 * behaviour (code footprint, pointer-chasing vs. streaming data, store
 * locality, FP dependence chains) and calibrated so the baseline model
 * reproduces the paper's aggregate cache statistics; see DESIGN.md §2.1.
 */

#ifndef AURORA_TRACE_SPEC_PROFILES_HH
#define AURORA_TRACE_SPEC_PROFILES_HH

#include <string>
#include <vector>

#include "workload_profile.hh"

namespace aurora::trace
{

/// @name SPECint92 profiles
/// @{
WorkloadProfile espresso(); ///< PLA minimizer: set ops over bit matrices
WorkloadProfile li();       ///< XLISP interpreter: recursion, GC, lists
WorkloadProfile eqntott();  ///< truth tables: tight loops, random bits
WorkloadProfile compress(); ///< LZW: hash probes + sequential input
WorkloadProfile sc();       ///< spreadsheet: row/column streaming
WorkloadProfile gcc();      ///< compiler: huge code, mixed data
/// @}

/// @name SPECfp92 profiles
/// @{
WorkloadProfile alvinn();   ///< back-propagation: serial accumulations
WorkloadProfile doduc();    ///< Monte Carlo reactor kernel: mixed FP
WorkloadProfile ear();      ///< ear model: FFT-like add/mul parallelism
WorkloadProfile hydro2d();  ///< Navier-Stokes: long vector loops
WorkloadProfile mdljdp2();  ///< molecular dynamics: pairwise forces
WorkloadProfile nasa7();    ///< matrix kernels: abundant FP ILP
WorkloadProfile ora();      ///< ray tracing: divide/sqrt bound
WorkloadProfile spice2g6(); ///< circuit simulation: mostly integer
WorkloadProfile su2cor();   ///< quantum physics: vector loops
/// @}

/** The six integer benchmarks, in the paper's table order. */
std::vector<WorkloadProfile> integerSuite();

/** The nine floating point benchmarks, in Table 6 order. */
std::vector<WorkloadProfile> floatSuite();

/**
 * Look up any benchmark by name. Throws util::SimError (BadConfig)
 * listing the known profile names when @p name matches none.
 */
WorkloadProfile profileByName(const std::string &name);

} // namespace aurora::trace

#endif // AURORA_TRACE_SPEC_PROFILES_HH
