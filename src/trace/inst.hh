/**
 * @file
 * The dynamic instruction record consumed by the cycle simulator.
 *
 * A trace is an in-order stream of Inst records, exactly what the
 * original study drove its simulator with. Branch outcomes are part of
 * the record (trace-driven machines never mispredict), so the pipeline
 * model charges only structural fetch effects: I-cache misses and, when
 * branch folding is disabled, the taken-branch bubble.
 */

#ifndef AURORA_TRACE_INST_HH
#define AURORA_TRACE_INST_HH

#include "op_class.hh"
#include "util/types.hh"

namespace aurora::trace
{

/** One dynamic instruction. */
struct Inst
{
    /** Program counter of this instruction. */
    Addr pc = 0;
    /** PC of the dynamically following instruction. */
    Addr next_pc = 0;
    /** Effective byte address for memory operations, else 0. */
    Addr eff_addr = 0;
    /** Operation class. */
    OpClass op = OpClass::Nop;
    /** Integer source registers; NO_REG when absent. */
    RegIndex src_a = NO_REG;
    RegIndex src_b = NO_REG;
    /** Integer destination register; NO_REG when absent. */
    RegIndex dst = NO_REG;
    /** FP source registers; NO_REG when absent. */
    RegIndex fsrc_a = NO_REG;
    RegIndex fsrc_b = NO_REG;
    /** FP destination register; NO_REG when absent. */
    RegIndex fdst = NO_REG;
    /** Access size in bytes for memory operations (4 or 8). */
    std::uint8_t size = 0;
    /** Taken flag for control-flow instructions. */
    bool taken = false;

    /** True when control flow leaves the fall-through path. */
    bool
    redirectsFetch() const
    {
        return isControl(op) && taken;
    }
};

} // namespace aurora::trace

#endif // AURORA_TRACE_INST_HH
