#include "trace_source.hh"

#include "util/logging.hh"

namespace aurora::trace
{

InterleavedTraceSource::InterleavedTraceSource(
    std::vector<TraceSource *> sources, Count quantum)
    : sources_(std::move(sources)),
      dead_(sources_.size(), false), quantum_(quantum)
{
    AURORA_ASSERT(!sources_.empty(),
                  "interleaving needs at least one source");
    AURORA_ASSERT(quantum_ > 0, "context-switch quantum must be > 0");
    for (const TraceSource *src : sources_)
        AURORA_ASSERT(src != nullptr, "null trace source");
}

bool
InterleavedTraceSource::rotate()
{
    for (std::size_t step = 1; step <= sources_.size(); ++step) {
        const std::size_t candidate =
            (current_ + step) % sources_.size();
        if (!dead_[candidate]) {
            current_ = candidate;
            used_ = 0;
            return true;
        }
    }
    return !dead_[current_];
}

bool
InterleavedTraceSource::next(Inst &out)
{
    for (std::size_t attempts = 0; attempts <= sources_.size();
         ++attempts) {
        if (dead_[current_]) {
            if (!rotate())
                return false;
            continue;
        }
        if (used_ >= quantum_) {
            if (!rotate())
                return false;
        }
        if (sources_[current_]->next(out)) {
            ++used_;
            // A context switch happened only if an instruction was
            // actually delivered from a different source than the
            // previous one (end-of-stream probing is not a switch).
            if (haveDelivered_ && current_ != lastDelivered_)
                ++switches_;
            lastDelivered_ = current_;
            haveDelivered_ = true;
            return true;
        }
        dead_[current_] = true;
    }
    return false;
}

std::vector<Inst>
collect(TraceSource &src, Count limit)
{
    std::vector<Inst> insts;
    insts.reserve(limit);
    Inst inst;
    while (insts.size() < limit && src.next(inst))
        insts.push_back(inst);
    return insts;
}

} // namespace aurora::trace
