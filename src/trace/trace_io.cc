#include "trace_io.hh"

#include <array>
#include <cstdio>
#include <cstring>

#include "util/sim_error.hh"

namespace aurora::trace
{

namespace
{

using util::SimErrorCode;
using util::raiseError;

constexpr std::array<char, 4> MAGIC = {'A', 'U', 'R', '3'};
constexpr std::size_t RECORD_BYTES = 24;

void
packU32(unsigned char *p, std::uint32_t v)
{
    p[0] = v & 0xff;
    p[1] = (v >> 8) & 0xff;
    p[2] = (v >> 16) & 0xff;
    p[3] = (v >> 24) & 0xff;
}

std::uint32_t
unpackU32(const unsigned char *p)
{
    return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
           (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

void
packInst(unsigned char *p, const Inst &in)
{
    packU32(p + 0, in.pc);
    packU32(p + 4, in.next_pc);
    packU32(p + 8, in.eff_addr);
    p[12] = static_cast<unsigned char>(in.op);
    p[13] = in.src_a;
    p[14] = in.src_b;
    p[15] = in.dst;
    p[16] = in.fsrc_a;
    p[17] = in.fsrc_b;
    p[18] = in.fdst;
    p[19] = in.size;
    p[20] = in.taken ? 1 : 0;
    p[21] = p[22] = p[23] = 0;
}

Inst
unpackInst(const unsigned char *p)
{
    Inst out;
    out.pc = unpackU32(p + 0);
    out.next_pc = unpackU32(p + 4);
    out.eff_addr = unpackU32(p + 8);
    out.op = static_cast<OpClass>(p[12]);
    if (p[12] >= NUM_OP_CLASSES)
        raiseError(SimErrorCode::BadTrace,
                   "corrupt trace record: op class ",
                   static_cast<unsigned>(p[12]), " out of range [0, ",
                   NUM_OP_CLASSES, ") at pc 0x", std::hex, out.pc);
    out.src_a = p[13];
    out.src_b = p[14];
    out.dst = p[15];
    out.fsrc_a = p[16];
    out.fsrc_b = p[17];
    out.fdst = p[18];
    out.size = p[19];
    out.taken = p[20] != 0;
    return out;
}

} // namespace

void
writeTrace(const std::string &path, const std::vector<Inst> &insts)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        raiseError(SimErrorCode::BadTrace,
                   "cannot create trace file ", path);

    unsigned char header[16];
    std::memcpy(header, MAGIC.data(), 4);
    packU32(header + 4, TRACE_FORMAT_VERSION);
    packU32(header + 8, static_cast<std::uint32_t>(insts.size()));
    packU32(header + 12,
            static_cast<std::uint32_t>(insts.size() >> 32));
    if (std::fwrite(header, 1, sizeof(header), f) != sizeof(header)) {
        std::fclose(f);
        raiseError(SimErrorCode::BadTrace,
                   "short write on trace file ", path);
    }

    unsigned char rec[RECORD_BYTES];
    for (const Inst &inst : insts) {
        packInst(rec, inst);
        if (std::fwrite(rec, 1, RECORD_BYTES, f) != RECORD_BYTES) {
            std::fclose(f);
            raiseError(SimErrorCode::BadTrace,
                       "short write on trace file ", path);
        }
    }
    std::fclose(f);
}

std::vector<Inst>
readTrace(const std::string &path)
{
    FileTraceSource src(path);
    std::vector<Inst> insts;
    insts.reserve(src.recordCount());
    Inst inst;
    while (src.next(inst))
        insts.push_back(inst);
    // next() itself throws BadTrace on a body shorter than the header
    // promises, so reaching here means every record was delivered.
    return insts;
}

struct FileTraceSource::Impl
{
    std::FILE *f = nullptr;
    Count remaining = 0;
};

FileTraceSource::FileTraceSource(const std::string &path)
    : impl_(nullptr)
{
    // Validate the header before allocating Impl: a throwing
    // constructor never runs the destructor, so nothing owned may
    // outlive an error path.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        raiseError(SimErrorCode::BadTrace,
                   "cannot open trace file ", path);

    unsigned char header[16];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
        std::fclose(f);
        raiseError(SimErrorCode::BadTrace,
                   "truncated trace header in ", path);
    }
    if (std::memcmp(header, MAGIC.data(), 4) != 0) {
        std::fclose(f);
        raiseError(SimErrorCode::BadTrace, "bad trace magic in ", path,
                   " (expected 'AUR3')");
    }
    const std::uint32_t version = unpackU32(header + 4);
    if (version != TRACE_FORMAT_VERSION) {
        std::fclose(f);
        raiseError(SimErrorCode::BadTrace, "unsupported trace version ",
                   version, " in ", path, " (expected ",
                   TRACE_FORMAT_VERSION, ")");
    }
    count_ = Count{unpackU32(header + 8)} |
             (Count{unpackU32(header + 12)} << 32);

    impl_ = new Impl;
    impl_->f = f;
    impl_->remaining = count_;
}

FileTraceSource::~FileTraceSource()
{
    if (impl_->f)
        std::fclose(impl_->f);
    delete impl_;
}

bool
FileTraceSource::next(Inst &out)
{
    if (impl_->remaining == 0)
        return false;
    unsigned char rec[RECORD_BYTES];
    if (std::fread(rec, 1, RECORD_BYTES, impl_->f) != RECORD_BYTES)
        raiseError(SimErrorCode::BadTrace,
                   "truncated trace body: header promised ", count_,
                   " records but the file ends ", impl_->remaining,
                   " records early");
    out = unpackInst(rec);
    --impl_->remaining;
    return true;
}

} // namespace aurora::trace
