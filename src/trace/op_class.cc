#include "op_class.hh"

#include "util/logging.hh"

namespace aurora::trace
{

std::string_view
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:  return "alu";
      case OpClass::Load:    return "load";
      case OpClass::Store:   return "store";
      case OpClass::Branch:  return "branch";
      case OpClass::Jump:    return "jump";
      case OpClass::FpAdd:   return "fadd";
      case OpClass::FpMul:   return "fmul";
      case OpClass::FpDiv:   return "fdiv";
      case OpClass::FpCvt:   return "fcvt";
      case OpClass::FpLoad:  return "fload";
      case OpClass::FpStore: return "fstore";
      case OpClass::FpMove:  return "fmove";
      case OpClass::Nop:     return "nop";
      default:
        AURORA_PANIC("invalid OpClass ", static_cast<int>(op));
    }
}

} // namespace aurora::trace
