/**
 * @file
 * Streaming trace interfaces.
 *
 * The simulator pulls instructions through TraceSource so experiments
 * can run hundreds of millions of instructions without materializing
 * them; VectorTraceSource adapts an in-memory trace for tests.
 */

#ifndef AURORA_TRACE_TRACE_SOURCE_HH
#define AURORA_TRACE_TRACE_SOURCE_HH

#include <cstddef>
#include <vector>

#include "inst.hh"

namespace aurora::trace
{

/** Pull-model producer of a dynamic instruction stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction.
     *
     * @param out receives the instruction when available.
     * @retval true an instruction was produced.
     * @retval false the stream is exhausted; out is untouched.
     */
    virtual bool next(Inst &out) = 0;
};

/** TraceSource over an in-memory vector of instructions. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<Inst> insts)
        : insts_(std::move(insts))
    {}

    bool
    next(Inst &out) override
    {
        if (pos_ >= insts_.size())
            return false;
        out = insts_[pos_++];
        return true;
    }

    /** Rewind to the beginning of the stream. */
    void rewind() { pos_ = 0; }

    const std::vector<Inst> &insts() const { return insts_; }

  private:
    std::vector<Inst> insts_;
    std::size_t pos_ = 0;
};

/**
 * Wrap any source, truncating it after a fixed number of
 * instructions. Used to honour the paper's per-benchmark cycle budget.
 */
class LimitedTraceSource : public TraceSource
{
  public:
    LimitedTraceSource(TraceSource &inner, Count limit)
        : inner_(inner), remaining_(limit)
    {}

    bool
    next(Inst &out) override
    {
        if (remaining_ == 0)
            return false;
        if (!inner_.next(out))
            return false;
        --remaining_;
        return true;
    }

  private:
    TraceSource &inner_;
    Count remaining_;
};

/**
 * Interleave several sources in round-robin quanta of @p quantum
 * instructions — a multiprogrammed workload with context switches.
 * The stream ends when every inner source is exhausted; exhausted
 * sources are skipped.
 */
class InterleavedTraceSource : public TraceSource
{
  public:
    InterleavedTraceSource(std::vector<TraceSource *> sources,
                           Count quantum);

    bool next(Inst &out) override;

    /** Context switches performed so far. */
    Count switches() const { return switches_; }

  private:
    /** Move current_ to the next live source. */
    bool rotate();

    std::vector<TraceSource *> sources_;
    std::vector<bool> dead_;
    Count quantum_;
    Count used_ = 0;
    std::size_t current_ = 0;
    std::size_t lastDelivered_ = 0;
    bool haveDelivered_ = false;
    Count switches_ = 0;
};

/** Materialize up to @p limit instructions from a source. */
std::vector<Inst> collect(TraceSource &src, Count limit);

} // namespace aurora::trace

#endif // AURORA_TRACE_TRACE_SOURCE_HH
