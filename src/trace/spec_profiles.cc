#include "spec_profiles.hh"

#include "util/sim_error.hh"

namespace aurora::trace
{

namespace
{

/** Common integer-suite defaults; members then specialized per bench. */
WorkloadProfile
intBase(const std::string &name, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = name;
    p.seed = seed;
    p.floating_point = false;
    return p;
}

/** Common FP-suite defaults. */
WorkloadProfile
fpBase(const std::string &name, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = name;
    p.seed = seed;
    p.floating_point = true;
    p.frac_load = 0.06;
    p.frac_store = 0.03;
    p.frac_fp_arith = 0.42;
    p.frac_fp_load = 0.09;
    p.frac_fp_store = 0.045;
    p.hot_code_bytes = 1600;
    p.cold_code_bytes = 48 * 1024;
    p.num_hot_loops = 5;
    p.mean_trips = 60.0;
    p.hot_fraction = 0.97;
    p.cold_run_len = 12.0;
    p.hot_data_bytes = 4 * 1024;
    p.total_data_bytes = 4 * 1024 * 1024;
    p.seq_fraction = 0.55;
    p.chase_fraction = 0.04;
    p.chase_hot_frac = 0.97;
    p.stack_fraction = 0.35;
    p.load_use_frac = 0.35;
    p.store_rewrite_frac = 0.25;
    p.store_stack_frac = 0.30;
    p.store_burst_frac = 0.40;
    p.fp_chain_frac = 0.35;
    return p;
}

} // namespace

// ---------------------------------------------------------------------
// SPECint92
// ---------------------------------------------------------------------

WorkloadProfile
espresso()
{
    // PLA minimizer: moderate loops over cube lists; data access is a
    // blend of pointer-following and bit-matrix scans.
    WorkloadProfile p = intBase("espresso", 0xe5a1);
    p.frac_load = 0.22;
    p.frac_store = 0.08;
    p.hot_code_bytes = 3000;
    p.cold_code_bytes = 96 * 1024;
    p.num_hot_loops = 10;
    p.mean_trips = 10.0;
    p.hot_fraction = 0.93;
    p.cold_run_len = 10.0;
    p.hot_data_bytes = 6 * 1024;
    p.total_data_bytes = 512 * 1024;
    p.seq_fraction = 0.08;
    p.chase_fraction = 0.45;
    p.stack_fraction = 0.42;
    p.store_rewrite_frac = 0.35;
    p.store_burst_frac = 0.22;
    p.chase_hot_frac = 0.965;
    return p;
}

WorkloadProfile
li()
{
    // XLISP interpreter: deep recursion, cons-cell chasing, heavy
    // stack traffic, short sequential runs between calls.
    WorkloadProfile p = intBase("li", 0x11b2);
    p.frac_load = 0.26;
    p.frac_store = 0.14;
    p.hot_code_bytes = 2200;
    p.cold_code_bytes = 48 * 1024;
    p.num_hot_loops = 8;
    p.mean_trips = 7.0;
    p.hot_fraction = 0.88;
    p.cold_run_len = 7.0;
    p.cold_target_reuse = 0.65;
    p.hot_data_bytes = 4 * 1024;
    p.total_data_bytes = 256 * 1024;
    p.seq_fraction = 0.08;
    p.chase_fraction = 0.48;
    p.stack_fraction = 0.50;
    p.store_rewrite_frac = 0.45;
    p.store_burst_frac = 0.40;
    p.chase_hot_frac = 0.97;
    return p;
}

WorkloadProfile
eqntott()
{
    // Truth-table generator: dominated by a tight comparison loop
    // sweeping long bit vectors; code misses are rare but perfectly
    // sequential, data is nearly random over a large array.
    WorkloadProfile p = intBase("eqntott", 0xe077);
    p.frac_load = 0.30;
    p.frac_store = 0.04;
    p.hot_code_bytes = 1200;
    p.cold_code_bytes = 24 * 1024;
    p.num_hot_loops = 4;
    p.mean_trips = 40.0;
    p.hot_fraction = 0.975;
    p.cold_run_len = 26.0;
    p.inline_branch_frac = 0.14;
    p.hot_data_bytes = 4 * 1024;
    p.total_data_bytes = 2 * 1024 * 1024;
    p.seq_fraction = 0.05;
    p.chase_fraction = 0.72;
    p.stack_fraction = 0.28;
    p.store_rewrite_frac = 0.50;
    p.chase_hot_frac = 0.93;
    p.chase_hot_bytes = 6 * 1024;
    p.store_burst_frac = 0.35;
    return p;
}

WorkloadProfile
compress()
{
    // LZW compressor: sequential input/output streams feeding a
    // randomly probed hash table.
    WorkloadProfile p = intBase("compress", 0xc03e);
    p.frac_load = 0.20;
    p.frac_store = 0.12;
    p.hot_code_bytes = 1600;
    p.cold_code_bytes = 32 * 1024;
    p.num_hot_loops = 6;
    p.mean_trips = 14.0;
    p.hot_fraction = 0.95;
    p.cold_run_len = 12.0;
    p.hot_data_bytes = 4 * 1024;
    p.total_data_bytes = 1024 * 1024;
    p.seq_fraction = 0.12;
    p.chase_fraction = 0.42;
    p.stack_fraction = 0.38;
    p.store_rewrite_frac = 0.30;
    p.store_burst_frac = 0.35;
    p.chase_hot_frac = 0.96;
    return p;
}

WorkloadProfile
sc()
{
    // Spreadsheet: recalculation sweeps rows/columns sequentially and
    // rewrites cell values — the best data-prefetch and write-cache
    // candidate of the integer suite.
    WorkloadProfile p = intBase("sc", 0x5c5c);
    p.frac_load = 0.24;
    p.frac_store = 0.12;
    p.hot_code_bytes = 2800;
    p.cold_code_bytes = 80 * 1024;
    p.num_hot_loops = 10;
    p.mean_trips = 9.0;
    p.hot_fraction = 0.90;
    p.cold_run_len = 9.0;
    p.hot_data_bytes = 8 * 1024;
    p.total_data_bytes = 384 * 1024;
    p.seq_fraction = 0.25;
    p.chase_fraction = 0.14;
    p.stack_fraction = 0.40;
    p.store_rewrite_frac = 0.40;
    p.store_burst_frac = 0.40;
    p.chase_hot_frac = 0.97;
    return p;
}

WorkloadProfile
gcc()
{
    // Compiler: the largest code footprint in the suite, moderate
    // loops, tree/RTL chasing plus symbol-table streaming.
    WorkloadProfile p = intBase("gcc", 0x6cc0);
    p.frac_load = 0.23;
    p.frac_store = 0.13;
    p.hot_code_bytes = 4200;
    p.cold_code_bytes = 200 * 1024;
    p.num_hot_loops = 12;
    p.mean_trips = 7.0;
    p.hot_fraction = 0.80;
    p.cold_run_len = 10.0;
    p.cold_target_reuse = 0.50;
    p.hot_data_bytes = 8 * 1024;
    p.total_data_bytes = 768 * 1024;
    p.seq_fraction = 0.08;
    p.chase_fraction = 0.40;
    p.stack_fraction = 0.45;
    p.store_rewrite_frac = 0.42;
    p.store_burst_frac = 0.42;
    p.chase_hot_frac = 0.96;
    return p;
}

// ---------------------------------------------------------------------
// SPECfp92
// ---------------------------------------------------------------------

WorkloadProfile
alvinn()
{
    // Back-propagation training: serial accumulation chains keep the
    // FPU latency-bound no matter the issue policy.
    WorkloadProfile p = fpBase("alvinn", 0xa111);
    p.frac_fp_arith = 0.44;
    p.fp_add_w = 3.0;
    p.fp_mul_w = 2.0;
    p.fp_div_w = 0.01;
    p.fp_cvt_w = 0.05;
    p.fp_chain_frac = 0.85;
    p.seq_fraction = 0.75;
    p.chase_fraction = 0.03;
    p.total_data_bytes = 2 * 1024 * 1024;
    return p;
}

WorkloadProfile
doduc()
{
    // Monte Carlo reactor kernel: branchy FP with moderate chains.
    WorkloadProfile p = fpBase("doduc", 0xd0d0);
    p.frac_fp_arith = 0.38;
    p.fp_add_w = 2.0;
    p.fp_mul_w = 2.0;
    p.fp_div_w = 0.12;
    p.fp_cvt_w = 0.10;
    p.fp_chain_frac = 0.45;
    p.hot_code_bytes = 2600;
    p.num_hot_loops = 8;
    p.mean_trips = 14.0;
    p.hot_fraction = 0.90;
    p.seq_fraction = 0.45;
    p.chase_fraction = 0.15;
    return p;
}

WorkloadProfile
ear()
{
    // Human-ear model: FFT-style butterflies with good FP ILP.
    WorkloadProfile p = fpBase("ear", 0xea12);
    p.frac_fp_arith = 0.46;
    p.fp_add_w = 2.5;
    p.fp_mul_w = 2.5;
    p.fp_div_w = 0.02;
    p.fp_cvt_w = 0.04;
    p.fp_chain_frac = 0.25;
    p.seq_fraction = 0.70;
    return p;
}

WorkloadProfile
hydro2d()
{
    // 2-D Navier-Stokes: long vector loops over grids.
    WorkloadProfile p = fpBase("hydro2d", 0x42d0);
    p.frac_fp_arith = 0.44;
    p.fp_add_w = 2.2;
    p.fp_mul_w = 2.0;
    p.fp_div_w = 0.06;
    p.fp_cvt_w = 0.03;
    p.fp_chain_frac = 0.22;
    p.mean_trips = 80.0;
    p.seq_fraction = 0.78;
    p.chase_fraction = 0.04;
    p.total_data_bytes = 8 * 1024 * 1024;
    return p;
}

WorkloadProfile
mdljdp2()
{
    // Molecular dynamics: pairwise force loops, independent updates.
    WorkloadProfile p = fpBase("mdljdp2", 0x3d1d);
    p.frac_fp_arith = 0.45;
    p.fp_add_w = 2.2;
    p.fp_mul_w = 2.4;
    p.fp_div_w = 0.08;
    p.fp_cvt_w = 0.03;
    p.fp_chain_frac = 0.22;
    p.seq_fraction = 0.55;
    p.chase_fraction = 0.12;
    return p;
}

WorkloadProfile
nasa7()
{
    // Seven matrix kernels: the most abundant FP parallelism in the
    // suite — dual issue gains the most here.
    WorkloadProfile p = fpBase("nasa7", 0x7a5a);
    p.frac_fp_arith = 0.48;
    p.fp_add_w = 2.0;
    p.fp_mul_w = 2.6;
    p.fp_div_w = 0.03;
    p.fp_cvt_w = 0.03;
    p.fp_chain_frac = 0.12;
    p.mean_trips = 96.0;
    p.hot_fraction = 0.97;
    p.seq_fraction = 0.80;
    p.chase_fraction = 0.03;
    p.total_data_bytes = 8 * 1024 * 1024;
    return p;
}

WorkloadProfile
ora()
{
    // Ray tracing through optical surfaces: divide/sqrt dominated
    // dependence chains; issue policy helps little.
    WorkloadProfile p = fpBase("ora", 0x03a0);
    p.frac_fp_arith = 0.42;
    p.fp_add_w = 1.6;
    p.fp_mul_w = 1.8;
    p.fp_div_w = 0.50;
    p.fp_cvt_w = 0.05;
    p.fp_chain_frac = 0.70;
    p.frac_fp_load = 0.05;
    p.frac_fp_store = 0.02;
    p.total_data_bytes = 256 * 1024;
    p.seq_fraction = 0.40;
    return p;
}

WorkloadProfile
spice2g6()
{
    // Circuit simulator: sparse-matrix pointer chasing; mostly
    // integer work, so FP issue policy barely matters.
    WorkloadProfile p = fpBase("spice2g6", 0x591c);
    p.frac_load = 0.20;
    p.frac_store = 0.07;
    p.frac_fp_arith = 0.14;
    p.frac_fp_load = 0.06;
    p.frac_fp_store = 0.02;
    p.fp_chain_frac = 0.45;
    p.hot_code_bytes = 2400;
    p.num_hot_loops = 8;
    p.mean_trips = 12.0;
    p.hot_fraction = 0.88;
    p.seq_fraction = 0.25;
    p.chase_fraction = 0.45;
    p.stack_fraction = 0.40;
    p.total_data_bytes = 1024 * 1024;
    return p;
}

WorkloadProfile
su2cor()
{
    // Quark-gluon physics: vectorizable loops with medium chains.
    WorkloadProfile p = fpBase("su2cor", 0x52c0);
    p.frac_fp_arith = 0.44;
    p.fp_add_w = 2.0;
    p.fp_mul_w = 2.2;
    p.fp_div_w = 0.07;
    p.fp_cvt_w = 0.04;
    p.fp_chain_frac = 0.38;
    p.mean_trips = 64.0;
    p.seq_fraction = 0.70;
    p.total_data_bytes = 6 * 1024 * 1024;
    return p;
}

std::vector<WorkloadProfile>
integerSuite()
{
    return {espresso(), li(), eqntott(), compress(), sc(), gcc()};
}

std::vector<WorkloadProfile>
floatSuite()
{
    return {alvinn(), doduc(), ear(), hydro2d(), mdljdp2(),
            nasa7(), ora(), spice2g6(), su2cor()};
}

WorkloadProfile
profileByName(const std::string &name)
{
    for (const auto &p : integerSuite())
        if (p.name == name)
            return p;
    for (const auto &p : floatSuite())
        if (p.name == name)
            return p;
    std::string known;
    for (const auto &p : integerSuite())
        known += p.name + " ";
    for (const auto &p : floatSuite())
        known += p.name + " ";
    if (!known.empty())
        known.pop_back();
    util::raiseError(util::SimErrorCode::BadConfig,
                     "unknown benchmark profile '", name,
                     "' (known profiles: ", known, ")");
}

} // namespace aurora::trace
