/**
 * @file
 * Analytic bound-and-bottleneck performance model.
 *
 * Brute-force simulation answers "what IPC does this configuration
 * reach" at the cost of executing every cycle; this model answers the
 * cheaper question "what IPC can it *not exceed*, and which resource
 * says so" from the configuration and the workload profile alone, in
 * the spirit of Carroll & Lin's queuing-model configurator (PAPERS.md)
 * and as the pruning front end ROADMAP item 4 asks for.
 *
 * Method: every hardware resource the paper sizes (§5) is reduced to
 * a service station with a per-instruction service demand d_r (busy
 * cycles each average instruction imposes on it) and a capacity c_r
 * (service cycles available per machine cycle). Little's law bounds
 * sustained throughput at every station: IPC <= c_r / d_r. The
 * overall prediction is the minimum over stations — the *bottleneck
 * bound* — and the station attaining it is the *binding resource*.
 *
 * The bound is only trustworthy as a bound if every demand estimate
 * is optimistic (never overstates the work): miss-rate terms use
 * conflict-free footprint arguments scaled by an explicit optimism
 * factor, dependency stalls are ignored entirely, and queue-residency
 * terms assume perfect overlap. The calibration harness
 * (`scripts/check.sh model`) holds the model to exactly that
 * contract: predicted bound >= simulated IPC on every fig4/fig9 job,
 * with the mean gap tracked in BENCH_perf.json.
 *
 * Everything here is a pure function of (MachineConfig,
 * WorkloadProfile): no clocks, no randomness, no environment reads —
 * `scripts/lint_determinism.sh` enforces this, and repeated calls are
 * bit-identical.
 */

#ifndef AURORA_ANALYZE_MODEL_HH
#define AURORA_ANALYZE_MODEL_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "diagnostic.hh"
#include "trace/workload_profile.hh"

namespace aurora::analyze
{

/**
 * Every service station the bound considers, in stable report order.
 * The order is part of the tool contract (CSV/JSON rows, golden
 * files, tie-breaking of equal bounds) — append, never reorder.
 */
enum class Resource
{
    IssueWidth,   ///< decode/issue slots per cycle (§2.1)
    FetchBw,      ///< I-fetch port incl. I-miss service (§2.2)
    RetireWidth,  ///< in-order retirement slots
    RobOccupancy, ///< IPU reorder buffer entries (Little's law)
    MemPort,      ///< D-cache access port (§2.3)
    MshrPool,     ///< MSHR residency per memory op (§2.3)
    WriteCache,   ///< store insert port + eviction work (§2.4)
    BiuBandwidth, ///< line transfers through the one bus (§2)
    BiuQueue,     ///< outstanding-transaction slots (Little's law)
    FpTransfer,   ///< IPU->FPU issue/transfer policy (§3)
    FpInstQueue,  ///< FP decoupling instruction queue (Fig 9a)
    FpLoadQueue,  ///< FP load data queue (Fig 9b)
    FpStoreQueue, ///< FP store/result queue
    FpRob,        ///< FPU reorder buffer occupancy (Fig 9c)
    FpResultBus,  ///< writeback buses shared by the FP units
    FpAddUnit,    ///< add unit issue slots (latency if unpipelined)
    FpMulUnit,    ///< multiply unit issue slots
    FpDivUnit,    ///< divide unit (iterative: busy `latency` cycles)
    FpCvtUnit,    ///< conversion unit
};

/** Number of Resource enumerators (array extent). */
inline constexpr std::size_t NUM_RESOURCES = 19;

/** Stable short name ("issue", "mshr", "fp_instq", ...). */
const char *resourceName(Resource resource);

/**
 * Per-resource bounds are clamped here instead of reporting infinity
 * for stations the workload never touches (d_r = 0): every number
 * the tool emits stays finite and JSON-representable. The overall
 * IPC bound is always <= issue width, far below the clamp.
 */
inline constexpr double UNBOUNDED_IPC = 1e9;

/** One service station's contribution to the bound. */
struct ResourceDemand
{
    Resource resource = Resource::IssueWidth;
    /** Busy cycles this station owes per average instruction. */
    double demand = 0.0;
    /** Service cycles the station offers per machine cycle. */
    double capacity = 0.0;
    /** c/d, clamped to UNBOUNDED_IPC; 0 when the capacity is 0. */
    double ipc_bound = UNBOUNDED_IPC;
    /** ipc_bound / overall bound (>= 1; 1 for the binding station). */
    double slack = 1.0;
    /** Table 2 area attributed to this station; 0 when unpriced. */
    double rbe = 0.0;
};

/**
 * Optimistic workload-derived rates behind the demands — reported so
 * a human (or docs/model.md) can audit which estimate drives a
 * surprising bound.
 */
struct MixEstimates
{
    double f_load = 0.0;      ///< integer + FP loads, per instruction
    double f_store = 0.0;     ///< integer + FP stores, per instruction
    double f_mem = 0.0;       ///< loads + stores
    double f_fp = 0.0;        ///< FP arithmetic ops
    double icache_mpi = 0.0;  ///< I-cache misses per instruction
    double dcache_mpr = 0.0;  ///< D-cache misses per data reference
    double wc_evict = 0.0;    ///< BIU write transactions per store
    double fp_mean_lat = 0.0; ///< mix-weighted FP unit latency
};

/** The model's verdict for one (machine, profile) pair. */
struct ModelResult
{
    /** min over resources of c_r / d_r — the throughput bound. */
    double ipc_bound = 0.0;
    /** 1 / ipc_bound, clamped to UNBOUNDED_IPC when the bound is 0. */
    double cpi_bound = 0.0;
    /** Station attaining the bound (first in enum order on ties). */
    Resource binding = Resource::IssueWidth;
    /** Every station, in enum order. */
    std::array<ResourceDemand, NUM_RESOURCES> resources{};
    /** The estimates the demands were computed from. */
    MixEstimates mix{};
    /** Priced area: IPU bundle + FPU units and queues. */
    double rbe_total = 0.0;

    /** "bound 1.43 IPC (0.70 CPI), binding resource mshr". */
    std::string summary() const;
};

/**
 * Compute the bottleneck IPC bound of @p machine under @p profile.
 * Pure and total: any configuration is accepted (a zero-capacity
 * station yields a 0 bound rather than a throw) so grid exploration
 * never dies on a degenerate point; run lintConfig() first when
 * error reporting matters.
 */
ModelResult predictBound(const core::MachineConfig &machine,
                         const trace::WorkloadProfile &profile);

/**
 * Total Table 2 area of @p machine (IPU bundle + FPU). Unlike the
 * strict cost::fpuRbe(), unit latencies outside the published price
 * ranges are clamped to the nearest endpoint instead of asserting,
 * so every *valid* configuration (latency 1..255) can be priced
 * during exploration.
 */
double pricedRbe(const core::MachineConfig &machine);

/** Knobs for the advisory diagnostics. */
struct AdviseOptions
{
    /**
     * Emit AUR042 when the mean predicted bound over the profiles
     * falls below this floor. 0 disables the check.
     */
    double min_ipc = 0.0;
    /**
     * Structures whose worst-case (minimum over profiles) slack is at
     * least this factor are flagged AUR041 as over-provisioned.
     */
    double slack_factor = 2.0;
    /**
     * AUR041 only fires for stations priced at or above this many
     * RBE — flagging a 2x-oversized 50-RBE queue is noise next to a
     * 2x-oversized reorder buffer.
     */
    double min_rbe = 100.0;
};

/**
 * Advisory findings for @p machine over @p profiles (all Warning
 * severity — the model advises, it never gates): one AUR040 naming
 * the binding resource per profile (Diagnostic::job = profile index
 * when several profiles are given), AUR041 per over-provisioned
 * priced structure, and AUR042 when the mean bound misses
 * @p options.min_ipc. Deterministic: output order is profile order,
 * then enum order.
 */
std::vector<Diagnostic>
adviseModel(const core::MachineConfig &machine,
            const std::vector<trace::WorkloadProfile> &profiles,
            const AdviseOptions &options = {});

} // namespace aurora::analyze

#endif // AURORA_ANALYZE_MODEL_HH
