/**
 * @file
 * Structured diagnostics for the static machine-model analyzers.
 *
 * Every check in aurora::analyze reports through a Diagnostic carrying
 * a *stable* identifier (AUR001, AUR002, ...) so the harness, the
 * fault-storm bench, and CI assert on IDs rather than message text.
 * The catalog below is the single source of truth: each entry fixes an
 * ID's severity, one-line title, fix hint, and the paper relationship
 * it encodes (rendered by `aurora_lint explain AURxxx` and documented
 * in docs/analysis.md).
 *
 * ID ranges:
 *   AUR0xx  machine-configuration lints (lintConfig, checkPipelineGraph)
 *   AUR04x  analytic-model advisories (predictBound, exploreGrid —
 *           always Warning: the model advises, it never gates)
 *   AUR1xx  trace-file lints (verifyTrace)
 *   AUR2xx  sweep-service admission and protocol rejections
 *   AUR3xx  distributed shard supervision (lease, fence, merge)
 *           (aurora_serve; see docs/service.md)
 */

#ifndef AURORA_ANALYZE_DIAGNOSTIC_HH
#define AURORA_ANALYZE_DIAGNOSTIC_HH

#include <string>
#include <string_view>
#include <vector>

namespace aurora::analyze
{

/** How bad is a finding? Errors reject the artifact; warnings don't. */
enum class Severity
{
    /** Suspicious sizing: legal to run, but the paper's relationships
     *  say it will stall or waste area. */
    Warning,
    /** The artifact is unusable: validation would reject it, the trace
     *  reader would refuse it, or the machine cannot make progress. */
    Error,
};

/** Stable display name ("warning" / "error"). */
const char *severityName(Severity severity);

/** One finding of a static analyzer. */
struct Diagnostic
{
    /** Stable catalog identifier ("AUR012"). */
    std::string id;
    /** Severity fixed by the catalog entry for @p id. */
    Severity severity = Severity::Error;
    /** Offending field(s), dotted-path style ("fpu.result_buses"). */
    std::string field;
    /** Offending value(s), rendered ("0"). */
    std::string value;
    /** Full human-readable explanation with the concrete numbers. */
    std::string message;
    /** Actionable fix hint from the catalog. */
    std::string hint;
    /**
     * Grid-job / profile index the finding refers to, when the
     * analyzer examined a list of jobs (analyze-grid points, multi-
     * profile analyze-config, sweep preflight). -1 = the finding is
     * about the artifact as a whole. Serialized in JSON only when
     * set, and part of the stable sort order (ID, then job).
     */
    int job = -1;

    /** "AUR012 error fpu.rob_entries=4: <message> (hint: ...)". */
    std::string toString() const;
};

/** Immutable catalog entry describing one diagnostic ID. */
struct DiagnosticInfo
{
    const char *id;
    Severity severity;
    /** One-line summary of the defect class. */
    const char *title;
    /** Which paper relationship (Table 1/2, Figure, section) the
     *  check encodes — the `explain` text. */
    const char *rationale;
    /** Generic fix hint. */
    const char *hint;
};

/** Every known diagnostic, in ID order. */
const std::vector<DiagnosticInfo> &catalog();

/** Catalog lookup; nullptr when @p id names no known diagnostic. */
const DiagnosticInfo *findDiagnostic(std::string_view id);

/**
 * The @p count catalog IDs closest to the (unknown) @p id — numeric
 * distance when @p id parses as AURnnn, edit distance otherwise.
 * Ties break in catalog order, so the suggestion list behind
 * `aurora_lint explain <typo>` is deterministic.
 */
std::vector<std::string> nearestDiagnosticIds(std::string_view id,
                                              std::size_t count = 3);

/**
 * Build a Diagnostic from its catalog entry. @p id must exist in the
 * catalog (AURORA_PANIC otherwise — an unknown ID is an analyzer bug,
 * not a user error). @p detail extends the catalog title with the
 * concrete offending numbers.
 */
Diagnostic makeDiagnostic(std::string_view id, std::string field,
                          std::string value, std::string detail);

/** Any error-severity finding in @p diagnostics? */
bool hasErrors(const std::vector<Diagnostic> &diagnostics);

/** Count of error-severity findings. */
std::size_t errorCount(const std::vector<Diagnostic> &diagnostics);

/** One line per finding; empty string for a clean report. */
std::string formatDiagnostics(const std::vector<Diagnostic> &diagnostics);

/**
 * Stable presentation order for reports: by ID, then job index, then
 * field, then value. Emission order stays meaningful inside an
 * analyzer, but anything diffed or golden-compared (aurora_lint
 * --json in particular) sorts first so byte-stability survives
 * analyzer refactors.
 */
void sortDiagnostics(std::vector<Diagnostic> &diagnostics);

/** JSON array of findings for CI consumption (aurora_lint --json). */
std::string toJson(const std::vector<Diagnostic> &diagnostics);

} // namespace aurora::analyze

#endif // AURORA_ANALYZE_DIAGNOSTIC_HH
