/**
 * @file
 * Static grid ranking and dominance pruning.
 *
 * A design-space sweep is a list of MachineConfigs crossed with a
 * workload suite. Before burning simulator cycles on every point,
 * the analytic model (model.hh) can rank the grid: each point gets a
 * mean predicted IPC bound and a Table 2 RBE price, and any point
 * that costs at least as much as another while predicting no more
 * performance — and is strictly worse on at least one axis — is
 * *dominated*: on the model's evidence it cannot sit on the
 * IPC-vs-area Pareto frontier the paper's §5 analysis (and ROADMAP
 * item 4's guided search) is after.
 *
 * Pruning is advisory and conservative: dominance is strict, so two
 * points with identical (RBE, bound) never prune each other, and the
 * true frontier of the *predicted* values is always preserved
 * (test_analyze_explore holds this as a property). Whether the
 * prediction ranks the same as the simulator is the calibration
 * harness's question, which is why AUR043 is a warning, not a gate.
 */

#ifndef AURORA_ANALYZE_EXPLORE_HH
#define AURORA_ANALYZE_EXPLORE_HH

#include <cstddef>
#include <vector>

#include "core/machine_config.hh"
#include "diagnostic.hh"
#include "model.hh"
#include "trace/workload_profile.hh"

namespace aurora::analyze
{

/** Explorer knobs. */
struct ExploreOptions
{
    /** AUR042 floor on each point's mean bound; 0 disables. */
    double min_ipc = 0.0;
};

/** Sentinel for GridPointModel::dominated_by on frontier points. */
inline constexpr std::size_t NOT_DOMINATED = ~std::size_t{0};

/** The model's verdict for one grid point. */
struct GridPointModel
{
    /** Index into the grid handed to exploreGrid(). */
    std::size_t index = 0;
    /** Priced area (analyze::pricedRbe). */
    double rbe = 0.0;
    /** Mean ipc_bound over the profiles. */
    double bound = 0.0;
    /** Binding resource of the lowest-bound profile. */
    Resource binding = Resource::IssueWidth;
    /** Dominated by some cheaper-or-equal, better point? */
    bool dominated = false;
    /**
     * Index of the dominating point (cheapest such, then lowest
     * index — deterministic); NOT_DOMINATED for frontier points.
     */
    std::size_t dominated_by = NOT_DOMINATED;
};

/** The ranked grid. */
struct ExploreResult
{
    /** One entry per grid point, in grid order. */
    std::vector<GridPointModel> points;
    /**
     * Non-dominated points, sorted by RBE ascending then grid index
     * — the predicted Pareto frontier, cheapest first.
     */
    std::vector<std::size_t> frontier;
    /**
     * AUR043 per dominated point and AUR042 per below-floor point
     * (Diagnostic::job = grid index), already sorted.
     */
    std::vector<Diagnostic> diagnostics;
};

/**
 * Rank @p machines under @p profiles. Pure and total like
 * predictBound(): degenerate configurations get a 0 bound (and are
 * naturally dominated by any working point of equal or lower cost)
 * rather than throwing. Deterministic: identical inputs produce
 * byte-identical results.
 */
ExploreResult
exploreGrid(const std::vector<core::MachineConfig> &machines,
            const std::vector<trace::WorkloadProfile> &profiles,
            const ExploreOptions &options = {});

} // namespace aurora::analyze

#endif // AURORA_ANALYZE_EXPLORE_HH
