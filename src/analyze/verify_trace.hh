/**
 * @file
 * Single-pass trace-file verifier.
 *
 * The trace reader (trace::FileTraceSource) throws on the *first*
 * structural defect and understands nothing about semantics — a trace
 * full of reads of never-written registers or misaligned accesses
 * replays "successfully" and silently produces garbage statistics.
 * verifyTrace() reads the raw bytes once, independently of the
 * reader, and reports *every* problem as catalog diagnostics:
 * structural (header, version, record count, op classes), semantic
 * (register indices, alignment, operand shape, PC continuity,
 * def-before-use), and statistical (measured op-class mix vs. the
 * declared WorkloadProfile). It never throws on bad input: a verifier
 * that dies on the file it exists to judge is useless.
 */

#ifndef AURORA_ANALYZE_VERIFY_TRACE_HH
#define AURORA_ANALYZE_VERIFY_TRACE_HH

#include <array>
#include <string>
#include <vector>

#include "diagnostic.hh"
#include "trace/op_class.hh"
#include "trace/workload_profile.hh"
#include "util/types.hh"

namespace aurora::analyze
{

/** Verifier knobs. */
struct TraceCheckOptions
{
    /**
     * Profile the trace claims to implement; nullptr skips the mix
     * check. The pointee must outlive the verifyTrace() call.
     */
    const trace::WorkloadProfile *profile = nullptr;
    /**
     * Absolute tolerance on each instruction-mix fraction before
     * AUR108 fires. Generous by design: the generators dilute the
     * nominal mix with loop branches and delay-slot NOPs, so the
     * measured fractions sit a few points below the profile's.
     */
    double mix_tolerance = 0.10;
    /** Emission cap per diagnostic ID (further hits are counted). */
    std::size_t max_per_id = 8;
};

/** Everything one pass over the file established. */
struct TraceReport
{
    /** All findings, capped per ID by TraceCheckOptions::max_per_id. */
    std::vector<Diagnostic> diagnostics;
    /** Records the header promised. */
    Count promised = 0;
    /** Records actually present and scanned. */
    Count records = 0;
    /** Per-op-class record counts. */
    std::array<Count, trace::NUM_OP_CLASSES> histogram{};
    /** Distinct integer registers read before any record wrote them. */
    unsigned int_live_ins = 0;
    /** Distinct FP registers read before any record wrote them. */
    unsigned fp_live_ins = 0;
    /** pc/next_pc continuity breaks seen (reported via AUR107). */
    Count discontinuities = 0;

    /** No error-severity findings (warnings permitted). */
    bool ok() const { return !hasErrors(diagnostics); }

    /** Multi-line human summary: verdict, counts, histogram. */
    std::string summary() const;
};

/** Verify the trace file at @p path in one pass. */
TraceReport verifyTrace(const std::string &path,
                        const TraceCheckOptions &options = {});

} // namespace aurora::analyze

#endif // AURORA_ANALYZE_VERIFY_TRACE_HH
