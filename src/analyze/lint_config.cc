#include "lint_config.hh"

#include <algorithm>
#include <sstream>

#include "cost/rbe.hh"
#include "fpu/result_bus.hh"
#include "pipeline_graph.hh"

namespace aurora::analyze
{

namespace
{

/** Latest writeback slot a result bus can be reserved for. */
constexpr Cycle MAX_FP_LATENCY = fpu::ResultBusSchedule::WINDOW - 1;

/** Render a number the way config_io keys are written. */
template <typename T>
std::string
str(T value)
{
    std::ostringstream os;
    os << value;
    return os.str();
}

void
emit(std::vector<Diagnostic> &out, const char *id, std::string field,
     std::string value, std::string detail)
{
    out.push_back(makeDiagnostic(id, std::move(field),
                                 std::move(value), std::move(detail)));
}

/** Deepest *pipelined* FP unit: it alone bounds in-flight results. */
Cycle
maxPipelinedFpLatency(const fpu::FpuConfig &fpu)
{
    Cycle deepest = 0;
    for (const fpu::FpUnitConfig *unit :
         {&fpu.add, &fpu.mul, &fpu.div, &fpu.cvt})
        if (unit->pipelined)
            deepest = std::max(deepest, unit->latency);
    return deepest;
}

/** validate()-class structural defects, restated as catalog IDs. */
void
lintStructure(const core::MachineConfig &m, std::vector<Diagnostic> &out)
{
    if (m.issue_width < 1 || m.issue_width > 2)
        emit(out, "AUR008", "issue", str(m.issue_width),
             detail::concat("issue_width is ", m.issue_width));
    if (m.ifu.fetch_width != m.issue_width)
        emit(out, "AUR004", "fetch", str(m.ifu.fetch_width),
             detail::concat("fetch_width ", m.ifu.fetch_width,
                            " vs issue_width ", m.issue_width));
    if (m.retire_width < m.issue_width)
        emit(out, "AUR009", "retire", str(m.retire_width),
             detail::concat("retire_width ", m.retire_width,
                            " < issue_width ", m.issue_width));
    if (m.ifu.line_bytes != m.lsu.line_bytes ||
        m.ifu.line_bytes != m.prefetch.line_bytes ||
        m.ifu.line_bytes != m.write_cache.line_bytes)
        emit(out, "AUR003", "iline/dline/pf_line/wc_line",
             detail::concat(m.ifu.line_bytes, "/", m.lsu.line_bytes,
                            "/", m.prefetch.line_bytes, "/",
                            m.write_cache.line_bytes),
             "icache, dcache, prefetch and write-cache lines must be "
             "one size");
    if (m.rob_entries == 0)
        emit(out, "AUR001", "rob", "0", "IPU reorder buffer is empty");
    if (m.alu_latency < 1)
        emit(out, "AUR020", "alu_lat", str(m.alu_latency), "");
    if (m.lsu.mshr_entries == 0)
        emit(out, "AUR002", "mshr", "0", "");
    if (m.prefetch.enabled && m.prefetch.num_buffers == 0)
        emit(out, "AUR011", "pf_buffers", "0", "");

    const struct
    {
        const char *key;
        unsigned entries;
    } queues[] = {{"fp_instq", m.fpu.inst_queue},
                  {"fp_loadq", m.fpu.load_queue},
                  {"fp_storeq", m.fpu.store_queue}};
    for (const auto &q : queues)
        if (q.entries == 0)
            emit(out, "AUR005", q.key, "0",
                 detail::concat(q.key, " has no entries"));
    if (m.fpu.rob_entries == 0)
        emit(out, "AUR001", "fp_rob", "0",
             "FPU reorder buffer is empty");

    const struct
    {
        const char *key;
        Cycle latency;
    } units[] = {{"fp_add_lat", m.fpu.add.latency},
                 {"fp_mul_lat", m.fpu.mul.latency},
                 {"fp_div_lat", m.fpu.div.latency},
                 {"fp_cvt_lat", m.fpu.cvt.latency}};
    for (const auto &u : units)
        if (u.latency < 1 || u.latency > MAX_FP_LATENCY)
            emit(out, "AUR007", u.key, str(u.latency),
                 detail::concat(u.key, "=", u.latency, " outside [1, ",
                                MAX_FP_LATENCY, "]"));
    if (m.fpu.provably_safe_frac < 0.0 ||
        m.fpu.provably_safe_frac > 1.0)
        emit(out, "AUR006", "fp_safe_frac",
             str(m.fpu.provably_safe_frac), "");
}

/** §5 sizing relationships: legal configurations known to stall. */
void
lintSizing(const core::MachineConfig &m, std::vector<Diagnostic> &out)
{
    const Cycle deepest = maxPipelinedFpLatency(m.fpu);
    if (m.fpu.rob_entries > 0 && m.fpu.rob_entries < deepest)
        emit(out, "AUR012", "fp_rob", str(m.fpu.rob_entries),
             detail::concat("fp_rob=", m.fpu.rob_entries,
                            " < deepest pipelined FP latency ",
                            deepest));
    if (m.fpu.inst_queue > 0 && m.fpu.inst_queue < deepest)
        emit(out, "AUR013", "fp_instq", str(m.fpu.inst_queue),
             detail::concat("fp_instq=", m.fpu.inst_queue,
                            " < deepest pipelined FP latency ",
                            deepest));
    if (m.fpu.load_queue > 0 && m.fpu.load_queue < m.issue_width)
        emit(out, "AUR014", "fp_loadq", str(m.fpu.load_queue),
             detail::concat("fp_loadq=", m.fpu.load_queue,
                            " < issue_width ", m.issue_width));
    if (m.write_cache.lines > 0 && m.write_cache.lines < m.issue_width)
        emit(out, "AUR015", "wc_lines", str(m.write_cache.lines),
             detail::concat("wc_lines=", m.write_cache.lines,
                            " < issue_width ", m.issue_width));
    if (m.prefetch.enabled) {
        if (m.prefetch.depth > m.biu.queue_depth)
            emit(out, "AUR016", "pf_depth", str(m.prefetch.depth),
                 detail::concat("pf_depth=", m.prefetch.depth,
                                " > biu_queue=", m.biu.queue_depth));
        const unsigned aggregate =
            m.prefetch.num_buffers * m.prefetch.depth;
        if (aggregate > 2 * m.biu.queue_depth)
            emit(out, "AUR017", "pf_buffers*pf_depth", str(aggregate),
                 detail::concat(m.prefetch.num_buffers, " buffers x ",
                                m.prefetch.depth, " lines > 2 x "
                                "biu_queue=", m.biu.queue_depth));
    }
    if (m.rob_entries * m.retire_width < m.lsu.dcache_latency)
        emit(out, "AUR018", "rob*retire",
             str(m.rob_entries * m.retire_width),
             detail::concat("rob=", m.rob_entries, " x retire=",
                            m.retire_width, " < dcache_lat=",
                            m.lsu.dcache_latency));
    if (m.lsu.victim_lines > 0 && m.prefetch.enabled)
        emit(out, "AUR022", "victim_lines", str(m.lsu.victim_lines),
             "");
    if (m.biu.model_collisions && m.biu.collision_penalty == 0)
        emit(out, "AUR023", "collision_penalty", "0", "");
    if (m.fpu.precise_exceptions && m.fpu.provably_safe_frac == 0.0)
        emit(out, "AUR024", "fp_precise/fp_safe_frac", "on/0", "");
}

/** §4.2 area budget: price the machine and report the overshoot. */
void
lintBudget(const core::MachineConfig &m, double budget,
           std::vector<Diagnostic> &out)
{
    if (budget <= 0.0)
        return;
    const double ipu = cost::ipuRbe(m.ipuResources());
    const double fpu = cost::fpuRbe(m.fpu);
    const double total = ipu + fpu;
    if (total <= 0.95 * budget)
        return;

    // Per-structure breakdown so the overshoot is actionable: the
    // user sees *which* structures to shrink, in RBE, not just that
    // the sum is too large.
    const cost::IpuResources res = m.ipuResources();
    std::ostringstream detail;
    detail << str(total) << " RBE vs budget " << str(budget)
           << " (icache " << cost::icacheRbe(res.icache_bytes)
           << ", wcache " << cost::writeCacheRbe(res.write_cache_lines)
           << ", prefetch "
           << cost::prefetchRbe(res.prefetch_buffers,
                                res.prefetch_depth)
           << ", rob " << cost::robRbe(res.rob_entries) << ", mshr "
           << cost::mshrRbe(res.mshr_entries) << ", pipelines "
           << cost::pipelineRbe(res.pipelines) << ", fpu " << fpu
           << ")";
    emit(out, total > budget ? "AUR030" : "AUR031", "rbe", str(total),
         detail.str());
}

} // namespace

std::vector<Diagnostic>
lintConfig(const core::MachineConfig &machine, const LintOptions &options)
{
    std::vector<Diagnostic> out;
    lintStructure(machine, out);
    lintSizing(machine, out);
    lintBudget(machine, options.rbe_budget, out);
    for (Diagnostic &d : checkPipelineGraph(machine))
        out.push_back(std::move(d));
    return out;
}

} // namespace aurora::analyze
