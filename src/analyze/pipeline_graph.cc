#include "pipeline_graph.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/logging.hh"

namespace aurora::analyze
{

std::size_t
PipelineGraph::index(const std::string &name) const
{
    for (std::size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i].name == name)
            return i;
    AURORA_PANIC("pipeline graph has no node named '", name, "'");
}

namespace
{

/** Incremental graph builder with name-based edge wiring. */
class GraphBuilder
{
  public:
    void node(std::string name, long capacity, bool sink = false)
    {
        graph_.nodes.push_back(
            ResourceNode{std::move(name), capacity, sink});
    }

    void edge(const std::string &from, const std::string &to)
    {
        graph_.edges.push_back(
            DrainEdge{graph_.index(from), graph_.index(to)});
    }

    PipelineGraph take() { return std::move(graph_); }

  private:
    PipelineGraph graph_;
};

/** In-flight capacity of one FP functional unit. */
long
fpUnitCapacity(const fpu::FpUnitConfig &unit)
{
    // A pipelined unit holds one op per stage; an iterative unit is
    // busy with exactly one op regardless of latency.
    return unit.pipelined ? static_cast<long>(unit.latency) : 1;
}

} // namespace

PipelineGraph
buildPipelineGraph(const core::MachineConfig &machine)
{
    GraphBuilder b;

    // --- nodes: every finite resource work can occupy -------------
    // "trace" is the unbounded work source; "retired" and "memory"
    // are the sinks work must be able to reach.
    b.node("trace", ResourceNode::UNBOUNDED);
    b.node("fetch-buffer",
           static_cast<long>(machine.ifu.buffer_entries));
    b.node("issue-slots", static_cast<long>(machine.issue_width));
    b.node("ipu-rob", static_cast<long>(machine.rob_entries));
    b.node("mshr", static_cast<long>(machine.lsu.mshr_entries));
    b.node("write-cache", static_cast<long>(machine.write_cache.lines));
    b.node("biu-queue", static_cast<long>(machine.biu.queue_depth));
    if (machine.prefetch.enabled)
        b.node("prefetch-buffers",
               static_cast<long>(machine.prefetch.num_buffers *
                                 machine.prefetch.depth));
    b.node("fp-inst-queue", static_cast<long>(machine.fpu.inst_queue));
    b.node("fp-load-queue", static_cast<long>(machine.fpu.load_queue));
    b.node("fp-store-queue",
           static_cast<long>(machine.fpu.store_queue));
    b.node("fp-add", fpUnitCapacity(machine.fpu.add));
    b.node("fp-mul", fpUnitCapacity(machine.fpu.mul));
    b.node("fp-div", fpUnitCapacity(machine.fpu.div));
    b.node("fp-cvt", fpUnitCapacity(machine.fpu.cvt));
    b.node("fp-result-bus", static_cast<long>(machine.fpu.result_buses));
    b.node("fp-rob", static_cast<long>(machine.fpu.rob_entries));
    b.node("retired", ResourceNode::UNBOUNDED, /*sink=*/true);
    b.node("memory", ResourceNode::UNBOUNDED, /*sink=*/true);

    // --- drain edges: work leaves `from` by entering `to` ----------
    b.edge("trace", "fetch-buffer");
    b.edge("fetch-buffer", "issue-slots");
    b.edge("issue-slots", "ipu-rob");
    b.edge("ipu-rob", "retired");

    // Memory operations: every access holds an MSHR; misses become
    // BIU transactions, stores land in the write cache, FP load data
    // is delivered into the FPU's load queue (§2.3, §3).
    b.edge("issue-slots", "mshr");
    b.edge("mshr", "biu-queue");
    b.edge("mshr", "write-cache");
    b.edge("mshr", "fp-load-queue");
    b.edge("write-cache", "biu-queue");
    b.edge("biu-queue", "memory");
    if (machine.prefetch.enabled) {
        // Stream-buffer lines leave by being consumed on a miss or
        // discarded by LRU reallocation — the discard path always
        // exists, so the buffers drain unconditionally (§2.2).
        b.edge("prefetch-buffers", "memory");
    }

    // FP side: the §3 decoupled pipeline. Operands and operations
    // meet at the functional units; every unit writes back over a
    // shared result bus into the FPU reorder buffer; results retire
    // or leave through the store queue into the write cache.
    b.edge("issue-slots", "fp-inst-queue");
    for (const char *queue : {"fp-inst-queue", "fp-load-queue"})
        for (const char *unit : {"fp-add", "fp-mul", "fp-div", "fp-cvt"})
            b.edge(queue, unit);
    for (const char *unit : {"fp-add", "fp-mul", "fp-div", "fp-cvt"})
        b.edge(unit, "fp-result-bus");
    b.edge("fp-result-bus", "fp-rob");
    b.edge("fp-rob", "retired");
    b.edge("fp-rob", "fp-store-queue");
    b.edge("fp-store-queue", "write-cache");

    return b.take();
}

namespace
{

/**
 * drains[n]: work resting in n can reach a sink through passable
 * nodes. Fixed point of: a sink drains; n drains if some edge n->m
 * has m passable (work can enter it) and m drains.
 */
std::vector<bool>
computeDrains(const PipelineGraph &g)
{
    std::vector<bool> drains(g.nodes.size(), false);
    for (std::size_t i = 0; i < g.nodes.size(); ++i)
        drains[i] = g.nodes[i].sink;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const DrainEdge &e : g.edges) {
            const ResourceNode &to = g.nodes[e.to];
            const bool ok =
                to.sink || (to.passable() && drains[e.to]);
            if (ok && !drains[e.from]) {
                drains[e.from] = true;
                changed = true;
            }
        }
    }
    return drains;
}

/** Forward reachability from "trace" through passable nodes. */
std::vector<bool>
computeReachable(const PipelineGraph &g)
{
    std::vector<bool> reach(g.nodes.size(), false);
    reach[g.index("trace")] = true;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const DrainEdge &e : g.edges) {
            const ResourceNode &from = g.nodes[e.from];
            if (reach[e.from] && from.passable() && !reach[e.to]) {
                reach[e.to] = true;
                changed = true;
            }
        }
    }
    return reach;
}

/** Zero-capacity nodes in @p trapped's forward cone (its chokes). */
std::vector<std::string>
chokesFor(const PipelineGraph &g, std::size_t trapped)
{
    std::vector<bool> seen(g.nodes.size(), false);
    seen[trapped] = true;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const DrainEdge &e : g.edges)
            if (seen[e.from] && !seen[e.to]) {
                seen[e.to] = true;
                changed = true;
            }
    }
    std::vector<std::string> chokes;
    for (std::size_t i = 0; i < g.nodes.size(); ++i)
        if (seen[i] && !g.nodes[i].sink && g.nodes[i].capacity == 0)
            chokes.push_back(g.nodes[i].name);
    std::sort(chokes.begin(), chokes.end());
    return chokes;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += names[i];
    }
    return out;
}

} // namespace

std::vector<Diagnostic>
checkPipelineGraph(const core::MachineConfig &machine)
{
    const PipelineGraph g = buildPipelineGraph(machine);
    const std::vector<bool> drains = computeDrains(g);
    const std::vector<bool> reachable = computeReachable(g);

    // Group trapped resources by their choke set: one zeroed resource
    // that wedges the whole FP side reads as one finding, not six.
    std::map<std::string, std::vector<std::string>> trapped_by_choke;
    std::map<std::string, std::vector<std::string>> choke_names;
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        const ResourceNode &n = g.nodes[i];
        const bool holds_work = !n.sink && n.passable();
        if (!holds_work || !reachable[i] || drains[i])
            continue;
        std::vector<std::string> chokes = chokesFor(g, i);
        const std::string key = joinNames(chokes);
        trapped_by_choke[key].push_back(n.name);
        choke_names[key] = std::move(chokes);
    }

    std::vector<Diagnostic> out;
    for (auto &[key, trapped] : trapped_by_choke) {
        std::sort(trapped.begin(), trapped.end());
        std::ostringstream detail;
        detail << "work held in {" << joinNames(trapped) << "} of '"
               << machine.name << "' can never reach retirement or "
               << "memory";
        if (!key.empty())
            detail << "; every drain path passes through "
                   << "zero-capacity {" << key << "}";
        else
            detail << "; no drain edge leads to a sink";
        out.push_back(makeDiagnostic("AUR010", key.empty() ? "-" : key,
                                     "0", detail.str()));
    }
    return out;
}

} // namespace aurora::analyze
