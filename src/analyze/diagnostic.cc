#include "diagnostic.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "util/logging.hh"

namespace aurora::analyze
{

const char *
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

std::string
Diagnostic::toString() const
{
    std::ostringstream out;
    out << id << ' ' << severityName(severity);
    if (job >= 0)
        out << " [job " << job << ']';
    if (!field.empty()) {
        out << ' ' << field;
        if (!value.empty())
            out << '=' << value;
    }
    out << ": " << message;
    if (!hint.empty())
        out << " (fix: " << hint << ')';
    return out.str();
}

const std::vector<DiagnosticInfo> &
catalog()
{
    // Severity and hint live here, not at the emission site, so every
    // emitter of an ID agrees with `aurora_lint explain` and with
    // docs/analysis.md. Keep the three in sync when adding an entry.
    static const std::vector<DiagnosticInfo> entries = {
        // ---- configuration errors (validate()-class defects) ----
        {"AUR001", Severity::Error, "reorder buffer has zero entries",
         "Table 1 sizes the IPU reorder buffer at 2/6/8 entries; with "
         "zero entries no instruction can ever be tagged for retirement "
         "and the machine is structurally empty.",
         "set rob to at least 1 (Table 1 uses 2/6/8)"},
        {"AUR002", Severity::Error, "LSU has zero MSHRs",
         "Section 2.3 reserves an MSHR for every memory operation "
         "active in the LSU pipeline, hits included; with zero MSHRs "
         "no load or store can ever start.",
         "set mshr to at least 1 (Table 1 uses 1/2/4)"},
        {"AUR003", Severity::Error, "cache line sizes disagree",
         "The I-cache, D-cache, prefetch stream buffers and write "
         "cache all exchange whole lines over the BIU (Section 2); a "
         "line handed from one unit to another must mean the same "
         "bytes in all of them.",
         "use one line size (the study uses 32 bytes) everywhere"},
        {"AUR004", Severity::Error, "fetch width differs from issue width",
         "Fetch and issue are lock-stepped through aligned EVEN/ODD "
         "pairs (Section 2.1, Figure 3); a mismatch either starves or "
         "overruns the fetch buffer every cycle.",
         "set fetch equal to issue (the parser's issue= key does both)"},
        {"AUR005", Severity::Error, "an FPU decoupling queue has zero entries",
         "Section 3 decouples the FPU from the IPU precisely through "
         "the instruction/load/store queues; a zero-entry queue means "
         "no FP instruction, operand or result can ever transfer.",
         "give every FP queue at least one entry (Fig 9 rec: 5/2/3)"},
        {"AUR006", Severity::Error, "provably-safe fraction outside [0,1]",
         "Section 3.1's exponent-examination hardware proves a "
         "*fraction* of FP operations exception-free; the knob is a "
         "probability and anything outside [0,1] is meaningless.",
         "clamp fp_safe_frac into [0,1] (the study measured 0.70)"},
        {"AUR007", Severity::Error, "FP unit latency outside the result-bus window",
         "Result buses are reserved at issue time in a fixed-size "
         "scheduling window; a latency of zero or beyond the window "
         "can never be granted a writeback slot.",
         "keep each FP latency in [1,255]; Fig 9 sweeps 1-5 and 10-30"},
        {"AUR008", Severity::Error, "issue width is not 1 or 2",
         "The study's machine issues one EVEN/ODD pair per cycle at "
         "most (Section 2.1); widths beyond 2 have no fetch, decode or "
         "scoreboard support in the model.",
         "set issue to 1 or 2"},
        {"AUR009", Severity::Error, "retire width below issue width",
         "Retirement must keep up with issue on average or the "
         "reorder buffer leaks occupancy until the machine stalls "
         "permanently.",
         "set retire >= issue"},
        {"AUR010", Severity::Error, "structural deadlock: no drain path",
         "A finite resource holds work but every path by which that "
         "work could leave passes through a zero-capacity resource, so "
         "once it fills the machine wedges; only the forward-progress "
         "watchdog would end such a run (at full cycle-budget cost).",
         "give the named choke-point resource nonzero capacity"},
        {"AUR011", Severity::Error, "prefetch enabled with zero stream buffers",
         "Section 2.2's prefetch unit is a pool of stream buffers; "
         "enabling it with an empty pool makes every miss probe a "
         "unit that can never hold a line.",
         "disable prefetch (pf=off) or give it buffers (Table 1: 2/4/8)"},

        // ---- configuration warnings (sizing relationships) ----
        {"AUR012", Severity::Warning, "FPU reorder buffer shallower than deepest pipelined unit",
         "A pipelined unit of latency L can hold L results in flight; "
         "with fewer FPU ROB entries than L the ROB, not the unit, "
         "bounds FP concurrency (Figure 9c shows returns flatten only "
         "at ~6 entries against the 5-cycle multiplier).",
         "size fp_rob to at least the largest pipelined FP latency"},
        {"AUR013", Severity::Warning, "FP instruction queue shallower than deepest pipelined unit",
         "The decoupling instruction queue must cover the FP pipeline "
         "depth or the IPU stalls on transfer before the first result "
         "returns (Figure 9a flattens at ~5 entries).",
         "size fp_instq to at least the largest pipelined FP latency"},
        {"AUR014", Severity::Warning, "FP load queue narrower than issue width",
         "Both issue slots can carry FP loads in the same cycle "
         "(Section 3); a load-data queue narrower than the issue width "
         "back-pressures the IPU on the first such pair.",
         "size fp_loadq to at least the issue width (Fig 9b rec: 2)"},
        {"AUR015", Severity::Warning, "write cache smaller than issue width",
         "Both issue slots can carry stores in the same cycle; fewer "
         "write-cache lines than the issue width forces an eviction "
         "per cycle in the worst case, serializing on the BIU "
         "(Table 5's hit rates assume 2-8 lines).",
         "size wc to at least the issue width (Table 1: 2/4/8)"},
        {"AUR016", Severity::Warning, "prefetch depth exceeds BIU queue depth",
         "A single stream buffer topping itself up can then fill the "
         "whole BIU transmit queue, starving demand misses — the "
         "Section 5.2 small-model pathology taken to its limit.",
         "keep pf_depth <= biu_queue"},
        {"AUR017", Severity::Warning, "aggregate prefetch capacity swamps the BIU",
         "All stream buffers prefetch through one bus; aggregate "
         "capacity (buffers x depth) beyond twice the BIU queue keeps "
         "the bus saturated with speculative lines that demand misses "
         "must queue behind (Section 5.2).",
         "reduce pf/pf_depth or deepen biu_queue"},
        {"AUR018", Severity::Warning, "reorder buffer cannot cover the D-cache hit latency",
         "Loads hold their ROB tag for the full pipelined hit latency "
         "(Section 2.3); with rob x retire below that latency, back-"
         "to-back loads drain the ROB before the first hit returns — "
         "the small model's dominant stall in Figure 4.",
         "size rob x retire to at least dcache_lat"},
        {"AUR020", Severity::Error, "ALU latency below one cycle",
         "Results cannot feed dependents before they exist; even the "
         "fully-forwarded four-stage Aurora III pipelines (Section "
         "2.1) deliver an ALU result one cycle after issue.",
         "set alu_lat to at least 1"},
        {"AUR022", Severity::Warning, "victim cache and prefetch both enabled",
         "The Aurora III shipped stream buffers *instead of* a victim "
         "cache (Section 2.2); enabling both double-charges RBE for "
         "overlapping miss coverage and is outside the study's "
         "calibrated design space.",
         "disable one of victim/pf (the study's machines use pf only)"},
        {"AUR023", Severity::Warning, "bus collisions modeled with zero penalty",
         "The Section 2 collision-based bus protocol costs a retry "
         "when transmit meets an inbound reply; modeling collisions "
         "with a zero-cycle penalty silently reduces to the collision-"
         "free model while appearing to be the fidelity ablation.",
         "set collision_penalty >= 1 or turn collisions off"},
        {"AUR024", Severity::Warning, "precise FP exceptions with zero provably-safe fraction",
         "Precise mode drains the FPU before every transfer that is "
         "not provably safe (Section 3.1); with fp_safe_frac=0 *every* "
         "FP instruction serializes — the worst case of Figure 10, "
         "usually a mis-set knob rather than an intended experiment.",
         "raise fp_safe_frac (measured: 0.70) or use imprecise mode"},

        // ---- RBE budget ----
        {"AUR030", Severity::Error, "configuration exceeds the RBE area budget",
         "The whole study trades performance against implementation "
         "area in register-bit-equivalents (Section 4.2, Table 2); a "
         "configuration over the stated budget is not buildable in "
         "the die area the comparison assumes.",
         "shrink the listed structures or raise --budget"},
        {"AUR031", Severity::Warning, "configuration within 5% of the RBE area budget",
         "Area estimates carry error (Table 2 prices come from layout "
         "of similar structures); a configuration this close to the "
         "budget may not survive implementation.",
         "leave headroom or confirm the area estimate"},

        // ---- analytic-model advisories (model.cc / explore.cc) ----
        // All Warning by design: the bound model predicts, the
        // simulator decides. An advisory must never fail a lint run
        // or a sweep launch.
        {"AUR040", Severity::Warning, "predicted binding bottleneck",
         "The Little's-law bottleneck model (docs/model.md) computed "
         "each resource's service demand under the named workload "
         "profile; the resource in `field` attains the minimum "
         "capacity/demand ratio and therefore caps IPC at the value "
         "shown. Spending area anywhere else cannot raise the bound.",
         "enlarge the named resource (or accept the bound)"},
        {"AUR041", Severity::Warning, "over-provisioned structure",
         "A priced structure whose bound exceeds the machine's "
         "overall IPC bound by >= 2x on every profile examined is "
         "area the bottleneck analysis says cannot pay for itself: "
         "Table 2 RBE spent where no workload can use it (the §5 "
         "resource-allocation argument, run in reverse).",
         "shrink the structure and spend the RBE on the binding one"},
        {"AUR042", Severity::Warning, "predicted IPC below the requested floor",
         "The mean bottleneck bound over the profiles examined falls "
         "below the --min-ipc floor. The bound is optimistic by "
         "construction, so the simulator can only do worse — the "
         "configuration cannot meet the target and simulating it "
         "would spend cycles to learn a foregone conclusion.",
         "enlarge the binding resource or lower --min-ipc"},
        {"AUR043", Severity::Warning, "dominated grid point",
         "Another configuration in the same grid costs no more RBE "
         "and has a strictly higher (or equal-cost higher) predicted "
         "bound: on the model's evidence this point cannot sit on "
         "the IPC-vs-area Pareto frontier, and a guided search "
         "(ROADMAP item 4) should simulate the dominating point "
         "instead.",
         "drop the point, or keep it to validate the model's ranking"},

        // ---- trace-file errors ----
        {"AUR101", Severity::Error, "trace header unreadable or bad magic",
         "Aurora traces open with the 16-byte \"AUR3\" header; a file "
         "that cannot supply it is not a trace (or was clobbered at "
         "the start).",
         "regenerate the trace with trace::writeTrace()"},
        {"AUR102", Severity::Error, "unsupported trace format version",
         "The reader understands exactly format version 1; any other "
         "value means a writer/reader mismatch and silently guessing "
         "the layout would fabricate workload data.",
         "regenerate the trace with the current writer"},
        {"AUR103", Severity::Error, "record has an out-of-range op class",
         "Every record's op-class byte selects the issue path (IPU "
         "ALU, load, store, branch, FP add/mul/div/cvt...); a value "
         "outside the enum would issue to no unit.",
         "regenerate the trace; the file was corrupted mid-body"},
        {"AUR104", Severity::Error, "trace body shorter than the header promises",
         "The header's record count is a promise; a shorter body means "
         "a torn write or truncated copy, and replaying a partial "
         "workload would silently skew every statistic.",
         "regenerate or re-copy the trace file"},
        {"AUR105", Severity::Error, "record references a nonexistent register",
         "The machine has 32 integer and 32 FP registers (plus the "
         "no-register sentinel); an index past 31 would address "
         "scoreboard state that does not exist.",
         "regenerate the trace; the file was corrupted mid-body"},
        {"AUR106", Severity::Error, "misaligned or odd-sized memory access",
         "The LSU models naturally-aligned 4- and 8-byte accesses "
         "only (Section 2.3); other shapes would need an unmodeled "
         "alignment network and multi-line splits.",
         "emit naturally-aligned 4/8-byte accesses in the generator"},

        // ---- trace-file warnings ----
        {"AUR107", Severity::Warning, "program-counter discontinuity",
         "Each record's next_pc names its successor's pc; a break "
         "means records were reordered or spliced from different "
         "traces, which invalidates the I-cache locality the front "
         "end models.",
         "regenerate the trace as one continuous stream"},
        {"AUR108", Severity::Warning, "op-class mix disagrees with the declared profile",
         "Workload profiles pin the Table 3 instruction mixes; a "
         "trace whose measured mix strays from its declared profile "
         "yields results attributed to the wrong workload.",
         "check the profile name or regenerate the trace"},
        {"AUR109", Severity::Error, "malformed operands for op class",
         "A load without a destination or an FP arithmetic op with no "
         "FP destination cannot interact with the scoreboard the way "
         "its op class demands; the record is self-contradictory.",
         "regenerate the trace; the generator wrote invalid operands"},
        {"AUR110", Severity::Warning, "excessive undefined register reads",
         "A long trace whose reads are mostly of registers no earlier "
         "record defined looks like shuffled or truncated-then-"
         "spliced input; dependence-driven stalls would be "
         "meaningless on it.",
         "regenerate the trace from a single continuous run"},

        // ---- sweep-service admission and protocol (aurora_serve) ----
        {"AUR201", Severity::Error, "tenant grid quota exceeded",
         "The service bounds how many grids one tenant may have "
         "queued or running at once so a single guided-search client "
         "cannot monopolize the shared worker pool (ROADMAP item 2's "
         "fairness requirement).",
         "wait for an active grid to finish, or raise --quota-grids"},
        {"AUR202", Severity::Error, "tenant job quota exceeded",
         "Per-tenant queued-job budgets keep one enormous grid from "
         "starving every other tenant's small ones; round-robin "
         "scheduling is only fair when no queue is unbounded.",
         "split the grid, or raise --quota-jobs"},
        {"AUR203", Severity::Error, "service overloaded (global queue full)",
         "The submission queue is bounded; past the limit the service "
         "sheds load with a structured rejection instead of buffering "
         "without bound — the client should back off and retry.",
         "retry with backoff, or raise --queue-depth"},
        {"AUR204", Severity::Error, "service draining",
         "A SIGTERM put the daemon in drain mode: running jobs "
         "finish, queued work persists in the spool for the next "
         "instance, and new submissions are refused.",
         "resubmit after the replacement daemon starts"},
        {"AUR205", Severity::Error, "malformed submission",
         "The grid could not be built: empty job list, a job count "
         "past --max-grid-jobs, an unparseable machine spec, or an "
         "unknown profile name.",
         "fix the submission; aurora_submit --help shows the shape"},
        {"AUR206", Severity::Error, "duplicate grid fingerprint",
         "A grid with this fingerprint is already spooled; running "
         "it twice would burn workers to produce bit-identical "
         "results. Re-attach to the existing grid instead.",
         "use aurora_submit --attach <fingerprint>"},
        {"AUR207", Severity::Error, "wire protocol violation",
         "A frame failed its CRC or arrived malformed (bad magic, "
         "implausible length, unknown or out-of-order message type). "
         "The connection is closed; journaled state is unaffected.",
         "reconnect; check client and server protocol versions"},
        {"AUR208", Severity::Error, "unknown grid fingerprint",
         "Attach/cancel named a fingerprint the spool does not hold "
         "— mistyped, or the grid belongs to a different spool "
         "directory.",
         "list active grids with aurora_submit --status"},

        // ---- distributed shard supervision (aurora_swarm) ----
        {"AUR301", Severity::Error, "shard lease expired",
         "A shard missed its heartbeat deadline — wedged, paused, or "
         "partitioned. The coordinator fences the shard's epoch and "
         "migrates its unfinished jobs to live shards; nothing is "
         "lost and nothing runs twice.",
         "check the shard's log; raise --lease-ms if jobs outrun it"},
        {"AUR302", Severity::Error, "shard process exited unexpectedly",
         "A shard's connection dropped mid-grid (crash, SIGKILL, or "
         "OOM kill). Its committed jobs are already durable in the "
         "coordinator's journal; its unfinished jobs migrate to the "
         "remaining shards.",
         "inspect the shard's exit status; the sweep completes anyway"},
        {"AUR303", Severity::Error, "shard heartbeats lost (partition)",
         "A shard kept working but its heartbeats stopped arriving — "
         "the one-way-partition failure. The coordinator cannot tell "
         "a silent shard from a dead one, so the lease fences it and "
         "any results it later offers are refused as stale.",
         "restore connectivity; the shard exits when it sees the fence"},
        {"AUR304", Severity::Warning, "fenced zombie append rejected",
         "A shard whose lease already expired tried to commit a "
         "result under its stale epoch. The fence refused it — the "
         "job either committed elsewhere or will — so the at-most-"
         "once guarantee held. Expected during failover; a flood "
         "means the lease is too short.",
         "none needed; raise --lease-ms if frequent"},
        {"AUR305", Severity::Error, "shard wire protocol violation",
         "A shard connection sent a corrupt frame, an unknown message "
         "type, a bad protocol version, or a result for a job it was "
         "never assigned. The connection is fenced and dropped.",
         "rebuild shard and coordinator from the same revision"},
        {"AUR306", Severity::Error, "shard journal unusable",
         "At merge time a shard's local journal was missing a "
         "committed record, held bytes that disagree with what the "
         "coordinator committed, or failed its CRC mid-file. The "
         "merge refuses to fabricate results.",
         "rerun with --resume; the commit journal replays the grid"},
    };
    return entries;
}

const DiagnosticInfo *
findDiagnostic(std::string_view id)
{
    for (const DiagnosticInfo &info : catalog())
        if (id == info.id)
            return &info;
    return nullptr;
}

namespace
{

/** AURnnn -> nnn; -1 when @p id is not of that shape. */
int
idNumber(std::string_view id)
{
    if (id.size() < 4 || id.substr(0, 3) != "AUR")
        return -1;
    int n = 0;
    for (const char c : id.substr(3)) {
        if (c < '0' || c > '9')
            return -1;
        n = n * 10 + (c - '0');
    }
    return n;
}

/** Classic O(len^2) edit distance — the catalog is tiny. */
std::size_t
editDistance(std::string_view a, std::string_view b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            const std::size_t sub = diag + (a[i - 1] != b[j - 1]);
            row[j] = std::min({row[j - 1] + 1, up + 1, sub});
            diag = up;
        }
    }
    return row[b.size()];
}

} // namespace

std::vector<std::string>
nearestDiagnosticIds(std::string_view id, std::size_t count)
{
    // Distance is numeric when the ID is well-formed ("AUR044" ->
    // AUR043 before AUR030), textual otherwise ("AUR04x", "aur10").
    const int number = idNumber(id);
    std::vector<std::pair<std::size_t, std::string>> scored;
    for (const DiagnosticInfo &info : catalog()) {
        std::size_t distance;
        if (number >= 0) {
            const int entry = idNumber(info.id);
            distance = static_cast<std::size_t>(
                entry > number ? entry - number : number - entry);
        } else {
            distance = editDistance(id, info.id);
        }
        scored.emplace_back(distance, info.id);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<std::string> out;
    for (std::size_t i = 0; i < scored.size() && i < count; ++i)
        out.push_back(scored[i].second);
    return out;
}

Diagnostic
makeDiagnostic(std::string_view id, std::string field, std::string value,
               std::string detail)
{
    const DiagnosticInfo *info = findDiagnostic(id);
    if (info == nullptr)
        AURORA_PANIC("analyzer emitted unknown diagnostic id '",
                     std::string(id), "'");
    Diagnostic d;
    d.id = info->id;
    d.severity = info->severity;
    d.field = std::move(field);
    d.value = std::move(value);
    d.message = detail.empty()
                    ? std::string(info->title)
                    : detail::concat(info->title, ": ", detail);
    d.hint = info->hint;
    return d;
}

bool
hasErrors(const std::vector<Diagnostic> &diagnostics)
{
    return errorCount(diagnostics) > 0;
}

std::size_t
errorCount(const std::vector<Diagnostic> &diagnostics)
{
    std::size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        if (d.severity == Severity::Error)
            ++n;
    return n;
}

std::string
formatDiagnostics(const std::vector<Diagnostic> &diagnostics)
{
    std::string out;
    for (const Diagnostic &d : diagnostics) {
        out += d.toString();
        out += '\n';
    }
    return out;
}

void
sortDiagnostics(std::vector<Diagnostic> &diagnostics)
{
    std::stable_sort(
        diagnostics.begin(), diagnostics.end(),
        [](const Diagnostic &a, const Diagnostic &b) {
            if (a.id != b.id)
                return a.id < b.id;
            if (a.job != b.job)
                return a.job < b.job;
            if (a.field != b.field)
                return a.field < b.field;
            return a.value < b.value;
        });
}

namespace
{

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
toJson(const std::vector<Diagnostic> &diagnostics)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic &d = diagnostics[i];
        if (i > 0)
            out << ",";
        out << "\n  {\"id\": \"" << d.id << "\", \"severity\": \""
            << severityName(d.severity) << "\", ";
        if (d.job >= 0)
            out << "\"job\": " << d.job << ", ";
        out << "\"field\": \""
            << jsonEscape(d.field) << "\", \"value\": \""
            << jsonEscape(d.value) << "\", \"message\": \""
            << jsonEscape(d.message) << "\", \"hint\": \""
            << jsonEscape(d.hint) << "\"}";
    }
    if (!diagnostics.empty())
        out << "\n";
    out << "]\n";
    return out.str();
}

} // namespace aurora::analyze
