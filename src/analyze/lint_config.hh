/**
 * @file
 * Static machine-model linter.
 *
 * MachineConfig::validate() answers "can this configuration be
 * instantiated at all" and throws on the first violation. The linter
 * answers a broader question without ever constructing a Processor:
 * it re-states validate()'s rejections as *stable catalog IDs* (so a
 * sweep preflight or CI job can assert on which defect, not just
 * that one exists), collects every finding instead of stopping at the
 * first, adds the cross-field sizing relationships the paper derives
 * (§5) that are legal but known-bad, runs the structural deadlock
 * detector over the resource graph, and optionally prices the
 * configuration against an RBE area budget (§4.2).
 */

#ifndef AURORA_ANALYZE_LINT_CONFIG_HH
#define AURORA_ANALYZE_LINT_CONFIG_HH

#include <vector>

#include "core/machine_config.hh"
#include "diagnostic.hh"

namespace aurora::analyze
{

/** Linter knobs. */
struct LintOptions
{
    /**
     * Total RBE area budget (IPU + FPU) to check against; 0 disables
     * the budget check. The paper's recommended machine prices at
     * ~66K RBE, so e.g. 80000 is a plausible die budget.
     */
    double rbe_budget = 0.0;
};

/**
 * Lint @p machine: every catalog AUR0xx check, in ID order, errors
 * and warnings interleaved as encountered. Never throws on a bad
 * configuration — a linter that dies on its input is useless — and a
 * clean vector means validate() would also accept the machine.
 */
std::vector<Diagnostic> lintConfig(const core::MachineConfig &machine,
                                   const LintOptions &options = {});

} // namespace aurora::analyze

#endif // AURORA_ANALYZE_LINT_CONFIG_HH
