#include "verify_trace.hh"

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>

#include "util/logging.hh"

namespace aurora::analyze
{

namespace
{

using trace::OpClass;

// The layout facts below mirror trace_io.cc's writer. They are
// restated rather than shared on purpose: the verifier must judge the
// format independently, so a layout bug in the reader cannot hide
// itself by also steering the checker.
constexpr char MAGIC[4] = {'A', 'U', 'R', '3'};
constexpr std::size_t HEADER_BYTES = 16;
constexpr std::size_t RECORD_BYTES = 24;
constexpr std::uint32_t SUPPORTED_VERSION = 1;
constexpr unsigned NUM_REGS = 32;

std::uint32_t
unpackU32(const unsigned char *p)
{
    return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
           (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

/** Collects diagnostics with a per-ID emission cap. */
class Reporter
{
  public:
    Reporter(TraceReport &report, std::size_t max_per_id)
        : report_(report), max_per_id_(max_per_id)
    {
    }

    void
    emit(const char *id, std::string field, std::string value,
         std::string detail)
    {
        const std::size_t seen = ++seen_[id];
        if (seen <= max_per_id_)
            report_.diagnostics.push_back(
                makeDiagnostic(id, std::move(field), std::move(value),
                               std::move(detail)));
    }

    /** Occurrences of @p id, including capped ones. */
    std::size_t count(const char *id) const
    {
        const auto it = seen_.find(id);
        return it == seen_.end() ? 0 : it->second;
    }

  private:
    TraceReport &report_;
    std::size_t max_per_id_;
    std::map<std::string, std::size_t> seen_;
};

/** Raw record view with named accessors (offsets per trace_io.cc). */
struct RawRecord
{
    const unsigned char *p;

    Addr pc() const { return unpackU32(p + 0); }
    Addr nextPc() const { return unpackU32(p + 4); }
    Addr effAddr() const { return unpackU32(p + 8); }
    unsigned opByte() const { return p[12]; }
    unsigned char reg(std::size_t i) const { return p[13 + i]; }
    unsigned char dst() const { return p[15]; }
    unsigned char fdst() const { return p[18]; }
    unsigned size() const { return p[19]; }
};

const char *REG_NAMES[6] = {"src_a", "src_b", "dst",
                            "fsrc_a", "fsrc_b", "fdst"};

/** Tracks def-before-use over one register file. */
struct RegFileScan
{
    std::array<bool, NUM_REGS> defined{};
    std::array<bool, NUM_REGS> live_in{};

    void read(unsigned char reg)
    {
        if (reg < NUM_REGS && !defined[reg])
            live_in[reg] = true;
    }

    void write(unsigned char reg)
    {
        if (reg < NUM_REGS)
            defined[reg] = true;
    }

    unsigned liveIns() const
    {
        unsigned n = 0;
        for (const bool b : live_in)
            n += b ? 1 : 0;
        return n;
    }
};

void
checkRecord(const RawRecord &r, Count index, Reporter &rep,
            RegFileScan &int_regs, RegFileScan &fp_regs)
{
    std::string at = detail::concat("record ", index);

    // Register indices must name the 32-entry files or the sentinel.
    for (std::size_t i = 0; i < 6; ++i) {
        const unsigned char reg = r.reg(i);
        if (reg >= NUM_REGS && reg != NO_REG)
            rep.emit("AUR105", detail::concat(at, ".", REG_NAMES[i]),
                     detail::concat(static_cast<unsigned>(reg)),
                     detail::concat("register ",
                                    static_cast<unsigned>(reg),
                                    " >= ", NUM_REGS));
    }

    const auto op = static_cast<OpClass>(r.opByte());
    if (trace::isMem(op)) {
        const unsigned size = r.size();
        const Addr addr = r.effAddr();
        if (size != 4 && size != 8)
            rep.emit("AUR106", detail::concat(at, ".size"),
                     detail::concat(size),
                     detail::concat("access size ", size,
                                    " is not 4 or 8"));
        else if (addr % size != 0)
            rep.emit("AUR106", detail::concat(at, ".eff_addr"),
                     detail::concat("0x", std::hex, addr),
                     detail::concat("0x", std::hex, addr, std::dec,
                                    " not aligned to ", size));
    }

    // Operand shape: the op class dictates which operands must exist.
    if (op == OpClass::Load && r.dst() == NO_REG)
        rep.emit("AUR109", detail::concat(at, ".dst"), "none",
                 "integer load with no destination register");
    if (op == OpClass::FpLoad && r.fdst() == NO_REG)
        rep.emit("AUR109", detail::concat(at, ".fdst"), "none",
                 "FP load with no destination register");
    if (trace::isFpArith(op) && r.fdst() == NO_REG)
        rep.emit("AUR109", detail::concat(at, ".fdst"), "none",
                 detail::concat(trace::opClassName(op),
                                " with no FP destination register"));

    // Def-before-use bookkeeping: reads first, then the write — an
    // instruction may legally source the register it overwrites.
    int_regs.read(r.reg(0));
    int_regs.read(r.reg(1));
    fp_regs.read(r.reg(3));
    fp_regs.read(r.reg(4));
    int_regs.write(r.dst());
    fp_regs.write(r.fdst());
}

void
checkMix(const TraceReport &report, const trace::WorkloadProfile &profile,
         double tolerance, Reporter &rep)
{
    // Below a few thousand records the sampling noise of the
    // generator's random draws swamps any real mismatch.
    if (report.records < 2048)
        return;
    const double n = static_cast<double>(report.records);
    const auto frac = [&](OpClass op) {
        return static_cast<double>(
                   report.histogram[static_cast<std::size_t>(op)]) /
               n;
    };
    const struct
    {
        const char *what;
        double declared;
        double measured;
    } mixes[] = {
        {"load", profile.frac_load, frac(OpClass::Load)},
        {"store", profile.frac_store, frac(OpClass::Store)},
        {"fp_arith", profile.frac_fp_arith,
         frac(OpClass::FpAdd) + frac(OpClass::FpMul) +
             frac(OpClass::FpDiv) + frac(OpClass::FpCvt)},
        {"fp_load", profile.frac_fp_load, frac(OpClass::FpLoad)},
        {"fp_store", profile.frac_fp_store, frac(OpClass::FpStore)},
    };
    for (const auto &m : mixes) {
        const double drift = m.measured - m.declared;
        if (drift > tolerance || drift < -tolerance)
            rep.emit("AUR108", detail::concat("mix.", m.what),
                     detail::concat(m.measured),
                     detail::concat("measured ", m.what, " fraction ",
                                    m.measured, " vs declared ",
                                    m.declared, " for profile '",
                                    profile.name, "' (tolerance ",
                                    tolerance, ")"));
    }
}

} // namespace

std::string
TraceReport::summary() const
{
    std::ostringstream os;
    os << (ok() ? "OK" : "BAD") << ": " << records << "/" << promised
       << " records, " << errorCount(diagnostics) << " error(s), "
       << (diagnostics.size() - errorCount(diagnostics))
       << " warning(s)\n";
    os << "live-ins: " << int_live_ins << " int, " << fp_live_ins
       << " fp; pc discontinuities: " << discontinuities << "\n";
    for (std::size_t i = 0; i < histogram.size(); ++i)
        if (histogram[i] > 0)
            os << "  " << trace::opClassName(static_cast<OpClass>(i))
               << ": " << histogram[i] << "\n";
    return os.str();
}

TraceReport
verifyTrace(const std::string &path, const TraceCheckOptions &options)
{
    TraceReport report;
    Reporter rep(report, options.max_per_id);

    const std::unique_ptr<std::FILE, int (*)(std::FILE *)> file(
        std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!file) {
        rep.emit("AUR101", "file", path,
                 detail::concat("cannot open '", path, "'"));
        return report;
    }

    unsigned char header[HEADER_BYTES];
    if (std::fread(header, 1, HEADER_BYTES, file.get()) !=
        HEADER_BYTES) {
        rep.emit("AUR101", "header", "",
                 "file ends inside the 16-byte header");
        return report;
    }
    if (std::memcmp(header, MAGIC, sizeof(MAGIC)) != 0) {
        rep.emit("AUR101", "magic",
                 detail::concat("0x", std::hex,
                                unpackU32(header)),
                 "expected 'AUR3'");
        return report;
    }
    const std::uint32_t version = unpackU32(header + 4);
    if (version != SUPPORTED_VERSION) {
        // The record layout of an unknown version is unknown; any
        // "checks" on the body would be noise, so stop here.
        rep.emit("AUR102", "version", detail::concat(version),
                 detail::concat("expected ", SUPPORTED_VERSION));
        return report;
    }
    report.promised = Count{unpackU32(header + 8)} |
                      (Count{unpackU32(header + 12)} << 32);

    RegFileScan int_regs;
    RegFileScan fp_regs;
    Addr prev_next_pc = 0;
    unsigned char rec[RECORD_BYTES];
    while (report.records < report.promised) {
        const std::size_t got =
            std::fread(rec, 1, RECORD_BYTES, file.get());
        if (got != RECORD_BYTES) {
            rep.emit("AUR104", "records",
                     detail::concat(report.records),
                     detail::concat("header promised ", report.promised,
                                    " records but the body ends after ",
                                    report.records));
            break;
        }
        const RawRecord r{rec};
        const Count index = report.records;

        if (r.opByte() >= trace::NUM_OP_CLASSES) {
            rep.emit("AUR103", detail::concat("record ", index, ".op"),
                     detail::concat(r.opByte()),
                     detail::concat("op class ", r.opByte(),
                                    " >= ", trace::NUM_OP_CLASSES));
        } else {
            report.histogram[r.opByte()] += 1;
            checkRecord(r, index, rep, int_regs, fp_regs);
        }

        if (index > 0 && r.pc() != prev_next_pc) {
            report.discontinuities += 1;
            rep.emit("AUR107", detail::concat("record ", index, ".pc"),
                     detail::concat("0x", std::hex, r.pc()),
                     detail::concat("predecessor's next_pc is 0x",
                                    std::hex, prev_next_pc));
        }
        prev_next_pc = r.nextPc();
        report.records += 1;
    }

    report.int_live_ins = int_regs.liveIns();
    report.fp_live_ins = fp_regs.liveIns();

    // A long trace reading mostly-undefined registers is shuffled or
    // spliced input. Legitimate traces carry real live-ins (the
    // synthetic generators read ~9 int and up to 16 FP registers
    // before first writing them), so the threshold is half of the
    // 64 architectural registers, far above that floor.
    if (report.records >= 64 &&
        report.int_live_ins + report.fp_live_ins > 32)
        rep.emit("AUR110", "live-ins",
                 detail::concat(report.int_live_ins + report.fp_live_ins),
                 detail::concat(report.int_live_ins, " int + ",
                                report.fp_live_ins,
                                " fp registers read before any "
                                "definition"));

    if (options.profile != nullptr)
        checkMix(report, *options.profile, options.mix_tolerance, rep);

    return report;
}

} // namespace aurora::analyze
