#include "model.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "cost/rbe.hh"
#include "util/logging.hh"

namespace aurora::analyze
{

namespace
{

/**
 * Global optimism factor applied to every miss-rate estimate. The
 * footprint arguments below already ignore conflict misses and
 * cross-region interference; halving them again keeps each traffic
 * term safely *below* what the simulator generates, which is what
 * makes the minimum over stations a genuine upper bound on IPC.
 * Raising this tightens the bound but risks crossing the measured
 * IPC — check.sh model is the regression gate for that contract.
 */
constexpr double OPTIMISM = 0.5;

double
clamp01(double v)
{
    return std::min(1.0, std::max(0.0, v));
}

/** c/d with the UNBOUNDED_IPC clamp; 0-capacity stations bound at 0. */
double
stationBound(double capacity, double demand)
{
    if (capacity <= 0.0)
        return 0.0;
    if (demand <= 0.0)
        return UNBOUNDED_IPC;
    return std::min(UNBOUNDED_IPC, capacity / demand);
}

/** Interpolated unit price with latencies clamped into the published
 *  range instead of asserting (cost::unitCost is strict). */
double
clampedUnitRbe(double fast, double slow, Cycle lo, Cycle hi,
               Cycle latency, bool pipelined, bool depipeline_saves)
{
    const double l =
        std::min<double>(hi, std::max<double>(lo, latency));
    const double t = (hi == lo) ? 0.0 : (l - lo) / double(hi - lo);
    double rbe = fast + t * (slow - fast);
    if (depipeline_saves && !pipelined)
        rbe *= 1.0 - cost::FP_PIPELINE_LATCH_FRACTION;
    return rbe;
}

/** Mix-derived rates, all optimistic (see OPTIMISM). */
MixEstimates
estimateMix(const core::MachineConfig &m,
            const trace::WorkloadProfile &p)
{
    MixEstimates e;
    e.f_load = clamp01(p.frac_load) + clamp01(p.frac_fp_load);
    e.f_store = clamp01(p.frac_store) + clamp01(p.frac_fp_store);
    e.f_mem = e.f_load + e.f_store;
    e.f_fp = clamp01(p.frac_fp_arith);

    // I-cache misses per instruction: the hot loops re-walk a
    // footprint of hot_code_bytes; the fraction that fits the cache
    // never misses in steady state (fully-associative, conflict-free
    // assumption = optimistic), the spill re-streams once per pass at
    // one miss per line. Cold code misses on first touch except when
    // a control transfer reuses a recent target.
    const double line = std::max<double>(4.0, m.ifu.line_bytes);
    const double insts_per_line = line / 4.0;
    const double hot_code = std::max<double>(1.0, p.hot_code_bytes);
    const double hot_spill =
        std::max(0.0, 1.0 - double(m.ifu.icache_bytes) / hot_code);
    const double m_hot = hot_spill / insts_per_line;
    const double m_cold =
        (1.0 - clamp01(p.cold_target_reuse)) / insts_per_line;
    const double hot_frac = clamp01(p.hot_fraction);
    e.icache_mpi =
        OPTIMISM * (hot_frac * m_hot + (1.0 - hot_frac) * m_cold);

    // D-cache misses per data reference: stack/global references hit
    // a region far smaller than any modeled D-cache; sequential
    // streams miss once per line; pointer chases miss only on their
    // cold strikes, scaled by how much of the heap exceeds the cache.
    const double dline = std::max<double>(4.0, m.lsu.line_bytes);
    const double access = p.double_word_mem ? 8.0 : 4.0;
    const double heap = 1.0 - clamp01(p.stack_fraction);
    const double m_seq = clamp01(p.seq_fraction) * access / dline;
    const double heap_spill = std::max(
        0.0, 1.0 - double(m.lsu.dcache_bytes) /
                       std::max<double>(1.0, p.total_data_bytes));
    const double m_chase = clamp01(p.chase_fraction) *
                           (1.0 - clamp01(p.chase_hot_frac)) *
                           heap_spill;
    e.dcache_mpr = OPTIMISM * heap * (m_seq + m_chase);

    // Write-cache evictions per store: rewrites of a live line and
    // burst continuations coalesce; what coalescing a one-line cache
    // can deliver scales down. Optimistic again — the real cache also
    // evicts on capacity pressure the model ignores.
    const double coalesce = std::min(
        0.95, clamp01(p.store_rewrite_frac) +
                  0.5 * clamp01(p.store_burst_frac));
    const double lines_scale =
        std::min(1.0, m.write_cache.lines / 2.0);
    e.wc_evict = OPTIMISM * (1.0 - coalesce * lines_scale);

    // Mix-weighted mean FP latency for occupancy terms.
    const double wsum = std::max(
        1e-9, p.fp_add_w + p.fp_mul_w + p.fp_div_w + p.fp_cvt_w);
    e.fp_mean_lat = (p.fp_add_w * m.fpu.add.latency +
                     p.fp_mul_w * m.fpu.mul.latency +
                     p.fp_div_w * m.fpu.div.latency +
                     p.fp_cvt_w * m.fpu.cvt.latency) /
                    wsum;
    return e;
}

} // namespace

const char *
resourceName(Resource resource)
{
    switch (resource) {
      case Resource::IssueWidth:
        return "issue";
      case Resource::FetchBw:
        return "fetch";
      case Resource::RetireWidth:
        return "retire";
      case Resource::RobOccupancy:
        return "rob";
      case Resource::MemPort:
        return "mem_port";
      case Resource::MshrPool:
        return "mshr";
      case Resource::WriteCache:
        return "write_cache";
      case Resource::BiuBandwidth:
        return "biu_bw";
      case Resource::BiuQueue:
        return "biu_queue";
      case Resource::FpTransfer:
        return "fp_transfer";
      case Resource::FpInstQueue:
        return "fp_instq";
      case Resource::FpLoadQueue:
        return "fp_loadq";
      case Resource::FpStoreQueue:
        return "fp_storeq";
      case Resource::FpRob:
        return "fp_rob";
      case Resource::FpResultBus:
        return "fp_buses";
      case Resource::FpAddUnit:
        return "fp_add";
      case Resource::FpMulUnit:
        return "fp_mul";
      case Resource::FpDivUnit:
        return "fp_div";
      case Resource::FpCvtUnit:
        return "fp_cvt";
    }
    return "unknown";
}

double
pricedRbe(const core::MachineConfig &machine)
{
    const fpu::FpuConfig &f = machine.fpu;
    double fp = cost::RBE_FPU_DATA_BLOCK;
    fp += f.inst_queue * cost::RBE_FP_INST_QUEUE_ENTRY;
    fp += (f.load_queue + f.store_queue) *
          cost::RBE_FP_DATA_QUEUE_ENTRY;
    fp += f.rob_entries * cost::RBE_ROB_ENTRY;
    fp += clampedUnitRbe(cost::RBE_FP_ADD_FAST, cost::RBE_FP_ADD_SLOW,
                         1, 5, f.add.latency, f.add.pipelined, true);
    fp += clampedUnitRbe(cost::RBE_FP_MUL_FAST, cost::RBE_FP_MUL_SLOW,
                         1, 5, f.mul.latency, f.mul.pipelined, true);
    fp += clampedUnitRbe(cost::RBE_FP_DIV_FAST, cost::RBE_FP_DIV_SLOW,
                         10, 30, f.div.latency, false, false);
    fp += clampedUnitRbe(cost::RBE_FP_CVT_FAST, cost::RBE_FP_CVT_SLOW,
                         1, 5, f.cvt.latency, f.cvt.pipelined, false);
    return machine.rbeCost() + fp;
}

ModelResult
predictBound(const core::MachineConfig &m,
             const trace::WorkloadProfile &p)
{
    ModelResult r;
    r.mix = estimateMix(m, p);
    const MixEstimates &e = r.mix;

    // Miss traffic reaching the BIU, in line transfers per
    // instruction: demand I-misses, demand D-misses (loads only —
    // stores go through the write cache), and write-cache evictions.
    const double biu_lines = e.icache_mpi + e.f_load * e.dcache_mpr +
                             e.f_store * e.wc_evict;

    // I-miss service time charged to the fetch port. With stream
    // buffers the (optimistic) assumption is every miss hits a
    // buffer and costs only the transfer handshake; without them the
    // front end eats the full secondary latency.
    const bool pf_covered =
        m.prefetch.enabled && m.prefetch.num_buffers > 0;
    const double imiss_penalty =
        pf_covered ? 2.0 : double(m.biu.latency);

    auto set = [&r](Resource res, double demand, double capacity,
                    double rbe) {
        ResourceDemand &d =
            r.resources[static_cast<std::size_t>(res)];
        d.resource = res;
        d.demand = demand;
        d.capacity = capacity;
        d.ipc_bound = stationBound(capacity, demand);
        d.rbe = rbe;
    };

    const cost::IpuResources ipu = m.ipuResources();
    set(Resource::IssueWidth, 1.0, m.issue_width,
        cost::pipelineRbe(ipu.pipelines));
    set(Resource::FetchBw,
        1.0 / std::max(1u, m.ifu.fetch_width) +
            e.icache_mpi * imiss_penalty,
        1.0, cost::icacheRbe(m.ifu.icache_bytes));
    set(Resource::RetireWidth, 1.0, m.retire_width, 0.0);
    // Loads hold their ROB entry for the pipelined hit latency (minus
    // the cycle every instruction holds anyway); misses extend the
    // residency by the secondary latency.
    set(Resource::RobOccupancy,
        1.0 + e.f_load * (std::max<double>(1.0, m.lsu.dcache_latency) -
                          1.0 +
                          e.dcache_mpr * m.biu.latency),
        m.rob_entries, cost::robRbe(m.rob_entries));
    set(Resource::MemPort,
        e.f_mem + e.f_load * e.dcache_mpr * m.lsu.fill_port_cycles,
        1.0, 0.0);
    // An MSHR is held for the full pipelined access on a hit and
    // (optimistically: half the misses overlap perfectly) for the
    // secondary latency on a miss; stores occupy one for their cache
    // access slot.
    set(Resource::MshrPool,
        e.f_load * (m.lsu.dcache_latency +
                    e.dcache_mpr * 0.5 * m.biu.latency) +
            e.f_store * m.lsu.store_occupancy,
        m.lsu.mshr_entries, cost::mshrRbe(m.lsu.mshr_entries));
    set(Resource::WriteCache, e.f_store * (1.0 + e.wc_evict), 1.0,
        cost::writeCacheRbe(m.write_cache.lines));
    set(Resource::BiuBandwidth, biu_lines * m.biu.line_occupancy, 1.0,
        0.0);
    set(Resource::BiuQueue, biu_lines * m.biu.latency,
        m.biu.queue_depth, 0.0);

    // FPU stations. The transfer station models the §3 issue policy:
    // in-order-complete serializes the IPU behind every FP latency,
    // the out-of-order policies stream one (or two) per cycle.
    const fpu::FpuConfig &f = m.fpu;
    double transfer_demand = e.f_fp;
    double transfer_cap = 1.0;
    switch (f.policy) {
      case fpu::IssuePolicy::InOrderComplete:
        transfer_demand = e.f_fp * e.fp_mean_lat;
        break;
      case fpu::IssuePolicy::OutOfOrderSingle:
        break;
      case fpu::IssuePolicy::OutOfOrderDual:
        transfer_cap = 2.0;
        break;
    }
    set(Resource::FpTransfer, transfer_demand, transfer_cap, 0.0);
    set(Resource::FpInstQueue, e.f_fp, f.inst_queue,
        f.inst_queue * cost::RBE_FP_INST_QUEUE_ENTRY);
    set(Resource::FpLoadQueue,
        clamp01(p.frac_fp_load) * (p.double_word_mem ? 1.0 : 2.0),
        f.load_queue, f.load_queue * cost::RBE_FP_DATA_QUEUE_ENTRY);
    set(Resource::FpStoreQueue, clamp01(p.frac_fp_store),
        f.store_queue, f.store_queue * cost::RBE_FP_DATA_QUEUE_ENTRY);
    set(Resource::FpRob, e.f_fp * e.fp_mean_lat, f.rob_entries,
        f.rob_entries * cost::RBE_ROB_ENTRY);
    set(Resource::FpResultBus, e.f_fp, f.result_buses, 0.0);

    const double wsum = std::max(
        1e-9, p.fp_add_w + p.fp_mul_w + p.fp_div_w + p.fp_cvt_w);
    auto unit = [&](Resource res, double weight,
                    const fpu::FpUnitConfig &u, double fast,
                    double slow, Cycle lo, Cycle hi, bool saves) {
        const double f_unit = e.f_fp * weight / wsum;
        set(res, f_unit * (u.pipelined ? 1.0 : double(u.latency)),
            1.0,
            clampedUnitRbe(fast, slow, lo, hi, u.latency, u.pipelined,
                           saves));
    };
    unit(Resource::FpAddUnit, p.fp_add_w, f.add, cost::RBE_FP_ADD_FAST,
         cost::RBE_FP_ADD_SLOW, 1, 5, true);
    unit(Resource::FpMulUnit, p.fp_mul_w, f.mul, cost::RBE_FP_MUL_FAST,
         cost::RBE_FP_MUL_SLOW, 1, 5, true);
    unit(Resource::FpDivUnit, p.fp_div_w,
         fpu::FpUnitConfig{f.div.latency, false}, cost::RBE_FP_DIV_FAST,
         cost::RBE_FP_DIV_SLOW, 10, 30, false);
    unit(Resource::FpCvtUnit, p.fp_cvt_w, f.cvt, cost::RBE_FP_CVT_FAST,
         cost::RBE_FP_CVT_SLOW, 1, 5, false);

    // The bottleneck: minimum station bound, first-in-enum-order on
    // ties so reports are deterministic.
    r.ipc_bound = UNBOUNDED_IPC;
    for (const ResourceDemand &d : r.resources) {
        if (d.ipc_bound < r.ipc_bound) {
            r.ipc_bound = d.ipc_bound;
            r.binding = d.resource;
        }
    }
    for (ResourceDemand &d : r.resources)
        d.slack = r.ipc_bound > 0.0
                      ? std::min(UNBOUNDED_IPC,
                                 d.ipc_bound / r.ipc_bound)
                      : UNBOUNDED_IPC;
    r.cpi_bound = r.ipc_bound > 0.0
                      ? std::min(UNBOUNDED_IPC, 1.0 / r.ipc_bound)
                      : UNBOUNDED_IPC;
    r.rbe_total = pricedRbe(m);
    return r;
}

std::string
ModelResult::summary() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "bound %.3f IPC (%.3f CPI), binding resource %s",
                  ipc_bound, cpi_bound, resourceName(binding));
    return buf;
}

std::vector<Diagnostic>
adviseModel(const core::MachineConfig &machine,
            const std::vector<trace::WorkloadProfile> &profiles,
            const AdviseOptions &options)
{
    std::vector<Diagnostic> out;
    if (profiles.empty())
        return out;

    std::array<double, NUM_RESOURCES> min_slack{};
    min_slack.fill(UNBOUNDED_IPC);
    std::array<double, NUM_RESOURCES> max_demand{};
    std::array<double, NUM_RESOURCES> rbe{};
    double bound_sum = 0.0;

    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const ModelResult r = predictBound(machine, profiles[i]);
        bound_sum += r.ipc_bound;
        for (std::size_t s = 0; s < NUM_RESOURCES; ++s) {
            min_slack[s] = std::min(min_slack[s],
                                    r.resources[s].slack);
            max_demand[s] = std::max(max_demand[s],
                                     r.resources[s].demand);
            rbe[s] = r.resources[s].rbe;
        }
        char value[32];
        std::snprintf(value, sizeof(value), "%.3f", r.ipc_bound);
        Diagnostic d = makeDiagnostic(
            "AUR040", resourceName(r.binding), value,
            detail::concat("profile ", profiles[i].name, ": ",
                           r.summary()));
        if (profiles.size() > 1)
            d.job = static_cast<int>(i);
        out.push_back(std::move(d));
    }

    for (std::size_t s = 0; s < NUM_RESOURCES; ++s) {
        // A station no profile ever exercises (zero demand) is not
        // over-provisioned — it is out of scope for this workload
        // selection, and flagging it would tell the user to delete
        // the FPU whenever they analyze an integer suite.
        if (rbe[s] < options.min_rbe || max_demand[s] <= 0.0 ||
            min_slack[s] < options.slack_factor)
            continue;
        const Resource res = static_cast<Resource>(s);
        char value[32];
        std::snprintf(value, sizeof(value), "%.1fx",
                      std::min(min_slack[s], 999.9));
        out.push_back(makeDiagnostic(
            "AUR041", resourceName(res), value,
            detail::concat(resourceName(res), " has >= ", value,
                           " slack over every profile at ",
                           static_cast<long long>(rbe[s]),
                           " RBE — area better spent on the binding "
                           "resource")));
    }

    const double mean_bound = bound_sum / double(profiles.size());
    if (options.min_ipc > 0.0 && mean_bound < options.min_ipc) {
        char value[64];
        std::snprintf(value, sizeof(value), "%.3f", mean_bound);
        out.push_back(makeDiagnostic(
            "AUR042", "ipc_bound", value,
            detail::concat("mean predicted bound ", value,
                           " IPC is below the requested floor")));
    }
    return out;
}

} // namespace aurora::analyze
