#include "explore.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace aurora::analyze
{

namespace
{

/**
 * Strict Pareto dominance on (cost down, bound up): @p a dominates
 * @p b when it is no worse on both axes and strictly better on at
 * least one. Equal points never dominate each other, so pruning can
 * never empty an equivalence class off the frontier.
 */
bool
dominates(const GridPointModel &a, const GridPointModel &b)
{
    return a.rbe <= b.rbe && a.bound >= b.bound &&
           (a.rbe < b.rbe || a.bound > b.bound);
}

} // namespace

ExploreResult
exploreGrid(const std::vector<core::MachineConfig> &machines,
            const std::vector<trace::WorkloadProfile> &profiles,
            const ExploreOptions &options)
{
    ExploreResult result;
    result.points.reserve(machines.size());

    for (std::size_t i = 0; i < machines.size(); ++i) {
        GridPointModel point;
        point.index = i;
        point.rbe = pricedRbe(machines[i]);
        double sum = 0.0;
        double worst = UNBOUNDED_IPC;
        for (const trace::WorkloadProfile &profile : profiles) {
            const ModelResult r = predictBound(machines[i], profile);
            sum += r.ipc_bound;
            if (r.ipc_bound < worst) {
                worst = r.ipc_bound;
                point.binding = r.binding;
            }
        }
        point.bound =
            profiles.empty() ? 0.0 : sum / double(profiles.size());
        result.points.push_back(point);
    }

    // O(n^2) dominance scan; the dominating witness recorded is the
    // cheapest dominator (then lowest index) so reports stay stable
    // under grid reordering of equal points.
    for (GridPointModel &p : result.points) {
        for (const GridPointModel &q : result.points) {
            if (p.index == q.index || !dominates(q, p))
                continue;
            if (!p.dominated ||
                q.rbe < result.points[p.dominated_by].rbe) {
                p.dominated = true;
                p.dominated_by = q.index;
            }
        }
    }

    for (const GridPointModel &p : result.points)
        if (!p.dominated)
            result.frontier.push_back(p.index);
    std::stable_sort(result.frontier.begin(), result.frontier.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (result.points[a].rbe !=
                             result.points[b].rbe)
                             return result.points[a].rbe <
                                    result.points[b].rbe;
                         return a < b;
                     });

    for (const GridPointModel &p : result.points) {
        char value[64];
        if (p.dominated) {
            const GridPointModel &by = result.points[p.dominated_by];
            std::snprintf(value, sizeof(value), "%.3f", p.bound);
            char by_bound[32];
            std::snprintf(by_bound, sizeof(by_bound), "%.3f",
                          by.bound);
            Diagnostic d = makeDiagnostic(
                "AUR043", "rbe", value,
                detail::concat(
                    "bound ", value, " IPC at ",
                    static_cast<long long>(p.rbe),
                    " RBE is dominated by grid point ",
                    static_cast<unsigned long long>(by.index),
                    " (bound ", by_bound, " IPC at ",
                    static_cast<long long>(by.rbe), " RBE)"));
            d.job = static_cast<int>(p.index);
            result.diagnostics.push_back(std::move(d));
        }
        if (options.min_ipc > 0.0 && p.bound < options.min_ipc) {
            std::snprintf(value, sizeof(value), "%.3f", p.bound);
            Diagnostic d = makeDiagnostic(
                "AUR042", "ipc_bound", value,
                detail::concat("grid point bound ", value,
                               " IPC is below the requested floor"));
            d.job = static_cast<int>(p.index);
            result.diagnostics.push_back(std::move(d));
        }
    }
    sortDiagnostics(result.diagnostics);
    return result;
}

} // namespace aurora::analyze
