/**
 * @file
 * Resource-dependency graph of the machine, as data.
 *
 * The simulator wires fetch, issue, the scoreboards, the FP
 * decoupling queues, the functional units, the result buses, the
 * reorder buffers and the memory hierarchy together implicitly,
 * through code. This module builds the same topology explicitly — a
 * graph whose nodes are finite resources and whose edges say "work
 * leaves A by entering B" — so liveness can be checked *statically*:
 *
 *   a machine is structurally live iff every resource that can hold
 *   work has a drain path to a sink (retirement / memory) passing
 *   only through resources of nonzero capacity.
 *
 * The canonical prey is faultinject::wedgeConfig: result_buses = 0
 * validates (no per-field check fails) but starves every FP unit of a
 * writeback slot, so the decoupling queue fills and issue blocks
 * forever. At runtime only the forward-progress watchdog ends that
 * run, after burning the whole cycle budget; here it is a graph
 * reachability query that costs microseconds before any worker starts.
 */

#ifndef AURORA_ANALYZE_PIPELINE_GRAPH_HH
#define AURORA_ANALYZE_PIPELINE_GRAPH_HH

#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "diagnostic.hh"

namespace aurora::analyze
{

/** One finite resource (queue, buffer, bus, register file port). */
struct ResourceNode
{
    /** Stable name ("fp-result-bus", "biu-queue", ...). */
    std::string name;
    /**
     * Capacity in work items. 0 = a zero-capacity choke: work can
     * never pass through. UNBOUNDED for resources the model does not
     * limit (the external memory system absorbs everything).
     */
    long capacity = 0;
    /** Work that reaches a sink has left the machine. */
    bool sink = false;

    static constexpr long UNBOUNDED = -1;

    /** Can work pass through / rest in this node? */
    bool passable() const
    {
        return sink || capacity == UNBOUNDED || capacity > 0;
    }
};

/** Directed drain edge: work leaves `from` by entering `to`. */
struct DrainEdge
{
    std::size_t from = 0;
    std::size_t to = 0;
};

/** The machine's resource topology. */
struct PipelineGraph
{
    std::vector<ResourceNode> nodes;
    std::vector<DrainEdge> edges;

    /** Index of the node named @p name; PANICs if absent. */
    std::size_t index(const std::string &name) const;
};

/**
 * Build the resource graph for @p machine. Pure data transformation:
 * reads capacities out of the config, never constructs a Processor.
 */
PipelineGraph buildPipelineGraph(const core::MachineConfig &machine);

/**
 * Check structural liveness of @p machine's graph.
 *
 * Emits AUR010 (error) for every work-holding resource with no drain
 * path to a sink through passable nodes, naming the trapped resource
 * and the zero-capacity choke(s) that sever its paths. One diagnostic
 * per distinct choke set, so a single zeroed resource that wedges ten
 * upstream queues reads as one finding, not ten.
 */
std::vector<Diagnostic>
checkPipelineGraph(const core::MachineConfig &machine);

} // namespace aurora::analyze

#endif // AURORA_ANALYZE_PIPELINE_GRAPH_HH
