/**
 * @file
 * Crash-safe sweep journal: durable, resumable design-space grids.
 *
 * A sweep of thousands of (machine, workload) points used to be as
 * durable as its process: one SIGKILL and every completed job was
 * gone. The journal makes sweep progress append-only on disk —
 * SweepRunner writes one record through as each job completes — and
 * *resume* replays a partially-written journal so only missing or
 * failed jobs re-run.
 *
 * File layout (records framed by util/record_io, each CRC32-checked):
 *
 *   record 0: header  — format version, grid fingerprint, job count
 *   record k: job     — grid index, machineHash, derived seed,
 *                       attempts, outcome (full RunResult stats, or
 *                       the error code + message)
 *
 * The **grid fingerprint** digests the base seed and every job's
 * (machineHash, profile name, profile seed, instruction budget,
 * derived seed). Resuming against a journal whose fingerprint does
 * not match the grid being launched raises SimError{BadJournal}: a
 * journal must never replay results for a *different* experiment.
 *
 * Corruption policy (journal-corruption hardening): a torn tail
 * record — the signature of a writer killed mid-append — is dropped
 * with a warning and its job simply re-runs; any mid-file damage
 * (bad magic, bad CRC) raises BadJournal, because a file that rotted
 * in place cannot be trusted at all.
 *
 * Determinism: a journaled RunResult is stored bit-exactly (doubles
 * by bit pattern), and resumed jobs replay their journaled stats
 * verbatim while missing jobs re-derive the same seeds — so a killed
 * and resumed sweep is bit-identical to an uninterrupted one at any
 * worker count (docs/robustness.md, bench_ext_fault_storm).
 */

#ifndef AURORA_HARNESS_JOURNAL_HH
#define AURORA_HARNESS_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sweep.hh"
#include "util/record_io.hh"

namespace aurora::harness
{

/**
 * Journal format version (header record). Version 2 added the
 * occupancy-distribution stats (OccupancyStats p50/p95/max) to the
 * serialized RunResult; version-1 journals are refused with
 * BadJournal rather than misread field-by-field.
 */
inline constexpr std::uint32_t JOURNAL_VERSION = 2;

/** One journaled job completion. */
struct JournalRecord
{
    /** Grid index the outcome belongs to. */
    std::uint64_t job_index = 0;
    /** machineHash of the job's configuration (integrity check). */
    std::uint64_t machine_hash = 0;
    /** Workload seed the job actually ran with. */
    std::uint64_t seed = 0;
    /** Outcome, including the full RunResult stats when ok. */
    SweepOutcome outcome;
};

/** Everything loadJournal() recovered from disk. */
struct LoadedJournal
{
    std::uint64_t fingerprint = 0;
    /** Job count of the journaled grid. */
    std::uint64_t jobs = 0;
    std::vector<JournalRecord> records;
    /** A torn tail record was dropped (writer was killed). */
    bool dropped_tail = false;
    /**
     * File length up to the end of the last good record. When
     * dropped_tail is set, the file must be truncated to this length
     * before reopening it for append — otherwise the fragment gets
     * buried mid-file and the next load classifies it Corrupt.
     */
    std::uint64_t valid_bytes = 0;
};

/**
 * Stable digest of a sweep grid + seeding policy. Two launches
 * fingerprint equal iff they would run the same jobs with the same
 * seeds — the precondition for replaying journaled results.
 */
std::uint64_t gridFingerprint(
    const std::vector<SweepJob> &grid,
    const std::optional<std::uint64_t> &base_seed);

/**
 * Parse a journal file. Throws util::SimError (BadJournal) on a
 * missing/unreadable file, bad header, version mismatch, or mid-file
 * corruption; a torn tail record is dropped with a warning and
 * reported via LoadedJournal::dropped_tail.
 */
LoadedJournal loadJournal(const std::string &path);

/**
 * Serialize one journal record to its payload bytes — the exact
 * encoding a JournalWriter appends (type tag included), reused by the
 * sweep service as the wire form of a streamed job result so a
 * re-attached client replays the same bytes the journal holds.
 */
std::string encodeJournalRecord(const JournalRecord &record);

/**
 * Invert encodeJournalRecord. Throws util::SimError (BadJournal) on
 * a wrong type tag, out-of-range error code, or size mismatch.
 */
JournalRecord decodeJournalRecord(const std::string &payload);

/**
 * Bit-exact serialization of a RunResult alone (doubles by bit
 * pattern). Two results serialize equal iff every statistic matches
 * exactly — the equality probe the service's resume drills use.
 */
std::string runResultBytes(const core::RunResult &result);

/**
 * Append-side of the journal. Thread-safe: worker threads append
 * completion records concurrently; every record is flushed before
 * append() returns, so a SIGKILL never loses a completed job (and
 * tears at most the record being written).
 */
class JournalWriter
{
  public:
    /** Start a fresh journal (truncates; writes the header). */
    JournalWriter(const std::string &path, std::uint64_t fingerprint,
                  std::uint64_t jobs);

    /** Reopen an existing journal for appending (resume). */
    explicit JournalWriter(const std::string &path);

    void append(const JournalRecord &record);

    const std::string &path() const { return writer_.path(); }

  private:
    std::mutex mutex_;
    util::RecordFileWriter writer_;
};

} // namespace aurora::harness

#endif // AURORA_HARNESS_JOURNAL_HH
