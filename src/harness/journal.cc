#include "journal.hh"

#include "core/stall.hh"
#include "util/logging.hh"

namespace aurora::harness
{

namespace
{

using util::ByteReader;
using util::ByteWriter;

/** Payload type tags (first byte of every record). */
constexpr std::uint8_t REC_HEADER = 1;
constexpr std::uint8_t REC_JOB = 2;

constexpr std::uint8_t MAX_ERROR_CODE =
    static_cast<std::uint8_t>(util::SimErrorCode::BadWire);

void
putOccupancy(ByteWriter &w, const core::OccupancyStats &o)
{
    w.f64(o.mean);
    w.u64(o.p50);
    w.u64(o.p95);
    w.u64(o.max);
}

core::OccupancyStats
getOccupancy(ByteReader &rd)
{
    core::OccupancyStats o;
    o.mean = rd.f64();
    o.p50 = rd.u64();
    o.p95 = rd.u64();
    o.max = rd.u64();
    return o;
}

void
putRunResult(ByteWriter &w, const core::RunResult &r)
{
    w.str(r.model);
    w.str(r.benchmark);
    w.u64(r.instructions);
    w.u64(r.cycles);
    w.u64(r.issuing_cycles);
    w.u64(r.tail_cycles);
    w.u32(static_cast<std::uint32_t>(r.stalls.size()));
    for (const auto s : r.stalls)
        w.u64(s);
    w.f64(r.icache_hit_pct);
    w.f64(r.dcache_hit_pct);
    w.f64(r.iprefetch_hit_pct);
    w.f64(r.dprefetch_hit_pct);
    w.f64(r.write_cache_hit_pct);
    w.u64(r.stores);
    w.u64(r.store_transactions);
    w.u64(r.fp_dispatched);
    w.u64(r.fpu.issued);
    w.u64(r.fpu.dual_cycles);
    w.u64(r.fpu.blocked_operand);
    w.u64(r.fpu.blocked_unit);
    w.u64(r.fpu.blocked_rob);
    w.u64(r.fpu.blocked_bus);
    w.u64(r.fpu.loads);
    w.u64(r.fpu.stores);
    w.f64(r.rbe_cost);
    w.u64(r.ledger.trace_instructions);
    w.u64(r.ledger.retired);
    w.u64(r.ledger.icache_hits);
    w.u64(r.ledger.icache_misses);
    w.u64(r.ledger.icache_accesses);
    w.u64(r.ledger.dcache_hits);
    w.u64(r.ledger.dcache_misses);
    w.u64(r.ledger.dcache_accesses);
    w.u64(r.ledger.mshr_allocations);
    w.u64(r.ledger.mshr_releases);
    w.u64(r.ledger.mshr_outstanding);
    for (const auto c : r.issue_width_cycles)
        w.u64(c);
    w.f64(r.avg_rob_occupancy);
    w.f64(r.avg_mshr_occupancy);
    putOccupancy(w, r.rob_occupancy);
    putOccupancy(w, r.mshr_occupancy);
    putOccupancy(w, r.fp_instq_occupancy);
    putOccupancy(w, r.fp_loadq_occupancy);
    putOccupancy(w, r.fp_storeq_occupancy);
}

core::RunResult
getRunResult(ByteReader &rd)
{
    core::RunResult r;
    r.model = rd.str();
    r.benchmark = rd.str();
    r.instructions = rd.u64();
    r.cycles = rd.u64();
    r.issuing_cycles = rd.u64();
    r.tail_cycles = rd.u64();
    if (rd.u32() != core::NUM_STALL_CAUSES)
        util::raiseError(util::SimErrorCode::BadJournal,
                         "journaled stall-cause count does not match "
                         "this build");
    for (auto &s : r.stalls)
        s = rd.u64();
    r.icache_hit_pct = rd.f64();
    r.dcache_hit_pct = rd.f64();
    r.iprefetch_hit_pct = rd.f64();
    r.dprefetch_hit_pct = rd.f64();
    r.write_cache_hit_pct = rd.f64();
    r.stores = rd.u64();
    r.store_transactions = rd.u64();
    r.fp_dispatched = rd.u64();
    r.fpu.issued = rd.u64();
    r.fpu.dual_cycles = rd.u64();
    r.fpu.blocked_operand = rd.u64();
    r.fpu.blocked_unit = rd.u64();
    r.fpu.blocked_rob = rd.u64();
    r.fpu.blocked_bus = rd.u64();
    r.fpu.loads = rd.u64();
    r.fpu.stores = rd.u64();
    r.rbe_cost = rd.f64();
    r.ledger.trace_instructions = rd.u64();
    r.ledger.retired = rd.u64();
    r.ledger.icache_hits = rd.u64();
    r.ledger.icache_misses = rd.u64();
    r.ledger.icache_accesses = rd.u64();
    r.ledger.dcache_hits = rd.u64();
    r.ledger.dcache_misses = rd.u64();
    r.ledger.dcache_accesses = rd.u64();
    r.ledger.mshr_allocations = rd.u64();
    r.ledger.mshr_releases = rd.u64();
    r.ledger.mshr_outstanding = rd.u64();
    for (auto &c : r.issue_width_cycles)
        c = rd.u64();
    r.avg_rob_occupancy = rd.f64();
    r.avg_mshr_occupancy = rd.f64();
    r.rob_occupancy = getOccupancy(rd);
    r.mshr_occupancy = getOccupancy(rd);
    r.fp_instq_occupancy = getOccupancy(rd);
    r.fp_loadq_occupancy = getOccupancy(rd);
    r.fp_storeq_occupancy = getOccupancy(rd);
    return r;
}

std::string
headerPayload(std::uint64_t fingerprint, std::uint64_t jobs)
{
    ByteWriter w;
    w.u8(REC_HEADER);
    w.u32(JOURNAL_VERSION);
    w.u64(fingerprint);
    w.u64(jobs);
    return w.bytes();
}

std::string
jobPayload(const JournalRecord &rec)
{
    ByteWriter w;
    w.u8(REC_JOB);
    w.u64(rec.job_index);
    w.u64(rec.machine_hash);
    w.u64(rec.seed);
    w.u32(rec.outcome.attempts);
    w.u8(rec.outcome.ok ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(rec.outcome.code));
    w.str(rec.outcome.error);
    w.f64(rec.outcome.seconds);
    if (rec.outcome.ok)
        putRunResult(w, rec.outcome.result);
    return w.bytes();
}

JournalRecord
parseJobPayload(ByteReader &rd)
{
    JournalRecord rec;
    rec.job_index = rd.u64();
    rec.machine_hash = rd.u64();
    rec.seed = rd.u64();
    rec.outcome.attempts = rd.u32();
    rec.outcome.ok = rd.u8() != 0;
    const std::uint8_t code = rd.u8();
    if (code > MAX_ERROR_CODE)
        util::raiseError(util::SimErrorCode::BadJournal,
                         "journaled error code ",
                         static_cast<unsigned>(code),
                         " is out of range");
    rec.outcome.code = static_cast<util::SimErrorCode>(code);
    rec.outcome.error = rd.str();
    rec.outcome.seconds = rd.f64();
    if (rec.outcome.ok)
        rec.outcome.result = getRunResult(rd);
    if (!rd.exhausted())
        util::raiseError(util::SimErrorCode::BadJournal,
                         "trailing bytes after a job record "
                         "(format mismatch)");
    return rec;
}

} // namespace

std::string
encodeJournalRecord(const JournalRecord &record)
{
    return jobPayload(record);
}

JournalRecord
decodeJournalRecord(const std::string &payload)
{
    ByteReader rd(payload);
    if (rd.u8() != REC_JOB)
        util::raiseError(util::SimErrorCode::BadJournal,
                         "payload is not a job record");
    return parseJobPayload(rd);
}

std::string
runResultBytes(const core::RunResult &result)
{
    ByteWriter w;
    putRunResult(w, result);
    return w.bytes();
}

std::uint64_t
gridFingerprint(const std::vector<SweepJob> &grid,
                const std::optional<std::uint64_t> &base_seed)
{
    ByteWriter w;
    w.u8(base_seed ? 1 : 0);
    w.u64(base_seed ? *base_seed : 0);
    w.u64(grid.size());
    for (const SweepJob &job : grid) {
        const std::uint64_t mh = machineHash(job.machine);
        w.u64(mh);
        w.str(job.profile.name);
        w.u64(job.profile.seed);
        w.u64(job.instructions);
        w.u64(base_seed
                  ? deriveJobSeed(*base_seed, mh, job.profile.name)
                  : job.profile.seed);
    }
    return util::fnv1a64(w.bytes());
}

LoadedJournal
loadJournal(const std::string &path)
{
    util::RecordFileReader reader(path);
    LoadedJournal loaded;

    std::string payload;
    switch (reader.next(payload)) {
      case util::RecordStatus::Ok:
        break;
      case util::RecordStatus::EndOfFile:
      case util::RecordStatus::TruncatedTail:
        util::raiseError(util::SimErrorCode::BadJournal, "journal '",
                         path, "' has no complete header record");
      case util::RecordStatus::Corrupt:
        util::raiseError(util::SimErrorCode::BadJournal, "journal '",
                         path, "' header record is corrupt");
    }
    {
        ByteReader rd(payload);
        if (rd.u8() != REC_HEADER)
            util::raiseError(util::SimErrorCode::BadJournal,
                             "journal '", path,
                             "' does not start with a header record");
        const std::uint32_t version = rd.u32();
        if (version != JOURNAL_VERSION)
            util::raiseError(util::SimErrorCode::BadJournal,
                             "journal '", path, "' is format version ",
                             version, "; this build reads version ",
                             JOURNAL_VERSION);
        loaded.fingerprint = rd.u64();
        loaded.jobs = rd.u64();
    }

    for (;;) {
        const util::RecordStatus status = reader.next(payload);
        if (status == util::RecordStatus::EndOfFile)
            break;
        if (status == util::RecordStatus::TruncatedTail) {
            // The signature of a writer killed mid-append: the torn
            // record's job simply re-runs on resume.
            warn(detail::concat("journal '", path,
                                "': dropping torn tail record "
                                "(writer was interrupted)"));
            loaded.dropped_tail = true;
            break;
        }
        if (status == util::RecordStatus::Corrupt)
            util::raiseError(util::SimErrorCode::BadJournal,
                             "journal '", path,
                             "' is corrupt mid-file (bad frame or "
                             "CRC mismatch) — refusing to resume "
                             "from it");
        ByteReader rd(payload);
        if (rd.u8() != REC_JOB)
            util::raiseError(util::SimErrorCode::BadJournal,
                             "journal '", path,
                             "' contains an unknown record type");
        JournalRecord rec = parseJobPayload(rd);
        if (rec.job_index >= loaded.jobs)
            util::raiseError(util::SimErrorCode::BadJournal,
                             "journal '", path, "' job index ",
                             rec.job_index, " is outside its ",
                             loaded.jobs, "-job grid");
        loaded.records.push_back(std::move(rec));
    }
    loaded.valid_bytes = reader.goodBytes();
    return loaded;
}

JournalWriter::JournalWriter(const std::string &path,
                             std::uint64_t fingerprint,
                             std::uint64_t jobs)
    : writer_(path, /*truncate=*/true)
{
    writer_.append(headerPayload(fingerprint, jobs));
}

JournalWriter::JournalWriter(const std::string &path)
    : writer_(path, /*truncate=*/false)
{
}

void
JournalWriter::append(const JournalRecord &record)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    writer_.append(jobPayload(record));
}

} // namespace aurora::harness
