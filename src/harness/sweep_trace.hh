/**
 * @file
 * Sweep execution timeline: per-job spans for trace-event export.
 *
 * A SweepTimeline is the sweep-level zoom of the telemetry subsystem:
 * where TraceEventObserver renders one run cycle by cycle, a timeline
 * records one wall-clock span per job *attempt* — including retries,
 * timeouts, and journal-replayed (resumed) jobs — tagged with the
 * worker thread that executed it. writeTimelineTrace() renders the
 * collected spans as a Chrome trace-event document with one thread
 * track per worker, which makes sweep load-balance, retry storms, and
 * resume behaviour visible in Perfetto.
 *
 * Timelines are wall-clock instruments: they observe the harness, not
 * the simulation, and never feed back into results or seeds.
 */

#ifndef AURORA_HARNESS_SWEEP_TRACE_HH
#define AURORA_HARNESS_SWEEP_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/stats.hh"

namespace aurora::harness
{

/** How one job attempt span ended. */
enum class SpanKind
{
    Ok,       ///< attempt produced a result
    Failed,   ///< attempt raised (non-timeout)
    TimedOut, ///< wall-clock deadline expired
    Resumed,  ///< replayed from a journal (zero-length span)
};

/** Stable lower-case tag for a span kind ("ok", "timeout", ...). */
std::string_view spanKindName(SpanKind kind);

/** One job attempt on the sweep timeline. */
struct TimelineSpan
{
    /** Causal trace id of the owning grid (0 = untraced). Stamped by
     *  SweepTimeline::record() from setTrace(); obs::spansFromTimeline
     *  derives parented span ids from (trace, job, attempt). */
    std::uint64_t trace_id = 0;
    /** Grid index of the job. */
    std::size_t job = 0;
    /** "benchmark@model" when known, else "job <index>". */
    std::string label;
    /** 1-based attempt number (0 for resumed replays). */
    unsigned attempt = 1;
    /** Dense id of the executing worker thread. */
    std::uint32_t worker = 0;
    /** Milliseconds since the timeline's epoch. */
    double start_ms = 0.0;
    double end_ms = 0.0;
    SpanKind kind = SpanKind::Ok;
    /** Failure message for Failed/TimedOut spans. */
    std::string error;
};

/**
 * Thread-safe collector of job attempt spans. One timeline may span
 * several SweepRunner grids (the fault-storm bench records healthy,
 * flaky, and resumed sweeps on one clock).
 */
class SweepTimeline
{
  public:
    /** Milliseconds since construction (the trace epoch). */
    double nowMs() const { return timer_.seconds() * 1e3; }

    /** Dense id for the calling thread (first call assigns it). */
    std::uint32_t workerId();

    /** Grid trace id stamped onto every span recorded from now on
     *  (0 = untraced, the default). */
    void setTrace(std::uint64_t trace_id);
    std::uint64_t traceId() const;

    /** Append one span (trace_id filled from setTrace when unset). */
    void record(TimelineSpan span);

    /** Snapshot of every span recorded so far. */
    std::vector<TimelineSpan> spans() const;

    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    WallTimer timer_;
    std::uint64_t traceId_ = 0;
    std::map<std::thread::id, std::uint32_t> workerIds_;
    std::vector<TimelineSpan> spans_;
};

/**
 * Write @p timeline as a Chrome trace-event document: one complete
 * span per executed attempt on its worker's thread track (category =
 * spanKindName, args job/attempt/error), resumed replays as instants.
 */
void writeTimelineTrace(std::ostream &os, const SweepTimeline &timeline,
                        std::string_view process_name = "aurora sweep");

} // namespace aurora::harness

#endif // AURORA_HARNESS_SWEEP_TRACE_HH
