#include "sweep_trace.hh"

#include <algorithm>
#include <set>

#include "obs/ids.hh"
#include "telemetry/trace_event.hh"
#include "util/logging.hh"

namespace aurora::harness
{

std::string_view
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Ok:       return "ok";
      case SpanKind::Failed:   return "failed";
      case SpanKind::TimedOut: return "timeout";
      case SpanKind::Resumed:  return "resumed";
      default:
        AURORA_PANIC("unknown span kind ",
                     static_cast<int>(kind));
    }
}

std::uint32_t
SweepTimeline::workerId()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = workerIds_.try_emplace(
        std::this_thread::get_id(),
        static_cast<std::uint32_t>(workerIds_.size()));
    (void)inserted;
    return it->second;
}

void
SweepTimeline::setTrace(std::uint64_t trace_id)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    traceId_ = trace_id;
}

std::uint64_t
SweepTimeline::traceId() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return traceId_;
}

void
SweepTimeline::record(TimelineSpan span)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (span.trace_id == 0)
        span.trace_id = traceId_;
    spans_.push_back(std::move(span));
}

std::vector<TimelineSpan>
SweepTimeline::spans() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::size_t
SweepTimeline::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

void
writeTimelineTrace(std::ostream &os, const SweepTimeline &timeline,
                   std::string_view process_name)
{
    std::vector<TimelineSpan> spans = timeline.spans();
    // Per-track (worker) event order must be non-decreasing in ts for
    // trace viewers; workers record their own spans in time order,
    // but the shared vector interleaves threads.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TimelineSpan &a, const TimelineSpan &b) {
                         if (a.worker != b.worker)
                             return a.worker < b.worker;
                         return a.start_ms < b.start_ms;
                     });

    telemetry::TraceEventLog log;
    constexpr std::uint32_t PID = 0;
    log.nameProcess(PID, process_name);
    std::set<std::uint32_t> workers;
    for (const TimelineSpan &span : spans)
        if (workers.insert(span.worker).second)
            log.nameThread(PID, span.worker,
                           "worker " + std::to_string(span.worker));

    for (const TimelineSpan &span : spans) {
        // 1 ms of wall clock = 1000 trace-event µs.
        const double ts = span.start_ms * 1e3;
        const double dur = (span.end_ms - span.start_ms) * 1e3;
        std::vector<telemetry::TraceArg> args;
        if (span.trace_id != 0) {
            // u64 ids only survive JSON as strings; the derived span
            // identity matches the fleet trace (obs/ids.hh) so a
            // standalone timeline export and a merged fleet trace
            // name the same attempt identically.
            args.push_back(telemetry::traceArg(
                "trace_id",
                std::string_view(obs::hexId(span.trace_id))));
            args.push_back(telemetry::traceArg(
                "span_id",
                std::string_view(obs::hexId(obs::attemptSpanId(
                    span.trace_id, span.job, span.attempt)))));
            args.push_back(telemetry::traceArg(
                "parent_id",
                std::string_view(obs::hexId(
                    obs::jobSpanId(span.trace_id, span.job)))));
        }
        args.push_back(telemetry::traceArg(
            "job", static_cast<std::uint64_t>(span.job)));
        args.push_back(telemetry::traceArg(
            "attempt", static_cast<std::uint64_t>(span.attempt)));
        if (!span.error.empty())
            args.push_back(telemetry::traceArg(
                "error", std::string_view(span.error)));
        if (span.kind == SpanKind::Resumed)
            log.instant(span.label, spanKindName(span.kind), PID,
                        span.worker, ts, std::move(args));
        else
            log.complete(span.label, spanKindName(span.kind), PID,
                         span.worker, ts, dur, std::move(args));
    }
    log.write(os);
}

} // namespace aurora::harness
