/**
 * @file
 * Parallel design-space sweep engine with deterministic replay.
 *
 * The study's evaluation is a large cross product — machine models ×
 * issue widths × memory latencies × the SPEC92 suite, plus FPU
 * queue/latency grids. Every (machine, workload) run is independent:
 * a Processor owns its whole machine state and the synthetic workload
 * generator owns its private Rng, so the sweep is embarrassingly
 * parallel. SweepRunner executes a job grid across a fixed pool of
 * worker threads (count from AURORA_JOBS or hardware_concurrency) and
 * returns results in submission order regardless of completion order.
 *
 * Determinism guarantee: a job's result depends only on the job
 * itself, never on scheduling. When SweepOptions::base_seed is set,
 * each job's workload seed is rederived as
 *
 *     deriveJobSeed(base_seed, machineHash(machine), profile.name)
 *
 * so a grid replays bit-identically at any worker count — and any two
 * sweeps sharing a base seed agree job-for-job. Without a base seed
 * the profiles' own seeds are kept, which keeps traces identical
 * across machine variants (paired comparisons, the paper's
 * methodology).
 *
 * Fault isolation: run()/runTasks() are fail-fast (first exception
 * aborts the sweep and propagates). The runOutcomes()/
 * runTaskOutcomes() variants instead capture each job's error into a
 * SweepOutcome, optionally retry it with the same derived seed, and
 * always run the full grid — one poisoned configuration cannot take
 * down an overnight sweep (see docs/robustness.md).
 */

#ifndef AURORA_HARNESS_SWEEP_HH
#define AURORA_HARNESS_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "core/simulator.hh"
#include "core/watchdog.hh"
#include "trace/workload_profile.hh"
#include "util/sim_error.hh"
#include "util/stats.hh"

namespace aurora::harness
{

class SweepTimeline;

/**
 * One heartbeat of a sweep in flight, delivered through
 * SweepOptions::on_progress (and logged when AURORA_PROGRESS=1).
 * Counts cover the whole grid, replayed jobs included; ETA is a
 * straight-line extrapolation from the executed jobs' elapsed time.
 */
struct SweepProgress
{
    std::size_t done = 0;
    std::size_t total = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t timed_out = 0;
    std::size_t retried = 0;
    std::size_t resumed = 0;
    double elapsed_seconds = 0.0;
    /** 0 until at least one job has executed (or when done). */
    double eta_seconds = 0.0;

    /** One-line human-readable rendering. */
    std::string toString() const;
};

/** One (machine, workload, budget) point of a sweep grid. */
struct SweepJob
{
    core::MachineConfig machine;
    trace::WorkloadProfile profile;
    Count instructions = core::DEFAULT_RUN_INSTS;
};

/** Execution policy for a SweepRunner. */
struct SweepOptions
{
    /**
     * Worker threads. 0 = AURORA_JOBS environment variable when set,
     * otherwise hardware_concurrency(); 1 = serial in the calling
     * thread (no pool at all).
     */
    unsigned workers = 0;

    /**
     * When set, rederive every job's workload seed from
     * (base_seed, machineHash(machine), profile.name). Unset keeps
     * each profile's own seed.
     */
    std::optional<std::uint64_t> base_seed;

    /** Log a line as each job completes (thread-safe). */
    bool progress = false;

    /**
     * Retry budget per job for the outcome-isolating entry points
     * (runOutcomes / runTaskOutcomes): a failing job is re-attempted
     * up to this many extra times with the same derived seed. Unset
     * reads AURORA_SWEEP_RETRIES (default 0 — no retries). The
     * fail-fast run()/runTasks() paths never retry.
     */
    std::optional<unsigned> retries;

    /**
     * Watchdog policy applied to every simulation job launched by
     * run()/runOutcomes(). Unset uses core::defaultWatchdog() (the
     * AURORA_WATCHDOG_CYCLES stall limit, no cycle budget). Kept out
     * of MachineConfig deliberately: execution policy must not
     * perturb machineHash() and hence derived seeds.
     */
    std::optional<core::WatchdogConfig> watchdog;

    /**
     * Per-job wall-clock deadline in milliseconds, applied on top of
     * the watchdog (only where the watchdog leaves deadline_ms
     * unset). A job past its deadline raises a Timeout outcome
     * without blocking the rest of the grid; Timeout jobs are never
     * retried — a deterministic simulation that hung once will hang
     * again, and retrying would double the worst-case wall time.
     * Unset reads AURORA_SWEEP_DEADLINE_MS (default 0 = unlimited).
     */
    std::optional<std::uint64_t> deadline_ms;

    /**
     * Base delay in milliseconds for the deterministic exponential
     * backoff between retry attempts of one job: attempt k (k >= 2)
     * waits base << (k - 2) ms first, capped at 10 s. Unset reads
     * AURORA_SWEEP_BACKOFF_MS (default 0 = retry immediately).
     */
    std::optional<std::uint64_t> backoff_ms;

    /**
     * Crash-safe journal file for runOutcomes(): every completed
     * job's outcome is appended (and flushed) as it finishes, so a
     * killed sweep can be resumed. Empty = no journal.
     */
    std::string journal;

    /**
     * Resume from an existing journal instead of starting fresh:
     * jobs with a journaled ok outcome replay those results
     * bit-identically (marked SweepOutcome::resumed) and only
     * missing/failed jobs execute. The journal's grid fingerprint
     * must match the grid being launched (else BadJournal).
     */
    bool resume = false;

    /**
     * Statically lint every grid job's machine (analyze::lintConfig)
     * before any worker launches; lint *errors* — including the
     * structural-deadlock check that validate() cannot express — fail
     * the whole launch with BadConfig listing job, machine, and
     * diagnostic IDs. Catching a wedged configuration here costs
     * microseconds; catching it in a worker costs the full watchdog
     * budget. Unset reads AURORA_PREFLIGHT (default on). Applies to
     * run()/runOutcomes(); the task-based entry points carry no
     * configs to inspect. Warnings never block a launch.
     */
    std::optional<bool> preflight;

    /**
     * Opt-in preflight advisor: after the lint preflight admits the
     * grid, run the analytic bottleneck model (analyze::predictBound)
     * over every job and log each predicted IPC bound, binding
     * resource, and — when the effective watchdog carries a cycle
     * budget — whether the job can even finish inside it (a job
     * needs at least instructions/bound cycles; docs/model.md).
     * Log-only and provably inert: admission, seeds, scheduling, and
     * results are bit-identical with the advisor on or off
     * (test_harness_outcomes holds this). Unset reads
     * AURORA_PREFLIGHT_MODEL (default off — a 10k-point grid does
     * not want 10k log lines unasked).
     */
    std::optional<bool> model_advice;

    /**
     * Called after each job completes (journaled runs only), with
     * (jobs done so far, grid size). Invoked from worker threads
     * under the journal lock — keep it cheap. The fault-storm bench
     * uses it to kill a sweep mid-grid at a deterministic point.
     */
    std::function<void(std::size_t, std::size_t)> on_job_done;

    /**
     * Progress heartbeat: invoked (from worker threads, serialized)
     * every progress_every completed jobs and at grid completion,
     * with grid-wide counts, elapsed wall time, and an ETA. The
     * emission points depend only on job counts, so a given grid
     * heartbeats at the same `done` values at any worker count.
     * AURORA_PROGRESS=1 additionally logs each heartbeat through
     * util::inform() even when no callback is installed.
     */
    std::function<void(const SweepProgress &)> on_progress;

    /**
     * Heartbeat cadence in completed jobs. 0 = automatic:
     * max(1, total/20), i.e. roughly every 5% of the grid.
     */
    std::size_t progress_every = 0;

    /**
     * When set, every job attempt (and journal replay) is recorded as
     * a span on this timeline — the input to writeTimelineTrace()'s
     * Chrome trace-event export. The timeline must outlive the run.
     * Pure observation: results, seeds, and scheduling are unchanged.
     */
    SweepTimeline *timeline = nullptr;

    /**
     * Offset added to every timeline span's job index. The service
     * and shard paths execute one-job sub-grids through a shared
     * grid-wide timeline; the base maps the sub-grid's job 0 back to
     * its true grid index so the merged trace parents attempts under
     * the right job span. Ignored when no timeline is attached.
     */
    std::size_t timeline_job_base = 0;

    /**
     * Cooperative cancellation for the outcome entry points: checked
     * before every job attempt. Once the flag reads true, jobs not
     * yet started (and pending retries) complete immediately as
     * Cancelled outcomes without executing; attempts already inside
     * core::simulate() run to completion — a finished, journaled
     * result is always preferable to a half-abandoned one. The flag
     * must outlive the run. aurora_serve sets it when a tenant
     * cancels a grid or disconnects with the cancel policy.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/**
 * Result-or-error of one isolated sweep job. Exactly one of
 * (ok && result valid) / (!ok && code+error describe the failure)
 * holds; timing and attempt accounting are always valid.
 */
struct SweepOutcome
{
    /** Valid only when ok. */
    core::RunResult result{};
    /** Whether the job (eventually) produced a result. */
    bool ok = false;
    /** Failure class of the final attempt; meaningful when !ok. */
    util::SimErrorCode code = util::SimErrorCode::Internal;
    /** what() of the final attempt's exception; empty when ok. */
    std::string error;
    /** Attempts consumed (1 = succeeded or failed first try; 0 =
     *  cancelled before any attempt started). */
    unsigned attempts = 1;
    /** Wall seconds across all attempts of this job. */
    double seconds = 0.0;
    /**
     * Result was replayed from a journal rather than executed
     * (resume runs only; seconds then reports the journaled time).
     */
    bool resumed = false;
};

/** Aggregate timing over every grid a runner has executed. */
struct SweepReport
{
    /** Worker threads used by the most recent run. */
    unsigned workers = 0;
    /** Jobs executed (cumulative across run() calls). */
    std::size_t jobs = 0;
    /** Wall-clock seconds (cumulative). */
    double wall_seconds = 0.0;
    /** Sum of per-job seconds — the serial-equivalent time. */
    double busy_seconds = 0.0;
    /** Simulated instructions over all jobs. */
    Count total_instructions = 0;
    /** Per-job wall seconds of the most recent run, by grid index. */
    std::vector<double> job_seconds;
    /** Isolated jobs that produced a result (outcome runs only). */
    std::size_t ok_jobs = 0;
    /** Isolated jobs that failed every attempt (outcome runs only). */
    std::size_t failed_jobs = 0;
    /** Isolated jobs that needed more than one attempt. */
    std::size_t retried_jobs = 0;
    /** Isolated jobs whose wall-clock deadline expired (subset of
     *  neither ok nor failed: jobs == ok + failed + timed_out +
     *  skipped always balances). */
    std::size_t timed_out_jobs = 0;
    /** Jobs replayed from a journal (subset of ok_jobs). */
    std::size_t resumed_jobs = 0;
    /** Jobs never attempted: queued bodies left behind when a
     *  fail-fast run aborted on the first exception. */
    std::size_t skipped_jobs = 0;
    /** Jobs cancelled through SweepOptions::cancel before executing
     *  (subset of neither ok nor failed; the balance becomes
     *  jobs == ok + failed + timed_out + skipped + cancelled). */
    std::size_t cancelled_jobs = 0;

    /** Aggregate simulated instructions per wall-clock second. */
    double instsPerSecond() const;
    /** busy/wall — effective parallel speedup over a serial sweep. */
    double speedup() const;
    /** One-line human-readable summary for bench footers. */
    std::string summary() const;
};

/**
 * Fixed-pool sweep executor. A runner may execute any number of
 * grids; its report accumulates across them so a bench composed of
 * many small sweeps still gets one overall summary.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /**
     * Execute every job in @p grid and return the results in
     * submission order. An exception thrown by any job propagates to
     * the caller after all workers have been joined.
     */
    std::vector<core::RunResult> run(const std::vector<SweepJob> &grid);

    /**
     * Execute arbitrary result-producing tasks through the same pool,
     * timing, and report accounting (exception-propagation and custom
     * workload tests use this).
     */
    std::vector<core::RunResult>
    runTasks(const std::vector<std::function<core::RunResult()>> &tasks);

    /**
     * Fault-isolating variant of run(): every job executes inside a
     * try/catch, a failing job is retried up to retries() extra times
     * with the same derived seed, and the grid always runs to
     * completion. Healthy jobs return results bit-identical to run()'s
     * at any worker count; failed jobs carry the error class and
     * message instead of aborting the sweep.
     *
     * When SweepOptions::journal names a file, every completed job is
     * appended to it (flushed, CRC-framed) as it finishes; with
     * SweepOptions::resume also set and the file present, journaled
     * ok results replay bit-identically (SweepOutcome::resumed) and
     * only missing or previously-failed jobs execute.
     */
    std::vector<SweepOutcome>
    runOutcomes(const std::vector<SweepJob> &grid);

    /** Fault-isolating variant of runTasks(). */
    std::vector<SweepOutcome> runTaskOutcomes(
        const std::vector<std::function<core::RunResult()>> &tasks);

    /** Timing/throughput accounting (cumulative across runs). */
    const SweepReport &report() const { return report_; }

    /** Resolved worker count a run() will use for a large grid. */
    unsigned workers() const;

    /** Resolved retry budget runOutcomes() grants each job. */
    unsigned retries() const;

    /** Resolved per-job wall-clock deadline (ms; 0 = unlimited). */
    std::uint64_t deadlineMs() const;

    /** Resolved retry-backoff base delay (ms; 0 = immediate). */
    std::uint64_t backoffMs() const;

    /** Resolved preflight policy (options override, else env). */
    bool preflightEnabled() const;

    /** Resolved model-advisor policy (options override, else env). */
    bool modelAdviceEnabled() const;

  private:
    /**
     * Shared executor behind the outcome entry points: runs @p tasks
     * through the pool with per-job isolation, retry + deterministic
     * backoff, and Timeout classification. @p on_complete (when set)
     * observes each finished outcome from its worker thread — the
     * journal write-through hook. Does not touch report_.
     *
     * @p grid_total and @p already_done scope the progress heartbeat
     * to the whole grid when only a subset executes (journal resume);
     * @p grid_indices, when non-null, maps task index -> grid job
     * index for timeline spans (identity when null).
     */
    std::vector<SweepOutcome> executeOutcomes(
        const std::vector<std::function<core::RunResult()>> &tasks,
        const std::function<void(std::size_t, const SweepOutcome &)>
            &on_complete,
        std::size_t grid_total, std::size_t already_done,
        const std::vector<std::size_t> *grid_indices = nullptr);

    /** Fold a grid-ordered outcome vector into report_. */
    void accountOutcomes(const std::vector<SweepOutcome> &outcomes,
                         double wall_seconds);

    SweepOptions options_;
    SweepReport report_;
};

/**
 * Stable 64-bit digest of every configuration knob (FNV-1a over the
 * config_io serialization plus the model name). Two configs hash
 * equal iff they describe the same machine.
 */
std::uint64_t machineHash(const core::MachineConfig &machine);

/**
 * Per-job seed: splitmix64-style mix of the sweep's base seed, the
 * machine digest, and the profile name. Never returns 0.
 */
std::uint64_t deriveJobSeed(std::uint64_t base_seed,
                            std::uint64_t machine_hash,
                            const std::string &profile_name);

/**
 * Lint every machine in @p grid (analyze::lintConfig); lint *errors*
 * raise one BadConfig naming every bad job and its diagnostic IDs.
 * The preflight gate SweepRunner applies before launching workers,
 * exported so other grid admitters (aurora_serve, aurora_swarm)
 * reject with identical semantics.
 */
void preflightGrid(const std::vector<SweepJob> &grid);

/**
 * Log the analytic model's advice for @p grid under @p watchdog (see
 * SweepOptions::model_advice). Pure observation — reads the grid,
 * writes the log, touches nothing else. Capped at 32 job lines plus
 * a summary so huge grids stay readable.
 */
void adviseGrid(const std::vector<SweepJob> &grid,
                const core::WatchdogConfig &watchdog);

/** Build the (machine × suite) row of a grid. */
std::vector<SweepJob>
suiteJobs(const core::MachineConfig &machine,
          const std::vector<trace::WorkloadProfile> &suite,
          Count instructions = core::DEFAULT_RUN_INSTS);

/**
 * Parallel drop-in for core::runSuite() through @p runner (shares its
 * pool options and report accounting).
 */
core::SuiteResult
runSuite(SweepRunner &runner, const core::MachineConfig &machine,
         const std::vector<trace::WorkloadProfile> &suite,
         Count instructions = core::DEFAULT_RUN_INSTS);

} // namespace aurora::harness

#endif // AURORA_HARNESS_SWEEP_HH
