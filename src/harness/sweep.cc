#include "sweep.hh"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "core/config_io.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace aurora::harness
{

namespace
{

/** FNV-1a over a byte string. */
std::uint64_t
fnv1a(const std::string &bytes, std::uint64_t h = 0xcbf29ce484222325ull)
{
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** splitmix64 finalizer — full-avalanche 64-bit mix. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

std::uint64_t
machineHash(const core::MachineConfig &machine)
{
    // describe() serializes every knob; the name distinguishes models
    // that happen to share a parameterization.
    return fnv1a(machine.name, fnv1a(core::describe(machine)));
}

std::uint64_t
deriveJobSeed(std::uint64_t base_seed, std::uint64_t machine_hash,
              const std::string &profile_name)
{
    std::uint64_t h = mix(base_seed + 0x9e3779b97f4a7c15ull);
    h = mix(h ^ machine_hash);
    h = mix(h ^ fnv1a(profile_name));
    return h ? h : 1;
}

double
SweepReport::instsPerSecond() const
{
    return wall_seconds > 0.0
               ? static_cast<double>(total_instructions) / wall_seconds
               : 0.0;
}

double
SweepReport::speedup() const
{
    return wall_seconds > 0.0 ? busy_seconds / wall_seconds : 0.0;
}

std::string
SweepReport::summary() const
{
    std::ostringstream os;
    os << "sweep summary: " << jobs << " jobs | " << workers
       << " workers | wall " << formatFixed(wall_seconds, 2)
       << " s | busy " << formatFixed(busy_seconds, 2) << " s (speedup "
       << formatFixed(speedup(), 2) << "x) | "
       << formatFixed(instsPerSecond() / 1e6, 2)
       << " M sim-insts/s over " << total_instructions << " insts";
    // Isolation accounting only appears once an outcome run happened,
    // so fail-fast sweeps keep the historical one-line shape.
    if (ok_jobs || failed_jobs || retried_jobs)
        os << " | ok " << ok_jobs << " / failed " << failed_jobs
           << " / retried " << retried_jobs;
    return os.str();
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

unsigned
SweepRunner::workers() const
{
    return options_.workers ? options_.workers : defaultWorkers();
}

unsigned
SweepRunner::retries() const
{
    if (options_.retries)
        return *options_.retries;
    return static_cast<unsigned>(
        envCount("AURORA_SWEEP_RETRIES", 0, /*min=*/0));
}

namespace
{

/**
 * Turn a job grid into closures, resolving the seed-derivation and
 * watchdog policy once so run() and runOutcomes() simulate each job
 * identically (healthy results stay bit-comparable between the two).
 */
std::vector<std::function<core::RunResult()>>
gridTasks(const std::vector<SweepJob> &grid, const SweepOptions &options)
{
    const core::WatchdogConfig watchdog =
        options.watchdog ? *options.watchdog : core::defaultWatchdog();
    std::vector<std::function<core::RunResult()>> tasks;
    tasks.reserve(grid.size());
    for (const SweepJob &job : grid) {
        tasks.push_back([&options, &job, watchdog]() {
            trace::WorkloadProfile profile = job.profile;
            if (options.base_seed)
                profile.seed = deriveJobSeed(*options.base_seed,
                                             machineHash(job.machine),
                                             profile.name);
            return core::simulate(job.machine, profile,
                                  job.instructions, watchdog);
        });
    }
    return tasks;
}

} // namespace

std::vector<core::RunResult>
SweepRunner::run(const std::vector<SweepJob> &grid)
{
    return runTasks(gridTasks(grid, options_));
}

std::vector<SweepOutcome>
SweepRunner::runOutcomes(const std::vector<SweepJob> &grid)
{
    return runTaskOutcomes(gridTasks(grid, options_));
}

std::vector<core::RunResult>
SweepRunner::runTasks(
    const std::vector<std::function<core::RunResult()>> &tasks)
{
    const std::size_t n = tasks.size();
    std::vector<core::RunResult> results(n);
    std::vector<double> job_seconds(n, 0.0);
    std::atomic<std::size_t> completed{0};

    const unsigned pool = workers();
    WallTimer wall;
    parallelFor(n, pool, [&](std::size_t i) {
        WallTimer job_timer;
        results[i] = tasks[i]();
        job_seconds[i] = job_timer.seconds();
        const std::size_t done =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options_.progress)
            inform(detail::concat(
                "sweep: ", done, "/", n, " done (",
                results[i].benchmark.empty() ? "job"
                                             : results[i].benchmark,
                "@",
                results[i].model.empty() ? "machine" : results[i].model,
                ", ", formatFixed(job_seconds[i], 3), " s)"));
    });

    report_.workers = static_cast<unsigned>(
        std::min<std::size_t>(pool, std::max<std::size_t>(n, 1)));
    report_.jobs += n;
    report_.wall_seconds += wall.seconds();
    report_.job_seconds = std::move(job_seconds);
    for (std::size_t i = 0; i < n; ++i) {
        report_.busy_seconds += report_.job_seconds[i];
        report_.total_instructions += results[i].instructions;
    }
    return results;
}

std::vector<SweepOutcome>
SweepRunner::runTaskOutcomes(
    const std::vector<std::function<core::RunResult()>> &tasks)
{
    const std::size_t n = tasks.size();
    std::vector<SweepOutcome> outcomes(n);
    std::atomic<std::size_t> completed{0};

    const unsigned pool = workers();
    const unsigned max_attempts = retries() + 1;
    WallTimer wall;
    // The body never throws: every failure is captured into its
    // outcome slot, so one poisoned job cannot abort the grid and
    // parallelFor's fail-fast path stays untouched.
    parallelFor(n, pool, [&](std::size_t i) {
        SweepOutcome &out = outcomes[i];
        WallTimer job_timer;
        for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
            out.attempts = attempt;
            try {
                out.result = tasks[i]();
                out.ok = true;
                out.error.clear();
                break;
            } catch (const util::SimError &e) {
                out.ok = false;
                out.code = e.code();
                out.error = e.what();
            } catch (const std::exception &e) {
                out.ok = false;
                out.code = util::SimErrorCode::Internal;
                out.error = e.what();
            } catch (...) {
                out.ok = false;
                out.code = util::SimErrorCode::Internal;
                out.error = "unknown exception";
            }
        }
        out.seconds = job_timer.seconds();
        const std::size_t done =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options_.progress) {
            if (out.ok)
                inform(detail::concat(
                    "sweep: ", done, "/", n, " ok (",
                    out.result.benchmark.empty() ? "job"
                                                 : out.result.benchmark,
                    "@",
                    out.result.model.empty() ? "machine"
                                             : out.result.model,
                    ", ", out.attempts, " attempt(s), ",
                    formatFixed(out.seconds, 3), " s)"));
            else
                inform(detail::concat(
                    "sweep: ", done, "/", n, " FAILED after ",
                    out.attempts, " attempt(s): ", out.error));
        }
    });

    report_.workers = static_cast<unsigned>(
        std::min<std::size_t>(pool, std::max<std::size_t>(n, 1)));
    report_.jobs += n;
    report_.wall_seconds += wall.seconds();
    report_.job_seconds.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const SweepOutcome &out = outcomes[i];
        report_.job_seconds[i] = out.seconds;
        report_.busy_seconds += out.seconds;
        if (out.ok) {
            ++report_.ok_jobs;
            report_.total_instructions += out.result.instructions;
        } else {
            ++report_.failed_jobs;
        }
        if (out.attempts > 1)
            ++report_.retried_jobs;
    }
    return outcomes;
}

std::vector<SweepJob>
suiteJobs(const core::MachineConfig &machine,
          const std::vector<trace::WorkloadProfile> &suite,
          Count instructions)
{
    std::vector<SweepJob> grid;
    grid.reserve(suite.size());
    for (const trace::WorkloadProfile &profile : suite)
        grid.push_back({machine, profile, instructions});
    return grid;
}

core::SuiteResult
runSuite(SweepRunner &runner, const core::MachineConfig &machine,
         const std::vector<trace::WorkloadProfile> &suite,
         Count instructions)
{
    core::SuiteResult result;
    result.machine = machine;
    result.runs = runner.run(suiteJobs(machine, suite, instructions));
    return result;
}

} // namespace aurora::harness
