#include "sweep.hh"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "core/config_io.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace aurora::harness
{

namespace
{

/** FNV-1a over a byte string. */
std::uint64_t
fnv1a(const std::string &bytes, std::uint64_t h = 0xcbf29ce484222325ull)
{
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** splitmix64 finalizer — full-avalanche 64-bit mix. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

std::uint64_t
machineHash(const core::MachineConfig &machine)
{
    // describe() serializes every knob; the name distinguishes models
    // that happen to share a parameterization.
    return fnv1a(machine.name, fnv1a(core::describe(machine)));
}

std::uint64_t
deriveJobSeed(std::uint64_t base_seed, std::uint64_t machine_hash,
              const std::string &profile_name)
{
    std::uint64_t h = mix(base_seed + 0x9e3779b97f4a7c15ull);
    h = mix(h ^ machine_hash);
    h = mix(h ^ fnv1a(profile_name));
    return h ? h : 1;
}

double
SweepReport::instsPerSecond() const
{
    return wall_seconds > 0.0
               ? static_cast<double>(total_instructions) / wall_seconds
               : 0.0;
}

double
SweepReport::speedup() const
{
    return wall_seconds > 0.0 ? busy_seconds / wall_seconds : 0.0;
}

std::string
SweepReport::summary() const
{
    std::ostringstream os;
    os << "sweep summary: " << jobs << " jobs | " << workers
       << " workers | wall " << formatFixed(wall_seconds, 2)
       << " s | busy " << formatFixed(busy_seconds, 2) << " s (speedup "
       << formatFixed(speedup(), 2) << "x) | "
       << formatFixed(instsPerSecond() / 1e6, 2)
       << " M sim-insts/s over " << total_instructions << " insts";
    return os.str();
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

unsigned
SweepRunner::workers() const
{
    return options_.workers ? options_.workers : defaultWorkers();
}

std::vector<core::RunResult>
SweepRunner::run(const std::vector<SweepJob> &grid)
{
    std::vector<std::function<core::RunResult()>> tasks;
    tasks.reserve(grid.size());
    for (const SweepJob &job : grid) {
        tasks.push_back([this, &job]() {
            trace::WorkloadProfile profile = job.profile;
            if (options_.base_seed)
                profile.seed = deriveJobSeed(*options_.base_seed,
                                             machineHash(job.machine),
                                             profile.name);
            return core::simulate(job.machine, profile,
                                  job.instructions);
        });
    }
    return runTasks(tasks);
}

std::vector<core::RunResult>
SweepRunner::runTasks(
    const std::vector<std::function<core::RunResult()>> &tasks)
{
    const std::size_t n = tasks.size();
    std::vector<core::RunResult> results(n);
    std::vector<double> job_seconds(n, 0.0);
    std::atomic<std::size_t> completed{0};

    const unsigned pool = workers();
    WallTimer wall;
    parallelFor(n, pool, [&](std::size_t i) {
        WallTimer job_timer;
        results[i] = tasks[i]();
        job_seconds[i] = job_timer.seconds();
        const std::size_t done =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options_.progress)
            inform(detail::concat(
                "sweep: ", done, "/", n, " done (",
                results[i].benchmark.empty() ? "job"
                                             : results[i].benchmark,
                "@",
                results[i].model.empty() ? "machine" : results[i].model,
                ", ", formatFixed(job_seconds[i], 3), " s)"));
    });

    report_.workers = static_cast<unsigned>(
        std::min<std::size_t>(pool, std::max<std::size_t>(n, 1)));
    report_.jobs += n;
    report_.wall_seconds += wall.seconds();
    report_.job_seconds = std::move(job_seconds);
    for (std::size_t i = 0; i < n; ++i) {
        report_.busy_seconds += report_.job_seconds[i];
        report_.total_instructions += results[i].instructions;
    }
    return results;
}

std::vector<SweepJob>
suiteJobs(const core::MachineConfig &machine,
          const std::vector<trace::WorkloadProfile> &suite,
          Count instructions)
{
    std::vector<SweepJob> grid;
    grid.reserve(suite.size());
    for (const trace::WorkloadProfile &profile : suite)
        grid.push_back({machine, profile, instructions});
    return grid;
}

core::SuiteResult
runSuite(SweepRunner &runner, const core::MachineConfig &machine,
         const std::vector<trace::WorkloadProfile> &suite,
         Count instructions)
{
    core::SuiteResult result;
    result.machine = machine;
    result.runs = runner.run(suiteJobs(machine, suite, instructions));
    return result;
}

} // namespace aurora::harness
