#include "sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "analyze/lint_config.hh"
#include "analyze/model.hh"
#include "core/audit.hh"
#include "core/config_io.hh"
#include "journal.hh"
#include "sweep_trace.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace aurora::harness
{

namespace
{

/** FNV-1a over a byte string. */
std::uint64_t
fnv1a(const std::string &bytes, std::uint64_t h = 0xcbf29ce484222325ull)
{
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** splitmix64 finalizer — full-avalanche 64-bit mix. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

std::uint64_t
machineHash(const core::MachineConfig &machine)
{
    // describe() serializes every knob; the name distinguishes models
    // that happen to share a parameterization.
    return fnv1a(machine.name, fnv1a(core::describe(machine)));
}

std::uint64_t
deriveJobSeed(std::uint64_t base_seed, std::uint64_t machine_hash,
              const std::string &profile_name)
{
    std::uint64_t h = mix(base_seed + 0x9e3779b97f4a7c15ull);
    h = mix(h ^ machine_hash);
    h = mix(h ^ fnv1a(profile_name));
    return h ? h : 1;
}

double
SweepReport::instsPerSecond() const
{
    return wall_seconds > 0.0
               ? static_cast<double>(total_instructions) / wall_seconds
               : 0.0;
}

double
SweepReport::speedup() const
{
    return wall_seconds > 0.0 ? busy_seconds / wall_seconds : 0.0;
}

std::string
SweepReport::summary() const
{
    std::ostringstream os;
    os << "sweep summary: " << jobs << " jobs | " << workers
       << " workers | wall " << formatFixed(wall_seconds, 2)
       << " s | busy " << formatFixed(busy_seconds, 2) << " s (speedup "
       << formatFixed(speedup(), 2) << "x) | "
       << formatFixed(instsPerSecond() / 1e6, 2)
       << " M sim-insts/s over " << total_instructions << " insts";
    // Isolation accounting only appears once an outcome run happened,
    // so fail-fast sweeps keep the historical one-line shape.
    if (ok_jobs || failed_jobs || retried_jobs || timed_out_jobs ||
        skipped_jobs || cancelled_jobs) {
        os << " | ok " << ok_jobs << " / failed " << failed_jobs
           << " / retried " << retried_jobs;
        if (timed_out_jobs)
            os << " / timed out " << timed_out_jobs;
        if (skipped_jobs)
            os << " / skipped " << skipped_jobs;
        if (cancelled_jobs)
            os << " / cancelled " << cancelled_jobs;
    }
    if (resumed_jobs)
        os << " | resumed " << resumed_jobs;
    return os.str();
}

std::string
SweepProgress::toString() const
{
    std::ostringstream os;
    os << "sweep progress: " << done << "/" << total << " done | ok "
       << ok << " / failed " << failed << " / timed out " << timed_out
       << " / retried " << retried;
    if (resumed)
        os << " / resumed " << resumed;
    os << " | elapsed " << formatFixed(elapsed_seconds, 2) << " s";
    if (done < total)
        os << " | eta " << formatFixed(eta_seconds, 2) << " s";
    return os.str();
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

unsigned
SweepRunner::workers() const
{
    return options_.workers ? options_.workers : defaultWorkers();
}

unsigned
SweepRunner::retries() const
{
    if (options_.retries)
        return *options_.retries;
    return static_cast<unsigned>(
        envCount("AURORA_SWEEP_RETRIES", 0, /*min=*/0));
}

std::uint64_t
SweepRunner::deadlineMs() const
{
    if (options_.deadline_ms)
        return *options_.deadline_ms;
    return envCount("AURORA_SWEEP_DEADLINE_MS", 0, /*min=*/0);
}

std::uint64_t
SweepRunner::backoffMs() const
{
    if (options_.backoff_ms)
        return *options_.backoff_ms;
    return envCount("AURORA_SWEEP_BACKOFF_MS", 0, /*min=*/0);
}

bool
SweepRunner::preflightEnabled() const
{
    if (options_.preflight)
        return *options_.preflight;
    return envFlag("AURORA_PREFLIGHT", true);
}

bool
SweepRunner::modelAdviceEnabled() const
{
    if (options_.model_advice)
        return *options_.model_advice;
    return envFlag("AURORA_PREFLIGHT_MODEL", false);
}

/**
 * Lint every machine in @p grid before any worker launches. Errors
 * (not warnings) abort the launch: one BadConfig naming every bad
 * job and its diagnostic IDs, truncated past a dozen lines so an
 * 18000-job grid with a systematic defect stays readable.
 */
void
preflightGrid(const std::vector<SweepJob> &grid)
{
    constexpr std::size_t MAX_LINES = 12;
    std::size_t bad_jobs = 0;
    std::string lines;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const std::vector<analyze::Diagnostic> findings =
            analyze::lintConfig(grid[i].machine);
        if (!analyze::hasErrors(findings))
            continue;
        ++bad_jobs;
        if (bad_jobs > MAX_LINES)
            continue;
        lines += detail::concat("\n  job ", i, " (",
                                grid[i].profile.name, "@",
                                grid[i].machine.name, "):");
        for (const analyze::Diagnostic &d : findings)
            if (d.severity == analyze::Severity::Error)
                lines += detail::concat(" ", d.id);
    }
    if (bad_jobs == 0)
        return;
    if (bad_jobs > MAX_LINES)
        lines += detail::concat("\n  ... and ", bad_jobs - MAX_LINES,
                                " more");
    util::raiseError(
        util::SimErrorCode::BadConfig, "sweep preflight rejected ",
        bad_jobs, " of ", grid.size(),
        " jobs before any worker started (aurora_lint explain <ID> "
        "describes each diagnostic; AURORA_PREFLIGHT=0 disables the "
        "check):", lines);
}

void
adviseGrid(const std::vector<SweepJob> &grid,
           const core::WatchdogConfig &watchdog)
{
    // Pure observation over an already-admitted grid: computes the
    // analytic bound per job and logs it. No exception is ever
    // raised and no job state is touched — the inertness contract
    // the docs promise and test_harness_outcomes enforces.
    constexpr std::size_t MAX_LINES = 32;
    std::size_t over_budget = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const analyze::ModelResult r =
            analyze::predictBound(grid[i].machine, grid[i].profile);
        const bool budgeted =
            watchdog.cycle_budget > 0 && r.ipc_bound > 0.0;
        const double min_cycles =
            budgeted ? double(grid[i].instructions) / r.ipc_bound
                     : 0.0;
        const bool cannot_finish =
            budgeted && min_cycles > double(watchdog.cycle_budget);
        if (cannot_finish)
            ++over_budget;
        if (i >= MAX_LINES)
            continue;
        std::string line = detail::concat(
            "model advice: job ", i, " (", grid[i].profile.name, "@",
            grid[i].machine.name, "): ", r.summary());
        if (cannot_finish)
            line += detail::concat(
                " — needs >= ",
                static_cast<std::uint64_t>(min_cycles),
                " cycles, over the ", watchdog.cycle_budget,
                "-cycle watchdog budget");
        inform(line);
    }
    if (grid.size() > MAX_LINES)
        inform(detail::concat("model advice: ... and ",
                              grid.size() - MAX_LINES, " more jobs"));
    if (over_budget > 0)
        inform(detail::concat(
            "model advice: ", over_budget, " of ", grid.size(),
            " jobs cannot finish within the watchdog cycle budget "
            "even at their analytic IPC bound"));
}

namespace
{

/**
 * Turn a job grid into closures, resolving the seed-derivation and
 * watchdog policy once so run() and runOutcomes() simulate each job
 * identically (healthy results stay bit-comparable between the two).
 * @p deadline_ms fills the watchdog's wall-clock deadline only where
 * an explicit watchdog policy left it unset.
 */
std::vector<std::function<core::RunResult()>>
gridTasks(const std::vector<SweepJob> &grid, const SweepOptions &options,
          std::uint64_t deadline_ms)
{
    core::WatchdogConfig watchdog =
        options.watchdog ? *options.watchdog : core::defaultWatchdog();
    if (watchdog.deadline_ms == 0)
        watchdog.deadline_ms = deadline_ms;
    std::vector<std::function<core::RunResult()>> tasks;
    tasks.reserve(grid.size());
    for (const SweepJob &job : grid) {
        tasks.push_back([&options, &job, watchdog]() {
            trace::WorkloadProfile profile = job.profile;
            if (options.base_seed)
                profile.seed = deriveJobSeed(*options.base_seed,
                                             machineHash(job.machine),
                                             profile.name);
            return core::simulate(job.machine, profile,
                                  job.instructions, watchdog);
        });
    }
    return tasks;
}

/** Seed a grid job actually runs with (what the journal records). */
std::uint64_t
resolvedSeed(const SweepJob &job, const SweepOptions &options)
{
    return options.base_seed
               ? deriveJobSeed(*options.base_seed,
                               machineHash(job.machine),
                               job.profile.name)
               : job.profile.seed;
}

/**
 * Deterministic exponential backoff before retry attempt @p attempt
 * (>= 2): base << (attempt - 2) ms, capped at 10 s. Doubling by loop
 * keeps the arithmetic overflow-proof for any attempt count.
 */
std::uint64_t
backoffDelayMs(std::uint64_t base_ms, unsigned attempt)
{
    constexpr std::uint64_t CAP_MS = 10'000;
    std::uint64_t delay = base_ms;
    for (unsigned doublings = attempt - 2;
         doublings > 0 && delay < CAP_MS; --doublings)
        delay *= 2;
    return std::min(delay, CAP_MS);
}

/**
 * Serialized progress accounting for one grid. Heartbeats fire when
 * the done count crosses a multiple of the cadence and once at grid
 * completion — emission points depend only on job counts, so a grid
 * heartbeats identically at any worker count (the *values* of
 * elapsed/eta are wall-clock, the *schedule* is deterministic).
 */
class ProgressMeter
{
  public:
    ProgressMeter(const SweepOptions &options, std::size_t total,
                  std::size_t already_done)
        : total_(total),
          every_(options.progress_every
                     ? options.progress_every
                     : std::max<std::size_t>(1, total / 20)),
          callback_(options.on_progress),
          log_(envFlag("AURORA_PROGRESS", false))
    {
        progress_.total = total;
        progress_.done = already_done;
        progress_.ok = already_done;
        progress_.resumed = already_done;
        executedBase_ = already_done;
    }

    bool enabled() const { return callback_ || log_; }

    /** Record one completed isolated job. */
    void
    onOutcome(const SweepOutcome &out)
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++progress_.done;
        if (out.ok)
            ++progress_.ok;
        else if (out.code == util::SimErrorCode::Timeout)
            ++progress_.timed_out;
        else
            ++progress_.failed;
        if (out.attempts > 1)
            ++progress_.retried;
        maybeEmit();
    }

    /** Record one completed fail-fast job (always a result). */
    void
    onResult()
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++progress_.done;
        ++progress_.ok;
        maybeEmit();
    }

  private:
    void
    maybeEmit()
    {
        if (progress_.done % every_ != 0 && progress_.done != total_)
            return;
        progress_.elapsed_seconds = timer_.seconds();
        const std::size_t executed = progress_.done - executedBase_;
        const std::size_t remaining = total_ - progress_.done;
        progress_.eta_seconds =
            executed ? progress_.elapsed_seconds /
                           static_cast<double>(executed) *
                           static_cast<double>(remaining)
                     : 0.0;
        if (callback_)
            callback_(progress_);
        if (log_)
            inform(progress_.toString());
    }

    std::mutex mutex_;
    WallTimer timer_;
    SweepProgress progress_;
    std::size_t total_;
    std::size_t every_;
    /** Jobs replayed before execution began (excluded from the ETA
     *  rate so resumed sweeps do not extrapolate from free jobs). */
    std::size_t executedBase_ = 0;
    std::function<void(const SweepProgress &)> callback_;
    bool log_;
};

} // namespace

std::vector<core::RunResult>
SweepRunner::run(const std::vector<SweepJob> &grid)
{
    if (preflightEnabled())
        preflightGrid(grid);
    if (modelAdviceEnabled())
        adviseGrid(grid, options_.watchdog
                             ? *options_.watchdog
                             : core::defaultWatchdog());
    return runTasks(gridTasks(grid, options_, deadlineMs()));
}

std::vector<SweepOutcome>
SweepRunner::runOutcomes(const std::vector<SweepJob> &grid)
{
    if (preflightEnabled())
        preflightGrid(grid);
    if (modelAdviceEnabled())
        adviseGrid(grid, options_.watchdog
                             ? *options_.watchdog
                             : core::defaultWatchdog());
    if (options_.journal.empty()) {
        WallTimer wall;
        std::vector<SweepOutcome> outcomes = executeOutcomes(
            gridTasks(grid, options_, deadlineMs()), {}, grid.size(),
            /*already_done=*/0);
        accountOutcomes(outcomes, wall.seconds());
        return outcomes;
    }

    const std::size_t n = grid.size();
    const std::uint64_t fingerprint =
        gridFingerprint(grid, options_.base_seed);
    std::vector<SweepOutcome> outcomes(n);
    std::vector<char> replayed(n, 0);

    // Resuming against a journal that was never created (e.g. the
    // previous run died before its first flush) degrades to a fresh
    // run — there is nothing to replay, not an error.
    const bool resuming = options_.resume && [&] {
        return std::ifstream(options_.journal).good();
    }();

    std::unique_ptr<JournalWriter> writer;
    if (resuming) {
        LoadedJournal loaded = loadJournal(options_.journal);
        if (loaded.fingerprint != fingerprint || loaded.jobs != n)
            util::raiseError(
                util::SimErrorCode::BadJournal, "journal '",
                options_.journal,
                "' was written by a different grid (fingerprint ",
                loaded.fingerprint, " over ", loaded.jobs,
                " jobs; this launch is ", fingerprint, " over ", n,
                " jobs) — it cannot replay results for this sweep");
        for (JournalRecord &rec : loaded.records) {
            if (!rec.outcome.ok)
                continue; // failed/timed-out jobs get a fresh attempt
            const auto i = static_cast<std::size_t>(rec.job_index);
            outcomes[i] = std::move(rec.outcome);
            outcomes[i].resumed = true;
            replayed[i] = 1;
        }
        // A replayed result is only as trustworthy as its record:
        // re-audit what came off disk just like a fresh run.
        if (core::auditEnabled())
            for (std::size_t i = 0; i < n; ++i)
                if (replayed[i])
                    core::auditRun(outcomes[i].result);
        // Cut a torn tail fragment off before appending: left in
        // place it would sit mid-file and read as Corrupt next time.
        if (loaded.dropped_tail)
            std::filesystem::resize_file(options_.journal,
                                         loaded.valid_bytes);
        writer = std::make_unique<JournalWriter>(options_.journal);
    } else {
        writer = std::make_unique<JournalWriter>(options_.journal,
                                                 fingerprint, n);
    }

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < n; ++i)
        if (!replayed[i])
            pending.push_back(i);
    if (options_.timeline)
        for (std::size_t i = 0; i < n; ++i) {
            if (!replayed[i])
                continue;
            TimelineSpan span;
            span.job = options_.timeline_job_base + i;
            span.label = grid[i].profile.name + "@" +
                         grid[i].machine.name;
            span.attempt = 0;
            span.worker = options_.timeline->workerId();
            span.start_ms = span.end_ms = options_.timeline->nowMs();
            span.kind = SpanKind::Resumed;
            options_.timeline->record(std::move(span));
        }
    if (options_.progress && pending.size() < n)
        inform(detail::concat("sweep: resuming '", options_.journal,
                              "': ", n - pending.size(), "/", n,
                              " jobs replayed from the journal"));

    auto all_tasks = gridTasks(grid, options_, deadlineMs());
    std::vector<std::function<core::RunResult()>> tasks;
    tasks.reserve(pending.size());
    for (const std::size_t i : pending)
        tasks.push_back(std::move(all_tasks[i]));

    // Completion counter spans the whole grid (replays included) so
    // on_job_done sees grid-relative progress.
    std::atomic<std::size_t> done{n - pending.size()};
    const auto on_complete = [&](std::size_t k,
                                 const SweepOutcome &out) {
        const std::size_t i = pending[k];
        JournalRecord rec;
        rec.job_index = i;
        rec.machine_hash = machineHash(grid[i].machine);
        rec.seed = resolvedSeed(grid[i], options_);
        rec.outcome = out;
        writer->append(rec);
        const std::size_t d =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options_.on_job_done)
            options_.on_job_done(d, n);
    };

    WallTimer wall;
    std::vector<SweepOutcome> executed = executeOutcomes(
        tasks, on_complete, n, n - pending.size(), &pending);
    for (std::size_t k = 0; k < pending.size(); ++k)
        outcomes[pending[k]] = std::move(executed[k]);

    accountOutcomes(outcomes, wall.seconds());
    return outcomes;
}

std::vector<core::RunResult>
SweepRunner::runTasks(
    const std::vector<std::function<core::RunResult()>> &tasks)
{
    const std::size_t n = tasks.size();
    std::vector<core::RunResult> results(n);
    std::vector<double> job_seconds(n, 0.0);
    std::atomic<std::size_t> completed{0};

    const unsigned pool = workers();
    WallTimer wall;
    ParallelResult accounting;
    ProgressMeter meter(options_, n, /*already_done=*/0);
    try {
        parallelFor(
            n, pool,
            [&](std::size_t i) {
                WallTimer job_timer;
                results[i] = tasks[i]();
                job_seconds[i] = job_timer.seconds();
                if (meter.enabled())
                    meter.onResult();
                const std::size_t done =
                    completed.fetch_add(1, std::memory_order_relaxed) +
                    1;
                if (options_.progress)
                    inform(detail::concat(
                        "sweep: ", done, "/", n, " done (",
                        results[i].benchmark.empty()
                            ? "job"
                            : results[i].benchmark,
                        "@",
                        results[i].model.empty() ? "machine"
                                                 : results[i].model,
                        ", ", formatFixed(job_seconds[i], 3), " s)"));
            },
            &accounting);
    } catch (...) {
        // Fail-fast abort: still balance the books — every queued
        // body that never ran is counted, so
        // jobs == ok + failed + timed_out + skipped holds. The
        // propagating exception classifies as Timeout or failure;
        // any further suppressed failures count as failed.
        bool timed_out = false;
        try {
            throw;
        } catch (const util::SimError &e) {
            timed_out = e.code() == util::SimErrorCode::Timeout;
        } catch (...) {
        }
        report_.workers = static_cast<unsigned>(std::min<std::size_t>(
            pool, std::max<std::size_t>(n, 1)));
        report_.jobs += n;
        report_.wall_seconds += wall.seconds();
        report_.job_seconds = std::move(job_seconds);
        report_.ok_jobs += accounting.ran - accounting.failed;
        report_.skipped_jobs += accounting.skipped;
        if (timed_out && accounting.failed > 0) {
            ++report_.timed_out_jobs;
            report_.failed_jobs += accounting.failed - 1;
        } else {
            report_.failed_jobs += accounting.failed;
        }
        throw;
    }

    report_.workers = static_cast<unsigned>(
        std::min<std::size_t>(pool, std::max<std::size_t>(n, 1)));
    report_.jobs += n;
    report_.wall_seconds += wall.seconds();
    report_.job_seconds = std::move(job_seconds);
    for (std::size_t i = 0; i < n; ++i) {
        report_.busy_seconds += report_.job_seconds[i];
        report_.total_instructions += results[i].instructions;
    }
    return results;
}

std::vector<SweepOutcome>
SweepRunner::runTaskOutcomes(
    const std::vector<std::function<core::RunResult()>> &tasks)
{
    WallTimer wall;
    std::vector<SweepOutcome> outcomes =
        executeOutcomes(tasks, {}, tasks.size(), /*already_done=*/0);
    accountOutcomes(outcomes, wall.seconds());
    return outcomes;
}

std::vector<SweepOutcome>
SweepRunner::executeOutcomes(
    const std::vector<std::function<core::RunResult()>> &tasks,
    const std::function<void(std::size_t, const SweepOutcome &)>
        &on_complete,
    std::size_t grid_total, std::size_t already_done,
    const std::vector<std::size_t> *grid_indices)
{
    const std::size_t n = tasks.size();
    std::vector<SweepOutcome> outcomes(n);
    std::atomic<std::size_t> completed{0};

    const unsigned pool = workers();
    const unsigned max_attempts = retries() + 1;
    const std::uint64_t backoff = backoffMs();
    SweepTimeline *timeline = options_.timeline;
    ProgressMeter meter(options_, grid_total, already_done);
    // The body never throws: every failure is captured into its
    // outcome slot, so one poisoned job cannot abort the grid and
    // parallelFor's fail-fast path stays untouched.
    const std::atomic<bool> *cancel = options_.cancel;
    parallelFor(n, pool, [&](std::size_t i) {
        SweepOutcome &out = outcomes[i];
        const std::size_t job =
            options_.timeline_job_base +
            (grid_indices ? (*grid_indices)[i] : i);
        WallTimer job_timer;
        for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
            // Cooperative cancellation: refuse to *start* an attempt
            // once the flag is up; an attempt already simulating is
            // left to finish (and journal) normally.
            if (cancel && cancel->load(std::memory_order_relaxed)) {
                out.ok = false;
                out.code = util::SimErrorCode::Cancelled;
                out.error = attempt == 1
                                ? "cancelled before execution"
                                : "cancelled before retry";
                out.attempts = attempt - 1;
                break;
            }
            if (attempt > 1 && backoff)
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    backoffDelayMs(backoff, attempt)));
            out.attempts = attempt;
            const double span_start = timeline ? timeline->nowMs() : 0.0;
            try {
                out.result = tasks[i]();
                out.ok = true;
                out.error.clear();
            } catch (const util::SimError &e) {
                out.ok = false;
                out.code = e.code();
                out.error = e.what();
            } catch (const std::exception &e) {
                out.ok = false;
                out.code = util::SimErrorCode::Internal;
                out.error = e.what();
            } catch (...) {
                out.ok = false;
                out.code = util::SimErrorCode::Internal;
                out.error = "unknown exception";
            }
            if (timeline) {
                TimelineSpan span;
                span.job = job;
                span.attempt = attempt;
                span.worker = timeline->workerId();
                span.start_ms = span_start;
                span.end_ms = timeline->nowMs();
                if (out.ok) {
                    span.kind = SpanKind::Ok;
                    span.label =
                        out.result.benchmark.empty()
                            ? "job " + std::to_string(job)
                            : out.result.benchmark + "@" +
                                  out.result.model;
                } else {
                    span.kind =
                        out.code == util::SimErrorCode::Timeout
                            ? SpanKind::TimedOut
                            : SpanKind::Failed;
                    span.label = "job " + std::to_string(job);
                    span.error = out.error;
                }
                timeline->record(std::move(span));
            }
            if (out.ok)
                break;
            // A deadline expiry is deterministic for a hung
            // simulation: retrying would only re-spend the whole
            // deadline. Fail the job now.
            if (out.code == util::SimErrorCode::Timeout)
                break;
        }
        out.seconds = job_timer.seconds();
        if (on_complete)
            on_complete(i, out);
        if (meter.enabled())
            meter.onOutcome(out);
        const std::size_t done =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options_.progress) {
            if (out.ok)
                inform(detail::concat(
                    "sweep: ", done, "/", n, " ok (",
                    out.result.benchmark.empty() ? "job"
                                                 : out.result.benchmark,
                    "@",
                    out.result.model.empty() ? "machine"
                                             : out.result.model,
                    ", ", out.attempts, " attempt(s), ",
                    formatFixed(out.seconds, 3), " s)"));
            else if (out.code == util::SimErrorCode::Timeout)
                inform(detail::concat(
                    "sweep: ", done, "/", n, " TIMED OUT after ",
                    formatFixed(out.seconds, 3), " s: ", out.error));
            else
                inform(detail::concat(
                    "sweep: ", done, "/", n, " FAILED after ",
                    out.attempts, " attempt(s): ", out.error));
        }
    });
    return outcomes;
}

void
SweepRunner::accountOutcomes(const std::vector<SweepOutcome> &outcomes,
                             double wall_seconds)
{
    const std::size_t n = outcomes.size();
    report_.workers = static_cast<unsigned>(std::min<std::size_t>(
        workers(), std::max<std::size_t>(n, 1)));
    report_.jobs += n;
    report_.wall_seconds += wall_seconds;
    report_.job_seconds.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const SweepOutcome &out = outcomes[i];
        report_.job_seconds[i] = out.seconds;
        if (out.resumed) {
            // Replayed, not executed: counts toward ok/resumed but
            // is excluded from throughput (busy time, instructions)
            // so resumed sweeps report honest execution rates.
            ++report_.ok_jobs;
            ++report_.resumed_jobs;
            continue;
        }
        report_.busy_seconds += out.seconds;
        if (out.ok) {
            ++report_.ok_jobs;
            report_.total_instructions += out.result.instructions;
        } else if (out.code == util::SimErrorCode::Timeout) {
            ++report_.timed_out_jobs;
        } else if (out.code == util::SimErrorCode::Cancelled) {
            ++report_.cancelled_jobs;
        } else {
            ++report_.failed_jobs;
        }
        if (out.attempts > 1)
            ++report_.retried_jobs;
    }
}

std::vector<SweepJob>
suiteJobs(const core::MachineConfig &machine,
          const std::vector<trace::WorkloadProfile> &suite,
          Count instructions)
{
    std::vector<SweepJob> grid;
    grid.reserve(suite.size());
    for (const trace::WorkloadProfile &profile : suite)
        grid.push_back({machine, profile, instructions});
    return grid;
}

core::SuiteResult
runSuite(SweepRunner &runner, const core::MachineConfig &machine,
         const std::vector<trace::WorkloadProfile> &suite,
         Count instructions)
{
    core::SuiteResult result;
    result.machine = machine;
    result.runs = runner.run(suiteJobs(machine, suite, instructions));
    return result;
}

} // namespace aurora::harness
