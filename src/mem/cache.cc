#include "cache.hh"

#include "util/logging.hh"

namespace aurora::mem
{

namespace
{

bool
isPow2(std::uint32_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

DirectMappedCache::DirectMappedCache(std::uint32_t size_bytes,
                                     std::uint32_t line_bytes)
    : sizeBytes_(size_bytes), lineBytes_(line_bytes),
      numLines_(size_bytes / line_bytes)
{
    AURORA_ASSERT(isPow2(size_bytes), "cache size must be a power of 2");
    AURORA_ASSERT(isPow2(line_bytes), "line size must be a power of 2");
    AURORA_ASSERT(size_bytes >= line_bytes,
                  "cache smaller than one line");
    tags_.assign(numLines_, 0);
    valid_.assign(numLines_, false);
}

bool
DirectMappedCache::access(Addr addr)
{
    const bool hit = probe(addr);
    hits_.record(hit);
    return hit;
}

bool
DirectMappedCache::probe(Addr addr) const
{
    const std::uint32_t idx = indexOf(addr);
    return valid_[idx] && tags_[idx] == lineAddr(addr);
}

std::optional<Addr>
DirectMappedCache::fill(Addr addr)
{
    const std::uint32_t idx = indexOf(addr);
    std::optional<Addr> evicted;
    if (valid_[idx] && tags_[idx] != lineAddr(addr))
        evicted = tags_[idx];
    tags_[idx] = lineAddr(addr);
    valid_[idx] = true;
    return evicted;
}

void
DirectMappedCache::invalidate(Addr addr)
{
    const std::uint32_t idx = indexOf(addr);
    if (valid_[idx] && tags_[idx] == lineAddr(addr))
        valid_[idx] = false;
}

void
DirectMappedCache::reset()
{
    valid_.assign(numLines_, false);
    hits_.reset();
}

} // namespace aurora::mem
