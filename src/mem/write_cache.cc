#include "write_cache.hh"

#include "util/logging.hh"

namespace aurora::mem
{

WriteCache::WriteCache(const WriteCacheConfig &config, Biu &biu)
    : config_(config), biu_(biu)
{
    AURORA_ASSERT(config_.lines > 0, "write cache needs >= 1 line");
    AURORA_ASSERT(config_.line_bytes == 32,
                  "write cache lines are eight 32-bit words");
    lines_.resize(config_.lines);
}

WriteCache::Line *
WriteCache::findLine(Addr line_base)
{
    for (Line &line : lines_)
        if (line.valid && line.base == line_base)
            return &line;
    return nullptr;
}

bool
WriteCache::pageMatch(Addr addr) const
{
    const Addr page = addr / config_.page_bytes;
    for (const Line &line : lines_)
        if (line.valid && line.base / config_.page_bytes == page)
            return true;
    return false;
}

void
WriteCache::evict(Line &line, Cycle now)
{
    // Unvalidated lines wait for the MMU reply before they may leave
    // the chip; the write is posted at that later cycle.
    const Cycle when = line.evict_ready > now ? line.evict_ready : now;
    biu_.postWrite(when);
    ++transactions_;
    line.valid = false;
    line.valid_words = 0;
}

void
WriteCache::store(Addr addr, unsigned size, Cycle now)
{
    AURORA_ASSERT(size == 4 || size == 8, "store size must be 4 or 8");
    ++stores_;
    const Addr line_base =
        addr & ~static_cast<Addr>(config_.line_bytes - 1);
    const unsigned word =
        (addr & (config_.line_bytes - 1)) / 4;
    const std::uint32_t mask =
        (size == 8 ? 0x3u : 0x1u) << word;

    if (Line *line = findLine(line_base)) {
        hits_.record(true);
        line->valid_words |= mask;
        line->last_write = now;
        return;
    }
    hits_.record(false);

    // Write validation happens on the allocation path: a page match
    // against the resident lines proves the store cannot fault.
    Cycle evict_ready = now;
    if (config_.validate_writes) {
        const bool validated = pageMatch(addr);
        validations_.record(validated);
        if (!validated)
            evict_ready = biu_.roundTrip(now);
    }

    // Allocate, evicting the least recently written line if needed.
    Line *victim = nullptr;
    for (Line &line : lines_) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.last_write < victim->last_write)
            victim = &line;
    }
    if (victim->valid)
        evict(*victim, now);
    victim->valid = true;
    victim->base = line_base;
    victim->valid_words = mask;
    victim->last_write = now;
    victim->evict_ready = evict_ready;
}

bool
WriteCache::loadProbe(Addr addr, unsigned size)
{
    const Addr line_base =
        addr & ~static_cast<Addr>(config_.line_bytes - 1);
    const unsigned word = (addr & (config_.line_bytes - 1)) / 4;
    const std::uint32_t mask = (size == 8 ? 0x3u : 0x1u) << word;
    Line *line = findLine(line_base);
    const bool hit = line && (line->valid_words & mask) == mask;
    hits_.record(hit);
    return hit;
}

void
WriteCache::drain(Cycle now)
{
    for (Line &line : lines_)
        if (line.valid)
            evict(line, now);
}

} // namespace aurora::mem
