#include "victim_cache.hh"

#include "util/logging.hh"

namespace aurora::mem
{

VictimCache::VictimCache(unsigned lines, std::uint32_t line_bytes)
    : lineBytes_(line_bytes)
{
    AURORA_ASSERT(line_bytes > 0 &&
                      (line_bytes & (line_bytes - 1)) == 0,
                  "line size must be a power of two");
    lines_.resize(lines);
}

void
VictimCache::insert(Addr line_addr, Cycle now)
{
    if (!enabled())
        return;
    const Addr aligned =
        line_addr & ~static_cast<Addr>(lineBytes_ - 1);
    // Refresh if already present.
    for (Line &line : lines_) {
        if (line.valid && line.addr == aligned) {
            line.last_use = now;
            return;
        }
    }
    Line *victim = &lines_.front();
    for (Line &line : lines_) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.last_use < victim->last_use)
            victim = &line;
    }
    *victim = {aligned, now, true};
}

bool
VictimCache::probe(Addr line_addr, Cycle now)
{
    if (!enabled())
        return false;
    const Addr aligned =
        line_addr & ~static_cast<Addr>(lineBytes_ - 1);
    for (Line &line : lines_) {
        if (line.valid && line.addr == aligned) {
            // Swapped back into the primary cache.
            line.valid = false;
            hits_.record(true);
            (void)now;
            return true;
        }
    }
    hits_.record(false);
    return false;
}

} // namespace aurora::mem
