/**
 * @file
 * The coalescing Write Cache (§2.3, Jouppi's write-cache policy [8]).
 *
 * A small fully-associative buffer of cache lines (Table 1: 2 / 4 / 8
 * lines of eight 32-bit words) that absorbs store traffic before it
 * reaches the BIU. Two behaviours make it effective: rewrites of the
 * same word coalesce (loop indices), and vector-like store bursts fill
 * a line that retires in a single BIU transaction.
 *
 * Write validation: because the MMU is off chip, a store may not
 * retire until it is known not to fault. The write cache doubles as a
 * four-entry micro-TLB: if the page field of the store address matches
 * any valid line's page, no fault is possible; otherwise an MMU
 * round trip must complete before the line may be evicted.
 */

#ifndef AURORA_MEM_WRITE_CACHE_HH
#define AURORA_MEM_WRITE_CACHE_HH

#include <vector>

#include "biu.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace aurora::mem
{

/** Write cache configuration. */
struct WriteCacheConfig
{
    /** Fully associative lines (Table 1: 2 / 4 / 8). */
    unsigned lines = 4;
    /** Line size in bytes (eight 32-bit words). */
    std::uint32_t line_bytes = 32;
    /** Page size for the write-validation micro-TLB. */
    std::uint32_t page_bytes = 4096;
    /** Model the off-chip MMU validation round trip. */
    bool validate_writes = true;
};

/** Fully-associative coalescing write buffer with write validation. */
class WriteCache
{
  public:
    WriteCache(const WriteCacheConfig &config, Biu &biu);

    /**
     * Insert a store.
     *
     * A hit coalesces into an existing line. A miss allocates a line,
     * evicting the least recently written line to the BIU when the
     * cache is full. Unvalidated lines (page-field miss in the
     * micro-TLB) may not be evicted before their MMU round trip
     * returns, so their eviction write is posted at that later time.
     *
     * @param addr store address.
     * @param size store size in bytes.
     * @param now  current cycle.
     */
    void store(Addr addr, unsigned size, Cycle now);

    /**
     * Probe for load forwarding: true when every byte of the access
     * is currently buffered. Recorded in the Table 5 hit rate, which
     * "includes both load and store data accesses".
     */
    bool loadProbe(Addr addr, unsigned size);

    /** Flush all valid lines to the BIU (drain at end of run). */
    void drain(Cycle now);

    /// @name Statistics
    /// @{
    /** Table 5 hit rate over load + store accesses. */
    const Ratio &hitRate() const { return hits_; }
    /** Store instructions seen. */
    Count stores() const { return stores_; }
    /** BIU write transactions issued (evictions + drain). */
    Count storeTransactions() const { return transactions_; }
    /** Micro-TLB page-match rate for stores. */
    const Ratio &validationRate() const { return validations_; }
    /** Valid lines currently buffered (occupancy sampling). */
    unsigned
    linesInUse() const
    {
        unsigned used = 0;
        for (const Line &line : lines_)
            if (line.valid)
                ++used;
        return used;
    }
    /// @}

    const WriteCacheConfig &config() const { return config_; }

  private:
    struct Line
    {
        Addr base = 0;           ///< line-aligned address
        std::uint32_t valid_words = 0; ///< bitmap of valid words
        Cycle last_write = 0;
        Cycle evict_ready = 0;   ///< earliest legal eviction cycle
        bool valid = false;
    };

    /** Find the valid line holding @p line_base, or nullptr. */
    Line *findLine(Addr line_base);

    /** True when any valid line lies in the same page as @p addr. */
    bool pageMatch(Addr addr) const;

    /** Evict @p line to the BIU. */
    void evict(Line &line, Cycle now);

    WriteCacheConfig config_;
    Biu &biu_;
    std::vector<Line> lines_;
    Ratio hits_;
    Ratio validations_;
    Count stores_ = 0;
    Count transactions_ = 0;
};

} // namespace aurora::mem

#endif // AURORA_MEM_WRITE_CACHE_HH
