/**
 * @file
 * Victim cache (Jouppi [7], the companion mechanism to the stream
 * buffers the Aurora III adopted).
 *
 * A small fully-associative buffer that captures lines evicted from a
 * direct-mapped cache; a subsequent conflict miss to a recently
 * evicted line hits here and is serviced on chip. The paper chose
 * stream buffers for the Aurora III because its dominant misses are
 * sequential; this module exists for the DESIGN.md §6 ablation that
 * quantifies that choice.
 */

#ifndef AURORA_MEM_VICTIM_CACHE_HH
#define AURORA_MEM_VICTIM_CACHE_HH

#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace aurora::mem
{

/** Fully-associative LRU buffer of evicted lines. */
class VictimCache
{
  public:
    /**
     * @param lines      entries (0 disables the victim cache).
     * @param line_bytes line size, must match the primary cache.
     */
    VictimCache(unsigned lines, std::uint32_t line_bytes);

    /** Enabled (non-zero capacity)? */
    bool enabled() const { return !lines_.empty(); }

    /**
     * Record a line evicted from the primary cache.
     * No-op when disabled.
     */
    void insert(Addr line_addr, Cycle now);

    /**
     * Probe on a primary-cache miss; a hit removes the line (it is
     * swapped back into the primary cache). Records hit statistics
     * only while enabled.
     */
    bool probe(Addr line_addr, Cycle now);

    /** Hit rate over probes. */
    const Ratio &hitRate() const { return hits_; }

  private:
    struct Line
    {
        Addr addr = 0;
        Cycle last_use = 0;
        bool valid = false;
    };

    std::vector<Line> lines_;
    std::uint32_t lineBytes_;
    Ratio hits_;
};

} // namespace aurora::mem

#endif // AURORA_MEM_VICTIM_CACHE_HH
