#include "stream_buffer.hh"

#include "util/logging.hh"

namespace aurora::mem
{

PrefetchUnit::PrefetchUnit(const PrefetchConfig &config, Biu &biu)
    : config_(config), biu_(biu)
{
    AURORA_ASSERT(config_.num_buffers > 0,
                  "prefetch unit needs at least one buffer");
    AURORA_ASSERT(config_.depth > 0,
                  "stream buffer depth must be positive");
    buffers_.resize(config_.num_buffers);
}

void
PrefetchUnit::topUp(Buffer &buf, Cycle now)
{
    while (buf.entries.size() < config_.depth &&
           biu_.canAccept(now)) {
        const Cycle ready = biu_.requestLine(now, /*prefetch=*/true);
        buf.entries.push_back({buf.next_line, ready});
        buf.next_line += config_.line_bytes;
    }
}

PrefetchUnit::Result
PrefetchUnit::missLookup(Addr addr, Cycle now, bool is_instruction)
{
    const Addr line =
        addr & ~static_cast<Addr>(config_.line_bytes - 1);

    if (!config_.enabled) {
        // No buffers: every primary miss is a full demand fetch.
        return {false, biu_.requestLine(now, /*prefetch=*/false)};
    }

    // Probe every buffer for the missing line.
    for (Buffer &buf : buffers_) {
        if (!buf.active)
            continue;
        for (std::size_t i = 0; i < buf.entries.size(); ++i) {
            if (buf.entries[i].line != line)
                continue;
            // Hit: entries ahead of the match are stale (the stream
            // skipped them) and are shifted out with it.
            const Cycle ready = buf.entries[i].ready;
            buf.entries.erase(buf.entries.begin(),
                              buf.entries.begin() +
                                  static_cast<std::ptrdiff_t>(i + 1));
            buf.last_used = now;
            topUp(buf, now);
            if (is_instruction)
                iHits_.record(true);
            else
                dHits_.record(true);
            return {true, ready < now ? now : ready};
        }
    }

    // Miss: re-allocate the LRU buffer to this stream. The demand
    // line itself is fetched by the requester; the buffer starts with
    // a single-line fetch-ahead (§2.2).
    Buffer *victim = &buffers_.front();
    for (Buffer &buf : buffers_) {
        if (!buf.active) {
            victim = &buf;
            break;
        }
        if (buf.last_used < victim->last_used)
            victim = &buf;
    }
    victim->entries.clear();
    victim->active = true;
    victim->last_used = now;
    victim->next_line = line + config_.line_bytes;
    if (biu_.canAccept(now)) {
        const Cycle ready = biu_.requestLine(now, /*prefetch=*/true);
        victim->entries.push_back({victim->next_line, ready});
        victim->next_line += config_.line_bytes;
    }

    if (is_instruction)
        iHits_.record(false);
    else
        dHits_.record(false);
    return {false, biu_.requestLine(now, /*prefetch=*/false)};
}

} // namespace aurora::mem
