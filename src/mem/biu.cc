#include "biu.hh"

#include "util/logging.hh"

namespace aurora::mem
{

Biu::Biu(const BiuConfig &config)
    : config_(config)
{
    AURORA_ASSERT(config_.line_occupancy > 0,
                  "line transfer must occupy at least one bus cycle");
    AURORA_ASSERT(config_.queue_depth > 0,
                  "BIU queue depth must be positive");
}

bool
Biu::canAccept(Cycle now) const
{
    // The backlog ahead of a new transaction is (busFree_ - now)
    // cycles of transfer time; the queue is full when that backlog
    // already covers queue_depth transactions.
    if (busFree_ <= now)
        return true;
    return (busFree_ - now) <
           config_.queue_depth * config_.line_occupancy;
}

Cycle
Biu::reserve(Cycle now)
{
    Cycle start = busFree_ > now ? busFree_ : now;

    if (config_.model_collisions) {
        // Drop replies that have already landed.
        while (!pendingReplies_.empty() &&
               pendingReplies_.front() <= now)
            pendingReplies_.pop_front();
        // A transmit that overlaps an inbound reply collides: both
        // sides back off and the transmit retries (§2's
        // collision-based protocol). One retry suffices in this
        // model because the reply has landed by then.
        for (const Cycle reply : pendingReplies_) {
            if (reply >= start &&
                reply < start + config_.line_occupancy) {
                ++collisions_;
                start = reply + config_.collision_penalty;
                break;
            }
        }
    }

    busFree_ = start + config_.line_occupancy;
    busyCycles_ += config_.line_occupancy;
    return start;
}

Cycle
Biu::requestLine(Cycle now, bool prefetch)
{
    if (prefetch)
        ++prefetchReads_;
    else
        ++demandReads_;
    const Cycle start = reserve(now);
    const Cycle done = start + config_.latency +
                       config_.line_occupancy;
    if (config_.model_collisions) {
        pendingReplies_.push_back(done);
        if (pendingReplies_.size() > 64)
            pendingReplies_.pop_front();
    }
    return done;
}

void
Biu::postWrite(Cycle now)
{
    ++writes_;
    reserve(now);
}

Cycle
Biu::roundTrip(Cycle now)
{
    ++roundTrips_;
    const Cycle start = reserve(now);
    return start + config_.latency;
}

} // namespace aurora::mem
